// End-to-end acceptance for sharded out-of-core datasets: the selective
// I/O budget (a narrow query reads a fraction of the dataset's bytes),
// bit-identity between the dataset engine and the single-snapshot
// engine, and the open/query benchmarks the CI gate pins.
package crowdscope_test

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"crowdscope/internal/model"
	"crowdscope/internal/query"
	"crowdscope/internal/store"
	"crowdscope/internal/synth"
)

// shardFiles is an in-memory dataset: manifest bytes plus shard files,
// with byte-level read accounting on every open reader.
type shardFiles struct {
	manifest []byte
	files    map[string][]byte

	mu        sync.Mutex
	opened    map[string]bool
	bytesRead atomic.Int64
}

type closingBuffer struct {
	bytes.Buffer
	name string
	fs   *shardFiles
}

func (c *closingBuffer) Close() error {
	c.fs.files[c.name] = append([]byte(nil), c.Buffer.Bytes()...)
	return nil
}

type meteredReaderAt struct {
	r  *bytes.Reader
	fs *shardFiles
}

func (m *meteredReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := m.r.ReadAt(p, off)
	m.fs.bytesRead.Add(int64(n))
	return n, err
}

func (fs *shardFiles) open(name string) (io.ReaderAt, int64, error) {
	data, ok := fs.files[name]
	if !ok {
		return nil, 0, fmt.Errorf("%s: no such shard", name)
	}
	fs.mu.Lock()
	fs.opened[name] = true
	fs.mu.Unlock()
	return &meteredReaderAt{r: bytes.NewReader(data), fs: fs}, int64(len(data)), nil
}

func (fs *shardFiles) totalShardBytes() int64 {
	var n int64
	for _, data := range fs.files {
		n += int64(len(data))
	}
	return n
}

func (fs *shardFiles) reset() {
	fs.mu.Lock()
	fs.opened = make(map[string]bool)
	fs.mu.Unlock()
	fs.bytesRead.Store(0)
}

// dataset returns a freshly opened Dataset over the in-memory files.
func (fs *shardFiles) dataset(tb testing.TB) *store.Dataset {
	tb.Helper()
	man, _, err := store.ReadManifest(bytes.NewReader(fs.manifest))
	if err != nil {
		tb.Fatalf("ReadManifest: %v", err)
	}
	d, err := store.OpenDataset(man, fs.open)
	if err != nil {
		tb.Fatalf("OpenDataset: %v", err)
	}
	return d
}

var (
	e2eOnce  sync.Once
	e2eStore *store.Store      // the generated 16-segment store
	e2eSnap  []byte            // its single-file snapshot
	e2eFS    *shardFiles       // its 8-shard dataset
	e2eTabs  *query.SideTables // worker/batch attribute tables for joins
)

// e2eSetup builds the shared acceptance fixture once: the scale-0.02
// marketplace with 16 segments, its single-file snapshot, and its
// 8-shard dataset.
func e2eSetup(tb testing.TB) {
	tb.Helper()
	e2eOnce.Do(func() {
		ds := synth.Generate(synth.Config{Seed: 1701, Scale: 0.02, Parallelism: 16})
		e2eStore = ds.Store
		e2eTabs = query.NewTables(ds.Workers, ds.Batches)
		var snap bytes.Buffer
		if _, err := e2eStore.WriteTo(&snap); err != nil {
			panic(err)
		}
		e2eSnap = snap.Bytes()

		fs := &shardFiles{files: make(map[string][]byte), opened: make(map[string]bool)}
		var man bytes.Buffer
		_, err := e2eStore.WriteDataset(&man, 8, "market", func(name string) (io.WriteCloser, error) {
			return &closingBuffer{name: name, fs: fs}, nil
		}, store.WriteOptions{})
		if err != nil {
			panic(err)
		}
		fs.manifest = man.Bytes()
		e2eFS = fs
	})
	e2eFS.reset()
}

// TestDatasetSelectiveReadBudget pins the tentpole's I/O contract: a
// single-column count query over the 8-shard scale-0.02 dataset with a
// one-week window reads less than 25% of the dataset's total bytes, and
// shards excluded by manifest-level zone pruning are never opened.
func TestDatasetSelectiveReadBudget(t *testing.T) {
	e2eSetup(t)
	d := e2eFS.dataset(t)
	weekLo, weekHi := model.DayUnix(7*130), model.DayUnix(7*131)
	res, err := query.RunDataset(d, query.Query{
		Where: []query.Predicate{query.StartIn(weekLo, weekHi)},
	})
	if err != nil {
		t.Fatalf("RunDataset: %v", err)
	}
	var wantWeek int64
	for _, s := range e2eStore.Starts() {
		if s >= weekLo && s < weekHi {
			wantWeek++
		}
	}
	if res.Stats.RowsMatched != wantWeek {
		t.Fatalf("matched %d rows, naive scan %d", res.Stats.RowsMatched, wantWeek)
	}

	total := e2eFS.totalShardBytes()
	read := e2eFS.bytesRead.Load()
	if total == 0 || read == 0 {
		t.Fatalf("degenerate accounting: read %d of %d", read, total)
	}
	if read*4 >= total {
		t.Fatalf("one-week count read %d of %d dataset bytes (%.1f%%), budget is < 25%%",
			read, total, 100*float64(read)/float64(total))
	}
	t.Logf("one-week count read %d of %d dataset bytes (%.1f%%), %d/%d shards opened",
		read, total, 100*float64(read)/float64(total), len(e2eFS.opened), d.NumShards())

	// Time-ranged sharding must let the window prune whole shards, and a
	// pruned shard is never opened.
	if len(e2eFS.opened) >= d.NumShards() {
		t.Fatalf("every shard was opened; manifest pruning is not excluding any of the %d shards", d.NumShards())
	}
}

// groupsEqual compares result groups bit-exactly (float aggregates via
// their bit patterns, so NaN payloads and signed zeros count too).
func groupsEqual(a, b []query.Group) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Key != y.Key || x.Key2 != y.Key2 || x.Count != y.Count || x.Distinct != y.Distinct {
			return false
		}
		if math.Float64bits(x.Sum) != math.Float64bits(y.Sum) ||
			math.Float64bits(x.Min) != math.Float64bits(y.Min) ||
			math.Float64bits(x.Max) != math.Float64bits(y.Max) ||
			math.Float64bits(x.P50) != math.Float64bits(y.P50) {
			return false
		}
	}
	return true
}

// TestDatasetQueryBitIdentity is the property test the tentpole promises:
// for every Workers value, RunDataset over the sharded dataset produces
// bit-identical grouped results to Run over (a) the store assembled from
// the shards and (b) the store loaded from the single-file snapshot twin.
func TestDatasetQueryBitIdentity(t *testing.T) {
	e2eSetup(t)
	weekLo, weekHi := model.DayUnix(7*128), model.DayUnix(7*134)

	var twin store.Store
	if _, err := twin.ReadFrom(bytes.NewReader(e2eSnap)); err != nil {
		t.Fatalf("load snapshot twin: %v", err)
	}
	assembled, _, err := e2eFS.dataset(t).LoadStore(store.LoadOptions{})
	if err != nil {
		t.Fatalf("assemble dataset: %v", err)
	}

	shapes := []struct {
		name string
		q    query.Query
	}{
		{"count-week-window", query.Query{Where: []query.Predicate{query.StartIn(weekLo, weekHi)}}},
		{"group-week-duration-p50", query.Query{
			Where:   []query.Predicate{query.StartIn(weekLo, weekHi)},
			GroupBy: query.GroupWeek, Value: query.ValueDuration, P50: true,
		}},
		{"group-worker-trust", query.Query{
			Where:   []query.Predicate{query.TrustRange(0.5, 1.0)},
			GroupBy: query.GroupWorker, Value: query.ValueTrust,
		}},
		{"group-tasktype-distinct-worker", query.Query{
			GroupBy: query.GroupTaskType, Distinct: query.ColWorker,
		}},
		{"group-batch-start", query.Query{
			Where:   []query.Predicate{query.AtLeast(query.ColBatch, 100), query.AtMost(query.ColBatch, 900)},
			GroupBy: query.GroupBatch, Value: query.ValueStart,
		}},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			var ref *query.Result
			for _, workers := range []int{0, 1, 2, 3, 8} {
				q := shape.q
				q.Workers = workers
				fromDataset, err := query.RunDataset(e2eFS.dataset(t), q)
				if err != nil {
					t.Fatalf("RunDataset workers=%d: %v", workers, err)
				}
				fromAssembled, err := query.Run(assembled, q)
				if err != nil {
					t.Fatalf("Run(assembled) workers=%d: %v", workers, err)
				}
				fromTwin, err := query.Run(&twin, q)
				if err != nil {
					t.Fatalf("Run(twin) workers=%d: %v", workers, err)
				}
				for _, pair := range []struct {
					name string
					res  *query.Result
				}{{"assembled", fromAssembled}, {"twin", fromTwin}} {
					if !groupsEqual(fromDataset.Groups, pair.res.Groups) {
						t.Fatalf("workers=%d: dataset groups differ from %s", workers, pair.name)
					}
					if fromDataset.Stats.RowsMatched != pair.res.Stats.RowsMatched {
						t.Fatalf("workers=%d: matched %d vs %s %d", workers,
							fromDataset.Stats.RowsMatched, pair.name, pair.res.Stats.RowsMatched)
					}
				}
				if ref == nil {
					ref = fromDataset
				} else if !groupsEqual(ref.Groups, fromDataset.Groups) {
					t.Fatalf("workers=%d changed the dataset result", workers)
				}
			}
		})
	}
}

// TestTrustSumChunkOrderIdentity pins the floating-point caveat of the
// §7 merge contract. Sum over trust is a float fold, and float addition
// is not associative, so the exact bits of a trust sum depend on fold
// order. The engine fixes that order — rows fold in row order within
// each ChunkRows chunk, chunk subtotals merge in chunk order — and every
// execution path shares it: the direct streaming scan (Run), the
// cached-plan path (Planner.Run) and the sharded dataset path
// (RunDataset), at every Workers value. A path that folded in a
// different order would still be numerically "correct" to an epsilon;
// this test fails it on Float64bits instead, because reproducibility is
// part of the query contract.
func TestTrustSumChunkOrderIdentity(t *testing.T) {
	e2eSetup(t)
	q, err := query.ParseQuery("where trust >= 0.25 and (tasktype == 2 or trust >= 0.9) | group week | value trust")
	if err != nil {
		t.Fatal(err)
	}
	var twin store.Store
	if _, err := twin.ReadFrom(bytes.NewReader(e2eSnap)); err != nil {
		t.Fatalf("load snapshot twin: %v", err)
	}
	pl := query.NewPlanner(4)
	var ref []query.Group
	for _, workers := range []int{0, 1, 2, 3, 8} {
		q.Workers = workers
		fromRun, err := query.Run(&twin, q)
		if err != nil {
			t.Fatalf("Run workers=%d: %v", workers, err)
		}
		fromPlanner, err := pl.Run(&twin, q)
		if err != nil {
			t.Fatalf("Planner.Run workers=%d: %v", workers, err)
		}
		fromDataset, err := query.RunDataset(e2eFS.dataset(t), q)
		if err != nil {
			t.Fatalf("RunDataset workers=%d: %v", workers, err)
		}
		if len(fromRun.Groups) == 0 {
			t.Fatal("trust-sum query matched nothing; fixture too small")
		}
		if !groupsEqual(fromRun.Groups, fromPlanner.Groups) {
			t.Fatalf("workers=%d: cached-plan trust sums differ from Run's", workers)
		}
		if !groupsEqual(fromRun.Groups, fromDataset.Groups) {
			t.Fatalf("workers=%d: dataset trust sums differ from Run's", workers)
		}
		if ref == nil {
			ref = fromRun.Groups
		} else if !groupsEqual(ref, fromRun.Groups) {
			t.Fatalf("workers=%d changed the trust-sum bits", workers)
		}
	}
}

// acceptanceQuery is this PR's headline query — inexpressible before the
// language existed: a worker-attribute join, an OR-group mixing a batch
// attribute with the derived duration column, and a two-key group-by.
const acceptanceQuery = "where worker.class == super and (batch.sampled == true or duration >= 600) | group tasktype, worker.country | value trust"

// TestLanguageQueryAcceptance runs acceptanceQuery end to end from its
// text form, on both the snapshot store and the sharded dataset, and
// requires bit-identical grouped results for workers 0, 1, 2 and 8.
func TestLanguageQueryAcceptance(t *testing.T) {
	e2eSetup(t)
	q, err := query.ParseQuery(acceptanceQuery)
	if err != nil {
		t.Fatal(err)
	}
	q.Tables = e2eTabs
	var twin store.Store
	if _, err := twin.ReadFrom(bytes.NewReader(e2eSnap)); err != nil {
		t.Fatalf("load snapshot twin: %v", err)
	}
	var ref []query.Group
	for _, workers := range []int{0, 1, 2, 8} {
		q.Workers = workers
		fromSnap, err := query.Run(&twin, q)
		if err != nil {
			t.Fatalf("Run workers=%d: %v", workers, err)
		}
		fromDataset, err := query.RunDataset(e2eFS.dataset(t), q)
		if err != nil {
			t.Fatalf("RunDataset workers=%d: %v", workers, err)
		}
		if len(fromSnap.Groups) == 0 {
			t.Fatal("acceptance query matched nothing; fixture too small")
		}
		if !groupsEqual(fromSnap.Groups, fromDataset.Groups) {
			t.Fatalf("workers=%d: dataset result differs from snapshot result", workers)
		}
		if ref == nil {
			ref = fromSnap.Groups
		} else if !groupsEqual(ref, fromSnap.Groups) {
			t.Fatalf("workers=%d changed the result", workers)
		}
	}

	// The plan must show the greedy clause order and zone-map pruning
	// stats; the dataset plan additionally shows shard pruning.
	pl, err := query.Explain(&twin, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Order) != 2 || pl.Rows == 0 {
		t.Fatalf("store plan incomplete: %s", pl)
	}
	dpl, err := query.ExplainDataset(e2eFS.dataset(t), q)
	if err != nil {
		t.Fatal(err)
	}
	if dpl.Source != "dataset" || len(dpl.Clauses) != 2 {
		t.Fatalf("dataset plan incomplete: %s", dpl)
	}
}

// BenchmarkDatasetOpen compares bringing a dataset to query-readiness
// (manifest + per-shard footer and metadata validation, no column bytes)
// against strict-loading the equivalent single-file snapshot.
func BenchmarkDatasetOpen(b *testing.B) {
	e2eSetup(b)
	b.Run("dataset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := e2eFS.dataset(b)
			for s := 0; s < d.NumShards(); s++ {
				if _, err := d.Shard(s); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("fullload", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var st store.Store
			if _, err := st.ReadFrom(bytes.NewReader(e2eSnap)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDatasetQuery compares the one-week count end to end: the
// dataset path (open manifest, prune shards, read one column of the
// survivors, scan) against full-snapshot load plus the same query. The
// dataset side re-opens everything per iteration, so the win is
// selective I/O, not caching.
func BenchmarkDatasetQuery(b *testing.B) {
	e2eSetup(b)
	weekLo, weekHi := model.DayUnix(7*130), model.DayUnix(7*131)
	q := query.Query{Where: []query.Predicate{query.StartIn(weekLo, weekHi)}, Workers: 1}
	var want int64
	for _, s := range e2eStore.Starts() {
		if s >= weekLo && s < weekHi {
			want++
		}
	}
	b.Run("dataset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := query.RunDataset(e2eFS.dataset(b), q)
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.RowsMatched != want {
				b.Fatalf("matched %d, want %d", res.Stats.RowsMatched, want)
			}
		}
	})
	b.Run("fullload", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var st store.Store
			if _, err := st.ReadFrom(bytes.NewReader(e2eSnap)); err != nil {
				b.Fatal(err)
			}
			res, err := query.Run(&st, q)
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.RowsMatched != want {
				b.Fatalf("matched %d, want %d", res.Stats.RowsMatched, want)
			}
		}
	})
}

// BenchmarkPlan measures a cold plan of the headline join+OR query:
// parse nothing (the Query is pre-built), score every clause against the
// store's zone maps, and order them greedily. Planning is metadata-only
// — no column bytes move — so it must stay microsecond-scale.
func BenchmarkPlan(b *testing.B) {
	e2eSetup(b)
	q, err := query.ParseQuery(acceptanceQuery)
	if err != nil {
		b.Fatal(err)
	}
	q.Tables = e2eTabs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Explain(e2eStore, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCache measures the same plan served from the planner's
// LRU, keyed by canonical query text. The CI gate pins this at least 2x
// faster than the cold path above.
func BenchmarkPlanCache(b *testing.B) {
	e2eSetup(b)
	q, err := query.ParseQuery(acceptanceQuery)
	if err != nil {
		b.Fatal(err)
	}
	q.Tables = e2eTabs
	pn := query.NewPlanner(8)
	if _, err := pn.Explain(e2eStore, q); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := pn.Explain(e2eStore, q)
		if err != nil {
			b.Fatal(err)
		}
		if !pl.Cached {
			b.Fatal("plan not served from cache")
		}
	}
}
