// Loadplanner: the marketplace administrator's view of Section 3 — how
// bursty the incoming task load is, whether the workforce absorbs it,
// which clusters dominate the queue, and how much slack the pickup-time
// coupling provides during spikes.
package main

import (
	"fmt"
	"sort"

	"crowdscope/internal/core"
	"crowdscope/internal/model"
	"crowdscope/internal/report"
	"crowdscope/internal/stats"
	"crowdscope/internal/synth"
	"crowdscope/internal/timeseries"
)

func main() {
	ds := synth.Generate(synth.Config{Seed: 5, Scale: 0.01})
	analysis := core.New(ds, core.DefaultOptions())

	// Arrival burstiness.
	daily := timeseries.NewDaily()
	weekly := timeseries.NewWeekly()
	for i := range ds.Batches {
		b := &ds.Batches[i]
		if b.Sampled {
			daily.AddAt(b.CreatedAt.Unix(), float64(b.Instances()))
			weekly.AddAt(b.CreatedAt.Unix(), float64(b.Instances()))
		}
	}
	post := daily.Slice(int(model.PostBoomWeek)*7, daily.Len())
	ls := timeseries.SummarizeLoad(post)
	fmt.Printf("Arrivals (post-2015): median %.0f/day, peak %.1fx, trough %.5fx\n", ls.Median, ls.PeakRatio, ls.TroughRatio)
	fmt.Println("Provisioning for the median wastes the peak; provisioning for the peak idles 30x capacity.")

	// Workforce absorption: distinct workers vs load, weekly — a
	// group-by-week distinct-count on the query engine.
	wSeries, err := timeseries.ActiveWorkerSeries(ds.Store, 0)
	if err != nil {
		panic(err)
	}
	wVals := wSeries.Slice(int(model.PostBoomWeek), wSeries.Len()).NonZero()
	aVals := weekly.Slice(int(model.PostBoomWeek), weekly.Len()).NonZero()
	fmt.Printf("\nWorkforce: weekly active-worker CV %.2f vs load CV %.2f — the pool flexes, headcount does not.\n",
		stats.StdDev(wVals)/stats.Mean(wVals), stats.StdDev(aVals)/stats.Mean(aVals))

	// Queue concentration: which clusters dominate.
	rows := append([]core.ClusterRow(nil), analysis.Clusters...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Instances > rows[j].Instances })
	total := 0
	for _, c := range rows {
		total += c.Instances
	}
	tbl := report.NewTable("Heaviest clusters (fine-tuning candidates)",
		"cluster", "batches", "instances", "share", "goal", "pickup-s")
	cum := 0
	for i := 0; i < 8 && i < len(rows); i++ {
		c := rows[i]
		cum += c.Instances
		tbl.AddRow(c.Cluster, len(c.Batches), c.Instances,
			fmt.Sprintf("%.1f%%", 100*float64(c.Instances)/float64(total)),
			c.Labels.Goals.String(), c.Metrics.PickupTime)
	}
	fmt.Println()
	fmt.Print(tbl.String())
	fmt.Printf("the top-8 clusters hold %.0f%% of all instances: per-cluster interface tuning pays (Section 3.3).\n",
		100*float64(cum)/float64(total))

	// Pickup elasticity during spikes.
	pick := timeseries.NewWeeklyGrouped()
	for i := range ds.Batches {
		b := &ds.Batches[i]
		if !b.Sampled {
			continue
		}
		if bm := analysis.BatchMetrics[b.ID]; bm.Valid() {
			pick.Observe(b.CreatedAt.Unix(), bm.PickupTime)
		}
	}
	pm := pick.Median()
	var loads, picks []float64
	for w := int(model.PostBoomWeek); w < weekly.Len(); w++ {
		if weekly.At(w) > 0 && pm.At(w) > 0 {
			loads = append(loads, weekly.At(w))
			picks = append(picks, pm.At(w))
		}
	}
	rho := stats.SpearmanCorr(loads, picks)
	fmt.Printf("\nPickup elasticity: weekly load vs median pickup-time Spearman rho = %.2f\n", rho)
	fmt.Println("Negative coupling means spikes self-clear: high-load weeks attract faster pickups (Section 3.2).")
}
