// Abtest: the causal follow-up the paper's Section 7 proposes. The
// correlation analysis of Section 4 cannot separate design effects from
// requester self-selection; this example runs randomized controlled
// experiments on the simulated marketplace — same work, same worker pool,
// same days, only the interface differs — and confirms the Table 1-3
// effects causally.
package main

import (
	"fmt"

	"crowdscope/internal/model"
	"crowdscope/internal/synth"
)

func main() {
	labels := model.Labels{
		Goals:     model.GoalSet(0).With(model.GoalLU),
		Operators: model.OpSet(0).With(model.OpFilter),
		Data:      model.DataSet(0).With(model.DataText),
	}
	base := model.DesignParams{Words: 400, TextBoxes: 0, Items: 40, Examples: 0, Images: 0, Fields: 6}

	treatments := []struct {
		name   string
		mutate func(model.DesignParams) model.DesignParams
	}{
		{"add 2 text boxes", func(d model.DesignParams) model.DesignParams { d.TextBoxes = 2; d.Fields += 2; return d }},
		{"add 2 prominent examples", func(d model.DesignParams) model.DesignParams { d.Examples = 2; return d }},
		{"add 3 images", func(d model.DesignParams) model.DesignParams { d.Images = 3; return d }},
		{"5x the instructions", func(d model.DesignParams) model.DesignParams { d.Words *= 5; return d }},
		{"no change (A/A control)", func(d model.DesignParams) model.DesignParams { return d }},
	}

	fmt.Println("Randomized A/B experiments against the control design")
	fmt.Printf("control: %+v\n\n", base)
	fmt.Printf("%-28s %-26s %-26s %-26s\n", "treatment", "disagreement (A→B, p)", "task-time s (A→B, p)", "pickup s (A→B, p)")
	for i, tr := range treatments {
		res := synth.RunAB(synth.ABConfig{
			Seed:    1000 + uint64(i),
			Labels:  labels,
			DesignA: base,
			DesignB: tr.mutate(base),
		})
		fmt.Printf("%-28s %-26s %-26s %-26s\n", tr.name,
			cell(res.A.MedianDisagreement, res.B.MedianDisagreement, res.Disagreement.P),
			cell(res.A.MedianTaskTime, res.B.MedianTaskTime, res.TaskTime.P),
			cell(res.A.MedianPickupTime, res.B.MedianPickupTime, res.PickupTime.P))
	}
	fmt.Println("\n'*' marks p < 0.01: the causal confirmations of the Section 4 correlations.")
}

func cell(a, b, p float64) string {
	mark := " "
	if p < 0.01 {
		mark = "*"
	}
	return fmt.Sprintf("%.3g→%.3g%s(p=%.1g)", a, b, mark, p)
}
