// Quickstart: generate a small synthetic marketplace, run the analysis
// pipeline, and print the three headline findings of the paper — bursty
// task load served by a steady workforce, design features that move the
// effectiveness metrics, and a heavily skewed worker workload.
package main

import (
	"flag"
	"fmt"
	"time"

	"crowdscope/internal/core"
	"crowdscope/internal/corr"
	"crowdscope/internal/model"
	"crowdscope/internal/stats"
	"crowdscope/internal/synth"
	"crowdscope/internal/timeseries"
)

func main() {
	scale := flag.Float64("scale", 0.01, "instance-volume scale in (0,1]")
	flag.Parse()
	t0 := time.Now()
	// Parallelism: 0 fans the generation pipeline out to every core; the
	// dataset is identical to the serial path (Parallelism: 1).
	ds := synth.Generate(synth.Config{Seed: 42, Scale: *scale, Parallelism: 0})
	analysis := core.New(ds, core.DefaultOptions())
	fmt.Printf("marketplace: %d instances in %d segments, %d sampled batches, %d clusters (built in %v)\n\n",
		ds.Store.Len(), len(ds.Store.Segments()), len(ds.SampledBatchIDs()), analysis.Clustering.NumClusters(), time.Since(t0).Round(time.Millisecond))

	// 1. Marketplace dynamics: bursty tasks, steady workers.
	daily := timeseries.NewDaily()
	for i := range ds.Batches {
		if ds.Batches[i].Sampled {
			daily.AddAt(ds.Batches[i].CreatedAt.Unix(), float64(ds.Batches[i].Instances()))
		}
	}
	ls := timeseries.SummarizeLoad(daily.Slice(int(model.PostBoomWeek)*7, daily.Len()))
	fmt.Printf("1. load: median %.0f instances/day, busiest day %.0fx the median\n", ls.Median, ls.PeakRatio)

	// 2. Task design: one headline effect per metric.
	obs := analysis.Observations(true)
	for _, spec := range []corr.Spec{
		{Feature: core.FeatWords, Metric: core.MetricDisagreement, Kind: corr.SplitAtMedian},
		{Feature: core.FeatTextBoxes, Metric: core.MetricTaskTime, Kind: corr.SplitAtZero},
		{Feature: core.FeatExamples, Metric: core.MetricPickupTime, Kind: corr.SplitAtZero},
	} {
		r := corr.RunMatrix(obs, []corr.Spec{spec})[0]
		verdict := "not significant"
		if r.Significant() {
			verdict = fmt.Sprintf("p=%.1e", r.TTest.P)
		}
		fmt.Printf("2. design: %-38s %8.3g -> %-8.3g (%s)\n",
			r.Feature+" on "+r.Metric+":", r.Bin1.Median, r.Bin2.Median, verdict)
	}

	// 3. Worker behavior: workload skew and engagement.
	workers := analysis.WorkerTable()
	loads := make([]float64, len(workers))
	oneDay := 0
	for i, w := range workers {
		loads[i] = float64(w.Tasks)
		if w.Lifetime == 1 {
			oneDay++
		}
	}
	fmt.Printf("3. workers: top-10%% perform %.0f%% of tasks; %.0f%% are active a single day\n",
		100*stats.TopShare(loads, 0.10), 100*float64(oneDay)/float64(len(workers)))
}
