// Taskdesign: the requester's view. Evaluate two candidate interface
// designs for the same labeling job against the marketplace corpus: apply
// the paper's Section 4 findings to score each design, and use the
// Section 4.9 decision-tree models to predict which effectiveness bucket
// each design will land in.
package main

import (
	"fmt"
	"math"

	"crowdscope/internal/core"
	"crowdscope/internal/corr"
	"crowdscope/internal/ml"
	"crowdscope/internal/model"
	"crowdscope/internal/synth"
)

// candidate is a requester's proposed task design.
type candidate struct {
	name   string
	design model.DesignParams
}

func main() {
	ds := synth.Generate(synth.Config{Seed: 7, Scale: 0.01})
	analysis := core.New(ds, core.DefaultOptions())
	obs := analysis.Observations(true)

	candidates := []candidate{
		{"A: terse free-text form", model.DesignParams{Words: 150, TextBoxes: 3, Items: 10, Examples: 0, Images: 0, Fields: 5}},
		{"B: guided multiple-choice", model.DesignParams{Words: 900, TextBoxes: 0, Items: 120, Examples: 2, Images: 1, Fields: 8}},
	}

	fmt.Println("== Corpus effects (Section 4 recommendations) ==")
	recommendations := []struct {
		spec corr.Spec
		tip  string
	}{
		{corr.Spec{Feature: core.FeatWords, Metric: core.MetricDisagreement, Kind: corr.SplitAtMedian}, "detailed instructions cut disagreement"},
		{corr.Spec{Feature: core.FeatTextBoxes, Metric: core.MetricTaskTime, Kind: corr.SplitAtZero}, "free-text inputs cost worker time"},
		{corr.Spec{Feature: core.FeatItems, Metric: core.MetricDisagreement, Kind: corr.SplitAtMedian}, "bigger batches get experienced workers"},
		{corr.Spec{Feature: core.FeatExamples, Metric: core.MetricPickupTime, Kind: corr.SplitAtZero}, "examples attract workers quickly"},
		{corr.Spec{Feature: core.FeatImages, Metric: core.MetricPickupTime, Kind: corr.SplitAtZero}, "images attract workers quickly"},
	}
	for _, rec := range recommendations {
		r := corr.RunMatrix(obs, []corr.Spec{rec.spec})[0]
		fmt.Printf("  %-14s -> %-13s: %8.3g vs %-8.3g  (%s)\n",
			r.Feature, r.Metric, r.Bin1.Median, r.Bin2.Median, rec.tip)
	}

	// Train the Section 4.9 predictors on the corpus.
	fmt.Println("\n== Bucket predictions for the candidates (10 percentile buckets, 0=best) ==")
	for _, metric := range []string{core.MetricDisagreement, core.MetricTaskTime, core.MetricPickupTime} {
		X, vals := trainingData(obs, metric)
		bk := ml.ByPercentile(vals, 10)
		tree := ml.Train(X, bk.Apply(vals), 10, ml.DefaultTreeOptions())
		fmt.Printf("  %-13s:", metric)
		for _, c := range candidates {
			pred := tree.Predict(featuresOf(c.design, metric))
			fmt.Printf("  %s → bucket %d/10", c.name[:1], pred)
		}
		fmt.Println()
	}

	fmt.Println("\n== Verdict ==")
	fmt.Println("  Design B follows every Section 4.8 recommendation: more instruction words,")
	fmt.Println("  multiple-choice instead of free text, larger batches, prominent examples and")
	fmt.Println("  an image — expect lower disagreement, lower task time and faster pickup.")
}

func trainingData(obs []corr.Observation, metric string) (X [][]float64, vals []float64) {
	for _, o := range obs {
		v, ok := o.Metrics[metric]
		if !ok || math.IsNaN(v) {
			continue
		}
		X = append(X, []float64{
			o.Features[core.FeatItems],
			o.Features[core.FeatWords],
			o.Features[core.FeatTextBoxes],
			b2f(o.Features[core.FeatExamples] > 0),
			b2f(o.Features[core.FeatImages] > 0),
		})
		vals = append(vals, v)
	}
	return X, vals
}

func featuresOf(d model.DesignParams, _ string) []float64 {
	return []float64{
		float64(d.Items),
		float64(d.Words),
		float64(d.TextBoxes),
		b2f(d.Examples > 0),
		b2f(d.Images > 0),
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
