// Workerreport: the worker-centric dashboard of Section 5 — where workers
// come from, how source quality varies, how engaged the workforce is, and
// how much of the load the active core shoulders.
package main

import (
	"fmt"
	"sort"

	"crowdscope/internal/core"
	"crowdscope/internal/model"
	"crowdscope/internal/query"
	"crowdscope/internal/report"
	"crowdscope/internal/stats"
	"crowdscope/internal/synth"
)

func main() {
	ds := synth.Generate(synth.Config{Seed: 99, Scale: 0.01})
	analysis := core.New(ds, core.DefaultOptions())
	workers := analysis.WorkerTable()

	// Sources.
	sources := analysis.SourceTable(workers)
	tbl := report.NewTable("Labor sources by task volume (top 10)",
		"source", "workers", "tasks", "tasks/worker", "trust", "rel-task-time")
	topTasks, total := 0, 0
	for i, s := range sources {
		total += s.Tasks
		if i < 10 {
			topTasks += s.Tasks
			tbl.AddRow(s.Name, s.Workers, s.Tasks, s.AvgTasksPerWorker, s.MeanTrust, s.MeanRelTime)
		}
	}
	fmt.Print(tbl.String())
	fmt.Printf("top-10 sources carry %.0f%% of tasks (paper: 95%%)\n\n", 100*float64(topTasks)/float64(total))

	// Geography — through the query language's worker-attribute join:
	// one grouped distinct-count over the instance log (the same query
	// crowdquery -q runs) replaces the per-worker rollup.
	tabs := query.NewTables(ds.Workers, ds.Batches)
	q, err := query.ParseQuery("group worker.country | distinct worker")
	if err != nil {
		panic(err)
	}
	q.Tables = tabs
	res, err := query.Run(ds.Store, q)
	if err != nil {
		panic(err)
	}
	byCountry := append([]query.Group(nil), res.Groups...)
	sort.Slice(byCountry, func(i, j int) bool { return byCountry[i].Distinct > byCountry[j].Distinct })
	chart := report.NewChart("Workforce geography (top 8 countries)")
	top5 := 0
	for i, g := range byCountry {
		if i < 8 {
			chart.Add(ds.Countries[g.Key], float64(g.Distinct))
		}
		if i < 5 {
			top5 += g.Distinct
		}
	}
	fmt.Print(chart.String())
	fmt.Printf("top-5 countries hold %.0f%% of workers (paper: ~50%%)\n\n", 100*float64(top5)/float64(len(workers)))

	// Engagement.
	loads := make([]float64, len(workers))
	oneDay, active, activeTasks, allTasks := 0, 0, 0, 0
	for i, w := range workers {
		loads[i] = float64(w.Tasks)
		allTasks += w.Tasks
		if w.Lifetime == 1 {
			oneDay++
		}
		if w.Active() {
			active++
			activeTasks += w.Tasks
		}
	}
	fmt.Println("Engagement:")
	fmt.Printf("  %d observed workers; %.1f%% active a single day (paper: 52.7%%)\n",
		len(workers), 100*float64(oneDay)/float64(len(workers)))
	fmt.Printf("  active core (>10 working days): %d workers completing %.0f%% of tasks (paper: 83%%)\n",
		active, 100*float64(activeTasks)/float64(allTasks))
	fmt.Printf("  top-10%% of workers perform %.0f%% of tasks; workload Gini %.2f\n",
		100*stats.TopShare(loads, 0.10), stats.Gini(loads))

	// Engagement classes through the language's boolean surface: tasks
	// that ran long (10+ minutes) or came from the visible batch sample,
	// grouped by the joined engagement class.
	q2, err := query.ParseQuery("where batch.sampled == true or duration >= 600 | group worker.class | value trust")
	if err != nil {
		panic(err)
	}
	q2.Tables = tabs
	res2, err := query.Run(ds.Store, q2)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nLong or sampled-batch tasks by engagement class:")
	for _, g := range res2.Groups {
		fmt.Printf("  %-8v %7d tasks, mean trust %.2f\n", model.EngagementClass(g.Key), g.Count, g.Mean())
	}

	// Daily hours of the busiest workers.
	fmt.Println("\nHeaviest workers:")
	for i := 0; i < 5 && i < len(workers); i++ {
		w := workers[i]
		fmt.Printf("  #%d: %5d tasks over %3d working days — %5.1f lifetime hours, %.2f h/working day, trust %.2f\n",
			i+1, w.Tasks, w.WorkingDays, w.HoursTotal(), w.HoursPerWorkingDay(), w.MeanTrust)
	}
}
