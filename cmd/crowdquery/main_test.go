package main

import (
	"bytes"
	"context"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crowdscope/internal/cli"
	"crowdscope/internal/model"
	"crowdscope/internal/store"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/tiny.crow and the golden CLI outputs")

// fixtureStore builds the deterministic four-segment store behind the
// committed testdata/tiny.crow snapshot: each segment covers its own week
// and worker band, so zone-map pruning is observable from the CLI.
func fixtureStore(t testing.TB) *store.Store {
	t.Helper()
	var segs []*store.Segment
	for k := 0; k < 4; k++ {
		b := store.NewBuilder(uint32(2*k), uint32(2*k+2))
		for bi := 0; bi < 2; bi++ {
			batch := uint32(2*k + bi)
			b.BeginBatch(batch)
			for i := 0; i < 30; i++ {
				start := model.DayUnix(int32(7*k)) + int64(bi)*43200 + int64(i)*3600
				b.Append(model.Instance{
					Batch:    batch,
					TaskType: uint32(k),
					Item:     uint32(i),
					Worker:   uint32(10*k + i%5),
					Start:    start,
					End:      start + 120 + int64(i%5)*60,
					Trust:    float32(50+10*k+i%10) / 100,
					Answer:   uint32(i % 3),
				})
			}
		}
		segs = append(segs, b.Seal())
	}
	s, err := store.Assemble(8, segs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const fixturePath = "testdata/tiny.crow"

// fixture returns the committed snapshot path, rewriting it under
// -update-golden and always verifying it matches fixtureStore.
func fixture(t *testing.T) string {
	t.Helper()
	var want bytes.Buffer
	if _, err := fixtureStore(t).WriteSnapshot(&want, store.WriteOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fixturePath, want.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Fatalf("read fixture (run `go test ./cmd/crowdquery -update-golden` to create): %v", err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("committed tiny.crow no longer matches fixtureStore; regenerate with -update-golden")
	}
	return fixturePath
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run `go test ./cmd/crowdquery -update-golden` to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestWeekWindowGolden: a one-week window on the four-week fixture must
// report three of four segments pruned.
func TestWeekWindowGolden(t *testing.T) {
	snap := fixture(t)
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-snapshot", snap,
		"-where", "start in [week:1, week:2)",
		"-group", "batch", "-value", "duration"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "3 of 4 segments zone-map-pruned") {
		t.Errorf("pruning not reported:\n%s", stdout.String())
	}
	checkGolden(t, "week_window.golden", stdout.String())
}

// TestWorkerRollupGolden: grouped aggregates with p50, distinct and
// count-ordering through the full flag surface.
func TestWorkerRollupGolden(t *testing.T) {
	snap := fixture(t)
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-snapshot", snap,
		"-where", "trust >= 0.6",
		"-group", "tasktype", "-value", "trust", "-p50",
		"-distinct", "worker", "-sort", "count", "-top", "3"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	checkGolden(t, "worker_rollup.golden", stdout.String())
}

// TestExplainPlanGolden: -explain over a -q text query prints the plan —
// greedy clause order with selectivity/cost scores, and zone-map prune
// counts — before the results. The narrow week window must be chosen as
// the driving clause over the wide tasktype range.
func TestExplainPlanGolden(t *testing.T) {
	snap := fixture(t)
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-snapshot", snap, "-explain",
		"-q", "where start in [week:1, week:2) and tasktype <= 2 | group batch | value duration"},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[driving]") {
		t.Errorf("no driving clause in plan:\n%s", out)
	}
	if !strings.Contains(out, "segments: 1 of 4 scanned (3 zone-map-pruned)") {
		t.Errorf("segment pruning not in plan:\n%s", out)
	}
	if strings.Index(out, "start in") > strings.Index(out, "tasktype") {
		t.Errorf("week window is not the driving clause:\n%s", out)
	}
	checkGolden(t, "explain_plan.golden", out)
}

// TestJoinOrGolden: the full language surface end to end from -q — a
// worker-attribute join, an OR-group mixing a batch attribute with the
// derived duration, and a two-key group-by — over the generated
// marketplace, whose inventory backs the joined columns.
func TestJoinOrGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-seed", "1701", "-scale", "0.005",
		"-q", "where worker.class == super and (batch.sampled == true or duration >= 600) | group tasktype, worker.country | value trust | sort count | top 5"},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	if strings.Contains(stdout.String(), "no rows matched") {
		t.Fatalf("join query matched nothing:\n%s", stdout.String())
	}
	checkGolden(t, "join_or.golden", stdout.String())
}

// TestNoMatchGolden: a fully-pruned query still renders cleanly.
func TestNoMatchGolden(t *testing.T) {
	snap := fixture(t)
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-snapshot", snap, "-where", "worker == 999"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout.String(), "no rows matched") ||
		!strings.Contains(stdout.String(), "4 of 4 segments zone-map-pruned") {
		t.Errorf("unexpected output:\n%s", stdout.String())
	}
}

// TestDegradedDataset: with a shard file gone, the strict default fails
// loudly while -degraded answers from the surviving shards and reports
// the partial coverage on both streams.
func TestDegradedDataset(t *testing.T) {
	dir := t.TempDir()
	manPath := filepath.Join(dir, "fix.manifest")
	f, err := os.Create(manPath)
	if err != nil {
		t.Fatal(err)
	}
	man, err := fixtureStore(t).WriteDataset(f, 3, "fix", func(name string) (io.WriteCloser, error) {
		return os.Create(filepath.Join(dir, name))
	}, store.WriteOptions{Workers: 1})
	if cerr := f.Close(); err != nil || cerr != nil {
		t.Fatalf("write dataset: %v / %v", err, cerr)
	}
	if err := os.Remove(filepath.Join(dir, man.Shards[1].Name)); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-snapshot", manPath, "-group", "batch"}, &stdout, &stderr); err == nil {
		t.Fatal("strict query over a missing shard succeeded")
	}

	stdout.Reset()
	stderr.Reset()
	err = run(context.Background(), []string{"-snapshot", manPath, "-group", "batch", "-degraded"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("degraded run: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "shards: 2 opened, 0 pruned, 1 skipped") {
		t.Errorf("coverage not reported:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), man.Shards[1].Name) ||
		!strings.Contains(stderr.String(), "PARTIAL aggregate over 2 of 3 shards") {
		t.Errorf("skip warning missing:\n%s", stderr.String())
	}

	// The text-query path degrades identically: same engine, same
	// partial-coverage accounting, plan and results golden-pinned.
	stdout.Reset()
	stderr.Reset()
	err = run(context.Background(), []string{"-snapshot", manPath, "-degraded", "-explain",
		"-q", "where trust >= 0.6 or answer == 0 | group tasktype | value trust"},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("degraded -q run: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "shards: 2 opened, 0 pruned, 1 skipped") {
		t.Errorf("coverage not reported:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "PARTIAL aggregate over 2 of 3 shards") {
		t.Errorf("skip warning missing:\n%s", stderr.String())
	}
	// The manifest lives in a per-run temp dir; pin the golden on a
	// stable name.
	checkGolden(t, "degraded_q.golden", strings.ReplaceAll(stdout.String(), manPath, "fix.manifest"))
}

// TestExitCodeTaxonomy drives real damaged and missing inputs through
// run and checks that the shared exit-code classification sees through
// every layer of wrapping: corrupt input exits 2, missing input exits
// 3, everything else 1.
func TestExitCodeTaxonomy(t *testing.T) {
	snap := fixture(t)
	dir := t.TempDir()

	good, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte deep in the payload: magic survives, a section CRC dies.
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x40
	corrupt := filepath.Join(dir, "corrupt.crow")
	if err := os.WriteFile(corrupt, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	// Garbage magic: not recognizably ours at all.
	garbage := filepath.Join(dir, "garbage.crow")
	if err := os.WriteFile(garbage, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A dataset whose manifest names a shard that is gone.
	manPath := filepath.Join(dir, "gone.manifest")
	f, err := os.Create(manPath)
	if err != nil {
		t.Fatal(err)
	}
	man, err := fixtureStore(t).WriteDataset(f, 2, "gone", func(name string) (io.WriteCloser, error) {
		return os.Create(filepath.Join(dir, name))
	}, store.WriteOptions{Workers: 1})
	if cerr := f.Close(); err != nil || cerr != nil {
		t.Fatalf("write dataset: %v / %v", err, cerr)
	}
	if err := os.Remove(filepath.Join(dir, man.Shards[0].Name)); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"ok", []string{"-snapshot", snap}, cli.ExitOK},
		{"bad flag", []string{"-snapshot", snap, "-sort", "sideways"}, cli.ExitError},
		{"corrupt snapshot", []string{"-snapshot", corrupt}, cli.ExitCorrupt},
		{"garbage file", []string{"-snapshot", garbage}, cli.ExitCorrupt},
		{"missing snapshot", []string{"-snapshot", filepath.Join(dir, "nope.crow")}, cli.ExitMissing},
		{"missing shard", []string{"-snapshot", manPath, "-group", "batch"}, cli.ExitMissing},
	}
	for _, c := range cases {
		var stdout, stderr bytes.Buffer
		err := run(context.Background(), c.args, &stdout, &stderr)
		if got := cli.ExitCode(err); got != c.want {
			t.Errorf("%s: exit %d (err %v), want %d", c.name, got, err, c.want)
		}
	}
}

// TestHelpExitsClean: -h prints usage and succeeds (exit 0), like the
// pre-refactor flag.ExitOnError behavior.
func TestHelpExitsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-h"}, &stdout, &stderr); err != nil {
		t.Fatalf("-h returned %v", err)
	}
	if !strings.Contains(stderr.String(), "Usage of crowdquery") {
		t.Errorf("usage not printed: %s", stderr.String())
	}
}

func TestBadPredicate(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-snapshot", fixturePath, "-where", "bogus == 1"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown column") {
		t.Fatalf("err = %v, want unknown column", err)
	}
}

func TestBadFlagCombos(t *testing.T) {
	for name, args := range map[string][]string{
		"bad group":    {"-snapshot", fixturePath, "-group", "bogus"},
		"bad value":    {"-snapshot", fixturePath, "-value", "bogus"},
		"bad distinct": {"-snapshot", fixturePath, "-distinct", "bogus"},
		"bad sort":     {"-snapshot", fixturePath, "-sort", "sideways"},
		"positional":   {"-snapshot", fixturePath, "worker == 1"},
		"missing file": {"-snapshot", "testdata/nope.crow"},
		"p50 no value": {"-snapshot", fixturePath, "-p50"},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(context.Background(), args, &stdout, &stderr); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
