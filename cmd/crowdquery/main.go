// Command crowdquery runs ad-hoc filtered, grouped aggregates over an
// instance-log snapshot (or a freshly generated marketplace) through the
// internal/query engine — predicates are evaluated vectorized and whole
// segments are skipped via zone maps before a row is touched.
//
// Usage:
//
//	crowdquery -snapshot marketplace.crow -q "where worker == 12"
//	crowdquery -snapshot marketplace.crow -explain \
//	    -q "where start in [week:130, week:140) and trust >= 0.8 | group week | value duration | p50"
//	crowdquery -seed 1701 -scale 0.02 \
//	    -q "where worker.class == super or batch.sampled == true | group tasktype, worker.country | value trust | sort count"
//	crowdquery -snapshot marketplace.crow -where "worker == 12"    # flag form, same engine
//
// The -q text query is a pipeline of stages (any order, `where` first by
// convention): where, group (one or two comma-separated keys), value,
// p50, distinct, sort, top. The where expression combines predicates
// with `and`/`or` and parentheses:
//
//	column op value          op: == (or =), <, <=, >, >=
//	column in {v, v, ...}    set membership (integer columns)
//	column in [lo, hi)       range; ) excludes hi, ] includes it
//
// Columns: batch, tasktype, item, worker, start, end, trust, answer, the
// derived duration (end-start, seconds), and the joined attribute
// columns worker.source, worker.country, worker.class, batch.items,
// batch.redundancy, batch.sampled, batch.week. start/end values are unix
// seconds, or week:N / day:N dataset buckets; worker.class also takes
// the class names (one-day, casual, active, super) and batch.sampled
// takes true/false. Joined columns need the marketplace inventory: it is
// generated from -seed/-scale, which must match the snapshot's
// generation parameters.
//
// The stage flags (-where, -group, -value, ...) remain and compile onto
// the same query; when both are given, the text query wins for the
// stages it sets and -where conjuncts are ANDed in. -explain prints the
// plan — greedy clause order and zone-map pruning — before the results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"crowdscope/internal/cli"
	"crowdscope/internal/model"
	"crowdscope/internal/query"
	"crowdscope/internal/query/lang"
	"crowdscope/internal/report"
	"crowdscope/internal/store"
	"crowdscope/internal/synth"
)

func main() {
	// Ctrl-C cancels the running query at the next chunk boundary; the
	// scan unwinds cleanly (no partial results) and the process exits
	// with the conventional interrupted code.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "crowdquery: %v\n", err)
		os.Exit(cli.ExitCode(err))
	}
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

// run is the testable entry point: it parses args, writes everything to
// the given writers, and returns instead of exiting. Cancelling ctx
// aborts the query mid-scan with context.Canceled.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("crowdquery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	qText := fs.String("q", "", "full text query, e.g. 'where trust >= 0.8 and (worker.class == super or duration < 300) | group week | value trust'")
	explain := fs.Bool("explain", false, "print the query plan (greedy clause order, zone-map pruning) before the results")
	var wheres multiFlag
	fs.Var(&wheres, "where", "predicate conjunct (repeatable), e.g. 'worker == 12', 'start in [week:130, week:140)'")
	groupS := fs.String("group", "none", "group rows by: none, batch, worker, tasktype, week, day or a joined attribute (e.g. worker.country)")
	valueS := fs.String("value", "count", "aggregate column: count, duration, trust or start")
	p50 := fs.Bool("p50", false, "also report each group's median value")
	distinctS := fs.String("distinct", "", "also count distinct values of this column per group (e.g. worker)")
	sortS := fs.String("sort", "key", "order groups by: key or count")
	top := fs.Int("top", 25, "rows to print (0 = all)")
	snapshotPath := fs.String("snapshot", "", "query this snapshot file (otherwise a marketplace is generated from -seed/-scale)")
	seed := fs.Uint64("seed", 1701, "generation seed when no -snapshot is given")
	scale := fs.Float64("scale", 0.02, "generation scale when no -snapshot is given")
	workers := fs.Int("workers", 0, "scan goroutine bound (0 = GOMAXPROCS, 1 = serial); never changes the result")
	degraded := fs.Bool("degraded", false, "skip dataset shards that fail to read instead of aborting; skipped shards are reported")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed to stderr
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (predicates go in -where)", fs.Arg(0))
	}

	q := query.Query{Workers: *workers, P50: *p50}
	for _, w := range wheres {
		p, err := query.ParsePredicate(w)
		if err != nil {
			return err
		}
		q.Where = append(q.Where, p)
	}
	var err error
	if q.GroupBy, err = query.ParseGroupBy(*groupS); err != nil {
		return err
	}
	if q.Value, err = query.ParseValue(*valueS); err != nil {
		return err
	}
	if *distinctS != "" {
		if q.Distinct, err = query.ParseColumn(*distinctS); err != nil {
			return err
		}
	}
	sortBy, topN := *sortS, *top
	if *qText != "" {
		lq, err := lang.Parse(*qText)
		if err != nil {
			return err
		}
		tq, err := query.Compile(lq)
		if err != nil {
			return err
		}
		// The text query wins for the stages it sets; -where conjuncts
		// are ANDed in after its clauses.
		tq.Where = append(tq.Where, q.Where...)
		tq.Workers = q.Workers
		if len(lq.Group) == 0 {
			tq.GroupBy = q.GroupBy
		}
		if lq.Value == "" {
			tq.Value = q.Value
		}
		tq.P50 = tq.P50 || q.P50
		if lq.Distinct == "" {
			tq.Distinct = q.Distinct
		}
		if lq.Sort != "" {
			sortBy = lq.Sort
		}
		if lq.HasTop {
			topN = lq.Top
		}
		q = tq
	}
	if sortBy != "key" && sortBy != "count" {
		return fmt.Errorf("unknown sort %q (want key or count)", sortBy)
	}

	st, ds, gen, source, err := openSource(*snapshotPath, *seed, *scale, *workers)
	if err != nil {
		return err
	}
	if q.NeedsTables() {
		if gen == nil {
			// Joined columns probe the marketplace inventory; a snapshot
			// carries only the instance log, so rebuild the inventory from
			// the generation parameters (no instances are synthesized).
			gen = synth.Inventory(synth.Config{Seed: *seed, Scale: *scale})
		}
		q.Tables = query.NewTables(gen.Workers, gen.Batches)
	}

	if *explain {
		var pl fmt.Stringer
		if ds != nil {
			pl, err = query.ExplainDataset(ds, q)
		} else {
			pl, err = query.Explain(st, q)
		}
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, pl.String())
		fmt.Fprintln(stdout)
	}

	var res *query.Result
	var totalRows int
	if ds != nil {
		defer ds.Close()
		totalRows = ds.Manifest().TotalRows()
		res, err = query.RunDatasetContext(ctx, ds, q, query.DatasetOptions{SkipFailedShards: *degraded})
	} else {
		totalRows = st.Len()
		res, err = query.RunContext(ctx, st, q)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "source: %s (%d rows, %d segments)\n", source, totalRows, res.Stats.Segments)
	fmt.Fprintf(stdout, "query:  %s\n", q.Text())
	groups := append([]query.Group(nil), res.Groups...)
	if sortBy == "count" {
		sort.SliceStable(groups, func(i, j int) bool { return groups[i].Count > groups[j].Count })
	}
	renderGroups(stdout, &q, groups, topN)
	pct := 100.0
	if totalRows > 0 {
		pct = 100 * float64(res.Stats.RowsScanned) / float64(totalRows)
	}
	fmt.Fprintf(stdout, "scanned %d of %d rows (%.1f%%; %d of %d segments zone-map-pruned), matched %d in %d groups\n",
		res.Stats.RowsScanned, totalRows, pct, res.Stats.SegmentsPruned, res.Stats.Segments, res.Stats.RowsMatched, len(res.Groups))
	if ds != nil {
		fmt.Fprintf(stdout, "shards: %d opened, %d pruned, %d skipped\n",
			res.Stats.ShardsOpened, res.Stats.ShardsPruned, res.Stats.ShardsSkipped)
		for _, sk := range res.SkippedShards {
			fmt.Fprintf(stderr, "crowdquery: warning: skipped shard %s: %v\n", sk.Name, sk.Err)
		}
		if len(res.SkippedShards) > 0 {
			fmt.Fprintf(stderr, "crowdquery: warning: result is a PARTIAL aggregate over %d of %d shards\n",
				res.Stats.ShardsOpened, res.Stats.ShardsOpened+res.Stats.ShardsPruned+res.Stats.ShardsSkipped)
		}
	}
	return nil
}

// openSource opens the file at path — a snapshot or a sharded-dataset
// manifest, told apart by magic bytes — or generates the marketplace
// deterministically from (seed, scale) when no path is given. Exactly
// one of the store and dataset returns is non-nil; the synth dataset is
// non-nil only for the generated source (its worker/batch inventory
// backs joined columns without regenerating).
func openSource(path string, seed uint64, scale float64, workers int) (*store.Store, *store.Dataset, *synth.Dataset, string, error) {
	if path == "" {
		ds := synth.Generate(synth.Config{Seed: seed, Scale: scale, Parallelism: workers})
		return ds.Store, nil, ds, fmt.Sprintf("generated seed=%d scale=%g", seed, scale), nil
	}
	kind, err := store.DetectPath(path)
	if err != nil {
		return nil, nil, nil, "", err
	}
	switch kind {
	case store.KindManifest:
		d, err := store.OpenDatasetPath(path)
		if err != nil {
			return nil, nil, nil, "", fmt.Errorf("load dataset %s: %w", path, err)
		}
		return nil, d, nil, path, nil
	case store.KindSnapshot:
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, nil, "", err
		}
		defer f.Close()
		var st store.Store
		if _, err := st.ReadSnapshot(f, store.LoadOptions{Workers: workers}); err != nil {
			return nil, nil, nil, "", fmt.Errorf("load snapshot %s: %w", path, err)
		}
		return &st, nil, nil, path, nil
	}
	return nil, nil, nil, "", fmt.Errorf("%s: not a crowdscope snapshot or manifest: %w", path, store.ErrBadMagic)
}

// groupCols resolves the group key list the result table renders: the
// two-key list when the query grouped by two keys, else the single key.
func groupCols(q *query.Query) []query.GroupBy {
	if len(q.GroupBys) > 0 {
		return q.GroupBys
	}
	return []query.GroupBy{q.GroupBy}
}

// renderGroups prints the result table with only the requested aggregate
// columns.
func renderGroups(stdout io.Writer, q *query.Query, groups []query.Group, top int) {
	if len(groups) == 0 {
		fmt.Fprintln(stdout, "no rows matched")
		return
	}
	keys := groupCols(q)
	var headers []string
	for _, g := range keys {
		headers = append(headers, g.String())
	}
	headers = append(headers, "count")
	withValue := q.Value != query.ValueNone
	if withValue {
		headers = append(headers, "sum", "mean", "min", "max")
	}
	if q.P50 {
		headers = append(headers, "p50")
	}
	if q.Distinct != query.ColNone {
		headers = append(headers, "distinct "+q.Distinct.String())
	}
	tbl := report.NewTable("Query result", headers...)
	for i, g := range groups {
		if top > 0 && i >= top {
			break
		}
		row := []interface{}{keyLabel(keys[0], g.Key)}
		if len(keys) > 1 {
			row = append(row, keyLabel(keys[1], g.Key2))
		}
		row = append(row, g.Count)
		if withValue {
			row = append(row, g.Sum, g.Mean(), g.Min, g.Max)
		}
		if q.P50 {
			row = append(row, g.P50)
		}
		if q.Distinct != query.ColNone {
			row = append(row, g.Distinct)
		}
		tbl.AddRow(row...)
	}
	tbl.Render(stdout)
	if top > 0 && len(groups) > top {
		fmt.Fprintf(stdout, "(%d more groups; raise -top to see them)\n", len(groups)-top)
	}
}

// keyLabel renders a group key; week keys carry the paper's axis label.
func keyLabel(g query.GroupBy, key int64) string {
	switch g {
	case query.GroupWeek:
		if key >= 0 {
			return fmt.Sprintf("w%d (%s)", key, model.FormatWeek(int32(key)))
		}
		return fmt.Sprintf("w%d (pre-epoch)", key)
	case query.GroupDay:
		return fmt.Sprintf("d%d", key)
	default:
		return fmt.Sprintf("%d", key)
	}
}
