// Command crowdgen generates a synthetic marketplace dataset and writes
// its instance log snapshot to disk.
//
// Usage:
//
//	crowdgen -seed 1701 -scale 0.02 -out marketplace.crow
//
// Generation is deterministic in (seed, scale): tools that need the full
// inventory (batches, workers, HTML) regenerate it from the same
// parameters instead of deserializing it.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"crowdscope/internal/synth"
)

func main() {
	seed := flag.Uint64("seed", 1701, "generation seed")
	scale := flag.Float64("scale", 0.02, "instance-volume scale in (0,1]; 1.0 ≈ 27M instances")
	workers := flag.Int("workers", 0, "generation pipeline shards (0 = GOMAXPROCS, 1 = serial); never changes the data")
	out := flag.String("out", "marketplace.crow", "snapshot output path")
	flag.Parse()

	t0 := time.Now()
	ds := synth.Generate(synth.Config{Seed: *seed, Scale: *scale, Parallelism: *workers})
	genDur := time.Since(t0)

	f, err := os.Create(*out)
	if err != nil {
		fatal("create %s: %v", *out, err)
	}
	defer f.Close()
	n, err := ds.Store.WriteTo(f)
	if err != nil {
		fatal("write snapshot: %v", err)
	}

	obs := ds.ObservedWorkers()
	fmt.Printf("generated in %v\n", genDur.Round(time.Millisecond))
	fmt.Printf("  batches:      %d (%d sampled)\n", len(ds.Batches), len(ds.SampledBatchIDs()))
	fmt.Printf("  task types:   %d\n", len(ds.TaskTypes))
	fmt.Printf("  workers:      %d observed (%d generated)\n", len(obs), len(ds.Workers))
	fmt.Printf("  instances:    %d in %d segments\n", ds.Store.Len(), len(ds.Store.Segments()))
	fmt.Printf("  snapshot:     %s (%.1f MB, %.1f bytes/row)\n", *out, float64(n)/1e6, float64(n)/float64(ds.Store.Len()))
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "crowdgen: "+format+"\n", args...)
	os.Exit(1)
}
