// Command crowdgen generates a synthetic marketplace dataset and writes
// its instance log snapshot to disk.
//
// Usage:
//
//	crowdgen -seed 1701 -scale 0.02 -out marketplace.crow
//	crowdgen -verify-snapshot ...   # re-load and compare after writing
//
// Generation is deterministic in (seed, scale): tools that need the full
// inventory (batches, workers, HTML) regenerate it from the same
// parameters instead of deserializing it. Snapshots embed a provenance
// section (config hash, seed, tool) so downstream loads can check they
// are analyzing under the config that produced the rows.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"crowdscope/internal/store"
	"crowdscope/internal/synth"
)

// toolVersion identifies this writer in snapshot provenance.
const toolVersion = "crowdgen/3"

func main() {
	seed := flag.Uint64("seed", 1701, "generation seed")
	scale := flag.Float64("scale", 0.02, "instance-volume scale in (0,1]; 1.0 ≈ 27M instances")
	workers := flag.Int("workers", 0, "generation pipeline shards (0 = GOMAXPROCS, 1 = serial); never changes the data")
	out := flag.String("out", "marketplace.crow", "snapshot output path")
	verify := flag.Bool("verify-snapshot", false, "re-open the written snapshot, strict-load it, and compare column-for-column")
	flag.Parse()

	cfg := synth.Config{Seed: *seed, Scale: *scale, Parallelism: *workers}
	t0 := time.Now()
	ds := synth.Generate(cfg)
	genDur := time.Since(t0)

	f, err := os.Create(*out)
	if err != nil {
		fatal("create %s: %v", *out, err)
	}
	defer f.Close()
	prov := &store.Provenance{ConfigHash: cfg.Hash(), Seed: cfg.Seed, Tool: toolVersion}
	n, err := ds.Store.WriteSnapshot(f, store.WriteOptions{Provenance: prov, Workers: *workers})
	if err != nil {
		fatal("write snapshot: %v", err)
	}

	obs := ds.ObservedWorkers()
	fmt.Printf("generated in %v\n", genDur.Round(time.Millisecond))
	fmt.Printf("  batches:      %d (%d sampled)\n", len(ds.Batches), len(ds.SampledBatchIDs()))
	fmt.Printf("  task types:   %d\n", len(ds.TaskTypes))
	fmt.Printf("  workers:      %d observed (%d generated)\n", len(obs), len(ds.Workers))
	fmt.Printf("  instances:    %d in %d segments\n", ds.Store.Len(), len(ds.Store.Segments()))
	fmt.Printf("  snapshot:     %s (%.1f MB, %.1f bytes/row, config %016x)\n", *out, float64(n)/1e6, float64(n)/float64(ds.Store.Len()), prov.ConfigHash)

	if *verify {
		t0 = time.Now()
		if err := verifySnapshot(*out, ds.Store, *workers); err != nil {
			fatal("verify %s: %v", *out, err)
		}
		fmt.Printf("  verified:     strict reload matches column-for-column (%v)\n", time.Since(t0).Round(time.Millisecond))
	}
}

// verifySnapshot strict-loads the written file and compares it
// column-for-column against the in-memory store, exercising the full
// write→read path before the generator's output is trusted.
func verifySnapshot(path string, want *store.Store, workers int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var got store.Store
	if _, err := got.ReadSnapshot(f, store.LoadOptions{Workers: workers}); err != nil {
		return err
	}
	if got.Len() != want.Len() || got.NumBatches() != want.NumBatches() {
		return fmt.Errorf("shape mismatch: %d rows/%d batches, wrote %d/%d", got.Len(), got.NumBatches(), want.Len(), want.NumBatches())
	}
	for i := 0; i < want.Len(); i++ {
		if got.Row(i) != want.Row(i) {
			return fmt.Errorf("row %d differs after reload: %+v vs %+v", i, got.Row(i), want.Row(i))
		}
	}
	for b := 0; b < want.NumBatches(); b++ {
		glo, ghi := got.BatchRange(uint32(b))
		wlo, whi := want.BatchRange(uint32(b))
		if glo != wlo || ghi != whi {
			return fmt.Errorf("batch %d range differs after reload", b)
		}
	}
	ws, gs := want.Segments(), got.Segments()
	if len(ws) != len(gs) {
		return fmt.Errorf("segment count differs after reload: %d vs %d", len(gs), len(ws))
	}
	for i := range ws {
		if ws[i] != gs[i] {
			return fmt.Errorf("segment %d differs after reload", i)
		}
	}
	return got.Validate()
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "crowdgen: "+format+"\n", args...)
	os.Exit(1)
}
