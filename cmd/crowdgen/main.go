// Command crowdgen generates a synthetic marketplace dataset and writes
// its instance log snapshot to disk.
//
// Usage:
//
//	crowdgen -seed 1701 -scale 0.02 -out marketplace.crow
//	crowdgen -verify-snapshot ...   # re-load and compare after writing
//
// Generation is deterministic in (seed, scale): tools that need the full
// inventory (batches, workers, HTML) regenerate it from the same
// parameters instead of deserializing it. Snapshots embed a provenance
// section (config hash, seed, tool) so downstream loads can check they
// are analyzing under the config that produced the rows.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"crowdscope/internal/cli"
	"crowdscope/internal/store"
	"crowdscope/internal/synth"
)

// toolVersion identifies this writer in snapshot provenance.
const toolVersion = "crowdgen/3"

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "crowdgen: %v\n", err)
		os.Exit(cli.ExitCode(err))
	}
}

// run is the testable entry point: it parses args, writes everything to
// the given writers, and returns instead of exiting.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("crowdgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 1701, "generation seed")
	scale := fs.Float64("scale", 0.02, "instance-volume scale in (0,1]; 1.0 ≈ 27M instances")
	workers := fs.Int("workers", 0, "generation pipeline shards (0 = GOMAXPROCS, 1 = serial); never changes the data")
	out := fs.String("out", "marketplace.crow", "snapshot output path (with -shards: the manifest path; shards are written alongside)")
	shards := fs.Int("shards", 0, "split the snapshot into this many shard files plus a manifest (0 = single file)")
	verify := fs.Bool("verify-snapshot", false, "re-open the written snapshot, strict-load it, and compare column-for-column")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed to stderr
		}
		return err
	}

	cfg := synth.Config{Seed: *seed, Scale: *scale, Parallelism: *workers}
	t0 := time.Now()
	ds := synth.Generate(cfg)
	genDur := time.Since(t0)

	prov := &store.Provenance{ConfigHash: cfg.Hash(), Seed: cfg.Seed, Tool: toolVersion}
	opts := store.WriteOptions{Provenance: prov, Workers: *workers}
	var n int64
	var man *store.Manifest
	if *shards > 0 {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create %s: %w", *out, err)
		}
		defer f.Close()
		dir := filepath.Dir(*out)
		stem := strings.TrimSuffix(filepath.Base(*out), ".crow")
		man, err = ds.Store.WriteDataset(f, *shards, stem, func(name string) (io.WriteCloser, error) {
			return os.Create(filepath.Join(dir, name))
		}, opts)
		if err != nil {
			return fmt.Errorf("write dataset: %w", err)
		}
		n = man.TotalBytes()
	} else {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create %s: %w", *out, err)
		}
		defer f.Close()
		if n, err = ds.Store.WriteSnapshot(f, opts); err != nil {
			return fmt.Errorf("write snapshot: %w", err)
		}
	}

	obs := ds.ObservedWorkers()
	fmt.Fprintf(stdout, "generated in %v\n", genDur.Round(time.Millisecond))
	fmt.Fprintf(stdout, "  batches:      %d (%d sampled)\n", len(ds.Batches), len(ds.SampledBatchIDs()))
	fmt.Fprintf(stdout, "  task types:   %d\n", len(ds.TaskTypes))
	fmt.Fprintf(stdout, "  workers:      %d observed (%d generated)\n", len(obs), len(ds.Workers))
	fmt.Fprintf(stdout, "  instances:    %d in %d segments\n", ds.Store.Len(), len(ds.Store.Segments()))
	if man != nil {
		fmt.Fprintf(stdout, "  dataset:      %s + %d shards (%.1f MB, %.2f bytes/row, config %016x)\n", *out, len(man.Shards), float64(n)/1e6, float64(n)/float64(ds.Store.Len()), prov.ConfigHash)
	} else {
		fmt.Fprintf(stdout, "  snapshot:     %s (%.1f MB, %.2f bytes/row, config %016x)\n", *out, float64(n)/1e6, float64(n)/float64(ds.Store.Len()), prov.ConfigHash)
	}
	if stats := ds.Store.CompressionStats(); stats != nil {
		var rawTot, encTot int64
		parts := make([]string, 0, len(stats))
		for _, c := range stats {
			rawTot += c.RawBytes
			encTot += c.EncodedBytes
			parts = append(parts, fmt.Sprintf("%s %.1fx", c.Name, c.Ratio()))
		}
		fmt.Fprintf(stdout, "  columns:      %.1f MB encoded from %.1f MB raw (%.2fx)\n",
			float64(encTot)/1e6, float64(rawTot)/1e6, float64(rawTot)/float64(encTot))
		fmt.Fprintf(stdout, "  compression:  %s\n", strings.Join(parts, ", "))
	}

	if *verify {
		t0 = time.Now()
		var verr error
		if man != nil {
			verr = verifyDataset(*out, ds.Store, *workers)
		} else {
			verr = verifySnapshot(*out, ds.Store, *workers)
		}
		if verr != nil {
			return fmt.Errorf("verify %s: %w", *out, verr)
		}
		fmt.Fprintf(stdout, "  verified:     strict reload matches column-for-column (%v)\n", time.Since(t0).Round(time.Millisecond))
	}
	return nil
}

// verifySnapshot strict-loads the written file and compares it
// column-for-column against the in-memory store, exercising the full
// write→read path before the generator's output is trusted.
func verifySnapshot(path string, want *store.Store, workers int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var got store.Store
	if _, err := got.ReadSnapshot(f, store.LoadOptions{Workers: workers}); err != nil {
		return err
	}
	return compareStores(&got, want)
}

// verifyDataset strict-loads every shard of the written dataset through
// the manifest and compares the assembled store column-for-column.
func verifyDataset(path string, want *store.Store, workers int) error {
	d, err := store.OpenDatasetPath(path)
	if err != nil {
		return err
	}
	defer d.Close()
	got, _, err := d.LoadStore(store.LoadOptions{Workers: workers})
	if err != nil {
		return err
	}
	return compareStores(got, want)
}

// compareStores checks the reloaded store matches the written one in
// every column, batch range and segment.
func compareStores(got, want *store.Store) error {
	if got.Len() != want.Len() || got.NumBatches() != want.NumBatches() {
		return fmt.Errorf("shape mismatch: %d rows/%d batches, wrote %d/%d", got.Len(), got.NumBatches(), want.Len(), want.NumBatches())
	}
	// Compare whole columns (one accessor call each) rather than
	// materializing rows one at a time.
	for _, c := range []struct {
		name     string
		got, ref any
	}{
		{"batch", got.Batches(), want.Batches()},
		{"tasktype", got.TaskTypes(), want.TaskTypes()},
		{"item", got.Items(), want.Items()},
		{"worker", got.Workers(), want.Workers()},
		{"start", got.Starts(), want.Starts()},
		{"end", got.Ends(), want.Ends()},
		{"trust", got.Trusts(), want.Trusts()},
		{"answer", got.Answers(), want.Answers()},
	} {
		if i := firstColumnDiff(c.got, c.ref); i >= 0 {
			return fmt.Errorf("column %s row %d differs after reload", c.name, i)
		}
	}
	for b := 0; b < want.NumBatches(); b++ {
		glo, ghi := got.BatchRange(uint32(b))
		wlo, whi := want.BatchRange(uint32(b))
		if glo != wlo || ghi != whi {
			return fmt.Errorf("batch %d range differs after reload", b)
		}
	}
	ws, gs := want.Segments(), got.Segments()
	if len(ws) != len(gs) {
		return fmt.Errorf("segment count differs after reload: %d vs %d", len(gs), len(ws))
	}
	for i := range ws {
		if ws[i] != gs[i] {
			return fmt.Errorf("segment %d differs after reload", i)
		}
	}
	return got.Validate()
}

// firstColumnDiff returns the first differing index of two same-typed
// column slices, or -1 when equal. Trust compares bit patterns, so the
// check is exact even for NaN payloads.
func firstColumnDiff(a, b any) int {
	switch av := a.(type) {
	case []uint32:
		bv := b.([]uint32)
		for i := range av {
			if av[i] != bv[i] {
				return i
			}
		}
	case []int64:
		bv := b.([]int64)
		for i := range av {
			if av[i] != bv[i] {
				return i
			}
		}
	case []float32:
		bv := b.([]float32)
		for i := range av {
			if math.Float32bits(av[i]) != math.Float32bits(bv[i]) {
				return i
			}
		}
	}
	return -1
}
