package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crowdscope/internal/store"
	"crowdscope/internal/synth"
)

// chainSeed/chainScale are the tiny generation parameters the CLI e2e
// tests share: crowdgen's golden test below pins the snapshot bytes this
// config produces, and the crowdstats/crowdquery tests consume the same
// snapshot — together they golden-test the crowdgen → crowdstats →
// crowdquery chain.
const (
	chainSeed  = 1701
	chainScale = 0.001
)

// TestRunWritesVerifiedSnapshot: the full CLI path — generate, write,
// strict-reload, column-compare — against a temp file, with the output
// byte-identical to a direct synth.Generate + WriteSnapshot (what the
// downstream CLI tests rebuild).
func TestRunWritesVerifiedSnapshot(t *testing.T) {
	out := filepath.Join(t.TempDir(), "tiny.crow")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-seed", "1701", "-scale", "0.001", "-workers", "4", "-out", out, "-verify-snapshot"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	for _, want := range []string{"instances:", "segments", "verified:     strict reload matches column-for-column",
		"columns:", "compression:  batch "} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("output missing %q:\n%s", want, stdout.String())
		}
	}
	// The compression report must cover every column of the log.
	for _, col := range []string{"batch", "tasktype", "item", "worker", "start", "end", "trust", "answer"} {
		if !strings.Contains(stdout.String(), col+" ") {
			t.Errorf("compression report missing column %q:\n%s", col, stdout.String())
		}
	}

	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	cfg := synth.Config{Seed: chainSeed, Scale: chainScale, Parallelism: 4}
	ds := synth.Generate(cfg)
	var want bytes.Buffer
	prov := &store.Provenance{ConfigHash: cfg.Hash(), Seed: cfg.Seed, Tool: toolVersion}
	if _, err := ds.Store.WriteSnapshot(&want, store.WriteOptions{Provenance: prov, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("crowdgen snapshot (%d bytes) differs from direct synth+WriteSnapshot (%d bytes)", len(got), want.Len())
	}

	// The snapshot reloads with provenance and zone maps intact.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var st store.Store
	rep, err := st.ReadSnapshot(f, store.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Provenance == nil || rep.Provenance.Tool != toolVersion || rep.Provenance.Seed != chainSeed {
		t.Errorf("provenance = %+v", rep.Provenance)
	}
	if st.NumSegments() != 4 {
		t.Errorf("segments = %d, want 4 (generated with -workers 4)", st.NumSegments())
	}
}

// TestHelpExitsClean: -h prints usage and succeeds (exit 0).
func TestHelpExitsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr); err != nil {
		t.Fatalf("-h returned %v", err)
	}
	if !strings.Contains(stderr.String(), "Usage of crowdgen") {
		t.Errorf("usage not printed: %s", stderr.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bogus"}, &stdout, &stderr); err == nil {
		t.Fatal("bad flag accepted")
	}
	if !strings.Contains(stderr.String(), "Usage of crowdgen") {
		t.Errorf("usage not printed to stderr: %s", stderr.String())
	}
}

func TestRunUnwritableOut(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-scale", "0.001", "-out", filepath.Join(t.TempDir(), "no", "such", "dir.crow")}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "create") {
		t.Fatalf("err = %v, want create failure", err)
	}
}
