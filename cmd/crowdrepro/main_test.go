package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestListExperiments: -list enumerates the paper artifacts without
// generating anything.
func TestListExperiments(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	out := stdout.String()
	for _, id := range []string{"fig1", "fig5b", "fig29", "tab4", "sec49"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %s:\n%s", id, out)
		}
	}
	if strings.Count(out, "\n") < 20 {
		t.Errorf("-list shows only %d lines", strings.Count(out, "\n"))
	}
}

func TestUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-run", "nope"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown experiment", err)
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bogus"}, &stdout, &stderr); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestMissingSnapshot(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-snapshot", "testdata/nope.crow"}, &stdout, &stderr); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}
