// Command crowdrepro regenerates the paper's tables and figures from a
// synthetic marketplace and prints paper-vs-measured checkpoints.
//
// Usage:
//
//	crowdrepro                        # run everything
//	crowdrepro -run fig3,tab1,sec49   # run selected experiments
//	crowdrepro -tsv out/              # also write TSV series for plotting
//	crowdrepro -snapshot marketplace.crow   # analyze a crowdgen snapshot
//	                                        # (provenance-checked) instead
//	                                        # of rematerializing the log
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"crowdscope/internal/cli"
	"crowdscope/internal/core"
	"crowdscope/internal/experiments"
	"crowdscope/internal/profiling"
	"crowdscope/internal/store"
	"crowdscope/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "crowdrepro: %v\n", err)
		os.Exit(cli.ExitCode(err))
	}
}

// run is the testable entry point: it parses args, writes everything to
// the given writers, and returns instead of exiting.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("crowdrepro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 1701, "generation seed")
	scale := fs.Float64("scale", 0.02, "instance-volume scale in (0,1]")
	workers := fs.Int("workers", 0, "generation and analysis goroutine bound (0 = GOMAXPROCS, 1 = serial); never changes the data")
	snapshotPath := fs.String("snapshot", "", "load the instance log from this snapshot instead of rematerializing it (inventory still derives from -seed/-scale; provenance is checked)")
	runIDs := fs.String("run", "", "comma-separated experiment IDs (default: all)")
	tsvDir := fs.String("tsv", "", "directory to write TSV series into")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	checksMD := fs.String("checks-md", "", "write a paper-vs-measured markdown report to this file")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed to stderr
		}
		return err
	}

	stopProfiles := profiling.Start(*cpuProfile, *memProfile)
	defer stopProfiles()

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-7s %-12s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	}

	selected := experiments.All()
	if *runIDs != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	cfg := synth.Config{Seed: *seed, Scale: *scale, Parallelism: *workers}
	copts := core.DefaultOptions()
	copts.Workers = *workers

	var analysis *core.Analysis
	if *snapshotPath != "" {
		fmt.Fprintf(stdout, "loading snapshot %s (inventory from seed=%d scale=%g)...\n", *snapshotPath, *seed, *scale)
		t0 := time.Now()
		st, prov, err := loadSnapshot(*snapshotPath, *workers)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  %d instances (%d segments) loaded in %v\n", st.Len(), len(st.Segments()), time.Since(t0).Round(time.Millisecond))
		fmt.Fprintln(stdout, "running analysis pipeline (clustering, metrics, features)...")
		t0 = time.Now()
		analysis, err = core.FromSnapshot(cfg, st, prov, copts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  %d clusters in %v\n", analysis.Clustering.NumClusters(), time.Since(t0).Round(time.Millisecond))
	} else {
		fmt.Fprintf(stdout, "generating marketplace (seed=%d scale=%g)...\n", *seed, *scale)
		t0 := time.Now()
		ds := synth.Generate(cfg)
		fmt.Fprintf(stdout, "  %d instances (%d segments), %d sampled batches in %v\n", ds.Store.Len(), len(ds.Store.Segments()), len(ds.SampledBatchIDs()), time.Since(t0).Round(time.Millisecond))

		fmt.Fprintln(stdout, "running analysis pipeline (clustering, metrics, features)...")
		t0 = time.Now()
		analysis = core.New(ds, copts)
		fmt.Fprintf(stdout, "  %d clusters in %v\n", analysis.Clustering.NumClusters(), time.Since(t0).Round(time.Millisecond))
	}
	ds := analysis.DS

	ctx := experiments.NewContext(analysis)
	ctx.ScanWorkers = *workers
	var md *mdReport
	if *checksMD != "" {
		md = newMDReport(*seed, *scale, ds.Store.Len(), analysis.Clustering.NumClusters())
	}
	for _, e := range selected {
		fmt.Fprintf(stdout, "\n==== %s — %s: %s ====\n", e.ID, e.Paper, e.Title)
		out := e.Run(ctx)
		fmt.Fprint(stdout, out.Text)
		if md != nil {
			md.add(e, out)
		}
		if len(out.Checks) > 0 {
			fmt.Fprintln(stdout, "  paper-vs-measured:")
			for _, c := range out.Checks {
				paper := "—"
				if !math.IsNaN(c.Paper) {
					paper = fmt.Sprintf("%.4g", c.Paper)
				}
				note := ""
				if c.Note != "" {
					note = "  (" + c.Note + ")"
				}
				fmt.Fprintf(stdout, "    %-55s paper=%-9s measured=%-9.4g %s%s\n", c.Name, paper, c.Measured, c.Unit, note)
			}
		}
		if *tsvDir != "" {
			if err := os.MkdirAll(*tsvDir, 0o755); err != nil {
				return fmt.Errorf("mkdir %s: %w", *tsvDir, err)
			}
			for name, series := range out.Series {
				path := filepath.Join(*tsvDir, name+".tsv")
				f, err := os.Create(path)
				if err != nil {
					return fmt.Errorf("create %s: %w", path, err)
				}
				series.Render(f)
				f.Close()
			}
		}
	}
	if md != nil {
		if err := os.WriteFile(*checksMD, []byte(md.String()), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *checksMD, err)
		}
		fmt.Fprintf(stdout, "\nwrote %s\n", *checksMD)
	}
	return nil
}

// loadSnapshot strict-loads an instance-log snapshot; the provenance (if
// present) is returned for core.FromSnapshot's config check.
func loadSnapshot(path string, workers int) (*store.Store, *store.Provenance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var st store.Store
	rep, err := st.ReadSnapshot(f, store.LoadOptions{Workers: workers})
	if err != nil {
		return nil, nil, fmt.Errorf("load snapshot %s: %w (run `crowdstats verify-snapshot %s` to inspect the damage)", path, err, path)
	}
	return &st, rep.Provenance, nil
}

// mdReport accumulates the EXPERIMENTS.md paper-vs-measured report.
type mdReport struct {
	b strings.Builder
}

func newMDReport(seed uint64, scale float64, instances, clusters int) *mdReport {
	m := &mdReport{}
	fmt.Fprintf(&m.b, "# EXPERIMENTS — paper vs measured\n\n")
	fmt.Fprintf(&m.b, "Generated by `crowdrepro -seed %d -scale %g -checks-md EXPERIMENTS.md`.\n\n", seed, scale)
	fmt.Fprintf(&m.b, "Dataset: %d materialized task instances, %d clusters over the 12k-batch sample.\n", instances, clusters)
	fmt.Fprintf(&m.b, "Absolute counts scale with the generator's scale factor; all comparisons\n")
	fmt.Fprintf(&m.b, "below are medians, fractions or ratios, which are scale-invariant. A paper\n")
	fmt.Fprintf(&m.b, "value of `—` marks qualitative claims (shape/direction) without a published\n")
	fmt.Fprintf(&m.b, "number.\n")
	return m
}

func (m *mdReport) add(e experiments.Experiment, out *experiments.Outcome) {
	fmt.Fprintf(&m.b, "\n## %s (%s) — %s\n\n", e.Paper, e.ID, e.Title)
	if len(out.Checks) == 0 {
		fmt.Fprintf(&m.b, "(qualitative artifact; see the TSV series)\n")
		return
	}
	fmt.Fprintf(&m.b, "| checkpoint | paper | measured | unit | note |\n")
	fmt.Fprintf(&m.b, "|---|---|---|---|---|\n")
	for _, c := range out.Checks {
		paper := "—"
		if !math.IsNaN(c.Paper) {
			paper = fmt.Sprintf("%.4g", c.Paper)
		}
		fmt.Fprintf(&m.b, "| %s | %s | %.4g | %s | %s |\n", c.Name, paper, c.Measured, c.Unit, c.Note)
	}
}

func (m *mdReport) String() string { return m.b.String() }
