package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crowdscope/internal/store"
)

// ingest runs the CLI against dir and returns stdout.
func ingest(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run %v: %v (stderr: %s)", args, err, stderr.String())
	}
	return stdout.String()
}

func TestIngestResumeAndExport(t *testing.T) {
	dir := t.TempDir()
	out := ingest(t, "-dir", dir, "-batches", "6", "-rows", "25", "-sync", "none",
		"-seal-rows", "50", "-ckpt-rows", "100")
	if !strings.Contains(out, "recovered 0 rows (0 sealed segments), next batch 0") ||
		!strings.Contains(out, "ingested 150 rows in 6 batches (batches 0..5 acked)") {
		t.Fatalf("first run output:\n%s", out)
	}

	// A second run over the same directory recovers everything and
	// resumes at the next batch ID.
	snap := filepath.Join(t.TempDir(), "live.crow")
	out = ingest(t, "-dir", dir, "-batches", "2", "-rows", "25", "-sync", "none",
		"-seal-rows", "50", "-ckpt-rows", "100", "-checkpoint", "-export", snap)
	if !strings.Contains(out, "recovered 150 rows") ||
		!strings.Contains(out, "next batch 6") ||
		!strings.Contains(out, "batches 6..7 acked") ||
		!strings.Contains(out, "checkpointed at 200 rows") ||
		!strings.Contains(out, "exported 200 rows") {
		t.Fatalf("resumed run output:\n%s", out)
	}

	// The exported snapshot is a valid immutable store with every
	// acknowledged row.
	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var st store.Store
	if _, err := st.ReadSnapshot(f, store.LoadOptions{}); err != nil {
		t.Fatalf("read exported snapshot: %v", err)
	}
	if st.Len() != 200 {
		t.Fatalf("snapshot has %d rows, want 200", st.Len())
	}

	// Status-only run mutates nothing.
	out = ingest(t, "-dir", dir, "-sync", "none", "-seal-rows", "50", "-ckpt-rows", "100",
		"-batches", "0")
	if !strings.Contains(out, "recovered 200 rows") || strings.Contains(out, "ingested") {
		t.Fatalf("status output:\n%s", out)
	}
}

func TestIngestDeterministicAcrossRestart(t *testing.T) {
	// One uninterrupted run and a run split in two must produce
	// bit-identical exported snapshots: rows are a pure function of
	// (seed, batch).
	export := func(dirRuns [][]string) []byte {
		dir := t.TempDir()
		snap := filepath.Join(dir, "out.crow")
		for _, extra := range dirRuns {
			args := append([]string{"-dir", filepath.Join(dir, "live"), "-rows", "10",
				"-sync", "none", "-seal-rows", "30"}, extra...)
			ingest(t, args...)
		}
		ingest(t, "-dir", filepath.Join(dir, "live"), "-batches", "0", "-rows", "10",
			"-sync", "none", "-seal-rows", "30", "-export", snap)
		data, err := os.ReadFile(snap)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	oneShot := export([][]string{{"-batches", "8"}})
	split := export([][]string{{"-batches", "3"}, {"-batches", "5", "-checkpoint"}})
	if !bytes.Equal(oneShot, split) {
		t.Fatal("split ingest diverged from one-shot ingest")
	}
}

func TestBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"no dir":     {"-batches", "1"},
		"bad sync":   {"-dir", t.TempDir(), "-sync", "sometimes"},
		"bad rows":   {"-dir", t.TempDir(), "-rows", "0"},
		"positional": {"-dir", t.TempDir(), "extra"},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
