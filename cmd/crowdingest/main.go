// Command crowdingest drives append ingest into a crash-safe live
// store: every batch is WAL-logged before it is acknowledged, sealed
// into immutable segments at the configured threshold, and bounded by
// checkpoints so recovery replays only a suffix of the log. Killing the
// process at any instant — including mid-write — loses at most the
// unacknowledged tail; rerunning the same command resumes where the
// durable prefix ends.
//
// Usage:
//
//	crowdingest -dir live/ -batches 200 -rows 50        # ingest
//	crowdingest -dir live/ -batches 0                   # status only
//	crowdingest -dir live/ -batches 100 -export out.crow
//
// The store directory is self-describing: reopening recovers the
// checkpoint plus the WAL suffix and continues at the next batch ID.
// -seal-rows and -ckpt-rows must be kept consistent across runs over
// the same directory.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"crowdscope/internal/cli"
	"crowdscope/internal/model"
	"crowdscope/internal/store"
	"crowdscope/internal/wal"
	"flag"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "crowdingest: %v\n", err)
		os.Exit(cli.ExitCode(err))
	}
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("crowdingest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "live store directory (created if absent)")
	batches := fs.Int("batches", 50, "batches to ingest this run (0 = just report status)")
	rows := fs.Int("rows", 40, "rows per batch")
	seed := fs.Uint64("seed", 1701, "content seed; rows are a pure function of (seed, batch)")
	syncS := fs.String("sync", "always", "WAL fsync policy: always, rotate or none")
	sealRows := fs.Int("seal-rows", 0, "rows per sealed segment (0 = default; keep consistent per directory)")
	ckptRows := fs.Int("ckpt-rows", 0, "checkpoint every N acknowledged rows (0 = default, -1 = never)")
	finalCkpt := fs.Bool("checkpoint", false, "force a checkpoint before exiting")
	export := fs.String("export", "", "also write an immutable snapshot of the live contents to this path")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if *rows <= 0 || *batches < 0 {
		return fmt.Errorf("-rows must be positive and -batches non-negative")
	}
	var sync wal.SyncPolicy
	switch *syncS {
	case "always":
		sync = wal.SyncAlways
	case "rotate":
		sync = wal.SyncRotate
	case "none":
		sync = wal.SyncNone
	default:
		return fmt.Errorf("unknown -sync %q (want always, rotate or none)", *syncS)
	}

	ls, err := store.OpenLive(*dir, store.LiveConfig{
		SealRows:       *sealRows,
		CheckpointRows: *ckptRows,
		Sync:           sync,
	})
	if err != nil {
		return fmt.Errorf("open live store: %w", err)
	}
	defer ls.Close()
	next := ls.NextBatch()
	fmt.Fprintf(stdout, "recovered %d rows (%d sealed segments), next batch %d\n",
		ls.Rows(), ls.SealedSegments(), next)

	ingested := 0
	for b := 0; b < *batches; b++ {
		batch := next + uint32(b)
		if err := ls.Append(genBatch(*seed, batch, *rows)); err != nil {
			return fmt.Errorf("append batch %d: %w", batch, err)
		}
		ingested += *rows
	}
	if *batches > 0 {
		fmt.Fprintf(stdout, "ingested %d rows in %d batches (batches %d..%d acked)\n",
			ingested, *batches, next, next+uint32(*batches)-1)
	}
	if *finalCkpt {
		if err := ls.Checkpoint(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		fmt.Fprintf(stdout, "checkpointed at %d rows\n", ls.Rows())
	}
	if *export != "" {
		st, err := ls.Store()
		if err != nil {
			return fmt.Errorf("assemble live contents: %w", err)
		}
		f, err := os.Create(*export)
		if err != nil {
			return fmt.Errorf("create %s: %w", *export, err)
		}
		if _, err := st.WriteSnapshot(f, store.WriteOptions{}); err != nil {
			f.Close()
			return fmt.Errorf("export snapshot: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", *export, err)
		}
		fmt.Fprintf(stdout, "exported %d rows\n", st.Len())
	}
	fmt.Fprintf(stdout, "live store: %d rows, %d sealed segments\n", ls.Rows(), ls.SealedSegments())
	return nil
}

// genBatch derives one batch's rows purely from (seed, batch), so an
// interrupted run rerun with the same seed regenerates exactly the
// rows the durable prefix already holds.
func genBatch(seed uint64, batch uint32, rows int) []model.Instance {
	rng := rand.New(rand.NewSource(int64(seed) ^ int64(batch)*0x9E3779B9))
	out := make([]model.Instance, rows)
	base := int64(1400000000) + int64(batch)*3600
	for i := range out {
		start := base + int64(i)*7 + int64(rng.Intn(60))
		out[i] = model.Instance{
			Batch:    batch,
			TaskType: uint32(rng.Intn(8)),
			Item:     uint32(i),
			Worker:   uint32(100 + rng.Intn(50)),
			Start:    start,
			End:      start + 30 + int64(rng.Intn(600)),
			Trust:    float32(rng.Intn(1000)) / 1000,
			Answer:   uint32(rng.Intn(4)),
		}
	}
	return out
}
