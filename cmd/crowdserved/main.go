// Command crowdserved serves live analytical queries over a crash-safe
// live store: an HTTP/JSON daemon that ingests WAL-durable row batches
// and answers the full -q query language against MVCC snapshots of the
// store, so queries see consistent data and never block ingest.
//
// Usage:
//
//	crowdserved -dir live/ -addr 127.0.0.1:8080
//	crowdserved -dir live/ -tables -seed 1701 -scale 0.02   # joined columns
//
// Endpoints:
//
//	GET  /query?q=...&explain=1   run a -q language query (POST JSON works too)
//	POST /ingest                  {"rows":[...], "auto_batch":true}
//	GET  /stats                   store, view, plan-cache and request counters
//	GET  /healthz                 liveness
//
// Example:
//
//	curl 'localhost:8080/query?q=where+trust+>=+0.8+|+group+week+|+value+duration+|+p50'
//
// Shutdown (SIGINT/SIGTERM) drains in-flight requests and takes a final
// checkpoint, so a clean restart recovers without WAL replay. The
// background compactor merges small sealed segments on a ticker;
// -ckpt-every additionally bounds recovery for slow ingest. -seal-rows
// and -ckpt-rows must be kept consistent across runs over the same
// directory.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowdscope/internal/cli"
	"crowdscope/internal/query"
	"crowdscope/internal/serve"
	"crowdscope/internal/store"
	"crowdscope/internal/synth"
	"crowdscope/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "crowdserved: %v\n", err)
		os.Exit(cli.ExitCode(err))
	}
}

// run is the testable entry point: it serves until the process gets
// SIGINT/SIGTERM or the stop channel (tests) closes, then drains,
// checkpoints, and returns.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("crowdserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "live store directory (created if absent)")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
	syncS := fs.String("sync", "always", "WAL fsync policy: always, rotate or none")
	sealRows := fs.Int("seal-rows", 0, "rows per sealed segment (0 = default; keep consistent per directory)")
	ckptRows := fs.Int("ckpt-rows", 0, "checkpoint every N acknowledged rows (0 = default, -1 = never)")
	ckptEvery := fs.Duration("ckpt-every", 0, "also checkpoint on this period (0 = disabled)")
	compactEvery := fs.Duration("compact-every", 30*time.Second, "merge small sealed segments on this period (0 = disabled)")
	compactMax := fs.Int("compact-max-rows", 1<<18, "largest merged segment compaction builds")
	workers := fs.Int("workers", 0, "per-query scan goroutine bound (0 = GOMAXPROCS); never changes results")
	cacheEntries := fs.Int("plan-cache", 128, "plan cache capacity (entries)")
	queryTimeout := fs.Duration("query-timeout", 30*time.Second, "default per-query wall-clock budget (requests may pick their own with ?timeout_ms=)")
	queryTimeoutMax := fs.Duration("query-timeout-max", 5*time.Minute, "hard ceiling on any per-query timeout, including ?timeout_ms=")
	maxInflight := fs.Int("max-inflight", 0, "concurrently executing queries (0 = 2*GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", 0, "queries queued behind busy slots before shedding with 429 (0 = 4*max-inflight, -1 = no queue)")
	tables := fs.Bool("tables", false, "build the marketplace inventory from -seed/-scale so queries can join worker.*/batch.* columns")
	seed := fs.Uint64("seed", 1701, "inventory seed (with -tables)")
	scale := fs.Float64("scale", 0.02, "inventory scale (with -tables)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	var sync wal.SyncPolicy
	switch *syncS {
	case "always":
		sync = wal.SyncAlways
	case "rotate":
		sync = wal.SyncRotate
	case "none":
		sync = wal.SyncNone
	default:
		return fmt.Errorf("unknown -sync %q (want always, rotate or none)", *syncS)
	}

	ls, err := store.OpenLive(*dir, store.LiveConfig{
		SealRows:       *sealRows,
		CheckpointRows: *ckptRows,
		Sync:           sync,
	})
	if err != nil {
		return fmt.Errorf("open live store: %w", err)
	}
	defer ls.Close()
	fmt.Fprintf(stdout, "recovered %d rows (%d sealed segments), next batch %d\n",
		ls.Rows(), ls.SealedSegments(), ls.NextBatch())

	var side *query.SideTables
	if *tables {
		inv := synth.Inventory(synth.Config{Seed: *seed, Scale: *scale})
		side = query.NewTables(inv.Workers, inv.Batches)
		fmt.Fprintf(stdout, "side tables: %d workers, %d batches (seed=%d scale=%g)\n",
			len(inv.Workers), len(inv.Batches), *seed, *scale)
	}

	srv, err := serve.New(serve.Config{
		Store:            ls,
		Tables:           side,
		PlanCacheEntries: *cacheEntries,
		QueryWorkers:     *workers,
		CompactEvery:     *compactEvery,
		CompactMaxRows:   *compactMax,
		CheckpointEvery:  *ckptEvery,
		QueryTimeout:     *queryTimeout,
		QueryTimeoutMax:  *queryTimeoutMax,
		MaxInflight:      *maxInflight,
		MaxQueue:         *maxQueue,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, "crowdserved: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "serving on http://%s\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case sig := <-sigc:
		fmt.Fprintf(stdout, "received %v, draining\n", sig)
	case <-stop:
		fmt.Fprintln(stdout, "stop requested, draining")
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	}

	// Stop accepting connections, then drain in-flight requests and take
	// the final checkpoint (serve.Server.Close) before the deferred
	// store close.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "checkpointed %d rows, bye\n", ls.Rows())
	return nil
}
