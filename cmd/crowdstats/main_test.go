package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crowdscope/internal/store"
	"crowdscope/internal/synth"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden CLI outputs under testdata/")

// chainSnapshot writes the same tiny snapshot cmd/crowdgen's golden test
// pins byte-for-byte (seed 1701, scale 0.001), so these tests cover the
// crowdgen → crowdstats leg of the CLI chain without a cross-package
// dependency.
func chainSnapshot(t *testing.T) string {
	t.Helper()
	cfg := synth.Config{Seed: 1701, Scale: 0.001, Parallelism: 4}
	ds := synth.Generate(cfg)
	path := filepath.Join(t.TempDir(), "chain.crow")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	prov := &store.Provenance{ConfigHash: cfg.Hash(), Seed: cfg.Seed, Tool: "crowdgen/3"}
	if _, err := ds.Store.WriteSnapshot(f, store.WriteOptions{Provenance: prov}); err != nil {
		t.Fatal(err)
	}
	return path
}

// checkGolden compares got against the committed golden file, rewriting
// it under -update-golden.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run `go test ./cmd/... -update-golden` to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestSummaryFromSnapshotGolden: load the chain snapshot (provenance
// checked against the flags) and golden-compare the summary table.
func TestSummaryFromSnapshotGolden(t *testing.T) {
	snap := chainSnapshot(t)
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-seed", "1701", "-scale", "0.001", "-snapshot", snap, "summary"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	checkGolden(t, "summary.golden", stdout.String())
}

// TestSnapshotInspectGolden: the snapshot command's table (span and
// distinct workers now computed by the query engine).
func TestSnapshotInspectGolden(t *testing.T) {
	snap := chainSnapshot(t)
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"snapshot", snap}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := strings.ReplaceAll(stdout.String(), snap, "SNAPSHOT")
	checkGolden(t, "snapshot.golden", got)
}

// TestVerifySnapshotClean: a freshly written snapshot passes every
// checksum.
func TestVerifySnapshotClean(t *testing.T) {
	snap := chainSnapshot(t)
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"verify-snapshot", snap}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), ": OK (v3") {
		t.Errorf("unexpected verify output: %s", stdout.String())
	}
}

// TestVerifySnapshotDamaged: a bit-flipped snapshot fails verification
// and reports what repair mode can recover.
func TestVerifySnapshotDamaged(t *testing.T) {
	snap := chainSnapshot(t)
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-100] ^= 0x40
	if err := os.WriteFile(snap, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"verify-snapshot", snap}, &stdout, &stderr); err == nil {
		t.Fatal("damaged snapshot verified clean")
	}
	if !strings.Contains(stderr.String(), "strict load FAILED") || !strings.Contains(stderr.String(), "repair mode") {
		t.Errorf("unexpected verify output: %s", stderr.String())
	}
}

// TestProvenanceMismatch: loading under the wrong scale is refused.
func TestProvenanceMismatch(t *testing.T) {
	snap := chainSnapshot(t)
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-seed", "1701", "-scale", "0.002", "-snapshot", snap, "summary"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "pass the matching -seed/-scale") {
		t.Fatalf("err = %v, want provenance mismatch", err)
	}
}

func TestUnknownCommand(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-scale", "0.001", "bogus"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown command accepted")
	}
}
