// Command crowdstats answers ad-hoc questions about a synthetic
// marketplace: headline counts, per-source and per-country rollups,
// per-cluster summaries, and load statistics.
//
// Usage:
//
//	crowdstats -seed 1701 -scale 0.02 summary
//	crowdstats sources | countries | clusters | load | workers
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"crowdscope/internal/core"
	"crowdscope/internal/experiments"
	"crowdscope/internal/model"
	"crowdscope/internal/profiling"
	"crowdscope/internal/report"
	"crowdscope/internal/stats"
	"crowdscope/internal/store"
	"crowdscope/internal/synth"
	"crowdscope/internal/timeseries"
)

func main() {
	seed := flag.Uint64("seed", 1701, "generation seed")
	scale := flag.Float64("scale", 0.02, "instance-volume scale in (0,1]")
	workers := flag.Int("workers", 0, "generation and analysis goroutine bound (0 = GOMAXPROCS, 1 = serial); never changes the data")
	top := flag.Int("top", 15, "rows to show in rollups")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles := profiling.Start(*cpuProfile, *memProfile)
	defer stopProfiles()

	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "summary"
	}

	if cmd == "snapshot" {
		snapshotCmd(flag.Arg(1))
		return
	}

	ds := synth.Generate(synth.Config{Seed: *seed, Scale: *scale, Parallelism: *workers})

	switch cmd {
	case "summary":
		summary(ds)
	case "load":
		load(ds)
	case "sources", "countries", "workers", "clusters":
		copts := core.DefaultOptions()
		copts.Workers = *workers
		analysis := core.New(ds, copts)
		ctx := experiments.NewContext(analysis)
		switch cmd {
		case "sources":
			sourcesCmd(analysis, ctx, *top)
		case "countries":
			countriesCmd(analysis, ctx, *top)
		case "workers":
			workersCmd(ctx, *top)
		case "clusters":
			clustersCmd(analysis, *top)
		}
	default:
		fmt.Fprintf(os.Stderr, "crowdstats: unknown command %q\n", cmd)
		fmt.Fprintln(os.Stderr, "commands: summary load sources countries workers clusters snapshot <file>")
		os.Exit(1)
	}
}

// snapshotCmd inspects an instance-log snapshot written by crowdgen.
func snapshotCmd(path string) {
	if path == "" {
		fmt.Fprintln(os.Stderr, "crowdstats: snapshot requires a file path")
		os.Exit(1)
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crowdstats: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	var st store.Store
	n, err := st.ReadFrom(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crowdstats: read snapshot: %v\n", err)
		os.Exit(1)
	}
	if err := st.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "crowdstats: snapshot invalid: %v\n", err)
		os.Exit(1)
	}
	nonEmpty := 0
	for b := 0; b < st.NumBatches(); b++ {
		if lo, hi := st.BatchRange(uint32(b)); hi > lo {
			nonEmpty++
		}
	}
	starts := st.Starts()
	minS, maxS := starts[0], starts[0]
	for _, s := range starts {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	tbl := report.NewTable("Snapshot " + path)
	tbl.Headers = []string{"quantity", "value"}
	tbl.AddRow("bytes", n)
	tbl.AddRow("rows", st.Len())
	tbl.AddRow("bytes/row", float64(n)/float64(st.Len()))
	tbl.AddRow("batches with rows", nonEmpty)
	tbl.AddRow("segments", len(st.Segments()))
	tbl.AddRow("distinct workers", st.DistinctWorkers())
	tbl.AddRow("first start week", model.WeekOfUnix(minS))
	tbl.AddRow("last start week", model.WeekOfUnix(maxS))
	tbl.Render(os.Stdout)
}

func summary(ds *synth.Dataset) {
	obs := ds.ObservedWorkers()
	tbl := report.NewTable("Marketplace summary")
	tbl.Headers = []string{"quantity", "value"}
	tbl.AddRow("batches", len(ds.Batches))
	tbl.AddRow("sampled batches", len(ds.SampledBatchIDs()))
	tbl.AddRow("distinct task types", len(ds.TaskTypes))
	tbl.AddRow("task instances (materialized)", ds.Store.Len())
	tbl.AddRow("store segments", len(ds.Store.Segments()))
	tbl.AddRow("workers observed", len(obs))
	tbl.AddRow("labor sources", len(ds.Sources))
	tbl.AddRow("countries", len(ds.Countries))
	tbl.Render(os.Stdout)
}

func load(ds *synth.Dataset) {
	daily := timeseries.NewDaily()
	for i := range ds.Batches {
		b := &ds.Batches[i]
		if b.Sampled {
			daily.AddAt(b.CreatedAt.Unix(), float64(b.Instances()))
		}
	}
	post := daily.Slice(int(model.PostBoomWeek)*7, daily.Len())
	ls := timeseries.SummarizeLoad(post)
	fmt.Printf("post-2015 daily load: median=%.0f max=%.0f peak=%.1fx trough=%.5fx\n",
		ls.Median, ls.Max, ls.PeakRatio, ls.TroughRatio)
	fold := timeseries.WeekdayFold(daily)
	chart := report.NewChart("By weekday")
	for i, name := range timeseries.WeekdayNames {
		chart.Add(name, fold[i])
	}
	chart.Render(os.Stdout)
}

func sourcesCmd(a *core.Analysis, ctx *experiments.Context, top int) {
	sources := a.SourceTable(ctx.Workers())
	tbl := report.NewTable("Sources by task volume", "source", "workers", "tasks", "tasks/worker", "trust", "rel-time")
	for i, s := range sources {
		if i >= top {
			break
		}
		tbl.AddRow(s.Name, s.Workers, s.Tasks, s.AvgTasksPerWorker, s.MeanTrust, s.MeanRelTime)
	}
	tbl.Render(os.Stdout)
}

func countriesCmd(a *core.Analysis, ctx *experiments.Context, top int) {
	countries := a.CountryTable(ctx.Workers())
	chart := report.NewChart("Workers by country")
	for i, c := range countries {
		if i >= top {
			break
		}
		chart.Add(c.Name, float64(c.Workers))
	}
	chart.Render(os.Stdout)
}

func workersCmd(ctx *experiments.Context, top int) {
	workers := ctx.Workers()
	tbl := report.NewTable("Top workers", "rank", "class", "tasks", "working-days", "lifetime-d", "hours", "trust")
	for i, w := range workers {
		if i >= top {
			break
		}
		tbl.AddRow(i+1, w.Class.String(), w.Tasks, w.WorkingDays, w.Lifetime, w.HoursTotal(), w.MeanTrust)
	}
	tbl.Render(os.Stdout)
	loads := make([]float64, len(workers))
	for i := range workers {
		loads[i] = float64(workers[i].Tasks)
	}
	fmt.Printf("\ntop-10%% of %d workers perform %.0f%% of tasks (Gini %.2f)\n",
		len(workers), 100*stats.TopShare(loads, 0.10), stats.Gini(loads))
}

func clustersCmd(a *core.Analysis, top int) {
	rows := append([]core.ClusterRow(nil), a.Clusters...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Instances > rows[j].Instances })
	tbl := report.NewTable("Largest clusters", "cluster", "batches", "instances", "goal", "ops", "data", "disagreement", "task-time-s", "pickup-s")
	for i, c := range rows {
		if i >= top {
			break
		}
		tbl.AddRow(c.Cluster, len(c.Batches), c.Instances, c.Labels.Goals.String(), c.Labels.Operators.String(), c.Labels.Data.String(),
			c.Metrics.Disagreement, c.Metrics.TaskTime, c.Metrics.PickupTime)
	}
	tbl.Render(os.Stdout)
	fmt.Printf("\n%d clusters over %d sampled batches\n", len(a.Clusters), len(a.SampledIDs))
}
