// Command crowdstats answers ad-hoc questions about a synthetic
// marketplace: headline counts, per-source and per-country rollups,
// per-cluster summaries, and load statistics.
//
// Usage:
//
//	crowdstats -seed 1701 -scale 0.02 summary
//	crowdstats sources | countries | clusters | load | workers
//	crowdstats -snapshot marketplace.crow summary   # reuse a crowdgen snapshot
//	crowdstats snapshot marketplace.crow            # inspect a snapshot file
//	crowdstats verify-snapshot marketplace.crow     # check every section checksum
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"crowdscope/internal/core"
	"crowdscope/internal/experiments"
	"crowdscope/internal/model"
	"crowdscope/internal/profiling"
	"crowdscope/internal/report"
	"crowdscope/internal/stats"
	"crowdscope/internal/store"
	"crowdscope/internal/synth"
	"crowdscope/internal/timeseries"
)

func main() {
	seed := flag.Uint64("seed", 1701, "generation seed")
	scale := flag.Float64("scale", 0.02, "instance-volume scale in (0,1]")
	workers := flag.Int("workers", 0, "generation and analysis goroutine bound (0 = GOMAXPROCS, 1 = serial); never changes the data")
	top := flag.Int("top", 15, "rows to show in rollups")
	snapshotPath := flag.String("snapshot", "", "load the instance log from this snapshot instead of regenerating it (inventory still derives from -seed/-scale; provenance is checked)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles := profiling.Start(*cpuProfile, *memProfile)
	defer stopProfiles()

	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "summary"
	}

	if cmd == "snapshot" {
		snapshotCmd(flag.Arg(1))
		return
	}
	if cmd == "verify-snapshot" {
		verifySnapshotCmd(flag.Arg(1), *workers)
		return
	}

	cfg := synth.Config{Seed: *seed, Scale: *scale, Parallelism: *workers}
	var ds *synth.Dataset
	if *snapshotPath != "" {
		ds = loadDataset(cfg, *snapshotPath, *workers)
	} else {
		ds = synth.Generate(cfg)
	}

	switch cmd {
	case "summary":
		summary(ds)
	case "load":
		load(ds)
	case "sources", "countries", "workers", "clusters":
		copts := core.DefaultOptions()
		copts.Workers = *workers
		analysis := core.New(ds, copts)
		ctx := experiments.NewContext(analysis)
		switch cmd {
		case "sources":
			sourcesCmd(analysis, ctx, *top)
		case "countries":
			countriesCmd(analysis, ctx, *top)
		case "workers":
			workersCmd(ctx, *top)
		case "clusters":
			clustersCmd(analysis, *top)
		}
	default:
		fmt.Fprintf(os.Stderr, "crowdstats: unknown command %q\n", cmd)
		fmt.Fprintln(os.Stderr, "commands: summary load sources countries workers clusters snapshot <file> verify-snapshot <file>")
		os.Exit(1)
	}
}

// loadDataset rebuilds a full dataset around a snapshot-restored instance
// log: strict load, provenance check against the flags, then inventory
// regeneration (synth.Rehydrate).
func loadDataset(cfg synth.Config, path string, workers int) *synth.Dataset {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crowdstats: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	var st store.Store
	rep, err := st.ReadSnapshot(f, store.LoadOptions{Workers: workers})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crowdstats: load snapshot: %v\n", err)
		os.Exit(1)
	}
	if p := rep.Provenance; p != nil && p.ConfigHash != cfg.Hash() {
		fmt.Fprintf(os.Stderr, "crowdstats: snapshot %s was written by %q under config %016x, but flags give %016x (seed %d, scale %g); pass the matching -seed/-scale\n",
			path, p.Tool, p.ConfigHash, cfg.Hash(), cfg.Seed, cfg.Scale)
		os.Exit(1)
	}
	ds, err := synth.Rehydrate(cfg, &st)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crowdstats: %v\n", err)
		os.Exit(1)
	}
	return ds
}

// snapshotCmd inspects an instance-log snapshot written by crowdgen.
func snapshotCmd(path string) {
	if path == "" {
		fmt.Fprintln(os.Stderr, "crowdstats: snapshot requires a file path")
		os.Exit(1)
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crowdstats: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	var st store.Store
	rep, err := st.ReadSnapshot(f, store.LoadOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crowdstats: read snapshot: %v\n", err)
		os.Exit(1)
	}
	if err := st.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "crowdstats: snapshot invalid: %v\n", err)
		os.Exit(1)
	}
	nonEmpty := 0
	for b := 0; b < st.NumBatches(); b++ {
		if lo, hi := st.BatchRange(uint32(b)); hi > lo {
			nonEmpty++
		}
	}
	if st.Len() == 0 {
		fmt.Printf("Snapshot %s: v%d, %d bytes, empty store\n", path, rep.Version, rep.Bytes)
		return
	}
	starts := st.Starts()
	minS, maxS := starts[0], starts[0]
	for _, s := range starts {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	tbl := report.NewTable("Snapshot " + path)
	tbl.Headers = []string{"quantity", "value"}
	tbl.AddRow("format version", rep.Version)
	tbl.AddRow("bytes", rep.Bytes)
	tbl.AddRow("rows", st.Len())
	tbl.AddRow("bytes/row", float64(rep.Bytes)/float64(st.Len()))
	tbl.AddRow("batches with rows", nonEmpty)
	tbl.AddRow("segments", len(st.Segments()))
	tbl.AddRow("distinct workers", st.DistinctWorkers())
	tbl.AddRow("first start week", model.WeekOfUnix(minS))
	tbl.AddRow("last start week", model.WeekOfUnix(maxS))
	if p := rep.Provenance; p != nil {
		tbl.AddRow("written by", p.Tool)
		tbl.AddRow("generator seed", p.Seed)
		tbl.AddRow("config hash", fmt.Sprintf("%016x", p.ConfigHash))
	} else {
		tbl.AddRow("provenance", "none (pre-v3 snapshot)")
	}
	tbl.Render(os.Stdout)
}

// verifySnapshotCmd strict-loads a snapshot, reporting either a clean
// bill (every section checksum verified, structure valid) or the precise
// damaged sections — distinguishing truncation from corruption — via a
// follow-up repair-mode pass.
func verifySnapshotCmd(path string, workers int) {
	if path == "" {
		fmt.Fprintln(os.Stderr, "crowdstats: verify-snapshot requires a file path")
		os.Exit(1)
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crowdstats: %v\n", err)
		os.Exit(1)
	}
	var st store.Store
	rep, serr := st.ReadSnapshot(f, store.LoadOptions{Workers: workers})
	f.Close()
	if serr == nil {
		if err := st.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "crowdstats: %s: sections OK but structure invalid: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("%s: OK (v%d, %d bytes, %d rows, %d segments", path, rep.Version, rep.Bytes, st.Len(), st.NumSegments())
		if p := rep.Provenance; p != nil {
			fmt.Printf(", written by %s, config %016x", p.Tool, p.ConfigHash)
		}
		if rep.Version < 3 {
			fmt.Printf("; note: pre-v3 format has no section checksums")
		}
		fmt.Println(")")
		return
	}
	fmt.Fprintf(os.Stderr, "crowdstats: %s: strict load FAILED: %v\n", path, serr)
	rf, err := os.Open(path)
	if err == nil {
		defer rf.Close()
		var recovered store.Store
		if rrep, rerr := recovered.ReadSnapshot(rf, store.LoadOptions{Mode: store.LoadRepair, Workers: workers}); rerr == nil {
			fmt.Fprintf(os.Stderr, "  repair mode recovers %d of %d rows; damaged sections: %v\n",
				recovered.Len()-damagedRows(rrep, &recovered), recovered.Len(), rrep.Damaged)
		} else {
			fmt.Fprintf(os.Stderr, "  repair mode also fails: %v\n", rerr)
		}
	}
	os.Exit(1)
}

// damagedRows estimates how many rows repair mode zero-filled: rows whose
// start time is zero never occur in generated data.
func damagedRows(rep *store.LoadReport, st *store.Store) int {
	if len(rep.Damaged) == 0 {
		return 0
	}
	n := 0
	for _, s := range st.Starts() {
		if s == 0 {
			n++
		}
	}
	return n
}

func summary(ds *synth.Dataset) {
	obs := ds.ObservedWorkers()
	tbl := report.NewTable("Marketplace summary")
	tbl.Headers = []string{"quantity", "value"}
	tbl.AddRow("batches", len(ds.Batches))
	tbl.AddRow("sampled batches", len(ds.SampledBatchIDs()))
	tbl.AddRow("distinct task types", len(ds.TaskTypes))
	tbl.AddRow("task instances (materialized)", ds.Store.Len())
	tbl.AddRow("store segments", len(ds.Store.Segments()))
	tbl.AddRow("workers observed", len(obs))
	tbl.AddRow("labor sources", len(ds.Sources))
	tbl.AddRow("countries", len(ds.Countries))
	tbl.Render(os.Stdout)
}

func load(ds *synth.Dataset) {
	daily := timeseries.NewDaily()
	for i := range ds.Batches {
		b := &ds.Batches[i]
		if b.Sampled {
			daily.AddAt(b.CreatedAt.Unix(), float64(b.Instances()))
		}
	}
	post := daily.Slice(int(model.PostBoomWeek)*7, daily.Len())
	ls := timeseries.SummarizeLoad(post)
	fmt.Printf("post-2015 daily load: median=%.0f max=%.0f peak=%.1fx trough=%.5fx\n",
		ls.Median, ls.Max, ls.PeakRatio, ls.TroughRatio)
	fold := timeseries.WeekdayFold(daily)
	chart := report.NewChart("By weekday")
	for i, name := range timeseries.WeekdayNames {
		chart.Add(name, fold[i])
	}
	chart.Render(os.Stdout)
}

func sourcesCmd(a *core.Analysis, ctx *experiments.Context, top int) {
	sources := a.SourceTable(ctx.Workers())
	tbl := report.NewTable("Sources by task volume", "source", "workers", "tasks", "tasks/worker", "trust", "rel-time")
	for i, s := range sources {
		if i >= top {
			break
		}
		tbl.AddRow(s.Name, s.Workers, s.Tasks, s.AvgTasksPerWorker, s.MeanTrust, s.MeanRelTime)
	}
	tbl.Render(os.Stdout)
}

func countriesCmd(a *core.Analysis, ctx *experiments.Context, top int) {
	countries := a.CountryTable(ctx.Workers())
	chart := report.NewChart("Workers by country")
	for i, c := range countries {
		if i >= top {
			break
		}
		chart.Add(c.Name, float64(c.Workers))
	}
	chart.Render(os.Stdout)
}

func workersCmd(ctx *experiments.Context, top int) {
	workers := ctx.Workers()
	tbl := report.NewTable("Top workers", "rank", "class", "tasks", "working-days", "lifetime-d", "hours", "trust")
	for i, w := range workers {
		if i >= top {
			break
		}
		tbl.AddRow(i+1, w.Class.String(), w.Tasks, w.WorkingDays, w.Lifetime, w.HoursTotal(), w.MeanTrust)
	}
	tbl.Render(os.Stdout)
	loads := make([]float64, len(workers))
	for i := range workers {
		loads[i] = float64(workers[i].Tasks)
	}
	fmt.Printf("\ntop-10%% of %d workers perform %.0f%% of tasks (Gini %.2f)\n",
		len(workers), 100*stats.TopShare(loads, 0.10), stats.Gini(loads))
}

func clustersCmd(a *core.Analysis, top int) {
	rows := append([]core.ClusterRow(nil), a.Clusters...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Instances > rows[j].Instances })
	tbl := report.NewTable("Largest clusters", "cluster", "batches", "instances", "goal", "ops", "data", "disagreement", "task-time-s", "pickup-s")
	for i, c := range rows {
		if i >= top {
			break
		}
		tbl.AddRow(c.Cluster, len(c.Batches), c.Instances, c.Labels.Goals.String(), c.Labels.Operators.String(), c.Labels.Data.String(),
			c.Metrics.Disagreement, c.Metrics.TaskTime, c.Metrics.PickupTime)
	}
	tbl.Render(os.Stdout)
	fmt.Printf("\n%d clusters over %d sampled batches\n", len(a.Clusters), len(a.SampledIDs))
}
