// Command crowdstats answers ad-hoc questions about a synthetic
// marketplace: headline counts, per-source and per-country rollups,
// per-cluster summaries, and load statistics.
//
// Usage:
//
//	crowdstats -seed 1701 -scale 0.02 summary
//	crowdstats sources | countries | clusters | load | workers
//	crowdstats -snapshot marketplace.crow summary   # reuse a crowdgen snapshot
//	crowdstats snapshot marketplace.crow            # inspect a snapshot file
//	crowdstats verify-snapshot marketplace.crow     # check every section checksum
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"crowdscope/internal/cli"
	"crowdscope/internal/core"
	"crowdscope/internal/experiments"
	"crowdscope/internal/model"
	"crowdscope/internal/profiling"
	"crowdscope/internal/query"
	"crowdscope/internal/report"
	"crowdscope/internal/stats"
	"crowdscope/internal/store"
	"crowdscope/internal/synth"
	"crowdscope/internal/timeseries"
)

func main() {
	// Ctrl-C cancels the in-flight analysis query at the next chunk
	// boundary and exits with the conventional interrupted code.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "crowdstats: %v\n", err)
		os.Exit(cli.ExitCode(err))
	}
}

// run is the testable entry point: it parses args, writes everything to
// the given writers, and returns instead of exiting.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("crowdstats", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 1701, "generation seed")
	scale := fs.Float64("scale", 0.02, "instance-volume scale in (0,1]")
	workers := fs.Int("workers", 0, "generation and analysis goroutine bound (0 = GOMAXPROCS, 1 = serial); never changes the data")
	top := fs.Int("top", 15, "rows to show in rollups")
	snapshotPath := fs.String("snapshot", "", "load the instance log from this snapshot instead of regenerating it (inventory still derives from -seed/-scale; provenance is checked)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed to stderr
		}
		return err
	}

	stopProfiles := profiling.Start(*cpuProfile, *memProfile)
	defer stopProfiles()

	cmd := fs.Arg(0)
	if cmd == "" {
		cmd = "summary"
	}

	if cmd == "snapshot" {
		return snapshotCmd(ctx, fs.Arg(1), *workers, stdout)
	}
	if cmd == "verify-snapshot" {
		return verifySnapshotCmd(fs.Arg(1), *workers, stdout, stderr)
	}

	cfg := synth.Config{Seed: *seed, Scale: *scale, Parallelism: *workers}
	var ds *synth.Dataset
	if *snapshotPath != "" {
		var err error
		if ds, err = loadDataset(cfg, *snapshotPath, *workers); err != nil {
			return err
		}
	} else {
		ds = synth.Generate(cfg)
	}

	switch cmd {
	case "summary":
		summary(ds, stdout)
	case "load":
		load(ds, stdout)
	case "sources", "countries", "workers", "clusters":
		copts := core.DefaultOptions()
		copts.Workers = *workers
		analysis := core.New(ds, copts)
		ctx := experiments.NewContext(analysis)
		ctx.ScanWorkers = *workers
		switch cmd {
		case "sources":
			sourcesCmd(analysis, ctx, *top, stdout)
		case "countries":
			countriesCmd(analysis, ctx, *top, stdout)
		case "workers":
			workersCmd(ctx, *top, stdout)
		case "clusters":
			clustersCmd(analysis, *top, stdout)
		}
	default:
		fmt.Fprintln(stderr, "commands: summary load sources countries workers clusters snapshot <file> verify-snapshot <file>")
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// openLog loads an instance log from a snapshot file or a sharded
// dataset manifest, told apart by magic bytes. nshards is 0 for a
// single-file snapshot; per-shard damage flattens into Damaged with the
// shard name prefixed.
func openLog(path string, opts store.LoadOptions) (*store.Store, *store.LoadReport, int, error) {
	kind, err := store.DetectPath(path)
	if err != nil {
		return nil, nil, 0, err
	}
	switch kind {
	case store.KindSnapshot:
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, 0, err
		}
		defer f.Close()
		var st store.Store
		rep, err := st.ReadSnapshot(f, opts)
		if err != nil {
			return nil, nil, 0, err
		}
		return &st, rep, 0, nil
	case store.KindManifest:
		d, err := store.OpenDatasetPath(path)
		if err != nil {
			return nil, nil, 0, err
		}
		defer d.Close()
		st, drep, err := d.LoadStore(opts)
		if err != nil {
			return nil, nil, 0, err
		}
		rep := &store.LoadReport{Version: 3, Bytes: drep.Bytes, Rows: drep.Rows, Provenance: drep.Provenance}
		for _, sh := range drep.Shards {
			for _, dmg := range sh.Damaged {
				rep.Damaged = append(rep.Damaged, fmt.Sprintf("shard %s: %s", sh.Name, dmg))
			}
		}
		return st, rep, d.NumShards(), nil
	}
	return nil, nil, 0, fmt.Errorf("%s: not a crowdscope snapshot or manifest: %w", path, store.ErrBadMagic)
}

// loadDataset rebuilds a full dataset around a snapshot-restored instance
// log (single-file or sharded): strict load, provenance check against
// the flags, then inventory regeneration (synth.Rehydrate).
func loadDataset(cfg synth.Config, path string, workers int) (*synth.Dataset, error) {
	st, rep, _, err := openLog(path, store.LoadOptions{Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("load snapshot: %w", err)
	}
	if p := rep.Provenance; p != nil && p.ConfigHash != cfg.Hash() {
		return nil, fmt.Errorf("snapshot %s was written by %q under config %016x, but flags give %016x (seed %d, scale %g); pass the matching -seed/-scale",
			path, p.Tool, p.ConfigHash, cfg.Hash(), cfg.Seed, cfg.Scale)
	}
	return synth.Rehydrate(cfg, st)
}

// snapshotCmd inspects an instance-log snapshot written by crowdgen. The
// span and workforce numbers come from one query-engine pass (min/max
// start, distinct workers) instead of hand-rolled column scans.
func snapshotCmd(ctx context.Context, path string, workers int, stdout io.Writer) error {
	if path == "" {
		return fmt.Errorf("snapshot requires a file path")
	}
	st, rep, nshards, err := openLog(path, store.LoadOptions{Workers: workers})
	if err != nil {
		return fmt.Errorf("read snapshot: %w", err)
	}
	if err := st.Validate(); err != nil {
		return fmt.Errorf("snapshot invalid: %w", err)
	}
	nonEmpty := 0
	for b := 0; b < st.NumBatches(); b++ {
		if lo, hi := st.BatchRange(uint32(b)); hi > lo {
			nonEmpty++
		}
	}
	if st.Len() == 0 {
		fmt.Fprintf(stdout, "Snapshot %s: v%d, %d bytes, empty store\n", path, rep.Version, rep.Bytes)
		return nil
	}
	res, err := query.RunContext(ctx, st, query.Query{Value: query.ValueStart, Distinct: query.ColWorker, Workers: workers})
	if err != nil {
		return err
	}
	span := res.Groups[0]
	tbl := report.NewTable("Snapshot " + path)
	tbl.Headers = []string{"quantity", "value"}
	tbl.AddRow("format version", rep.Version)
	tbl.AddRow("bytes", rep.Bytes)
	tbl.AddRow("rows", st.Len())
	tbl.AddRow("bytes/row", float64(rep.Bytes)/float64(st.Len()))
	tbl.AddRow("batches with rows", nonEmpty)
	tbl.AddRow("segments", len(st.Segments()))
	if nshards > 0 {
		tbl.AddRow("shards", nshards)
	}
	tbl.AddRow("distinct workers", span.Distinct)
	tbl.AddRow("first start week", model.WeekOfUnix(int64(span.Min)))
	tbl.AddRow("last start week", model.WeekOfUnix(int64(span.Max)))
	if p := rep.Provenance; p != nil {
		tbl.AddRow("written by", p.Tool)
		tbl.AddRow("generator seed", p.Seed)
		tbl.AddRow("config hash", fmt.Sprintf("%016x", p.ConfigHash))
	} else {
		tbl.AddRow("provenance", "none (pre-v3 snapshot)")
	}
	tbl.Render(stdout)
	return nil
}

// verifySnapshotCmd strict-loads a snapshot, reporting either a clean
// bill (every section checksum verified, structure valid) or the precise
// damaged sections — distinguishing truncation from corruption — via a
// follow-up repair-mode pass.
func verifySnapshotCmd(path string, workers int, stdout, stderr io.Writer) error {
	if path == "" {
		return fmt.Errorf("verify-snapshot requires a file path")
	}
	st, rep, _, serr := openLog(path, store.LoadOptions{Workers: workers})
	if serr == nil {
		if err := st.Validate(); err != nil {
			return fmt.Errorf("%s: sections OK but structure invalid: %w", path, err)
		}
		fmt.Fprintf(stdout, "%s: OK (v%d, %d bytes, %d rows, %d segments", path, rep.Version, rep.Bytes, st.Len(), st.NumSegments())
		if p := rep.Provenance; p != nil {
			fmt.Fprintf(stdout, ", written by %s, config %016x", p.Tool, p.ConfigHash)
		}
		if rep.Version < 3 {
			fmt.Fprintf(stdout, "; note: pre-v3 format has no section checksums")
		}
		fmt.Fprintln(stdout, ")")
		return nil
	}
	fmt.Fprintf(stderr, "crowdstats: %s: strict load FAILED: %v\n", path, serr)
	if recovered, rrep, _, rerr := openLog(path, store.LoadOptions{Mode: store.LoadRepair, Workers: workers}); rerr == nil {
		fmt.Fprintf(stderr, "  repair mode recovers %d of %d rows; damaged sections: %v\n",
			recovered.Len()-damagedRows(rrep, recovered), recovered.Len(), rrep.Damaged)
	} else {
		fmt.Fprintf(stderr, "  repair mode also fails: %v\n", rerr)
	}
	return fmt.Errorf("%s: strict load failed", path)
}

// damagedRows estimates how many rows repair mode zero-filled: rows whose
// start time is zero never occur in generated data.
func damagedRows(rep *store.LoadReport, st *store.Store) int {
	if len(rep.Damaged) == 0 {
		return 0
	}
	n := 0
	for _, s := range st.Starts() {
		if s == 0 {
			n++
		}
	}
	return n
}

func summary(ds *synth.Dataset, stdout io.Writer) {
	obs := ds.ObservedWorkers()
	tbl := report.NewTable("Marketplace summary")
	tbl.Headers = []string{"quantity", "value"}
	tbl.AddRow("batches", len(ds.Batches))
	tbl.AddRow("sampled batches", len(ds.SampledBatchIDs()))
	tbl.AddRow("distinct task types", len(ds.TaskTypes))
	tbl.AddRow("task instances (materialized)", ds.Store.Len())
	tbl.AddRow("store segments", len(ds.Store.Segments()))
	tbl.AddRow("workers observed", len(obs))
	tbl.AddRow("labor sources", len(ds.Sources))
	tbl.AddRow("countries", len(ds.Countries))
	tbl.Render(stdout)
}

func load(ds *synth.Dataset, stdout io.Writer) {
	daily := timeseries.NewDaily()
	for i := range ds.Batches {
		b := &ds.Batches[i]
		if b.Sampled {
			daily.AddAt(b.CreatedAt.Unix(), float64(b.Instances()))
		}
	}
	post := daily.Slice(int(model.PostBoomWeek)*7, daily.Len())
	ls := timeseries.SummarizeLoad(post)
	fmt.Fprintf(stdout, "post-2015 daily load: median=%.0f max=%.0f peak=%.1fx trough=%.5fx\n",
		ls.Median, ls.Max, ls.PeakRatio, ls.TroughRatio)
	fold := timeseries.WeekdayFold(daily)
	chart := report.NewChart("By weekday")
	for i, name := range timeseries.WeekdayNames {
		chart.Add(name, fold[i])
	}
	chart.Render(stdout)
}

func sourcesCmd(a *core.Analysis, ctx *experiments.Context, top int, stdout io.Writer) {
	sources := a.SourceTable(ctx.Workers())
	tbl := report.NewTable("Sources by task volume", "source", "workers", "tasks", "tasks/worker", "trust", "rel-time")
	for i, s := range sources {
		if i >= top {
			break
		}
		tbl.AddRow(s.Name, s.Workers, s.Tasks, s.AvgTasksPerWorker, s.MeanTrust, s.MeanRelTime)
	}
	tbl.Render(stdout)
}

func countriesCmd(a *core.Analysis, ctx *experiments.Context, top int, stdout io.Writer) {
	countries := a.CountryTable(ctx.Workers())
	chart := report.NewChart("Workers by country")
	for i, c := range countries {
		if i >= top {
			break
		}
		chart.Add(c.Name, float64(c.Workers))
	}
	chart.Render(stdout)
}

func workersCmd(ctx *experiments.Context, top int, stdout io.Writer) {
	workers := ctx.Workers()
	tbl := report.NewTable("Top workers", "rank", "class", "tasks", "working-days", "lifetime-d", "hours", "trust")
	for i, w := range workers {
		if i >= top {
			break
		}
		tbl.AddRow(i+1, w.Class.String(), w.Tasks, w.WorkingDays, w.Lifetime, w.HoursTotal(), w.MeanTrust)
	}
	tbl.Render(stdout)
	loads := make([]float64, len(workers))
	for i := range workers {
		loads[i] = float64(workers[i].Tasks)
	}
	fmt.Fprintf(stdout, "\ntop-10%% of %d workers perform %.0f%% of tasks (Gini %.2f)\n",
		len(workers), 100*stats.TopShare(loads, 0.10), stats.Gini(loads))
}

func clustersCmd(a *core.Analysis, top int, stdout io.Writer) {
	rows := append([]core.ClusterRow(nil), a.Clusters...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Instances > rows[j].Instances })
	tbl := report.NewTable("Largest clusters", "cluster", "batches", "instances", "goal", "ops", "data", "disagreement", "task-time-s", "pickup-s")
	for i, c := range rows {
		if i >= top {
			break
		}
		tbl.AddRow(c.Cluster, len(c.Batches), c.Instances, c.Labels.Goals.String(), c.Labels.Operators.String(), c.Labels.Data.String(),
			c.Metrics.Disagreement, c.Metrics.TaskTime, c.Metrics.PickupTime)
	}
	tbl.Render(stdout)
	fmt.Fprintf(stdout, "\n%d clusters over %d sampled batches\n", len(a.Clusters), len(a.SampledIDs))
}
