// Benchmarks regenerating every table and figure of the paper, one bench
// per artifact, plus the ablation benches DESIGN.md calls out. All benches
// share one generated dataset and analysis (deterministic, built once), so
// per-iteration cost is the experiment itself.
//
// Run with: go test -bench=. -benchmem
package crowdscope_test

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"crowdscope/internal/cluster"
	"crowdscope/internal/core"
	"crowdscope/internal/corr"
	"crowdscope/internal/experiments"
	"crowdscope/internal/metrics"
	"crowdscope/internal/model"
	"crowdscope/internal/query"
	"crowdscope/internal/store"
	"crowdscope/internal/synth"
)

var (
	benchOnce sync.Once
	benchDS   *synth.Dataset
	benchA    *core.Analysis
	benchCtx  *experiments.Context
)

func setup(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchDS = synth.Generate(synth.Config{Seed: 1701, Scale: 0.01})
		benchA = core.New(benchDS, core.DefaultOptions())
		benchCtx = experiments.NewContext(benchA)
		benchCtx.Workers() // warm the memoized worker table
	})
	return benchCtx
}

func benchExperiment(b *testing.B, id string) {
	ctx := setup(b)
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := e.Run(ctx)
		if out == nil || out.Text == "" {
			b.Fatal("empty outcome")
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkFig1SampledTasks(b *testing.B)          { benchExperiment(b, "fig1") }
func BenchmarkFig2aArrivalsVsPickup(b *testing.B)     { benchExperiment(b, "fig2a") }
func BenchmarkFig2bArrivalOverlay(b *testing.B)       { benchExperiment(b, "fig2b") }
func BenchmarkFig3DayOfWeek(b *testing.B)             { benchExperiment(b, "fig3") }
func BenchmarkFig4WorkerAvailability(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig5aArrivalsVsPickup(b *testing.B)     { benchExperiment(b, "fig5a") }
func BenchmarkFig5bEngagementSplit(b *testing.B)      { benchExperiment(b, "fig5b") }
func BenchmarkFig6ClusterSizes(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig7TasksPerCluster(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8HeavyHitters(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkFig9LabelDistributions(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkFig10Correlations(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkFig11Correlations(b *testing.B)         { benchExperiment(b, "fig11") }
func BenchmarkFig12SimpleVsComplex(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13LatencyDecomposition(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14FeatureCDFs(b *testing.B)          { benchExperiment(b, "fig14") }
func BenchmarkFig25DrillDown(b *testing.B)            { benchExperiment(b, "fig25") }
func BenchmarkFig26Sources(b *testing.B)              { benchExperiment(b, "fig26") }
func BenchmarkFig27SourceQuality(b *testing.B)        { benchExperiment(b, "fig27") }
func BenchmarkFig28Geography(b *testing.B)            { benchExperiment(b, "fig28") }
func BenchmarkFig29Workload(b *testing.B)             { benchExperiment(b, "fig29") }
func BenchmarkFig30Lifetimes(b *testing.B)            { benchExperiment(b, "fig30") }
func BenchmarkTable1Disagreement(b *testing.B)        { benchExperiment(b, "tab1") }
func BenchmarkTable2TaskTime(b *testing.B)            { benchExperiment(b, "tab2") }
func BenchmarkTable3PickupTime(b *testing.B)          { benchExperiment(b, "tab3") }
func BenchmarkTable4Sources(b *testing.B)             { benchExperiment(b, "tab4") }
func BenchmarkSec49Prediction(b *testing.B)           { benchExperiment(b, "sec49") }

// Pipeline-stage benchmarks.

// BenchmarkGenerate compares the serial reference path (Parallelism: 1)
// against the segmented parallel pipeline (Parallelism: 0 = GOMAXPROCS)
// at the default 2% scale. The two paths produce row-for-row identical
// stores (see synth's pipeline property test); only wall clock differs.
func BenchmarkGenerate(b *testing.B) {
	for _, bc := range []struct {
		name string
		par  int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ds := synth.Generate(synth.Config{Seed: 1701, Scale: 0.02, Parallelism: bc.par})
				if ds.Store.Len() == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
	}
}

func BenchmarkGenerateDataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := synth.Generate(synth.Config{Seed: uint64(i + 1), Scale: 0.002})
		if ds.Store.Len() == 0 {
			b.Fatal("empty dataset")
		}
	}
}

func BenchmarkAnalysisPipeline(b *testing.B) {
	ds := synth.Generate(synth.Config{Seed: 3, Scale: 0.002})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.New(ds, core.DefaultOptions())
		if a.Clustering.NumClusters() == 0 {
			b.Fatal("no clusters")
		}
	}
}

// BenchmarkAnalysisNew compares the serial reference analysis front end
// (Workers: 1) against the sharded parallel one (Workers: 0 = GOMAXPROCS)
// on one shared dataset. The two produce identical Analysis values (see
// core's TestAnalysisSerialParallelIdentical); only wall clock differs.
func BenchmarkAnalysisNew(b *testing.B) {
	ds := synth.Generate(synth.Config{Seed: 3, Scale: 0.002})
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Workers = bc.workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := core.New(ds, opts)
				if a.Clustering.NumClusters() == 0 {
					b.Fatal("no clusters")
				}
			}
		})
	}
}

// BenchmarkClusterBatches times the clustering front end alone (page
// render, one-pass shingling, MinHash signatures, LSH merge) over the
// real sampled pages.
func BenchmarkClusterBatches(b *testing.B) {
	ctx := setup(b)
	ids := ctx.A.SampledIDs[:2000]
	html := ctx.A.DS.BatchHTML
	opts := cluster.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cluster.Batches(ids, html, opts)
		if c.NumClusters() == 0 {
			b.Fatal("no clusters")
		}
	}
}

// Snapshot codec benchmarks at the default 2% scale (~0.5M rows). The
// serial/parallel variants bound the same worker knob the CLIs expose;
// output and loaded stores are identical across them.

var (
	snapOnce sync.Once
	snapDS   *synth.Dataset
	snapRaw  []byte
)

func snapSetup(b *testing.B) {
	b.Helper()
	snapOnce.Do(func() {
		snapDS = synth.Generate(synth.Config{Seed: 1701, Scale: 0.02})
		var buf bytes.Buffer
		if _, err := snapDS.Store.WriteTo(&buf); err != nil {
			panic(err)
		}
		snapRaw = buf.Bytes()
	})
}

func BenchmarkSnapshotWriteTo(b *testing.B) {
	snapSetup(b)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(snapRaw)))
			buf := bytes.NewBuffer(make([]byte, 0, len(snapRaw)+1024))
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if _, err := snapDS.Store.WriteSnapshot(buf, store.WriteOptions{Workers: bc.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSnapshotReadFrom(b *testing.B) {
	snapSetup(b)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(snapRaw)))
			for i := 0; i < b.N; i++ {
				var st store.Store
				if _, err := st.ReadSnapshot(bytes.NewReader(snapRaw), store.LoadOptions{Workers: bc.workers}); err != nil {
					b.Fatal(err)
				}
				if st.Len() != snapDS.Store.Len() {
					b.Fatal("short load")
				}
			}
		})
	}
}

func BenchmarkComputeAllMetrics(b *testing.B) {
	ctx := setup(b)
	st := ctx.A.DS.Store
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.ComputeAll(st)
	}
}

// Ablation benchmarks (DESIGN.md Section 5).

// BenchmarkAblationClusterSignature compares MinHash-estimated similarity
// against exact Jaccard verification.
func BenchmarkAblationClusterSignature(b *testing.B) {
	ctx := setup(b)
	ids := ctx.A.SampledIDs[:1500]
	html := ctx.A.DS.BatchHTML
	b.Run("minhash", func(b *testing.B) {
		opts := cluster.DefaultOptions()
		for i := 0; i < b.N; i++ {
			cluster.Batches(ids, html, opts)
		}
	})
	b.Run("exact", func(b *testing.B) {
		opts := cluster.DefaultOptions()
		opts.Exact = true
		for i := 0; i < b.N; i++ {
			cluster.Batches(ids, html, opts)
		}
	})
}

// BenchmarkAblationBinning compares the paper's median split with a mean
// split on the heavy-tailed #items feature.
func BenchmarkAblationBinning(b *testing.B) {
	ctx := setup(b)
	obs := ctx.A.Observations(true)
	fv := make([]float64, len(obs))
	mv := make([]float64, len(obs))
	for i, o := range obs {
		fv[i] = o.Features[core.FeatItems]
		mv[i] = o.Metrics[core.MetricTaskTime]
	}
	b.Run("median", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			corr.Run(core.FeatItems, core.MetricTaskTime, corr.SplitAtMedian, fv, mv)
		}
	})
	b.Run("mean", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			corr.MeanSplit(core.FeatItems, core.MetricTaskTime, fv, mv)
		}
	})
}

// BenchmarkAblationDisagreementVariants compares the paper's pruned
// disagreement against the unpruned variant (Section 4.1 discusses both).
func BenchmarkAblationDisagreementVariants(b *testing.B) {
	ctx := setup(b)
	bms := ctx.A.BatchMetrics
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, bm := range bms {
				if bm.Valid() && !bm.Pruned() {
					n++
				}
			}
			if n == 0 {
				b.Fatal("all pruned")
			}
		}
	})
	b.Run("unpruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, bm := range bms {
				if bm.Valid() && bm.Pairs > 0 {
					n++
				}
			}
			if n == 0 {
				b.Fatal("none valid")
			}
		}
	})
}

// BenchmarkQuery compares the query engine's zone-map-pruned execution
// against the equivalent hand-rolled full-column scan on a 16-segment
// store at the default 2% scale.
//
// The selective workload is "one worker's rows": with the worker table in
// hand their active window is known, so the engine runs
// worker == w && start in [firstDay, lastDay+1) and zone maps skip every
// segment outside the window before a row is touched; the reference scan
// is the classic full pass over the worker column. The week-window pair
// measures pure time-range pruning. Engine results are asserted equal to
// the naive counts, and the engine runs with Workers: 1, so the speedup
// is pruning, not parallelism.
//
// The `encoded` variants run the same queries against the same store
// loaded back from its compressed snapshot with raw columns never
// materialized: the filter kernels scan the RLE/dictionary/FOR-packed
// columns directly, so the comparison isolates scan-on-encoded against
// the raw-column scan (`engine`) and the full naive pass (`scan`).
func BenchmarkQuery(b *testing.B) {
	ds := synth.Generate(synth.Config{Seed: 1701, Scale: 0.02, Parallelism: 16})
	st := ds.Store
	st.ZoneMaps() // sealed in at generation; warm the implicit path too

	// The encoded twin: count-only queries on it never materialize a raw
	// column, so its scans stay on the encoded form.
	var snapBuf bytes.Buffer
	if _, err := st.WriteTo(&snapBuf); err != nil {
		b.Fatal(err)
	}
	var stEnc store.Store
	if _, err := stEnc.ReadFrom(bytes.NewReader(snapBuf.Bytes())); err != nil {
		b.Fatal(err)
	}

	// A one-day worker makes the most selective target; fall back to the
	// shortest-lived observed worker.
	var target *model.Worker
	for i := range ds.Workers {
		w := &ds.Workers[i]
		if w.FirstDay < 0 || w.LastDay < w.FirstDay {
			continue
		}
		if target == nil || w.LastDay-w.FirstDay < target.LastDay-target.FirstDay {
			target = w
		}
	}
	if target == nil {
		b.Fatal("no observed workers")
	}
	winLo, winHi := model.DayUnix(target.FirstDay), model.DayUnix(target.LastDay+1)

	naiveWorker := func() int64 {
		var n int64
		for _, w := range st.Workers() {
			if w == target.ID {
				n++
			}
		}
		return n
	}
	wantWorker := naiveWorker()
	if wantWorker == 0 {
		b.Fatalf("worker %d has no rows", target.ID)
	}
	b.Run("worker-day/engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := query.Run(st, query.Query{
				Where:   []query.Predicate{query.WorkerEq(target.ID), query.StartIn(winLo, winHi)},
				Workers: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.RowsMatched != wantWorker {
				b.Fatalf("engine matched %d rows, naive scan %d", res.Stats.RowsMatched, wantWorker)
			}
			if res.Stats.SegmentsPruned == 0 {
				b.Fatal("no segments pruned")
			}
		}
	})
	b.Run("worker-day/encoded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := query.Run(&stEnc, query.Query{
				Where:   []query.Predicate{query.WorkerEq(target.ID), query.StartIn(winLo, winHi)},
				Workers: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.RowsMatched != wantWorker {
				b.Fatalf("encoded scan matched %d rows, naive scan %d", res.Stats.RowsMatched, wantWorker)
			}
		}
	})
	b.Run("worker-day/scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if naiveWorker() != wantWorker {
				b.Fatal("scan drifted")
			}
		}
	})

	weekLo, weekHi := model.DayUnix(7*130), model.DayUnix(7*131)
	naiveWeek := func() int64 {
		var n int64
		for _, s := range st.Starts() {
			if s >= weekLo && s < weekHi {
				n++
			}
		}
		return n
	}
	wantWeek := naiveWeek()
	b.Run("week-window/engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := query.Run(st, query.Query{
				Where:   []query.Predicate{query.StartIn(weekLo, weekHi)},
				Workers: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.RowsMatched != wantWeek {
				b.Fatalf("engine matched %d rows, naive scan %d", res.Stats.RowsMatched, wantWeek)
			}
		}
	})
	b.Run("week-window/encoded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := query.Run(&stEnc, query.Query{
				Where:   []query.Predicate{query.StartIn(weekLo, weekHi)},
				Workers: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.RowsMatched != wantWeek {
				b.Fatalf("encoded scan matched %d rows, naive scan %d", res.Stats.RowsMatched, wantWeek)
			}
		}
	})
	b.Run("week-window/scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if naiveWeek() != wantWeek {
				b.Fatal("scan drifted")
			}
		}
	})
}

// BenchmarkAblationStoreLayout compares columnar scans against
// row-at-a-time materialization on the shared store.
func BenchmarkAblationStoreLayout(b *testing.B) {
	ctx := setup(b)
	st := ctx.A.DS.Store
	b.Run("columnar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var total int64
			for _, s := range st.Starts() {
				total += s
			}
			_ = total
		}
	})
	b.Run("row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var total int64
			for r := 0; r < st.Len(); r++ {
				total += st.Row(r).Start
			}
			_ = total
		}
	})
}

// BenchmarkQueryWithContext measures what overload governance costs on
// the hot path: the identical scan ungoverned (Run) and governed
// (RunContext with a deadline, a row budget and a group cap all armed
// but never hit). The cooperative checks sit between 64Ki-row chunks,
// so the measured overhead is a context poll plus one atomic add per
// chunk — low single digits of a percent, gated in CI like every other
// engine benchmark.
func BenchmarkQueryWithContext(b *testing.B) {
	ds := synth.Generate(synth.Config{Seed: 1701, Scale: 0.02, Parallelism: 16})
	st := ds.Store
	st.ZoneMaps()
	weekLo, weekHi := model.DayUnix(7*130), model.DayUnix(7*131)
	q := query.Query{
		Where:   []query.Predicate{query.StartIn(weekLo, weekHi)},
		Workers: 1,
	}
	res, err := query.Run(st, q)
	if err != nil {
		b.Fatal(err)
	}
	want := res.Stats.RowsMatched

	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := query.Run(st, q)
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.RowsMatched != want {
				b.Fatalf("matched %d, want %d", res.Stats.RowsMatched, want)
			}
		}
	})
	b.Run("governed", func(b *testing.B) {
		gq := q
		gq.Limits = query.Limits{
			Timeout:        time.Minute,
			MaxRowsScanned: 1 << 40,
			MaxGroups:      1 << 20,
		}
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := query.RunContext(ctx, st, gq)
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.RowsMatched != want {
				b.Fatalf("governed matched %d, want %d", res.Stats.RowsMatched, want)
			}
		}
	})
}
