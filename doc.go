// Package crowdscope reproduces "Understanding Workers, Developing
// Effective Tasks, and Enhancing Marketplace Dynamics: A Study of a Large
// Crowdsourcing Marketplace" (Jain, Das Sarma, Parameswaran, Widom — VLDB
// 2017) as a Go library: a calibrated synthetic marketplace simulator
// substituting for the proprietary 27M-instance dataset, the full analysis
// pipeline (batch clustering, HTML design-feature extraction,
// effectiveness metrics, correlation methodology, decision-tree
// prediction), and a benchmark harness regenerating every table and figure
// of the paper's evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package crowdscope
