#!/bin/sh
# bench_to_json.sh <bench.txt>
#
# Converts `go test -bench` output into a flat JSON object mapping
# benchmark name (GOMAXPROCS suffix stripped) to ns/op. Names shared by
# benchmarks in different packages keep the last occurrence; the CI gate
# only reads names that are unique across the module.
set -eu
awk '
BEGIN { printf "{" ; sep = "" }
/^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)
    printf "%s\n  \"%s\": %s", sep, name, $3
    sep = ","
}
END { printf "\n}\n" }
' "$1"
