#!/bin/sh
# bench_gate.sh <current.json> <baseline.json> <benchmark-name> <factor>
#
# Fails when the named benchmark's ns/op in current.json exceeds
# factor × its committed baseline. One-iteration CI runs are noisy, so
# the factor is deliberately loose: the gate catches order-of-magnitude
# regressions (an accidental O(n^2), a dropped fast path), not percent
# drift.
set -eu
current=$1
baseline=$2
name=$3
factor=$4

cur=$(jq -er --arg n "$name" '.[$n]' "$current") || { echo "FAIL: $name missing from $current"; exit 1; }
base=$(jq -er --arg n "$name" '.[$n]' "$baseline") || { echo "FAIL: $name missing from $baseline"; exit 1; }

awk -v c="$cur" -v b="$base" -v f="$factor" -v n="$name" 'BEGIN {
    if (c > b * f) {
        printf "FAIL: %s at %.0f ns/op exceeds %.1fx committed baseline %.0f ns/op\n", n, c, f, b
        exit 1
    }
    printf "OK: %s at %.0f ns/op within %.1fx of baseline %.0f ns/op\n", n, c, f, b
}'
