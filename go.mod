module crowdscope

go 1.21
