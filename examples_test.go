// Smoke coverage for the examples/ programs: every example must keep
// compiling against the internal APIs, and quickstart must actually run
// end-to-end at a tiny scale — the examples are the de-facto API docs,
// and nothing else exercised them.
package crowdscope_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// examplesDirs enumerates the example programs; a new example is covered
// the moment its directory lands.
func exampleDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join("examples", e.Name()))
		}
	}
	if len(dirs) < 5 {
		t.Fatalf("expected at least the five examples, found %v", dirs)
	}
	return dirs
}

// TestExamplesBuild vets (and thereby compiles) every example program.
func TestExamplesBuild(t *testing.T) {
	dirs := exampleDirs(t)
	args := append([]string{"vet"}, func() []string {
		out := make([]string, len(dirs))
		for i, d := range dirs {
			out[i] = "./" + d
		}
		return out
	}()...)
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go vet examples failed: %v\n%s", err, out)
	}
}

// TestQuickstartRuns executes the quickstart example at a tiny scale and
// checks its three headline findings appear — the closest thing to an
// end-to-end test of the public pipeline surface.
func TestQuickstartRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full analysis pipeline")
	}
	cmd := exec.Command("go", "run", "./examples/quickstart", "-scale", "0.001")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("quickstart failed: %v\n%s", err, out)
	}
	for _, want := range []string{"marketplace:", "1. load:", "2. design:", "3. workers:"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("quickstart output missing %q:\n%s", want, out)
		}
	}
}
