package experiments

import (
	"math"
	"strings"
	"testing"

	"crowdscope/internal/core"
	"crowdscope/internal/synth"
)

var testCtx = NewContext(core.New(synth.Generate(synth.Config{Seed: 1701, Scale: 0.02}), core.DefaultOptions()))

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact must be present.
	want := []string{
		"fig1", "fig2a", "fig2b", "fig3", "fig4", "fig5a", "fig5b",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15to24", "fig25", "fig26", "fig27", "fig28", "fig29",
		"fig30", "tab1", "tab2", "tab3", "tab4", "sec49", "ext1", "ext2", "ext3", "ext4",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry holds %d experiments, want %d", len(All()), len(want))
	}
}

func TestRegistryOrder(t *testing.T) {
	ids := IDs()
	// Figures come before tables before sections, numerically.
	pos := map[string]int{}
	for i, id := range ids {
		pos[id] = i
	}
	if !(pos["fig1"] < pos["fig2a"] && pos["fig2a"] < pos["fig2b"] && pos["fig9"] < pos["fig10"]) {
		t.Errorf("figure order wrong: %v", ids)
	}
	if !(pos["fig30"] < pos["tab1"] && pos["tab4"] < pos["sec49"]) {
		t.Errorf("kind order wrong: %v", ids)
	}
}

func TestLookupMissing(t *testing.T) {
	if _, ok := Lookup("fig99"); ok {
		t.Error("lookup of unknown ID succeeded")
	}
}

// TestAllExperimentsRun executes every experiment once and validates the
// artifact contract: non-empty text, well-formed series, finite measured
// checks.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out := e.Run(testCtx)
			if out == nil {
				t.Fatal("nil outcome")
			}
			if strings.TrimSpace(out.Text) == "" {
				t.Error("empty text artifact")
			}
			for name, tsv := range out.Series {
				if tsv.Len() == 0 {
					t.Errorf("series %s is empty", name)
				}
			}
			for _, c := range out.Checks {
				if math.IsNaN(c.Measured) {
					t.Errorf("check %q has NaN measurement", c.Name)
				}
				if math.IsInf(c.Measured, 0) {
					t.Errorf("check %q is infinite", c.Name)
				}
			}
		})
	}
}

func TestFig3WeekendEffect(t *testing.T) {
	out := runFig3(testCtx)
	for _, c := range out.Checks {
		if c.Name == "weekday/weekend load ratio" {
			if c.Measured < 1.2 || c.Measured > 3.5 {
				t.Errorf("weekday/weekend = %.2f, want ~2", c.Measured)
			}
			return
		}
	}
	t.Fatal("ratio check missing")
}

func TestFig5bTopWorkerShare(t *testing.T) {
	out := runFig5b(testCtx)
	for _, c := range out.Checks {
		if c.Name == "top-10% worker share of tasks" {
			if c.Measured < 0.70 {
				t.Errorf("top-10%% share = %.2f", c.Measured)
			}
			return
		}
	}
	t.Fatal("share check missing")
}

func TestFig7MegaClusters(t *testing.T) {
	out := runFig7(testCtx)
	for _, c := range out.Checks {
		if c.Name == "clusters with >1M task instances" {
			if c.Measured < 1 || c.Measured > 6 {
				t.Errorf("mega clusters = %.0f, want ~3", c.Measured)
			}
		}
		if c.Name == "median tasks per cluster" {
			if c.Measured < 100 || c.Measured > 2500 {
				t.Errorf("median cluster volume = %.0f, want ~400", c.Measured)
			}
		}
	}
}

func TestTable1ReproducesDirections(t *testing.T) {
	out := runTable1(testCtx)
	ratios := map[string]float64{}
	for _, c := range out.Checks {
		if strings.HasSuffix(c.Name, "ratio") {
			ratios[c.Name] = c.Measured
			// Direction must match the paper's.
			if (c.Paper < 1) != (c.Measured < 1) {
				t.Errorf("%s: measured %.3f vs paper %.3f — wrong direction", c.Name, c.Measured, c.Paper)
			}
		}
	}
	if len(ratios) != 4 {
		t.Errorf("expected 4 ratio checks, got %d", len(ratios))
	}
}

func TestTables23Directions(t *testing.T) {
	for _, out := range []*Outcome{runTable2(testCtx), runTable3(testCtx)} {
		for _, c := range out.Checks {
			if strings.HasSuffix(c.Name, "ratio") {
				if (c.Paper < 1) != (c.Measured < 1) {
					t.Errorf("%s: measured %.3f vs paper %.3f — wrong direction", c.Name, c.Measured, c.Paper)
				}
			}
		}
	}
}

func TestSec49BeatsBaseline(t *testing.T) {
	out := runSec49(testCtx)
	for _, c := range out.Checks {
		if strings.Contains(c.Name, "percentile-bucketization accuracy") && !strings.Contains(c.Name, "±1") {
			// Random baseline over 10 buckets is 10%.
			if c.Measured < 0.10 {
				t.Errorf("%s = %.3f, below random baseline", c.Name, c.Measured)
			}
		}
		if strings.Contains(c.Name, "range-bucketization accuracy") && !strings.Contains(c.Name, "±1") {
			// Range bucketization is dominated by the skewed bucket 0.
			if c.Measured < 0.30 {
				t.Errorf("%s = %.3f, want high like the paper's 0.39-0.98", c.Name, c.Measured)
			}
		}
	}
}

func TestSec49ToleranceAboveExact(t *testing.T) {
	out := runSec49(testCtx)
	exact := map[string]float64{}
	for _, c := range out.Checks {
		if strings.HasSuffix(c.Name, "accuracy") && !strings.Contains(c.Name, "±1") {
			exact[c.Name] = c.Measured
		}
	}
	for _, c := range out.Checks {
		if strings.Contains(c.Name, "±1") {
			base := strings.Replace(c.Name, " ±1", "", 1)
			if e, ok := exact[base]; ok && c.Measured < e {
				t.Errorf("±1 accuracy %.3f below exact %.3f for %s", c.Measured, e, base)
			}
		}
	}
}

func TestFig30EngagementChecks(t *testing.T) {
	out := runFig30(testCtx)
	byName := map[string]Check{}
	for _, c := range out.Checks {
		byName[c.Name] = c
	}
	if c := byName["one-day-lifetime worker share"]; c.Measured < 0.35 || c.Measured > 0.70 {
		t.Errorf("one-day share = %.2f, paper 0.527", c.Measured)
	}
	if c := byName["active workers' task share"]; c.Measured < 0.55 {
		t.Errorf("active task share = %.2f, paper 0.83", c.Measured)
	}
	if c := byName["one-day workers' task share"]; c.Measured > 0.15 {
		t.Errorf("one-day task share = %.2f, paper 0.024", c.Measured)
	}
}

func TestFig28Geography(t *testing.T) {
	out := runFig28(testCtx)
	for _, c := range out.Checks {
		if c.Name == "top-5 country worker share" {
			if c.Measured < 0.35 || c.Measured > 0.75 {
				t.Errorf("top-5 share = %.2f, paper ~0.5", c.Measured)
			}
		}
	}
}

func TestFig27SourceQuality(t *testing.T) {
	out := runFig27(testCtx)
	byName := map[string]Check{}
	for _, c := range out.Checks {
		byName[c.Name] = c
	}
	if c, ok := byName["top-10 source task share"]; ok && c.Measured < 0.85 {
		t.Errorf("top-10 task share = %.2f", c.Measured)
	}
	if c, ok := byName["amt mean relative task time"]; ok && c.Measured < 2 {
		t.Errorf("amt relative task time = %.1f, paper >5", c.Measured)
	}
}

func TestContextMemoizesWorkers(t *testing.T) {
	c := NewContext(testCtx.A)
	w1 := c.Workers()
	w2 := c.Workers()
	if &w1[0] != &w2[0] {
		t.Error("worker table rebuilt")
	}
}
