package experiments

import (
	"fmt"
	"math"
	"strings"

	"crowdscope/internal/cluster"
	"crowdscope/internal/core"
	"crowdscope/internal/corr"
	"crowdscope/internal/model"
	"crowdscope/internal/report"
	"crowdscope/internal/stats"
	"crowdscope/internal/synth"
	"crowdscope/internal/timeseries"
)

// The paper's Section 7 lists the follow-up work these experiments
// implement: the interplay between task parameters (ext1) and causal
// confirmation of the correlational claims via A/B testing (ext2).

func init() {
	register(Experiment{ID: "ext1", Paper: "Section 7 (ext)", Title: "Feature-interaction analysis (parameter interplay)", Run: runExt1})
	register(Experiment{ID: "ext2", Paper: "Section 7 (ext)", Title: "A/B causal confirmation of the design effects", Run: runExt2})
	register(Experiment{ID: "ext3", Paper: "Section 3.2 (ext)", Title: "Task arrivals overlaid with internal vs external workloads", Run: runExt3})
	register(Experiment{ID: "ext4", Paper: "Section 3.3 (ext)", Title: "Clustering threshold sweep against ground truth", Run: runExt4})
}

// runExt4 replaces the paper's manual clustering-threshold tuning ("tuned
// the threshold of a match to ensure that tasks that on inspection look
// very similar ... are actually clustered together") with a measured
// sweep: the simulator knows each batch's true distinct task, so purity
// and adjusted Rand index are computable per threshold.
func runExt4(ctx *Context) *Outcome {
	a := ctx.A
	// Sweep over a subsample to keep the experiment quick.
	ids := a.SampledIDs
	if len(ids) > 2500 {
		ids = ids[:2500]
	}
	truth := make([]int, len(ids))
	for i, bid := range ids {
		truth[i] = int(a.DS.Batches[bid].TaskType)
	}
	thresholds := []float64{0.3, 0.5, 0.7, 0.9}
	qualities := cluster.SweepThreshold(ids, a.DS.BatchHTML, truth, thresholds, cluster.DefaultOptions())

	out := &Outcome{}
	tbl := report.NewTable("Clustering quality by Jaccard threshold", "threshold", "purity", "ARI", "clusters", "true tasks")
	tsv := report.NewTSV("threshold", "purity", "ari", "clusters")
	bestARI := 0.0
	for i, q := range qualities {
		tbl.AddRow(thresholds[i], q.Purity, q.ARI, q.Clusters, q.TrueClasses)
		tsv.Add(thresholds[i], q.Purity, q.ARI, float64(q.Clusters))
		if q.ARI > bestARI {
			bestARI = q.ARI
		}
	}
	out.addSeries("ext4", tsv)
	out.check("best threshold ARI", math.NaN(), bestARI, "ari",
		"ground-truth replacement for the paper's eyeball threshold tuning")
	out.Text = tbl.String()
	return out
}

// runExt3 completes the overlay the paper's Section 3.2 sketches but never
// shows ("task arrival overlay with internal and external"): weekly task
// volume split between the marketplace's internal worker pool and the
// external labor sources.
func runExt3(ctx *Context) *Outcome {
	a := ctx.A
	var internalSrc uint16
	for i, s := range a.DS.Sources {
		if s.Name == "internal" {
			internalSrc = uint16(i)
		}
	}
	st := a.DS.Store
	starts := st.Starts()
	wcol := st.Workers()
	internal := timeseries.NewWeekly()
	external := timeseries.NewWeekly()
	for i := range starts {
		if a.DS.Workers[wcol[i]].Source == internalSrc {
			internal.IncrAt(starts[i])
		} else {
			external.IncrAt(starts[i])
		}
	}

	out := &Outcome{}
	tsv := report.NewTSV("week", "internal_tasks", "external_tasks")
	for w := 0; w < internal.Len(); w++ {
		tsv.Add(float64(w), internal.At(w), external.At(w))
	}
	out.addSeries("ext3", tsv)

	share := internal.Total() / (internal.Total() + external.Total())
	out.check("internal worker task share", 0.02, share, "fraction",
		"paper: internal workers account for a very small fraction of tasks (484k of 27M)")
	// The flux lands on external workers: during the busiest external
	// weeks, internal volume barely moves.
	_, peakWeek := external.Max()
	peakInternal := internal.At(peakWeek)
	medInternal := stats.Median(internal.Slice(int(model.PostBoomWeek), internal.Len()).NonZero())
	ratio := 0.0
	if medInternal > 0 {
		ratio = peakInternal / medInternal
	}
	out.check("internal volume at external peak vs its median", math.NaN(), ratio, "x",
		"the dedicated pool is not the flux absorber")

	out.Text = fmt.Sprintf("Internal pool: %.1f%% of tasks; at the external peak week its volume is %.1fx its own median — spikes are absorbed by the freelance sources.\n",
		share*100, ratio)
	return out
}

func runExt1(ctx *Context) *Outcome {
	obs := ctx.A.Observations(true)
	out := &Outcome{}
	var b strings.Builder

	pull := func(name string, get func(corr.Observation) (float64, bool)) []float64 {
		vals := make([]float64, len(obs))
		for i, o := range obs {
			v, ok := get(o)
			if !ok {
				v = math.NaN()
			}
			vals[i] = v
		}
		_ = name
		return vals
	}
	feat := func(name string) []float64 {
		return pull(name, func(o corr.Observation) (float64, bool) { v, ok := o.Features[name]; return v, ok })
	}
	metric := func(name string) []float64 {
		return pull(name, func(o corr.Observation) (float64, bool) { v, ok := o.Metrics[name]; return v, ok })
	}

	// Does the instruction-length effect on disagreement deepen for
	// bigger tasks (more items to get wrong)? And does the text-box cost
	// in task time deepen with more instructions to read?
	cases := []struct {
		feature, moderator, metric string
	}{
		{core.FeatWords, core.FeatItems, core.MetricDisagreement},
		{core.FeatItems, core.FeatWords, core.MetricDisagreement},
		{core.FeatTextBoxes, core.FeatItems, core.MetricTaskTime},
		{core.FeatImages, core.FeatItems, core.MetricPickupTime},
	}
	for _, c := range cases {
		res := corr.Interaction(c.feature, c.moderator, c.metric,
			feat(c.feature), feat(c.moderator), metric(c.metric))
		fmt.Fprintf(&b, "%s\n", res.String())
		out.check(fmt.Sprintf("%s→%s effect ratio, low %s", c.feature, c.metric, c.moderator),
			math.NaN(), res.EffectLow, "ratio", "")
		out.check(fmt.Sprintf("%s→%s effect ratio, high %s", c.feature, c.metric, c.moderator),
			math.NaN(), res.EffectHigh, "ratio", "stratified extension of Section 4.2")
	}
	out.Text = b.String()
	return out
}

func runExt2(ctx *Context) *Outcome {
	out := &Outcome{}
	var b strings.Builder
	labels := model.Labels{
		Goals:     model.GoalSet(0).With(model.GoalLU),
		Operators: model.OpSet(0).With(model.OpFilter),
		Data:      model.DataSet(0).With(model.DataText),
	}
	base := model.DesignParams{Words: 400, TextBoxes: 0, Items: 40, Fields: 6}

	withText := base
	withText.TextBoxes = 2
	withText.Fields += 2
	withEx := base
	withEx.Examples = 2

	seedBase := ctx.A.DS.Cfg.Seed

	resText := synth.RunAB(synth.ABConfig{Seed: seedBase + 101, Labels: labels, DesignA: base, DesignB: withText})
	fmt.Fprintf(&b, "A/B text boxes: task-time %.0fs→%.0fs (p=%.1e), disagreement %.3f→%.3f (p=%.1e)\n",
		resText.A.MedianTaskTime, resText.B.MedianTaskTime, resText.TaskTime.P,
		resText.A.MedianDisagreement, resText.B.MedianDisagreement, resText.Disagreement.P)
	out.check("A/B text-box task-time ratio", 285.7/119.0, resText.B.MedianTaskTime/resText.A.MedianTaskTime, "ratio",
		"causal analogue of Table 2's correlation")
	out.check("A/B text-box effect significant", 1, b2f(resText.TaskTime.Significant(0.01)), "bool", "")

	resEx := synth.RunAB(synth.ABConfig{Seed: seedBase + 102, Labels: labels, DesignA: base, DesignB: withEx})
	fmt.Fprintf(&b, "A/B examples: pickup %.0fs→%.0fs (p=%.1e), disagreement %.3f→%.3f (p=%.1e)\n",
		resEx.A.MedianPickupTime, resEx.B.MedianPickupTime, resEx.PickupTime.P,
		resEx.A.MedianDisagreement, resEx.B.MedianDisagreement, resEx.Disagreement.P)
	out.check("A/B examples pickup ratio", 1353.0/6303.0, resEx.B.MedianPickupTime/resEx.A.MedianPickupTime, "ratio",
		"causal analogue of Table 3's correlation")
	out.check("A/B examples effect significant", 1, b2f(resEx.PickupTime.Significant(0.01)), "bool", "")

	// A/A control must stay null.
	resNull := synth.RunAB(synth.ABConfig{Seed: seedBase + 103, Labels: labels, DesignA: base, DesignB: base})
	fmt.Fprintf(&b, "A/A control: task-time p=%.2g, pickup p=%.2g, disagreement p=%.2g (all expected > 0.01)\n",
		resNull.TaskTime.P, resNull.PickupTime.P, resNull.Disagreement.P)
	out.check("A/A control stays null", 0, b2f(resNull.TaskTime.Significant(0.01) ||
		resNull.PickupTime.Significant(0.01) || resNull.Disagreement.Significant(0.01)), "bool", "")

	out.Text = b.String()
	return out
}
