package experiments

import (
	"fmt"
	"math"
	"strings"

	"crowdscope/internal/core"
	"crowdscope/internal/corr"
	"crowdscope/internal/ml"
	"crowdscope/internal/model"
	"crowdscope/internal/report"
	"crowdscope/internal/stats"
)

func init() {
	register(Experiment{ID: "fig13", Paper: "Figure 13", Title: "Pickup time vs task time against end-to-end time", Run: runFig13})
	register(Experiment{ID: "fig14", Paper: "Figure 14", Title: "Design-feature CDFs against the three metrics", Run: runFig14})
	register(Experiment{ID: "fig25", Paper: "Figure 25", Title: "Feature-metric CDFs drilled down by label", Run: runFig25})
	register(Experiment{ID: "tab1", Paper: "Table 1", Title: "Disagreement-score feature splits", Run: runTable1})
	register(Experiment{ID: "tab2", Paper: "Table 2", Title: "Median task-time feature splits", Run: runTable2})
	register(Experiment{ID: "tab3", Paper: "Table 3", Title: "Median pickup-time feature splits", Run: runTable3})
	register(Experiment{ID: "sec49", Paper: "Section 4.9", Title: "Predicting metric buckets from design features", Run: runSec49})
}

func runFig13(ctx *Context) *Outcome {
	a := ctx.A
	out := &Outcome{}
	tsv := report.NewTSV("end_to_end_s", "pickup_s", "task_time_s")
	var ratios []float64
	for i := range a.Clusters {
		m := a.Clusters[i].Metrics
		if math.IsNaN(m.PickupTime) || math.IsNaN(m.TaskTime) || m.TaskTime <= 0 {
			continue
		}
		tsv.Add(m.PickupTime+m.TaskTime, m.PickupTime, m.TaskTime)
		if m.PickupTime > 0 {
			ratios = append(ratios, m.PickupTime/m.TaskTime)
		}
	}
	out.addSeries("fig13", tsv)
	med := stats.Median(ratios)
	out.check("median pickup/task-time ratio", math.NaN(), med, "x",
		"paper: pickup-time is orders of magnitude above task-time")
	frac := 0.0
	for _, r := range ratios {
		if r > 1 {
			frac++
		}
	}
	frac /= float64(len(ratios))
	out.check("clusters with pickup > task-time", math.NaN(), frac, "fraction", "")
	out.Text = fmt.Sprintf("Median pickup/task-time ratio = %.0fx across %d clusters; pickup dominates end-to-end latency in %.0f%% of clusters.\n",
		med, len(ratios), frac*100)
	return out
}

// table1Rows names the Table 1 experiments and their paper medians.
var table1Rows = []struct {
	spec           corr.Spec
	paper1, paper2 float64
}{
	{corr.Spec{Feature: core.FeatWords, Metric: core.MetricDisagreement, Kind: corr.SplitAtMedian}, 0.147, 0.108},
	{corr.Spec{Feature: core.FeatItems, Metric: core.MetricDisagreement, Kind: corr.SplitAtMedian}, 0.169, 0.086},
	{corr.Spec{Feature: core.FeatTextBoxes, Metric: core.MetricDisagreement, Kind: corr.SplitAtZero}, 0.102, 0.160},
	{corr.Spec{Feature: core.FeatExamples, Metric: core.MetricDisagreement, Kind: corr.SplitAtZero}, 0.128, 0.101},
}

var table2Rows = []struct {
	spec           corr.Spec
	paper1, paper2 float64
}{
	{corr.Spec{Feature: core.FeatItems, Metric: core.MetricTaskTime, Kind: corr.SplitAtMedian}, 230, 136},
	{corr.Spec{Feature: core.FeatTextBoxes, Metric: core.MetricTaskTime, Kind: corr.SplitAtZero}, 119.0, 285.7},
	{corr.Spec{Feature: core.FeatImages, Metric: core.MetricTaskTime, Kind: corr.SplitAtZero}, 183.6, 129.0},
}

var table3Rows = []struct {
	spec           corr.Spec
	paper1, paper2 float64
}{
	{corr.Spec{Feature: core.FeatItems, Metric: core.MetricPickupTime, Kind: corr.SplitAtMedian}, 4521, 8132},
	{corr.Spec{Feature: core.FeatExamples, Metric: core.MetricPickupTime, Kind: corr.SplitAtZero}, 6303, 1353},
	{corr.Spec{Feature: core.FeatImages, Metric: core.MetricPickupTime, Kind: corr.SplitAtZero}, 7838, 2431},
}

func runFeatureTable(ctx *Context, title string, rows []struct {
	spec           corr.Spec
	paper1, paper2 float64
}) *Outcome {
	obs := ctx.A.Observations(true)
	out := &Outcome{}
	tbl := report.NewTable(title, "Feature", "Bin-1", "n1", "Bin-2", "n2", "median-1", "median-2", "paper-1", "paper-2", "p-value")
	for _, row := range rows {
		res := corr.RunMatrix(obs, []corr.Spec{row.spec})[0]
		tbl.AddRow(res.Feature, res.Bin1.Label, res.Bin1.Count, res.Bin2.Label, res.Bin2.Count,
			res.Bin1.Median, res.Bin2.Median, row.paper1, row.paper2, fmt.Sprintf("%.1e", res.TTest.P))
		out.check(fmt.Sprintf("%s %s bin1 median", res.Feature, res.Metric), row.paper1, res.Bin1.Median, res.Metric, "")
		out.check(fmt.Sprintf("%s %s bin2 median", res.Feature, res.Metric), row.paper2, res.Bin2.Median, res.Metric, "")
		out.check(fmt.Sprintf("%s %s bin2/bin1 ratio", res.Feature, res.Metric), row.paper2/row.paper1,
			res.Bin2.Median/res.Bin1.Median, "ratio", significanceNote(res))
	}
	out.Text = tbl.String()
	return out
}

func significanceNote(r corr.Result) string {
	if r.Significant() {
		return fmt.Sprintf("significant (p=%.1e < 0.01)", r.TTest.P)
	}
	return fmt.Sprintf("NOT significant (p=%.2g)", r.TTest.P)
}

func runTable1(ctx *Context) *Outcome {
	return runFeatureTable(ctx, "Table 1: Disagreement Score summary", table1Rows)
}

func runTable2(ctx *Context) *Outcome {
	return runFeatureTable(ctx, "Table 2: Median Task Time summary", table2Rows)
}

func runTable3(ctx *Context) *Outcome {
	return runFeatureTable(ctx, "Table 3: Median Pickup Time summary", table3Rows)
}

func runFig14(ctx *Context) *Outcome {
	obs := ctx.A.Observations(true)
	out := &Outcome{}
	results := corr.RunMatrix(obs, core.StandardSpecs())
	var b strings.Builder
	for _, res := range results {
		x1, y1, x2, y2 := corr.CDFSeries(res, 64)
		tsv := report.NewTSV("x_bin1", "y_bin1", "x_bin2", "y_bin2")
		for i := 0; i < len(x1) && i < len(x2); i++ {
			tsv.Add(x1[i], y1[i], x2[i], y2[i])
		}
		name := fmt.Sprintf("fig14_%s_%s", sanitize(res.Feature), sanitize(res.Metric))
		out.addSeries(name, tsv)
		fmt.Fprintf(&b, "%s\n", res.String())
		out.check(fmt.Sprintf("%s→%s significant", res.Feature, res.Metric), 1, b2f(res.Significant()), "bool", "")
	}
	// The null features must stay flat (Section 4.8).
	for _, res := range corr.RunMatrix(obs, core.NullSpecs()) {
		fmt.Fprintf(&b, "%s [null-effect control]\n", res.String())
		out.check(fmt.Sprintf("%s→%s null control not significant", res.Feature, res.Metric), 0, b2f(res.Significant()), "bool", "")
	}
	out.Text = b.String()
	return out
}

// drill25 names the Figure 25 drill-downs.
var drill25 = []struct {
	name   string
	goal   *model.Goal
	op     *model.Operator
	spec   corr.Spec
	strong bool // the paper reports a pronounced effect
}{
	{"a_words_dis_gather", nil, opPtr(model.OpGather), corr.Spec{Feature: core.FeatWords, Metric: core.MetricDisagreement, Kind: corr.SplitAtMedian}, true},
	{"b_words_dis_rating", nil, opPtr(model.OpRate), corr.Spec{Feature: core.FeatWords, Metric: core.MetricDisagreement, Kind: corr.SplitAtMedian}, false},
	{"c_textbox_time_sa", goalPtr(model.GoalSA), nil, corr.Spec{Feature: core.FeatTextBoxes, Metric: core.MetricTaskTime, Kind: corr.SplitAtZero}, true},
	{"d_examples_dis_lu", goalPtr(model.GoalLU), nil, corr.Spec{Feature: core.FeatExamples, Metric: core.MetricDisagreement, Kind: corr.SplitAtZero}, true},
	{"e_items_dis_gather", nil, opPtr(model.OpGather), corr.Spec{Feature: core.FeatItems, Metric: core.MetricDisagreement, Kind: corr.SplitAtMedian}, true},
	{"f_items_dis_rating", nil, opPtr(model.OpRate), corr.Spec{Feature: core.FeatItems, Metric: core.MetricDisagreement, Kind: corr.SplitAtMedian}, false},
	{"g_images_pickup_extract", nil, opPtr(model.OpExtract), corr.Spec{Feature: core.FeatImages, Metric: core.MetricPickupTime, Kind: corr.SplitAtZero}, true},
	{"h_images_pickup_qa", goalPtr(model.GoalQA), nil, corr.Spec{Feature: core.FeatImages, Metric: core.MetricPickupTime, Kind: corr.SplitAtZero}, true},
}

func goalPtr(g model.Goal) *model.Goal       { return &g }
func opPtr(o model.Operator) *model.Operator { return &o }

func runFig25(ctx *Context) *Outcome {
	out := &Outcome{}
	var b strings.Builder
	for _, d := range drill25 {
		obs := ctx.A.ObservationsWithLabels(d.goal, d.op, nil)
		if len(obs) < 8 {
			fmt.Fprintf(&b, "25%s: insufficient clusters (%d)\n", d.name[:1], len(obs))
			continue
		}
		res := corr.RunMatrix(obs, []corr.Spec{d.spec})[0]
		x1, y1, x2, y2 := corr.CDFSeries(res, 48)
		tsv := report.NewTSV("x_bin1", "y_bin1", "x_bin2", "y_bin2")
		for i := 0; i < len(x1) && i < len(x2); i++ {
			tsv.Add(x1[i], y1[i], x2[i], y2[i])
		}
		out.addSeries("fig25"+d.name, tsv)
		fmt.Fprintf(&b, "25%s (%d clusters): %s\n", d.name[:1], len(obs), res.String())
		if d.strong {
			out.check("fig25"+d.name[:1]+" effect direction holds", math.NaN(),
				res.Bin2.Median-res.Bin1.Median, res.Metric, "paper: pronounced effect in this slice")
		}
	}
	out.Text = b.String()
	return out
}

// sec49Features maps each metric to its paper feature set (Section 4.9).
func sec49Features(o corr.Observation, metric string) []float64 {
	switch metric {
	case core.MetricDisagreement:
		return []float64{o.Features[core.FeatItems], b2f(o.Features[core.FeatExamples] > 0), o.Features[core.FeatWords], o.Features[core.FeatTextBoxes]}
	case core.MetricTaskTime:
		return []float64{o.Features[core.FeatItems], b2f(o.Features[core.FeatImages] > 0), o.Features[core.FeatTextBoxes]}
	default: // pickup-time
		return []float64{o.Features[core.FeatItems], b2f(o.Features[core.FeatExamples] > 0), b2f(o.Features[core.FeatImages] > 0)}
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// sec49Paper records the paper's cross-validated accuracies.
var sec49Paper = map[string][4]float64{
	// metric: {range acc, range ±1, percentile acc, percentile ±1}
	core.MetricDisagreement: {0.39, 0.62, 0.20, 0.44},
	core.MetricTaskTime:     {0.95, math.NaN(), 0.16, 0.40},
	core.MetricPickupTime:   {0.98, math.NaN(), 0.15, 0.39},
}

func runSec49(ctx *Context) *Outcome {
	obs := ctx.A.Observations(true)
	out := &Outcome{}
	tbl := report.NewTable("Section 4.9: 5-fold CV accuracy of bucket prediction",
		"Metric", "Bucketization", "Accuracy", "±1 Accuracy", "Paper Acc", "Paper ±1")
	var extra strings.Builder

	for _, metric := range []string{core.MetricDisagreement, core.MetricTaskTime, core.MetricPickupTime} {
		// The prediction task bucketizes disagreement over its full range
		// (the paper's bucket table spans up to 1.0), so skip the pruning
		// rule here.
		source := metric
		if metric == core.MetricDisagreement {
			source = core.MetricDisagreementRaw
		}
		var X [][]float64
		var vals []float64
		for _, o := range obs {
			v, ok := o.Metrics[source]
			if !ok || math.IsNaN(v) {
				continue
			}
			X = append(X, sec49Features(o, metric))
			vals = append(vals, v)
		}
		paper := sec49Paper[metric]
		for bi, kind := range []string{"range", "percentile"} {
			var bk ml.Bucketizer
			if kind == "range" {
				bk = ml.ByRange(vals, 10)
			} else {
				bk = ml.ByPercentile(vals, 10)
			}
			y := bk.Apply(vals)
			cv := ml.CrossValidate(X, y, 10, 5, ml.DefaultTreeOptions())
			pAcc, pTol := paper[bi*2], paper[bi*2+1]
			tbl.AddRow(metric, kind, cv.Accuracy, cv.WithinOne, pAcc, pTol)
			out.check(fmt.Sprintf("%s %s-bucketization accuracy", metric, kind), pAcc, cv.Accuracy, "accuracy", "")
			if !math.IsNaN(pTol) {
				out.check(fmt.Sprintf("%s %s-bucketization ±1 accuracy", metric, kind), pTol, cv.WithinOne, "accuracy", "")
			}
			// The paper also publishes the bucket occupancies: range
			// bucketization is extremely skewed, percentile is flat.
			counts := bk.Counts(vals)
			fmt.Fprintf(&extra, "%s/%s bucket bounds: %s\n", metric, kind, fmtBounds(bk.Bounds))
			fmt.Fprintf(&extra, "%s/%s bucket counts: %v\n", metric, kind, counts)
			if kind == "range" && metric != core.MetricDisagreement {
				out.check(fmt.Sprintf("%s range bucket-0 share", metric), math.NaN(),
					float64(counts[0])/float64(len(vals)), "fraction",
					"paper: nearly all mass in the first range bucket")
			}
		}
		// Which features does the predictor lean on? (range buckets)
		bk := ml.ByRange(vals, 10)
		tree := ml.Train(X, bk.Apply(vals), 10, ml.DefaultTreeOptions())
		fmt.Fprintf(&extra, "%s feature importance %v (features: %s)\n\n",
			metric, fmtImportance(tree.FeatureImportance(len(X[0]))), sec49FeatureNames(metric))
	}
	out.Text = tbl.String() + "\n" + extra.String()
	return out
}

func fmtBounds(bounds []float64) string {
	parts := make([]string, len(bounds))
	for i, b := range bounds {
		parts[i] = fmt.Sprintf("%.3g", b)
	}
	return strings.Join(parts, ", ")
}

func fmtImportance(imp []float64) string {
	parts := make([]string, len(imp))
	for i, v := range imp {
		parts[i] = fmt.Sprintf("%.2f", v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func sec49FeatureNames(metric string) string {
	switch metric {
	case core.MetricDisagreement:
		return "#items, has-example, #words, #text-boxes"
	case core.MetricTaskTime:
		return "#items, has-image, #text-boxes"
	default:
		return "#items, has-example, has-image"
	}
}

func sanitize(s string) string {
	s = strings.ReplaceAll(s, "#", "")
	s = strings.ReplaceAll(s, "-", "_")
	return s
}
