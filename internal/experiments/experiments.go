// Package experiments regenerates every table and figure of the paper's
// evaluation from a synthetic dataset: each experiment consumes the shared
// core.Analysis, emits a rendered text artifact plus TSV series for
// plotting, and records paper-vs-measured checkpoints that EXPERIMENTS.md
// is built from.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"crowdscope/internal/core"
	"crowdscope/internal/report"
)

// Context carries the shared analysis state experiments run against.
type Context struct {
	A *core.Analysis
	// ScanWorkers bounds the goroutine fan-out of the store scans
	// experiments run through the query engine (0 = GOMAXPROCS, 1 =
	// serial). It mirrors the CLIs' -workers flag and never changes any
	// result.
	ScanWorkers int
	// workers memoizes the worker table across experiments.
	workers []core.WorkerStats
}

// NewContext wraps an analysis.
func NewContext(a *core.Analysis) *Context { return &Context{A: a} }

// Workers returns the memoized worker table.
func (c *Context) Workers() []core.WorkerStats {
	if c.workers == nil {
		c.workers = c.A.WorkerTable()
	}
	return c.workers
}

// Check records one paper-vs-measured comparison.
type Check struct {
	Name     string
	Paper    float64 // the paper's reported value (NaN when qualitative)
	Measured float64
	Unit     string
	Note     string
}

// Outcome is an experiment's artifact bundle.
type Outcome struct {
	Text   string
	Series map[string]*report.TSV
	Checks []Check
}

func (o *Outcome) addSeries(name string, t *report.TSV) {
	if o.Series == nil {
		o.Series = map[string]*report.TSV{}
	}
	o.Series[name] = t
}

func (o *Outcome) check(name string, paper, measured float64, unit, note string) {
	o.Checks = append(o.Checks, Check{Name: name, Paper: paper, Measured: measured, Unit: unit, Note: note})
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the short handle ("fig2a", "tab1", "sec49").
	ID string
	// Paper names the artifact ("Figure 2a").
	Paper string
	// Title describes what it shows.
	Title string
	// Run executes it.
	Run func(*Context) *Outcome
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in paper order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs in paper order.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

// orderKey sorts figN before tabN before secN, numerically.
func orderKey(id string) string {
	kind := 0
	switch {
	case strings.HasPrefix(id, "fig"):
		kind = 1
	case strings.HasPrefix(id, "tab"):
		kind = 2
	case strings.HasPrefix(id, "sec"):
		kind = 3
	default:
		kind = 4 // extensions last
	}
	num := 0
	suffix := ""
	for _, r := range id {
		if r >= '0' && r <= '9' {
			num = num*10 + int(r-'0')
		} else if num > 0 {
			suffix += string(r)
		}
	}
	return fmt.Sprintf("%d-%04d-%s", kind, num, suffix)
}
