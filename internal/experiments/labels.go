package experiments

import (
	"fmt"
	"math"
	"strings"

	"crowdscope/internal/model"
	"crowdscope/internal/report"
)

func init() {
	register(Experiment{ID: "fig9", Paper: "Figure 9", Title: "Distribution of goals, data types and operators", Run: runFig9})
	register(Experiment{ID: "fig10", Paper: "Figure 10", Title: "Correlations: data|goal, operator|goal, operator|data", Run: runFig10})
	register(Experiment{ID: "fig11", Paper: "Figure 11", Title: "Correlations: goal|data, goal|operator, data|operator", Run: runFig11})
	register(Experiment{ID: "fig12", Paper: "Figure 12", Title: "Cumulative simple vs complex clusters over time", Run: runFig12})
}

func runFig9(ctx *Context) *Outcome {
	ls := ctx.A.LabelDistributions()
	out := &Outcome{}

	goals := report.NewChart("Popular task goals (instance volume)")
	goalTSV := report.NewTSV("goal", "instances")
	for g := 0; g < model.NumGoals-1; g++ {
		goals.Add(model.Goal(g).String(), ls.GoalInstances[g])
		goalTSV.Add(float64(g), ls.GoalInstances[g])
	}
	out.addSeries("fig9a_goals", goalTSV)

	data := report.NewChart("Popular data types (instance volume)")
	dataTSV := report.NewTSV("data", "instances")
	for d := 0; d < model.NumDataTypes-1; d++ {
		data.Add(model.DataType(d).String(), ls.DataInstances[d])
		dataTSV.Add(float64(d), ls.DataInstances[d])
	}
	out.addSeries("fig9b_data", dataTSV)

	ops := report.NewChart("Popular operators (instance volume)")
	opTSV := report.NewTSV("operator", "instances")
	for o := 0; o < model.NumOperators-1; o++ {
		ops.Add(model.Operator(o).String(), ls.OperatorInstances[o])
		opTSV.Add(float64(o), ls.OperatorInstances[o])
	}
	out.addSeries("fig9c_operators", opTSV)

	out.check("LU share of instances", 0.17, ls.GoalShare(model.GoalLU), "fraction", "")
	out.check("Transcription share of instances", 0.13, ls.GoalShare(model.GoalT), "fraction", "")
	out.check("Text share of instances", 0.40, ls.DataShare(model.DataText), "fraction", "")
	out.check("Image share of instances", 0.26, ls.DataShare(model.DataImage), "fraction", "")
	out.check("Filter share of instances", 0.33, ls.OperatorShare(model.OpFilter), "fraction", "")
	out.check("Rate share of instances", 0.13, ls.OperatorShare(model.OpRate), "fraction", "")
	complexOps := ls.OperatorShare(model.OpGather) + ls.OperatorShare(model.OpExtract) +
		ls.OperatorShare(model.OpLocalize) + ls.OperatorShare(model.OpGenerate)
	out.check("Gather+Extract+Localize+Generate share", 0.22, complexOps, "fraction", "")

	out.Text = goals.String() + "\n" + data.String() + "\n" + ops.String()
	return out
}

func runFig10(ctx *Context) *Outcome {
	ls := ctx.A.LabelDistributions()
	out := &Outcome{}

	// (a) data mix per goal.
	dataByGoal := report.NewTSV(append([]string{"goal"}, dataNames()...)...)
	for g := 0; g < model.NumGoals-1; g++ {
		mix := ls.DataMixForGoal(model.Goal(g))
		row := []float64{float64(g)}
		for d := 0; d < model.NumDataTypes; d++ {
			row = append(row, mix[d])
		}
		dataByGoal.Add(row...)
	}
	out.addSeries("fig10a_data_by_goal", dataByGoal)

	// (b) operator mix per goal.
	opByGoal := report.NewTSV(append([]string{"goal"}, operatorNames()...)...)
	for g := 0; g < model.NumGoals-1; g++ {
		mix := ls.OpMixForGoal(model.Goal(g))
		row := []float64{float64(g)}
		for o := 0; o < model.NumOperators; o++ {
			row = append(row, mix[o])
		}
		opByGoal.Add(row...)
	}
	out.addSeries("fig10b_op_by_goal", opByGoal)

	// (c) operator mix per data type.
	opByData := report.NewTSV(append([]string{"data"}, operatorNames()...)...)
	for d := 0; d < model.NumDataTypes-1; d++ {
		mix := ls.OpMixForData(model.DataType(d))
		row := []float64{float64(d)}
		for o := 0; o < model.NumOperators; o++ {
			row = append(row, mix[o])
		}
		opByData.Add(row...)
	}
	out.addSeries("fig10c_op_by_data", opByData)

	srData := ls.DataMixForGoal(model.GoalSR)
	erData := ls.DataMixForGoal(model.GoalER)
	saData := ls.DataMixForGoal(model.GoalSA)
	luData := ls.DataMixForGoal(model.GoalLU)
	tOps := ls.OpMixForGoal(model.GoalT)
	luOps := ls.OpMixForGoal(model.GoalLU)
	hbOps := ls.OpMixForGoal(model.GoalHB)
	out.check("web share of SR data", 37, srData[model.DataWeb], "%", "")
	out.check("web share of ER data", 24, erData[model.DataWeb], "%", "")
	out.check("social share of SA data", 13, saData[model.DataSocial], "%", "")
	out.check("social share of LU data", 8, luData[model.DataSocial], "%", "")
	out.check("extract share of T operators", math.NaN(), tOps[model.OpExtract], "%", "paper: extraction is T's primary operation")
	out.check("generate share of LU operators", 16, luOps[model.OpGenerate], "%", "")
	out.check("external share of HB operators", 13, hbOps[model.OpExternal], "%", "")
	out.check("localize share of HB operators", 9, hbOps[model.OpLocalize], "%", "")

	var b strings.Builder
	fmt.Fprintf(&b, "Conditionals (row %%): web|SR=%.0f web|ER=%.0f social|SA=%.0f extract|T=%.0f generate|LU=%.0f external|HB=%.0f\n",
		srData[model.DataWeb], erData[model.DataWeb], saData[model.DataSocial],
		tOps[model.OpExtract], luOps[model.OpGenerate], hbOps[model.OpExternal])
	out.Text = b.String()
	return out
}

func runFig11(ctx *Context) *Outcome {
	ls := ctx.A.LabelDistributions()
	out := &Outcome{}

	goalByData := report.NewTSV(append([]string{"data"}, goalNames()...)...)
	for d := 0; d < model.NumDataTypes-1; d++ {
		mix := ls.GoalMixForData(model.DataType(d))
		row := []float64{float64(d)}
		for g := 0; g < model.NumGoals; g++ {
			row = append(row, mix[g])
		}
		goalByData.Add(row...)
	}
	out.addSeries("fig11a_goal_by_data", goalByData)

	goalByOp := report.NewTSV(append([]string{"operator"}, goalNames()...)...)
	for o := 0; o < model.NumOperators-1; o++ {
		mix := ls.GoalMixForOperator(model.Operator(o))
		row := []float64{float64(o)}
		for g := 0; g < model.NumGoals; g++ {
			row = append(row, mix[g])
		}
		goalByOp.Add(row...)
	}
	out.addSeries("fig11b_goal_by_op", goalByOp)

	dataByOp := report.NewTSV(append([]string{"operator"}, dataNames()...)...)
	for o := 0; o < model.NumOperators-1; o++ {
		mix := ls.DataMixForOperator(model.Operator(o))
		row := []float64{float64(o)}
		for d := 0; d < model.NumDataTypes; d++ {
			row = append(row, mix[d])
		}
		dataByOp.Add(row...)
	}
	out.addSeries("fig11c_data_by_op", dataByOp)

	// Filter and rate appear across all data types (Figure 11c takeaway).
	minFilter := 100.0
	for d := 0; d < model.NumDataTypes-1; d++ {
		mix := ls.OpMixForData(model.DataType(d))
		share := mix[model.OpFilter] + mix[model.OpRate]
		if share < minFilter {
			minFilter = share
		}
	}
	out.check("min filter+rate share across data types", math.NaN(), minFilter, "%",
		"paper: filter/rate analyze most types of data")
	out.Text = fmt.Sprintf("Filter+rate hold at least %.0f%% of operator volume for every data type.\n", minFilter)
	return out
}

func runFig12(ctx *Context) *Outcome {
	tr := ctx.A.Trend()
	out := &Outcome{}
	tsv := report.NewTSV("week", "goal_simple", "goal_complex", "op_simple", "op_complex", "data_simple", "data_complex")
	for i, w := range tr.Weeks {
		tsv.Add(float64(w), tr.GoalSimpleC[i], tr.GoalComplexC[i], tr.OpSimple[i], tr.OpComplex[i], tr.DataSimple[i], tr.DataComplex[i])
	}
	out.addSeries("fig12", tsv)

	last := len(tr.Weeks) - 1
	out.check("complex/simple goal clusters", 620.0/80, tr.GoalComplexC[last]/tr.GoalSimpleC[last], "ratio",
		"paper (Jan'16): 620 complex vs 80 simple")
	out.check("complex/simple data clusters", 510.0/240, tr.DataComplex[last]/tr.DataSimple[last], "ratio",
		"paper (Jan'16): 510 non-text vs 240 text")
	out.check("complex/simple operator clusters", 410.0/340, tr.OpComplex[last]/tr.OpSimple[last], "ratio",
		"paper (Jan'16): 410 vs 340 — comparable")

	out.Text = fmt.Sprintf("Cumulative clusters at horizon: goals %0.f complex vs %0.f simple; data %0.f vs %0.f; operators %0.f vs %0.f.\n",
		tr.GoalComplexC[last], tr.GoalSimpleC[last], tr.DataComplex[last], tr.DataSimple[last], tr.OpComplex[last], tr.OpSimple[last])
	return out
}

func goalNames() []string {
	out := make([]string, model.NumGoals)
	for g := 0; g < model.NumGoals; g++ {
		out[g] = model.Goal(g).String()
	}
	return out
}

func operatorNames() []string {
	out := make([]string, model.NumOperators)
	for o := 0; o < model.NumOperators; o++ {
		out[o] = model.Operator(o).String()
	}
	return out
}

func dataNames() []string {
	out := make([]string, model.NumDataTypes)
	for d := 0; d < model.NumDataTypes; d++ {
		out[d] = model.DataType(d).String()
	}
	return out
}
