package experiments

import (
	"fmt"
	"strings"

	"crowdscope/internal/htmlfeat"
)

func init() {
	register(Experiment{ID: "fig15to24", Paper: "Figures 15-24", Title: "Gallery of contrasting task interfaces", Run: runGallery})
}

// Figures 15-24 of the paper are screenshots of real task pairs
// contrasting one design dimension each: low vs high #words (15/16), with
// vs without text boxes (17/18), high vs low #items (19/20), with vs
// without examples (21/22), with vs without images (23/24). The gallery
// experiment reproduces them by locating the corresponding contrasting
// cluster pairs in the synthetic corpus and summarizing their interfaces
// and metric gaps.
func runGallery(ctx *Context) *Outcome {
	a := ctx.A
	out := &Outcome{}
	var b strings.Builder

	type contrast struct {
		figures string
		name    string
		metric  string
		// pick scores a cluster; the gallery shows the min and max.
		pick func(f htmlfeat.Features, items float64) float64
		get  func(i int) float64
	}
	contrasts := []contrast{
		{"15/16", "#words", "disagreement",
			func(f htmlfeat.Features, _ float64) float64 { return float64(f.Words) },
			func(i int) float64 { return a.Clusters[i].Metrics.Disagreement }},
		{"17/18", "#text-boxes", "task-time",
			func(f htmlfeat.Features, _ float64) float64 { return float64(f.TextBoxes) },
			func(i int) float64 { return a.Clusters[i].Metrics.TaskTime }},
		{"19/20", "#items", "disagreement",
			func(_ htmlfeat.Features, items float64) float64 { return items },
			func(i int) float64 { return a.Clusters[i].Metrics.Disagreement }},
		{"21/22", "#examples", "disagreement",
			func(f htmlfeat.Features, _ float64) float64 { return float64(f.Examples) },
			func(i int) float64 { return a.Clusters[i].Metrics.Disagreement }},
		{"23/24", "#images", "pickup-time",
			func(f htmlfeat.Features, _ float64) float64 { return float64(f.Images) },
			func(i int) float64 { return a.Clusters[i].Metrics.PickupTime }},
	}

	for _, c := range contrasts {
		loIdx, hiIdx := -1, -1
		var loVal, hiVal float64
		for i := range a.Clusters {
			cl := &a.Clusters[i]
			if !cl.Labeled || cl.Metrics.Batches < 2 {
				continue
			}
			v := c.pick(cl.Features, cl.ItemsFeature)
			if loIdx < 0 || v < loVal {
				loIdx, loVal = i, v
			}
			if hiIdx < 0 || v > hiVal {
				hiIdx, hiVal = i, v
			}
		}
		if loIdx < 0 || hiIdx < 0 || loIdx == hiIdx {
			continue
		}
		fmt.Fprintf(&b, "Figures %s — contrasting %s:\n", c.figures, c.name)
		for _, side := range []struct {
			label string
			idx   int
			val   float64
		}{{"low ", loIdx, loVal}, {"high", hiIdx, hiVal}} {
			cl := &a.Clusters[side.idx]
			fmt.Fprintf(&b, "  %s %s=%-8.4g cluster %d (%s on %s, %d batches): %s = %.4g\n",
				side.label, c.name, side.val, cl.Cluster,
				cl.Labels.Goals.String(), cl.Labels.Data.String(),
				len(cl.Batches), c.metric, c.get(side.idx))
		}
		page, ok := a.DS.BatchHTML(a.Clusters[hiIdx].Batches[0])
		if ok {
			fmt.Fprintf(&b, "  sample interface (%d bytes of HTML) excerpt: %s\n",
				len(page), excerpt(page))
		}
		b.WriteByte('\n')
		out.check(fmt.Sprintf("figs %s %s contrast found", c.figures, c.name), 1, 1, "bool",
			"the paper shows screenshot pairs; we locate the equivalent extreme clusters")
	}
	out.Text = b.String()
	return out
}

func excerpt(page string) string {
	text := htmlfeat.VisibleText(page)
	if len(text) > 90 {
		text = text[:90] + "…"
	}
	return text
}
