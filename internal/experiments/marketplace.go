package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"crowdscope/internal/model"
	"crowdscope/internal/query"
	"crowdscope/internal/report"
	"crowdscope/internal/stats"
	"crowdscope/internal/timeseries"
)

func init() {
	register(Experiment{ID: "fig1", Paper: "Figure 1", Title: "Distinct tasks sampled vs issued, by week", Run: runFig1})
	register(Experiment{ID: "fig2a", Paper: "Figure 2a", Title: "Task instance arrivals vs median pickup time", Run: runFig2a})
	register(Experiment{ID: "fig2b", Paper: "Figure 2b", Title: "Instance arrivals vs batches and distinct tasks (post-2015)", Run: runFig2b})
	register(Experiment{ID: "fig3", Paper: "Figure 3", Title: "Task distribution over days of the week", Run: runFig3})
	register(Experiment{ID: "fig4", Paper: "Figure 4", Title: "Active workers per week", Run: runFig4})
	register(Experiment{ID: "fig5a", Paper: "Figure 5a", Title: "Post-2015 arrivals vs median pickup time", Run: runFig5a})
	register(Experiment{ID: "fig5b", Paper: "Figure 5b", Title: "Engagement of top-10% vs bottom-90% workers", Run: runFig5b})
	register(Experiment{ID: "fig6", Paper: "Figure 6", Title: "Distribution of cluster sizes (batches per cluster)", Run: runFig6})
	register(Experiment{ID: "fig7", Paper: "Figure 7", Title: "Distribution of tasks across clusters", Run: runFig7})
	register(Experiment{ID: "fig8", Paper: "Figure 8", Title: "Heavy-hitter cumulative task arrivals", Run: runFig8})
}

// weeklyArrivals returns the weekly declared-instance arrival series over
// sampled batches (counting at batch creation, as the paper does).
func weeklyArrivals(ctx *Context) *timeseries.Series {
	w := timeseries.NewWeekly()
	for i := range ctx.A.DS.Batches {
		b := &ctx.A.DS.Batches[i]
		if b.Sampled {
			w.AddAt(b.CreatedAt.Unix(), float64(b.Instances()))
		}
	}
	return w
}

func runFig1(ctx *Context) *Outcome {
	ds := ctx.A.DS
	all := timeseries.NewWeeklyDistinct()
	sampled := timeseries.NewWeeklyDistinct()
	sampledTypes := map[uint32]bool{}
	for i := range ds.Batches {
		if ds.Batches[i].Sampled {
			sampledTypes[ds.Batches[i].TaskType] = true
		}
	}
	for i := range ds.Batches {
		b := &ds.Batches[i]
		all.Observe(b.CreatedAt.Unix(), b.TaskType)
		if sampledTypes[b.TaskType] {
			sampled.Observe(b.CreatedAt.Unix(), b.TaskType)
		}
	}
	sAll, sSampled := all.Series(), sampled.Series()

	out := &Outcome{}
	tsv := report.NewTSV("week", "all", "sampled")
	coveredWeeks, totalWeeks := 0, 0
	for w := 0; w < sAll.Len(); w++ {
		tsv.Add(float64(w), sAll.At(w), sSampled.At(w))
		if sAll.At(w) > 0 {
			totalWeeks++
			if sSampled.At(w) >= 0.5*sAll.At(w) {
				coveredWeeks++
			}
		}
	}
	out.addSeries("fig1", tsv)

	coverage := float64(coveredWeeks) / float64(totalWeeks)
	out.check("weeks with ≥50% of distinct tasks sampled", math.NaN(), coverage, "fraction",
		"paper: 'a significant fraction of tasks from each week'")

	var b strings.Builder
	fmt.Fprintf(&b, "Distinct tasks per week: sampled covers ≥50%% of issued tasks in %.0f%% of active weeks.\n", coverage*100)
	peakAll, _ := sAll.Max()
	peakS, _ := sSampled.Max()
	fmt.Fprintf(&b, "Peak week: %0.f issued vs %0.f sampled distinct tasks.\n", peakAll, peakS)
	out.Text = b.String()
	return out
}

func runFig2a(ctx *Context) *Outcome {
	arr := weeklyArrivals(ctx)
	// Weekly median pickup over batches created that week.
	pick := timeseries.NewWeeklyGrouped()
	for i := range ctx.A.DS.Batches {
		b := &ctx.A.DS.Batches[i]
		if !b.Sampled {
			continue
		}
		bm := ctx.A.BatchMetrics[b.ID]
		if bm.Valid() {
			pick.Observe(b.CreatedAt.Unix(), bm.PickupTime)
		}
	}
	pm := pick.Median()

	out := &Outcome{}
	tsv := report.NewTSV("week", "instances", "median_pickup_s")
	for w := 0; w < arr.Len(); w++ {
		tsv.Add(float64(w), arr.At(w), pm.At(w))
	}
	out.addSeries("fig2a", tsv)

	// Load stats (Section 3.1 takeaway).
	daily := dailyArrivals(ctx)
	post := daily.Slice(int(model.PostBoomWeek)*7, daily.Len())
	ls := timeseries.SummarizeLoad(post)
	out.check("median daily instances (post-2015)", 30000, ls.Median, "instances/day", "")
	out.check("busiest day vs median", 30, ls.PeakRatio, "x", "")
	out.check("lightest day vs median", 0.0004, ls.TroughRatio, "x", "")

	// High load ↔ faster pickup (negative correlation).
	var loads, picks []float64
	for w := int(model.PostBoomWeek); w < arr.Len(); w++ {
		if arr.At(w) > 0 && pm.At(w) > 0 {
			loads = append(loads, arr.At(w))
			picks = append(picks, pm.At(w))
		}
	}
	rho := stats.SpearmanCorr(loads, picks)
	out.check("load vs pickup-time rank correlation", math.NaN(), rho, "rho",
		"paper: marketplace moves faster during high load (negative)")

	var b strings.Builder
	fmt.Fprintf(&b, "Post-2015 daily load: median %.0f, peak %.1fx, trough %.4fx of median.\n", ls.Median, ls.PeakRatio, ls.TroughRatio)
	fmt.Fprintf(&b, "Weekly load vs median pickup-time Spearman rho = %.2f (paper observes faster pickup at high load).\n", rho)
	out.Text = b.String()
	return out
}

func dailyArrivals(ctx *Context) *timeseries.Series {
	d := timeseries.NewDaily()
	for i := range ctx.A.DS.Batches {
		b := &ctx.A.DS.Batches[i]
		if b.Sampled {
			d.AddAt(b.CreatedAt.Unix(), float64(b.Instances()))
		}
	}
	return d
}

func runFig2b(ctx *Context) *Outcome {
	ds := ctx.A.DS
	inst := weeklyArrivals(ctx)
	batches := timeseries.NewWeekly()
	distinct := timeseries.NewWeeklyDistinct()
	for i := range ds.Batches {
		b := &ds.Batches[i]
		if !b.Sampled {
			continue
		}
		batches.IncrAt(b.CreatedAt.Unix())
		distinct.Observe(b.CreatedAt.Unix(), b.TaskType)
	}
	dis := distinct.Series()

	out := &Outcome{}
	tsv := report.NewTSV("week", "instances", "batches", "distinct_tasks")
	for w := int(model.PostBoomWeek); w < inst.Len(); w++ {
		tsv.Add(float64(w), inst.At(w), batches.At(w), dis.At(w))
	}
	out.addSeries("fig2b", tsv)

	// Both overlays should track the instance fluctuation.
	var iv, bv, dv []float64
	for w := int(model.PostBoomWeek); w < inst.Len(); w++ {
		iv = append(iv, inst.At(w))
		bv = append(bv, batches.At(w))
		dv = append(dv, dis.At(w))
	}
	rhoB := stats.SpearmanCorr(iv, bv)
	rhoD := stats.SpearmanCorr(iv, dv)
	out.check("instances vs batches rank correlation", math.NaN(), rhoB, "rho", "paper: similar fluctuation")
	out.check("instances vs distinct tasks rank correlation", math.NaN(), rhoD, "rho", "paper: similar fluctuation")

	out.Text = fmt.Sprintf("Post-2015 weekly fluctuation: instances vs batches rho=%.2f, vs distinct tasks rho=%.2f — both co-move with load.\n", rhoB, rhoD)
	return out
}

func runFig3(ctx *Context) *Outcome {
	daily := dailyArrivals(ctx)
	fold := timeseries.WeekdayFold(daily)

	out := &Outcome{}
	chart := report.NewChart("Task instances by day of week")
	tsv := report.NewTSV("weekday", "instances")
	for i, name := range timeseries.WeekdayNames {
		chart.Add(name, fold[i])
		tsv.Add(float64(i), fold[i])
	}
	out.addSeries("fig3", tsv)

	weekday := (fold[0] + fold[1] + fold[2] + fold[3] + fold[4]) / 5
	weekend := (fold[5] + fold[6]) / 2
	out.check("weekday/weekend load ratio", 2.0, weekday/weekend, "x", "paper: weekday up to 2x weekend")
	monShare := fold[0] / (fold[0] + fold[1] + fold[2] + fold[3] + fold[4] + fold[5] + fold[6])
	out.check("Monday share of weekly volume", math.NaN(), monShare, "fraction", "paper: start of week highest, decaying")

	out.Text = chart.String()
	return out
}

func runFig4(ctx *Context) *Outcome {
	// Weekly distinct workers via the query engine (group by week, count
	// distinct worker) instead of a hand-rolled full scan.
	s, err := timeseries.ActiveWorkerSeries(ctx.A.DS.Store, ctx.ScanWorkers)
	if err != nil {
		panic(err) // the query is static; an error is a programming bug
	}
	arr := weeklyArrivals(ctx)

	out := &Outcome{}
	tsv := report.NewTSV("week", "active_workers")
	for w := 0; w < s.Len(); w++ {
		tsv.Add(float64(w), s.At(w))
	}
	out.addSeries("fig4", tsv)

	// Coefficient of variation comparison: workers steady, tasks bursty.
	post := int(model.PostBoomWeek)
	wvals := s.Slice(post, s.Len()).NonZero()
	avals := arr.Slice(post, arr.Len()).NonZero()
	cvW := stats.StdDev(wvals) / stats.Mean(wvals)
	cvA := stats.StdDev(avals) / stats.Mean(avals)
	out.check("worker-count CV vs task-load CV (post-2015)", math.NaN(), cvW/cvA, "ratio",
		"paper: worker availability far steadier than task load (ratio ≪ 1)")

	out.Text = fmt.Sprintf("Weekly active workers CV=%.2f vs task-load CV=%.2f: the same workforce absorbs a far burstier task supply.\n", cvW, cvA)
	return out
}

func runFig5a(ctx *Context) *Outcome {
	// Same content as fig2a, restricted to the post-2015 window.
	base := runFig2a(ctx)
	out := &Outcome{Checks: base.Checks}
	post := report.NewTSV("week", "instances", "median_pickup_s")
	arr := weeklyArrivals(ctx)
	pick := timeseries.NewWeeklyGrouped()
	for i := range ctx.A.DS.Batches {
		b := &ctx.A.DS.Batches[i]
		if !b.Sampled {
			continue
		}
		bm := ctx.A.BatchMetrics[b.ID]
		if bm.Valid() {
			pick.Observe(b.CreatedAt.Unix(), bm.PickupTime)
		}
	}
	pm := pick.Median()
	for w := int(model.PostBoomWeek); w < arr.Len(); w++ {
		post.Add(float64(w), arr.At(w), pm.At(w))
	}
	out.addSeries("fig5a", post)
	out.Text = "Post-2015 zoom of arrivals vs pickup time; see fig2a checks for the correlation.\n"
	return out
}

func runFig5b(ctx *Context) *Outcome {
	workers := ctx.Workers()
	// Identify top-10% by total tasks. Only that small set is queried
	// with a worker filter; the bottom-90% series are the exact
	// complement of the unfiltered totals (counts and duration sums are
	// integer-valued, so the subtraction loses nothing), saving a second
	// full scan with an almost-always-true membership test.
	topCut := len(workers) / 10
	topIDs := make([]uint32, 0, topCut)
	for i := 0; i < topCut; i++ {
		topIDs = append(topIDs, workers[i].ID)
	}
	st := ctx.A.DS.Store
	totTasks, totTime, err := timeseries.WorkerEngagementSeries(st, ctx.ScanWorkers)
	if err != nil {
		panic(err) // the query is static; an error is a programming bug
	}
	// The top cohort can be empty at tiny scales (fewer than 10 observed
	// workers); its series are then all-zero.
	topTasks, topTime := timeseries.NewWeekly(), timeseries.NewWeekly()
	if len(topIDs) > 0 {
		if topTasks, topTime, err = timeseries.WorkerEngagementSeries(st, ctx.ScanWorkers, query.In(query.ColWorker, topIDs...)); err != nil {
			panic(err)
		}
	}
	botTasks := totTasks.Minus(topTasks)
	botTime := totTime.Minus(topTime)

	out := &Outcome{}
	tsv := report.NewTSV("week", "top10_tasks", "bot90_tasks", "top10_secs", "bot90_secs")
	for w := 0; w < topTasks.Len(); w++ {
		tsv.Add(float64(w), topTasks.At(w), botTasks.At(w), topTime.At(w), botTime.At(w))
	}
	out.addSeries("fig5b", tsv)

	share := topTasks.Total() / (topTasks.Total() + botTasks.Total())
	out.check("top-10% worker share of tasks", 0.80, share, "fraction", "paper: >80%, absorbing the flux")
	// Flux absorption: correlation of top-10% weekly tasks with load.
	arr := weeklyArrivals(ctx)
	var loads, tops []float64
	for w := int(model.PostBoomWeek); w < arr.Len(); w++ {
		loads = append(loads, arr.At(w))
		tops = append(tops, topTasks.At(w))
	}
	rho := stats.SpearmanCorr(loads, tops)
	out.check("top-10% weekly tasks vs load correlation", math.NaN(), rho, "rho", "paper: top-10% handles most of the flux")

	out.Text = fmt.Sprintf("Top-10%% of workers complete %.0f%% of tasks and track load bursts (rho=%.2f vs arrivals).\n", share*100, rho)
	return out
}

func runFig6(ctx *Context) *Outcome {
	sizes, counts := ctx.A.Clustering.SizeHistogram()
	out := &Outcome{}
	tsv := report.NewTSV("cluster_size_batches", "num_clusters")
	over100 := 0
	small := 0
	for i, s := range sizes {
		tsv.Add(float64(s), float64(counts[i]))
		if s >= 100 {
			over100 += counts[i]
		}
		if s < 10 {
			small += counts[i]
		}
	}
	out.addSeries("fig6", tsv)
	out.check("clusters spanning ≥100 batches", 5, float64(over100), "clusters", "paper Figure 6 shows ~5; text says >10")
	out.check("one-off clusters (<10 batches)", math.NaN(), float64(small), "clusters", "paper: a large number of one-off tasks")

	chart := report.NewChart("Cluster-size distribution (log bars)")
	chart.Log = true
	hist := stats.NewLogHistogram(10)
	for i, s := range sizes {
		for c := 0; c < counts[i]; c++ {
			hist.Add(float64(s))
		}
	}
	for _, b := range hist.Buckets() {
		chart.Add(fmt.Sprintf("size ≥ %.0f", hist.Lower(b)), float64(hist.Counts[b]))
	}
	out.Text = chart.String()
	return out
}

func runFig7(ctx *Context) *Outcome {
	a := ctx.A
	// Cluster volumes use *declared* instances of the sampled batches,
	// which are scale-invariant (only materialization is scaled down).
	var sizes []float64
	for i := range a.Clusters {
		declared := 0.0
		for _, bid := range a.Clusters[i].Batches {
			declared += float64(a.DS.Batches[bid].Instances())
		}
		sizes = append(sizes, declared)
	}
	out := &Outcome{}
	hist := stats.NewLogHistogram(10)
	tsv := report.NewTSV("cluster_instances_lower_bound", "count")
	overMega := 0
	under10 := 0
	for _, s := range sizes {
		hist.Add(s)
		if s > 1e6 {
			overMega++
		}
		if s < 10 {
			under10++
		}
	}
	for _, b := range hist.Buckets() {
		tsv.Add(hist.Lower(b), float64(hist.Counts[b]))
	}
	out.addSeries("fig7", tsv)

	med := stats.Median(sizes)
	out.check("clusters with >1M task instances", 3, float64(overMega), "clusters", "")
	out.check("median tasks per cluster", 400, med, "instances", "")
	out.check("clusters with <10 task instances", 204, float64(under10), "clusters", "")

	out.Text = fmt.Sprintf("Tasks per cluster: median %.0f, %d clusters above 1M, %d clusters under 10.\n", med, overMega, under10)
	return out
}

func runFig8(ctx *Context) *Outcome {
	a := ctx.A
	// Heavy hitters: the clusters with the most batches.
	type hh struct {
		cluster int
		batches int
	}
	var hs []hh
	for i := range a.Clusters {
		hs = append(hs, hh{i, len(a.Clusters[i].Batches)})
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i].batches > hs[j].batches })
	top := hs
	if len(top) > 10 {
		top = top[:10]
	}

	out := &Outcome{}
	headers := []string{"week"}
	for i := range top {
		headers = append(headers, fmt.Sprintf("hh%d", i+1))
	}
	tsv := report.NewTSV(headers...)

	cum := make([]*timeseries.Series, len(top))
	for i, h := range top {
		s := timeseries.NewWeekly()
		for _, bid := range a.Clusters[h.cluster].Batches {
			b := &a.DS.Batches[bid]
			s.AddAt(b.CreatedAt.Unix(), float64(b.Instances()))
		}
		cum[i] = s.Cumulative()
	}
	for w := 0; w < cum[0].Len(); w++ {
		row := []float64{float64(w)}
		for i := range cum {
			row = append(row, cum[i].At(w))
		}
		tsv.Add(row...)
	}
	out.addSeries("fig8", tsv)

	// Shutdown behavior: activity windows are bounded; once a heavy
	// hitter stops, it never restarts.
	var windows []float64
	for _, h := range top {
		first, last := int32(1<<30), int32(-1)
		for _, bid := range a.Clusters[h.cluster].Batches {
			w := model.WeekIndex(a.DS.Batches[bid].CreatedAt)
			if w < first {
				first = w
			}
			if w > last {
				last = w
			}
		}
		windows = append(windows, float64(last-first+1))
	}
	out.check("heavy hitters tracked", 10, float64(len(top)), "clusters", "")
	out.check("median heavy-hitter active window", math.NaN(), stats.Median(windows), "weeks",
		"paper: 1-11 months of steady activity then shutdown")

	out.Text = fmt.Sprintf("Top-10 heavy hitters: %d-%d batches each, median active window %.0f weeks.\n",
		top[len(top)-1].batches, top[0].batches, stats.Median(windows))
	return out
}
