package experiments

import (
	"fmt"
	"math"
	"strings"

	"crowdscope/internal/model"
	"crowdscope/internal/report"
	"crowdscope/internal/stats"
	"crowdscope/internal/timeseries"
)

func init() {
	register(Experiment{ID: "fig26", Paper: "Figure 26", Title: "Tasks per worker by source; active sources vs load", Run: runFig26})
	register(Experiment{ID: "fig27", Paper: "Figure 27", Title: "Source contributions, trust and relative task times", Run: runFig27})
	register(Experiment{ID: "fig28", Paper: "Figure 28", Title: "Geographical distribution of the workforce", Run: runFig28})
	register(Experiment{ID: "fig29", Paper: "Figure 29", Title: "Workload and time-spent distributions", Run: runFig29})
	register(Experiment{ID: "fig30", Paper: "Figure 30", Title: "Worker lifetimes and working days", Run: runFig30})
	register(Experiment{ID: "tab4", Paper: "Table 4", Title: "The labor sources", Run: runTable4})
}

func runFig26(ctx *Context) *Outcome {
	a := ctx.A
	workers := ctx.Workers()
	sources := a.SourceTable(workers)
	out := &Outcome{}

	// (a) average tasks per worker by source.
	tsv := report.NewTSV("source_rank", "avg_tasks_per_worker")
	lowEngagement := 0
	for i, s := range sources {
		tsv.Add(float64(i), s.AvgTasksPerWorker)
		if s.AvgTasksPerWorker <= 20/a.DS.Cfg.Scale*0.02 { // ≤20 at full scale ≈ scale-adjusted
			lowEngagement++
		}
	}
	out.addSeries("fig26a", tsv)
	out.check("sources with ≤20 tasks/worker (scale-adj)", 0.40, float64(lowEngagement)/float64(len(sources)), "fraction",
		"paper: 40% of sources have workers doing ≤20 tasks each")

	// (b) active sources per week vs task load.
	st := a.DS.Store
	srcOf := make([]uint16, len(a.DS.Workers))
	for i := range a.DS.Workers {
		srcOf[i] = a.DS.Workers[i].Source
	}
	distinct := timeseries.NewWeeklyDistinct()
	starts := st.Starts()
	wcol := st.Workers()
	for i := range starts {
		distinct.Observe(starts[i], uint32(srcOf[wcol[i]]))
	}
	act := distinct.Series()
	arr := weeklyArrivals(ctx)
	tsv2 := report.NewTSV("week", "active_sources", "instances")
	for w := 0; w < act.Len(); w++ {
		tsv2.Add(float64(w), act.At(w), arr.At(w))
	}
	out.addSeries("fig26b", tsv2)

	post := int(model.PostBoomWeek)
	sv := act.Slice(post, act.Len()).NonZero()
	av := arr.Slice(post, arr.Len()).NonZero()
	cvS := stats.StdDev(sv) / stats.Mean(sv)
	cvA := stats.StdDev(av) / stats.Mean(av)
	out.check("active-source CV vs load CV", math.NaN(), cvS/cvA, "ratio",
		"paper: a fixed roster of sources absorbs a varying load (≪1)")

	out.Text = fmt.Sprintf("%d sources observed; %.0f%% engage workers at ≤20 tasks each; weekly active sources CV %.2f vs load CV %.2f.\n",
		len(sources), 100*float64(lowEngagement)/float64(len(sources)), cvS, cvA)
	return out
}

func runFig27(ctx *Context) *Outcome {
	a := ctx.A
	workers := ctx.Workers()
	sources := a.SourceTable(workers)
	out := &Outcome{}

	totTasks, totWorkers := 0, 0
	for _, s := range sources {
		totTasks += s.Tasks
		totWorkers += s.Workers
	}
	top := sources
	if len(top) > 10 {
		top = top[:10]
	}
	tbl := report.NewTable("Top sources", "Source", "Workers", "Tasks", "MeanTrust", "RelTaskTime")
	topTasks, topWorkers := 0, 0
	var amtTrust, amtRel float64
	for _, s := range top {
		tbl.AddRow(s.Name, s.Workers, s.Tasks, s.MeanTrust, s.MeanRelTime)
		topTasks += s.Tasks
		topWorkers += s.Workers
	}
	for _, s := range sources {
		if s.Name == "amt" {
			amtTrust, amtRel = s.MeanTrust, s.MeanRelTime
		}
	}
	out.check("top-10 source task share", 0.95, float64(topTasks)/float64(totTasks), "fraction", "")
	out.check("top-10 source worker share", 0.86, float64(topWorkers)/float64(totWorkers), "fraction", "")
	if amtTrust > 0 {
		out.check("amt mean trust", 0.75, amtTrust, "trust", "paper: MTurk performs poorly on both metrics")
		out.check("amt mean relative task time", 5, amtRel, "x", "paper: >5")
	}

	// Full spread (27c/f).
	lowTrust, slow := 0, 0
	tsv := report.NewTSV("source_rank", "mean_trust", "mean_rel_task_time")
	for i, s := range sources {
		tsv.Add(float64(i), s.MeanTrust, s.MeanRelTime)
		if s.MeanTrust < 0.8 {
			lowTrust++
		}
		if s.MeanRelTime >= 3 {
			slow++
		}
	}
	out.addSeries("fig27", tsv)
	out.check("sources with mean trust <0.8", 0.10, float64(lowTrust)/float64(len(sources)), "fraction", "")
	out.check("sources with relative task time ≥3", 0.05, float64(slow)/float64(len(sources)), "fraction", "")

	out.Text = tbl.String()
	return out
}

func runFig28(ctx *Context) *Outcome {
	a := ctx.A
	workers := ctx.Workers()
	countries := a.CountryTable(workers)
	out := &Outcome{}
	total := 0
	for _, c := range countries {
		total += c.Workers
	}
	chart := report.NewChart("Workers by country (top 15)")
	tsv := report.NewTSV("rank", "workers")
	for i, c := range countries {
		tsv.Add(float64(i), float64(c.Workers))
		if i < 15 {
			chart.Add(c.Name, float64(c.Workers))
		}
	}
	out.addSeries("fig28", tsv)

	top5 := 0
	for i := 0; i < 5 && i < len(countries); i++ {
		top5 += countries[i].Workers
	}
	out.check("top-5 country worker share", 0.50, float64(top5)/float64(total), "fraction",
		"paper: USA, Venezuela, GB, India, Canada ≈ 50%")
	out.check("countries represented", 148, float64(len(countries)), "countries",
		"scaled populations cover fewer tail countries")
	if countries[0].Name == "United States" {
		out.check("USA worker share", 21300.0/69000, float64(countries[0].Workers)/float64(total), "fraction", "")
	}
	out.Text = chart.String()
	return out
}

func runFig29(ctx *Context) *Outcome {
	workers := ctx.Workers()
	out := &Outcome{}

	// (a) rank plot of tasks per worker.
	tsv := report.NewTSV("rank", "tasks")
	loads := make([]float64, len(workers))
	for i, w := range workers {
		tsv.Add(float64(i+1), float64(w.Tasks))
		loads[i] = float64(w.Tasks)
	}
	out.addSeries("fig29a", tsv)
	out.check("top-10% worker task share", 0.80, stats.TopShare(loads, 0.10), "fraction", "paper: >80%")

	// (b) total hours in lifetime; (c) hours per working day — restricted
	// to active workers (>10 working days) as in Section 5.4.
	var hours, daily []float64
	over300h, over1hDay := 0, 0
	for _, w := range workers {
		if !w.Active() {
			continue
		}
		hours = append(hours, w.HoursTotal())
		daily = append(daily, w.HoursPerWorkingDay())
		if w.HoursTotal() > 300 {
			over300h++
		}
		if w.HoursPerWorkingDay() > 1 {
			over1hDay++
		}
	}
	histB := report.NewTSV("hours_total", "count")
	hb := stats.NewHistogram(0, 600, 24)
	hb.AddAll(hours)
	for i, c := range hb.Counts {
		histB.Add(hb.BinCenter(i), float64(c))
	}
	out.addSeries("fig29b", histB)
	histC := report.NewTSV("hours_per_working_day", "count")
	hc := stats.NewHistogram(0, 6, 24)
	hc.AddAll(daily)
	for i, c := range hc.Counts {
		histC.Add(hc.BinCenter(i), float64(c))
	}
	out.addSeries("fig29c", histC)

	if len(daily) > 0 {
		under1 := 0
		for _, d := range daily {
			if d < 1 {
				under1++
			}
		}
		out.check("active workers under 1h/working day", 0.90, float64(under1)/float64(len(daily)), "fraction", "")
	}
	out.check("active workers above 300 lifetime hours", math.NaN(), float64(over300h), "workers",
		"paper: a handful at full scale")

	out.Text = fmt.Sprintf("Workload: top-10%% share %.2f; %d active workers, %d above 1h/day, %d above 300 lifetime hours.\n",
		stats.TopShare(loads, 0.10), len(hours), over1hDay, over300h)
	return out
}

func runFig30(ctx *Context) *Outcome {
	workers := ctx.Workers()
	out := &Outcome{}

	// (a) lifetime histogram over all workers.
	var lifetimes []float64
	oneDay, lt100 := 0, 0
	var oneDayTasks, allTasks int
	for _, w := range workers {
		lifetimes = append(lifetimes, float64(w.Lifetime))
		allTasks += w.Tasks
		if w.Lifetime == 1 {
			oneDay++
			oneDayTasks += w.Tasks
		}
		if w.Lifetime < 100 {
			lt100++
		}
	}
	histA := report.NewTSV("lifetime_days", "count")
	ha := stats.NewHistogram(0, 1500, 30)
	ha.AddAll(lifetimes)
	for i, c := range ha.Counts {
		histA.Add(ha.BinCenter(i), float64(c))
	}
	out.addSeries("fig30a", histA)

	n := float64(len(workers))
	out.check("one-day-lifetime worker share", 0.527, float64(oneDay)/n, "fraction", "")
	out.check("lifetime <100 days share", 0.79, float64(lt100)/n, "fraction", "")
	out.check("one-day workers' task share", 0.024, float64(oneDayTasks)/float64(allTasks), "fraction", "")

	// (b) working days among active workers; (c) fraction of lifetime
	// active.
	var workdays, fractions []float64
	var activeTasks int
	weekly := 0
	for _, w := range workers {
		if !w.Active() {
			continue
		}
		activeTasks += w.Tasks
		workdays = append(workdays, float64(w.WorkingDays))
		frac := float64(w.WorkingDays) / float64(w.Lifetime)
		fractions = append(fractions, frac)
		if frac >= 1.0/7 {
			weekly++
		}
	}
	histB := report.NewTSV("working_days", "count")
	hb := stats.NewHistogram(0, 400, 40)
	hb.AddAll(workdays)
	for i, c := range hb.Counts {
		histB.Add(hb.BinCenter(i), float64(c))
	}
	out.addSeries("fig30b", histB)
	histC := report.NewTSV("active_fraction", "count")
	hc := stats.NewHistogram(0, 1.1, 22)
	hc.AddAll(fractions)
	for i, c := range hc.Counts {
		histC.Add(hc.BinCenter(i), float64(c))
	}
	out.addSeries("fig30c", histC)

	out.check("active workers' task share", 0.83, float64(activeTasks)/float64(allTasks), "fraction",
		"paper: the >10-working-day core completes 83% of tasks")
	if len(fractions) > 0 {
		out.check("active workers working ≥1 day/week of lifetime", 0.43, float64(weekly)/float64(len(fractions)), "fraction", "")
	}

	out.Text = fmt.Sprintf("Lifetimes: %.1f%% one-day, %.1f%% under 100 days; active core (%d workers) performs %.0f%% of tasks.\n",
		100*float64(oneDay)/n, 100*float64(lt100)/n, len(workdays), 100*float64(activeTasks)/float64(allTasks))
	return out
}

func runTable4(ctx *Context) *Outcome {
	a := ctx.A
	out := &Outcome{}
	var b strings.Builder
	fmt.Fprintf(&b, "The marketplace aggregates %d labor sources:\n", len(a.DS.Sources))
	for i, s := range a.DS.Sources {
		if i%8 == 0 {
			b.WriteString("\n  ")
		}
		fmt.Fprintf(&b, "%-18s", s.Name)
	}
	b.WriteString("\n")
	out.check("labor sources", 139, float64(len(a.DS.Sources)), "sources", "")
	out.Text = b.String()
	return out
}
