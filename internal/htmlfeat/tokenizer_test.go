package htmlfeat

import (
	"strings"
	"testing"
)

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize(`<p class="x">hello <b>world</b></p>`)
	want := []struct {
		typ  TokenType
		name string
		text string
	}{
		{StartTag, "p", ""},
		{Text, "", "hello "},
		{StartTag, "b", ""},
		{Text, "", "world"},
		{EndTag, "b", ""},
		{EndTag, "p", ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	for i, w := range want {
		if toks[i].Type != w.typ || toks[i].Name != w.name || (w.text != "" && toks[i].Text != w.text) {
			t.Errorf("token %d = %+v, want %+v", i, toks[i], w)
		}
	}
}

func TestTokenizeAttributes(t *testing.T) {
	toks := Tokenize(`<input type="text" name='q1' checked value=plain>`)
	if len(toks) != 1 {
		t.Fatalf("got %d tokens", len(toks))
	}
	tok := toks[0]
	if v, ok := tok.Attr("type"); !ok || v != "text" {
		t.Errorf("type attr = %q, %v", v, ok)
	}
	if v, ok := tok.Attr("name"); !ok || v != "q1" {
		t.Errorf("name attr = %q, %v", v, ok)
	}
	if _, ok := tok.Attr("checked"); !ok {
		t.Error("boolean attr missing")
	}
	if v, _ := tok.Attr("value"); v != "plain" {
		t.Errorf("unquoted attr = %q", v)
	}
	if _, ok := tok.Attr("absent"); ok {
		t.Error("absent attr reported present")
	}
}

func TestTokenizeSelfClosing(t *testing.T) {
	toks := Tokenize(`<img src="a.jpg"/><br />`)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens", len(toks))
	}
	for _, tok := range toks {
		if tok.Type != SelfClosingTag {
			t.Errorf("token %v not self-closing", tok)
		}
	}
}

func TestTokenizeCommentAndDoctype(t *testing.T) {
	toks := Tokenize("<!DOCTYPE html><!-- note -->text")
	if len(toks) != 2 {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	if toks[0].Type != Comment || strings.TrimSpace(toks[0].Text) != "note" {
		t.Errorf("comment = %+v", toks[0])
	}
	if toks[1].Type != Text || toks[1].Text != "text" {
		t.Errorf("text = %+v", toks[1])
	}
}

func TestTokenizeScriptSwallowed(t *testing.T) {
	toks := Tokenize(`<script>var x = "<b>not a tag</b>";</script><p>after</p>`)
	for _, tok := range toks {
		if tok.Type == Text && strings.Contains(tok.Text, "not a tag") {
			t.Error("script body leaked as text")
		}
	}
	// The paragraph after the script must still parse.
	found := false
	for _, tok := range toks {
		if tok.Type == Text && tok.Text == "after" {
			found = true
		}
	}
	if !found {
		t.Error("content after script lost")
	}
}

func TestTokenizeMalformed(t *testing.T) {
	// Unterminated tag, stray '<': must not panic, must keep text.
	toks := Tokenize("a < b <i>c")
	text := ""
	for _, tok := range toks {
		if tok.Type == Text {
			text += tok.Text
		}
	}
	if !strings.Contains(text, "a") || !strings.Contains(text, "b") || !strings.Contains(text, "c") {
		t.Errorf("malformed input lost text: %q", text)
	}
	// Tag cut off at end of input.
	_ = Tokenize("<div class=")
	_ = Tokenize("<")
	_ = Tokenize("</")
	_ = Tokenize("<!-- unterminated")
}

func TestDecodeEntities(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a &amp; b", "a & b"},
		{"&lt;tag&gt;", "<tag>"},
		{"&quot;q&quot;", `"q"`},
		{"&#65;&#x42;", "AB"},
		{"no entities", "no entities"},
		{"&unknown; stays", "&unknown; stays"},
		{"dangling &", "dangling &"},
		{"&nbsp;", " "},
	}
	for _, c := range cases {
		if got := DecodeEntities(c.in); got != c.want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTokenizeCaseInsensitiveTagNames(t *testing.T) {
	toks := Tokenize(`<DIV CLASS="Big">x</DIV>`)
	if toks[0].Name != "div" {
		t.Errorf("tag name = %q", toks[0].Name)
	}
	if v, _ := toks[0].Attr("class"); v != "Big" {
		t.Errorf("attr value should preserve case: %q", v)
	}
	if toks[2].Name != "div" || toks[2].Type != EndTag {
		t.Errorf("end tag = %+v", toks[2])
	}
}

func TestTokenizeEmptyInput(t *testing.T) {
	if toks := Tokenize(""); len(toks) != 0 {
		t.Errorf("empty input gave %d tokens", len(toks))
	}
}
