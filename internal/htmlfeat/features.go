package htmlfeat

import (
	"strings"
	"unicode"
)

// Features are the design parameters Section 4 extracts from a batch's
// sample HTML.
type Features struct {
	// Words is the number of whitespace-separated words of visible text
	// (#words in Sections 4.3).
	Words int
	// TextBoxes counts free-text inputs: <textarea> and <input type=text>
	// (#text-box, Section 4.4).
	TextBoxes int
	// Images counts <img> tags (#images, Section 4.7).
	Images int
	// Examples counts occurrences of the word "example" wrapped in a tag
	// of its own, the paper's proxy for prominently displayed examples
	// (#examples, Section 4.6).
	Examples int
	// Fields counts all input mechanisms (input/select/textarea/button);
	// the paper found no significant correlation for this feature.
	Fields int
	// Radios and Checkboxes break out multiple-choice inputs.
	Radios     int
	Checkboxes int
	// HasInstructions reports whether an element carries an
	// instruction-ish class or id.
	HasInstructions bool
}

// Extract tokenizes src and computes its design features in one pass.
func Extract(src string) Features {
	return FromTokens(Tokenize(src))
}

// FromTokens computes features from an already tokenized document.
func FromTokens(toks []Token) Features {
	var f Features
	// Track whether the current text node is the entire content of the
	// innermost element, for the #examples rule ("wrapped in a tag of its
	// own"): <b>Example</b> counts, prose mentioning examples does not.
	var prevStart bool
	var prevStartName string
	for i, t := range toks {
		switch t.Type {
		case StartTag, SelfClosingTag:
			switch t.Name {
			case "img":
				f.Images++
			case "textarea":
				f.TextBoxes++
				f.Fields++
			case "select", "button":
				f.Fields++
			case "input":
				f.Fields++
				typ, ok := t.Attr("type")
				typ = strings.ToLower(typ)
				switch {
				case !ok, typ == "text", typ == "search", typ == "email", typ == "url":
					f.TextBoxes++
				case typ == "radio":
					f.Radios++
				case typ == "checkbox":
					f.Checkboxes++
				}
			}
			if !f.HasInstructions {
				if cls, ok := t.Attr("class"); ok && containsFold(cls, "instruction") {
					f.HasInstructions = true
				} else if id, ok := t.Attr("id"); ok && containsFold(id, "instruction") {
					f.HasInstructions = true
				}
			}
			prevStart = t.Type == StartTag
			prevStartName = t.Name
		case Text:
			f.Words += countWords(t.Text)
			if prevStart && isOwnTagExample(toks, i, prevStartName) {
				f.Examples++
			}
			prevStart = false
		case EndTag, Comment:
			prevStart = false
		}
	}
	return f
}

// isOwnTagExample reports whether toks[i] is a text node that (a) sits
// alone inside its enclosing element, and (b) is essentially the word
// "example" (allowing trailing punctuation or a number, e.g. "Example 2:").
func isOwnTagExample(toks []Token, i int, openName string) bool {
	if i+1 >= len(toks) {
		return false
	}
	next := toks[i+1]
	if next.Type != EndTag || next.Name != openName {
		return false
	}
	return isExampleText(toks[i].Text)
}

func isExampleText(s string) bool {
	fields := strings.Fields(strings.ToLower(s))
	if len(fields) == 0 || len(fields) > 2 {
		return false
	}
	head := strings.TrimFunc(fields[0], func(r rune) bool { return unicode.IsPunct(r) })
	if head != "example" && head != "examples" {
		return false
	}
	if len(fields) == 2 {
		// Allow "Example 2" / "Example #1:".
		rest := strings.TrimFunc(fields[1], func(r rune) bool { return unicode.IsPunct(r) })
		for _, r := range rest {
			if !unicode.IsDigit(r) {
				return false
			}
		}
	}
	return true
}

func countWords(s string) int {
	n := 0
	inWord := false
	for _, r := range s {
		if unicode.IsSpace(r) {
			inWord = false
		} else if !inWord {
			inWord = true
			n++
		}
	}
	return n
}

func containsFold(hay, needle string) bool {
	return strings.Contains(strings.ToLower(hay), needle)
}

// VisibleText concatenates the text nodes of src with single-space
// separators; clustering shingles are built from it.
func VisibleText(src string) string {
	var b strings.Builder
	for _, t := range Tokenize(src) {
		if t.Type == Text {
			trimmed := strings.TrimSpace(t.Text)
			if trimmed == "" {
				continue
			}
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(trimmed)
		}
	}
	return b.String()
}

// TagSequence returns the lower-case names of start tags in document order;
// together with the visible text it forms the clustering signature.
func TagSequence(src string) []string {
	var out []string
	for _, t := range Tokenize(src) {
		if t.Type == StartTag || t.Type == SelfClosingTag {
			out = append(out, t.Name)
		}
	}
	return out
}

// Shingle construction and Jaccard similarity live in shingle.go.
