package htmlfeat

import (
	"slices"
	"unicode"
	"unicode/utf8"
)

// Shingle sets are represented as deduped []uint64 hash slices rather than
// map[uint64]struct{}: the clustering hot path iterates them linearly
// (MinHash signatures, merge-based Jaccard), and a slice keeps that scan
// cache-friendly and allocation-lean. The hash of each shingle is the
// FNV-1a of the k-gram joined with single spaces, fed byte-by-byte from
// the token stream so the joined string never materializes; values are
// bit-identical to hashing strings.Join(stream[i:i+k], " ").

// ShingleScratch holds the reusable buffers of the shingle kernel: the
// flattened tag/word stream and an open-addressing dedup table. A zero
// value is ready to use; reusing one across pages amortizes allocations
// to zero.
type ShingleScratch struct {
	buf  []byte  // concatenated stream items (lower-cased words, <tag> markers)
	offs []int32 // item i occupies buf[offs[i]:offs[i+1]]; len = items+1
	tbl  []uint64
	// hasZero tracks whether hash value 0 was inserted; the dedup table
	// uses 0 as its empty sentinel.
	hasZero bool
}

// AppendShingles appends the deduped (unsorted) k-shingle hashes of the
// tokenized document to dst and returns it. The stream and set contents
// are identical to the historical map-based Shingles; only the container
// changed. Word items are the lower-cased whitespace-separated fields of
// text tokens, tag items are "<name>" markers for start and self-closing
// tags.
func (sc *ShingleScratch) AppendShingles(dst []uint64, toks []Token, k int) []uint64 {
	if k <= 0 {
		k = 4
	}
	sc.buf = sc.buf[:0]
	sc.offs = append(sc.offs[:0], 0)
	for _, t := range toks {
		switch t.Type {
		case StartTag, SelfClosingTag:
			sc.buf = append(sc.buf, '<')
			sc.buf = append(sc.buf, t.Name...)
			sc.buf = append(sc.buf, '>')
			sc.offs = append(sc.offs, int32(len(sc.buf)))
		case Text:
			sc.appendLowerWords(t.Text)
		}
	}
	n := len(sc.offs) - 1
	if n == 0 {
		return dst
	}
	sc.resetSet(n)
	if n < k {
		return sc.insert(dst, sc.hashGram(0, n))
	}
	for i := 0; i+k <= n; i++ {
		dst = sc.insert(dst, sc.hashGram(i, i+k))
	}
	return dst
}

// appendLowerWords appends one stream item per whitespace-separated word
// of s, lower-cased rune-by-rune. The bytes produced match
// strings.Fields(strings.ToLower(s)): lowering maps no rune into or out
// of the space class, so word boundaries are unaffected, and invalid
// UTF-8 decays to RuneError exactly as strings.ToLower's rune mapping
// does.
func (sc *ShingleScratch) appendLowerWords(s string) {
	inWord := false
	for _, r := range s {
		if unicode.IsSpace(r) {
			if inWord {
				sc.offs = append(sc.offs, int32(len(sc.buf)))
				inWord = false
			}
			continue
		}
		inWord = true
		sc.buf = utf8.AppendRune(sc.buf, unicode.ToLower(r))
	}
	if inWord {
		sc.offs = append(sc.offs, int32(len(sc.buf)))
	}
}

// hashGram hashes stream items [i, j) with single-space separators —
// bit-identical to fnv1a(strings.Join(stream[i:j], " ")).
func (sc *ShingleScratch) hashGram(i, j int) uint64 {
	h := uint64(fnvOffset)
	for w := i; w < j; w++ {
		if w > i {
			h ^= uint64(' ')
			h *= fnvPrime
		}
		for _, c := range sc.buf[sc.offs[w]:sc.offs[w+1]] {
			h ^= uint64(c)
			h *= fnvPrime
		}
	}
	return h
}

// resetSet clears the dedup table, sizing it for about n insertions.
func (sc *ShingleScratch) resetSet(n int) {
	want := 16
	for want < 2*n {
		want <<= 1
	}
	if len(sc.tbl) < want {
		sc.tbl = make([]uint64, want)
	} else {
		clear(sc.tbl)
	}
	sc.hasZero = false
}

// insert appends v to dst unless it is already in the dedup table.
func (sc *ShingleScratch) insert(dst []uint64, v uint64) []uint64 {
	if v == 0 {
		if sc.hasZero {
			return dst
		}
		sc.hasZero = true
		return append(dst, 0)
	}
	mask := uint64(len(sc.tbl) - 1)
	// Fibonacci scatter: table indices of sequential hashes spread evenly.
	i := (v * 0x9E3779B97F4A7C15) >> 32 & mask
	for {
		switch sc.tbl[i] {
		case 0:
			sc.tbl[i] = v
			return append(dst, v)
		case v:
			return dst
		}
		i = (i + 1) & mask
	}
}

// Shingles produces the sorted, deduped k-shingle slice used for batch
// similarity: k-grams of the combined tag/word stream, hashed to uint64
// by FNV-1a. Identical task interfaces share (nearly) identical shingle
// sets, so Jaccard similarity over these recovers the paper's notion of
// "the same distinct task".
func Shingles(src string, k int) []uint64 {
	var sc ShingleScratch
	out := sc.AppendShingles(nil, Tokenize(src), k)
	slices.Sort(out)
	return out
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnv1a(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// Jaccard returns |a∩b| / |a∪b| over sorted, deduped shingle slices;
// 1 for two empty sets. The merge walk replaces the old map probing.
func Jaccard(a, b []uint64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
