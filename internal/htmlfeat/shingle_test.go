package htmlfeat

import (
	"slices"
	"strings"
	"testing"
)

// shinglesMapReference is the historical two-pass map-based kernel: build
// the joined tag/word stream as strings, hash each joined k-gram, dedupe
// in a map. The slice kernel must reproduce its set exactly.
func shinglesMapReference(src string, k int) map[uint64]struct{} {
	if k <= 0 {
		k = 4
	}
	var stream []string
	for _, t := range Tokenize(src) {
		switch t.Type {
		case StartTag, SelfClosingTag:
			stream = append(stream, "<"+t.Name+">")
		case Text:
			stream = append(stream, strings.Fields(strings.ToLower(t.Text))...)
		}
	}
	set := make(map[uint64]struct{}, len(stream))
	if len(stream) < k {
		if len(stream) == 0 {
			return set
		}
		set[fnv1a(strings.Join(stream, " "))] = struct{}{}
		return set
	}
	for i := 0; i+k <= len(stream); i++ {
		set[fnv1a(strings.Join(stream[i:i+k], " "))] = struct{}{}
	}
	return set
}

var shingleGoldenDocs = []string{
	"",
	"plain words only no tags at all",
	`<p>hi</p>`,
	`<div><p>Rate the SENTIMENT of this review</p><input type="radio"><input type="radio"></div>`,
	`<table><tr><td>transcribe&nbsp;the audio &amp; video clip</td></tr></table><textarea></textarea>`,
	"<b>Example</b><p>café NAÏVE 中文 mixed\tw h i t e\nspace</p><img src=\"x.png\">",
	`<ul>` + strings.Repeat(`<li>item one two three</li>`, 40) + `</ul>`,
	"<p>dup dup dup dup dup dup dup dup</p>", // heavy duplicate shingles
	`<script>ignored()</script><style>.x{}</style><p>visible</p>`,
	"broken < markup <p attr='unterminated",
	"entity stew &lt;&gt;&amp;&quot; &#65;&#x42; &unknown; tail",
	"  leading and trailing  ",
	"invalid utf8 \xff\xfe bytes <b>in</b> text \xc3",
}

// TestShinglesMatchesMapReference: the one-pass slice kernel produces
// exactly the historical set for a spread of documents and widths.
func TestShinglesMatchesMapReference(t *testing.T) {
	for _, k := range []int{0, 1, 2, 3, 4, 7} {
		for di, doc := range shingleGoldenDocs {
			want := shinglesMapReference(doc, k)
			got := Shingles(doc, k)
			if len(got) != len(want) {
				t.Fatalf("doc %d k=%d: %d shingles, reference %d", di, k, len(got), len(want))
			}
			if !slices.IsSorted(got) {
				t.Fatalf("doc %d k=%d: shingle slice not sorted", di, k)
			}
			for _, v := range got {
				if _, ok := want[v]; !ok {
					t.Fatalf("doc %d k=%d: shingle %#x not in reference set", di, k, v)
				}
			}
		}
	}
}

// TestAppendShinglesDedupes: the scratch kernel emits each hash once even
// across repeated use of one scratch.
func TestAppendShinglesDedupes(t *testing.T) {
	var sc ShingleScratch
	for round := 0; round < 3; round++ {
		for _, doc := range shingleGoldenDocs {
			got := sc.AppendShingles(nil, Tokenize(doc), 3)
			seen := map[uint64]bool{}
			for _, v := range got {
				if seen[v] {
					t.Fatalf("round %d: duplicate shingle %#x", round, v)
				}
				seen[v] = true
			}
		}
	}
}

// TestShinglesAllocs: with a reused scratch and destination, shingling a
// page settles to a handful of allocations (the tokenizer's token slice
// and text decoding) — the per-shingle map/string churn is gone.
func TestShinglesAllocs(t *testing.T) {
	page := strings.Repeat(`<div><p>some words here</p><input type="text"></div>`, 100)
	toks := Tokenize(page)
	var sc ShingleScratch
	dst := sc.AppendShingles(nil, toks, 4) // warm the scratch
	allocs := testing.AllocsPerRun(20, func() {
		dst = sc.AppendShingles(dst[:0], toks, 4)
	})
	if allocs > 0 {
		t.Errorf("AppendShingles allocs = %v, want 0 with warm scratch", allocs)
	}
}

func BenchmarkAppendShingles(b *testing.B) {
	page := strings.Repeat(`<div><p>some words here</p><input type="text"></div>`, 100)
	toks := Tokenize(page)
	var sc ShingleScratch
	var dst []uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = sc.AppendShingles(dst[:0], toks, 4)
	}
}
