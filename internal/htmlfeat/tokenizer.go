// Package htmlfeat extracts task-design features from task-interface HTML:
// the word count, text boxes, images, prominently tagged examples and input
// fields studied in Section 4, plus shingle sets for the batch clustering of
// Section 3.3. The standard library has no HTML parser, so a small
// fault-tolerant tokenizer is implemented here; it handles the subset of
// HTML that task interfaces use (tags, attributes with all quoting styles,
// comments, character entities).
package htmlfeat

import (
	"strings"
)

// TokenType distinguishes the kinds of tokens the tokenizer emits.
type TokenType uint8

// Token kinds.
const (
	StartTag TokenType = iota
	EndTag
	SelfClosingTag
	Text
	Comment
)

// Attr is one attribute on a tag.
type Attr struct {
	Key, Val string
}

// Token is one lexical element of an HTML document.
type Token struct {
	Type  TokenType
	Name  string // lower-cased tag name for tag tokens
	Attrs []Attr
	Text  string // decoded text for Text tokens, raw body for comments
}

// Attr returns the value of the named attribute (lower-case key) and
// whether it was present.
func (t Token) Attr(key string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// Tokenize splits an HTML document into tokens. Malformed markup is
// handled leniently: an unterminated tag is consumed to end of input, and
// stray '<' characters are treated as text.
func Tokenize(src string) []Token {
	var out []Token
	i := 0
	n := len(src)
	for i < n {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			out = appendText(out, src[i:])
			break
		}
		if lt > 0 {
			out = appendText(out, src[i:i+lt])
			i += lt
		}
		// src[i] == '<'
		if strings.HasPrefix(src[i:], "<!--") {
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				out = append(out, Token{Type: Comment, Text: src[i+4:]})
				break
			}
			out = append(out, Token{Type: Comment, Text: src[i+4 : i+4+end]})
			i += 4 + end + 3
			continue
		}
		if strings.HasPrefix(src[i:], "<!") || strings.HasPrefix(src[i:], "<?") {
			// Doctype or processing instruction: skip to '>'.
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				break
			}
			i += end + 1
			continue
		}
		if i+1 < n && !isTagStart(src[i+1]) {
			// A lone '<' that does not begin a tag: literal text.
			out = appendText(out, "<")
			i++
			continue
		}
		tok, next, ok := lexTag(src, i)
		if !ok {
			// Invalid tag opener (e.g. "</" followed by a non-name byte):
			// treat the '<' as literal text and keep scanning, rather than
			// swallowing the rest of the document.
			out = appendText(out, "<")
			i++
			continue
		}
		out = append(out, tok)
		i = next
		// Raw-text elements swallow everything until their close tag.
		if tok.Type == StartTag && (tok.Name == "script" || tok.Name == "style") {
			closer := "</" + tok.Name
			end := indexFold(src[i:], closer)
			if end < 0 {
				break
			}
			// The raw body is not text content; skip it.
			i += end
		}
	}
	return out
}

func isTagStart(c byte) bool {
	return c == '/' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func appendText(out []Token, s string) []Token {
	if s == "" {
		return out
	}
	return append(out, Token{Type: Text, Text: DecodeEntities(s)})
}

// lexTag scans one tag starting at src[i] == '<'. It returns the token, the
// index after the tag, and whether a complete tag was found.
func lexTag(src string, i int) (Token, int, bool) {
	n := len(src)
	j := i + 1
	closing := false
	if j < n && src[j] == '/' {
		closing = true
		j++
	}
	start := j
	for j < n && isNameByte(src[j]) {
		j++
	}
	if j == start {
		return Token{}, i, false
	}
	tok := Token{Name: strings.ToLower(src[start:j])}
	if closing {
		tok.Type = EndTag
		// Skip to '>'.
		for j < n && src[j] != '>' {
			j++
		}
		if j >= n {
			return tok, n, true
		}
		return tok, j + 1, true
	}
	tok.Type = StartTag
	// Attributes.
	for {
		for j < n && isSpace(src[j]) {
			j++
		}
		if j >= n {
			return tok, n, true
		}
		if src[j] == '>' {
			return tok, j + 1, true
		}
		if src[j] == '/' {
			// Self-closing.
			for j < n && src[j] != '>' {
				j++
			}
			tok.Type = SelfClosingTag
			if j >= n {
				return tok, n, true
			}
			return tok, j + 1, true
		}
		// Attribute name.
		ks := j
		for j < n && src[j] != '=' && src[j] != '>' && src[j] != '/' && !isSpace(src[j]) {
			j++
		}
		key := strings.ToLower(src[ks:j])
		for j < n && isSpace(src[j]) {
			j++
		}
		if j < n && src[j] == '=' {
			j++
			for j < n && isSpace(src[j]) {
				j++
			}
			var val string
			if j < n && (src[j] == '"' || src[j] == '\'') {
				q := src[j]
				j++
				vs := j
				for j < n && src[j] != q {
					j++
				}
				val = src[vs:j]
				if j < n {
					j++
				}
			} else {
				vs := j
				for j < n && !isSpace(src[j]) && src[j] != '>' {
					j++
				}
				val = src[vs:j]
			}
			tok.Attrs = append(tok.Attrs, Attr{Key: key, Val: DecodeEntities(val)})
		} else if key != "" {
			tok.Attrs = append(tok.Attrs, Attr{Key: key})
		}
	}
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == ':'
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

// indexFold returns the index of the first case-insensitive occurrence of
// needle in hay, or -1.
func indexFold(hay, needle string) int {
	return strings.Index(strings.ToLower(hay), strings.ToLower(needle))
}

// entityTable covers the character references that appear in task
// interfaces; unknown entities pass through verbatim.
var entityTable = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
	"nbsp": " ", "mdash": "—", "ndash": "–", "hellip": "…",
	"ldquo": "“", "rdquo": "”", "lsquo": "‘", "rsquo": "’", "copy": "©",
}

// DecodeEntities replaces the common named character references and decimal
// numeric references in s.
func DecodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for {
		b.WriteString(s[:amp])
		s = s[amp:]
		semi := strings.IndexByte(s, ';')
		if semi < 0 || semi > 10 {
			b.WriteByte('&')
			s = s[1:]
		} else {
			name := s[1:semi]
			if rep, ok := entityTable[name]; ok {
				b.WriteString(rep)
				s = s[semi+1:]
			} else if strings.HasPrefix(name, "#") {
				if r := decodeNumericRef(name[1:]); r != "" {
					b.WriteString(r)
					s = s[semi+1:]
				} else {
					b.WriteByte('&')
					s = s[1:]
				}
			} else {
				b.WriteByte('&')
				s = s[1:]
			}
		}
		amp = strings.IndexByte(s, '&')
		if amp < 0 {
			b.WriteString(s)
			return b.String()
		}
	}
}

func decodeNumericRef(digits string) string {
	base := 10
	if strings.HasPrefix(digits, "x") || strings.HasPrefix(digits, "X") {
		base = 16
		digits = digits[1:]
	}
	if digits == "" {
		return ""
	}
	v := 0
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		var d int
		switch {
		case c >= '0' && c <= '9':
			d = int(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int(c-'A') + 10
		default:
			return ""
		}
		v = v*base + d
		if v > 0x10FFFF {
			return ""
		}
	}
	return string(rune(v))
}
