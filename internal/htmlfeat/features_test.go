package htmlfeat

import (
	"strings"
	"testing"
)

func TestExtractWords(t *testing.T) {
	f := Extract(`<p>one two three</p><div>four</div>`)
	if f.Words != 4 {
		t.Errorf("Words = %d", f.Words)
	}
}

func TestExtractTextBoxes(t *testing.T) {
	src := `
		<input type="text">
		<input type="TEXT">
		<input>
		<textarea></textarea>
		<input type="radio">
		<input type="checkbox">
		<input type="hidden">
		<input type="email">`
	f := Extract(src)
	if f.TextBoxes != 5 { // text, TEXT, untyped, textarea, email
		t.Errorf("TextBoxes = %d", f.TextBoxes)
	}
	if f.Radios != 1 || f.Checkboxes != 1 {
		t.Errorf("Radios/Checkboxes = %d/%d", f.Radios, f.Checkboxes)
	}
	if f.Fields != 8 {
		t.Errorf("Fields = %d", f.Fields)
	}
}

func TestExtractImages(t *testing.T) {
	f := Extract(`<img src="a.jpg"><p>text</p><img src="b.png"/>`)
	if f.Images != 2 {
		t.Errorf("Images = %d", f.Images)
	}
}

func TestExtractExamplesOwnTag(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		// Wrapped in a tag of its own: counts.
		{`<b>Example</b>`, 1},
		{`<h3>Example 2</h3>`, 1},
		{`<strong>Example:</strong>`, 1},
		{`<b>Examples</b>`, 1},
		// Buried in prose: does not count.
		{`<p>for example, you could answer yes</p>`, 0},
		{`<p>Example answers are listed in the instructions below</p>`, 0},
		// Two prominent examples.
		{`<b>Example 1</b><p>body</p><b>Example 2</b>`, 2},
		// A non-example word alone in a tag.
		{`<b>Note</b>`, 0},
	}
	for _, c := range cases {
		if got := Extract(c.src).Examples; got != c.want {
			t.Errorf("Examples(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestExtractInstructions(t *testing.T) {
	if !Extract(`<div class="instructions">x</div>`).HasInstructions {
		t.Error("class=instructions not detected")
	}
	if !Extract(`<div id="task-instruction-area">x</div>`).HasInstructions {
		t.Error("id containing instruction not detected")
	}
	if Extract(`<div class="other">x</div>`).HasInstructions {
		t.Error("false positive instructions")
	}
}

func TestVisibleText(t *testing.T) {
	got := VisibleText(`<p>hello</p> <b>world</b><script>ignored()</script>`)
	if got != "hello world" {
		t.Errorf("VisibleText = %q", got)
	}
}

func TestTagSequence(t *testing.T) {
	got := TagSequence(`<div><p>x</p><img></div>`)
	want := []string{"div", "p", "img"}
	if len(got) != len(want) {
		t.Fatalf("TagSequence = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TagSequence[%d] = %q", i, got[i])
		}
	}
}

func TestShinglesSimilarityOrdering(t *testing.T) {
	base := `<div><p>rate the sentiment of the following review text</p><input type="radio"><input type="radio"></div>`
	near := `<div><p>rate the sentiment of the following review text today</p><input type="radio"><input type="radio"></div>`
	far := `<table><tr><td>transcribe the audio clip completely</td></tr><textarea></textarea></table>`
	sBase := Shingles(base, 3)
	sNear := Shingles(near, 3)
	sFar := Shingles(far, 3)
	simNear := Jaccard(sBase, sNear)
	simFar := Jaccard(sBase, sFar)
	if simNear <= simFar {
		t.Errorf("near sim %.3f should exceed far sim %.3f", simNear, simFar)
	}
	if simNear < 0.5 {
		t.Errorf("near-duplicate similarity too low: %.3f", simNear)
	}
	if got := Jaccard(sBase, sBase); got != 1 {
		t.Errorf("self similarity = %v", got)
	}
}

func TestShinglesShortDoc(t *testing.T) {
	s := Shingles(`<p>hi</p>`, 4)
	if len(s) != 1 {
		t.Errorf("short doc shingles = %d", len(s))
	}
	if len(Shingles("", 4)) != 0 {
		t.Error("empty doc should have no shingles")
	}
}

func TestJaccardEdgeCases(t *testing.T) {
	if Jaccard(nil, nil) != 1 {
		t.Error("two empty sets should be identical")
	}
	one := []uint64{1}
	if Jaccard(nil, one) != 0 {
		t.Error("empty vs non-empty should be 0")
	}
	if got := Jaccard([]uint64{1, 2, 3, 5}, []uint64{2, 3, 5, 9}); got != 0.6 {
		t.Errorf("merge Jaccard = %v, want 3/5", got)
	}
}

func TestCountWordsUnicode(t *testing.T) {
	f := Extract("<p>café naïve 中文</p>")
	if f.Words != 3 {
		t.Errorf("unicode Words = %d", f.Words)
	}
}

func TestExtractRealisticPage(t *testing.T) {
	page := `<!DOCTYPE html>
<html><head><title>Search Relevance</title></head>
<body>
<h1>Rate search results</h1>
<div class="instructions"><p>Read the query and rate how relevant each result is.</p></div>
<b>Example</b>
<p>query: best pizza — result: pizza hut menu — relevance: high</p>
<img src="screenshot.png">
<div class="task-item">
  <label><input type="radio" name="rel" value="3"> very relevant</label>
  <label><input type="radio" name="rel" value="2"> somewhat</label>
  <label><input type="radio" name="rel" value="1"> not relevant</label>
  <input type="text" name="comment">
  <button type="submit">Submit</button>
</div>
</body></html>`
	f := Extract(page)
	if f.Examples != 1 {
		t.Errorf("Examples = %d", f.Examples)
	}
	if f.Images != 1 {
		t.Errorf("Images = %d", f.Images)
	}
	if f.TextBoxes != 1 {
		t.Errorf("TextBoxes = %d", f.TextBoxes)
	}
	if f.Radios != 3 {
		t.Errorf("Radios = %d", f.Radios)
	}
	if f.Fields != 5 {
		t.Errorf("Fields = %d", f.Fields)
	}
	if !f.HasInstructions {
		t.Error("instructions missed")
	}
	if f.Words < 30 {
		t.Errorf("Words = %d, expected the page text counted", f.Words)
	}
}

func BenchmarkExtract(b *testing.B) {
	page := strings.Repeat(`<div><p>some words here</p><input type="text"><img src="x.jpg"></div>`, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(page)
	}
}

func BenchmarkShingles(b *testing.B) {
	page := strings.Repeat(`<div><p>some words here</p><input type="text"></div>`, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Shingles(page, 4)
	}
}
