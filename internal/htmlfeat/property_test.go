package htmlfeat

import (
	"strings"
	"testing"
	"testing/quick"

	"crowdscope/internal/rng"
)

// randomHTMLish produces arbitrary byte soup biased toward markup
// characters, to fuzz the tokenizer's robustness guarantees.
func randomHTMLish(seed uint64, n int) string {
	r := rng.New(seed)
	alphabet := []byte(`<>/"'= abcdefghij&#;-!`)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[r.Intn(len(alphabet))])
	}
	return b.String()
}

// TestPropertyTokenizeNeverPanics: the tokenizer is total over arbitrary
// input.
func TestPropertyTokenizeNeverPanics(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		src := randomHTMLish(seed, int(size))
		_ = Tokenize(src)
		_ = Extract(src)
		_ = VisibleText(src)
		_ = Shingles(src, 3)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFeaturesNonNegative: every extracted count is ≥ 0 for any
// input.
func TestPropertyFeaturesNonNegative(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		feats := Extract(randomHTMLish(seed, int(size)*4))
		return feats.Words >= 0 && feats.TextBoxes >= 0 && feats.Images >= 0 &&
			feats.Examples >= 0 && feats.Fields >= 0 &&
			feats.TextBoxes+feats.Radios+feats.Checkboxes <= feats.Fields+3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTextConcatenationMonotone: appending a text paragraph to a
// document that is not mid-construct adds exactly its words. Random soup
// can end inside an unterminated comment, script or quoted attribute, so
// a closing sentinel terminates any open construct first.
func TestPropertyTextConcatenationMonotone(t *testing.T) {
	// The closer must terminate any construct random soup can leave open:
	// " and ' close quoted attribute values; the leading ` z ` satisfies a
	// dangling `attr=` with an unquoted value so the quotes cannot *open*
	// a new value; --> closes comments; </script> closes raw text; the
	// final > closes a bare tag.
	const closer = ` z "'--></script>>`
	f := func(seed uint64) bool {
		r := rng.New(seed)
		base := randomHTMLish(seed, 100+r.Intn(200)) + closer
		before := Extract(base).Words
		after := Extract(base + "<p>alpha beta gamma</p>").Words
		return after >= before+3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyJaccardAxioms: similarity is symmetric, bounded, and 1 on
// identical inputs.
func TestPropertyJaccardAxioms(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		a := Shingles(randomHTMLish(seedA, 300), 3)
		b := Shingles(randomHTMLish(seedB, 300), 3)
		sab := Jaccard(a, b)
		sba := Jaccard(b, a)
		if sab != sba || sab < 0 || sab > 1 {
			return false
		}
		return Jaccard(a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEntitiesIdempotentOnPlain: decoding entity-free text is the
// identity.
func TestPropertyEntitiesIdempotentOnPlain(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		alphabet := []byte("abc def.xyz<>")
		var b strings.Builder
		for i := 0; i < 50; i++ {
			c := alphabet[r.Intn(len(alphabet))]
			b.WriteByte(c)
		}
		s := strings.ReplaceAll(b.String(), "&", "")
		return DecodeEntities(s) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
