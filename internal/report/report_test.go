package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "name", "count", "ratio")
	tbl.AddRow("alpha", 10, 0.523)
	tbl.AddRow("beta-longer-name", 2000, 12.0)
	out := tbl.String()
	if !strings.Contains(out, "Demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta-longer-name") {
		t.Error("rows missing")
	}
	if !strings.Contains(out, "0.523") {
		t.Error("float formatting wrong")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns align: header and separator have same width.
	if len(lines[1]) != len(lines[2]) {
		t.Error("separator width mismatch")
	}
}

func TestTableNaN(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(math.NaN())
	if !strings.Contains(tbl.String(), "-") {
		t.Error("NaN should render as dash")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3, "3"}, {3.14159, "3.1"}, {0.000123, "0.000"},
		{12345.6, "12346"}, {0.5, "0.500"},
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestChartRender(t *testing.T) {
	ch := NewChart("Load")
	ch.Add("Mon", 100)
	ch.Add("Tue", 50)
	ch.Add("Sun", 0)
	out := ch.String()
	if !strings.Contains(out, "Load") || !strings.Contains(out, "Mon") {
		t.Errorf("chart output: %q", out)
	}
	// Monday's bar must be the longest.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	monBars := strings.Count(lines[1], "█")
	tueBars := strings.Count(lines[2], "█")
	sunBars := strings.Count(lines[3], "█")
	if monBars <= tueBars || sunBars != 0 {
		t.Errorf("bar lengths: mon=%d tue=%d sun=%d", monBars, tueBars, sunBars)
	}
}

func TestChartLogScale(t *testing.T) {
	lin := NewChart("")
	lin.Add("big", 1000000)
	lin.Add("small", 10)
	logc := NewChart("")
	logc.Log = true
	logc.Add("big", 1000000)
	logc.Add("small", 10)
	linSmall := strings.Count(strings.Split(lin.String(), "\n")[1], "█")
	logSmall := strings.Count(strings.Split(logc.String(), "\n")[1], "█")
	if logSmall <= linSmall {
		t.Errorf("log scaling should lift small bars: lin=%d log=%d", linSmall, logSmall)
	}
}

func TestChartEmpty(t *testing.T) {
	ch := NewChart("Empty")
	if !strings.Contains(ch.String(), "no data") {
		t.Error("empty chart should say so")
	}
}

func TestTSVRender(t *testing.T) {
	tsv := NewTSV("x", "y")
	tsv.Add(1, 2.5)
	tsv.Add(3, math.NaN())
	out := tsv.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "x\ty" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1\t2.5" {
		t.Errorf("row = %q", lines[1])
	}
	if lines[2] != "3\tnan" {
		t.Errorf("NaN row = %q", lines[2])
	}
	if tsv.Len() != 2 {
		t.Errorf("Len = %d", tsv.Len())
	}
}

func TestTSVArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch should panic")
		}
	}()
	NewTSV("a", "b").Add(1)
}
