// Package report renders experiment output: fixed-width text tables in the
// style of the paper's Tables 1-4, compact ASCII charts for the figures,
// and TSV series for external plotting tools.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	n := len([]rune(s))
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Chart renders a horizontal bar chart: one labeled bar per value, with
// optional log scaling for the paper's heavy-tailed distributions.
type Chart struct {
	Title  string
	Width  int // bar area width in characters (default 50)
	Log    bool
	labels []string
	values []float64
}

// NewChart creates a chart.
func NewChart(title string) *Chart { return &Chart{Title: title, Width: 50} }

// Add appends one bar.
func (c *Chart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) {
	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	if len(c.values) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	width := c.Width
	if width <= 0 {
		width = 50
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range c.values {
		sv := c.scale(v)
		if sv > maxVal {
			maxVal = sv
		}
		if len(c.labels[i]) > maxLabel {
			maxLabel = len(c.labels[i])
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	for i, v := range c.values {
		n := int(c.scale(v) / maxVal * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "  %s %s %s\n", pad(c.labels[i], maxLabel), strings.Repeat("█", n), formatFloat(v))
	}
}

func (c *Chart) scale(v float64) float64 {
	if !c.Log {
		return v
	}
	if v <= 0 {
		return 0
	}
	return math.Log10(1 + v)
}

// String renders to a string.
func (c *Chart) String() string {
	var b strings.Builder
	c.Render(&b)
	return b.String()
}

// TSV writes tab-separated series with a header row — the exchange format
// for gnuplot-style external plotting.
type TSV struct {
	Headers []string
	rows    [][]float64
}

// NewTSV creates a TSV series with the given column names.
func NewTSV(headers ...string) *TSV { return &TSV{Headers: headers} }

// Add appends one row; it must match the header arity.
func (t *TSV) Add(values ...float64) {
	if len(values) != len(t.Headers) {
		panic("report: TSV row arity mismatch")
	}
	t.rows = append(t.rows, append([]float64(nil), values...))
}

// Len returns the number of data rows.
func (t *TSV) Len() int { return len(t.rows) }

// Render writes the series to w.
func (t *TSV) Render(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, "\t"))
	for _, row := range t.rows {
		parts := make([]string, len(row))
		for i, v := range row {
			if math.IsNaN(v) {
				parts[i] = "nan"
			} else {
				parts[i] = fmt.Sprintf("%g", v)
			}
		}
		fmt.Fprintln(w, strings.Join(parts, "\t"))
	}
}

// String renders to a string.
func (t *TSV) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
