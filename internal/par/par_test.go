package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestEachShardCoversRange(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 7, 100} {
		n := 53
		hit := make([]int32, n)
		EachShard(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hit[i], 1)
			}
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestEachShardEmpty(t *testing.T) {
	called := false
	EachShard(0, 4, func(lo, hi int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
}

func TestEachShardErrCoversRange(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 5, 64} {
		n := 31
		hit := make([]int32, n)
		err := EachShardErr(n, workers, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hit[i], 1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

// TestEachShardErrFirstError: the lowest-indexed shard's error wins for
// every worker count, so callers see a deterministic failure.
func TestEachShardErrFirstError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 2, 4, 16} {
		err := EachShardErr(16, workers, func(lo, hi int) error {
			if lo == 0 {
				return errLow
			}
			if hi == 16 {
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, errLow)
		}
	}
}

func TestEachShardErrNil(t *testing.T) {
	if err := EachShardErr(0, 4, func(lo, hi int) error { return errors.New("boom") }); err != nil {
		t.Errorf("n=0 should not run fn: %v", err)
	}
}
