package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestEachShardCoversRange(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 7, 100} {
		n := 53
		hit := make([]int32, n)
		EachShard(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hit[i], 1)
			}
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestEachShardEmpty(t *testing.T) {
	called := false
	EachShard(0, 4, func(lo, hi int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
}

func TestEachShardErrCoversRange(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 5, 64} {
		n := 31
		hit := make([]int32, n)
		err := EachShardErr(n, workers, func(_ context.Context, lo, hi int) error {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hit[i], 1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

// TestEachShardErrFirstError: the lowest-indexed shard's error wins for
// every worker count, so callers see a deterministic failure.
func TestEachShardErrFirstError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 2, 4, 16} {
		err := EachShardErr(16, workers, func(_ context.Context, lo, hi int) error {
			if lo == 0 {
				return errLow
			}
			if hi == 16 {
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, errLow)
		}
	}
}

func TestEachShardErrNil(t *testing.T) {
	if err := EachShardErr(0, 4, func(_ context.Context, lo, hi int) error { return errors.New("boom") }); err != nil {
		t.Errorf("n=0 should not run fn: %v", err)
	}
}

// TestEachShardErrEarlyExit: one shard fails, the sibling shards observe
// the cancellation through their context, and the failing shard's error
// — not the siblings' ctx errors — is what comes back.
func TestEachShardErrEarlyExit(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{2, 4, 8} {
		var sawCancel atomic.Int32
		err := EachShardErr(workers, workers, func(ctx context.Context, lo, hi int) error {
			if lo == 0 {
				return boom
			}
			select {
			case <-ctx.Done():
				sawCancel.Add(1)
				return ctx.Err()
			case <-time.After(5 * time.Second):
				return errors.New("shard never saw cancellation")
			}
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v, want boom to win over sibling cancellations", workers, err)
		}
		if got := int(sawCancel.Load()); got != workers-1 {
			t.Fatalf("workers=%d: %d siblings observed cancellation, want %d", workers, got, workers-1)
		}
	}
}

// TestEachShardErrFirstErrorWinsOverCancel: a shard that returns a real
// error after a lower-indexed shard merely reported the cancellation
// still wins — cancellation errors can never mask the cause.
func TestEachShardErrFirstErrorWinsOverCancel(t *testing.T) {
	boom := errors.New("boom")
	err := EachShardErr(4, 4, func(ctx context.Context, lo, hi int) error {
		if lo == 3 {
			return boom
		}
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

// TestEachShardCtxParentCancel: a cancelled parent context stops the
// fan-out and surfaces as the parent's error; a pre-cancelled parent
// never runs a shard.
func TestEachShardCtxParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 4)
	go func() {
		<-started
		cancel()
	}()
	err := EachShardCtx(ctx, 4, 4, func(ctx context.Context, lo, hi int) error {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}

	pre, precancel := context.WithCancel(context.Background())
	precancel()
	ran := false
	if err := EachShardCtx(pre, 4, 4, func(context.Context, int, int) error { ran = true; return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled parent: got %v", err)
	}
	if ran {
		t.Fatal("pre-cancelled parent still ran a shard")
	}
}

// TestEachShardErrNoGoroutineLeak: after many early-exit fan-outs the
// goroutine count settles back to the baseline — every shard goroutine
// is joined before EachShardErr returns.
func TestEachShardErrNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	boom := errors.New("boom")
	for i := 0; i < 50; i++ {
		_ = EachShardErr(8, 8, func(ctx context.Context, lo, hi int) error {
			if lo == 0 {
				return boom
			}
			<-ctx.Done()
			return ctx.Err()
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
