// Package par holds the shared goroutine fan-out harness of the parallel
// generation and analysis phases.
package par

import (
	"runtime"
	"sync"
)

// EachShard splits [0, n) into at most `workers` contiguous ranges and
// runs fn over each on its own goroutine; workers <= 0 means GOMAXPROCS,
// 1 runs inline. Shards must write disjoint slots, which keeps callers
// deterministic for every worker count.
func EachShard(n, workers int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// EachShardErr is EachShard for shard bodies that can fail. All shards run
// to completion (disjoint-slot writers cannot be cancelled midway without
// losing determinism); the error of the lowest-indexed failing shard is
// returned, so the reported failure is the same for every worker count.
func EachShardErr(n, workers int, fn func(lo, hi int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(0, n)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
