// Package par holds the shared goroutine fan-out harness of the parallel
// generation and analysis phases.
package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// EachShard splits [0, n) into at most `workers` contiguous ranges and
// runs fn over each on its own goroutine; workers <= 0 means GOMAXPROCS,
// 1 runs inline. Shards must write disjoint slots, which keeps callers
// deterministic for every worker count.
func EachShard(n, workers int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// EachShardErr is EachShard for shard bodies that can fail; it runs with
// a background context, so shards are cancelled only by each other's
// failures. See EachShardCtx for the full contract.
func EachShardErr(n, workers int, fn func(ctx context.Context, lo, hi int) error) error {
	return EachShardCtx(context.Background(), n, workers, fn)
}

// EachShardCtx is the cancellable shard fan-out. Each shard body receives
// a context that is cancelled as soon as any shard returns an error or
// the parent ctx is done; long-running bodies should check it between
// units of work and return ctx.Err() when it fires. Every started shard
// is always waited for — the function never returns while a shard
// goroutine is still running, so there are no leaks and no writes after
// return.
//
// The returned error is deterministic under the error model callers rely
// on: among shards that failed with a real error (anything that is not
// context.Canceled/DeadlineExceeded), the lowest-indexed one wins, so a
// sibling that merely observed the cancellation fan-out can never mask
// the error that caused it. When every failure is a cancellation — the
// parent ctx fired — the parent's ctx.Err() is returned. A parent ctx
// that is already done fails fast without running any shard.
func EachShardCtx(ctx context.Context, n, workers int, fn func(ctx context.Context, lo, hi int) error) error {
	if n == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(ctx, 0, n)
	}
	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			if err := fn(inner, lo, hi); err != nil {
				errs[w] = err
				cancel() // remaining shards observe the failure
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var cancelErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelErr == nil {
				cancelErr = err
			}
			continue
		}
		return err
	}
	if cancelErr != nil {
		// Every failure was a cancellation: report the parent's error when
		// it fired (the cause), else the first observed cancellation.
		if err := ctx.Err(); err != nil {
			return err
		}
		return cancelErr
	}
	return nil
}
