package corr

import (
	"math"
	"strings"
	"testing"

	"crowdscope/internal/rng"
)

// synthPair builds a feature vector and a metric that depends on it (high
// feature → low metric) plus noise.
func synthPair(n int, effect float64) (feat, metric []float64) {
	r := rng.New(71)
	feat = make([]float64, n)
	metric = make([]float64, n)
	for i := 0; i < n; i++ {
		feat[i] = r.LogNormalMedian(100, 1)
		base := 1.0
		if feat[i] > 100 {
			base = effect
		}
		metric[i] = base * r.LogNormalMedian(1, 0.2)
	}
	return feat, metric
}

func TestRunMedianSplitDetectsEffect(t *testing.T) {
	feat, metric := synthPair(2000, 0.6)
	res := Run("#words", "disagreement", SplitAtMedian, feat, metric)
	if !res.Significant() {
		t.Fatalf("clear effect not significant: p=%v", res.TTest.P)
	}
	if res.Bin2.Median >= res.Bin1.Median {
		t.Errorf("bin medians out of order: %v vs %v", res.Bin1.Median, res.Bin2.Median)
	}
	// Bins should be balanced.
	if d := res.Bin1.Count - res.Bin2.Count; d < -1 || d > 1 {
		t.Errorf("bins unbalanced: %d vs %d", res.Bin1.Count, res.Bin2.Count)
	}
	if !strings.Contains(res.Bin1.Label, "≤") {
		t.Errorf("bin1 label %q", res.Bin1.Label)
	}
}

func TestRunNullEffect(t *testing.T) {
	r := rng.New(72)
	n := 1000
	feat := make([]float64, n)
	metric := make([]float64, n)
	for i := 0; i < n; i++ {
		feat[i] = r.Float64() * 10
		metric[i] = r.Normal(5, 1)
	}
	res := Run("#fields", "task-time", SplitAtMedian, feat, metric)
	if res.Significant() {
		t.Errorf("independent feature flagged significant: p=%v", res.TTest.P)
	}
}

func TestRunZeroSplit(t *testing.T) {
	r := rng.New(73)
	n := 1500
	feat := make([]float64, n)
	metric := make([]float64, n)
	for i := 0; i < n; i++ {
		if r.Bool(0.4) {
			feat[i] = float64(1 + r.Intn(3))
		}
		base := 100.0
		if feat[i] > 0 {
			base = 250
		}
		metric[i] = r.LogNormalMedian(base, 0.3)
	}
	res := Run("#text-boxes", "task-time", SplitAtZero, feat, metric)
	if !res.Significant() {
		t.Fatalf("zero-split effect not significant: p=%v", res.TTest.P)
	}
	if res.Bin2.Median <= res.Bin1.Median {
		t.Error("positive bin should have larger metric")
	}
	if res.SplitValue != 0 {
		t.Errorf("split value %v", res.SplitValue)
	}
	if res.Bin1.Count+res.Bin2.Count != n {
		t.Error("observations lost")
	}
}

func TestRunDropsNaN(t *testing.T) {
	feat := []float64{1, 2, 3, 4, math.NaN(), 6}
	metric := []float64{1, 2, math.NaN(), 4, 5, 6}
	res := Run("f", "m", SplitAtMedian, feat, metric)
	if res.Bin1.Count+res.Bin2.Count != 4 {
		t.Errorf("NaN rows not dropped: %d obs", res.Bin1.Count+res.Bin2.Count)
	}
}

func TestMedianBalancedSplitTies(t *testing.T) {
	// All feature values identical: ties distribute evenly.
	feat := []float64{5, 5, 5, 5, 5, 5}
	metric := []float64{1, 2, 3, 4, 5, 6}
	res := Run("f", "m", SplitAtMedian, feat, metric)
	if d := res.Bin1.Count - res.Bin2.Count; d < -1 || d > 1 {
		t.Errorf("tie distribution unbalanced: %d vs %d", res.Bin1.Count, res.Bin2.Count)
	}
}

func TestRunMatrix(t *testing.T) {
	obs := []Observation{
		{Features: map[string]float64{"a": 1}, Metrics: map[string]float64{"m": 10}},
		{Features: map[string]float64{"a": 2}, Metrics: map[string]float64{"m": 20}},
		{Features: map[string]float64{"a": 3}, Metrics: map[string]float64{"m": 30}},
		{Features: map[string]float64{"a": 4}, Metrics: map[string]float64{"m": 40}},
	}
	rs := RunMatrix(obs, []Spec{{Feature: "a", Metric: "m", Kind: SplitAtMedian}, {Feature: "missing", Metric: "m", Kind: SplitAtMedian}})
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[0].Bin1.Count != 2 || rs[0].Bin2.Count != 2 {
		t.Errorf("matrix bins %d/%d", rs[0].Bin1.Count, rs[0].Bin2.Count)
	}
	// The missing feature drops everything.
	if rs[1].Bin1.Count+rs[1].Bin2.Count != 0 {
		t.Error("missing feature rows should drop")
	}
}

func TestMeanSplitDiffersFromMedianOnSkew(t *testing.T) {
	// Heavy-tailed feature: mean ≫ median, so the mean split is
	// unbalanced — the ablation rationale.
	r := rng.New(74)
	n := 2000
	feat := make([]float64, n)
	metric := make([]float64, n)
	for i := 0; i < n; i++ {
		feat[i] = r.Pareto(1, 1.1)
		metric[i] = r.Float64()
	}
	med := Run("f", "m", SplitAtMedian, feat, metric)
	mean := MeanSplit("f", "m", feat, metric)
	balMed := math.Abs(float64(med.Bin1.Count - med.Bin2.Count))
	balMean := math.Abs(float64(mean.Bin1.Count - mean.Bin2.Count))
	if balMean <= balMed {
		t.Errorf("mean split should be less balanced: |Δ| median=%v mean=%v", balMed, balMean)
	}
}

func TestCDFSeries(t *testing.T) {
	feat, metric := synthPair(500, 0.5)
	res := Run("f", "m", SplitAtMedian, feat, metric)
	x1, y1, x2, y2 := CDFSeries(res, 40)
	if len(x1) != 40 || len(y1) != 40 || len(x2) != 40 || len(y2) != 40 {
		t.Fatalf("series lengths %d %d %d %d", len(x1), len(y1), len(x2), len(y2))
	}
	if y1[len(y1)-1] != 1 || y2[len(y2)-1] != 1 {
		t.Error("CDFs should end at 1")
	}
}

func TestSortBySignificance(t *testing.T) {
	feat, metric := synthPair(2000, 0.5)
	strong := Run("strong", "m", SplitAtMedian, feat, metric)
	r := rng.New(75)
	nullFeat := make([]float64, 2000)
	nullMetric := make([]float64, 2000)
	for i := range nullFeat {
		nullFeat[i] = r.Float64()
		nullMetric[i] = r.Float64()
	}
	weak := Run("weak", "m", SplitAtMedian, nullFeat, nullMetric)
	nan := Run("nan", "m", SplitAtMedian, []float64{1}, []float64{2})
	rs := []Result{nan, weak, strong}
	SortBySignificance(rs)
	if rs[0].Feature != "strong" {
		t.Errorf("order: %v", []string{rs[0].Feature, rs[1].Feature, rs[2].Feature})
	}
	if rs[2].Feature != "nan" {
		t.Error("NaN p-value should sort last")
	}
}

func TestResultString(t *testing.T) {
	feat, metric := synthPair(100, 0.5)
	res := Run("#items", "pickup-time", SplitAtMedian, feat, metric)
	s := res.String()
	if !strings.Contains(s, "#items") || !strings.Contains(s, "pickup-time") {
		t.Errorf("String = %q", s)
	}
}

func TestRunPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Run("f", "m", SplitAtMedian, []float64{1, 2}, []float64{1})
}

func TestRunIncludesKSCrossCheck(t *testing.T) {
	feat, metric := synthPair(2000, 0.6)
	res := Run("#words", "disagreement", SplitAtMedian, feat, metric)
	if !res.KS.Significant(0.01) {
		t.Errorf("KS cross-check missed a clear effect: p=%v", res.KS.P)
	}
	// Null case: KS should not fire.
	r := rng.New(76)
	nf := make([]float64, 1000)
	nm := make([]float64, 1000)
	for i := range nf {
		nf[i] = r.Float64()
		nm[i] = r.Normal(0, 1)
	}
	null := Run("f", "m", SplitAtMedian, nf, nm)
	if null.KS.Significant(0.001) {
		t.Errorf("KS false positive: p=%v", null.KS.P)
	}
}

func TestKSCatchesVarianceOnlyEffect(t *testing.T) {
	// A feature that changes metric *spread* but not its mean: the
	// paper's t-test misses it, the KS cross-check does not.
	r := rng.New(77)
	n := 3000
	feat := make([]float64, n)
	metric := make([]float64, n)
	for i := 0; i < n; i++ {
		feat[i] = r.Float64() * 10
		sd := 0.3
		if feat[i] > 5 {
			sd = 3
		}
		metric[i] = r.Normal(50, sd)
	}
	res := Run("f", "m", SplitAtMedian, feat, metric)
	if res.TTest.Significant(0.01) {
		t.Logf("note: t-test fired on variance-only effect (p=%v)", res.TTest.P)
	}
	if !res.KS.Significant(0.01) {
		t.Errorf("KS missed a variance-only effect: p=%v", res.KS.P)
	}
}
