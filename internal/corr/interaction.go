package corr

import (
	"fmt"
	"math"

	"crowdscope/internal/stats"
)

// InteractionResult measures how the effect of one feature on a metric
// changes across strata of a second feature — the "interplay between
// various task parameters" the paper's Section 7 lists as future work.
// The primary feature's median-split effect is evaluated separately
// within the low and high strata of the moderator.
type InteractionResult struct {
	Feature   string
	Moderator string
	Metric    string

	// Low and High are the primary-feature results within the moderator's
	// low and high strata.
	Low, High Result

	// EffectLow and EffectHigh are the bin2/bin1 median ratios in each
	// stratum (1 = no effect).
	EffectLow, EffectHigh float64
}

// Amplified reports whether the effect is materially stronger (further
// from 1) in the high-moderator stratum.
func (r InteractionResult) Amplified(threshold float64) bool {
	if math.IsNaN(r.EffectLow) || math.IsNaN(r.EffectHigh) {
		return false
	}
	return math.Abs(math.Log(r.EffectHigh)) > math.Abs(math.Log(r.EffectLow))+math.Log(threshold)
}

// String summarizes the interaction.
func (r InteractionResult) String() string {
	return fmt.Sprintf("%s→%s within %s strata: effect %.3f (low) vs %.3f (high)",
		r.Feature, r.Metric, r.Moderator, r.EffectLow, r.EffectHigh)
}

// Interaction runs the stratified analysis over parallel vectors: feat is
// the primary feature, mod the moderator, metricVals the outcome.
func Interaction(feature, moderator, metric string, feat, mod, metricVals []float64) InteractionResult {
	if len(feat) != len(mod) || len(feat) != len(metricVals) {
		panic("corr: interaction length mismatch")
	}
	// Stratify at the moderator's median.
	modClean := make([]float64, 0, len(mod))
	for _, v := range mod {
		if !math.IsNaN(v) {
			modClean = append(modClean, v)
		}
	}
	cut := stats.Median(modClean)

	var loF, loM, hiF, hiM []float64
	for i := range feat {
		if math.IsNaN(mod[i]) {
			continue
		}
		if mod[i] <= cut {
			loF = append(loF, feat[i])
			loM = append(loM, metricVals[i])
		} else {
			hiF = append(hiF, feat[i])
			hiM = append(hiM, metricVals[i])
		}
	}
	res := InteractionResult{Feature: feature, Moderator: moderator, Metric: metric}
	res.Low = Run(feature, metric, SplitAtMedian, loF, loM)
	res.High = Run(feature, metric, SplitAtMedian, hiF, hiM)
	res.EffectLow = res.Low.Bin2.Median / res.Low.Bin1.Median
	res.EffectHigh = res.High.Bin2.Median / res.High.Bin1.Median
	return res
}
