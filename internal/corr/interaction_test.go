package corr

import (
	"math"
	"testing"

	"crowdscope/internal/rng"
)

// TestInteractionDetectsModeration: construct data where feature A only
// matters when moderator B is high.
func TestInteractionDetectsModeration(t *testing.T) {
	r := rng.New(91)
	n := 4000
	feat := make([]float64, n)
	mod := make([]float64, n)
	metric := make([]float64, n)
	for i := 0; i < n; i++ {
		feat[i] = r.Float64() * 10
		mod[i] = r.Float64() * 10
		base := 100.0
		if mod[i] > 5 && feat[i] > 5 {
			base = 40 // the effect only exists in the high-moderator stratum
		}
		metric[i] = r.LogNormalMedian(base, 0.15)
	}
	res := Interaction("A", "B", "m", feat, mod, metric)
	if !res.High.Significant() {
		t.Errorf("high-stratum effect not significant: p=%v", res.High.TTest.P)
	}
	if res.Low.Significant() {
		t.Errorf("low-stratum effect should be null: p=%v", res.Low.TTest.P)
	}
	if !res.Amplified(1.5) {
		t.Errorf("moderation not detected: low %.3f high %.3f", res.EffectLow, res.EffectHigh)
	}
	if res.EffectHigh > 0.8 {
		t.Errorf("high-stratum effect ratio = %.3f, want well below 1", res.EffectHigh)
	}
}

// TestInteractionNull: independent features show no amplification.
func TestInteractionNull(t *testing.T) {
	r := rng.New(92)
	n := 3000
	feat := make([]float64, n)
	mod := make([]float64, n)
	metric := make([]float64, n)
	for i := 0; i < n; i++ {
		feat[i] = r.Float64()
		mod[i] = r.Float64()
		metric[i] = r.Normal(10, 1)
	}
	res := Interaction("A", "B", "m", feat, mod, metric)
	if res.Amplified(1.3) {
		t.Errorf("null interaction amplified: low %.3f high %.3f", res.EffectLow, res.EffectHigh)
	}
	if res.Low.Significant() || res.High.Significant() {
		t.Error("null strata flagged significant")
	}
}

// TestInteractionUniformEffect: a feature effect present in both strata
// shows similar ratios.
func TestInteractionUniformEffect(t *testing.T) {
	r := rng.New(93)
	n := 4000
	feat := make([]float64, n)
	mod := make([]float64, n)
	metric := make([]float64, n)
	for i := 0; i < n; i++ {
		feat[i] = r.Float64() * 10
		mod[i] = r.Float64() * 10
		base := 100.0
		if feat[i] > 5 {
			base = 60
		}
		metric[i] = r.LogNormalMedian(base, 0.15)
	}
	res := Interaction("A", "B", "m", feat, mod, metric)
	if !res.Low.Significant() || !res.High.Significant() {
		t.Error("uniform effect should be significant in both strata")
	}
	if math.Abs(res.EffectLow-res.EffectHigh) > 0.15 {
		t.Errorf("uniform effect differs across strata: %.3f vs %.3f", res.EffectLow, res.EffectHigh)
	}
}

// TestInteractionNaNModeratorDropped: NaN moderator rows drop out.
func TestInteractionNaNModeratorDropped(t *testing.T) {
	feat := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	mod := []float64{1, 1, math.NaN(), 2, 2, math.NaN(), 1, 2}
	metric := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	res := Interaction("A", "B", "m", feat, mod, metric)
	total := res.Low.Bin1.Count + res.Low.Bin2.Count + res.High.Bin1.Count + res.High.Bin2.Count
	if total != 6 {
		t.Errorf("NaN moderator rows not dropped: %d observations", total)
	}
}

func TestInteractionPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Interaction("a", "b", "m", []float64{1}, []float64{1, 2}, []float64{1})
}
