// Package corr implements the correlation-analysis methodology of Section
// 4.2: cluster-level observations are split into two bins on a feature
// (at the median feature value, or zero-versus-positive for sparse
// features), the metric distributions of the bins are compared with
// Welch's t-test at p < 0.01, and paired CDFs are produced for
// visualization. It operates on plain vectors so any feature/metric pair
// from any assembly layer can be tested.
package corr

import (
	"fmt"
	"math"
	"sort"

	"crowdscope/internal/stats"
)

// Alpha is the significance threshold the paper uses (p < 0.01).
const Alpha = 0.01

// SplitKind selects the binning rule.
type SplitKind uint8

// Binning rules.
const (
	// SplitAtMedian bins clusters at the median feature value, balancing
	// ties (used for #words, #items).
	SplitAtMedian SplitKind = iota
	// SplitAtZero bins feature == 0 against feature > 0 (used for
	// #text-boxes, #examples, #images).
	SplitAtZero
)

// Result is the outcome of one {feature, metric} experiment.
type Result struct {
	Feature, Metric string
	Kind            SplitKind

	// SplitValue is the feature value separating the bins (the median for
	// SplitAtMedian, 0 for SplitAtZero).
	SplitValue float64

	// Bin1/Bin2 describe the low/zero and high/positive bins.
	Bin1, Bin2 Bin

	// TTest compares the metric samples of the bins (the paper's test).
	TTest stats.TTestResult

	// KS is a two-sample Kolmogorov-Smirnov cross-check: sensitive to any
	// CDF separation, matching the paper's CDF-plot methodology, where
	// the t-test only compares means.
	KS stats.KSTestResult
}

// Bin summarizes one side of the split.
type Bin struct {
	Label  string
	Count  int
	Median float64
	Mean   float64
	CDF    *stats.ECDF
}

// Significant reports whether the experiment found a statistically
// significant correlation at the paper's threshold.
func (r Result) Significant() bool { return r.TTest.Significant(Alpha) }

// String renders the result like a row of Tables 1-3.
func (r Result) String() string {
	return fmt.Sprintf("%s vs %s: %s (n=%d) median=%.4g | %s (n=%d) median=%.4g [p=%.2g]",
		r.Feature, r.Metric,
		r.Bin1.Label, r.Bin1.Count, r.Bin1.Median,
		r.Bin2.Label, r.Bin2.Count, r.Bin2.Median,
		r.TTest.P)
}

// Run executes one experiment over parallel feature/metric vectors.
// Observations with NaN metric values are dropped.
func Run(feature, metric string, kind SplitKind, featVals, metricVals []float64) Result {
	if len(featVals) != len(metricVals) {
		panic("corr: feature/metric length mismatch")
	}
	fv := make([]float64, 0, len(featVals))
	mv := make([]float64, 0, len(metricVals))
	for i := range featVals {
		if math.IsNaN(metricVals[i]) || math.IsNaN(featVals[i]) {
			continue
		}
		fv = append(fv, featVals[i])
		mv = append(mv, metricVals[i])
	}

	res := Result{Feature: feature, Metric: metric, Kind: kind}
	var low, high []float64
	switch kind {
	case SplitAtZero:
		res.SplitValue = 0
		for i, f := range fv {
			if f == 0 {
				low = append(low, mv[i])
			} else {
				high = append(high, mv[i])
			}
		}
		res.Bin1.Label = feature + " = 0"
		res.Bin2.Label = feature + " > 0"
	default:
		med := stats.Median(fv)
		res.SplitValue = med
		low, high = medianBalancedSplit(fv, mv, med)
		res.Bin1.Label = fmt.Sprintf("%s ≤ %.4g", feature, med)
		res.Bin2.Label = fmt.Sprintf("%s > %.4g", feature, med)
	}

	res.Bin1 = fillBin(res.Bin1, low)
	res.Bin2 = fillBin(res.Bin2, high)
	res.TTest = stats.WelchTTest(low, high)
	res.KS = stats.KSTest(low, high)
	return res
}

// medianBalancedSplit separates observations below/above the median;
// observations exactly at the median are distributed to keep the bins as
// balanced as possible (Section 4.2's tie rule).
func medianBalancedSplit(fv, mv []float64, med float64) (low, high []float64) {
	var ties []float64
	for i, f := range fv {
		switch {
		case f < med:
			low = append(low, mv[i])
		case f > med:
			high = append(high, mv[i])
		default:
			ties = append(ties, mv[i])
		}
	}
	for _, m := range ties {
		if len(low) <= len(high) {
			low = append(low, m)
		} else {
			high = append(high, m)
		}
	}
	return low, high
}

func fillBin(b Bin, vals []float64) Bin {
	b.Count = len(vals)
	b.Median = stats.Median(vals)
	b.Mean = stats.Mean(vals)
	b.CDF = stats.NewECDF(vals)
	return b
}

// Observation is one cluster-level row for the matrix runner.
type Observation struct {
	Features map[string]float64
	Metrics  map[string]float64
}

// Spec names one experiment for the matrix runner.
type Spec struct {
	Feature string
	Metric  string
	Kind    SplitKind
}

// RunMatrix executes a set of experiments over shared observations.
func RunMatrix(obs []Observation, specs []Spec) []Result {
	out := make([]Result, 0, len(specs))
	for _, sp := range specs {
		fv := make([]float64, len(obs))
		mv := make([]float64, len(obs))
		for i, o := range obs {
			f, okF := o.Features[sp.Feature]
			m, okM := o.Metrics[sp.Metric]
			if !okF {
				f = math.NaN()
			}
			if !okM {
				m = math.NaN()
			}
			fv[i], mv[i] = f, m
		}
		out = append(out, Run(sp.Feature, sp.Metric, sp.Kind, fv, mv))
	}
	return out
}

// MeanSplit is the ablation alternative to the median split: bins at the
// mean feature value. Heavy-tailed features (like #items) produce very
// unbalanced bins under it, which is why the paper splits at the median.
func MeanSplit(feature, metric string, featVals, metricVals []float64) Result {
	if len(featVals) != len(metricVals) {
		panic("corr: feature/metric length mismatch")
	}
	mean := stats.Mean(featVals)
	res := Result{Feature: feature, Metric: metric, Kind: SplitAtMedian, SplitValue: mean}
	var low, high []float64
	for i, f := range featVals {
		if math.IsNaN(metricVals[i]) {
			continue
		}
		if f <= mean {
			low = append(low, metricVals[i])
		} else {
			high = append(high, metricVals[i])
		}
	}
	res.Bin1 = fillBin(Bin{Label: fmt.Sprintf("%s ≤ mean %.4g", feature, mean)}, low)
	res.Bin2 = fillBin(Bin{Label: fmt.Sprintf("%s > mean %.4g", feature, mean)}, high)
	res.TTest = stats.WelchTTest(low, high)
	return res
}

// CDFSeries extracts up to n plot points from a result's two CDFs in the
// paper's layout: x = metric value, y = fraction of clusters at or below.
func CDFSeries(r Result, n int) (x1, y1, x2, y2 []float64) {
	x1, y1 = r.Bin1.CDF.Points(n)
	x2, y2 = r.Bin2.CDF.Points(n)
	return
}

// SortBySignificance orders results by ascending p-value (NaNs last).
func SortBySignificance(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool {
		pi, pj := rs[i].TTest.P, rs[j].TTest.P
		if math.IsNaN(pi) {
			return false
		}
		if math.IsNaN(pj) {
			return true
		}
		return pi < pj
	})
}
