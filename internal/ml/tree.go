// Package ml implements the predictive setting of Section 4.9: a CART
// decision-tree classifier over small design-feature sets, metric
// bucketization by range and by percentile, and k-fold cross-validation
// with exact and ±1-bucket accuracies. The standard library has no ML
// support, so the classifier is built here.
package ml

import (
	"math"
	"sort"
)

// TreeOptions bound tree growth.
type TreeOptions struct {
	MaxDepth    int
	MinLeaf     int // minimum samples per leaf
	MinImpurity float64
}

// DefaultTreeOptions mirrors a shallow sklearn-style default adequate for
// 3-4 feature problems.
func DefaultTreeOptions() TreeOptions {
	return TreeOptions{MaxDepth: 12, MinLeaf: 5, MinImpurity: 1e-7}
}

// Tree is a trained decision tree classifier.
type Tree struct {
	nodes []node
	// Classes is the number of distinct class labels.
	Classes int
}

type node struct {
	feature   int     // split feature; -1 for leaf
	threshold float64 // go left when x[feature] <= threshold
	left      int32
	right     int32
	label     int // majority class at this node
}

// Train fits a CART tree with Gini impurity on rows X (each a feature
// vector) and integer class labels y in [0, classes).
func Train(X [][]float64, y []int, classes int, opts TreeOptions) *Tree {
	if len(X) == 0 || len(X) != len(y) {
		panic("ml: empty or mismatched training data")
	}
	if opts.MaxDepth <= 0 {
		opts = DefaultTreeOptions()
	}
	t := &Tree{Classes: classes}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.grow(X, y, idx, 0, opts)
	return t
}

// grow builds the subtree over the sample subset idx and returns its node
// position.
func (t *Tree) grow(X [][]float64, y []int, idx []int, depth int, opts TreeOptions) int32 {
	pos := int32(len(t.nodes))
	counts := make([]int, t.Classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	label, impurity := majorityAndGini(counts, len(idx))
	t.nodes = append(t.nodes, node{feature: -1, label: label})

	if depth >= opts.MaxDepth || len(idx) < 2*opts.MinLeaf || impurity <= opts.MinImpurity {
		return pos
	}
	feat, thr, gain := t.bestSplit(X, y, idx, impurity, opts)
	if gain <= 0 {
		return pos
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < opts.MinLeaf || len(right) < opts.MinLeaf {
		return pos
	}
	l := t.grow(X, y, left, depth+1, opts)
	r := t.grow(X, y, right, depth+1, opts)
	t.nodes[pos].feature = feat
	t.nodes[pos].threshold = thr
	t.nodes[pos].left = l
	t.nodes[pos].right = r
	return pos
}

// bestSplit scans every feature for the Gini-optimal threshold.
func (t *Tree) bestSplit(X [][]float64, y []int, idx []int, parentGini float64, opts TreeOptions) (feat int, thr, gain float64) {
	feat = -1
	nFeat := len(X[idx[0]])
	n := len(idx)

	order := make([]int, n)
	for f := 0; f < nFeat; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })

		leftCounts := make([]int, t.Classes)
		rightCounts := make([]int, t.Classes)
		for _, i := range order {
			rightCounts[y[i]]++
		}
		for k := 0; k < n-1; k++ {
			i := order[k]
			leftCounts[y[i]]++
			rightCounts[y[i]]--
			if X[order[k]][f] == X[order[k+1]][f] {
				continue // can't split between equal values
			}
			nl, nr := k+1, n-k-1
			if nl < opts.MinLeaf || nr < opts.MinLeaf {
				continue
			}
			g := weightedGini(leftCounts, nl, rightCounts, nr)
			if improvement := parentGini - g; improvement > gain {
				gain = improvement
				feat = f
				thr = (X[order[k]][f] + X[order[k+1]][f]) / 2
			}
		}
	}
	return feat, thr, gain
}

func majorityAndGini(counts []int, n int) (label int, gini float64) {
	best := -1
	sumsq := 0.0
	for c, cnt := range counts {
		if cnt > best {
			best = cnt
			label = c
		}
		p := float64(cnt) / float64(n)
		sumsq += p * p
	}
	return label, 1 - sumsq
}

func weightedGini(lc []int, nl int, rc []int, nr int) float64 {
	_, gl := majorityAndGini(lc, nl)
	_, gr := majorityAndGini(rc, nr)
	n := float64(nl + nr)
	return float64(nl)/n*gl + float64(nr)/n*gr
}

// Predict returns the class of one feature vector.
func (t *Tree) Predict(x []float64) int {
	pos := int32(0)
	for {
		nd := &t.nodes[pos]
		if nd.feature < 0 {
			return nd.label
		}
		if x[nd.feature] <= nd.threshold {
			pos = nd.left
		} else {
			pos = nd.right
		}
	}
}

// Depth returns the tree's maximum depth (0 for a lone leaf).
func (t *Tree) Depth() int { return t.depth(0) }

func (t *Tree) depth(pos int32) int {
	nd := &t.nodes[pos]
	if nd.feature < 0 {
		return 0
	}
	l, r := t.depth(nd.left), t.depth(nd.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NumNodes returns the node count.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Bucketizer maps a continuous metric to one of n buckets by upper bounds.
type Bucketizer struct {
	// Bounds are ascending inclusive upper bounds; values above the last
	// bound clamp into the final bucket.
	Bounds []float64
}

// ByRange divides [min,max] of the values into n equal-width buckets
// (Section 4.9's "bucketization by range").
func ByRange(values []float64, n int) Bucketizer {
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	b := Bucketizer{Bounds: make([]float64, n)}
	for i := 0; i < n; i++ {
		b.Bounds[i] = lo + (hi-lo)*float64(i+1)/float64(n)
	}
	return b
}

// ByPercentile divides the values into n equal-count buckets (Section
// 4.9's "bucketization by percentiles").
func ByPercentile(values []float64, n int) Bucketizer {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	b := Bucketizer{Bounds: make([]float64, n)}
	for i := 0; i < n; i++ {
		q := float64(i+1) / float64(n)
		pos := int(math.Ceil(q*float64(len(sorted)))) - 1
		if pos < 0 {
			pos = 0
		}
		if pos >= len(sorted) {
			pos = len(sorted) - 1
		}
		b.Bounds[i] = sorted[pos]
	}
	return b
}

// Bucket maps a value to its bucket index in [0, len(Bounds)).
func (b Bucketizer) Bucket(v float64) int {
	i := sort.SearchFloat64s(b.Bounds, v)
	if i >= len(b.Bounds) {
		i = len(b.Bounds) - 1
	}
	return i
}

// Apply bucketizes a whole vector.
func (b Bucketizer) Apply(values []float64) []int {
	out := make([]int, len(values))
	for i, v := range values {
		out[i] = b.Bucket(v)
	}
	return out
}

// Counts returns the bucket occupancy of values.
func (b Bucketizer) Counts(values []float64) []int {
	out := make([]int, len(b.Bounds))
	for _, v := range values {
		out[b.Bucket(v)]++
	}
	return out
}

// CVResult reports cross-validated accuracies.
type CVResult struct {
	// Accuracy is the exact-bucket hit rate.
	Accuracy float64
	// WithinOne tolerates being one bucket off (the paper's ±1 metric).
	WithinOne float64
	// Folds is the number of folds evaluated.
	Folds int
}

// CrossValidate runs k-fold cross-validation of a tree classifier over X
// and integer labels y, reporting mean exact and ±1-bucket accuracy. The
// fold assignment is deterministic (round-robin) so results are
// reproducible.
func CrossValidate(X [][]float64, y []int, classes, k int, opts TreeOptions) CVResult {
	if k < 2 || len(X) < k {
		panic("ml: bad cross-validation setup")
	}
	var accSum, tolSum float64
	for fold := 0; fold < k; fold++ {
		var trX [][]float64
		var trY []int
		var teX [][]float64
		var teY []int
		for i := range X {
			if i%k == fold {
				teX = append(teX, X[i])
				teY = append(teY, y[i])
			} else {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		tree := Train(trX, trY, classes, opts)
		hit, tol := 0, 0
		for i := range teX {
			p := tree.Predict(teX[i])
			if p == teY[i] {
				hit++
			}
			if p-teY[i] <= 1 && teY[i]-p <= 1 {
				tol++
			}
		}
		accSum += float64(hit) / float64(len(teX))
		tolSum += float64(tol) / float64(len(teX))
	}
	return CVResult{Accuracy: accSum / float64(k), WithinOne: tolSum / float64(k), Folds: k}
}
