package ml

import (
	"math"
	"strings"
	"testing"

	"crowdscope/internal/rng"
)

func TestConfusionMatrixBasics(t *testing.T) {
	m := NewConfusionMatrix(3)
	m.Add(0, 0)
	m.Add(0, 0)
	m.Add(1, 1)
	m.Add(2, 1) // one bucket off
	m.Add(2, 0) // two buckets off
	if m.Total() != 5 {
		t.Errorf("Total = %d", m.Total())
	}
	if got := m.Accuracy(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := m.WithinOne(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("WithinOne = %v", got)
	}
	if got := m.Recall(0); got != 1 {
		t.Errorf("Recall(0) = %v", got)
	}
	if got := m.Recall(2); got != 0 {
		t.Errorf("Recall(2) = %v", got)
	}
	if got := m.Recall(99); got != 0 {
		t.Errorf("out-of-range recall = %v", got)
	}
	if !strings.Contains(m.String(), "acc") {
		t.Error("String() missing summary")
	}
}

func TestConfusionMatrixIgnoresOutOfRange(t *testing.T) {
	m := NewConfusionMatrix(2)
	m.Add(-1, 0)
	m.Add(0, 5)
	if m.Total() != 0 {
		t.Errorf("out-of-range observations counted: %d", m.Total())
	}
	if m.Accuracy() != 0 || m.WithinOne() != 0 {
		t.Error("empty matrix rates should be 0")
	}
}

func TestEvaluateFold(t *testing.T) {
	r := rng.New(111)
	var X [][]float64
	var y []int
	for i := 0; i < 600; i++ {
		v := r.Float64()
		X = append(X, []float64{v})
		y = append(y, int(v*3))
	}
	m := EvaluateFold(X[:400], y[:400], X[400:], y[400:], 4, DefaultTreeOptions())
	if m.Accuracy() < 0.9 {
		t.Errorf("fold accuracy = %v on separable data", m.Accuracy())
	}
	if m.WithinOne() < m.Accuracy() {
		t.Error("±1 below exact")
	}
}

func TestFeatureImportanceIdentifiesSignal(t *testing.T) {
	r := rng.New(112)
	var X [][]float64
	var y []int
	for i := 0; i < 1200; i++ {
		signal := r.Float64()
		noiseA := r.Float64()
		noiseB := r.Float64()
		X = append(X, []float64{noiseA, signal, noiseB})
		c := 0
		if signal > 0.5 {
			c = 1
		}
		y = append(y, c)
	}
	tree := Train(X, y, 2, DefaultTreeOptions())
	imp := tree.FeatureImportance(3)
	total := imp[0] + imp[1] + imp[2]
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("importances sum to %v", total)
	}
	if imp[1] < imp[0] || imp[1] < imp[2] {
		t.Errorf("signal feature not ranked first: %v", imp)
	}
	if imp[1] < 0.5 {
		t.Errorf("signal importance = %v, want dominant", imp[1])
	}
}

func TestFeatureImportanceLeafOnly(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}}
	y := []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	tree := Train(X, y, 2, DefaultTreeOptions())
	imp := tree.FeatureImportance(1)
	if imp[0] != 0 {
		t.Errorf("pure tree importance = %v, want 0", imp[0])
	}
}
