package ml

import (
	"fmt"
	"strings"
)

// ConfusionMatrix counts predicted-vs-true class pairs; rows are truth,
// columns are predictions.
type ConfusionMatrix struct {
	Classes int
	Counts  [][]int
}

// NewConfusionMatrix allocates a matrix for n classes.
func NewConfusionMatrix(n int) *ConfusionMatrix {
	m := &ConfusionMatrix{Classes: n, Counts: make([][]int, n)}
	for i := range m.Counts {
		m.Counts[i] = make([]int, n)
	}
	return m
}

// Add records one (truth, predicted) observation.
func (m *ConfusionMatrix) Add(truth, predicted int) {
	if truth >= 0 && truth < m.Classes && predicted >= 0 && predicted < m.Classes {
		m.Counts[truth][predicted]++
	}
}

// Total returns the number of recorded observations.
func (m *ConfusionMatrix) Total() int {
	t := 0
	for _, row := range m.Counts {
		for _, c := range row {
			t += c
		}
	}
	return t
}

// Accuracy returns the diagonal mass fraction.
func (m *ConfusionMatrix) Accuracy() float64 {
	total := m.Total()
	if total == 0 {
		return 0
	}
	diag := 0
	for i := 0; i < m.Classes; i++ {
		diag += m.Counts[i][i]
	}
	return float64(diag) / float64(total)
}

// WithinOne returns the near-diagonal mass fraction (|pred-truth| <= 1),
// the paper's ±1-bucket tolerance.
func (m *ConfusionMatrix) WithinOne() float64 {
	total := m.Total()
	if total == 0 {
		return 0
	}
	near := 0
	for i := 0; i < m.Classes; i++ {
		for j := 0; j < m.Classes; j++ {
			if j-i <= 1 && i-j <= 1 {
				near += m.Counts[i][j]
			}
		}
	}
	return float64(near) / float64(total)
}

// Recall returns per-class recall (NaN-free: classes with no truth
// observations report 0).
func (m *ConfusionMatrix) Recall(class int) float64 {
	if class < 0 || class >= m.Classes {
		return 0
	}
	rowTotal := 0
	for _, c := range m.Counts[class] {
		rowTotal += c
	}
	if rowTotal == 0 {
		return 0
	}
	return float64(m.Counts[class][class]) / float64(rowTotal)
}

// String renders the matrix compactly.
func (m *ConfusionMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion (%d classes, acc %.3f, ±1 %.3f)\n", m.Classes, m.Accuracy(), m.WithinOne())
	for i, row := range m.Counts {
		fmt.Fprintf(&b, "  t%-2d |", i)
		for _, c := range row {
			fmt.Fprintf(&b, " %5d", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// EvaluateFold trains on (trX, trY) and fills a confusion matrix over
// (teX, teY).
func EvaluateFold(trX [][]float64, trY []int, teX [][]float64, teY []int, classes int, opts TreeOptions) *ConfusionMatrix {
	tree := Train(trX, trY, classes, opts)
	m := NewConfusionMatrix(classes)
	for i := range teX {
		m.Add(teY[i], tree.Predict(teX[i]))
	}
	return m
}

// FeatureImportance sums the Gini impurity decrease contributed by each
// feature across the tree's internal splits, normalized to sum to 1.
// Section 4.9's small feature sets make this directly interpretable: it
// ranks which design parameters the predictor actually uses.
func (t *Tree) FeatureImportance(nFeatures int) []float64 {
	imp := make([]float64, nFeatures)
	t.accumulateImportance(0, 1.0, imp)
	total := 0.0
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// accumulateImportance walks the tree, crediting each split node's feature
// with the node's weight. Exact per-node impurity decreases are not stored
// at training time, so node weight (share of the tree's split mass,
// halving with depth) is the proxy: splits near the root matter most.
func (t *Tree) accumulateImportance(pos int32, weight float64, imp []float64) {
	nd := &t.nodes[pos]
	if nd.feature < 0 {
		return
	}
	if nd.feature < len(imp) {
		imp[nd.feature] += weight
	}
	t.accumulateImportance(nd.left, weight/2, imp)
	t.accumulateImportance(nd.right, weight/2, imp)
}
