package ml

import (
	"math"
	"testing"

	"crowdscope/internal/rng"
)

func TestTreeLearnsAxisSplit(t *testing.T) {
	// Class = 1 iff x0 > 0.5: a single split suffices.
	r := rng.New(81)
	var X [][]float64
	var y []int
	for i := 0; i < 500; i++ {
		x := []float64{r.Float64(), r.Float64()}
		c := 0
		if x[0] > 0.5 {
			c = 1
		}
		X = append(X, x)
		y = append(y, c)
	}
	tree := Train(X, y, 2, DefaultTreeOptions())
	errs := 0
	for i := range X {
		if tree.Predict(X[i]) != y[i] {
			errs++
		}
	}
	if errs > 5 {
		t.Errorf("training errors = %d on a separable problem", errs)
	}
	if tree.Depth() > 4 {
		t.Errorf("depth = %d for single-split problem", tree.Depth())
	}
}

func TestTreeLearnsXor(t *testing.T) {
	// XOR needs depth >= 2; a stump cannot express it.
	r := rng.New(82)
	var X [][]float64
	var y []int
	for i := 0; i < 800; i++ {
		a, b := r.Float64(), r.Float64()
		c := 0
		if (a > 0.5) != (b > 0.5) {
			c = 1
		}
		X = append(X, []float64{a, b})
		y = append(y, c)
	}
	tree := Train(X, y, 2, DefaultTreeOptions())
	errs := 0
	for i := range X {
		if tree.Predict(X[i]) != y[i] {
			errs++
		}
	}
	if frac := float64(errs) / float64(len(X)); frac > 0.05 {
		t.Errorf("XOR training error = %.3f", frac)
	}
}

func TestTreeConstantLabels(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}}
	y := []int{3, 3, 3, 3, 3, 3, 3, 3, 3, 3}
	tree := Train(X, y, 5, DefaultTreeOptions())
	if tree.NumNodes() != 1 {
		t.Errorf("pure labels grew %d nodes", tree.NumNodes())
	}
	if tree.Predict([]float64{42}) != 3 {
		t.Error("constant tree mispredicts")
	}
}

func TestTreeRespectsMinLeaf(t *testing.T) {
	r := rng.New(83)
	var X [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		x := r.Float64()
		c := 0
		if x > 0.5 {
			c = 1
		}
		// 5% label noise.
		if r.Bool(0.05) {
			c = 1 - c
		}
		X = append(X, []float64{x})
		y = append(y, c)
	}
	opts := TreeOptions{MaxDepth: 20, MinLeaf: 50, MinImpurity: 1e-9}
	tree := Train(X, y, 2, opts)
	if tree.Depth() > 2 {
		t.Errorf("MinLeaf=50 but depth = %d", tree.Depth())
	}
}

func TestTrainPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty training data should panic")
		}
	}()
	Train(nil, nil, 2, DefaultTreeOptions())
}

func TestByRangeBuckets(t *testing.T) {
	b := ByRange([]float64{0, 10}, 5)
	cases := []struct {
		v    float64
		want int
	}{{0, 0}, {1.9, 0}, {2, 0}, {2.1, 1}, {9.99, 4}, {10, 4}, {11, 4}, {-5, 0}}
	for _, c := range cases {
		if got := b.Bucket(c.v); got != c.want {
			t.Errorf("Bucket(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestByRangeDegenerateConstant(t *testing.T) {
	b := ByRange([]float64{7, 7, 7}, 10)
	if got := b.Bucket(7); got < 0 || got >= 10 {
		t.Errorf("constant-sample bucket = %d", got)
	}
}

func TestByPercentileBalance(t *testing.T) {
	r := rng.New(84)
	vals := make([]float64, 3000)
	for i := range vals {
		vals[i] = r.LogNormalMedian(100, 2)
	}
	b := ByPercentile(vals, 10)
	counts := b.Counts(vals)
	for i, c := range counts {
		if c < 200 || c > 400 {
			t.Errorf("percentile bucket %d holds %d of 3000", i, c)
		}
	}
}

func TestByRangeSkewConcentrates(t *testing.T) {
	// With a heavy-tailed metric, range bucketization puts nearly all
	// mass in bucket 0 — exactly the skew Section 4.9 reports.
	r := rng.New(85)
	vals := make([]float64, 3000)
	for i := range vals {
		vals[i] = r.Pareto(1, 0.9)
	}
	b := ByRange(vals, 10)
	counts := b.Counts(vals)
	if frac := float64(counts[0]) / 3000; frac < 0.9 {
		t.Errorf("bucket-0 mass = %.2f, expected ≥0.9 for Pareto values", frac)
	}
}

func TestBucketizerApply(t *testing.T) {
	b := ByRange([]float64{0, 100}, 4)
	out := b.Apply([]float64{10, 60, 99})
	want := []int{0, 2, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("Apply[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestCrossValidatePredictable(t *testing.T) {
	r := rng.New(86)
	var X [][]float64
	var y []int
	for i := 0; i < 600; i++ {
		a := r.Float64()
		b := r.Float64()
		c := 0
		if a > 0.66 {
			c = 2
		} else if a > 0.33 {
			c = 1
		}
		X = append(X, []float64{a, b})
		y = append(y, c)
	}
	res := CrossValidate(X, y, 3, 5, DefaultTreeOptions())
	if res.Folds != 5 {
		t.Errorf("Folds = %d", res.Folds)
	}
	if res.Accuracy < 0.9 {
		t.Errorf("CV accuracy = %.3f on a separable problem", res.Accuracy)
	}
	if res.WithinOne < res.Accuracy {
		t.Error("±1 accuracy cannot be below exact accuracy")
	}
}

func TestCrossValidateRandomLabels(t *testing.T) {
	r := rng.New(87)
	var X [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		X = append(X, []float64{r.Float64()})
		y = append(y, r.Intn(10))
	}
	res := CrossValidate(X, y, 10, 5, DefaultTreeOptions())
	// Random 10-class labels: accuracy should hover near 10%.
	if res.Accuracy > 0.25 {
		t.Errorf("CV accuracy = %.3f on random labels", res.Accuracy)
	}
}

func TestCrossValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=1 should panic")
		}
	}()
	CrossValidate([][]float64{{1}}, []int{0}, 2, 1, DefaultTreeOptions())
}

func TestWithinOneSemantics(t *testing.T) {
	// Construct a problem where the tree is usually one bucket off:
	// labels follow floor(10x) but training sees noisy features.
	r := rng.New(88)
	var X [][]float64
	var y []int
	for i := 0; i < 1000; i++ {
		x := r.Float64()
		bucket := int(x * 10)
		if bucket > 9 {
			bucket = 9
		}
		noisy := x + r.Normal(0, 0.05)
		X = append(X, []float64{noisy})
		y = append(y, bucket)
	}
	res := CrossValidate(X, y, 10, 5, DefaultTreeOptions())
	if res.WithinOne < res.Accuracy+0.1 {
		t.Errorf("±1 tolerance should add substantial accuracy here: exact=%.3f ±1=%.3f",
			res.Accuracy, res.WithinOne)
	}
	if math.IsNaN(res.Accuracy) {
		t.Fatal("NaN accuracy")
	}
}

func BenchmarkTrain(b *testing.B) {
	r := rng.New(89)
	var X [][]float64
	var y []int
	for i := 0; i < 3000; i++ {
		x := []float64{r.Float64() * 100, float64(r.Intn(3)), r.Float64(), float64(r.Intn(5))}
		y = append(y, int(x[0]/10))
		X = append(X, x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(X, y, 10, DefaultTreeOptions())
	}
}
