// Package cli holds the small conventions shared by the crowdscope
// command-line tools: a common error-to-exit-code taxonomy so scripts
// and CI can tell a damaged input from a missing one without parsing
// stderr.
package cli

import (
	"context"
	"errors"
	"io/fs"

	"crowdscope/internal/store"
)

// Exit codes shared by every crowdscope CLI.
const (
	ExitOK      = 0
	ExitError   = 1 // usage errors, bad flags, anything unclassified
	ExitCorrupt = 2 // input exists but is damaged (bad magic, checksum, truncation)
	ExitMissing = 3 // input file or shard does not exist

	// ExitInterrupted is the shell convention for death-by-SIGINT
	// (128+2): the run was cancelled, not wrong.
	ExitInterrupted = 130
)

// ExitCode maps an error from a CLI's run function onto the shared
// taxonomy. Classification is by errors.Is, so it survives any amount
// of %w wrapping; corruption is checked before absence because a
// dataset with a missing shard referenced by an intact manifest is
// reported by the store layer as the more specific sentinel it chose.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, store.ErrBadMagic),
		errors.Is(err, store.ErrBadVersion),
		errors.Is(err, store.ErrChecksum),
		errors.Is(err, store.ErrTruncated),
		errors.Is(err, store.ErrCorrupt):
		return ExitCorrupt
	case errors.Is(err, fs.ErrNotExist):
		return ExitMissing
	case errors.Is(err, context.Canceled):
		return ExitInterrupted
	}
	return ExitError
}
