package cli

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"testing"

	"crowdscope/internal/store"
)

func TestExitCodeTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, ExitOK},
		{"plain", errors.New("boom"), ExitError},
		{"bad magic", store.ErrBadMagic, ExitCorrupt},
		{"bad version", store.ErrBadVersion, ExitCorrupt},
		{"checksum", store.ErrChecksum, ExitCorrupt},
		{"truncated", store.ErrTruncated, ExitCorrupt},
		{"corrupt", store.ErrCorrupt, ExitCorrupt},
		{"missing", fs.ErrNotExist, ExitMissing},
		{"interrupted", context.Canceled, ExitInterrupted},
		{"wrapped interrupt", fmt.Errorf("query: %w", context.Canceled), ExitInterrupted},
		// The codes must survive the wrapping every CLI layer adds.
		{"wrapped corrupt", fmt.Errorf("load dataset x: %w",
			fmt.Errorf("shard 2: %w", store.ErrChecksum)), ExitCorrupt},
		{"wrapped missing", fmt.Errorf("open %s: %w", "nope.crow", fs.ErrNotExist), ExitMissing},
		// A manifest naming a shard that is gone classifies as missing,
		// not generic, even when the store layer wraps it.
		{"missing shard", fmt.Errorf("shard fix-00001.crow: %w", fs.ErrNotExist), ExitMissing},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("%s: ExitCode = %d, want %d", c.name, got, c.want)
		}
	}
}
