// Package synth generates a synthetic crowdsourcing-marketplace dataset
// calibrated to every aggregate statistic the paper reports. The real
// dataset is proprietary; this simulator substitutes for it by reproducing
// the published marginals — load burstiness, label mix, cluster-size
// skew, design-feature effect sizes, source quality spreads and worker
// engagement shapes — so that every downstream analysis exercises the same
// code paths on data with the same structure.
package synth

import "crowdscope/internal/model"

// sourceNames is the complete roster of 139 labor sources from Table 4 of
// the paper, in the table's reading order. The first ten are the
// marketplace's top contributors (Section 5.1).
var sourceNames = []string{
	"neodev", "clixsense", "prodege", "elite", "instagc", "tremorgames", "internal", "bitcoinget",
	"amt", "superrewards", "eup_slw", "gifthunterclub", "taskhunter", "prizerebel", "hiving", "fusioncash",
	"points2shop", "clicksfx", "getpaid", "cotter", "coinworker", "vivatic", "piyanstantrewards", "inboxpounds",
	"imerit_india", "personaly", "stuffpoint", "errtopc", "taskspay", "zoombucks", "crowdgur", "gifthulk",
	"tasks4dollars", "dollarsignup", "indivillagetest", "cbf", "mycashtasks", "sendearnings", "treasuretrooper", "pokerowned",
	"diamondtask", "pforads", "quickrewards", "uniquerewards", "extralunchmoney", "cashcrate", "wannads", "gptbanks",
	"listia", "gradible", "dailyrewardsca", "clickfair", "superpayme", "memolink", "rewardok", "snowcirrustechbpo",
	"pedtoclick", "rewardingways", "callmemoney", "pocketmoneygpt", "goldtasks", "dollarrewardz", "surveymad", "sharecashgpt",
	"irazoo", "zapbux", "ptcsolution", "ptc123", "content_runner", "jetbux", "qpr", "cointasker",
	"point_dollars", "meprizescf", "keeprewarding", "gptking", "dollarsgpt", "prizeplank", "yute_jamaica", "onestopgpt",
	"gptway", "trial_pay", "task_ph", "golddiggergpt", "prizezombie", "daproimafrica", "aceinnovations", "getpaidto",
	"globalactioncash", "piyoogle", "supersonicads", "poin_web", "rewardsspot", "giftgpt", "giftcardgpt", "northclicks",
	"fastcashgpt", "dealbarbiepays", "dailysurveypanel", "points4rewards", "gptpal", "rewards1", "new_rules", "surewardsgpt",
	"zorbor", "steamgameswap", "buxense", "surveywage", "offernation", "probux", "freeride", "ojooo",
	"luckytaskz", "medievaleurope", "proudclick", "steampowers", "paiddailysurveys", "wrkshop", "simplegpt", "realworld",
	"surveytokens", "bemybux", "onestop", "plusdollars", "gptbucks", "fepcrowdflower", "embee", "makethatdollar",
	"ayuwage", "luckykoin", "pointst", "sedgroup", "easycashclicks", "candy_ph", "piggybankgpt", "peoplesgpt",
	"matomy", "earnthemost", "fsprizes",
}

// topSourceWorkerShare fixes the worker-population share of the ten major
// sources (Section 5.1): together ≈86% of all workers, with neodev alone
// contributing ~27k of ~69k (≈39%), internal ≈2.5% and Mechanical Turk
// (amt) ≈1.5%.
var topSourceWorkerShare = map[string]float64{
	"neodev":       0.390,
	"clixsense":    0.150,
	"prodege":      0.090,
	"elite":        0.058,
	"instagc":      0.050,
	"tremorgames":  0.040,
	"internal":     0.025,
	"bitcoinget":   0.030,
	"amt":          0.015,
	"superrewards": 0.020,
}

// sourceProfile carries the per-source quality/engagement calibration used
// when instantiating the Source table and its workers.
type sourceProfile struct {
	trustMean   float64
	relTaskTime float64
	dedicated   bool
	// loadMult scales the task-propensity of the source's workers; it is
	// what separates dedicated >10k-tasks-per-worker sources from the 40%
	// of sources whose workers do ≤20 tasks each (Figure 26a).
	loadMult float64
	// countryBias, when set, pins most of the source's workers to one
	// country (Table 4's location-specific sources).
	countryBias string
}

// namedProfiles overrides the default profile for sources the paper
// discusses individually: amt's poor trust (0.75) and >5x relative task
// time (Figure 27), internal's small dedicated pool, and the
// geographically pinned sources.
var namedProfiles = map[string]sourceProfile{
	// The top ten are dedicated, high-quality (trust > 0.8, relative task
	// time < 1.5) — with the exception of Mechanical Turk.
	"neodev":       {trustMean: 0.91, relTaskTime: 1.05, dedicated: true, loadMult: 4.0},
	"clixsense":    {trustMean: 0.92, relTaskTime: 0.95, dedicated: true, loadMult: 5.0},
	"prodege":      {trustMean: 0.90, relTaskTime: 1.10, dedicated: true, loadMult: 4.5},
	"elite":        {trustMean: 0.89, relTaskTime: 1.00, dedicated: true, loadMult: 6.0},
	"instagc":      {trustMean: 0.88, relTaskTime: 1.20, dedicated: true, loadMult: 4.0},
	"tremorgames":  {trustMean: 0.87, relTaskTime: 1.15, dedicated: true, loadMult: 3.5},
	"internal":     {trustMean: 0.95, relTaskTime: 0.85, dedicated: true, loadMult: 1.5},
	"bitcoinget":   {trustMean: 0.86, relTaskTime: 1.30, dedicated: true, loadMult: 3.0},
	"amt":          {trustMean: 0.75, relTaskTime: 5.5, dedicated: false, loadMult: 2.0},
	"superrewards": {trustMean: 0.88, relTaskTime: 1.25, dedicated: true, loadMult: 2.5},
	// Location-pinned sources.
	"imerit_india":    {trustMean: 0.90, relTaskTime: 1.1, dedicated: true, loadMult: 8.0, countryBias: "India"},
	"yute_jamaica":    {trustMean: 0.84, relTaskTime: 1.4, dedicated: true, loadMult: 3.0, countryBias: "Jamaica"},
	"task_ph":         {trustMean: 0.85, relTaskTime: 1.3, dedicated: true, loadMult: 3.0, countryBias: "Philippines"},
	"candy_ph":        {trustMean: 0.82, relTaskTime: 1.5, dedicated: false, loadMult: 1.0, countryBias: "Philippines"},
	"daproimafrica":   {trustMean: 0.86, relTaskTime: 1.3, dedicated: true, loadMult: 4.0, countryBias: "Kenya"},
	"indivillagetest": {trustMean: 0.88, relTaskTime: 1.2, dedicated: true, loadMult: 5.0, countryBias: "India"},
	"medievaleurope":  {trustMean: 0.83, relTaskTime: 1.4, dedicated: false, loadMult: 0.8, countryBias: "Poland"},
	// Domain-specialized advertising/marketing traffic (Section 5.1).
	"ojooo": {trustMean: 0.78, relTaskTime: 2.0, dedicated: false, loadMult: 0.5},
	// The slowest tail: three sources with relative task time >= 10 and a
	// handful with trust below 0.5 (Figure 27c/f).
	"zapbux":         {trustMean: 0.45, relTaskTime: 11.0, dedicated: false, loadMult: 0.05},
	"jetbux":         {trustMean: 0.52, relTaskTime: 10.5, dedicated: false, loadMult: 0.05},
	"probux":         {trustMean: 0.48, relTaskTime: 12.0, dedicated: false, loadMult: 0.05},
	"ptc123":         {trustMean: 0.55, relTaskTime: 4.0, dedicated: false, loadMult: 0.08},
	"ptcsolution":    {trustMean: 0.60, relTaskTime: 3.5, dedicated: false, loadMult: 0.08},
	"pedtoclick":     {trustMean: 0.63, relTaskTime: 3.2, dedicated: false, loadMult: 0.10},
	"clickfair":      {trustMean: 0.66, relTaskTime: 3.1, dedicated: false, loadMult: 0.10},
	"northclicks":    {trustMean: 0.70, relTaskTime: 2.8, dedicated: false, loadMult: 0.12},
	"proudclick":     {trustMean: 0.72, relTaskTime: 2.4, dedicated: false, loadMult: 0.15},
	"buxense":        {trustMean: 0.74, relTaskTime: 2.2, dedicated: false, loadMult: 0.15},
	"zorbor":         {trustMean: 0.76, relTaskTime: 1.9, dedicated: false, loadMult: 0.2},
	"errtopc":        {trustMean: 0.77, relTaskTime: 1.8, dedicated: false, loadMult: 0.2},
	"pforads":        {trustMean: 0.79, relTaskTime: 1.7, dedicated: false, loadMult: 0.2},
	"fepcrowdflower": {trustMean: 0.89, relTaskTime: 1.1, dedicated: true, loadMult: 2.0},
}

// BuildSources instantiates the Source table. Unnamed sources get a
// default profile whose trust/latency/engagement vary deterministically by
// position so the cross-source spread matches Figure 27: most sources
// above 0.8 trust and near 1x latency, with decaying worker shares past
// the top ten.
func BuildSources() []model.Source {
	out := make([]model.Source, len(sourceNames))
	for i, name := range sourceNames {
		p, named := namedProfiles[name]
		if !named {
			// Deterministic default spread: trust 0.80..0.93, latency
			// 0.85..1.6, mostly on-demand with sparse dedicated pools.
			p = sourceProfile{
				trustMean:   0.80 + float64((i*7)%14)/100,
				relTaskTime: 0.85 + float64((i*5)%16)/20,
				dedicated:   i%9 == 3,
				loadMult:    0.8,
			}
			if p.dedicated {
				p.loadMult = 2.5
			}
		}
		out[i] = model.Source{
			ID:          uint16(i),
			Name:        name,
			Dedicated:   p.dedicated,
			TrustMean:   p.trustMean,
			RelTaskTime: p.relTaskTime,
			CountryBias: -1,
		}
		if p.countryBias != "" {
			if ci, ok := countryIndex(p.countryBias); ok {
				out[i].CountryBias = int16(ci)
			}
		}
	}
	return out
}

// sourceWorkerWeights returns the worker-population weight of every source:
// the fixed shares of the top ten plus a decaying tail over the remaining
// 129 (which together hold ≈13-14% of workers).
func sourceWorkerWeights() []float64 {
	w := make([]float64, len(sourceNames))
	tailTotal := 1.0
	for _, share := range topSourceWorkerShare {
		tailTotal -= share
	}
	// Harmonic-decay tail over the non-top sources.
	tailDenominator := 0.0
	rank := 0
	for _, name := range sourceNames {
		if _, top := topSourceWorkerShare[name]; !top {
			rank++
			tailDenominator += 1 / float64(rank)
		}
	}
	rank = 0
	for i, name := range sourceNames {
		if share, top := topSourceWorkerShare[name]; top {
			w[i] = share
		} else {
			rank++
			w[i] = tailTotal * (1 / float64(rank)) / tailDenominator
		}
	}
	return w
}

// loadMultiplier returns the engagement multiplier of source i, used when
// assigning per-worker task propensities.
func loadMultiplier(i int) float64 {
	name := sourceNames[i]
	if p, ok := namedProfiles[name]; ok {
		return p.loadMult
	}
	if i%9 == 3 {
		return 2.5
	}
	return 0.8
}
