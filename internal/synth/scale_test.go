package synth

import (
	"testing"

	"crowdscope/internal/stats"
)

// TestScaleInvariance checks that the headline shapes hold at a 5x larger
// scale than the default test fixture: the calibration must not be an
// artifact of one scale point.
func TestScaleInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("larger-scale generation")
	}
	d := Generate(Config{Seed: 2024, Scale: 0.1})

	// Volume scales linearly with the scale factor (within the floor
	// inflation bound).
	want := InstancesFull * 0.1
	if n := float64(d.Store.Len()); n < want*0.75 || n > want*1.35 {
		t.Errorf("instances at scale 0.1 = %.0f, want ~%.0f", n, want)
	}

	// Inventory counts must be scale-free.
	if len(d.Batches) < 40000 || len(d.Batches) > 75000 {
		t.Errorf("batches = %d", len(d.Batches))
	}
	if got := len(d.SampledBatchIDs()); got != SampledBatchesFull {
		t.Errorf("sampled = %d", got)
	}

	// Worker population scales; engagement shape holds.
	obs := d.ObservedWorkers()
	if len(obs) < 3000 {
		t.Fatalf("observed workers = %d", len(obs))
	}
	oneDay := 0
	for _, w := range obs {
		if w.Lifetime() == 1 {
			oneDay++
		}
	}
	if f := float64(oneDay) / float64(len(obs)); f < 0.38 || f > 0.68 {
		t.Errorf("one-day share at scale 0.1 = %.2f", f)
	}

	// Workload skew holds.
	counts := map[uint32]float64{}
	for _, w := range d.Store.Workers() {
		counts[w]++
	}
	loads := make([]float64, 0, len(counts))
	for _, c := range counts {
		loads = append(loads, c)
	}
	if share := stats.TopShare(loads, 0.10); share < 0.72 {
		t.Errorf("top-10%% share at scale 0.1 = %.2f", share)
	}

	if err := d.Store.Validate(); err != nil {
		t.Fatalf("store invalid at scale 0.1: %v", err)
	}
}
