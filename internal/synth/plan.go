package synth

import (
	"math"
	"runtime"
	"sync"

	"crowdscope/internal/model"
	"crowdscope/internal/par"
	"crowdscope/internal/rng"
	"crowdscope/internal/store"
)

// The generation pipeline splits the old single-threaded materialize loop
// into two phases around the one piece of genuinely shared mutable state,
// the worker-day quota pools:
//
//   plan     — prep (parallel): per sampled batch, size the batch and draw
//              every slot's pickup time from a per-batch split stream;
//              assign (sequential): walk batches in canonical order and
//              draw a worker per slot from the shared pools.
//   render   — (parallel): shard the planned batches into contiguous
//              batch-ID intervals, render instance rows into one
//              store.Builder per shard from per-batch split streams, seal,
//              and Assemble the segments in canonical batch order.
//
// Every random draw comes either from a stream consumed in a fixed
// sequential order (assign) or from a per-batch stream seeded independently
// of the shard layout (prep, render), so the produced log is row-for-row
// identical for any Config.Parallelism.

// batchPlan carries one sampled batch through the pipeline.
type batchPlan struct {
	id         uint32
	taskType   uint32
	q          float64 // per-answer deviation probability
	renderSeed uint64
	items, red int

	// slotStart is the drawn start time per (item, rep) slot, item-major;
	// filled by prep, consumed and released by assign.
	slotStart []int64

	// Assigned instances, parallel arrays in row order.
	item   []uint32
	worker []uint32
	start  []int64
	learn  []float64 // nil unless the learning extension is on
}

// shards resolves the configured parallelism: how many goroutines the prep
// and render phases fan out to. It never affects the generated data.
func (c Config) shards() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// mixSeed derives an independent per-batch stream seed from the phase base
// seed; one SplitMix64-style finalization decorrelates consecutive IDs
// before rng.New's own seeding chain.
func mixSeed(base, id, salt uint64) uint64 {
	x := base + id*0x9E3779B97F4A7C15 + salt*0xD1342543DE82EF95
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// physicalItems scales a batch's declared item count to the materialized
// volume. Small scales must not collapse batches to a single item: the
// disagreement metric needs enough answer pairs per batch to resolve
// values near 0.1, so keep at least minItemsFloor items (never more than
// declared). This slightly inflates volume below ~10% scale and is a no-op
// at full scale.
func physicalItems(declared int32, scale float64) int {
	phys := int(math.Round(float64(declared) * scale))
	if floor := int(declared); floor > minItemsFloor {
		floor = minItemsFloor
		if phys < floor {
			phys = floor
		}
	} else if phys < floor {
		phys = floor
	}
	if phys < 1 {
		phys = 1
	}
	return phys
}

// prepPlans builds the plan skeletons for every sampled batch: sizes,
// deviation probabilities, per-batch stream seeds, and the pickup draw for
// every slot. Each batch draws from its own split stream, so the fan-out
// is deterministic regardless of how batches land on goroutines.
func prepPlans(d *Dataset, stubs []batchStub, sampled []bool, seedBase uint64) []*batchPlan {
	idx := make([]int, 0, SampledBatchesFull)
	for i := range stubs {
		if sampled[i] {
			idx = append(idx, i)
		}
	}
	plans := make([]*batchPlan, len(idx))

	par.EachShard(len(idx), d.Cfg.shards(), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			i := idx[k]
			stb := &stubs[i]
			tt := &d.TaskTypes[stb.taskType]
			bp := &batchPlan{
				id:         uint32(i),
				taskType:   stb.taskType,
				q:          deviationProb(tt.Ambiguity),
				renderSeed: mixSeed(seedBase, uint64(i), 2),
				items:      physicalItems(stb.declaredItems, d.Cfg.Scale),
				red:        int(stb.redundancy),
			}
			pickRand := rng.New(mixSeed(seedBase, uint64(i), 1))
			bp.slotStart = make([]int64, bp.items*bp.red)
			maxStart := model.Horizon.Unix() - 3600
			for s := range bp.slotStart {
				pickup := pickRand.LogNormalMedian(stb.pickupMedian, 1.1)
				start := stb.createdSec + int64(pickup)
				// The observation window closes at the horizon;
				// instances that would start beyond it are picked up at
				// the very end instead (the real dataset likewise only
				// contains observed work).
				if start > maxStart {
					start = maxStart
				}
				bp.slotStart[s] = start
			}
			plans[k] = bp
		}
	})
	return plans
}

// assignWorkers is the sequential heart of the plan phase: it walks the
// slots in canonical (batch, item, rep) order and draws a worker active on
// each slot's day from the shared quota pools. Each instance first has its
// pickup delay (when a worker starts it), then picks a worker who is
// active on that day — matching how real pickup works: a batch created
// today may be picked up weeks later by whoever is around then.
func assignWorkers(r *rng.Rand, d *Dataset, pools *dayPools, plans []*batchPlan, spend float64) {
	if d.Cfg.LearningGamma > 0 {
		d.experience = make([]float64, len(d.Workers))
	}
	var chosen []uint32
	for _, bp := range plans {
		n := len(bp.slotStart)
		bp.item = make([]uint32, 0, n)
		bp.worker = make([]uint32, 0, n)
		bp.start = make([]int64, 0, n)
		if d.experience != nil {
			bp.learn = make([]float64, 0, n)
		}
		for item := 0; item < bp.items; item++ {
			chosen = chosen[:0]
			for rep := 0; rep < bp.red; rep++ {
				start := bp.slotStart[item*bp.red+rep]
				day := model.DayOfUnix(start)
				wid, ok := pools.drawOne(r, day, chosen, spend)
				if !ok {
					continue
				}
				chosen = append(chosen, wid)
				bp.item = append(bp.item, uint32(item))
				bp.worker = append(bp.worker, wid)
				bp.start = append(bp.start, start)
				if bp.learn != nil {
					bp.learn = append(bp.learn, d.learningFactor(wid))
				}
			}
		}
		bp.slotStart = nil // release the skeleton as soon as it's consumed
	}
}

// renderPlans is the parallel materialize phase: contiguous shards of
// planned batches render into per-shard segment builders, and the sealed
// segments merge — in canonical batch order — into the analysis store.
func renderPlans(d *Dataset, plans []*batchPlan, numBatches int) *store.Store {
	if len(plans) == 0 {
		return store.New(numBatches)
	}
	nsh := d.Cfg.shards()
	if nsh > len(plans) {
		nsh = len(plans)
	}
	if nsh < 1 {
		nsh = 1
	}
	cuts := shardCuts(plans, nsh)
	segs := make([]*store.Segment, len(cuts)-1)
	var wg sync.WaitGroup
	for k := 0; k+1 < len(cuts); k++ {
		batchLo := uint32(0)
		if k > 0 {
			batchLo = plans[cuts[k]].id
		}
		batchHi := uint32(numBatches)
		if k+2 < len(cuts) {
			batchHi = plans[cuts[k+1]].id
		}
		wg.Add(1)
		go func(k int, batchLo, batchHi uint32) {
			defer wg.Done()
			bld := store.NewBuilder(batchLo, batchHi)
			for _, bp := range plans[cuts[k]:cuts[k+1]] {
				renderBatch(d, bp, bld)
			}
			segs[k] = bld.Seal()
		}(k, batchLo, batchHi)
	}
	wg.Wait()
	st, err := store.Assemble(numBatches, segs)
	if err != nil {
		// Shard intervals are contiguous ascending by construction.
		panic("synth: segment assembly failed: " + err.Error())
	}
	return st
}

// shardCuts partitions plans into nsh contiguous groups of roughly equal
// instance counts; returns len nsh+1 ascending indexes with cuts[0]=0 and
// cuts[nsh]=len(plans).
func shardCuts(plans []*batchPlan, nsh int) []int {
	total := 0
	for _, bp := range plans {
		total += len(bp.item)
	}
	cuts := make([]int, 1, nsh+1)
	acc := 0
	for i, bp := range plans {
		if len(cuts) == nsh {
			break
		}
		acc += len(bp.item)
		if acc*nsh >= total*len(cuts) && i+1 < len(plans) {
			cuts = append(cuts, i+1)
		}
	}
	return append(cuts, len(plans))
}

// renderBatch writes one planned batch's instance rows. All draws come
// from the batch's own render stream, so batches render identically no
// matter which shard or goroutine hosts them.
func renderBatch(d *Dataset, bp *batchPlan, bld *store.Builder) {
	r := rng.New(bp.renderSeed)
	tt := &d.TaskTypes[bp.taskType]
	bld.BeginBatch(bp.id)
	for i := range bp.item {
		wid := bp.worker[i]
		w := &d.Workers[wid]

		dur := r.LogNormalMedian(tt.BaseTaskSecs*w.Speed, 0.5)
		if bp.learn != nil {
			dur *= bp.learn[i]
		}
		if dur < 1 {
			dur = 1
		}
		start := bp.start[i]

		ans := answerToken(bp.id, bp.item[i], 0)
		qi := bp.q * (0.5 + w.ErrRate*5)
		if qi > 0.95 {
			qi = 0.95
		}
		if r.Bool(qi) {
			ans = answerToken(bp.id, bp.item[i], 1+uint32(r.Intn(3)))
		}

		trust := clampFloat(w.TrustMean+0.025*r.NormFloat64(), 0, 1)

		bld.Append(model.Instance{
			Batch:    bp.id,
			TaskType: tt.ID,
			Item:     bp.item[i],
			Worker:   wid,
			Start:    start,
			End:      start + int64(dur),
			Trust:    float32(trust),
			Answer:   ans,
		})
	}
}
