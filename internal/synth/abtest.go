package synth

import (
	"math"

	"crowdscope/internal/metrics"
	"crowdscope/internal/model"
	"crowdscope/internal/rng"
	"crowdscope/internal/stats"
)

// The paper's Section 7 names full-fledged A/B testing as the way to turn
// its correlational findings into causal ones. ABTest provides that
// harness over the simulator: the same unit of work is issued under two
// interface designs to the same worker pool over the same days, so any
// metric difference between the arms is caused by the design.

// ABConfig configures a randomized controlled design experiment.
type ABConfig struct {
	// Seed drives the whole experiment deterministically.
	Seed uint64
	// DesignA and DesignB are the two interface variants under test.
	DesignA, DesignB model.DesignParams
	// Labels is the shared task classification (goal/operator/data).
	Labels model.Labels
	// BatchesPerArm is the number of batches issued per design
	// (default 40).
	BatchesPerArm int
	// ItemsPerBatch is the physical batch size (default 30).
	ItemsPerBatch int
	// Redundancy is answers per item (default 5).
	Redundancy int
	// Workers is the shared worker-pool size (default 800).
	Workers int
}

func (c *ABConfig) fillDefaults() {
	if c.BatchesPerArm <= 0 {
		c.BatchesPerArm = 40
	}
	if c.ItemsPerBatch <= 0 {
		c.ItemsPerBatch = 30
	}
	if c.Redundancy <= 0 {
		c.Redundancy = 5
	}
	if c.Workers <= 0 {
		c.Workers = 800
	}
}

// ABArm holds one arm's per-batch metric samples and medians.
type ABArm struct {
	Design model.DesignParams

	// Per-batch samples (the unit of statistical comparison).
	Disagreements []float64
	TaskTimes     []float64
	PickupTimes   []float64

	// Medians across batches.
	MedianDisagreement float64
	MedianTaskTime     float64
	MedianPickupTime   float64
}

// ABResult compares the two arms with Welch t-tests per metric.
type ABResult struct {
	A, B ABArm

	Disagreement stats.TTestResult
	TaskTime     stats.TTestResult
	PickupTime   stats.TTestResult
}

// RunAB executes the experiment: a shared worker pool serves interleaved
// batches of both designs over the same day range, and per-batch metrics
// are compared across arms.
func RunAB(cfg ABConfig) ABResult {
	cfg.fillDefaults()
	root := rng.New(cfg.Seed)

	sources := BuildSources()
	workers := BuildWorkers(root.Split(1), sources, cfg.Workers)
	// Pin every worker's window to the experiment span so the pool is
	// identical for both arms.
	startDay := model.PostBoomWeek * 7
	spanDays := int32(28)
	for i := range workers {
		workers[i].FirstDay = startDay
		workers[i].LastDay = startDay + spanDays - 1
	}
	quota := workloadWeights(root.Split(2), workers)
	pools := newDayPools(workers, quota)

	// Build the two latent task types from the designs through the same
	// causal model the marketplace uses.
	mkType := func(id uint32, d model.DesignParams) model.TaskType {
		tt := model.TaskType{ID: id, Labels: cfg.Labels, Design: d}
		applyMetricModelDeterministic(&tt, primaryGoal(cfg.Labels.Goals))
		return tt
	}
	ttA := mkType(0, cfg.DesignA)
	ttB := mkType(1, cfg.DesignB)

	totalDraws := float64(2 * cfg.BatchesPerArm * cfg.ItemsPerBatch * cfg.Redundancy)
	totalQuota := 0.0
	for _, q := range quota {
		totalQuota += q
	}
	spend := totalQuota / totalDraws

	// Issue the interleaved arm batches through the same two-phase
	// pipeline the marketplace generator uses: parallel prep, sequential
	// pool assignment, parallel segment render.
	batchID := uint32(2 * cfg.BatchesPerArm)
	stubs := make([]batchStub, 0, batchID)
	sampled := make([]bool, 0, batchID)
	for b := 0; b < cfg.BatchesPerArm; b++ {
		for arm := 0; arm < 2; arm++ {
			tt := &ttA
			if arm == 1 {
				tt = &ttB
			}
			day := startDay + int32(b)%spanDays
			stubs = append(stubs, batchStub{
				taskType:      tt.ID,
				day:           day,
				createdSec:    model.DayUnix(day) + 8*3600,
				declaredItems: int32(cfg.ItemsPerBatch),
				redundancy:    int16(cfg.Redundancy),
				pickupMedian:  tt.BasePickupSecs,
			})
			sampled = append(sampled, true)
		}
	}

	ds := &Dataset{
		Cfg:       Config{Seed: cfg.Seed, Scale: 1},
		Workers:   workers,
		TaskTypes: []model.TaskType{ttA, ttB},
	}
	seedBase := root.Split(3).Uint64()
	assignRand := root.Split(4)
	plans := prepPlans(ds, stubs, sampled, seedBase)
	assignWorkers(assignRand, ds, pools, plans, spend)
	st := renderPlans(ds, plans, len(stubs))

	res := ABResult{A: ABArm{Design: cfg.DesignA}, B: ABArm{Design: cfg.DesignB}}
	for id := uint32(0); id < batchID; id++ {
		bm := metrics.ComputeBatch(st, id)
		if !bm.Valid() {
			continue
		}
		arm := &res.A
		if id%2 == 1 {
			arm = &res.B
		}
		if bm.Pairs > 0 && !math.IsNaN(bm.Disagreement) {
			arm.Disagreements = append(arm.Disagreements, bm.Disagreement)
		}
		arm.TaskTimes = append(arm.TaskTimes, bm.TaskTime)
		arm.PickupTimes = append(arm.PickupTimes, bm.PickupTime)
	}
	for _, arm := range []*ABArm{&res.A, &res.B} {
		arm.MedianDisagreement = stats.Median(arm.Disagreements)
		arm.MedianTaskTime = stats.Median(arm.TaskTimes)
		arm.MedianPickupTime = stats.Median(arm.PickupTimes)
	}
	res.Disagreement = stats.WelchTTest(res.A.Disagreements, res.B.Disagreements)
	res.TaskTime = stats.WelchTTest(res.A.TaskTimes, res.B.TaskTimes)
	res.PickupTime = stats.WelchTTest(res.A.PickupTimes, res.B.PickupTimes)
	return res
}

// applyMetricModelDeterministic maps a design to its latent metric levels
// without sampling noise: in an A/B test the design is the only treatment,
// so the arms differ exactly by the causal effect sizes.
func applyMetricModelDeterministic(tt *model.TaskType, g model.Goal) {
	d := tt.Design

	dis := disagreeBase * ambiguityByGoal[g]
	dis *= math.Pow(float64(maxI(d.Words, 1))/wordsMedian, disagreeWordsExp)
	dis *= math.Pow(float64(maxI(d.Items, 1))/itemsMedian, disagreeItemsExp)
	if d.TextBoxes > 0 {
		dis *= disagreeTextBoxF
	}
	if d.Examples > 0 {
		dis *= disagreeExampleF
	}
	tt.Ambiguity = clampFloat(dis, 0.002, 0.72)

	tsecs := taskTimeBaseSecs
	tsecs *= math.Pow(float64(maxI(d.Items, 1))/itemsMedian, taskTimeItemsExp)
	if d.TextBoxes > 0 {
		tsecs *= taskTimeTextBoxF
	}
	if d.Images > 0 {
		tsecs *= taskTimeImageF
	}
	tt.BaseTaskSecs = clampFloat(tsecs, 3, 9000)

	psecs := pickupBaseSecs
	psecs *= math.Pow(float64(maxI(d.Items, 1))/itemsMedian, pickupItemsExp)
	if d.Examples > 0 {
		psecs *= pickupExampleF
	}
	if d.Images > 0 {
		psecs *= pickupImageF
	}
	tt.BasePickupSecs = clampFloat(psecs, 10, 1.6e7)
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
