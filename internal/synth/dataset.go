package synth

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"crowdscope/internal/htmlgen"
	"crowdscope/internal/model"
	"crowdscope/internal/rng"
	"crowdscope/internal/store"
)

// InstancesFull is the full-scale sampled-instance volume (~27M,
// Section 2.2); planning constants derive from it.
const InstancesFull = 27e6

// minItemsFloor bounds how far scaling may shrink a batch's item count;
// see materializeBatch.
const minItemsFloor = 6

// Config parameterizes dataset generation.
type Config struct {
	// Seed makes the whole dataset reproducible.
	Seed uint64
	// Scale in (0,1] scales the materialized instance volume and worker
	// population; batch/task/source/country inventories stay full-size so
	// the structural distributions (cluster sizes, label mixes, arrival
	// shapes) are preserved. Scale 1 ≈ 27M instances and ~69k workers.
	Scale float64
	// LearningGamma enables the worker-learning extension (Section 7
	// names "worker learning" as future work): a worker's task time
	// shrinks with accumulated experience as (1 + done/learningHalf)^-γ.
	// Zero disables learning (the paper-faithful default).
	LearningGamma float64
	// Parallelism bounds the goroutine fan-out of the generation
	// pipeline's parallel phases (batch prep and segment rendering).
	// Zero or negative means GOMAXPROCS; 1 forces the serial reference
	// path. The generated dataset is row-for-row identical for every
	// value — parallelism only changes how fast it is produced.
	Parallelism int
}

// learningHalf is the experience count at which the learning factor
// reaches 2^-γ.
const learningHalf = 64.0

// DefaultConfig returns a laptop-friendly configuration (~2% scale,
// ≈0.5M instances).
func DefaultConfig() Config { return Config{Seed: 1701, Scale: 0.02} }

// Dataset is a complete synthetic marketplace: the inventory tables plus
// the columnar instance log for the sampled batches. It corresponds to
// what the marketplace shared with the authors (Section 2.3): full data
// for the sample, title/date metadata for the rest.
type Dataset struct {
	Cfg       Config
	Sources   []model.Source
	Countries []string
	Workers   []model.Worker
	TaskTypes []model.TaskType
	Batches   []model.Batch
	Store     *store.Store

	htmlSeed uint64
	// experience tracks per-worker completed instances when the
	// worker-learning extension is enabled.
	experience []float64
}

// Hash fingerprints the parts of the configuration that determine the
// generated data, for snapshot provenance: a reloaded instance log can be
// checked against the config a pipeline is about to analyze it under.
// Parallelism is deliberately excluded — it never changes the rows.
func (c Config) Hash() uint64 {
	h := fnv.New64a()
	binary.Write(h, binary.LittleEndian, c.Seed)
	binary.Write(h, binary.LittleEndian, c.Scale)
	binary.Write(h, binary.LittleEndian, c.LearningGamma)
	return h.Sum64()
}

// Generate builds a dataset from the configuration. Generation is
// deterministic in Config.
func Generate(cfg Config) *Dataset {
	d, stubs, sampled, matRand := newInventory(cfg)
	d.Store = materialize(matRand, d, stubs, sampled)
	observeWorkerActivity(d)
	return d
}

// Inventory regenerates only the deterministic inventory tables
// (sources, countries, workers, task types, batches) for the
// configuration, without materializing the instance log. This is what a
// query needs to join a snapshot or sharded dataset against worker and
// batch attributes: the tables depend only on Config, so any consumer
// holding the generation parameters can rebuild them in milliseconds.
// Workers lack the observed FirstDay/LastDay activity bounds (those
// come from the materialized log); the static attributes — source,
// country, engagement class — are exact.
func Inventory(cfg Config) *Dataset {
	d, _, _, _ := newInventory(cfg)
	return d
}

// Rehydrate rebuilds a dataset around an instance log restored from a
// snapshot: the inventory tables (sources, countries, workers, task
// types, batches) regenerate deterministically from the config — exactly
// as Generate builds them — and the given store stands in for the
// materialization phase. Snapshot provenance (when present) is the
// caller's first line of defense against a config mismatch; because
// pre-v3 snapshots carry none, Rehydrate additionally refuses any store
// whose worker or batch IDs fall outside the regenerated inventory
// instead of letting downstream indexing panic. With a matching store
// the result is indistinguishable from Generate's.
func Rehydrate(cfg Config, st *store.Store) (*Dataset, error) {
	d, _, _, _ := newInventory(cfg)
	if st.NumBatches() > len(d.Batches) {
		return nil, fmt.Errorf("synth: snapshot holds %d batch ranges but seed %d / scale %g generates %d batches — was it written under a different config?",
			st.NumBatches(), cfg.Seed, cfg.Scale, len(d.Batches))
	}
	nw := uint32(len(d.Workers))
	nb := uint32(len(d.Batches))
	workers, batches := st.Workers(), st.Batches()
	for i := range workers {
		if workers[i] >= nw {
			return nil, fmt.Errorf("synth: snapshot row %d references worker %d but seed %d / scale %g generates only %d workers — was it written under a different config?",
				i, workers[i], cfg.Seed, cfg.Scale, nw)
		}
		if batches[i] >= nb {
			return nil, fmt.Errorf("synth: snapshot row %d references batch %d but seed %d / scale %g generates only %d batches — was it written under a different config?",
				i, batches[i], cfg.Seed, cfg.Scale, nb)
		}
	}
	d.Store = st
	observeWorkerActivity(d)
	return d, nil
}

// newInventory builds everything that precedes instance materialization.
// The rng.Split sequence must stay identical between callers: Split mixes
// the receiver's stream position, so inventory content depends on the
// order of these calls.
func newInventory(cfg Config) (*Dataset, []batchStub, []bool, *rng.Rand) {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		panic(fmt.Sprintf("synth: scale %v out of (0,1]", cfg.Scale))
	}
	root := rng.New(cfg.Seed)

	d := &Dataset{
		Cfg:       cfg,
		Sources:   BuildSources(),
		Countries: CountryNames(),
		htmlSeed:  cfg.Seed ^ 0xC0FFEE,
	}

	d.TaskTypes = BuildCatalog(root.Split(1))

	nWorkers := int(float64(NumWorkersFull) * cfg.Scale)
	if nWorkers < 300 {
		nWorkers = 300
	}
	d.Workers = BuildWorkers(root.Split(2), d.Sources, nWorkers)

	schedRand := root.Split(3)
	stubs, _ := buildSchedule(schedRand, d.TaskTypes)
	sampled := chooseSampled(root.Split(4), stubs, d.TaskTypes, SampledBatchesFull)

	d.Batches = make([]model.Batch, len(stubs))
	for i, st := range stubs {
		tt := &d.TaskTypes[st.taskType]
		d.Batches[i] = model.Batch{
			ID:         uint32(i),
			TaskType:   st.taskType,
			CreatedAt:  time.Unix(st.createdSec, 0).UTC(),
			Items:      st.declaredItems,
			Redundancy: st.redundancy,
			Sampled:    sampled[i],
			Title:      batchTitle(tt),
		}
	}
	return d, stubs, sampled, root.Split(5)
}

// batchTitle writes a short textual description like the one-sentence
// batch metadata in the real dataset.
func batchTitle(tt *model.TaskType) string {
	return fmt.Sprintf("%s task (%s on %s)", primaryGoal(tt.Goals).LongName(), tt.Operators.String(), tt.Data.String())
}

// BatchHTML renders the sample task page of a batch on demand; batches of
// the same task type render near-identical pages, as the clustering step
// requires. Only sampled batches expose HTML (the paper had HTML for the
// 12k sample only).
func (d *Dataset) BatchHTML(batchID uint32) (string, bool) {
	if int(batchID) >= len(d.Batches) {
		return "", false
	}
	b := &d.Batches[batchID]
	if !b.Sampled {
		return "", false
	}
	tt := d.TaskTypes[b.TaskType]
	return htmlgen.Render(tt, htmlgen.Options{
		Seed:     d.htmlSeed + uint64(tt.ID)*2654435761,
		BatchTag: fmt.Sprintf("%08x", batchID),
	}), true
}

// SampledBatchIDs returns the IDs of the fully visible batches.
func (d *Dataset) SampledBatchIDs() []uint32 {
	out := make([]uint32, 0, SampledBatchesFull)
	for i := range d.Batches {
		if d.Batches[i].Sampled {
			out = append(out, uint32(i))
		}
	}
	return out
}

// ObservedWorkers returns the workers that performed at least one sampled
// instance — the population every worker analysis runs on.
func (d *Dataset) ObservedWorkers() []model.Worker {
	out := make([]model.Worker, 0, len(d.Workers))
	for i := range d.Workers {
		if d.Workers[i].LastDay >= d.Workers[i].FirstDay && d.Workers[i].FirstDay >= 0 {
			out = append(out, d.Workers[i])
		}
	}
	return out
}

// materialize generates the instance rows for every sampled batch through
// the two-phase pipeline (see plan.go): a plan phase — parallel per-batch
// prep plus the sequential worker-day pool assignment — and a parallel
// render phase that fills per-shard segment builders and assembles them in
// canonical batch order.
func materialize(r *rng.Rand, d *Dataset, stubs []batchStub, sampled []bool) *store.Store {
	// Assignment pools: per-worker quota proportional to workload weight.
	quota := workloadWeights(r.Split(11), d.Workers)
	totalQuota := 0.0
	for _, q := range quota {
		totalQuota += q
	}
	plannedDraws := InstancesFull * d.Cfg.Scale
	spend := totalQuota / plannedDraws
	pools := newDayPools(d.Workers, quota)

	assignRand := r.Split(12)
	seedBase := r.Split(13).Uint64()

	plans := prepPlans(d, stubs, sampled, seedBase)
	assignWorkers(assignRand, d, pools, plans, spend)
	return renderPlans(d, plans, len(stubs))
}

// learningFactor returns the task-time multiplier for a worker's next
// instance and advances their experience counter.
func (d *Dataset) learningFactor(wid uint32) float64 {
	if d.experience == nil {
		return 1
	}
	done := d.experience[wid]
	d.experience[wid] = done + 1
	return math.Pow(1+done/learningHalf, -d.Cfg.LearningGamma)
}

// deviationProb inverts E[pair disagreement] = 1 - [(1-q)^2 + q^2/3] for
// q, clamping at the model's 0.75 maximum.
func deviationProb(d float64) float64 {
	if d <= 0 {
		return 0
	}
	if d >= 0.74 {
		d = 0.74
	}
	return 0.75 * (1 - math.Sqrt(1-4*d/3))
}

// answerToken encodes an answer as truth (alt=0) or one of three
// alternates per (batch,item).
func answerToken(batch, item, alt uint32) uint32 {
	h := batch*2654435761 + item*40503 + alt
	return h&0xFFFFFFF0 | alt
}

// observeWorkerActivity overwrites each worker's activity window with the
// observed first/last instance days; workers with no instances get an
// empty (invalid) window so ObservedWorkers excludes them.
func observeWorkerActivity(d *Dataset) {
	first := make([]int32, len(d.Workers))
	last := make([]int32, len(d.Workers))
	for i := range first {
		first[i] = math.MaxInt32
		last[i] = -1
	}
	starts := d.Store.Starts()
	workers := d.Store.Workers()
	for i, sec := range starts {
		day := model.DayOfUnix(sec)
		w := workers[i]
		if day < first[w] {
			first[w] = day
		}
		if day > last[w] {
			last[w] = day
		}
	}
	for i := range d.Workers {
		if last[i] < 0 {
			d.Workers[i].FirstDay, d.Workers[i].LastDay = -1, -2
		} else {
			d.Workers[i].FirstDay, d.Workers[i].LastDay = first[i], last[i]
		}
	}
}
