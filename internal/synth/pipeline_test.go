package synth

import (
	"testing"
	"testing/quick"

	"crowdscope/internal/store"
)

// equalStores compares two stores column by column, element for element,
// including the batch range tables.
func equalStores(t *testing.T, label string, a, b *store.Store) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: row counts differ: %d vs %d", label, a.Len(), b.Len())
	}
	if a.NumBatches() != b.NumBatches() {
		t.Fatalf("%s: batch counts differ: %d vs %d", label, a.NumBatches(), b.NumBatches())
	}
	check := func(col string, eq func(i int) bool) {
		for i := 0; i < a.Len(); i++ {
			if !eq(i) {
				t.Fatalf("%s: column %s differs at row %d: %+v vs %+v", label, col, i, a.Row(i), b.Row(i))
			}
		}
	}
	check("batch", func(i int) bool { return a.Batches()[i] == b.Batches()[i] })
	check("taskType", func(i int) bool { return a.TaskTypes()[i] == b.TaskTypes()[i] })
	check("item", func(i int) bool { return a.Items()[i] == b.Items()[i] })
	check("worker", func(i int) bool { return a.Workers()[i] == b.Workers()[i] })
	check("start", func(i int) bool { return a.Starts()[i] == b.Starts()[i] })
	check("end", func(i int) bool { return a.Ends()[i] == b.Ends()[i] })
	check("trust", func(i int) bool { return a.Trusts()[i] == b.Trusts()[i] })
	check("answer", func(i int) bool { return a.Answers()[i] == b.Answers()[i] })
	for bi := 0; bi < a.NumBatches(); bi++ {
		alo, ahi := a.BatchRange(uint32(bi))
		blo, bhi := b.BatchRange(uint32(bi))
		if alo != blo || ahi != bhi {
			t.Fatalf("%s: batch %d range [%d,%d) vs [%d,%d)", label, bi, alo, ahi, blo, bhi)
		}
	}
}

// TestPipelineSerialParallelIdentical is the pipeline's determinism
// property: for a fixed Config, the segmented parallel pipeline produces a
// store whose every column is element-for-element equal to the serial
// reference path (Parallelism: 1).
func TestPipelineSerialParallelIdentical(t *testing.T) {
	cfg := Config{Seed: 777, Scale: 0.004}
	serialCfg := cfg
	serialCfg.Parallelism = 1
	serial := Generate(serialCfg)
	for _, par := range []int{2, 3, 8} {
		parCfg := cfg
		parCfg.Parallelism = par
		parallel := Generate(parCfg)
		equalStores(t, "parallelism", serial.Store, parallel.Store)
		// Derived worker-activity windows must match too.
		for i := range serial.Workers {
			if serial.Workers[i] != parallel.Workers[i] {
				t.Fatalf("worker %d differs between serial and parallel paths", i)
			}
		}
	}
}

// TestPipelineSerialParallelIdenticalProperty drives the same equivalence
// over random seeds, including the learning extension, whose factors are
// planned sequentially and must survive the parallel render unchanged.
func TestPipelineSerialParallelIdenticalProperty(t *testing.T) {
	f := func(seed uint64, gammaOn bool) bool {
		cfg := Config{Seed: seed, Scale: 0.002}
		if gammaOn {
			cfg.LearningGamma = 0.25
		}
		serialCfg, parCfg := cfg, cfg
		serialCfg.Parallelism = 1
		parCfg.Parallelism = 5
		a, b := Generate(serialCfg), Generate(parCfg)
		if a.Store.Len() != b.Store.Len() {
			return false
		}
		for i := 0; i < a.Store.Len(); i++ {
			if a.Store.Row(i) != b.Store.Row(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineSegmentLayout: the generated store is genuinely segmented
// and structurally valid.
func TestPipelineSegmentLayout(t *testing.T) {
	cfg := Config{Seed: 31, Scale: 0.002, Parallelism: 4}
	d := Generate(cfg)
	if got := d.Store.NumSegments(); got != 4 {
		t.Fatalf("NumSegments = %d, want 4", got)
	}
	if err := d.Store.Validate(); err != nil {
		t.Fatalf("segmented store invalid: %v", err)
	}
	segs := d.Store.Segments()
	rows := 0
	for _, si := range segs {
		rows += si.Rows()
	}
	if rows != d.Store.Len() {
		t.Fatalf("segments cover %d of %d rows", rows, d.Store.Len())
	}
	// Shards are balanced by instance count: no segment should be empty
	// while another holds everything.
	for i, si := range segs {
		if si.Rows() == 0 {
			t.Errorf("segment %d is empty", i)
		}
	}
}

// TestPipelineParallelismDefaults: zero and negative parallelism resolve
// to GOMAXPROCS without affecting the data.
func TestPipelineParallelismDefaults(t *testing.T) {
	base := Generate(Config{Seed: 8, Scale: 0.002, Parallelism: 1})
	def := Generate(Config{Seed: 8, Scale: 0.002})
	neg := Generate(Config{Seed: 8, Scale: 0.002, Parallelism: -3})
	equalStores(t, "default", base.Store, def.Store)
	equalStores(t, "negative", base.Store, neg.Store)
}
