package synth

// countryShare pairs a country name with its share of the worker
// population. The head of the distribution follows Section 5.1 / Figure
// 28: close to 50% of workers come from USA (~21.3k of ~69k), Venezuela
// (~5.3k), Great Britain (~4.4k), India (~4.1k) and Canada (~2.8k), with a
// visible 17% from emerging South American and African markets and a long
// tail reaching 148 countries in total.
type countryShare struct {
	name  string
	share float64
}

// countryTable lists all 148 countries. Shares below the named head decay
// smoothly; BuildCountryWeights normalizes the full vector, so the listed
// values are relative weights.
var countryTable = []countryShare{
	{"United States", 0.309},
	{"Venezuela", 0.077},
	{"United Kingdom", 0.064},
	{"India", 0.059},
	{"Canada", 0.041},
	{"Brazil", 0.027},
	{"Philippines", 0.025},
	{"Germany", 0.020},
	{"Serbia", 0.017},
	{"Romania", 0.016},
	{"Egypt", 0.015},
	{"Indonesia", 0.014},
	{"Nigeria", 0.013},
	{"Mexico", 0.013},
	{"Spain", 0.012},
	{"Italy", 0.012},
	{"Poland", 0.011},
	{"France", 0.011},
	{"Colombia", 0.011},
	{"Pakistan", 0.010},
	{"Bangladesh", 0.010},
	{"Kenya", 0.009},
	{"Morocco", 0.009},
	{"Argentina", 0.009},
	{"Australia", 0.008},
	{"Ukraine", 0.008},
	{"Turkey", 0.008},
	{"Greece", 0.008},
	{"Portugal", 0.007},
	{"Netherlands", 0.007},
	{"Vietnam", 0.007},
	{"Peru", 0.007},
	{"Malaysia", 0.006},
	{"Bosnia and Herzegovina", 0.006},
	{"Croatia", 0.006},
	{"Bulgaria", 0.006},
	{"Hungary", 0.006},
	{"Thailand", 0.005},
	{"South Africa", 0.005},
	{"Algeria", 0.005},
	{"Tunisia", 0.005},
	{"Sri Lanka", 0.005},
	{"Nepal", 0.005},
	{"Jamaica", 0.005},
	{"Chile", 0.004},
	{"Ecuador", 0.004},
	{"Ghana", 0.004},
	{"Macedonia", 0.004},
	{"Lithuania", 0.004},
	{"Latvia", 0.004},
	{"Estonia", 0.004},
	{"Slovakia", 0.004},
	{"Slovenia", 0.004},
	{"Czech Republic", 0.004},
	{"Sweden", 0.003},
	{"Norway", 0.003},
	{"Denmark", 0.003},
	{"Finland", 0.003},
	{"Ireland", 0.003},
	{"Belgium", 0.003},
	{"Austria", 0.003},
	{"Switzerland", 0.003},
	{"Russia", 0.003},
	{"Belarus", 0.003},
	{"Moldova", 0.003},
	{"Albania", 0.003},
	{"Montenegro", 0.003},
	{"Kosovo", 0.003},
	{"Dominican Republic", 0.003},
	{"Trinidad and Tobago", 0.003},
	{"Guyana", 0.002},
	{"Bolivia", 0.002},
	{"Paraguay", 0.002},
	{"Uruguay", 0.002},
	{"Costa Rica", 0.002},
	{"Panama", 0.002},
	{"Guatemala", 0.002},
	{"Honduras", 0.002},
	{"El Salvador", 0.002},
	{"Nicaragua", 0.002},
	{"Uganda", 0.002},
	{"Tanzania", 0.002},
	{"Ethiopia", 0.002},
	{"Cameroon", 0.002},
	{"Ivory Coast", 0.002},
	{"Senegal", 0.002},
	{"Zimbabwe", 0.002},
	{"Zambia", 0.002},
	{"Botswana", 0.002},
	{"Namibia", 0.002},
	{"Mauritius", 0.002},
	{"Madagascar", 0.002},
	{"Mozambique", 0.002},
	{"Angola", 0.002},
	{"Libya", 0.002},
	{"Sudan", 0.002},
	{"Jordan", 0.002},
	{"Lebanon", 0.002},
	{"Israel", 0.002},
	{"Saudi Arabia", 0.002},
	{"United Arab Emirates", 0.002},
	{"Qatar", 0.001},
	{"Kuwait", 0.001},
	{"Bahrain", 0.001},
	{"Oman", 0.001},
	{"Yemen", 0.001},
	{"Iraq", 0.001},
	{"Iran", 0.001},
	{"Afghanistan", 0.001},
	{"Kazakhstan", 0.001},
	{"Uzbekistan", 0.001},
	{"Kyrgyzstan", 0.001},
	{"Azerbaijan", 0.001},
	{"Armenia", 0.001},
	{"Georgia", 0.001},
	{"Mongolia", 0.001},
	{"China", 0.001},
	{"Japan", 0.001},
	{"South Korea", 0.001},
	{"Taiwan", 0.001},
	{"Hong Kong", 0.001},
	{"Singapore", 0.001},
	{"Cambodia", 0.001},
	{"Laos", 0.001},
	{"Myanmar", 0.001},
	{"New Zealand", 0.001},
	{"Fiji", 0.001},
	{"Papua New Guinea", 0.001},
	{"Haiti", 0.001},
	{"Cuba", 0.001},
	{"Puerto Rico", 0.001},
	{"Barbados", 0.001},
	{"Bahamas", 0.001},
	{"Belize", 0.001},
	{"Suriname", 0.001},
	{"Iceland", 0.001},
	{"Luxembourg", 0.001},
	{"Malta", 0.001},
	{"Cyprus", 0.001},
	{"Rwanda", 0.001},
	{"Malawi", 0.001},
	{"Benin", 0.001},
	{"Togo", 0.001},
	{"Mali", 0.001},
	{"Burkina Faso", 0.001},
	{"Niger", 0.001},
	{"Somalia", 0.001},
	{"Bhutan", 0.001},
}

// NumCountries is the number of countries workers come from (Figure 28).
const NumCountries = 148

// CountryNames returns the country names in table order.
func CountryNames() []string {
	out := make([]string, len(countryTable))
	for i, c := range countryTable {
		out[i] = c.name
	}
	return out
}

// countryWeights returns the relative population weight per country.
func countryWeights() []float64 {
	out := make([]float64, len(countryTable))
	for i, c := range countryTable {
		out[i] = c.share
	}
	return out
}

// countryIndex resolves a country name to its table position.
func countryIndex(name string) (int, bool) {
	for i, c := range countryTable {
		if c.name == name {
			return i, true
		}
	}
	return 0, false
}
