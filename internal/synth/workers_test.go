package synth

import (
	"math"
	"testing"

	"crowdscope/internal/model"
	"crowdscope/internal/rng"
	"crowdscope/internal/stats"
)

func TestGoldTrustScoreTracksAccuracy(t *testing.T) {
	r := rng.New(121)
	for _, acc := range []float64{0.5, 0.75, 0.9, 0.99} {
		var scores []float64
		for trial := 0; trial < 400; trial++ {
			scores = append(scores, goldTrustScore(r, acc))
		}
		mean := stats.Mean(scores)
		if math.Abs(mean-acc) > 0.04 {
			t.Errorf("gold trust mean for acc %v = %v", acc, mean)
		}
		// Binomial noise with 40 questions: sd ≈ sqrt(p(1-p)/40).
		sd := stats.StdDev(scores)
		want := math.Sqrt(acc * (1 - acc) / goldQuestions)
		if sd > want*1.6+0.01 {
			t.Errorf("gold trust sd for acc %v = %v, want ~%v", acc, sd, want)
		}
	}
}

func TestGoldTrustScoreBounded(t *testing.T) {
	r := rng.New(122)
	for i := 0; i < 200; i++ {
		s := goldTrustScore(r, r.Float64())
		if s <= 0 || s >= 1 {
			t.Fatalf("trust score %v out of (0,1)", s)
		}
	}
}

func TestBuildWorkersInvariant(t *testing.T) {
	r := rng.New(123)
	srcs := BuildSources()
	ws := BuildWorkers(r, srcs, 2000)
	classes := map[model.EngagementClass]int{}
	for i := range ws {
		w := &ws[i]
		if int(w.Source) >= len(srcs) {
			t.Fatalf("worker %d has source %d", i, w.Source)
		}
		if int(w.Country) >= NumCountries {
			t.Fatalf("worker %d has country %d", i, w.Country)
		}
		if w.TrustMean <= 0 || w.TrustMean >= 1 {
			t.Fatalf("worker %d trust %v", i, w.TrustMean)
		}
		if w.Speed <= 0 {
			t.Fatalf("worker %d speed %v", i, w.Speed)
		}
		if w.ErrRate < 0.004 || w.ErrRate > 0.61 {
			t.Fatalf("worker %d error rate %v", i, w.ErrRate)
		}
		if w.FirstDay < 0 || w.LastDay < w.FirstDay || w.LastDay >= int32(model.NumDays) {
			t.Fatalf("worker %d window [%d,%d]", i, w.FirstDay, w.LastDay)
		}
		classes[w.Class]++
		if w.Class == model.ClassOneDay && w.Lifetime() != 1 {
			t.Fatalf("one-day worker %d has window %d days", i, w.Lifetime())
		}
	}
	// Class mix near the configured fractions.
	n := float64(len(ws))
	if f := float64(classes[model.ClassOneDay]) / n; math.Abs(f-oneDayFrac) > 0.05 {
		t.Errorf("one-day class share = %.3f, want %.3f", f, oneDayFrac)
	}
	if f := float64(classes[model.ClassSuper]) / n; math.Abs(f-superFrac) > 0.02 {
		t.Errorf("super class share = %.3f, want %.3f", f, superFrac)
	}
}

func TestWorkloadWeightsSkew(t *testing.T) {
	r := rng.New(124)
	srcs := BuildSources()
	ws := BuildWorkers(r, srcs, 3000)
	weights := workloadWeights(r, ws)
	if len(weights) != len(ws) {
		t.Fatal("weights length mismatch")
	}
	for i, w := range weights {
		if w <= 0 {
			t.Fatalf("non-positive weight at %d", i)
		}
	}
	// Supers must dominate one-day workers by orders of magnitude.
	var superMean, oneDayMean float64
	var ns, no int
	for i := range ws {
		switch ws[i].Class {
		case model.ClassSuper:
			superMean += weights[i]
			ns++
		case model.ClassOneDay:
			oneDayMean += weights[i]
			no++
		}
	}
	superMean /= float64(ns)
	oneDayMean /= float64(no)
	if superMean < oneDayMean*20 {
		t.Errorf("super/one-day weight ratio = %.1f, want large", superMean/oneDayMean)
	}
}
