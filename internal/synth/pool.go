package synth

import (
	"crowdscope/internal/model"
	"crowdscope/internal/rng"
)

// weightedPool samples workers proportionally to a mutable weight vector
// using a Fenwick (binary indexed) tree over prefix sums: O(log n) draws
// and O(log n) weight updates.
type weightedPool struct {
	ids  []uint32  // worker IDs, parallel to tree leaves
	tree []float64 // Fenwick prefix-sum tree, 1-based
	wts  []float64 // current leaf weights
	sum  float64   // maintained total of wts; draws read it every sample
}

// newWeightedPool builds a pool over ids with the given initial weights.
func newWeightedPool(ids []uint32, weights []float64) *weightedPool {
	n := len(ids)
	p := &weightedPool{
		ids:  ids,
		tree: make([]float64, n+1),
		wts:  make([]float64, n),
	}
	copy(p.wts, weights)
	// O(n) Fenwick construction.
	for i := 1; i <= n; i++ {
		p.tree[i] += weights[i-1]
		if j := i + (i & -i); j <= n {
			p.tree[j] += p.tree[i]
		}
	}
	for _, w := range weights {
		p.sum += w
	}
	return p
}

// total returns the sum of current weights.
func (p *weightedPool) total() float64 { return p.sum }

// add changes leaf i's weight by delta.
func (p *weightedPool) add(i int, delta float64) {
	p.wts[i] += delta
	p.sum += delta
	for j := i + 1; j < len(p.tree); j += j & -j {
		p.tree[j] += delta
	}
}

// set forces leaf i's weight to w.
func (p *weightedPool) set(i int, w float64) {
	if d := w - p.wts[i]; d != 0 {
		p.add(i, d)
	}
}

// sample draws a leaf index proportionally to weight, or -1 when the pool
// is exhausted.
func (p *weightedPool) sample(r *rng.Rand) int {
	t := p.total()
	if t <= 1e-12 {
		return -1
	}
	u := r.Float64() * t
	// Descend the implicit Fenwick tree.
	idx := 0
	mask := 1
	for mask<<1 <= len(p.tree)-1 {
		mask <<= 1
	}
	for ; mask > 0; mask >>= 1 {
		next := idx + mask
		if next < len(p.tree) && p.tree[next] < u {
			u -= p.tree[next]
			idx = next
		}
	}
	if idx >= len(p.ids) {
		idx = len(p.ids) - 1
	}
	return idx
}

// size returns the number of leaves.
func (p *weightedPool) size() int { return len(p.ids) }

// dayPools maintains one lazily built weightedPool per day over the
// workers whose activity window covers that day. Worker quota is global
// (the `remaining` array); pools cache stale copies and refresh leaves
// lazily on draw, which keeps cross-day quota accounting correct without
// rebuilding pools.
type dayPools struct {
	byDay     [][]uint32
	pools     []*weightedPool
	remaining []float64
}

// newDayPools indexes workers by day of their activity window and installs
// per-worker quotas.
func newDayPools(workers []model.Worker, quota []float64) *dayPools {
	dp := &dayPools{
		byDay:     make([][]uint32, model.NumDays),
		pools:     make([]*weightedPool, model.NumDays),
		remaining: append([]float64(nil), quota...),
	}
	for i := range workers {
		w := &workers[i]
		last := w.LastDay
		if last >= int32(model.NumDays) {
			last = int32(model.NumDays) - 1
		}
		for d := w.FirstDay; d <= last; d++ {
			dp.byDay[d] = append(dp.byDay[d], w.ID)
		}
	}
	return dp
}

// poolFor returns (building if needed) the pool for a day; nil when no
// worker is eligible. Out-of-range days are clamped into the span.
func (dp *dayPools) poolFor(day int32) *weightedPool {
	if day < 0 {
		day = 0
	}
	if int(day) >= len(dp.pools) {
		day = int32(len(dp.pools)) - 1
	}
	if dp.pools[day] == nil {
		ids := dp.byDay[day]
		if len(ids) == 0 {
			return nil
		}
		weights := make([]float64, len(ids))
		for i, id := range ids {
			weights[i] = dp.remaining[id]
		}
		dp.pools[day] = newWeightedPool(ids, weights)
	}
	return dp.pools[day]
}

// drawOne samples a worker active on the given day, spending `spend` from
// their quota. Workers in `exclude` are skipped (an item never gets two
// answers from one worker). Stale leaf weights (from quota spent via other
// days' pools) are refreshed on contact and redrawn. Returns the worker ID
// and true, or false when no eligible worker exists.
func (dp *dayPools) drawOne(r *rng.Rand, day int32, exclude []uint32, spend float64) (uint32, bool) {
	pool := dp.poolFor(day)
	if pool == nil {
		return 0, false
	}
	const maxTries = 48
	for try := 0; try < maxTries; try++ {
		leaf := pool.sample(r)
		if leaf < 0 {
			break
		}
		id := pool.ids[leaf]
		rem := dp.remaining[id]
		if pool.wts[leaf] != rem {
			// Stale cache: refresh the leaf and redraw.
			pool.set(leaf, rem)
			continue
		}
		if contains(exclude, id) {
			// Temporarily unavailable for this item; try another draw.
			// With redundancy ≤7 and pools of thousands, collisions are
			// rare; a bounded uniform fallback handles tiny pools.
			if try > 8 {
				if alt, ok := uniformFallback(r, pool, exclude); ok {
					dp.spendQuota(alt, spend)
					return alt, true
				}
				return 0, false
			}
			continue
		}
		dp.spendQuota(id, spend)
		pool.set(leaf, dp.remaining[id])
		return id, true
	}
	// Quota exhausted everywhere: uniform fallback over the day's pool.
	if alt, ok := uniformFallback(r, pool, exclude); ok {
		dp.spendQuota(alt, spend)
		return alt, true
	}
	return 0, false
}

func (dp *dayPools) spendQuota(id uint32, spend float64) {
	nr := dp.remaining[id] - spend
	if nr < 0 {
		nr = 0
	}
	dp.remaining[id] = nr
}

// uniformFallback picks any worker in the pool not in exclude.
func uniformFallback(r *rng.Rand, pool *weightedPool, exclude []uint32) (uint32, bool) {
	n := pool.size()
	if n == 0 {
		return 0, false
	}
	for try := 0; try < 16; try++ {
		id := pool.ids[r.Intn(n)]
		if !contains(exclude, id) {
			return id, true
		}
	}
	for _, id := range pool.ids {
		if !contains(exclude, id) {
			return id, true
		}
	}
	return 0, false
}

func contains(xs []uint32, v uint32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
