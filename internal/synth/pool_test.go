package synth

import (
	"math"
	"testing"

	"crowdscope/internal/model"
	"crowdscope/internal/rng"
)

func TestWeightedPoolSampleProportional(t *testing.T) {
	r := rng.New(61)
	p := newWeightedPool([]uint32{10, 11, 12}, []float64{1, 2, 7})
	counts := map[int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[p.sample(r)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("leaf %d frequency %.3f, want %.3f", i, got, want)
		}
	}
}

func TestWeightedPoolTotalAndSet(t *testing.T) {
	p := newWeightedPool([]uint32{1, 2, 3, 4}, []float64{1, 2, 3, 4})
	if got := p.total(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("total = %v", got)
	}
	p.set(2, 0)
	if got := p.total(); math.Abs(got-7) > 1e-9 {
		t.Fatalf("total after set = %v", got)
	}
	p.add(0, 5)
	if got := p.total(); math.Abs(got-12) > 1e-9 {
		t.Fatalf("total after add = %v", got)
	}
	if p.wts[0] != 6 {
		t.Fatalf("leaf weight = %v", p.wts[0])
	}
}

func TestWeightedPoolExhausted(t *testing.T) {
	r := rng.New(62)
	p := newWeightedPool([]uint32{1, 2}, []float64{0, 0})
	if got := p.sample(r); got != -1 {
		t.Fatalf("exhausted pool sampled leaf %d", got)
	}
}

func TestWeightedPoolZeroNeverSampled(t *testing.T) {
	r := rng.New(63)
	p := newWeightedPool([]uint32{1, 2, 3}, []float64{5, 0, 5})
	for i := 0; i < 10000; i++ {
		if p.sample(r) == 1 {
			t.Fatal("zero-weight leaf sampled")
		}
	}
}

func testWorkers() []model.Worker {
	return []model.Worker{
		{ID: 0, FirstDay: 0, LastDay: 0},   // one-day worker on day 0
		{ID: 1, FirstDay: 0, LastDay: 100}, // long window
		{ID: 2, FirstDay: 50, LastDay: 60}, // mid window
		{ID: 3, FirstDay: 200, LastDay: 300},
	}
}

func TestDayPoolsEligibility(t *testing.T) {
	dp := newDayPools(testWorkers(), []float64{1, 1, 1, 1})
	r := rng.New(64)
	// Day 0: workers 0 and 1 eligible.
	seen := map[uint32]bool{}
	for i := 0; i < 200; i++ {
		id, ok := dp.drawOne(r, 0, nil, 0)
		if !ok {
			t.Fatal("draw failed on populated day")
		}
		seen[id] = true
	}
	if !seen[0] || !seen[1] || seen[2] || seen[3] {
		t.Errorf("day 0 drew %v", seen)
	}
	// Day 55: workers 1 and 2.
	seen = map[uint32]bool{}
	for i := 0; i < 200; i++ {
		id, _ := dp.drawOne(r, 55, nil, 0)
		seen[id] = true
	}
	if seen[0] || !seen[1] || !seen[2] {
		t.Errorf("day 55 drew %v", seen)
	}
}

func TestDayPoolsEmptyDay(t *testing.T) {
	dp := newDayPools(testWorkers(), []float64{1, 1, 1, 1})
	r := rng.New(65)
	if _, ok := dp.drawOne(r, 150, nil, 0); ok {
		t.Fatal("draw succeeded on empty day")
	}
}

func TestDayPoolsExclusion(t *testing.T) {
	dp := newDayPools(testWorkers(), []float64{1, 1, 1, 1})
	r := rng.New(66)
	for i := 0; i < 100; i++ {
		id, ok := dp.drawOne(r, 0, []uint32{0}, 0)
		if !ok {
			t.Fatal("draw failed with exclusion")
		}
		if id == 0 {
			t.Fatal("excluded worker drawn")
		}
	}
	// Excluding everyone leaves nothing.
	if _, ok := dp.drawOne(r, 0, []uint32{0, 1}, 0); ok {
		t.Fatal("draw succeeded with all excluded")
	}
}

func TestDayPoolsQuotaSpending(t *testing.T) {
	workers := []model.Worker{
		{ID: 0, FirstDay: 0, LastDay: 10},
		{ID: 1, FirstDay: 0, LastDay: 10},
	}
	dp := newDayPools(workers, []float64{10, 0.0001})
	r := rng.New(67)
	// Drain worker 0's quota with spend 1 over ~10 draws; afterwards the
	// low-quota worker (or fallback) must appear.
	counts := map[uint32]int{}
	for i := 0; i < 40; i++ {
		id, ok := dp.drawOne(r, 5, nil, 1)
		if !ok {
			t.Fatal("draw failed")
		}
		counts[id]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Errorf("quota spending did not rebalance: %v", counts)
	}
	if dp.remaining[0] != 0 {
		t.Errorf("worker 0 quota = %v, want 0", dp.remaining[0])
	}
}

func TestDayPoolsCrossDayQuota(t *testing.T) {
	// Quota spent through one day's pool must be respected by another's.
	workers := []model.Worker{
		{ID: 0, FirstDay: 0, LastDay: 20},
		{ID: 1, FirstDay: 0, LastDay: 20},
	}
	dp := newDayPools(workers, []float64{5, 5})
	r := rng.New(68)
	// Build pools for two days.
	_, _ = dp.drawOne(r, 3, nil, 0)
	_, _ = dp.drawOne(r, 7, nil, 0)
	// Drain worker 0 entirely via day 3.
	dp.remaining[0] = 0
	counts := map[uint32]int{}
	for i := 0; i < 300; i++ {
		id, _ := dp.drawOne(r, 7, nil, 0)
		counts[id]++
	}
	// Worker 0's stale day-7 leaf must be refreshed; almost all draws go
	// to worker 1.
	if counts[0] > 3 {
		t.Errorf("stale quota leaked %d draws to drained worker", counts[0])
	}
}

func TestDayPoolsClampsOutOfRange(t *testing.T) {
	dp := newDayPools(testWorkers(), []float64{1, 1, 1, 1})
	r := rng.New(69)
	if _, ok := dp.drawOne(r, -5, nil, 0); !ok {
		t.Error("negative day should clamp to day 0's pool")
	}
	// Far-future day clamps to the last day (empty here → no draw).
	_, ok := dp.drawOne(r, 10_000_000, nil, 0)
	_ = ok // must not panic
}
