package synth

import (
	"math"

	"crowdscope/internal/model"
	"crowdscope/internal/rng"
)

// Arrival calibration (Section 3.1). All volumes are *declared* instances
// across the full 58k-batch marketplace; the 12k-batch sample carries
// roughly a fifth of them, landing the sample's post-2015 median daily
// load near the paper's ~30k instances/day.
const (
	// NumBatchesFull is the full-scale batch count (~58k, Section 2.2).
	NumBatchesFull = 58000
	// SampledBatchesFull is the fully visible sample (~12k).
	SampledBatchesFull = 12000
	// sampledTypeFrac is the share of distinct tasks with at least one
	// sampled batch (5,000 of 6,600 ≈ 76%).
	sampledTypeFrac = 0.76

	// postBoomWeeklyMedian is the median declared-instance volume per
	// post-2015 week, full marketplace.
	postBoomWeeklyMedian = 0.62e6
	// preBoomWeeklyMedian is the sparse pre-2015 weekly volume.
	preBoomWeeklyMedian = 2.4e4
	// burstProb is the chance a post-2015 week is a burst week; burst
	// weeks run an order of magnitude or more above the median, producing
	// the up-to-30x daily peaks of Figure 2a.
	burstProb = 0.055
	// quietProb is the chance a post-2015 week nearly empties out,
	// producing the 0.0004x-of-median lightest days.
	quietProb = 0.04
)

// weekdayFactor shapes within-week load: Monday is the heaviest day and
// load decays across the week, with weekends at roughly half of weekday
// levels (Figure 3).
var weekdayFactor = [7]float64{1.45, 1.30, 1.18, 1.08, 0.99, 0.66, 0.60}

// weeklyBudgets draws the declared-instance budget for every week of the
// span. Bursts and quiet weeks only appear once the marketplace takes off
// in January 2015.
func weeklyBudgets(r *rng.Rand) []float64 {
	out := make([]float64, model.NumWeeks)
	post := int(model.PostBoomWeek)
	rampStart := post - 30 // activity thickens through late 2014 (Figure 2a)
	for w := range out {
		switch {
		case w < rampStart:
			// Sparse early period: many near-empty weeks.
			if r.Bool(0.45) {
				out[w] = preBoomWeeklyMedian * r.LogNormalMedian(1, 0.8)
			} else {
				out[w] = preBoomWeeklyMedian * 0.05 * r.Float64()
			}
		case w < post:
			// Ramp toward the boom.
			frac := float64(w-rampStart) / float64(post-rampStart)
			out[w] = preBoomWeeklyMedian + frac*frac*(postBoomWeeklyMedian*0.35)*r.LogNormalMedian(1, 0.5)
		default:
			base := postBoomWeeklyMedian * r.LogNormalMedian(1, 0.4)
			switch {
			case r.Bool(burstProb):
				base *= 3 + r.Pareto(1, 1.6)*2
				if base > postBoomWeeklyMedian*10 {
					base = postBoomWeeklyMedian * 10
				}
			case r.Bool(quietProb):
				base *= 0.0004 + 0.005*r.Float64()
			}
			out[w] = base
		}
	}
	return out
}

// dailyBudget splits a weekly budget across its days with the weekday
// profile plus noise.
func dailyBudget(r *rng.Rand, weekly float64, weekday int) float64 {
	return weekly / 7 * weekdayFactor[weekday] * r.LogNormalMedian(1, 0.3)
}

// pickupLoadFactors converts weekly budgets into the load-coupled pickup
// multiplier: during heavy weeks the marketplace moves faster (Section 3.2
// observes pickup dips at load peaks), so pickup time scales with
// (load/median)^-exp.
func pickupLoadFactors(weekly []float64) []float64 {
	// Median over post-boom weeks.
	post := weekly[model.PostBoomWeek:]
	buf := append([]float64(nil), post...)
	medianSortFloat(buf)
	med := buf[len(buf)/2]
	if med <= 0 {
		med = 1
	}
	out := make([]float64, len(weekly))
	for w, v := range weekly {
		if v <= 0 {
			out[w] = 1
			continue
		}
		f := math.Pow(v/med, -0.35)
		if f > 6 {
			f = 6
		}
		if f < 0.12 {
			f = 0.12
		}
		out[w] = f
	}
	return out
}

func medianSortFloat(buf []float64) {
	// Small slice; insertion sort keeps this dependency-free.
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && buf[j] < buf[j-1]; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
}

// batchStub is an un-materialized batch: enough to build the Batch table
// and decide sampling, before instances exist.
type batchStub struct {
	taskType      uint32
	day           int32
	createdSec    int64
	declaredItems int32
	redundancy    int16
	pickupMedian  float64 // per-batch median pickup seconds, load-adjusted
}

// typeScheduler picks an eligible task type for a batch arriving in a
// given week, weighted by type popularity. Eligible lists and alias tables
// are built lazily per week.
type typeScheduler struct {
	types      []model.TaskType
	popularity []float64
	eligible   [][]int
	pickers    []*rng.Categorical
}

func newTypeScheduler(r *rng.Rand, types []model.TaskType) *typeScheduler {
	s := &typeScheduler{
		types:      types,
		popularity: typePopularity(r, types),
		eligible:   make([][]int, model.NumWeeks),
		pickers:    make([]*rng.Categorical, model.NumWeeks),
	}
	for i := range types {
		for w := types[i].FirstWeek; w <= types[i].LastWeek && w < int32(model.NumWeeks); w++ {
			s.eligible[w] = append(s.eligible[w], i)
		}
	}
	return s
}

// pick returns a task type index active in the week, or -1 when none is.
func (s *typeScheduler) pick(r *rng.Rand, week int32) int {
	if week < 0 || int(week) >= len(s.eligible) || len(s.eligible[week]) == 0 {
		return -1
	}
	if s.pickers[week] == nil {
		ws := make([]float64, len(s.eligible[week]))
		for i, ti := range s.eligible[week] {
			ws[i] = s.popularity[ti]
		}
		s.pickers[week] = rng.NewCategorical(ws)
	}
	return s.eligible[week][s.pickers[week].Sample(r)]
}

// buildSchedule generates all batch stubs across the span by spending each
// day's declared-instance budget on batches of types active that week.
func buildSchedule(r *rng.Rand, types []model.TaskType) ([]batchStub, []float64) {
	weekly := weeklyBudgets(r)
	loadFactor := pickupLoadFactors(weekly)
	sched := newTypeScheduler(r, types)

	var stubs []batchStub
	for day := int32(0); day < int32(model.NumDays); day++ {
		week := day / 7
		budget := dailyBudget(r, weekly[week], int(day)%7)
		guard := 0
		for budget > 0 && guard < 4000 {
			guard++
			ti := sched.pick(r, week)
			if ti < 0 {
				break
			}
			tt := &types[ti]
			items := int32(r.LogNormalMedian(float64(tt.Design.Items), 0.5))
			if items < 1 {
				items = 1
			}
			red := redundancyDraw(r)
			declared := float64(items) * float64(red)
			// Batch creation time within working hours of the day.
			created := model.DayUnix(day) + int64(6*3600) + r.Int63n(14*3600)
			pickup := r.LogNormalMedian(tt.BasePickupSecs, 0.55) * loadFactor[week]
			stubs = append(stubs, batchStub{
				taskType:      uint32(ti),
				day:           day,
				createdSec:    created,
				declaredItems: items,
				redundancy:    red,
				pickupMedian:  pickup,
			})
			budget -= declared
		}
	}
	return stubs, weekly
}

// redundancyDraw picks how many workers answer each item: 3-7, centered
// on 5.
func redundancyDraw(r *rng.Rand) int16 {
	switch v := r.Float64(); {
	case v < 0.20:
		return 3
	case v < 0.45:
		return 4
	case v < 0.80:
		return 5
	case v < 0.93:
		return 6
	default:
		return 7
	}
}

// chooseSampled selects ~12k batches into the fully visible sample,
// stratified so ~76% of distinct tasks are represented (Section 2.2): one
// batch from each represented type, then a uniform fill.
func chooseSampled(r *rng.Rand, stubs []batchStub, types []model.TaskType, target int) []bool {
	sampled := make([]bool, len(stubs))
	byType := make([][]int, len(types))
	for i := range stubs {
		byType[stubs[i].taskType] = append(byType[stubs[i].taskType], i)
	}
	// Which task types are represented at all.
	represented := make([]bool, len(types))
	for ti := range types {
		if len(byType[ti]) == 0 {
			continue
		}
		// Heavy hitters are always represented; others with probability
		// sampledTypeFrac.
		if types[ti].HeavyHitter || r.Bool(sampledTypeFrac) {
			represented[ti] = true
		}
	}
	count := 0
	for ti, ok := range represented {
		if !ok || count >= target {
			continue
		}
		pick := byType[ti][r.Intn(len(byType[ti]))]
		if !sampled[pick] {
			sampled[pick] = true
			count++
		}
	}
	// Uniform fill over batches of represented types.
	var candidates []int
	for i := range stubs {
		if !sampled[i] && represented[stubs[i].taskType] {
			candidates = append(candidates, i)
		}
	}
	r.Shuffle(len(candidates), func(a, b int) { candidates[a], candidates[b] = candidates[b], candidates[a] })
	for _, i := range candidates {
		if count >= target {
			break
		}
		sampled[i] = true
		count++
	}
	return sampled
}
