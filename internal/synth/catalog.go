package synth

import (
	"math"

	"crowdscope/internal/model"
	"crowdscope/internal/rng"
)

// Catalog-level calibration constants. Counts are full-scale; see Config
// for how scale is applied.
const (
	// NumTaskTypes is the number of distinct tasks (Section 2.2: ~6,600).
	NumTaskTypes = 6600
	// megaTypes are the few clusters that each exceed 1M task instances
	// in the sample (Figure 7 shows 3 of them).
	megaTypes = 3
	// heavyTypes are the "heavy hitters" issued across >=100 batches
	// (Section 3.3 / Figure 6).
	heavyTypes = 12
	// oneOffFraction is the share of task types issued in at most a
	// handful of batches.
	oneOffFraction = 0.72
	// labeledFraction is the share of sampled clusters carrying manual
	// labels (~3,200 of ~5,000 sampled with full data; Section 3.4).
	labeledFraction = 0.64
)

// Design-feature distribution constants: the probability of a feature
// being present and the medians of its magnitude, set so the global
// medians land on the paper's bin-split points (Tables 1-3).
const (
	wordsMedian = 466 // split point for #words (Table 1)
	wordsSigma  = 0.9
	itemsMedian = 40 // between the 30/56 split points the paper reports
	itemsSigma  = 2.2

	textBoxProb = 0.47 // 1014 of 2297 clusters have #text-box > 0 (Table 1)
	exampleProb = 0.032
	imageProb   = 0.24
)

// Effect-size constants: how design choices modify the three latent
// effectiveness metrics. Chosen so the median-split bins of the
// correlation analysis reproduce the paper's numbers (Tables 1-3):
//
//	disagreement: #words 0.147→0.108, #items 0.169→0.086,
//	              #text-box 0.102→0.160, #examples 0.128→0.101
//	task-time:    #items 230s→136s, #text-box 119s→286s, #images 184s→129s
//	pickup-time:  #items 4521s→8132s, #examples 6303s→1353s,
//	              #images 7838s→2431s
const (
	disagreeBase     = 0.135
	disagreeWordsExp = -0.25 // disagreement ∝ (words/median)^exp
	disagreeItemsExp = -0.33
	disagreeTextBoxF = 1.55
	disagreeExampleF = 0.55
	disagreeNoise    = 0.38

	taskTimeBaseSecs = 170.0
	taskTimeItemsExp = -0.22
	taskTimeTextBoxF = 2.3
	taskTimeImageF   = 0.70
	taskTimeSigma    = 0.45

	pickupBaseSecs = 5800.0
	pickupItemsExp = 0.24
	pickupExampleF = 0.21
	pickupImageF   = 0.31
	pickupSigma    = 1.15
)

// goalWeights is the cluster-level goal mix. Complex goals dominate at the
// cluster level (Figure 12a), while simple goals (ER/SA/QA) recover ~30% of
// *instances* via larger average cluster sizes.
var goalWeights = []float64{
	0.06, // ER
	0.13, // HB
	0.11, // SR
	0.06, // QA
	0.05, // SA
	0.24, // LU
	0.17, // T
	0.18, // Other
}

// instanceSizeBoost scales the expected instance volume of clusters with a
// given primary goal so the instance-level goal shares match Figure 9a
// despite the cluster-level mix being complex-heavy.
var instanceSizeBoost = [model.NumGoals]float64{
	model.GoalER:    3.6,
	model.GoalHB:    1.6,
	model.GoalSR:    1.8,
	model.GoalQA:    3.6,
	model.GoalSA:    3.4,
	model.GoalLU:    1.45,
	model.GoalT:     1.60,
	model.GoalOther: 0.7,
}

// operatorByGoal gives the per-goal operator usage mix (Figure 10b):
// filter/rate dominate everywhere except transcription, where extraction
// is primary; LU uses generate 16% of the time; HB uses external links 13%
// and localization 9%.
var operatorByGoal = [model.NumGoals][model.NumOperators]float64{
	model.GoalER:    {model.OpFilter: 0.47, model.OpRate: 0.10, model.OpTag: 0.18, model.OpGather: 0.15, model.OpSort: 0.03, model.OpExtract: 0.05, model.OpExternal: 0.02},
	model.GoalHB:    {model.OpFilter: 0.28, model.OpRate: 0.14, model.OpExternal: 0.17, model.OpLocalize: 0.12, model.OpGenerate: 0.08, model.OpGather: 0.08, model.OpTag: 0.05, model.OpCount: 0.04},
	model.GoalSR:    {model.OpRate: 0.28, model.OpFilter: 0.35, model.OpGather: 0.08, model.OpSort: 0.16, model.OpTag: 0.13},
	model.GoalQA:    {model.OpFilter: 0.52, model.OpRate: 0.09, model.OpTag: 0.24, model.OpCount: 0.05, model.OpLocalize: 0.06, model.OpExtract: 0.04},
	model.GoalSA:    {model.OpRate: 0.22, model.OpFilter: 0.40, model.OpTag: 0.28, model.OpGenerate: 0.06, model.OpExtract: 0.04},
	model.GoalLU:    {model.OpFilter: 0.30, model.OpRate: 0.16, model.OpSort: 0.07, model.OpGenerate: 0.16, model.OpExtract: 0.12, model.OpTag: 0.12, model.OpGather: 0.07},
	model.GoalT:     {model.OpExtract: 0.58, model.OpGenerate: 0.15, model.OpTag: 0.09, model.OpLocalize: 0.06, model.OpFilter: 0.06, model.OpGather: 0.06},
	model.GoalOther: {model.OpFilter: 0.28, model.OpRate: 0.12, model.OpGather: 0.19, model.OpSort: 0.04, model.OpTag: 0.10, model.OpGenerate: 0.10, model.OpExtract: 0.06, model.OpLocalize: 0.05, model.OpCount: 0.03, model.OpExternal: 0.01},
}

// dataByGoal gives the per-goal data-type mix (Figure 10a): text and image
// dominate everywhere; web data serves 24% of ER and 37% of SR; social
// media serves 13% of SA and 8% of LU; transcription leans on image/audio.
var dataByGoal = [model.NumGoals][model.NumDataTypes]float64{
	model.GoalER:    {model.DataText: 0.34, model.DataWeb: 0.24, model.DataImage: 0.21, model.DataSocial: 0.09, model.DataMaps: 0.07, model.DataVideo: 0.05},
	model.GoalHB:    {model.DataText: 0.44, model.DataImage: 0.20, model.DataWeb: 0.11, model.DataSocial: 0.09, model.DataVideo: 0.09, model.DataAudio: 0.07},
	model.GoalSR:    {model.DataWeb: 0.37, model.DataText: 0.30, model.DataImage: 0.21, model.DataSocial: 0.07, model.DataMaps: 0.05},
	model.GoalQA:    {model.DataText: 0.34, model.DataImage: 0.31, model.DataWeb: 0.13, model.DataSocial: 0.11, model.DataVideo: 0.07, model.DataAudio: 0.04},
	model.GoalSA:    {model.DataText: 0.40, model.DataImage: 0.16, model.DataSocial: 0.18, model.DataWeb: 0.12, model.DataVideo: 0.08, model.DataAudio: 0.06},
	model.GoalLU:    {model.DataText: 0.54, model.DataImage: 0.16, model.DataSocial: 0.08, model.DataWeb: 0.09, model.DataAudio: 0.07, model.DataVideo: 0.06},
	model.GoalT:     {model.DataImage: 0.34, model.DataAudio: 0.24, model.DataText: 0.22, model.DataVideo: 0.14, model.DataWeb: 0.06},
	model.GoalOther: {model.DataText: 0.34, model.DataImage: 0.26, model.DataWeb: 0.11, model.DataSocial: 0.09, model.DataAudio: 0.08, model.DataVideo: 0.07, model.DataMaps: 0.05},
}

// ambiguityByGoal shifts the latent disagreement of clusters: open-ended
// goals are inherently more ambiguous than boolean-style ones.
var ambiguityByGoal = [model.NumGoals]float64{
	model.GoalER:    0.85,
	model.GoalHB:    1.15,
	model.GoalSR:    0.95,
	model.GoalQA:    0.80,
	model.GoalSA:    1.05,
	model.GoalLU:    1.15,
	model.GoalT:     1.00,
	model.GoalOther: 1.05,
}

// bulkGoals is the goal rotation for the 15 mega/heavy task types: mostly
// the simple high-volume goals of bulk crowd work, with one transcription
// and one language-understanding heavy hitter.
var bulkGoals = []model.Goal{
	model.GoalQA, model.GoalER, model.GoalSA, // the three mega types
	model.GoalSR, model.GoalHB, model.GoalT, model.GoalQA, model.GoalER,
	model.GoalLU, model.GoalSA, model.GoalSR, model.GoalQA, model.GoalHB,
	model.GoalER, model.GoalSA,
}

// bulkOps and bulkData are the matching operator/data rotations; filter
// and rate lead but do not monopolize, so the giant clusters preserve the
// Figure 9 operator and data shares instead of distorting them.
var bulkOps = []model.Operator{
	model.OpFilter, model.OpFilter, model.OpRate, // mega types
	model.OpRate, model.OpFilter, model.OpExtract, model.OpTag, model.OpFilter,
	model.OpGenerate, model.OpFilter, model.OpCount, model.OpFilter, model.OpFilter,
	model.OpFilter, model.OpLocalize,
}

var bulkData = []model.DataType{
	model.DataImage, model.DataText, model.DataText, // mega types
	model.DataImage, model.DataText, model.DataImage, model.DataText,
	model.DataSocial, model.DataText, model.DataSocial, model.DataAudio,
	model.DataText, model.DataImage, model.DataText, model.DataVideo,
}

// textHeavyOps are the operators whose interfaces usually carry free-text
// inputs; their presence raises the text-box probability.
var textHeavyOps = model.OpSet(0).
	With(model.OpGather).With(model.OpExtract).With(model.OpGenerate)

// BuildCatalog generates the full distinct-task catalog with labels,
// design parameters, latent metric levels, activity windows and size
// classes. The catalog is scale-free: Config.Scale applies at batch
// generation time.
func BuildCatalog(r *rng.Rand) []model.TaskType {
	goalPick := rng.NewCategorical(goalWeights)
	out := make([]model.TaskType, NumTaskTypes)
	for i := range out {
		tt := &out[i]
		tt.ID = uint32(i)

		// --- labels ---
		g := model.Goal(goalPick.Sample(r))
		tt.Goals = tt.Goals.With(g)
		if r.Bool(0.10) {
			tt.Goals = tt.Goals.With(model.Goal(goalPick.Sample(r)))
		}
		opPick := operatorByGoal[g][:]
		op1 := model.Operator(rng.WeightedPick(r, opPick))
		tt.Operators = tt.Operators.With(op1)
		if r.Bool(0.18) {
			tt.Operators = tt.Operators.With(model.Operator(rng.WeightedPick(r, opPick)))
		}
		dataPick := dataByGoal[g][:]
		d1 := model.DataType(rng.WeightedPick(r, dataPick))
		tt.Data = tt.Data.With(d1)
		if r.Bool(0.30) {
			tt.Data = tt.Data.With(model.DataType(rng.WeightedPick(r, dataPick)))
		}

		// The bulky clusters' goals follow a fixed rotation dominated by
		// the simple bulk-work goals, so that a single giant cluster
		// cannot swing the Figure 9 instance shares toward a niche goal
		// by seed luck. Operators and data still follow the goal's mix.
		if i < megaTypes+heavyTypes {
			g = bulkGoals[i%len(bulkGoals)]
			tt.Goals = model.GoalSet(0).With(g)
			tt.Operators = model.OpSet(0).With(bulkOps[i%len(bulkOps)])
			tt.Data = model.DataSet(0).With(bulkData[i%len(bulkData)])
		}

		// --- design parameters ---
		tt.Design = sampleDesign(r, *tt)
		// The bulky clusters issue enormous batches (close to 80k task
		// instances per batch, Section 3.3); heavy hitters are also well
		// above the median.
		switch {
		case i < megaTypes:
			tt.HeavyHitter = true
			tt.Design.Items = clampInt(int(r.LogNormalMedian(24000, 0.3)), 8000, 200000)
		case i < megaTypes+heavyTypes:
			tt.HeavyHitter = true
			tt.Design.Items = clampInt(int(r.LogNormalMedian(400, 0.6)), 50, 20000)
		}

		// --- latent effectiveness metrics ---
		applyMetricModel(r, tt, g)
		tt.FirstWeek, tt.LastWeek = sampleWindow(r, i)
		tt.Labeled = r.Bool(labeledFraction) || tt.HeavyHitter
	}
	return out
}

// sampleDesign draws design parameters correlated with the task's labels:
// text-heavy operators carry text boxes, image-data tasks carry images.
func sampleDesign(r *rng.Rand, tt model.TaskType) model.DesignParams {
	var d model.DesignParams
	d.Words = clampInt(int(r.LogNormalMedian(wordsMedian, wordsSigma)), 60, 40000)
	d.Items = clampInt(int(r.LogNormalMedian(itemsMedian, itemsSigma)), 1, 200000)

	pText := textBoxProb
	if tt.Operators&textHeavyOps != 0 {
		pText = 0.80
	} else if tt.Operators.Has(model.OpFilter) || tt.Operators.Has(model.OpRate) {
		pText = 0.30
	}
	if r.Bool(pText) {
		d.TextBoxes = 1 + r.Poisson(1.2)
	}
	if r.Bool(exampleProb) {
		d.Examples = 1 + r.Poisson(0.7)
	}
	pImage := imageProb
	if tt.Data.Has(model.DataImage) {
		pImage = 0.55
	}
	if r.Bool(pImage) {
		d.Images = 1 + r.Poisson(1.8)
	}
	// Fields: every page carries a submit button, its choice inputs and
	// its text boxes, plus occasional selects.
	d.Fields = 1 + d.TextBoxes + 2 + r.Poisson(2.5)
	return d
}

// applyMetricModel fills the latent Ambiguity, BaseTaskSecs and
// BasePickupSecs from the design parameters through the calibrated effect
// sizes.
func applyMetricModel(r *rng.Rand, tt *model.TaskType, g model.Goal) {
	d := tt.Design

	dis := disagreeBase * ambiguityByGoal[g]
	dis *= math.Pow(float64(d.Words)/wordsMedian, disagreeWordsExp)
	// Worker-experience returns saturate: beyond ~20x the median item
	// count there is no further disagreement benefit, and below 1/20th no
	// further penalty. The cap keeps the heavy item tail (sigma 2.2 in
	// log space) from dominating the linear-space variance.
	itemRatio := clampFloat(float64(d.Items)/itemsMedian, 1.0/20, 20)
	dis *= math.Pow(itemRatio, disagreeItemsExp)
	if d.TextBoxes > 0 {
		dis *= disagreeTextBoxF
	}
	noise := disagreeNoise
	if d.Examples > 0 {
		// Examples lower ambiguity enough to survive the >0.5 pruning
		// rule's differential trimming of the no-example bin, and
		// standardize interpretation (less cross-cluster variance).
		dis *= disagreeExampleF
		noise *= 0.45
	}
	dis *= r.LogNormalMedian(1, noise)
	tt.Ambiguity = clampFloat(dis, 0.002, 0.72)

	tsecs := taskTimeBaseSecs
	tsecs *= math.Pow(float64(d.Items)/itemsMedian, taskTimeItemsExp)
	if d.TextBoxes > 0 {
		tsecs *= taskTimeTextBoxF
	}
	if d.Images > 0 {
		tsecs *= taskTimeImageF
	}
	tsecs *= r.LogNormalMedian(1, taskTimeSigma)
	tt.BaseTaskSecs = clampFloat(tsecs, 3, 9000)

	psecs := pickupBaseSecs
	psecs *= math.Pow(float64(d.Items)/itemsMedian, pickupItemsExp)
	if d.Examples > 0 {
		psecs *= pickupExampleF
	}
	if d.Images > 0 {
		psecs *= pickupImageF
	}
	psecs *= r.LogNormalMedian(1, pickupSigma)
	tt.BasePickupSecs = clampFloat(psecs, 10, 1.6e7)
}

// sampleWindow assigns the weeks during which batches of this task type
// may be issued. Heavy hitters ramp up, run for one to eleven months, then
// shut down for good (Figure 8); one-off tasks live a week or two; the
// bulk of types are active for a few weeks to a few months. Activity
// skews into the post-January-2015 boom.
func sampleWindow(r *rng.Rand, idx int) (first, last int32) {
	post := model.PostBoomWeek
	total := int32(model.NumWeeks)
	var start, span int32
	switch {
	case idx < megaTypes:
		start = post + int32(r.Intn(30))
		span = 16 + int32(r.Intn(36)) // 4-12 months
	case idx < megaTypes+heavyTypes:
		start = post + int32(r.Intn(int(total-post-10)))
		span = 4 + int32(r.Intn(44)) // 1-11 months
	default:
		// 22% of types start pre-boom, the rest after.
		if r.Bool(0.22) {
			start = int32(r.Intn(int(post)))
		} else {
			start = post + int32(r.Intn(int(total-post)))
		}
		if r.Bool(oneOffFraction) {
			span = 1 + int32(r.Intn(2))
		} else {
			span = 2 + int32(r.Poisson(10))
		}
	}
	if start >= total {
		start = total - 1
	}
	end := start + span
	if end >= total {
		end = total - 1
	}
	return start, end
}

// typePopularity returns the batch-attraction weight of each task type;
// combined with the activity windows this yields the cluster-size
// power law of Figure 6 (many one-off clusters, a dozen 100+-batch heavy
// hitters). Goal-level boosts lift the instance share of simple-goal
// clusters toward the Figure 9a mix without touching the #items feature.
func typePopularity(r *rng.Rand, types []model.TaskType) []float64 {
	w := make([]float64, len(types))
	for i := range types {
		switch {
		case i < megaTypes:
			w[i] = 2.2 + r.Float64()
		case i < megaTypes+heavyTypes:
			w[i] = 28 + 28*r.Float64()
		default:
			v := r.Pareto(0.4, 1.3)
			if v > 8 {
				v = 8
			}
			w[i] = v * instanceSizeBoost[primaryGoal(types[i].Goals)]
		}
	}
	return w
}

// primaryGoal returns the first goal in the set (Other when empty).
func primaryGoal(s model.GoalSet) model.Goal {
	g := model.GoalOther
	first := true
	s.Each(func(x model.Goal) {
		if first {
			g = x
			first = false
		}
	})
	return g
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampFloat(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
