package synth

import (
	"testing"

	"crowdscope/internal/stats"
)

// TestLearningDisabledByDefault: γ=0 leaves the generator byte-identical
// to the paper-faithful configuration.
func TestLearningDisabledByDefault(t *testing.T) {
	a := Generate(Config{Seed: 51, Scale: 0.004})
	b := Generate(Config{Seed: 51, Scale: 0.004, LearningGamma: 0})
	if a.Store.Len() != b.Store.Len() {
		t.Fatal("learning off should be the default path")
	}
	for i := 0; i < a.Store.Len(); i += 1009 {
		if a.Store.Row(i) != b.Store.Row(i) {
			t.Fatal("γ=0 changed the dataset")
		}
	}
}

// TestLearningSpeedsUpExperiencedWorkers: with learning on, a worker's
// later instances are faster than their early ones, controlling for task
// type via the per-batch median normalization.
func TestLearningSpeedsUpExperiencedWorkers(t *testing.T) {
	d := Generate(Config{Seed: 52, Scale: 0.01, LearningGamma: 0.25})
	st := d.Store
	starts := st.Starts()
	ends := st.Ends()

	// Per-batch median duration normalizes away task heterogeneity.
	batchMedian := make([]float64, st.NumBatches())
	for b := 0; b < st.NumBatches(); b++ {
		lo, hi := st.BatchRange(uint32(b))
		if lo == hi {
			continue
		}
		durs := make([]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			durs = append(durs, float64(ends[i]-starts[i]))
		}
		batchMedian[b] = stats.Median(durs)
	}

	var earlyRel, lateRel []float64
	st.EachWorker(func(id uint32, rows []int32) {
		if len(rows) < 200 {
			return
		}
		// rows are in generation (chronological batch) order.
		take := func(idx []int32, out *[]float64) {
			for _, r := range idx {
				if bm := batchMedian[st.Batches()[r]]; bm > 0 {
					*out = append(*out, float64(ends[r]-starts[r])/bm)
				}
			}
		}
		take(rows[:50], &earlyRel)
		take(rows[len(rows)-50:], &lateRel)
	})
	if len(earlyRel) == 0 {
		t.Skip("no high-volume workers at this scale")
	}
	early := stats.Median(earlyRel)
	late := stats.Median(lateRel)
	if late >= early*0.97 {
		t.Errorf("experienced work not faster: early rel %.3f vs late rel %.3f", early, late)
	}
}

// TestLearningSupportsItemsHypothesis: Section 4.5 hypothesizes that
// larger batches are completed faster partly because "workers get better
// with experience". With learning enabled, that mechanism strengthens the
// #items→task-time effect relative to the no-learning dataset.
func TestLearningSupportsItemsHypothesis(t *testing.T) {
	base := Generate(Config{Seed: 53, Scale: 0.01})
	learn := Generate(Config{Seed: 53, Scale: 0.01, LearningGamma: 0.25})
	ratio := func(d *Dataset) float64 {
		// Mean duration of instances in huge batches vs small ones.
		st := d.Store
		starts, ends := st.Starts(), st.Ends()
		var bigSum, bigN, smallSum, smallN float64
		for b := 0; b < st.NumBatches(); b++ {
			lo, hi := st.BatchRange(uint32(b))
			n := hi - lo
			if n == 0 {
				continue
			}
			var sum float64
			for i := lo; i < hi; i++ {
				sum += float64(ends[i] - starts[i])
			}
			if n >= 400 {
				bigSum += sum
				bigN += float64(n)
			} else if n <= 40 {
				smallSum += sum
				smallN += float64(n)
			}
		}
		if bigN == 0 || smallN == 0 {
			return 1
		}
		return (bigSum / bigN) / (smallSum / smallN)
	}
	if rl, rb := ratio(learn), ratio(base); rl >= rb {
		t.Errorf("learning should deepen the big-batch speedup: base %.3f, learning %.3f", rb, rl)
	}
}
