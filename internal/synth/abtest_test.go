package synth

import (
	"math"
	"testing"

	"crowdscope/internal/model"
)

func abLabels() model.Labels {
	return model.Labels{
		Goals:     model.GoalSet(0).With(model.GoalSA),
		Operators: model.OpSet(0).With(model.OpRate),
		Data:      model.DataSet(0).With(model.DataText),
	}
}

func TestABTextBoxEffect(t *testing.T) {
	res := RunAB(ABConfig{
		Seed:    31,
		Labels:  abLabels(),
		DesignA: model.DesignParams{Words: 400, TextBoxes: 0, Items: 40, Fields: 5},
		DesignB: model.DesignParams{Words: 400, TextBoxes: 2, Items: 40, Fields: 7},
	})
	// Causal claim from Table 2: text boxes raise task time.
	if res.B.MedianTaskTime <= res.A.MedianTaskTime {
		t.Errorf("task time A=%.0f B=%.0f, expected B higher", res.A.MedianTaskTime, res.B.MedianTaskTime)
	}
	if !res.TaskTime.Significant(0.01) {
		t.Errorf("task-time effect not significant: p=%v", res.TaskTime.P)
	}
	// And disagreement (Table 1).
	if res.B.MedianDisagreement <= res.A.MedianDisagreement {
		t.Errorf("disagreement A=%.3f B=%.3f, expected B higher", res.A.MedianDisagreement, res.B.MedianDisagreement)
	}
}

func TestABExampleEffect(t *testing.T) {
	res := RunAB(ABConfig{
		Seed:    32,
		Labels:  abLabels(),
		DesignA: model.DesignParams{Words: 400, Items: 40, Examples: 0, Fields: 5},
		DesignB: model.DesignParams{Words: 400, Items: 40, Examples: 2, Fields: 5},
	})
	// Examples cut pickup time (Table 3) and disagreement (Table 1).
	if res.B.MedianPickupTime >= res.A.MedianPickupTime {
		t.Errorf("pickup A=%.0f B=%.0f, expected B lower", res.A.MedianPickupTime, res.B.MedianPickupTime)
	}
	if !res.PickupTime.Significant(0.01) {
		t.Errorf("pickup effect not significant: p=%v", res.PickupTime.P)
	}
	if res.B.MedianDisagreement >= res.A.MedianDisagreement {
		t.Errorf("disagreement A=%.3f B=%.3f, expected B lower", res.A.MedianDisagreement, res.B.MedianDisagreement)
	}
}

func TestABNullComparison(t *testing.T) {
	// Identical designs: the arms must not differ significantly.
	d := model.DesignParams{Words: 500, TextBoxes: 1, Items: 30, Fields: 6}
	res := RunAB(ABConfig{Seed: 33, Labels: abLabels(), DesignA: d, DesignB: d})
	if res.TaskTime.Significant(0.01) {
		t.Errorf("A/A task-time difference flagged: p=%v", res.TaskTime.P)
	}
	if res.Disagreement.Significant(0.01) {
		t.Errorf("A/A disagreement difference flagged: p=%v", res.Disagreement.P)
	}
	if res.PickupTime.Significant(0.01) {
		t.Errorf("A/A pickup difference flagged: p=%v", res.PickupTime.P)
	}
	// Medians should be close.
	rel := math.Abs(res.A.MedianTaskTime-res.B.MedianTaskTime) / res.A.MedianTaskTime
	if rel > 0.25 {
		t.Errorf("A/A task-time medians differ by %.0f%%", rel*100)
	}
}

func TestABDeterministic(t *testing.T) {
	cfg := ABConfig{
		Seed:    34,
		Labels:  abLabels(),
		DesignA: model.DesignParams{Words: 300, Items: 20, Fields: 4},
		DesignB: model.DesignParams{Words: 900, Items: 20, Fields: 4},
	}
	r1 := RunAB(cfg)
	r2 := RunAB(cfg)
	if r1.A.MedianTaskTime != r2.A.MedianTaskTime || r1.Disagreement.P != r2.Disagreement.P {
		t.Error("A/B run not deterministic")
	}
}

func TestABDefaults(t *testing.T) {
	res := RunAB(ABConfig{
		Seed:    35,
		Labels:  abLabels(),
		DesignA: model.DesignParams{Words: 300, Items: 20, Fields: 4},
		DesignB: model.DesignParams{Words: 300, Items: 20, Fields: 4, Images: 2},
	})
	if len(res.A.TaskTimes) == 0 || len(res.B.TaskTimes) == 0 {
		t.Fatal("default config produced no batches")
	}
	if len(res.A.TaskTimes) != len(res.B.TaskTimes) {
		t.Errorf("unbalanced arms: %d vs %d", len(res.A.TaskTimes), len(res.B.TaskTimes))
	}
}

func TestABWordsEffectOnDisagreement(t *testing.T) {
	res := RunAB(ABConfig{
		Seed:    36,
		Labels:  abLabels(),
		DesignA: model.DesignParams{Words: 150, Items: 40, Fields: 5},
		DesignB: model.DesignParams{Words: 3000, Items: 40, Fields: 5},
	})
	if res.B.MedianDisagreement >= res.A.MedianDisagreement {
		t.Errorf("disagreement A=%.3f B=%.3f, expected wordy design lower",
			res.A.MedianDisagreement, res.B.MedianDisagreement)
	}
	if !res.Disagreement.Significant(0.01) {
		t.Errorf("words effect not significant: p=%v", res.Disagreement.P)
	}
	// Words must not move task time (the paper found no correlation).
	if res.TaskTime.Significant(0.01) {
		t.Errorf("words should not affect task time: p=%v", res.TaskTime.P)
	}
}
