package synth

import (
	"crowdscope/internal/model"
	"crowdscope/internal/rng"
)

// Worker-population calibration (Section 5).
const (
	// NumWorkersFull is the full-scale worker count (~69k over the span).
	NumWorkersFull = 69000

	// Engagement class mix: 52.7% of workers are active on a single day;
	// only ~15% return repeatedly (Section 5.3).
	oneDayFrac = 0.62
	casualFrac = 0.23
	activeFrac = 0.125
	superFrac  = 0.025

	// workloadAlpha shapes the per-worker task-propensity Pareto tail so
	// the top-10% of workers perform >80% of tasks (Section 5.2).
	workloadAlpha = 1.05
)

// classLoadMult is the task-propensity multiplier per engagement class;
// one-day workers contribute ~2.4% of tasks despite being a majority of
// the workforce, while the active core completes >80%.
var classLoadMult = [model.NumEngagementClasses]float64{
	model.ClassOneDay: 0.35,
	model.ClassCasual: 0.35,
	model.ClassActive: 4.5,
	model.ClassSuper:  60.0,
}

// BuildWorkers generates n workers across the given sources. Each worker
// gets a source (by the calibrated source shares), a country (source bias
// or the global mix), an engagement class with an activity window, a
// latent trust level around the source mean, a speed factor around the
// source's relative task time, and an error rate tied to trust.
func BuildWorkers(r *rng.Rand, sources []model.Source, n int) []model.Worker {
	srcPick := rng.NewCategorical(sourceWorkerWeights())
	countryPick := rng.NewCategorical(countryWeights())
	classPick := rng.NewCategorical([]float64{oneDayFrac, casualFrac, activeFrac, superFrac})

	out := make([]model.Worker, n)
	for i := range out {
		w := &out[i]
		w.ID = uint32(i)
		w.Source = uint16(srcPick.Sample(r))
		src := sources[w.Source]

		if src.CountryBias >= 0 && r.Bool(0.85) {
			w.Country = uint16(src.CountryBias)
		} else {
			w.Country = uint16(countryPick.Sample(r))
		}

		w.Class = model.EngagementClass(classPick.Sample(r))
		w.FirstDay, w.LastDay = sampleActivityWindow(r, w.Class)

		// Latent accuracy comes from the source's quality level; the
		// marketplace never observes it directly. What it records is the
		// trust score earned on gold test questions (Section 2.3), which
		// the gold engine below estimates from that latent accuracy.
		latentAcc := clampFloat(r.BetaWithMean(src.TrustMean, 90), 0.02, 0.999)
		w.TrustMean = goldTrustScore(r, latentAcc)
		w.Speed = clampFloat(r.LogNormalMedian(src.RelTaskTime, 0.35), 0.2, 40)
		// Error rate: anti-correlated with latent accuracy, floored so
		// even good workers occasionally disagree.
		w.ErrRate = clampFloat(0.9*(1-latentAcc)+0.02*r.Float64(), 0.005, 0.6)
	}
	return out
}

// goldQuestions is the number of test questions the marketplace
// administers before admitting a worker to real tasks (Section 2.3).
const goldQuestions = 40

// goldTrustScore simulates the marketplace's test-question engine: the
// worker answers gold questions whose truth is known, each correctly with
// their latent accuracy, and the trust score is the Laplace-smoothed
// fraction correct. Trust is therefore a noisy, mechanically derived
// estimate of accuracy — exactly the proxy relationship the paper
// describes.
func goldTrustScore(r *rng.Rand, latentAcc float64) float64 {
	correct := 0
	for q := 0; q < goldQuestions; q++ {
		if r.Bool(latentAcc) {
			correct++
		}
	}
	return float64(correct+1) / float64(goldQuestions+2)
}

// sampleActivityWindow draws the [first, last] day window within which a
// worker may take tasks. Windows skew into the post-2015 boom (when most
// task supply existed), and lengths follow the class: one-day workers have
// a single day, supers span hundreds of days (Figure 30a shows lifetimes
// past 1,200 days).
func sampleActivityWindow(r *rng.Rand, class model.EngagementClass) (first, last int32) {
	total := int32(model.NumDays)
	postBoomDay := model.PostBoomWeek * 7

	var span int32
	switch class {
	case model.ClassOneDay:
		span = 1
	case model.ClassCasual:
		span = 2 + int32(r.LogNormalMedian(28, 0.9))
	case model.ClassActive:
		span = 60 + int32(r.LogNormalMedian(160, 0.7))
	case model.ClassSuper:
		span = 250 + int32(r.LogNormalMedian(500, 0.5))
	}
	if span > total {
		span = total
	}

	// Start day: mostly post-boom, some early adopters.
	var start int32
	if r.Bool(0.25) {
		start = int32(r.Intn(int(postBoomDay)))
	} else {
		start = postBoomDay + int32(r.Intn(int(total-postBoomDay)))
	}
	if start+span > total {
		start = total - span
		if start < 0 {
			start = 0
		}
	}
	return start, start + span - 1
}

// workloadWeights returns the per-worker task-propensity weights used by
// the assignment pools: class multiplier × source engagement multiplier ×
// a Pareto individual factor. The resulting allocation is scale-free and
// produces the rank-size workload curve of Figure 29a.
func workloadWeights(r *rng.Rand, workers []model.Worker) []float64 {
	w := make([]float64, len(workers))
	for i := range workers {
		indiv := r.Pareto(1, workloadAlpha)
		if indiv > 500 {
			indiv = 500
		}
		w[i] = classLoadMult[workers[i].Class] * loadMultiplier(int(workers[i].Source)) * indiv
	}
	return w
}
