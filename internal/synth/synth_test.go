package synth

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"crowdscope/internal/model"
	"crowdscope/internal/rng"
	"crowdscope/internal/stats"
	"crowdscope/internal/store"
	"crowdscope/internal/timeseries"
)

// testDataset is generated once and shared across the calibration tests;
// generation is deterministic so sharing is safe.
var testDataset = Generate(Config{Seed: 1701, Scale: 0.02})

func TestSourceTableComplete(t *testing.T) {
	srcs := BuildSources()
	if len(srcs) != 139 {
		t.Fatalf("got %d sources, Table 4 lists 139", len(srcs))
	}
	seen := map[string]bool{}
	for _, s := range srcs {
		if s.Name == "" {
			t.Fatal("empty source name")
		}
		if seen[s.Name] {
			t.Fatalf("duplicate source %q", s.Name)
		}
		seen[s.Name] = true
		if s.TrustMean <= 0 || s.TrustMean >= 1 {
			t.Errorf("source %s trust %v out of (0,1)", s.Name, s.TrustMean)
		}
		if s.RelTaskTime <= 0 {
			t.Errorf("source %s relative task time %v", s.Name, s.RelTaskTime)
		}
	}
	for _, name := range []string{"neodev", "clixsense", "amt", "internal", "imerit_india", "yute_jamaica", "fsprizes"} {
		if !seen[name] {
			t.Errorf("source %q missing", name)
		}
	}
}

func TestSourceQualitySpread(t *testing.T) {
	srcs := BuildSources()
	lowTrust, slow3, slow10 := 0, 0, 0
	for _, s := range srcs {
		if s.TrustMean < 0.8 {
			lowTrust++
		}
		if s.RelTaskTime >= 3 {
			slow3++
		}
		if s.RelTaskTime >= 10 {
			slow10++
		}
	}
	// Figure 27: ~10% of sources below 0.8 trust; ~5% at >=3x task time;
	// three sources at >=10x.
	if frac := float64(lowTrust) / float64(len(srcs)); frac < 0.05 || frac > 0.18 {
		t.Errorf("low-trust source share = %.2f, want ~0.10", frac)
	}
	if frac := float64(slow3) / float64(len(srcs)); frac < 0.03 || frac > 0.10 {
		t.Errorf(">=3x task-time share = %.2f, want ~0.05", frac)
	}
	if slow10 != 3 {
		t.Errorf(">=10x sources = %d, want 3", slow10)
	}
	// amt specifically: poor trust and >5x latency.
	for _, s := range srcs {
		if s.Name == "amt" {
			if s.TrustMean > 0.78 {
				t.Errorf("amt trust = %v, want ~0.75", s.TrustMean)
			}
			if s.RelTaskTime <= 5 {
				t.Errorf("amt relative task time = %v, want > 5", s.RelTaskTime)
			}
		}
	}
}

func TestSourceWorkerWeights(t *testing.T) {
	w := sourceWorkerWeights()
	if len(w) != 139 {
		t.Fatalf("weights length %d", len(w))
	}
	total := 0.0
	top := 0.0
	for i, v := range w {
		if v < 0 {
			t.Fatalf("negative weight at %d", i)
		}
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("weights sum to %v", total)
	}
	for _, name := range []string{"neodev", "clixsense", "prodege", "elite", "instagc", "tremorgames", "internal", "bitcoinget", "amt", "superrewards"} {
		for i, s := range sourceNames {
			if s == name {
				top += w[i]
			}
		}
	}
	// Section 5.1: top 10 sources ≈ 86% of workers.
	if top < 0.82 || top > 0.90 {
		t.Errorf("top-10 worker share = %.3f, want ~0.86", top)
	}
}

func TestCountryTable(t *testing.T) {
	names := CountryNames()
	if len(names) != NumCountries {
		t.Fatalf("got %d countries, want %d", len(names), NumCountries)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate country %q", n)
		}
		seen[n] = true
	}
	// Close to 50% of workers from the top five countries (Figure 28).
	w := countryWeights()
	total := stats.Sum(w)
	top5 := (w[0] + w[1] + w[2] + w[3] + w[4]) / total
	if top5 < 0.45 || top5 > 0.62 {
		t.Errorf("top-5 country share = %.3f, want ~0.5-0.55", top5)
	}
	if names[0] != "United States" || names[1] != "Venezuela" {
		t.Errorf("head countries = %v", names[:2])
	}
	if _, ok := countryIndex("India"); !ok {
		t.Error("countryIndex failed for India")
	}
	if _, ok := countryIndex("Atlantis"); ok {
		t.Error("countryIndex matched a non-country")
	}
}

func TestCatalogStructure(t *testing.T) {
	types := BuildCatalog(rng.New(7))
	if len(types) != NumTaskTypes {
		t.Fatalf("catalog size %d", len(types))
	}
	heavy := 0
	labeled := 0
	for i := range types {
		tt := &types[i]
		if tt.Goals.Len() == 0 || tt.Operators.Len() == 0 || tt.Data.Len() == 0 {
			t.Fatalf("type %d missing labels", i)
		}
		if tt.Design.Words <= 0 || tt.Design.Items <= 0 || tt.Design.Fields <= 0 {
			t.Fatalf("type %d has degenerate design %+v", i, tt.Design)
		}
		if tt.Ambiguity <= 0 || tt.Ambiguity > 0.75 {
			t.Fatalf("type %d ambiguity %v", i, tt.Ambiguity)
		}
		if tt.BaseTaskSecs <= 0 || tt.BasePickupSecs <= 0 {
			t.Fatalf("type %d non-positive latent times", i)
		}
		if tt.FirstWeek < 0 || tt.LastWeek < tt.FirstWeek || tt.LastWeek >= int32(model.NumWeeks) {
			t.Fatalf("type %d window [%d,%d]", i, tt.FirstWeek, tt.LastWeek)
		}
		if tt.HeavyHitter {
			heavy++
		}
		if tt.Labeled {
			labeled++
		}
	}
	if heavy != megaTypes+heavyTypes {
		t.Errorf("heavy hitters = %d", heavy)
	}
	if frac := float64(labeled) / float64(len(types)); frac < 0.55 || frac > 0.75 {
		t.Errorf("labeled fraction = %.2f", frac)
	}
}

func TestCatalogFeatureMedians(t *testing.T) {
	types := BuildCatalog(rng.New(8))
	words := make([]float64, 0, len(types))
	items := make([]float64, 0, len(types))
	withText, withExample, withImage := 0, 0, 0
	for i := range types {
		if i < megaTypes+heavyTypes {
			continue // size-class overrides skew items deliberately
		}
		d := types[i].Design
		words = append(words, float64(d.Words))
		items = append(items, float64(d.Items))
		if d.TextBoxes > 0 {
			withText++
		}
		if d.Examples > 0 {
			withExample++
		}
		if d.Images > 0 {
			withImage++
		}
	}
	n := float64(len(words))
	if m := stats.Median(words); m < 380 || m > 560 {
		t.Errorf("#words median = %v, want ~466", m)
	}
	if m := stats.Median(items); m < 28 || m > 56 {
		t.Errorf("#items median = %v, want ~40", m)
	}
	// Tables 1-3 feature-presence fractions.
	if f := float64(withText) / n; f < 0.38 || f > 0.58 {
		t.Errorf("text-box presence = %.2f, want ~0.47", f)
	}
	if f := float64(withExample) / n; f < 0.015 || f > 0.06 {
		t.Errorf("example presence = %.3f, want ~0.03", f)
	}
	if f := float64(withImage) / n; f < 0.18 || f > 0.40 {
		t.Errorf("image presence = %.2f, want ~0.25", f)
	}
}

func TestCatalogDesignEffects(t *testing.T) {
	// The latent metric model must carry the paper's directional effects
	// at the catalog level before any instance noise.
	types := BuildCatalog(rng.New(9))
	var disNoText, disText, timeNoText, timeText []float64
	var pickNoEx, pickEx []float64
	for i := range types {
		tt := &types[i]
		if tt.Design.TextBoxes > 0 {
			disText = append(disText, tt.Ambiguity)
			timeText = append(timeText, tt.BaseTaskSecs)
		} else {
			disNoText = append(disNoText, tt.Ambiguity)
			timeNoText = append(timeNoText, tt.BaseTaskSecs)
		}
		if tt.Design.Examples > 0 {
			pickEx = append(pickEx, tt.BasePickupSecs)
		} else {
			pickNoEx = append(pickNoEx, tt.BasePickupSecs)
		}
	}
	if stats.Median(disText) <= stats.Median(disNoText) {
		t.Error("text boxes should raise latent disagreement")
	}
	if stats.Median(timeText) <= stats.Median(timeNoText)*1.5 {
		t.Errorf("text boxes should raise task time substantially: %v vs %v",
			stats.Median(timeText), stats.Median(timeNoText))
	}
	if stats.Median(pickEx) >= stats.Median(pickNoEx)*0.6 {
		t.Errorf("examples should cut pickup time: %v vs %v",
			stats.Median(pickEx), stats.Median(pickNoEx))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 4242, Scale: 0.004})
	b := Generate(Config{Seed: 4242, Scale: 0.004})
	if a.Store.Len() != b.Store.Len() {
		t.Fatalf("row counts differ: %d vs %d", a.Store.Len(), b.Store.Len())
	}
	for i := 0; i < a.Store.Len(); i += 997 {
		if a.Store.Row(i) != b.Store.Row(i) {
			t.Fatalf("row %d differs", i)
		}
	}
	c := Generate(Config{Seed: 4243, Scale: 0.004})
	if c.Store.Len() == a.Store.Len() {
		// Extremely unlikely to match exactly across seeds.
		same := true
		for i := 0; i < a.Store.Len(); i += 991 {
			if a.Store.Row(i) != c.Store.Row(i) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical datasets")
		}
	}
}

func TestGenerateInventory(t *testing.T) {
	d := testDataset
	if len(d.Sources) != 139 {
		t.Errorf("sources = %d", len(d.Sources))
	}
	if len(d.Countries) != NumCountries {
		t.Errorf("countries = %d", len(d.Countries))
	}
	if len(d.TaskTypes) != NumTaskTypes {
		t.Errorf("task types = %d", len(d.TaskTypes))
	}
	// ~58k batches, 12k sampled (Section 2.2).
	if len(d.Batches) < 40000 || len(d.Batches) > 75000 {
		t.Errorf("batches = %d, want ~58k", len(d.Batches))
	}
	if got := len(d.SampledBatchIDs()); got != SampledBatchesFull {
		t.Errorf("sampled batches = %d, want %d", got, SampledBatchesFull)
	}
	// Instance volume ~27M × scale.
	want := InstancesFull * d.Cfg.Scale
	if n := float64(d.Store.Len()); n < want*0.7 || n > want*1.4 {
		t.Errorf("instances = %.0f, want ~%.0f", n, want)
	}
	if err := d.Store.Validate(); err != nil {
		t.Fatalf("store invalid: %v", err)
	}
}

func TestGenerateSampleCoverage(t *testing.T) {
	d := testDataset
	sampledTypes := map[uint32]bool{}
	allTypes := map[uint32]bool{}
	coveredBatches := 0
	for i := range d.Batches {
		allTypes[d.Batches[i].TaskType] = true
		if d.Batches[i].Sampled {
			sampledTypes[d.Batches[i].TaskType] = true
		}
	}
	for i := range d.Batches {
		if sampledTypes[d.Batches[i].TaskType] {
			coveredBatches++
		}
	}
	// Section 2.2: sample covers ~76% of distinct tasks and ~88% of
	// batches have representatives.
	typeFrac := float64(len(sampledTypes)) / float64(len(allTypes))
	if typeFrac < 0.70 || typeFrac > 0.85 {
		t.Errorf("sampled task-type fraction = %.2f, want ~0.76", typeFrac)
	}
	batchFrac := float64(coveredBatches) / float64(len(d.Batches))
	if batchFrac < 0.72 || batchFrac > 0.95 {
		t.Errorf("batch coverage = %.2f, want ~0.88", batchFrac)
	}
}

func TestGenerateArrivalShape(t *testing.T) {
	d := testDataset
	// Daily *arrival* load counted at batch creation (Figure 2a / 3).
	daily := timeseries.NewDaily()
	for i := range d.Batches {
		b := &d.Batches[i]
		if b.Sampled {
			daily.AddAt(b.CreatedAt.Unix(), float64(b.Instances()))
		}
	}
	post := daily.Slice(int(model.PostBoomWeek)*7, daily.Len())
	ls := timeseries.SummarizeLoad(post)
	// Median daily ~30k full scale. Declared batch volumes are already
	// full-scale (only materialization is scaled), so no rescaling here.
	if ls.Median < 10000 || ls.Median > 60000 {
		t.Errorf("full-scale daily median = %.0f, want ~30k", ls.Median)
	}
	// Busiest day up to ~30x the median (Section 3.1).
	if ls.PeakRatio < 8 || ls.PeakRatio > 80 {
		t.Errorf("peak ratio = %.1f, want ~30", ls.PeakRatio)
	}
	// Lightest day far below the median.
	if ls.TroughRatio > 0.2 {
		t.Errorf("trough ratio = %.4f, want ≪ 1", ls.TroughRatio)
	}
	// Pre-2015 is sparse: post-2015 holds the bulk of volume.
	pre := daily.Slice(0, int(model.PostBoomWeek)*7)
	if pre.Total() > 0.25*daily.Total() {
		t.Errorf("pre-2015 volume share = %.2f, want small", pre.Total()/daily.Total())
	}
}

func TestGenerateWeekdayEffect(t *testing.T) {
	d := testDataset
	daily := timeseries.NewDaily()
	for i := range d.Batches {
		b := &d.Batches[i]
		if b.Sampled {
			daily.AddAt(b.CreatedAt.Unix(), float64(b.Instances()))
		}
	}
	fold := timeseries.WeekdayFold(daily)
	weekday := (fold[0] + fold[1] + fold[2] + fold[3] + fold[4]) / 5
	weekend := (fold[5] + fold[6]) / 2
	// Weekdays carry up to ~2x the weekend volume (Figure 3).
	ratio := weekday / weekend
	if ratio < 1.3 || ratio > 3.0 {
		t.Errorf("weekday/weekend ratio = %.2f, want ~2", ratio)
	}
	// Monday is among the heaviest days; individual mega-batches land on
	// arbitrary weekdays, so allow sampling slack around the planted
	// decaying-week profile.
	for i := 1; i < 7; i++ {
		if fold[i] > fold[0]*1.4 {
			t.Errorf("day %d (%.0f) far exceeds Monday (%.0f)", i, fold[i], fold[0])
		}
	}
	if fold[5] > fold[0] || fold[6] > fold[0] {
		t.Error("weekend exceeds Monday")
	}
}

func TestGenerateWorkerEngagement(t *testing.T) {
	d := testDataset
	obs := d.ObservedWorkers()
	if len(obs) == 0 {
		t.Fatal("no observed workers")
	}
	oneDay, lt100 := 0, 0
	for _, w := range obs {
		if w.Lifetime() == 1 {
			oneDay++
		}
		if w.Lifetime() < 100 {
			lt100++
		}
	}
	// Section 5.3: 52.7% one-day lifetimes; 79% under 100 days.
	if f := float64(oneDay) / float64(len(obs)); f < 0.40 || f > 0.65 {
		t.Errorf("one-day worker share = %.2f, want ~0.53", f)
	}
	if f := float64(lt100) / float64(len(obs)); f < 0.70 || f > 0.90 {
		t.Errorf("lifetime<100d share = %.2f, want ~0.79", f)
	}
}

func TestGenerateWorkloadSkew(t *testing.T) {
	d := testDataset
	counts := map[uint32]float64{}
	for _, w := range d.Store.Workers() {
		counts[w]++
	}
	loads := make([]float64, 0, len(counts))
	for _, c := range counts {
		loads = append(loads, c)
	}
	// Section 5.2: top 10% of workers do >80% of tasks.
	if share := stats.TopShare(loads, 0.10); share < 0.72 || share > 0.95 {
		t.Errorf("top-10%% workload share = %.2f, want >0.80", share)
	}
	// One-day workers complete only a small sliver (~2.4%).
	oneDayTasks := 0.0
	for _, wid := range d.Store.Workers() {
		if d.Workers[wid].Class == model.ClassOneDay {
			oneDayTasks++
		}
	}
	if f := oneDayTasks / float64(d.Store.Len()); f > 0.12 {
		t.Errorf("one-day task share = %.3f, want small (~0.024)", f)
	}
}

func TestGenerateSourceShares(t *testing.T) {
	d := testDataset
	bySource := map[uint16]float64{}
	for _, wid := range d.Store.Workers() {
		bySource[d.Workers[wid].Source]++
	}
	shares := make([]float64, 0, len(bySource))
	for _, c := range bySource {
		shares = append(shares, c)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(shares)))
	top10 := 0.0
	for i := 0; i < 10 && i < len(shares); i++ {
		top10 += shares[i]
	}
	// Section 5.1: top 10 sources perform ~95% of tasks.
	if f := top10 / float64(d.Store.Len()); f < 0.88 || f > 0.995 {
		t.Errorf("top-10 source task share = %.3f, want ~0.95", f)
	}
	// internal ≈ 2% of tasks.
	var internalIdx uint16
	for i, s := range d.Sources {
		if s.Name == "internal" {
			internalIdx = uint16(i)
		}
	}
	if f := bySource[internalIdx] / float64(d.Store.Len()); f < 0.002 || f > 0.08 {
		t.Errorf("internal task share = %.3f, want ~0.02", f)
	}
}

func TestGenerateTrustDistribution(t *testing.T) {
	d := testDataset
	for _, tr := range d.Store.Trusts() {
		if tr < 0 || tr > 1 {
			t.Fatalf("trust %v out of range", tr)
		}
	}
	// Active workers' mean trust is high (Section 5.4: ≥0.91 mean; 90%
	// above 0.84).
	var activeTrust []float64
	for _, w := range d.ObservedWorkers() {
		if w.Class == model.ClassActive || w.Class == model.ClassSuper {
			activeTrust = append(activeTrust, w.TrustMean)
		}
	}
	if m := stats.Mean(activeTrust); m < 0.85 {
		t.Errorf("active worker mean trust = %.3f, want ≥ ~0.9", m)
	}
}

func TestGenerateTimesValid(t *testing.T) {
	d := testDataset
	starts := d.Store.Starts()
	ends := d.Store.Ends()
	epoch := model.Epoch.Unix()
	horizon := model.Horizon.Unix()
	for i := range starts {
		if starts[i] < epoch {
			t.Fatalf("row %d starts before epoch", i)
		}
		if starts[i] > horizon {
			t.Fatalf("row %d starts after horizon", i)
		}
		if ends[i] < starts[i] {
			t.Fatalf("row %d ends before start", i)
		}
	}
}

func TestGenerateHTML(t *testing.T) {
	d := testDataset
	ids := d.SampledBatchIDs()
	page, ok := d.BatchHTML(ids[0])
	if !ok || page == "" {
		t.Fatal("sampled batch has no HTML")
	}
	// Unsampled batches expose no HTML (the paper's sample restriction).
	for i := range d.Batches {
		if !d.Batches[i].Sampled {
			if _, ok := d.BatchHTML(uint32(i)); ok {
				t.Fatal("unsampled batch exposed HTML")
			}
			break
		}
	}
	// Two batches of the same type render near-identical pages.
	typeOf := d.Batches[ids[0]].TaskType
	for _, id := range ids[1:] {
		if d.Batches[id].TaskType == typeOf {
			other, _ := d.BatchHTML(id)
			if other == page {
				t.Error("batch tag should differentiate pages")
			}
			return
		}
	}
}

func TestGenerateItemRedundancy(t *testing.T) {
	d := testDataset
	// Within a batch, an item's answers come from distinct workers.
	ids := d.SampledBatchIDs()
	checked := 0
	for _, bid := range ids {
		lo, hi := d.Store.BatchRange(bid)
		if hi-lo < 4 {
			continue
		}
		seen := map[[2]uint32]bool{}
		items := d.Store.Items()
		workers := d.Store.Workers()
		for i := lo; i < hi; i++ {
			key := [2]uint32{items[i], workers[i]}
			if seen[key] {
				t.Fatalf("batch %d: worker %d answered item %d twice", bid, workers[i], items[i])
			}
			seen[key] = true
		}
		checked++
		if checked >= 50 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no batches checked")
	}
}

func TestDeviationProb(t *testing.T) {
	// q inverts the pairwise-disagreement formula: verify round trip.
	for _, d := range []float64{0.01, 0.1, 0.3, 0.6} {
		q := deviationProb(d)
		got := 1 - ((1-q)*(1-q) + q*q/3)
		if math.Abs(got-d) > 1e-9 {
			t.Errorf("deviationProb(%v): round trip %v", d, got)
		}
	}
	if deviationProb(0) != 0 {
		t.Error("deviationProb(0) != 0")
	}
	if q := deviationProb(0.9); q > 0.751 {
		t.Errorf("clamped q = %v", q)
	}
}

func TestScaleValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scale %v should panic", bad)
				}
			}()
			Generate(Config{Seed: 1, Scale: bad})
		}()
	}
}

// TestRehydrateMatchesGenerate: rebuilding a dataset around a
// snapshot-restored store is indistinguishable from generating it — the
// load path every -snapshot CLI flow rides on.
func TestRehydrateMatchesGenerate(t *testing.T) {
	cfg := Config{Seed: 4242, Scale: 0.004}
	gen := Generate(cfg)

	var buf bytes.Buffer
	if _, err := gen.Store.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	var restored store.Store
	if _, err := restored.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	re, err := Rehydrate(cfg, &restored)
	if err != nil {
		t.Fatalf("Rehydrate: %v", err)
	}

	if re.Store.Len() != gen.Store.Len() {
		t.Fatalf("rows %d vs %d", re.Store.Len(), gen.Store.Len())
	}
	for i := 0; i < gen.Store.Len(); i += 499 {
		if re.Store.Row(i) != gen.Store.Row(i) {
			t.Fatalf("row %d differs", i)
		}
	}
	if len(re.Batches) != len(gen.Batches) || len(re.Workers) != len(gen.Workers) ||
		len(re.TaskTypes) != len(gen.TaskTypes) || len(re.Sources) != len(gen.Sources) {
		t.Fatal("inventory shapes differ")
	}
	for i := range gen.Batches {
		if re.Batches[i].Title != gen.Batches[i].Title || re.Batches[i].CreatedAt != gen.Batches[i].CreatedAt {
			t.Fatalf("batch %d differs", i)
		}
	}
	// Worker activity windows derive from the store, so the observed
	// populations must agree too.
	if got, want := len(re.ObservedWorkers()), len(gen.ObservedWorkers()); got != want {
		t.Fatalf("observed workers %d vs %d", got, want)
	}
	for i := range gen.Workers {
		if re.Workers[i] != gen.Workers[i] {
			t.Fatalf("worker %d differs: %+v vs %+v", i, re.Workers[i], gen.Workers[i])
		}
	}
	// Sampled HTML must render identically (clustering depends on it).
	for _, id := range gen.SampledBatchIDs()[:10] {
		a, _ := gen.BatchHTML(id)
		b, _ := re.BatchHTML(id)
		if a != b {
			t.Fatalf("batch %d HTML differs", id)
		}
	}
}

// TestConfigHash: the provenance hash tracks data-affecting fields only.
func TestConfigHash(t *testing.T) {
	base := Config{Seed: 1701, Scale: 0.02}
	if base.Hash() != (Config{Seed: 1701, Scale: 0.02, Parallelism: 8}).Hash() {
		t.Error("Parallelism must not affect the config hash")
	}
	if base.Hash() == (Config{Seed: 1702, Scale: 0.02}).Hash() {
		t.Error("seed change should change the hash")
	}
	if base.Hash() == (Config{Seed: 1701, Scale: 0.04}).Hash() {
		t.Error("scale change should change the hash")
	}
	if base.Hash() == (Config{Seed: 1701, Scale: 0.02, LearningGamma: 0.3}).Hash() {
		t.Error("learning gamma change should change the hash")
	}
}

// TestRehydrateRejectsForeignStore: a snapshot whose worker IDs exceed
// the inventory regenerated from the config (e.g. a pre-v3 snapshot with
// no provenance, loaded under the wrong -scale) must error, not panic in
// observeWorkerActivity.
func TestRehydrateRejectsForeignStore(t *testing.T) {
	big := Generate(Config{Seed: 9, Scale: 0.008}) // larger worker population
	if _, err := Rehydrate(Config{Seed: 9, Scale: 0.004}, big.Store); err == nil {
		t.Fatal("foreign store accepted")
	}
	// A store with out-of-inventory batch ranges is refused too.
	st := store.New(int(1e6))
	if _, err := Rehydrate(Config{Seed: 9, Scale: 0.004}, st); err == nil {
		t.Fatal("oversized batch table accepted")
	}
}
