// Package htmlgen synthesizes task-interface HTML for the marketplace
// simulator. The paper's dataset carries one sample HTML page per batch;
// requesters' design decisions (#words, #text-boxes, #examples, #images,
// question style) are all visible in that markup. This generator emits real
// HTML whose extracted features (internal/htmlfeat) match a TaskType's
// DesignParams exactly, so the Section 4 analyses run against markup the
// same way the authors' did.
//
// Pages for the same task type are near-identical across batches (differing
// only in item references), which is what lets the Section 3.3 clustering
// recover distinct tasks from batch HTML.
package htmlgen

import (
	"fmt"
	"strings"

	"crowdscope/internal/model"
)

// vocabulary is the deterministic filler lexicon. Instruction text is
// synthesized from it with a per-task-type phase so different tasks have
// different (but stable) wording.
var vocabulary = []string{
	"please", "review", "the", "following", "item", "carefully", "before",
	"submitting", "your", "answer", "read", "each", "question", "and",
	"select", "option", "that", "best", "matches", "content", "if", "you",
	"are", "unsure", "choose", "closest", "match", "do", "not", "use",
	"external", "tools", "unless", "instructed", "work", "must", "be",
	"completed", "in", "single", "session", "provide", "accurate",
	"information", "only", "check", "spelling", "of", "any", "text",
	"entered", "into", "form", "fields", "results", "will", "reviewed",
	"for", "quality", "payment", "depends", "on", "accuracy", "responses",
	"open", "link", "a", "new", "tab", "when", "needed", "compare", "both",
	"records", "decide", "whether", "they", "refer", "to", "same", "entity",
	"rate", "relevance", "scale", "shown", "below", "describe", "what",
	"see", "image", "using", "complete", "sentences", "transcribe", "audio",
	"exactly", "as", "spoken", "including", "punctuation", "skip",
	"segments", "marked", "inaudible", "flag", "inappropriate", "spam",
	"offensive", "material", "with", "button", "search", "web", "business",
	"name", "address", "find", "official", "website", "url", "copy", "it",
	"field", "verify", "phone", "number", "country", "code", "label",
	"every", "object", "visible", "scene", "draw", "tight", "bounding",
	"box", "around", "person", "classify", "sentiment", "positive",
	"negative", "neutral", "mixed", "summarize", "main", "point", "article",
	"two", "sentences", "extract", "all", "dates", "mentioned", "document",
	"format", "them", "consistently", "answers", "saved", "automatically",
}

// Options configure page generation beyond the task's design parameters.
type Options struct {
	// Seed varies wording across task types; pages with equal Seed and
	// equal design render identically.
	Seed uint64
	// BatchTag, when non-empty, is embedded as a batch-specific comment
	// and item reference, producing the small cross-batch variation real
	// data has.
	BatchTag string
}

// Render produces the sample task page for a task type.
func Render(tt model.TaskType, opt Options) string {
	var b strings.Builder
	b.Grow(4096 + 8*tt.Design.Words)
	g := &gen{b: &b, phase: opt.Seed}

	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", pageTitle(tt))
	b.WriteString("<meta charset=\"utf-8\">\n</head>\n<body>\n")
	if opt.BatchTag != "" {
		fmt.Fprintf(&b, "<!-- batch:%s -->\n", opt.BatchTag)
	}
	fmt.Fprintf(&b, "<h1>%s</h1>\n", pageTitle(tt))

	// Budget visible words so the extracted #words matches Design.Words.
	// Fixed page furniture contributes a known word count; instructions
	// absorb the remainder.
	furniture := g.countFixedWords(tt)
	instrWords := tt.Design.Words - furniture
	if instrWords < 0 {
		instrWords = 0
	}

	// Instructions.
	b.WriteString("<div class=\"instructions\" id=\"instructions\">\n")
	g.paragraphs(instrWords)
	b.WriteString("</div>\n")

	// Examples: the word "Example" wrapped in a tag of its own, as the
	// paper's #examples feature requires.
	for i := 0; i < tt.Design.Examples; i++ {
		fmt.Fprintf(&b, "<div class=\"example-block\"><b>Example %d</b>", i+1)
		b.WriteString("<p>")
		g.words(exampleWords)
		b.WriteString("</p></div>\n")
	}

	// Images.
	for i := 0; i < tt.Design.Images; i++ {
		fmt.Fprintf(&b, "<img src=\"https://cdn.example.net/assets/%d/%d.jpg\" alt=\"\">\n", opt.Seed%9973, i)
	}

	// The question area: item placeholder plus input fields determined by
	// the design.
	b.WriteString("<div class=\"task-item\" data-item=\"{{item_id}}\">\n")
	b.WriteString("<p>")
	g.words(questionWords)
	b.WriteString("</p>\n")

	// Operator-specific interface blocks: the markup vocabulary differs
	// by human operator just as real task templates do.
	radios, checks := choiceFields(tt)
	emitted := 0
	if tt.Operators.Has(model.OpSort) {
		b.WriteString("<ol class=\"sortable\">\n")
		for li := 0; li < sortListItems; li++ {
			b.WriteString("<li>")
			g.words(sortItemWords)
			b.WriteString("</li>\n")
		}
		b.WriteString("</ol>\n")
	}
	if tt.Operators.Has(model.OpLocalize) {
		b.WriteString("<div class=\"bbox-tool\" data-tool=\"rect\" data-target=\"{{item_id}}\"></div>\n")
	}
	if tt.Operators.Has(model.OpExternal) {
		b.WriteString("<a class=\"external-task\" href=\"https://survey.example.org/{{item_id}}\" target=\"_blank\">")
		g.words(externalLinkWords)
		b.WriteString("</a>\n")
	}
	if tt.Operators.Has(model.OpCount) && emitted < tt.Design.Fields-1 {
		b.WriteString("<input type=\"number\" name=\"count\" min=\"0\">\n")
		emitted++
	}
	for i := 0; i < radios; i++ {
		fmt.Fprintf(&b, "<label><input type=\"radio\" name=\"q\" value=\"opt%d\"> ", i)
		g.words(2)
		b.WriteString("</label>\n")
		emitted++
	}
	for i := 0; i < checks; i++ {
		fmt.Fprintf(&b, "<label><input type=\"checkbox\" name=\"c%d\"> ", i)
		g.words(2)
		b.WriteString("</label>\n")
		emitted++
	}
	for i := 0; i < tt.Design.TextBoxes; i++ {
		if i%2 == 0 {
			fmt.Fprintf(&b, "<input type=\"text\" name=\"t%d\" placeholder=\"\">\n", i)
		} else {
			fmt.Fprintf(&b, "<textarea name=\"t%d\" rows=\"3\"></textarea>\n", i)
		}
		emitted++
	}
	// Pad remaining fields with selects so Fields matches the design.
	for emitted < tt.Design.Fields-1 { // -1: the submit button is a field
		fmt.Fprintf(&b, "<select name=\"s%d\"><option>-</option></select>\n", emitted)
		emitted++
	}
	b.WriteString("<button type=\"submit\">Submit</button>\n")
	b.WriteString("</div>\n</body>\n</html>\n")
	return b.String()
}

const (
	exampleWords      = 18
	questionWords     = 8
	sortListItems     = 3
	sortItemWords     = 2
	externalLinkWords = 4
)

// gen tracks deterministic word emission.
type gen struct {
	b     *strings.Builder
	phase uint64
}

func (g *gen) nextWord() string {
	w := vocabulary[g.phase%uint64(len(vocabulary))]
	// A multiplicative step with odd stride visits all vocabulary slots.
	g.phase = g.phase*6364136223846793005 + 1442695040888963407
	return w
}

// words writes n space-separated words.
func (g *gen) words(n int) {
	for i := 0; i < n; i++ {
		if i > 0 {
			g.b.WriteByte(' ')
		}
		g.b.WriteString(g.nextWord())
	}
}

// paragraphs writes n words split into <p> blocks of roughly 60 words.
func (g *gen) paragraphs(n int) {
	for n > 0 {
		chunk := 60
		if n < chunk {
			chunk = n
		}
		g.b.WriteString("<p>")
		g.words(chunk)
		g.b.WriteString("</p>\n")
		n -= chunk
	}
}

// countFixedWords computes the number of visible words the fixed furniture
// of the page contributes: title(h1), examples, question, option labels,
// the select placeholder dashes and submit button.
func (g *gen) countFixedWords(tt model.TaskType) int {
	n := len(strings.Fields(pageTitle(tt)))      // h1 only; <title> is head metadata but still text to our tokenizer
	n += len(strings.Fields(pageTitle(tt)))      // <title> text node
	n += tt.Design.Examples * (2 + exampleWords) // "Example N" + body
	n += questionWords
	if tt.Operators.Has(model.OpSort) {
		n += sortListItems * sortItemWords
	}
	if tt.Operators.Has(model.OpExternal) {
		n += externalLinkWords
	}
	radios, checks := choiceFields(tt)
	n += (radios + checks) * 2 // two-word labels
	selects := tt.Design.Fields - 1 - radios - checks - tt.Design.TextBoxes
	if tt.Operators.Has(model.OpCount) {
		selects-- // the number input occupies one field slot
	}
	if selects > 0 {
		n += selects // each select renders "-"
	}
	n++ // "Submit"
	return n
}

// choiceFields derives how many radio/checkbox fields the page shows from
// the design: all non-text fields beyond selects/submit (and the count
// operator's number input), split between radios and checkboxes.
func choiceFields(tt model.TaskType) (radios, checks int) {
	choice := tt.Design.Fields - 1 - tt.Design.TextBoxes
	if tt.Operators.Has(model.OpCount) {
		choice-- // the number input occupies one field slot
	}
	if choice < 0 {
		choice = 0
	}
	// Cap the padding selects at 20% of fields by giving most slots to
	// radio options.
	radios = choice * 4 / 5
	checks = choice - radios - choice/5
	if checks < 0 {
		checks = 0
	}
	return radios, checks
}

// pageTitle names the page after the task's primary goal and operator.
func pageTitle(tt model.TaskType) string {
	goal := "General Task"
	tt.Goals.Each(func(g model.Goal) {
		if goal == "General Task" {
			goal = g.LongName()
		}
	})
	op := ""
	tt.Operators.Each(func(o model.Operator) {
		if op == "" {
			op = o.LongName()
		}
	})
	if op == "" {
		return goal
	}
	return goal + " — " + op
}
