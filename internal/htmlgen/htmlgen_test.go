package htmlgen

import (
	"strings"
	"testing"

	"crowdscope/internal/htmlfeat"
	"crowdscope/internal/model"
)

func taskType(d model.DesignParams) model.TaskType {
	return model.TaskType{
		ID: 7,
		Labels: model.Labels{
			Goals:     model.GoalSet(0).With(model.GoalSR),
			Operators: model.OpSet(0).With(model.OpRate),
			Data:      model.DataSet(0).With(model.DataText),
		},
		Design: d,
	}
}

func TestRenderFeatureRoundTrip(t *testing.T) {
	designs := []model.DesignParams{
		{Words: 200, TextBoxes: 0, Examples: 0, Images: 0, Fields: 5},
		{Words: 700, TextBoxes: 2, Examples: 1, Images: 0, Fields: 6},
		{Words: 1500, TextBoxes: 0, Examples: 3, Images: 4, Fields: 8},
		{Words: 466, TextBoxes: 1, Examples: 0, Images: 1, Fields: 3},
		{Words: 6000, TextBoxes: 5, Examples: 2, Images: 2, Fields: 10},
	}
	for _, d := range designs {
		src := Render(taskType(d), Options{Seed: 11})
		f := htmlfeat.Extract(src)
		if f.TextBoxes != d.TextBoxes {
			t.Errorf("design %+v: TextBoxes = %d", d, f.TextBoxes)
		}
		if f.Images != d.Images {
			t.Errorf("design %+v: Images = %d", d, f.Images)
		}
		if f.Examples != d.Examples {
			t.Errorf("design %+v: Examples = %d", d, f.Examples)
		}
		if f.Fields != d.Fields {
			t.Errorf("design %+v: Fields = %d (want %d)", d, f.Fields, d.Fields)
		}
		if diff := f.Words - d.Words; diff < -3 || diff > 3 {
			t.Errorf("design %+v: Words = %d, want ~%d", d, f.Words, d.Words)
		}
		if !f.HasInstructions {
			t.Errorf("design %+v: instructions block missing", d)
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	d := model.DesignParams{Words: 500, TextBoxes: 1, Examples: 1, Images: 1, Fields: 5}
	a := Render(taskType(d), Options{Seed: 3})
	b := Render(taskType(d), Options{Seed: 3})
	if a != b {
		t.Error("same seed should render identical pages")
	}
	c := Render(taskType(d), Options{Seed: 4})
	if a == c {
		t.Error("different seeds should change wording")
	}
}

func TestRenderBatchTagVariation(t *testing.T) {
	d := model.DesignParams{Words: 300, Fields: 4}
	a := Render(taskType(d), Options{Seed: 1, BatchTag: "b1"})
	b := Render(taskType(d), Options{Seed: 1, BatchTag: "b2"})
	if a == b {
		t.Error("batch tags should differentiate pages")
	}
	// But the features must be identical.
	fa, fb := htmlfeat.Extract(a), htmlfeat.Extract(b)
	if fa != fb {
		t.Errorf("features differ across batches: %+v vs %+v", fa, fb)
	}
	// And similarity must stay near 1 for clustering to work.
	sim := htmlfeat.Jaccard(htmlfeat.Shingles(a, 4), htmlfeat.Shingles(b, 4))
	if sim < 0.95 {
		t.Errorf("cross-batch similarity = %.3f, want ~1", sim)
	}
}

func TestRenderDistinctTasksDissimilar(t *testing.T) {
	d1 := model.DesignParams{Words: 300, TextBoxes: 2, Fields: 5}
	d2 := model.DesignParams{Words: 900, Examples: 2, Images: 3, Fields: 8}
	t1 := taskType(d1)
	t2 := model.TaskType{
		ID: 9,
		Labels: model.Labels{
			Goals:     model.GoalSet(0).With(model.GoalT),
			Operators: model.OpSet(0).With(model.OpExtract),
			Data:      model.DataSet(0).With(model.DataImage),
		},
		Design: d2,
	}
	a := Render(t1, Options{Seed: 100})
	b := Render(t2, Options{Seed: 200})
	sim := htmlfeat.Jaccard(htmlfeat.Shingles(a, 4), htmlfeat.Shingles(b, 4))
	if sim > 0.5 {
		t.Errorf("distinct tasks too similar: %.3f", sim)
	}
}

func TestRenderWellFormed(t *testing.T) {
	d := model.DesignParams{Words: 400, TextBoxes: 2, Examples: 1, Images: 1, Fields: 6}
	src := Render(taskType(d), Options{Seed: 5})
	if !strings.HasPrefix(src, "<!DOCTYPE html>") {
		t.Error("missing doctype")
	}
	for _, tag := range []string{"<html>", "</html>", "<body>", "</body>", "<h1>"} {
		if !strings.Contains(src, tag) {
			t.Errorf("missing %s", tag)
		}
	}
	if !strings.Contains(src, "{{item_id}}") {
		t.Error("missing item placeholder")
	}
}

func TestRenderTitleReflectsLabels(t *testing.T) {
	tt := taskType(model.DesignParams{Words: 100, Fields: 2})
	src := Render(tt, Options{})
	if !strings.Contains(src, "Search Relevance") {
		t.Error("title should carry the goal name")
	}
	if !strings.Contains(src, "Rate") {
		t.Error("title should carry the operator name")
	}
}

func TestRenderZeroFields(t *testing.T) {
	// Degenerate design: still valid HTML with at least the submit button.
	d := model.DesignParams{Words: 50, Fields: 0}
	src := Render(taskType(d), Options{})
	f := htmlfeat.Extract(src)
	if f.Fields < 1 {
		t.Errorf("Fields = %d, want >= 1 (submit button)", f.Fields)
	}
}

func BenchmarkRender(b *testing.B) {
	tt := taskType(model.DesignParams{Words: 600, TextBoxes: 2, Examples: 1, Images: 2, Fields: 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Render(tt, Options{Seed: uint64(i)})
	}
}
