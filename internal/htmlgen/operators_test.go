package htmlgen

import (
	"strings"
	"testing"

	"crowdscope/internal/htmlfeat"
	"crowdscope/internal/model"
)

func opTaskType(ops model.OpSet, d model.DesignParams) model.TaskType {
	return model.TaskType{
		ID: 3,
		Labels: model.Labels{
			Goals:     model.GoalSet(0).With(model.GoalQA),
			Operators: ops,
			Data:      model.DataSet(0).With(model.DataImage),
		},
		Design: d,
	}
}

func TestOperatorBlocksPresent(t *testing.T) {
	d := model.DesignParams{Words: 500, TextBoxes: 1, Fields: 6}
	cases := []struct {
		op     model.Operator
		marker string
	}{
		{model.OpSort, `class="sortable"`},
		{model.OpLocalize, `class="bbox-tool"`},
		{model.OpExternal, `class="external-task"`},
		{model.OpCount, `type="number"`},
	}
	for _, c := range cases {
		src := Render(opTaskType(model.OpSet(0).With(c.op), d), Options{Seed: 8})
		if !strings.Contains(src, c.marker) {
			t.Errorf("%v page missing %s", c.op, c.marker)
		}
		// Absent for other operators.
		other := Render(opTaskType(model.OpSet(0).With(model.OpFilter), d), Options{Seed: 8})
		if strings.Contains(other, c.marker) {
			t.Errorf("filter page unexpectedly contains %s", c.marker)
		}
	}
}

func TestOperatorBlocksPreserveFeatureRoundTrip(t *testing.T) {
	// The word/field budget must stay exact for every operator mix.
	designs := []model.DesignParams{
		{Words: 300, TextBoxes: 0, Fields: 5},
		{Words: 800, TextBoxes: 2, Examples: 1, Images: 1, Fields: 8},
	}
	opSets := []model.OpSet{
		model.OpSet(0).With(model.OpSort),
		model.OpSet(0).With(model.OpLocalize),
		model.OpSet(0).With(model.OpExternal),
		model.OpSet(0).With(model.OpCount),
		model.OpSet(0).With(model.OpSort).With(model.OpCount).With(model.OpExternal),
		model.OpSet(0).With(model.OpFilter).With(model.OpLocalize),
	}
	for _, d := range designs {
		for _, ops := range opSets {
			tt := opTaskType(ops, d)
			f := htmlfeat.Extract(Render(tt, Options{Seed: 4}))
			if f.TextBoxes != d.TextBoxes {
				t.Errorf("ops %v design %+v: TextBoxes = %d", ops, d, f.TextBoxes)
			}
			if f.Images != d.Images {
				t.Errorf("ops %v design %+v: Images = %d", ops, d, f.Images)
			}
			if f.Examples != d.Examples {
				t.Errorf("ops %v design %+v: Examples = %d", ops, d, f.Examples)
			}
			if f.Fields != d.Fields {
				t.Errorf("ops %v design %+v: Fields = %d, want %d", ops, d, f.Fields, d.Fields)
			}
			if diff := f.Words - d.Words; diff < -3 || diff > 3 {
				t.Errorf("ops %v design %+v: Words = %d, want ~%d", ops, d, f.Words, d.Words)
			}
		}
	}
}

func TestOperatorBlocksImproveSeparability(t *testing.T) {
	// Pages for different operators should be more dissimilar than pages
	// for the same operator with different seeds' wording.
	d := model.DesignParams{Words: 400, Fields: 6}
	sortA := Render(opTaskType(model.OpSet(0).With(model.OpSort), d), Options{Seed: 1})
	sortB := Render(opTaskType(model.OpSet(0).With(model.OpSort), d), Options{Seed: 1, BatchTag: "x"})
	loc := Render(opTaskType(model.OpSet(0).With(model.OpLocalize), d), Options{Seed: 1})
	same := htmlfeat.Jaccard(htmlfeat.Shingles(sortA, 4), htmlfeat.Shingles(sortB, 4))
	cross := htmlfeat.Jaccard(htmlfeat.Shingles(sortA, 4), htmlfeat.Shingles(loc, 4))
	if cross >= same {
		t.Errorf("cross-operator similarity %.3f not below same-task %.3f", cross, same)
	}
}
