// Package stats implements the statistical toolkit the paper's analyses
// rely on: order statistics (median, arbitrary quantiles), descriptive
// moments, empirical CDFs, histograms, Welch's t-test with exact two-sided
// p-values via the regularized incomplete beta function, rank correlation,
// and concentration measures. Go's standard library has none of these, so
// they are implemented here from first principles with property tests.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean; NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance; NaN for fewer than
// two observations. A two-pass algorithm keeps it numerically stable.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	comp := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
		comp += d
	}
	// Correct for rounding in the mean (Björck's compensated form).
	n := float64(len(xs))
	return (ss - comp*comp/n) / (n - 1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Sum returns the sum of the sample.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the smallest observation; NaN for an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation; NaN for an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the sample median without modifying xs. For even-length
// samples it averages the two central order statistics. It runs in expected
// linear time via quickselect.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	buf := make([]float64, n)
	copy(buf, xs)
	return medianInPlace(buf)
}

// MedianInPlace returns the median, reordering xs.
func MedianInPlace(xs []float64) float64 { return medianInPlace(xs) }

func medianInPlace(buf []float64) float64 {
	n := len(buf)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return selectKth(buf, n/2)
	}
	lo := selectKth(buf, n/2-1)
	// After selecting k, elements right of k are >= buf[k]; the (n/2)-th
	// order statistic is the minimum of that suffix.
	hi := buf[n/2]
	for _, v := range buf[n/2+1:] {
		if v < hi {
			hi = v
		}
	}
	return (lo + hi) / 2
}

// selectKth partially sorts buf so buf[k] holds the k-th order statistic
// (0-based) and returns it. Median-of-three pivoting with insertion sort on
// small ranges keeps adversarial inputs at bay.
func selectKth(buf []float64, k int) float64 {
	lo, hi := 0, len(buf)-1
	for {
		if hi-lo < 12 {
			insertionSort(buf[lo : hi+1])
			return buf[k]
		}
		p := medianOfThreePivot(buf, lo, hi)
		p = partition(buf, lo, hi, p)
		switch {
		case k == p:
			return buf[k]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func medianOfThreePivot(buf []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	a, b, c := buf[lo], buf[mid], buf[hi]
	switch {
	case (a <= b && b <= c) || (c <= b && b <= a):
		return mid
	case (b <= a && a <= c) || (c <= a && a <= b):
		return lo
	default:
		return hi
	}
}

func partition(buf []float64, lo, hi, pivot int) int {
	pv := buf[pivot]
	buf[pivot], buf[hi] = buf[hi], buf[pivot]
	store := lo
	for i := lo; i < hi; i++ {
		if buf[i] < pv {
			buf[i], buf[store] = buf[store], buf[i]
			store++
		}
	}
	buf[store], buf[hi] = buf[hi], buf[store]
	return store
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between closest ranks (type-7, the R/NumPy default). xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	buf := make([]float64, n)
	copy(buf, xs)
	sort.Float64s(buf)
	return quantileSorted(buf, q)
}

// QuantileSorted returns the q-quantile of an already ascending sample.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Gini returns the Gini concentration coefficient of a non-negative sample:
// 0 for perfectly even, approaching 1 as a few observations dominate. The
// worker-workload analyses (top-10% doing >80% of tasks) use it as a
// summary of skew.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	buf := make([]float64, n)
	copy(buf, xs)
	sort.Float64s(buf)
	var cum, weighted float64
	for i, x := range buf {
		cum += x
		weighted += float64(i+1) * x
	}
	if cum == 0 {
		return 0
	}
	nf := float64(n)
	return (2*weighted - (nf+1)*cum) / (nf * cum)
}

// TopShare returns the fraction of the total held by the top `frac` share
// of observations (e.g. TopShare(loads, 0.10) = fraction of work done by
// the top 10%). It returns NaN for an empty sample.
func TopShare(xs []float64, frac float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	buf := make([]float64, n)
	copy(buf, xs)
	sort.Sort(sort.Reverse(sort.Float64Slice(buf)))
	k := int(math.Ceil(frac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	top := Sum(buf[:k])
	total := Sum(buf)
	if total == 0 {
		return 0
	}
	return top / total
}
