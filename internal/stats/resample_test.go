package stats

import (
	"math"
	"testing"

	"crowdscope/internal/rng"
)

func TestBootstrapMedianCICoversTruth(t *testing.T) {
	r := rng.New(101)
	// Median of N(10, 2) is 10; the CI should cover it most of the time.
	covered := 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = r.Normal(10, 2)
		}
		ci := BootstrapMedianCI(r, xs, 0.95, 400)
		if ci.Contains(10) {
			covered++
		}
		if ci.Lo > ci.Point || ci.Hi < ci.Point {
			t.Fatalf("point %v outside [%v,%v]", ci.Point, ci.Lo, ci.Hi)
		}
	}
	if covered < trials*80/100 {
		t.Errorf("95%% CI covered truth only %d/%d times", covered, trials)
	}
}

func TestBootstrapCIWidthShrinksWithN(t *testing.T) {
	r := rng.New(102)
	width := func(n int) float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(0, 1)
		}
		return BootstrapMedianCI(r, xs, 0.95, 300).Width()
	}
	small := width(50)
	large := width(5000)
	if large >= small {
		t.Errorf("CI width should shrink: n=50 %.3f vs n=5000 %.3f", small, large)
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	r := rng.New(103)
	ci := BootstrapMedianCI(r, nil, 0.95, 100)
	if !math.IsNaN(ci.Lo) {
		t.Error("empty sample should give NaN bounds")
	}
	ci = BootstrapMedianCI(r, []float64{5, 5, 5}, 0.95, 100)
	if ci.Lo != 5 || ci.Hi != 5 {
		t.Errorf("constant sample CI = [%v,%v]", ci.Lo, ci.Hi)
	}
	if BootstrapMedianCI(r, []float64{1}, 1.5, 100).Level != 1.5 {
		t.Error("invalid level recorded")
	}
}

func TestKSTestSameDistribution(t *testing.T) {
	r := rng.New(104)
	rejected := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 120)
		b := make([]float64, 150)
		for i := range a {
			a[i] = r.Normal(3, 1)
		}
		for i := range b {
			b[i] = r.Normal(3, 1)
		}
		if KSTest(a, b).Significant(0.01) {
			rejected++
		}
	}
	if rejected > 8 {
		t.Errorf("KS rejected the null %d/%d times at alpha=0.01", rejected, trials)
	}
}

func TestKSTestSeparatedDistributions(t *testing.T) {
	r := rng.New(105)
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = r.Normal(0, 1)
		b[i] = r.Normal(1.2, 1)
	}
	res := KSTest(a, b)
	if !res.Significant(0.01) {
		t.Errorf("separated samples not rejected: D=%v p=%v", res.D, res.P)
	}
}

func TestKSTestDetectsVarianceShift(t *testing.T) {
	// Same mean, different spread: a t-test misses it, KS must not.
	r := rng.New(106)
	a := make([]float64, 400)
	b := make([]float64, 400)
	for i := range a {
		a[i] = r.Normal(0, 0.4)
		b[i] = r.Normal(0, 3)
	}
	ks := KSTest(a, b)
	tt := WelchTTest(a, b)
	if !ks.Significant(0.01) {
		t.Errorf("KS missed a variance shift: p=%v", ks.P)
	}
	if tt.Significant(0.01) {
		t.Logf("note: t-test also fired (p=%v) — unusual but possible", tt.P)
	}
}

func TestKSTestEmpty(t *testing.T) {
	res := KSTest(nil, []float64{1})
	if !math.IsNaN(res.P) || res.Significant(0.01) {
		t.Error("empty input should be NaN and not significant")
	}
}

func TestKSPValueBounds(t *testing.T) {
	for _, l := range []float64{0, 0.1, 0.5, 1, 2, 5} {
		p := ksPValue(l)
		if p < 0 || p > 1 {
			t.Errorf("ksPValue(%v) = %v", l, p)
		}
	}
	if ksPValue(0) != 1 {
		t.Error("lambda=0 should give p=1")
	}
	if ksPValue(3) > 1e-6 {
		t.Errorf("large lambda should vanish: %v", ksPValue(3))
	}
}

func TestPermutationTestAgreesWithT(t *testing.T) {
	r := rng.New(107)
	a := make([]float64, 60)
	b := make([]float64, 60)
	for i := range a {
		a[i] = r.Normal(0, 1)
		b[i] = r.Normal(1, 1)
	}
	p := PermutationTest(r, a, b, Mean, 500)
	if p > 0.01 {
		t.Errorf("permutation test missed a 1-sigma mean shift: p=%v", p)
	}
	// Null case.
	c := make([]float64, 60)
	for i := range c {
		c[i] = r.Normal(0, 1)
	}
	pNull := PermutationTest(r, a, c, Mean, 500)
	if pNull < 0.01 {
		t.Errorf("permutation test false positive: p=%v", pNull)
	}
}

func TestPermutationTestMedianStatistic(t *testing.T) {
	r := rng.New(108)
	// Heavy outliers wreck the mean; the median-based permutation test
	// still detects the shift.
	a := make([]float64, 80)
	b := make([]float64, 80)
	for i := range a {
		a[i] = r.Normal(0, 0.5)
		b[i] = r.Normal(2, 0.5)
	}
	a[0], a[1] = 500, -500 // outliers
	p := PermutationTest(r, a, b, Median, 400)
	if p > 0.01 {
		t.Errorf("median permutation test missed the shift: p=%v", p)
	}
}

func TestPermutationTestDegenerate(t *testing.T) {
	r := rng.New(109)
	if !math.IsNaN(PermutationTest(r, nil, []float64{1}, Mean, 100)) {
		t.Error("empty input should give NaN")
	}
}
