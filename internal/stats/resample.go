package stats

import (
	"math"
	"sort"

	"crowdscope/internal/rng"
)

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Point    float64
	Lo, Hi   float64
	Level    float64 // e.g. 0.95
	Resample int     // bootstrap replicates used
}

// Contains reports whether v lies inside the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// Width returns Hi - Lo.
func (c CI) Width() float64 { return c.Hi - c.Lo }

// BootstrapCI estimates a confidence interval for statistic over xs by
// non-parametric bootstrap with the percentile method. The paper reports
// point medians only; the reproduction attaches uncertainty so
// paper-vs-measured comparisons can be judged.
func BootstrapCI(r *rng.Rand, xs []float64, statistic func([]float64) float64, level float64, replicates int) CI {
	n := len(xs)
	out := CI{Level: level, Resample: replicates, Point: statistic(xs), Lo: math.NaN(), Hi: math.NaN()}
	if n == 0 || replicates < 2 || level <= 0 || level >= 1 {
		return out
	}
	estimates := make([]float64, 0, replicates)
	buf := make([]float64, n)
	for rep := 0; rep < replicates; rep++ {
		for i := range buf {
			buf[i] = xs[r.Intn(n)]
		}
		if v := statistic(buf); !math.IsNaN(v) {
			estimates = append(estimates, v)
		}
	}
	if len(estimates) == 0 {
		return out
	}
	sort.Float64s(estimates)
	alpha := (1 - level) / 2
	out.Lo = QuantileSorted(estimates, alpha)
	out.Hi = QuantileSorted(estimates, 1-alpha)
	return out
}

// BootstrapMedianCI is BootstrapCI specialized to the median, the
// statistic every Table 1-3 cell reports.
func BootstrapMedianCI(r *rng.Rand, xs []float64, level float64, replicates int) CI {
	return BootstrapCI(r, xs, Median, level, replicates)
}

// KSTestResult reports a two-sample Kolmogorov-Smirnov test.
type KSTestResult struct {
	D  float64 // the KS statistic
	P  float64 // asymptotic two-sided p-value
	NA int
	NB int
}

// Significant reports rejection at the given threshold.
func (k KSTestResult) Significant(alpha float64) bool {
	return !math.IsNaN(k.P) && k.P < alpha
}

// KSTest performs the two-sample Kolmogorov-Smirnov test: a
// distribution-shape-sensitive alternative to the t-test used by the
// binning ablation (the t-test compares means; KS catches any CDF
// separation, matching the paper's CDF-plot methodology).
func KSTest(a, b []float64) KSTestResult {
	res := KSTestResult{NA: len(a), NB: len(b), D: math.NaN(), P: math.NaN()}
	if len(a) == 0 || len(b) == 0 {
		return res
	}
	res.D = KSDistance(NewECDF(a), NewECDF(b))
	ne := float64(len(a)) * float64(len(b)) / float64(len(a)+len(b))
	res.P = ksPValue((math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * res.D)
	return res
}

// ksPValue evaluates the Kolmogorov distribution's tail Q(λ) =
// 2 Σ (-1)^{j-1} e^{-2 j² λ²} (Numerical Recipes probks).
func ksPValue(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const eps1, eps2 = 1e-3, 1e-8
	sum, prevTerm := 0.0, 0.0
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * 2 * math.Exp(-2*float64(j)*float64(j)*lambda*lambda)
		sum += term
		at := math.Abs(term)
		if at <= eps1*prevTerm || at <= eps2*sum {
			if sum < 0 {
				return 0
			}
			if sum > 1 {
				return 1
			}
			return sum
		}
		sign = -sign
		prevTerm = at
	}
	return 1 // failed to converge: be conservative
}

// PermutationTest estimates the two-sided p-value of the difference in a
// statistic between two samples by label permutation — an exact
// alternative to Welch's test for small Table 1-3 bins.
func PermutationTest(r *rng.Rand, a, b []float64, statistic func([]float64) float64, rounds int) float64 {
	if len(a) == 0 || len(b) == 0 || rounds < 1 {
		return math.NaN()
	}
	observed := math.Abs(statistic(a) - statistic(b))
	pool := make([]float64, 0, len(a)+len(b))
	pool = append(pool, a...)
	pool = append(pool, b...)
	asBig := 1 // add-one smoothing: the observed labeling counts
	for round := 0; round < rounds; round++ {
		r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		d := math.Abs(statistic(pool[:len(a)]) - statistic(pool[len(a):]))
		if d >= observed {
			asBig++
		}
	}
	return float64(asBig) / float64(rounds+1)
}
