package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"crowdscope/internal/rng"
)

func TestMeanBasics(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean of empty should be NaN")
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sum of squared deviations = 32; n-1 = 7.
	want := 32.0 / 7.0
	if got := Variance(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single element should be NaN")
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if got := Median([]float64{7}); got != 7 {
		t.Errorf("singleton median = %v", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("empty median should be NaN")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	Median(xs)
	want := []float64{9, 1, 5, 3, 7}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("Median mutated input at %d", i)
		}
	}
}

func TestMedianMatchesSortProperty(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*2000 - 1000
		}
		got := Median(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		var want float64
		if n%2 == 1 {
			want = sorted[n/2]
		} else {
			want = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Median = %v, want %v (n=%d)", trial, got, want, n)
		}
	}
}

func TestMedianWithDuplicates(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 5, 5}
	if got := Median(xs); got != 5 {
		t.Errorf("duplicate median = %v", got)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Quantile(xs, 0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 40 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 25 {
		t.Errorf("q0.5 = %v", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.25); got != 2.5 {
		t.Errorf("q0.25 = %v, want 2.5", got)
	}
}

func TestQuantileInvalid(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile([]float64{1}, -0.1)) || !math.IsNaN(Quantile([]float64{1}, 1.1)) {
		t.Error("invalid quantile inputs should yield NaN")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	r := rng.New(32)
	if err := quick.Check(func(seed uint64) bool {
		rr := rng.New(seed)
		n := 2 + rr.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rr.Float64() * 100
		}
		q1 := r.Float64()
		q2 := r.Float64()
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(xs, q1) <= Quantile(xs, q2)+1e-12
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 11 {
		t.Errorf("Min/Max/Sum = %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty Min/Max should be NaN")
	}
}

func TestGiniUniformAndSkewed(t *testing.T) {
	even := []float64{5, 5, 5, 5}
	if g := Gini(even); math.Abs(g) > 1e-12 {
		t.Errorf("Gini of equal sample = %v", g)
	}
	skewed := []float64{0, 0, 0, 100}
	if g := Gini(skewed); g < 0.7 {
		t.Errorf("Gini of concentrated sample = %v, want high", g)
	}
	if Gini([]float64{0, 0}) != 0 {
		t.Error("Gini of zero sample should be 0")
	}
}

func TestGiniBounds(t *testing.T) {
	r := rng.New(33)
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 50
		}
		g := Gini(xs)
		if g < -1e-9 || g > 1 {
			t.Fatalf("Gini out of [0,1]: %v", g)
		}
	}
}

func TestTopShare(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 91}
	got := TopShare(xs, 0.10)
	if math.Abs(got-0.91) > 1e-12 {
		t.Errorf("TopShare = %v, want 0.91", got)
	}
	if got := TopShare(xs, 1.0); math.Abs(got-1) > 1e-12 {
		t.Errorf("TopShare(1.0) = %v", got)
	}
	if !math.IsNaN(TopShare(nil, 0.1)) {
		t.Error("empty TopShare should be NaN")
	}
}

func TestTopShareMonotone(t *testing.T) {
	r := rng.New(34)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Pareto(1, 1.2)
	}
	prev := 0.0
	for _, f := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 1.0} {
		s := TopShare(xs, f)
		if s < prev-1e-12 {
			t.Fatalf("TopShare not monotone at %v: %v < %v", f, s, prev)
		}
		prev = s
	}
}

func TestRanksWithTies(t *testing.T) {
	xs := []float64{10, 20, 20, 30}
	ranks := Ranks(xs)
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if math.Abs(ranks[i]-want[i]) > 1e-12 {
			t.Fatalf("Ranks = %v, want %v", ranks, want)
		}
	}
}

func TestSpearmanPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 100, 1000, 10000, 100000}
	if got := SpearmanCorr(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman of monotone pair = %v", got)
	}
	yRev := []float64{5, 4, 3, 2, 1}
	if got := SpearmanCorr(x, yRev); math.Abs(got+1) > 1e-12 {
		t.Errorf("Spearman of reversed pair = %v", got)
	}
}

func TestPearsonKnown(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{2, 4, 6}
	if got := PearsonCorr(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("Pearson = %v", got)
	}
	if !math.IsNaN(PearsonCorr(x, []float64{1, 1, 1})) {
		t.Error("Pearson with constant sample should be NaN")
	}
	if !math.IsNaN(PearsonCorr(x, []float64{1, 2})) {
		t.Error("Pearson with mismatched lengths should be NaN")
	}
}
