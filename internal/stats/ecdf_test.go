package stats

import (
	"math"
	"testing"

	"crowdscope/internal/rng"
)

func TestECDFAt(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("F(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFEmptyAndSingleton(t *testing.T) {
	if !math.IsNaN(NewECDF(nil).At(1)) {
		t.Error("empty ECDF should be NaN")
	}
	e := NewECDF([]float64{5})
	if e.At(4.99) != 0 || e.At(5) != 1 {
		t.Error("singleton ECDF step wrong")
	}
	if e.Median() != 5 {
		t.Error("singleton median wrong")
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	r := rng.New(51)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Normal(0, 3)
	}
	e := NewECDF(xs)
	prev := -1.0
	for x := -10.0; x <= 10; x += 0.1 {
		v := e.At(x)
		if v < prev-1e-12 {
			t.Fatalf("ECDF decreased at %v", x)
		}
		prev = v
	}
	if e.At(e.Max()) != 1 {
		t.Error("F(max) != 1")
	}
}

func TestECDFQuantileRoundTrip(t *testing.T) {
	r := rng.New(52)
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	e := NewECDF(xs)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9} {
		x := e.Quantile(q)
		got := e.At(x)
		if math.Abs(got-q) > 0.01 {
			t.Errorf("F(Q(%v)) = %v", q, got)
		}
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	xs, ys := e.Points(5)
	if len(xs) != 5 || len(ys) != 5 {
		t.Fatalf("Points returned %d/%d", len(xs), len(ys))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] || ys[i] < ys[i-1] {
			t.Fatal("Points not monotone")
		}
	}
	if ys[len(ys)-1] != 1 {
		t.Errorf("last point y = %v", ys[len(ys)-1])
	}
	if x, y := e.Points(0); x != nil || y != nil {
		t.Error("Points(0) should be nil")
	}
}

func TestECDFDominates(t *testing.T) {
	low := NewECDF([]float64{1, 2, 3, 4, 5})
	high := NewECDF([]float64{11, 12, 13, 14, 15})
	if !low.Dominates(high) {
		t.Error("stochastically smaller sample should dominate in CDF")
	}
	if high.Dominates(low) {
		t.Error("larger sample must not dominate")
	}
	same := NewECDF([]float64{1, 2, 3, 4, 5})
	if low.Dominates(same) {
		t.Error("identical samples: no strict dominance")
	}
}

func TestKSDistance(t *testing.T) {
	a := NewECDF([]float64{1, 2, 3})
	b := NewECDF([]float64{1, 2, 3})
	if d := KSDistance(a, b); d != 0 {
		t.Errorf("KS of identical samples = %v", d)
	}
	c := NewECDF([]float64{10, 11, 12})
	if d := KSDistance(a, c); math.Abs(d-1) > 1e-12 {
		t.Errorf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0, 1.9, 2, 5, 9.99, 10})
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 2 { // 9.99 and 10 (right edge closed)
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(-5)
	h.Add(2)
	if h.Under != 1 || h.Over != 1 || h.Total() != 0 {
		t.Errorf("under/over/total = %d/%d/%d", h.Under, h.Over, h.Total())
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("center0 = %v", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Errorf("center4 = %v", got)
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(10)
	for _, v := range []float64{1, 5, 9.9, 10, 55, 999, 1000} {
		h.Add(v)
	}
	h.Add(0)              // ignored
	h.Add(-3)             // ignored
	if h.Counts[0] != 3 { // [1,10)
		t.Errorf("decade 0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 2 { // [10,100)
		t.Errorf("decade 1 = %d", h.Counts[1])
	}
	if h.Counts[2] != 1 { // [100,1000)
		t.Errorf("decade 2 = %d", h.Counts[2])
	}
	if h.Counts[3] != 1 { // [1000,10000)
		t.Errorf("decade 3 = %d", h.Counts[3])
	}
	buckets := h.Buckets()
	if len(buckets) != 4 || buckets[0] != 0 || buckets[3] != 3 {
		t.Errorf("buckets = %v", buckets)
	}
	if h.Lower(2) != 100 {
		t.Errorf("Lower(2) = %v", h.Lower(2))
	}
}

func BenchmarkMedian(b *testing.B) {
	r := rng.New(1)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Median(xs)
	}
}

func BenchmarkWelchTTest(b *testing.B) {
	r := rng.New(2)
	x := make([]float64, 1500)
	y := make([]float64, 1500)
	for i := range x {
		x[i] = r.Normal(0, 1)
		y[i] = r.Normal(0.1, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WelchTTest(x, y)
	}
}
