package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a
// sample. Every feature→metric comparison in Section 4 is visualized as a
// pair of CDFs; ECDF provides evaluation, inversion (quantiles) and
// sampling of plot points.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (copied and sorted; xs is untouched).
func NewECDF(xs []float64) *ECDF {
	buf := make([]float64, len(xs))
	copy(buf, xs)
	sort.Float64s(buf)
	return &ECDF{sorted: buf}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns F(x) = P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile of the underlying sample.
func (e *ECDF) Quantile(q float64) float64 { return QuantileSorted(e.sorted, q) }

// Median returns the sample median.
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Min returns the smallest observation; NaN when empty.
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[0]
}

// Max returns the largest observation; NaN when empty.
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[len(e.sorted)-1]
}

// Points returns up to n (x, F(x)) pairs evenly spaced in rank order,
// suitable for plotting the CDF curve.
func (e *ECDF) Points(n int) (xs, ys []float64) {
	m := len(e.sorted)
	if m == 0 || n <= 0 {
		return nil, nil
	}
	if n > m {
		n = m
	}
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		j := i * (m - 1) / maxInt(n-1, 1)
		xs[i] = e.sorted[j]
		ys[i] = float64(j+1) / float64(m)
	}
	return xs, ys
}

// KSDistance returns the Kolmogorov–Smirnov statistic between two ECDFs:
// the supremum of |F1(x) - F2(x)| over the pooled support.
func KSDistance(a, b *ECDF) float64 {
	if a.N() == 0 || b.N() == 0 {
		return math.NaN()
	}
	maxD := 0.0
	for _, x := range a.sorted {
		if d := math.Abs(a.At(x) - b.At(x)); d > maxD {
			maxD = d
		}
	}
	for _, x := range b.sorted {
		if d := math.Abs(a.At(x) - b.At(x)); d > maxD {
			maxD = d
		}
	}
	return maxD
}

// Dominates reports whether this ECDF is stochastically smaller than other:
// F_this(x) >= F_other(x) at every pooled support point, with strict
// inequality somewhere. In the paper's CDF plots the "better" bin's line
// lies above the other's.
func (e *ECDF) Dominates(other *ECDF) bool {
	if e.N() == 0 || other.N() == 0 {
		return false
	}
	strict := false
	check := func(x float64) bool {
		fa, fb := e.At(x), other.At(x)
		if fa < fb-1e-12 {
			return false
		}
		if fa > fb+1e-12 {
			strict = true
		}
		return true
	}
	for _, x := range e.sorted {
		if !check(x) {
			return false
		}
	}
	for _, x := range other.sorted {
		if !check(x) {
			return false
		}
	}
	return strict
}

// Histogram counts observations into fixed-width bins over [min, max].
type Histogram struct {
	MinValue, MaxValue float64
	Counts             []int
	Under, Over        int // observations outside [min, max]
}

// NewHistogram builds a histogram with n equal-width bins over [min, max].
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{MinValue: min, MaxValue: max, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.MinValue:
		h.Under++
	case x > h.MaxValue:
		h.Over++
	default:
		i := int((x - h.MinValue) / (h.MaxValue - h.MinValue) * float64(len(h.Counts)))
		if i == len(h.Counts) {
			i--
		}
		h.Counts[i]++
	}
}

// AddAll records a sample.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.MaxValue - h.MinValue) / float64(len(h.Counts))
	return h.MinValue + (float64(i)+0.5)*w
}

// LogHistogram counts observations into logarithmically spaced bins; the
// paper's log-log distribution plots (cluster sizes, worker workloads) use
// powers-of-base buckets.
type LogHistogram struct {
	Base   float64
	Counts map[int]int
}

// NewLogHistogram creates a log histogram with the given base (>1).
func NewLogHistogram(base float64) *LogHistogram {
	if base <= 1 {
		panic("stats: log histogram base must exceed 1")
	}
	return &LogHistogram{Base: base, Counts: map[int]int{}}
}

// Add records one positive observation; non-positive values are ignored.
func (h *LogHistogram) Add(x float64) {
	if x <= 0 {
		return
	}
	// A tiny epsilon guards against log(base^k)/log(base) landing just
	// below the integer k from floating-point rounding.
	h.Counts[int(math.Floor(math.Log(x)/math.Log(h.Base)+1e-9))]++
}

// Buckets returns the occupied bucket exponents in ascending order.
func (h *LogHistogram) Buckets() []int {
	out := make([]int, 0, len(h.Counts))
	for k := range h.Counts {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Lower returns the lower bound of bucket k.
func (h *LogHistogram) Lower(k int) float64 { return math.Pow(h.Base, float64(k)) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
