package stats

import (
	"math"
	"testing"

	"crowdscope/internal/rng"
)

func TestRegIncBetaBoundaries(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v", got)
	}
}

func TestRegIncBetaSymmetricHalf(t *testing.T) {
	// For a == b, I_{0.5}(a, a) = 0.5 exactly.
	for _, a := range []float64{0.5, 1, 2, 7.5} {
		if got := RegIncBeta(a, a, 0.5); math.Abs(got-0.5) > 1e-10 {
			t.Errorf("I_0.5(%v,%v) = %v", a, a, got)
		}
	}
}

func TestRegIncBetaUniformCase(t *testing.T) {
	// I_x(1, 1) = x (the uniform CDF).
	for _, x := range []float64{0.1, 0.37, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
}

func TestRegIncBetaClosedForm(t *testing.T) {
	// I_x(1, b) = 1 - (1-x)^b and I_x(a, 1) = x^a.
	for _, x := range []float64{0.2, 0.5, 0.8} {
		for _, b := range []float64{0.5, 2, 5} {
			want := 1 - math.Pow(1-x, b)
			if got := RegIncBeta(1, b, x); math.Abs(got-want) > 1e-10 {
				t.Errorf("I_%v(1,%v) = %v, want %v", x, b, got, want)
			}
			want = math.Pow(x, b)
			if got := RegIncBeta(b, 1, x); math.Abs(got-want) > 1e-10 {
				t.Errorf("I_%v(%v,1) = %v, want %v", x, b, got, want)
			}
		}
	}
}

func TestRegIncBetaComplement(t *testing.T) {
	// I_x(a,b) + I_{1-x}(b,a) = 1.
	r := rng.New(41)
	for trial := 0; trial < 200; trial++ {
		a := 0.2 + 5*r.Float64()
		b := 0.2 + 5*r.Float64()
		x := r.Float64()
		s := RegIncBeta(a, b, x) + RegIncBeta(b, a, 1-x)
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("complement identity broke: a=%v b=%v x=%v sum=%v", a, b, x, s)
		}
	}
}

func TestRegIncBetaMonotone(t *testing.T) {
	prev := 0.0
	for x := 0.0; x <= 1.0001; x += 0.01 {
		v := RegIncBeta(2.5, 3.5, math.Min(x, 1))
		if v < prev-1e-12 {
			t.Fatalf("I_x not monotone at x=%v", x)
		}
		prev = v
	}
}

func TestStudentTKnownValues(t *testing.T) {
	// Two-sided p for t distribution, checked against published tables:
	// df=10, t=2.228 → p ≈ 0.05; df=1, t=1 → p = 0.5 (Cauchy);
	// df=30, t=2.750 → p ≈ 0.01.
	cases := []struct{ t, df, want, tol float64 }{
		{2.228, 10, 0.05, 0.002},
		{1, 1, 0.5, 1e-6},
		{2.750, 30, 0.01, 0.0005},
		{0, 5, 1, 1e-9},
	}
	for _, c := range cases {
		got := studentTTwoSidedP(c.t, c.df)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("p(t=%v, df=%v) = %v, want ~%v", c.t, c.df, got, c.want)
		}
	}
}

func TestWelchTTestSeparatedSamples(t *testing.T) {
	r := rng.New(42)
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = r.Normal(0, 1)
		b[i] = r.Normal(1, 1)
	}
	res := WelchTTest(a, b)
	if !res.Significant(0.01) {
		t.Errorf("clearly separated samples not significant: p=%v", res.P)
	}
	if res.MeanA >= res.MeanB {
		t.Errorf("means out of order: %v >= %v", res.MeanA, res.MeanB)
	}
}

func TestWelchTTestSameDistribution(t *testing.T) {
	r := rng.New(43)
	rejected := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 50)
		b := make([]float64, 50)
		for i := range a {
			a[i] = r.Normal(5, 2)
			b[i] = r.Normal(5, 2)
		}
		if WelchTTest(a, b).Significant(0.01) {
			rejected++
		}
	}
	// Expect about 1% false rejections; allow generous slack.
	if rejected > trials/10 {
		t.Errorf("null rejected %d/%d times at alpha=0.01", rejected, trials)
	}
}

func TestWelchTTestSymmetry(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 12}
	ab := WelchTTest(a, b)
	ba := WelchTTest(b, a)
	if math.Abs(ab.P-ba.P) > 1e-12 {
		t.Errorf("p not symmetric: %v vs %v", ab.P, ba.P)
	}
	if math.Abs(ab.T+ba.T) > 1e-12 {
		t.Errorf("t not antisymmetric: %v vs %v", ab.T, ba.T)
	}
}

func TestWelchTTestDegenerate(t *testing.T) {
	res := WelchTTest([]float64{1}, []float64{2, 3})
	if !math.IsNaN(res.P) {
		t.Error("tiny sample should yield NaN p")
	}
	if res.Significant(0.01) {
		t.Error("NaN p must never be significant")
	}
	same := WelchTTest([]float64{4, 4, 4}, []float64{4, 4})
	if same.P != 1 {
		t.Errorf("identical constant samples: p=%v, want 1", same.P)
	}
	diff := WelchTTest([]float64{4, 4, 4}, []float64{5, 5, 5})
	if !math.IsNaN(diff.P) {
		t.Errorf("zero-variance different means: p=%v, want NaN", diff.P)
	}
}

func TestWelchTTestUnequalVariances(t *testing.T) {
	r := rng.New(44)
	a := make([]float64, 30)
	b := make([]float64, 300)
	for i := range a {
		a[i] = r.Normal(0, 10)
	}
	for i := range b {
		b[i] = r.Normal(0, 0.1)
	}
	res := WelchTTest(a, b)
	// Welch df should be pulled toward the small noisy sample.
	if res.DF > 35 {
		t.Errorf("Welch df = %v, want < 35 for df dominated by small sample", res.DF)
	}
}
