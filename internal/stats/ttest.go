package stats

import "math"

// TTestResult reports a two-sample t-test. The correlation methodology of
// Section 4.2 accepts a feature→metric correlation only when the two
// median-split bins differ with p < 0.01.
type TTestResult struct {
	T  float64 // the t statistic
	DF float64 // degrees of freedom (Welch–Satterthwaite)
	P  float64 // two-sided p-value

	MeanA, MeanB float64
	NA, NB       int
}

// Significant reports whether the test rejects the null at the given
// threshold (the paper uses 0.01).
func (t TTestResult) Significant(alpha float64) bool {
	return !math.IsNaN(t.P) && t.P < alpha
}

// WelchTTest performs Welch's unequal-variance two-sample t-test between a
// and b. Samples with fewer than two observations or zero combined variance
// yield a NaN p-value (never significant).
func WelchTTest(a, b []float64) TTestResult {
	res := TTestResult{NA: len(a), NB: len(b), T: math.NaN(), DF: math.NaN(), P: math.NaN()}
	if len(a) < 2 || len(b) < 2 {
		res.MeanA, res.MeanB = Mean(a), Mean(b)
		return res
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	res.MeanA, res.MeanB = ma, mb
	sa, sb := va/na, vb/nb
	se := sa + sb
	if se <= 0 {
		if ma == mb {
			res.T, res.P = 0, 1
		}
		return res
	}
	res.T = (ma - mb) / math.Sqrt(se)
	res.DF = se * se / (sa*sa/(na-1) + sb*sb/(nb-1))
	res.P = studentTTwoSidedP(res.T, res.DF)
	return res
}

// studentTTwoSidedP returns P(|T_df| >= |t|) for Student's t distribution
// via the regularized incomplete beta function:
//
//	p = I_{df/(df+t^2)}(df/2, 1/2)
func studentTTwoSidedP(t, df float64) float64 {
	if math.IsNaN(t) || math.IsNaN(df) || df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	return RegIncBeta(df/2, 0.5, x)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion from Numerical Recipes (Lentz's
// algorithm), with the symmetry transform for fast convergence.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		mf := float64(m)
		m2 := 2 * mf
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// PearsonCorr returns the Pearson correlation coefficient of paired samples
// x and y; NaN when fewer than two pairs or either sample is constant.
func PearsonCorr(x, y []float64) float64 {
	n := len(x)
	if n != len(y) || n < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// SpearmanCorr returns Spearman's rank correlation of paired samples,
// with average ranks for ties.
func SpearmanCorr(x, y []float64) float64 {
	n := len(x)
	if n != len(y) || n < 2 {
		return math.NaN()
	}
	return PearsonCorr(Ranks(x), Ranks(y))
}

// Ranks returns 1-based fractional ranks of xs (ties get the average rank).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sortIdx(idx, xs)
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

func sortIdx(idx []int, keys []float64) {
	// Simple binary-insertion-friendly sort over the index slice.
	quickSortIdx(idx, keys, 0, len(idx)-1)
}

func quickSortIdx(idx []int, keys []float64, lo, hi int) {
	for hi-lo > 12 {
		p := partitionIdx(idx, keys, lo, hi)
		if p-lo < hi-p {
			quickSortIdx(idx, keys, lo, p-1)
			lo = p + 1
		} else {
			quickSortIdx(idx, keys, p+1, hi)
			hi = p - 1
		}
	}
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && keys[idx[j]] < keys[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

func partitionIdx(idx []int, keys []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if keys[idx[mid]] < keys[idx[lo]] {
		idx[mid], idx[lo] = idx[lo], idx[mid]
	}
	if keys[idx[hi]] < keys[idx[lo]] {
		idx[hi], idx[lo] = idx[lo], idx[hi]
	}
	if keys[idx[hi]] < keys[idx[mid]] {
		idx[hi], idx[mid] = idx[mid], idx[hi]
	}
	pv := keys[idx[mid]]
	idx[mid], idx[hi] = idx[hi], idx[mid]
	store := lo
	for i := lo; i < hi; i++ {
		if keys[idx[i]] < pv {
			idx[i], idx[store] = idx[store], idx[i]
			store++
		}
	}
	idx[store], idx[hi] = idx[hi], idx[store]
	return store
}
