package timeseries

import (
	"math"
	"testing"
	"time"

	"crowdscope/internal/model"
)

func TestWeeklyBucketing(t *testing.T) {
	s := NewWeekly()
	base := model.Epoch.Unix()
	s.IncrAt(base)              // week 0
	s.IncrAt(base + 6*86400)    // still week 0
	s.IncrAt(base + 7*86400)    // week 1
	s.AddAt(base+20*86400, 2.5) // week 2
	if s.At(0) != 2 || s.At(1) != 1 || s.At(2) != 2.5 {
		t.Errorf("buckets = %v %v %v", s.At(0), s.At(1), s.At(2))
	}
	if s.Total() != 5.5 {
		t.Errorf("total = %v", s.Total())
	}
}

func TestOutOfRangeDropped(t *testing.T) {
	s := NewWeekly()
	s.IncrAt(model.Epoch.Unix() - 1)
	s.IncrAt(model.Horizon.Unix() + 365*86400)
	if s.Total() != 0 {
		t.Errorf("out-of-range samples counted: %v", s.Total())
	}
	if s.At(-1) != 0 || s.At(len(s.Values)+5) != 0 {
		t.Error("At out of range should be 0")
	}
}

func TestBucketTime(t *testing.T) {
	s := NewWeekly()
	if got := s.BucketTime(3); got != model.Epoch.AddDate(0, 0, 21) {
		t.Errorf("BucketTime(3) = %v", got)
	}
	d := NewDaily()
	if got := d.BucketTime(1); got != model.Epoch.Add(24*time.Hour) {
		t.Errorf("daily BucketTime(1) = %v", got)
	}
}

func TestCumulative(t *testing.T) {
	s := &Series{Step: time.Hour, Values: []float64{1, 0, 2, 3}}
	c := s.Cumulative()
	want := []float64{1, 1, 3, 6}
	for i := range want {
		if c.Values[i] != want[i] {
			t.Errorf("cumulative[%d] = %v, want %v", i, c.Values[i], want[i])
		}
	}
	// Original untouched.
	if s.Values[1] != 0 {
		t.Error("Cumulative mutated source")
	}
}

func TestMinus(t *testing.T) {
	s := &Series{Step: time.Hour, Values: []float64{5, 3, 2, 7}}
	o := &Series{Step: time.Hour, Values: []float64{1, 3, 2}} // shorter: missing buckets read as 0
	d := s.Minus(o)
	want := []float64{4, 0, 0, 7}
	for i := range want {
		if d.Values[i] != want[i] {
			t.Errorf("minus[%d] = %v, want %v", i, d.Values[i], want[i])
		}
	}
	if s.Values[0] != 5 || o.Values[0] != 1 {
		t.Error("Minus mutated an operand")
	}
}

func TestMaxAndSlice(t *testing.T) {
	s := &Series{Step: time.Hour, Values: []float64{1, 9, 2}}
	v, i := s.Max()
	if v != 9 || i != 1 {
		t.Errorf("Max = %v@%d", v, i)
	}
	sub := s.Slice(1, 3)
	if sub.Len() != 2 || sub.Values[0] != 9 {
		t.Errorf("Slice = %v", sub.Values)
	}
	clamped := s.Slice(-5, 99)
	if clamped.Len() != 3 {
		t.Errorf("clamped slice len = %d", clamped.Len())
	}
	empty := &Series{Step: time.Hour}
	if v, i := empty.Max(); !math.IsNaN(v) || i != -1 {
		t.Error("empty Max should be NaN,-1")
	}
}

func TestNonZero(t *testing.T) {
	s := &Series{Step: time.Hour, Values: []float64{0, 3, 0, 5}}
	nz := s.NonZero()
	if len(nz) != 2 || nz[0] != 3 || nz[1] != 5 {
		t.Errorf("NonZero = %v", nz)
	}
}

func TestWeekdayFold(t *testing.T) {
	d := NewDaily()
	// Day 0 is Monday: add 10 to the first Monday, 4 to the first Saturday.
	d.Values[0] = 10
	d.Values[7] = 10 // second Monday
	d.Values[5] = 4  // Saturday
	d.Values[6] = 2  // Sunday
	fold := WeekdayFold(d)
	if fold[0] != 20 {
		t.Errorf("Monday total = %v", fold[0])
	}
	if fold[5] != 4 || fold[6] != 2 {
		t.Errorf("weekend totals = %v %v", fold[5], fold[6])
	}
	if fold[1] != 0 {
		t.Errorf("Tuesday total = %v", fold[1])
	}
}

func TestSummarizeLoad(t *testing.T) {
	s := &Series{Step: time.Hour, Values: []float64{0, 10, 30, 20, 0, 900}}
	ls := SummarizeLoad(s)
	if ls.Median != 25 { // nonzero: 10,30,20,900 → median (20+30)/2
		t.Errorf("median = %v", ls.Median)
	}
	if ls.Max != 900 || ls.Min != 10 {
		t.Errorf("max/min = %v/%v", ls.Max, ls.Min)
	}
	if math.Abs(ls.PeakRatio-36) > 1e-12 {
		t.Errorf("peak ratio = %v", ls.PeakRatio)
	}
	if math.Abs(ls.TroughRatio-0.4) > 1e-12 {
		t.Errorf("trough ratio = %v", ls.TroughRatio)
	}
	empty := SummarizeLoad(&Series{Step: time.Hour, Values: []float64{0, 0}})
	if !math.IsNaN(empty.Median) {
		t.Error("all-zero load should summarize to NaN")
	}
}

func TestGroupedSeriesMedian(t *testing.T) {
	g := NewWeeklyGrouped()
	base := model.Epoch.Unix()
	g.Observe(base, 10)
	g.Observe(base+3600, 30)
	g.Observe(base+7200, 20)
	g.Observe(base+8*86400, 5)
	med := g.Median()
	if med.At(0) != 20 {
		t.Errorf("week0 median = %v", med.At(0))
	}
	if med.At(1) != 5 {
		t.Errorf("week1 median = %v", med.At(1))
	}
	cnt := g.Count()
	if cnt.At(0) != 3 || cnt.At(1) != 1 {
		t.Errorf("counts = %v %v", cnt.At(0), cnt.At(1))
	}
}

func TestGroupedSeriesIgnoresPreEpoch(t *testing.T) {
	g := NewWeeklyGrouped()
	g.Observe(model.Epoch.Unix()-100, 1)
	if g.Count().Total() != 0 {
		t.Error("pre-epoch observation counted")
	}
}

func TestDistinctCounter(t *testing.T) {
	d := NewWeeklyDistinct()
	base := model.Epoch.Unix()
	d.Observe(base, 1)
	d.Observe(base+3600, 1) // same worker, same week → still 1
	d.Observe(base+7200, 2)
	d.Observe(base+10*86400, 1) // week 1
	s := d.Series()
	if s.At(0) != 2 {
		t.Errorf("week0 distinct = %v", s.At(0))
	}
	if s.At(1) != 1 {
		t.Errorf("week1 distinct = %v", s.At(1))
	}
	// Out of range observations are dropped.
	d.Observe(base-1000, 9)
	if d.Series().At(0) != 2 {
		t.Error("pre-epoch observation leaked in")
	}
}

func TestSeriesString(t *testing.T) {
	s := &Series{Step: time.Hour, Values: []float64{1, 2}}
	if got := s.String(); got == "" {
		t.Error("String should be non-empty")
	}
}

func TestMovingAverage(t *testing.T) {
	s := &Series{Step: time.Hour, Values: []float64{0, 0, 9, 0, 0}}
	sm := s.MovingAverage(3)
	want := []float64{0, 3, 3, 3, 0}
	for i := range want {
		if sm.Values[i] != want[i] {
			t.Errorf("smoothed[%d] = %v, want %v", i, sm.Values[i], want[i])
		}
	}
	// Total mass is preserved for interior spikes.
	if sm.Values[1]+sm.Values[2]+sm.Values[3] != 9 {
		t.Error("mass not preserved")
	}
	// Window 1 (and evens rounding up from 0) are identity.
	id := s.MovingAverage(1)
	for i := range s.Values {
		if id.Values[i] != s.Values[i] {
			t.Fatal("window 1 should be identity")
		}
	}
	// Even windows round up to odd; must not panic.
	_ = s.MovingAverage(4)
	_ = s.MovingAverage(0)
}

func TestMovingAverageEdges(t *testing.T) {
	s := &Series{Step: time.Hour, Values: []float64{6, 0, 0}}
	sm := s.MovingAverage(3)
	if sm.Values[0] != 3 { // mean of {6,0}
		t.Errorf("edge bucket = %v, want 3", sm.Values[0])
	}
}
