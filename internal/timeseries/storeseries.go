package timeseries

import (
	"crowdscope/internal/query"
	"crowdscope/internal/store"
)

// Store-backed series: the weekly rollups that used to be hand-rolled
// full scans over the instance log now run through the query engine, so
// they chunk, parallelize, and zone-map-prune like every other query.
// Results are identical for every workers value (0 = GOMAXPROCS).

// WeeklyOf folds query groups keyed by week index into a weekly Series;
// out-of-span groups (pre-epoch key -1) are dropped, matching AddAt.
func WeeklyOf(groups []query.Group, val func(query.Group) float64) *Series {
	s := NewWeekly()
	for _, g := range groups {
		if g.Key >= 0 && g.Key < int64(len(s.Values)) {
			s.Values[g.Key] += val(g)
		}
	}
	return s
}

// textSeries parses the base query from its canonical query-language
// text — the same form crowdquery -q accepts — then ANDs in the caller's
// extra predicates (e.g. a dynamic worker ID set) and runs it.
func textSeries(st *store.Store, text string, workers int, where []query.Predicate) (*query.Result, error) {
	q, err := query.ParseQuery(text)
	if err != nil {
		return nil, err
	}
	q.Where = append(q.Where, where...)
	q.Workers = workers
	return query.Run(st, q)
}

// ActiveWorkerSeries counts distinct active workers per week over the
// instance log (the paper's Figure 4), optionally restricted by where.
func ActiveWorkerSeries(st *store.Store, workers int, where ...query.Predicate) (*Series, error) {
	res, err := textSeries(st, "group week | distinct worker", workers, where)
	if err != nil {
		return nil, err
	}
	return WeeklyOf(res.Groups, func(g query.Group) float64 { return float64(g.Distinct) }), nil
}

// InstanceArrivalSeries counts materialized instance starts per week,
// optionally restricted by where (e.g. one worker set, one task type).
func InstanceArrivalSeries(st *store.Store, workers int, where ...query.Predicate) (*Series, error) {
	res, err := textSeries(st, "group week | value count", workers, where)
	if err != nil {
		return nil, err
	}
	return WeeklyOf(res.Groups, func(g query.Group) float64 { return float64(g.Count) }), nil
}

// WorkerEngagementSeries returns, per week, the task count and the total
// task seconds of the rows matching where (e.g. the top-10% worker set —
// the paper's Figure 5b split) in one scan.
func WorkerEngagementSeries(st *store.Store, workers int, where ...query.Predicate) (tasks, seconds *Series, err error) {
	res, err := textSeries(st, "group week | value duration", workers, where)
	if err != nil {
		return nil, nil, err
	}
	tasks = WeeklyOf(res.Groups, func(g query.Group) float64 { return float64(g.Count) })
	seconds = WeeklyOf(res.Groups, func(g query.Group) float64 { return g.Sum })
	return tasks, seconds, nil
}
