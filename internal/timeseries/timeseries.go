// Package timeseries provides weekly and daily bucketed series over the
// dataset's 2012–2016 span, plus the series algebra the paper's time plots
// need: accumulation, overlays, per-weekday folding, and peak/median load
// ratios.
package timeseries

import (
	"fmt"
	"math"
	"time"

	"crowdscope/internal/model"
	"crowdscope/internal/stats"
)

// Series is a fixed-resolution time series indexed from the dataset epoch.
type Series struct {
	// Step is the bucket width.
	Step time.Duration
	// Values holds one bucket per step from the epoch.
	Values []float64
}

// NewWeekly returns an all-zero weekly series covering the dataset span.
func NewWeekly() *Series {
	return &Series{Step: 7 * 24 * time.Hour, Values: make([]float64, model.NumWeeks)}
}

// NewDaily returns an all-zero daily series covering the dataset span.
func NewDaily() *Series {
	return &Series{Step: 24 * time.Hour, Values: make([]float64, model.NumDays)}
}

// Len returns the number of buckets.
func (s *Series) Len() int { return len(s.Values) }

// AddAt accumulates v into the bucket containing unix second sec; samples
// outside the span are dropped.
func (s *Series) AddAt(sec int64, v float64) {
	i := s.indexOf(sec)
	if i >= 0 && i < len(s.Values) {
		s.Values[i] += v
	}
}

// IncrAt adds one to the bucket containing unix second sec.
func (s *Series) IncrAt(sec int64) { s.AddAt(sec, 1) }

func (s *Series) indexOf(sec int64) int {
	delta := sec - model.Epoch.Unix()
	if delta < 0 {
		return -1 // Go integer division truncates toward zero; pre-epoch must not land in bucket 0
	}
	return int(delta / int64(s.Step/time.Second))
}

// BucketTime returns the start time of bucket i.
func (s *Series) BucketTime(i int) time.Time {
	return model.Epoch.Add(time.Duration(i) * s.Step)
}

// At returns bucket i's value (0 outside the range).
func (s *Series) At(i int) float64 {
	if i < 0 || i >= len(s.Values) {
		return 0
	}
	return s.Values[i]
}

// Total returns the sum of all buckets.
func (s *Series) Total() float64 {
	t := 0.0
	for _, v := range s.Values {
		t += v
	}
	return t
}

// Max returns the largest bucket value and its index (-1 when empty).
func (s *Series) Max() (float64, int) {
	if len(s.Values) == 0 {
		return math.NaN(), -1
	}
	best, arg := s.Values[0], 0
	for i, v := range s.Values[1:] {
		if v > best {
			best, arg = v, i+1
		}
	}
	return best, arg
}

// Cumulative returns a new series where bucket i holds the running total of
// buckets 0..i (the paper's Figures 8 and 12 plot cumulative counts).
func (s *Series) Cumulative() *Series {
	out := &Series{Step: s.Step, Values: make([]float64, len(s.Values))}
	run := 0.0
	for i, v := range s.Values {
		run += v
		out.Values[i] = run
	}
	return out
}

// Minus returns a new series holding s - o per bucket (o clamped to s's
// length); the complement of a cohort series given the totals.
func (s *Series) Minus(o *Series) *Series {
	out := &Series{Step: s.Step, Values: make([]float64, len(s.Values))}
	for i, v := range s.Values {
		out.Values[i] = v - o.At(i)
	}
	return out
}

// Slice returns the sub-series covering buckets [from, to).
func (s *Series) Slice(from, to int) *Series {
	if from < 0 {
		from = 0
	}
	if to > len(s.Values) {
		to = len(s.Values)
	}
	if from > to {
		from = to
	}
	return &Series{Step: s.Step, Values: append([]float64(nil), s.Values[from:to]...)}
}

// NonZero returns the values of all non-zero buckets; load-statistics
// (median daily load, peak ratios) are computed over days with activity.
func (s *Series) NonZero() []float64 {
	out := make([]float64, 0, len(s.Values))
	for _, v := range s.Values {
		if v != 0 {
			out = append(out, v)
		}
	}
	return out
}

// String summarizes the series.
func (s *Series) String() string {
	max, _ := s.Max()
	return fmt.Sprintf("Series{step=%v, buckets=%d, total=%.0f, max=%.0f}", s.Step, len(s.Values), s.Total(), max)
}

// MovingAverage returns a new series where each bucket holds the mean of
// the window buckets centered on it (window is clamped to odd ≥1); plot
// smoothing for the weekly overlays.
func (s *Series) MovingAverage(window int) *Series {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := &Series{Step: s.Step, Values: make([]float64, len(s.Values))}
	for i := range s.Values {
		lo := i - half
		hi := i + half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(s.Values) {
			hi = len(s.Values) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += s.Values[j]
		}
		out.Values[i] = sum / float64(hi-lo+1)
	}
	return out
}

// WeekdayFold sums a daily series by weekday, returning totals indexed
// Monday..Sunday as in the paper's Figure 3.
func WeekdayFold(daily *Series) [7]float64 {
	var out [7]float64
	for i, v := range daily.Values {
		day := int32(i)
		wd := model.Weekday(day)
		// Re-index so Monday is position 0, Sunday position 6.
		pos := (int(wd) + 6) % 7
		out[pos] += v
	}
	return out
}

// WeekdayNames are the labels for WeekdayFold output.
var WeekdayNames = [7]string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}

// LoadStats summarizes the distribution of per-bucket load.
type LoadStats struct {
	Median      float64
	Max         float64
	Min         float64 // smallest non-zero bucket
	PeakRatio   float64 // Max / Median
	TroughRatio float64 // Min / Median
}

// SummarizeLoad computes LoadStats over the non-zero buckets of s.
func SummarizeLoad(s *Series) LoadStats {
	nz := s.NonZero()
	if len(nz) == 0 {
		return LoadStats{Median: math.NaN(), Max: math.NaN(), Min: math.NaN(), PeakRatio: math.NaN(), TroughRatio: math.NaN()}
	}
	med := medianCopy(nz)
	mn, mx := nz[0], nz[0]
	for _, v := range nz[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return LoadStats{Median: med, Max: mx, Min: mn, PeakRatio: mx / med, TroughRatio: mn / med}
}

func medianCopy(xs []float64) float64 {
	return stats.Median(xs)
}

// GroupedSeries buckets a statistic per (week, group) pair — e.g. the
// median pickup time per week, or tasks done per week by a worker decile.
type GroupedSeries struct {
	step    time.Duration
	buckets map[int][]float64
}

// NewWeeklyGrouped returns an empty weekly grouped series.
func NewWeeklyGrouped() *GroupedSeries {
	return &GroupedSeries{step: 7 * 24 * time.Hour, buckets: map[int][]float64{}}
}

// Observe appends one observation at unix second sec; pre-epoch samples
// are dropped.
func (g *GroupedSeries) Observe(sec int64, v float64) {
	delta := sec - model.Epoch.Unix()
	if delta < 0 {
		return
	}
	i := int(delta / int64(g.step/time.Second))
	g.buckets[i] = append(g.buckets[i], v)
}

// Median returns a Series of per-bucket medians (NaN buckets are zeroed).
func (g *GroupedSeries) Median() *Series {
	n := model.NumWeeks
	out := &Series{Step: g.step, Values: make([]float64, n)}
	for i, vs := range g.buckets {
		if i < n && len(vs) > 0 {
			out.Values[i] = medianCopy(vs)
		}
	}
	return out
}

// Count returns a Series of per-bucket observation counts.
func (g *GroupedSeries) Count() *Series {
	n := model.NumWeeks
	out := &Series{Step: g.step, Values: make([]float64, n)}
	for i, vs := range g.buckets {
		if i < n {
			out.Values[i] = float64(len(vs))
		}
	}
	return out
}

// DistinctCounter counts distinct uint32 keys per weekly bucket — e.g.
// distinct active workers per week (Figure 4) or distinct tasks per week
// (Figure 1).
type DistinctCounter struct {
	sets []map[uint32]struct{}
}

// NewWeeklyDistinct returns a distinct counter over the dataset's weeks.
func NewWeeklyDistinct() *DistinctCounter {
	return &DistinctCounter{sets: make([]map[uint32]struct{}, model.NumWeeks)}
}

// Observe records key as active in the week containing unix second sec.
func (d *DistinctCounter) Observe(sec int64, key uint32) {
	i := int(model.WeekOfUnix(sec))
	if i < 0 || i >= len(d.sets) {
		return
	}
	if d.sets[i] == nil {
		d.sets[i] = map[uint32]struct{}{}
	}
	d.sets[i][key] = struct{}{}
}

// Series returns the weekly distinct counts.
func (d *DistinctCounter) Series() *Series {
	out := NewWeekly()
	for i, set := range d.sets {
		out.Values[i] = float64(len(set))
	}
	return out
}
