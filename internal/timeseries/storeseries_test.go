package timeseries

import (
	"math/rand"
	"reflect"
	"testing"

	"crowdscope/internal/model"
	"crowdscope/internal/query"
	"crowdscope/internal/store"
)

// seriesStore builds a small two-segment store with workers and start
// times spread over the span (plus one pre-epoch row, which every weekly
// series must drop).
func seriesStore(t *testing.T) *store.Store {
	t.Helper()
	r := rand.New(rand.NewSource(99))
	var segs []*store.Segment
	for k := 0; k < 2; k++ {
		b := store.NewBuilder(uint32(k), uint32(k+1))
		b.BeginBatch(uint32(k))
		for i := 0; i < 500; i++ {
			start := model.Epoch.Unix() + int64(r.Intn(int(model.NumDays)*86400))
			if i == 0 && k == 0 {
				start = model.Epoch.Unix() - 1000 // pre-epoch: dropped by weekly series
			}
			b.Append(model.Instance{
				Batch:  uint32(k),
				Worker: uint32(r.Intn(40)),
				Start:  start,
				End:    start + int64(r.Intn(900)),
			})
		}
		segs = append(segs, b.Seal())
	}
	s, err := store.Assemble(2, segs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestActiveWorkerSeriesMatchesManualScan pins the engine-backed series
// to the historical hand-rolled DistinctCounter full scan.
func TestActiveWorkerSeriesMatchesManualScan(t *testing.T) {
	st := seriesStore(t)
	want := NewWeeklyDistinct()
	starts := st.Starts()
	workers := st.Workers()
	for i := range starts {
		want.Observe(starts[i], workers[i])
	}
	got, err := ActiveWorkerSeries(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Values, want.Series().Values) {
		t.Error("ActiveWorkerSeries differs from the manual DistinctCounter scan")
	}
}

// TestWorkerEngagementSeriesMatchesManualScan pins the per-cohort weekly
// task/seconds series to the historical IncrAt/AddAt full scan.
func TestWorkerEngagementSeriesMatchesManualScan(t *testing.T) {
	st := seriesStore(t)
	cohort := []uint32{1, 3, 5, 7, 11, 13}
	in := map[uint32]bool{}
	for _, w := range cohort {
		in[w] = true
	}
	wantTasks, wantSecs := NewWeekly(), NewWeekly()
	starts, ends, wcol := st.Starts(), st.Ends(), st.Workers()
	for i := range starts {
		if in[wcol[i]] {
			wantTasks.IncrAt(starts[i])
			wantSecs.AddAt(starts[i], float64(ends[i]-starts[i]))
		}
	}
	tasks, secs, err := WorkerEngagementSeries(st, 0, query.In(query.ColWorker, cohort...))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tasks.Values, wantTasks.Values) {
		t.Error("engagement task series differs from the manual scan")
	}
	if !reflect.DeepEqual(secs.Values, wantSecs.Values) {
		t.Error("engagement seconds series differs from the manual scan")
	}
}

// TestInstanceArrivalSeries counts all starts per week.
func TestInstanceArrivalSeries(t *testing.T) {
	st := seriesStore(t)
	want := NewWeekly()
	for _, s := range st.Starts() {
		want.IncrAt(s)
	}
	got, err := InstanceArrivalSeries(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Values, want.Values) {
		t.Error("InstanceArrivalSeries differs from the manual scan")
	}
	if got.Total() != float64(st.Len()-1) { // minus the pre-epoch row
		t.Errorf("total %v, want %d", got.Total(), st.Len()-1)
	}
}
