// Package vfs is the narrow filesystem seam the durability layer writes
// through: the write-ahead log and the checkpoint protocol never touch
// the os package directly, they go through an FS. Production code uses
// the OS implementation below; the crash-recovery tests swap in
// internal/faultfs, which wraps any FS and injects torn writes, fsync
// failures and transient read errors at chosen points. The interface is
// deliberately small — exactly the operations a log-structured store
// needs, nothing a generic filesystem abstraction would grow.
package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"syscall"
)

// File is a writable file handle. Writers must treat a failed Write or
// Sync as fatal for the file: the on-disk suffix is undefined after one.
type File interface {
	Write(p []byte) (int, error)
	// Sync flushes written data to stable storage (fsync).
	Sync() error
	Close() error
}

// ReadFile is a random-access read handle.
type ReadFile interface {
	ReadAt(p []byte, off int64) (int, error)
	Size() (int64, error)
	Close() error
}

// FS is the filesystem the durability layer runs on. Path semantics
// follow the os package; implementations need not be safe for concurrent
// mutation of the same name.
type FS interface {
	// Create creates (or truncates) the named file for writing.
	Create(name string) (File, error)
	// OpenAppend opens an existing file positioned at its end.
	OpenAppend(name string) (File, error)
	// OpenRead opens the named file for random-access reads.
	OpenRead(name string) (ReadFile, error)
	// Truncate cuts the named file to size bytes.
	Truncate(name string, size int64) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes the named file.
	Remove(name string) error
	// ReadDir returns the sorted names of the entries in dir.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// SyncDir flushes dir's entry table, making renames and creates in
	// it durable.
	SyncDir(dir string) error
}

// OS is the production FS: a thin veneer over the os package.
type OS struct{}

type osFile struct{ f *os.File }

func (o osFile) Write(p []byte) (int, error) { return o.f.Write(p) }
func (o osFile) Sync() error                 { return o.f.Sync() }
func (o osFile) Close() error                { return o.f.Close() }

type osReadFile struct{ f *os.File }

func (o osReadFile) ReadAt(p []byte, off int64) (int, error) { return o.f.ReadAt(p, off) }
func (o osReadFile) Close() error                            { return o.f.Close() }
func (o osReadFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Create creates or truncates name for writing.
func (OS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// OpenAppend opens name for appending.
func (OS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// OpenRead opens name for random-access reads.
func (OS) OpenRead(name string) (ReadFile, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osReadFile{f}, nil
}

// Truncate cuts name to size bytes.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Rename atomically replaces newname with oldname.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove deletes name.
func (OS) Remove(name string) error { return os.Remove(name) }

// ReadDir returns dir's entry names, sorted.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll creates dir and any missing parents.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// SyncDir fsyncs the directory itself, making its entry table durable.
// Filesystems that cannot sync directories (EINVAL/ENOTSUP) report
// success: the rename was still atomic, only its durability timing is
// weaker there.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
			return nil
		}
		return err
	}
	return nil
}
