package store

import (
	"fmt"
	"sync"

	"crowdscope/internal/model"
)

// A Segment is an immutable, sealed run of instance rows covering a
// half-open interval of batch IDs. Segments are the unit of parallel
// ingest: each generation shard renders its batches into one Builder,
// seals it, and Assemble merges the sealed segments — in canonical batch
// order — into the flat columnar Store every analysis scans.
type Segment struct {
	batchLo, batchHi uint32 // [batchLo, batchHi) batch IDs this segment covers

	batch    []uint32
	taskType []uint32
	item     []uint32
	worker   []uint32
	start    []int64
	end      []int64
	trust    []float32
	answer   []uint32

	// ranges[b-batchLo] is the segment-local [lo,hi) row range of batch b;
	// covered batches with no rows have lo == hi.
	ranges []rowRange

	// zone summarizes the segment's column values; computed by Seal.
	zone ZoneMap

	// enc is the segment's encoded column form; computed by Seal and
	// carried into the assembled store for scan-on-encoded execution and
	// compressed snapshots.
	enc SegmentEnc
}

// Len returns the number of rows in the segment.
func (g *Segment) Len() int { return len(g.start) }

// BatchInterval returns the [lo,hi) batch-ID interval the segment covers.
func (g *Segment) BatchInterval() (lo, hi uint32) { return g.batchLo, g.batchHi }

// Row materializes segment-local row i as an Instance.
func (g *Segment) Row(i int) model.Instance {
	return model.Instance{
		Batch:    g.batch[i],
		TaskType: g.taskType[i],
		Item:     g.item[i],
		Worker:   g.worker[i],
		Start:    g.start[i],
		End:      g.end[i],
		Trust:    g.trust[i],
		Answer:   g.answer[i],
	}
}

// A Builder accumulates rows for one shard of batches and seals them into
// an immutable Segment. Builders are not safe for concurrent use; the
// parallelism model is one builder per goroutine.
type Builder struct {
	seg    *Segment
	cur    int // index into seg.ranges of the open batch, -1 when none
	sealed bool
	grow   bool // live builder: the interval extends as higher batches begin
}

// NewBuilder returns a builder for the batch-ID interval [batchLo, batchHi).
func NewBuilder(batchLo, batchHi uint32) *Builder {
	if batchHi < batchLo {
		panic(fmt.Sprintf("store: builder interval [%d,%d) inverted", batchLo, batchHi))
	}
	return &Builder{
		seg: &Segment{
			batchLo: batchLo,
			batchHi: batchHi,
			ranges:  make([]rowRange, batchHi-batchLo),
		},
		cur: -1,
	}
}

// NewLiveBuilder returns a growable builder starting at batchLo: its
// batch interval extends as higher batches begin. The live ingest path
// uses it because the final interval of an open segment is unknown until
// it seals — the sealed segment covers [batchLo, lastBatch+1).
func NewLiveBuilder(batchLo uint32) *Builder {
	return &Builder{
		seg: &Segment{batchLo: batchLo, batchHi: batchLo},
		cur: -1, grow: true,
	}
}

// BeginBatch marks the start of batchID's rows; all Append calls until the
// next BeginBatch belong to it. The batch must lie inside the builder's
// interval (a live builder instead grows its interval to cover it).
func (b *Builder) BeginBatch(batchID uint32) {
	if b.sealed {
		panic("store: BeginBatch on sealed builder")
	}
	if b.grow && batchID >= b.seg.batchHi {
		for hi := b.seg.batchHi; hi <= batchID; hi++ {
			b.seg.ranges = append(b.seg.ranges, rowRange{})
		}
		b.seg.batchHi = batchID + 1
	}
	if batchID < b.seg.batchLo || batchID >= b.seg.batchHi {
		panic(fmt.Sprintf("store: batch %d outside builder interval [%d,%d)", batchID, b.seg.batchLo, b.seg.batchHi))
	}
	n := int32(len(b.seg.start))
	b.cur = int(batchID - b.seg.batchLo)
	b.seg.ranges[b.cur] = rowRange{Lo: n, Hi: n}
}

// Append adds one instance row to the currently open batch.
func (b *Builder) Append(in model.Instance) {
	if b.sealed {
		panic("store: Append on sealed builder")
	}
	if b.cur < 0 {
		panic("store: Append without BeginBatch")
	}
	g := b.seg
	g.batch = append(g.batch, in.Batch)
	g.taskType = append(g.taskType, in.TaskType)
	g.item = append(g.item, in.Item)
	g.worker = append(g.worker, in.Worker)
	g.start = append(g.start, in.Start)
	g.end = append(g.end, in.End)
	g.trust = append(g.trust, in.Trust)
	g.answer = append(g.answer, in.Answer)
	g.ranges[b.cur].Hi = int32(len(g.start))
}

// Len returns the number of rows appended so far.
func (b *Builder) Len() int { return b.seg.Len() }

// Seal freezes the builder's rows into an immutable Segment, computing
// its zone map and column encodings. The builder must not be used
// afterwards.
func (b *Builder) Seal() *Segment {
	if b.sealed {
		panic("store: Seal on sealed builder")
	}
	b.sealed = true
	g := b.seg
	g.zone = computeZoneMap(g.taskType, g.item, g.worker, g.answer, g.start, g.end, g.trust, 0, g.Len())
	g.enc = encodeSegmentColumns(g.batch, g.taskType, g.item, g.worker, g.answer, g.start, g.end, g.trust)
	return g
}

// Enc returns the segment's encoded column form (computed at Seal).
func (g *Segment) Enc() *SegmentEnc { return &g.enc }

// SegmentInfo describes one sealed segment's position inside an assembled
// store: its row span and the batch-ID interval it covers.
type SegmentInfo struct {
	RowLo, RowHi     int    // [RowLo, RowHi) rows
	BatchLo, BatchHi uint32 // [BatchLo, BatchHi) batch IDs
}

// Rows returns the number of rows in the segment.
func (si SegmentInfo) Rows() int { return si.RowHi - si.RowLo }

// Assemble merges sealed segments into a Store with numBatches batches.
// Segments must cover ascending, non-overlapping batch intervals; batches
// not covered by any segment stay empty. Row order in the result is the
// canonical batch-contiguous order: all rows of segment k precede all rows
// of segment k+1, and within a segment rows keep their builder order.
// Column data is copied into flat arrays (one goroutine per segment), so
// the returned store scans exactly like a monolithic one.
func Assemble(numBatches int, segs []*Segment) (*Store, error) {
	total := 0
	prevHi := uint32(0)
	for i, g := range segs {
		if g == nil {
			return nil, fmt.Errorf("store: segment %d is nil", i)
		}
		if g.batchLo < prevHi && i > 0 {
			return nil, fmt.Errorf("store: segment %d batch interval [%d,%d) overlaps or precedes previous (hi %d)",
				i, g.batchLo, g.batchHi, prevHi)
		}
		if int(g.batchHi) > numBatches {
			return nil, fmt.Errorf("store: segment %d batch interval [%d,%d) exceeds %d batches",
				i, g.batchLo, g.batchHi, numBatches)
		}
		prevHi = g.batchHi
		total += g.Len()
	}

	s := New(numBatches)
	s.rows = total
	s.batch = make([]uint32, total)
	s.taskType = make([]uint32, total)
	s.item = make([]uint32, total)
	s.worker = make([]uint32, total)
	s.start = make([]int64, total)
	s.end = make([]int64, total)
	s.trust = make([]float32, total)
	s.answer = make([]uint32, total)
	s.segs = make([]SegmentInfo, len(segs))
	s.zones = make([]ZoneMap, len(segs))
	s.encs = make([]SegmentEnc, len(segs))

	var wg sync.WaitGroup
	off := 0
	for i, g := range segs {
		s.segs[i] = SegmentInfo{RowLo: off, RowHi: off + g.Len(), BatchLo: g.batchLo, BatchHi: g.batchHi}
		s.zones[i] = g.zone
		s.encs[i] = g.enc
		wg.Add(1)
		go func(g *Segment, off int) {
			defer wg.Done()
			copy(s.batch[off:], g.batch)
			copy(s.taskType[off:], g.taskType)
			copy(s.item[off:], g.item)
			copy(s.worker[off:], g.worker)
			copy(s.start[off:], g.start)
			copy(s.end[off:], g.end)
			copy(s.trust[off:], g.trust)
			copy(s.answer[off:], g.answer)
			for j, rr := range g.ranges {
				if rr.Hi > rr.Lo {
					s.ranges[g.batchLo+uint32(j)] = rowRange{Lo: rr.Lo + int32(off), Hi: rr.Hi + int32(off)}
				}
			}
		}(g, off)
		off += g.Len()
	}
	wg.Wait()
	return s, nil
}

// Segments returns the segment layout of the store. Stores built through
// the direct Append path (or loaded from a pre-segment snapshot) report a
// single implicit segment spanning everything.
func (s *Store) Segments() []SegmentInfo {
	if len(s.segs) > 0 {
		return s.segs
	}
	if s.Len() == 0 {
		return nil
	}
	return []SegmentInfo{{RowLo: 0, RowHi: s.Len(), BatchLo: 0, BatchHi: uint32(s.NumBatches())}}
}

// NumSegments returns the number of explicit segments (0 for stores built
// through the direct Append path).
func (s *Store) NumSegments() int { return len(s.segs) }
