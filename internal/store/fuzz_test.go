package store

import (
	"bytes"
	"testing"
)

// FuzzReadFrom drives the snapshot decoder with arbitrary bytes. The
// committed corpus under testdata/fuzz/FuzzReadFrom (regenerated with
// -update-fixtures) holds full v1/v2/v3 snapshots plus truncated and
// bit-flipped variants; the invariants are that decoding never panics,
// never allocates beyond a small multiple of the input, a failed strict
// load leaves the store empty, and repair mode is never stricter than
// strict mode.
func FuzzReadFrom(f *testing.F) {
	st := fixtureStore(f)
	var v3buf bytes.Buffer
	if _, err := st.WriteSnapshot(&v3buf, WriteOptions{Provenance: fixtureProvenance(), Workers: 1}); err != nil {
		f.Fatal(err)
	}
	v3 := v3buf.Bytes()
	f.Add(v3)
	f.Add(writeSnapshotLegacy(st, snapshotVersionV1))
	f.Add(writeSnapshotLegacy(st, snapshotVersionV2))
	f.Add(v3[:len(v3)/3])
	f.Add(v3[:len(v3)-7])
	for _, off := range []int{4, 9, 14, len(v3) / 2, len(v3) - 5} {
		flip := append([]byte(nil), v3...)
		flip[off] ^= 0x40
		f.Add(flip)
	}
	f.Add([]byte("not a snapshot at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var strict Store
		_, err := strict.ReadFrom(bytes.NewReader(data))
		if err != nil {
			// Strict mode must never yield a half-populated store.
			if strict.Len() != 0 || strict.NumBatches() != 0 || strict.NumSegments() != 0 {
				t.Fatalf("strict ReadFrom failed (%v) yet populated the store", err)
			}
		}
		var repaired Store
		_, rerr := repaired.ReadSnapshot(bytes.NewReader(data), LoadOptions{Mode: LoadRepair})
		if err == nil {
			// Whatever loads strictly must also load in repair mode, to
			// the same shape.
			if rerr != nil {
				t.Fatalf("strict load succeeded but repair failed: %v", rerr)
			}
			if repaired.Len() != strict.Len() || repaired.NumBatches() != strict.NumBatches() {
				t.Fatalf("repair shape %d/%d differs from strict %d/%d",
					repaired.Len(), repaired.NumBatches(), strict.Len(), strict.NumBatches())
			}
		}
	})
}
