package store

import (
	"encoding/binary"
	"fmt"
	"math"
)

// readLegacy decodes the v1/v2 snapshot body (after the magic/version
// header): one monolithic, unchecksummed stream of length-implied columns,
// then the batch ranges, then (v2 only) the segment table. Kept so every
// snapshot ever written stays loadable; new snapshots are always v3.
func readLegacy(cr *countingReader, version uint32) (*Store, error) {
	var n32, nb32 uint32
	for _, p := range []*uint32{&n32, &nb32} {
		if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
			return nil, sectionErr("header", asTruncated(err))
		}
	}
	n, nb := int(n32), int(nb32)

	st := &Store{fill: &fillState{}, gen: NextGeneration()}
	var err error
	if st.batch, err = getUvarints(cr, n); err != nil {
		return nil, sectionErr("column batch", err)
	}
	if st.taskType, err = getUvarints(cr, n); err != nil {
		return nil, sectionErr("column task-type", err)
	}
	if st.item, err = getUvarints(cr, n); err != nil {
		return nil, sectionErr("column item", err)
	}
	if st.worker, err = getUvarints(cr, n); err != nil {
		return nil, sectionErr("column worker", err)
	}
	if st.start, err = getDeltaVarints(cr, n); err != nil {
		return nil, sectionErr("column start", err)
	}
	offs, err := getUvarints(cr, n)
	if err != nil {
		return nil, sectionErr("column end", err)
	}
	st.end = make([]int64, n)
	for i := range offs {
		st.end[i] = st.start[i] + int64(offs[i])
	}
	if st.trust, err = getFloats(cr, n); err != nil {
		return nil, sectionErr("column trust", err)
	}
	if st.answer, err = getUvarints(cr, n); err != nil {
		return nil, sectionErr("column answer", err)
	}
	st.rows = len(st.start)
	st.ranges = make([]rowRange, 0, min(nb, allocChunk))
	for i := 0; i < nb; i++ {
		lo, err := getUvarint(cr)
		if err != nil {
			return nil, sectionErr("batch ranges", asTruncated(err))
		}
		hi, err := getUvarint(cr)
		if err != nil {
			return nil, sectionErr("batch ranges", asTruncated(err))
		}
		if lo > hi || hi > uint64(n) {
			return nil, sectionErr("batch ranges", fmt.Errorf("%w: batch %d range [%d,%d) invalid for %d rows", ErrCorrupt, i, lo, hi, n))
		}
		st.ranges = append(st.ranges, rowRange{Lo: int32(lo), Hi: int32(hi)})
	}
	if version >= snapshotVersionV2 {
		ns, err := getUvarint(cr)
		if err != nil {
			return nil, sectionErr("segment table", asTruncated(err))
		}
		if ns > math.MaxInt32 {
			return nil, sectionErr("segment table", fmt.Errorf("%w: segment count overflow", ErrCorrupt))
		}
		// Segments are decoded one entry at a time with input-bounded
		// growth: any count a valid Assembled store can write is accepted
		// (empty batch intervals may make segments outnumber batches), and
		// a forged count runs out of input long before it runs up memory.
		// This replaces the old `ns > batches+1` bound, which rejected
		// legal snapshots.
		segs := make([]SegmentInfo, 0, min(int(ns), allocChunk))
		for i := 0; i < int(ns); i++ {
			var v [4]uint64
			for j := range v {
				if v[j], err = getUvarint(cr); err != nil {
					return nil, sectionErr("segment table", asTruncated(err))
				}
				if v[j] > math.MaxInt32 {
					return nil, sectionErr("segment table", fmt.Errorf("%w: segment %d field overflow", ErrCorrupt, i))
				}
			}
			segs = append(segs, SegmentInfo{
				RowLo: int(v[0]), RowHi: int(v[1]),
				BatchLo: uint32(v[2]), BatchHi: uint32(v[3]),
			})
		}
		if len(segs) > 0 {
			st.segs = segs
		}
	}
	return st, nil
}
