package store

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"crowdscope/internal/model"
)

// memFS is an in-memory shard filesystem for dataset tests: WriteDataset
// creates files into it, OpenDataset reads them back, and the counting
// reader makes I/O selectivity assertions deterministic.
type memFS struct {
	mu    sync.Mutex
	files map[string]*bytes.Buffer

	bytesRead atomic.Int64
	opened    sync.Map // name -> struct{}
}

func newMemFS() *memFS { return &memFS{files: make(map[string]*bytes.Buffer)} }

type memWriter struct{ *bytes.Buffer }

func (memWriter) Close() error { return nil }

func (fs *memFS) create(name string) (io.WriteCloser, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	buf := &bytes.Buffer{}
	fs.files[name] = buf
	return memWriter{buf}, nil
}

// countingReaderAt counts every byte handed out, attributing it to the
// owning memFS.
type countingReaderAt struct {
	r  *bytes.Reader
	fs *memFS
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.r.ReadAt(p, off)
	c.fs.bytesRead.Add(int64(n))
	return n, err
}

func (fs *memFS) open(name string) (io.ReaderAt, int64, error) {
	fs.mu.Lock()
	buf, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("%s: %w", name, os.ErrNotExist)
	}
	fs.opened.Store(name, struct{}{})
	return &countingReaderAt{r: bytes.NewReader(buf.Bytes()), fs: fs}, int64(buf.Len()), nil
}

func (fs *memFS) openedCount() int {
	n := 0
	fs.opened.Range(func(_, _ any) bool { n++; return true })
	return n
}

func (fs *memFS) totalShardBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var n int64
	for name, b := range fs.files {
		if strings.Contains(name, ".shard") {
			n += int64(b.Len())
		}
	}
	return n
}

// corrupt flips one byte of a stored file at the given offset from the
// end (negative) or start (non-negative).
func (fs *memFS) corrupt(t testing.TB, name string, off int) {
	t.Helper()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	buf, ok := fs.files[name]
	if !ok {
		t.Fatalf("corrupt %s: no such file", name)
	}
	data := buf.Bytes()
	if off < 0 {
		off += len(data)
	}
	data[off] ^= 0xFF
}

// writeFixtureDataset shards the store into fs and returns the manifest.
func writeFixtureDataset(t testing.TB, s *Store, fs *memFS, nshards int) *Manifest {
	t.Helper()
	var manBuf bytes.Buffer
	man, err := s.WriteDataset(&manBuf, nshards, "fix", fs.create,
		WriteOptions{Provenance: fixtureProvenance(), Workers: 1})
	if err != nil {
		t.Fatalf("WriteDataset: %v", err)
	}
	fs.mu.Lock()
	fs.files["fix.crow"] = &manBuf
	fs.mu.Unlock()
	return man
}

// fixtureRow derives one deterministic instance, mirroring fixtureStore's
// value recipe at arbitrary scale.
func fixtureRow(batch, i uint32, start int64) model.Instance {
	return model.Instance{
		Batch:    batch,
		TaskType: batch % 5,
		Item:     i,
		Worker:   (batch*13 + i*7) % 50,
		Start:    start,
		End:      start + 40 + int64(i%7)*11,
		Trust:    float32((batch*7+i*3)%16) / 16,
		Answer:   batch*1000 + i,
	}
}

// bigFixtureStore builds a deterministic assembled store with nseg
// non-trivial segments (plus their batches), large enough that encoded
// column blocks dominate file size.
func bigFixtureStore(t testing.TB, nseg, rowsPerBatch int) *Store {
	t.Helper()
	const batchesPerSeg = 3
	segs := make([]*Segment, nseg)
	for g := 0; g < nseg; g++ {
		bld := NewBuilder(uint32(g*batchesPerSeg), uint32((g+1)*batchesPerSeg))
		for k := 0; k < batchesPerSeg; k++ {
			batch := uint32(g*batchesPerSeg + k)
			bld.BeginBatch(batch)
			for i := 0; i < rowsPerBatch; i++ {
				start := int64(1_400_000_000) + int64(batch)*86_400 + int64(i)*13
				bld.Append(fixtureRow(batch, uint32(i), start))
			}
		}
		segs[g] = bld.Seal()
	}
	s, err := Assemble(nseg*batchesPerSeg, segs)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return s
}

func TestDatasetRoundTrip(t *testing.T) {
	for _, nshards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", nshards), func(t *testing.T) {
			want := bigFixtureStore(t, 4, 500)
			fs := newMemFS()
			man := writeFixtureDataset(t, want, fs, nshards)
			if len(man.Shards) != min(nshards, 4) {
				t.Fatalf("got %d shards, want %d", len(man.Shards), min(nshards, 4))
			}
			if man.TotalRows() != want.Len() {
				t.Fatalf("manifest rows %d, store %d", man.TotalRows(), want.Len())
			}

			d, err := OpenDataset(man, fs.open)
			if err != nil {
				t.Fatalf("OpenDataset: %v", err)
			}
			got, rep, err := d.LoadStore(LoadOptions{})
			if err != nil {
				t.Fatalf("LoadStore: %v", err)
			}
			if rep.Rows != want.Len() || rep.Provenance == nil || rep.Provenance.Seed != fixtureProvenance().Seed {
				t.Fatalf("report rows=%d provenance=%+v", rep.Rows, rep.Provenance)
			}
			compareStores(t, want, got, true)
			if err := got.Validate(); err != nil {
				t.Fatalf("merged store invalid: %v", err)
			}
		})
	}
}

// TestDatasetRoundTripEmptySegment covers the fixtureStore shape: an
// empty sealed segment and empty batches survive sharding.
func TestDatasetRoundTripEmptySegment(t *testing.T) {
	want := fixtureStore(t)
	fs := newMemFS()
	man := writeFixtureDataset(t, want, fs, 2)
	d, err := OpenDataset(man, fs.open)
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}
	got, _, err := d.LoadStore(LoadOptions{})
	if err != nil {
		t.Fatalf("LoadStore: %v", err)
	}
	compareStores(t, want, got, true)
}

// TestDatasetLazyShardColumns drives the selective path: EnsureColumns
// loads exactly the requested columns, the partial store serves them,
// and unrequested columns stay unread and panic on access.
func TestDatasetLazyShardColumns(t *testing.T) {
	want := bigFixtureStore(t, 4, 500)
	fs := newMemFS()
	man := writeFixtureDataset(t, want, fs, 4)
	d, err := OpenDataset(man, fs.open)
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}

	sh, err := d.Shard(0)
	if err != nil {
		t.Fatalf("Shard(0): %v", err)
	}
	if err := sh.EnsureColumns(ColSetWorker); err != nil {
		t.Fatalf("EnsureColumns(worker): %v", err)
	}
	st := sh.Store()
	workers := st.Workers()
	if len(workers) != man.Shards[0].Rows {
		t.Fatalf("worker column has %d rows, shard holds %d", len(workers), man.Shards[0].Rows)
	}
	for r := 0; r < st.Len(); r++ {
		if workers[r] != want.Workers()[r] {
			t.Fatalf("worker row %d: %d, want %d", r, workers[r], want.Workers()[r])
		}
	}

	// An unloaded column must refuse to materialize rather than return
	// zeros.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Trusts() on a partial shard did not panic")
			}
		}()
		st.Trusts()
	}()

	// End implies Start: after EnsureColumns(End) both are readable.
	if err := sh.EnsureColumns(ColSetEnd); err != nil {
		t.Fatalf("EnsureColumns(end): %v", err)
	}
	if got, want := st.Ends()[3], want.Ends()[3]; got != want {
		t.Fatalf("end row 3: %d, want %d", got, want)
	}
}

// TestDatasetSelectiveReadBytes pins the selective-read contract at the
// store level: reading one narrow column of every shard costs a small
// fraction of the dataset's bytes.
func TestDatasetSelectiveReadBytes(t *testing.T) {
	want := bigFixtureStore(t, 8, 2000)
	fs := newMemFS()
	man := writeFixtureDataset(t, want, fs, 8)
	d, err := OpenDataset(man, fs.open)
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}
	for i := 0; i < d.NumShards(); i++ {
		sh, err := d.Shard(i)
		if err != nil {
			t.Fatalf("Shard(%d): %v", i, err)
		}
		if err := sh.EnsureColumns(ColSetBatch); err != nil {
			t.Fatalf("EnsureColumns: %v", err)
		}
	}
	total := fs.totalShardBytes()
	read := fs.bytesRead.Load()
	if read >= total/4 {
		t.Fatalf("batch-only read cost %d of %d shard bytes (>= 25%%)", read, total)
	}
	if read == 0 {
		t.Fatal("no bytes read")
	}
}

// TestDatasetShardsNotOpened: shards are not touched until asked for.
func TestDatasetShardsNotOpened(t *testing.T) {
	want := bigFixtureStore(t, 4, 200)
	fs := newMemFS()
	man := writeFixtureDataset(t, want, fs, 4)
	d, err := OpenDataset(man, fs.open)
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}
	if n := fs.openedCount(); n != 0 {
		t.Fatalf("OpenDataset opened %d shard files", n)
	}
	if _, err := d.Shard(2); err != nil {
		t.Fatalf("Shard(2): %v", err)
	}
	if n := fs.openedCount(); n != 1 {
		t.Fatalf("one Shard call opened %d files", n)
	}
}

// TestDatasetDamageIsolation corrupts one shard of four: strict loading
// fails naming that shard alone, repair recovers every other shard
// fully, and the report pins the damage to the one shard.
func TestDatasetDamageIsolation(t *testing.T) {
	want := bigFixtureStore(t, 4, 800)
	fs := newMemFS()
	man := writeFixtureDataset(t, want, fs, 4)
	if len(man.Shards) != 4 {
		t.Fatalf("got %d shards", len(man.Shards))
	}
	victim := man.Shards[2].Name
	// Flip a byte mid-file: lands in an encoded column block.
	fs.corrupt(t, victim, int(man.Shards[2].FileSize/2))

	d, err := OpenDataset(man, fs.open)
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}
	_, _, err = d.LoadStore(LoadOptions{})
	if err == nil {
		t.Fatal("strict load of a damaged dataset succeeded")
	}
	if !strings.Contains(err.Error(), victim) {
		t.Fatalf("strict error does not name the damaged shard %s: %v", victim, err)
	}
	for _, si := range man.Shards {
		if si.Name != victim && strings.Contains(err.Error(), si.Name) {
			t.Fatalf("strict error names a healthy shard %s: %v", si.Name, err)
		}
	}

	got, rep, err := d.LoadStore(LoadOptions{Mode: LoadRepair})
	if err != nil {
		t.Fatalf("repair load: %v", err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("repair kept %d of %d rows", got.Len(), want.Len())
	}
	damaged := 0
	for _, sr := range rep.Shards {
		if sr.Name == victim {
			if len(sr.Damaged) == 0 {
				t.Fatalf("victim shard %s reports no damage", victim)
			}
			damaged++
		} else if len(sr.Damaged) != 0 {
			t.Fatalf("healthy shard %s reports damage %v", sr.Name, sr.Damaged)
		}
	}
	if damaged != 1 {
		t.Fatalf("%d shards report damage, want 1", damaged)
	}
	// Rows outside the victim's span must match the source exactly.
	lo := man.Shards[0].Rows + man.Shards[1].Rows
	hi := lo + man.Shards[2].Rows
	for r := 0; r < want.Len(); r++ {
		if r >= lo && r < hi {
			continue
		}
		if want.Row(r) != got.Row(r) {
			t.Fatalf("healthy row %d differs after repair", r)
		}
	}
}

// TestDatasetUnrecoverableShardSkipped: a shard that cannot even be
// opened is skipped in repair mode, its rows absent, the rest intact.
func TestDatasetUnrecoverableShardSkipped(t *testing.T) {
	want := bigFixtureStore(t, 4, 300)
	fs := newMemFS()
	man := writeFixtureDataset(t, want, fs, 4)
	victim := man.Shards[1].Name
	fs.mu.Lock()
	delete(fs.files, victim)
	fs.mu.Unlock()

	d, err := OpenDataset(man, fs.open)
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}
	if _, _, err := d.LoadStore(LoadOptions{}); err == nil || !strings.Contains(err.Error(), victim) {
		t.Fatalf("strict load: %v", err)
	}
	got, rep, err := d.LoadStore(LoadOptions{Mode: LoadRepair})
	if err != nil {
		t.Fatalf("repair load: %v", err)
	}
	if wantRows := want.Len() - man.Shards[1].Rows; got.Len() != wantRows {
		t.Fatalf("repair kept %d rows, want %d", got.Len(), wantRows)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("merged store invalid after skip: %v", err)
	}
	found := false
	for _, sr := range rep.Shards {
		if sr.Name == victim {
			found = true
			if len(sr.Damaged) == 0 {
				t.Fatal("skipped shard reports no damage")
			}
		}
	}
	if !found {
		t.Fatal("skipped shard missing from report")
	}
}

// TestShardOpenRejectsCorruptFooter: footer damage surfaces as a named
// error from Shard, not a bad read later.
func TestShardOpenRejectsCorruptFooter(t *testing.T) {
	want := bigFixtureStore(t, 2, 100)
	fs := newMemFS()
	man := writeFixtureDataset(t, want, fs, 2)
	fs.corrupt(t, man.Shards[0].Name, -4) // trailer magic
	d, err := OpenDataset(man, fs.open)
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}
	if _, err := d.Shard(0); err == nil || !strings.Contains(err.Error(), man.Shards[0].Name) {
		t.Fatalf("Shard(0) on corrupt trailer: %v", err)
	}
	// The sibling shard still opens.
	if _, err := d.Shard(1); err != nil {
		t.Fatalf("Shard(1): %v", err)
	}
}

// TestDatasetManifestRowMismatch: a manifest lying about shard rows is
// caught at open, in both access paths.
func TestDatasetManifestRowMismatch(t *testing.T) {
	want := bigFixtureStore(t, 2, 100)
	fs := newMemFS()
	man := writeFixtureDataset(t, want, fs, 2)
	man.Shards[0].Rows--
	man.Shards[0].Zone.Rows--
	d, err := OpenDataset(man, fs.open)
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}
	if _, err := d.Shard(0); err == nil {
		t.Fatal("Shard(0) accepted a row-count mismatch")
	}
	if _, _, err := d.LoadStore(LoadOptions{}); err == nil {
		t.Fatal("LoadStore accepted a row-count mismatch")
	}
}

func TestDetectKind(t *testing.T) {
	want := bigFixtureStore(t, 2, 50)
	fs := newMemFS()
	writeFixtureDataset(t, want, fs, 2)
	kindOf := func(name string) FileKind {
		fs.mu.Lock()
		defer fs.mu.Unlock()
		var magic [4]byte
		copy(magic[:], fs.files[name].Bytes())
		return DetectKind(magic)
	}
	if k := kindOf("fix.crow"); k != KindManifest {
		t.Fatalf("manifest detected as %v", k)
	}
	if k := kindOf("fix.shard00.crow"); k != KindSnapshot {
		t.Fatalf("shard detected as %v", k)
	}
	if k := DetectKind([4]byte{'n', 'o', 'p', 'e'}); k != KindUnknown {
		t.Fatalf("junk detected as %v", k)
	}
}
