package store

import (
	"errors"
	"io"
	"io/fs"
	"sync/atomic"
	"time"
)

// Transient read failures — a flaky disk, a network filesystem hiccup —
// should not fail a whole analytical query, so the dataset read path
// retries them with jittered exponential backoff before surfacing the
// error. Only plausibly-transient errors retry: a short read (EOF on an
// exact-extent read means a truncated file), a missing file, or a
// permission error is permanent and fails immediately, keeping the
// corruption taxonomy crisp — retrying cannot turn a damaged shard into
// a slow-but-successful read.

// RetryPolicy configures transient-read retries on the dataset path.
type RetryPolicy struct {
	// Attempts is the total number of tries per read; 0 or 1 disables
	// retrying.
	Attempts int
	// Backoff is the delay before the first retry; each further retry
	// doubles it, and every delay is jittered down by up to half.
	Backoff time.Duration
	// Sleep replaces time.Sleep in tests; nil means time.Sleep.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is what OpenDatasetPath installs: three tries with
// a couple of milliseconds of backoff — enough to ride out a hiccup,
// too little to matter on a healthy disk.
var DefaultRetryPolicy = RetryPolicy{Attempts: 3, Backoff: 2 * time.Millisecond}

// retryableRead reports whether a ReadAt error is worth retrying.
func retryableRead(err error) bool {
	switch {
	case errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, fs.ErrNotExist),
		errors.Is(err, fs.ErrPermission),
		errors.Is(err, fs.ErrClosed),
		errors.Is(err, fs.ErrInvalid):
		return false
	}
	return true
}

// WithRetry wraps ra so every ReadAt retries transient failures per the
// policy. The wrapper forwards Close to the underlying reader when it
// has one, so ownership semantics don't change.
func WithRetry(ra io.ReaderAt, p RetryPolicy) io.ReaderAt {
	if p.Attempts <= 1 {
		return ra
	}
	r := &retryReaderAt{ra: ra, p: p}
	r.seed.Store(uint64(time.Now().UnixNano()))
	return r
}

type retryReaderAt struct {
	ra io.ReaderAt
	p  RetryPolicy

	// seed drives the jitter PRNG lock-free: io.ReaderAt permits fully
	// parallel ReadAt calls (RunDataset fans shards out), and retries
	// must not serialize on a shared rand.Rand while the rest of the
	// read path runs unsynchronized.
	seed atomic.Uint64
}

// splitmix64 is the SplitMix64 output function: one atomic counter step
// plus a few multiplies yields an independent, well-mixed value per
// call with no shared mutable state beyond the counter.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// jitter returns d shrunk by a random factor in [1/2, 1].
func (r *retryReaderAt) jitter(d time.Duration) time.Duration {
	f := int64(splitmix64(r.seed.Add(1))) % (int64(d)/2 + 1)
	if f < 0 {
		f = -f
	}
	return d - time.Duration(f)
}

func (r *retryReaderAt) ReadAt(p []byte, off int64) (int, error) {
	sleep := r.p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	delay := r.p.Backoff
	for attempt := 1; ; attempt++ {
		n, err := r.ra.ReadAt(p, off)
		if err == nil || attempt >= r.p.Attempts || !retryableRead(err) {
			return n, err
		}
		if delay > 0 {
			sleep(r.jitter(delay))
			delay *= 2
		}
	}
}

// Close forwards to the underlying reader when it is a Closer.
func (r *retryReaderAt) Close() error {
	if c, ok := r.ra.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
