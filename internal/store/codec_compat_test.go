package store

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"crowdscope/internal/model"
)

var updateFixtures = flag.Bool("update-fixtures", false,
	"rewrite the committed snapshot fixtures and fuzz corpus under testdata/")

// writeSnapshotLegacy encodes the store in the retired v1/v2 monolithic
// layout, byte-for-byte what the old WriteTo produced. Tests and fixture
// generation use it to prove those formats stay loadable.
func writeSnapshotLegacy(s *Store, version uint32) []byte {
	var buf bytes.Buffer
	writeU32 := func(v uint32) { binary.Write(&buf, binary.LittleEndian, v) }
	writeU32(snapshotMagic)
	writeU32(version)
	writeU32(uint32(len(s.start)))
	writeU32(uint32(len(s.ranges)))
	putUvarints(&buf, s.batch)
	putUvarints(&buf, s.taskType)
	putUvarints(&buf, s.item)
	putUvarints(&buf, s.worker)
	putDeltaVarints(&buf, s.start)
	for i := range s.end {
		putUvarint(&buf, uint64(s.end[i]-s.start[i]))
	}
	putFloats(&buf, s.trust)
	putUvarints(&buf, s.answer)
	for _, rr := range s.ranges {
		putUvarint(&buf, uint64(rr.Lo))
		putUvarint(&buf, uint64(rr.Hi))
	}
	if version >= snapshotVersionV2 {
		putUvarint(&buf, uint64(len(s.segs)))
		for _, si := range s.segs {
			putUvarint(&buf, uint64(si.RowLo))
			putUvarint(&buf, uint64(si.RowHi))
			putUvarint(&buf, uint64(si.BatchLo))
			putUvarint(&buf, uint64(si.BatchHi))
		}
	}
	return buf.Bytes()
}

// fixtureStore builds the deterministic assembled store the committed
// fixtures pin: three segments over eight batches, with empty batches,
// a skipped batch range, and an empty segment interval.
func fixtureStore(t testing.TB) *Store {
	t.Helper()
	fill := func(b *Builder, batch uint32, rows int) {
		b.BeginBatch(batch)
		for i := 0; i < rows; i++ {
			start := int64(1_400_000_000) + int64(batch)*86400 + int64(i)*300
			b.Append(model.Instance{
				Batch:    batch,
				TaskType: batch % 5,
				Item:     uint32(i),
				Worker:   (batch*13 + uint32(i)*7) % 50,
				Start:    start,
				End:      start + 40 + int64(i%7)*11,
				Trust:    float32((batch*7+uint32(i)*3)%16) / 16,
				Answer:   batch*1000 + uint32(i),
			})
		}
	}
	a := NewBuilder(0, 3)
	fill(a, 0, 4)
	fill(a, 2, 3)
	b := NewBuilder(3, 3) // sealed empty interval: segments may outnumber batches' worth of rows
	c := NewBuilder(3, 8)
	fill(c, 3, 2)
	fill(c, 5, 5)
	s, err := Assemble(8, []*Segment{a.Seal(), b.Seal(), c.Seal()})
	if err != nil {
		t.Fatalf("fixture Assemble: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("fixture store invalid: %v", err)
	}
	return s
}

func fixtureProvenance() *Provenance {
	return &Provenance{ConfigHash: 0x1122334455667788, Seed: 1701, Tool: "crowdscope-fixture/3"}
}

// stripZones rewrites a current v3 snapshot into the flag-less form the
// writer produced before zone maps existed: the zone-map section is
// removed and its meta flag cleared (with the meta checksum refreshed).
// Early-v3 snapshots in the wild have exactly this shape, so the
// committed snapshot_v3.crow fixture stays regenerable.
func stripZones(t testing.TB, v3 []byte) []byte {
	t.Helper()
	out := append([]byte(nil), v3[:8]...)
	for pos := 8; pos < len(v3); {
		kind := v3[pos]
		length := int(binary.LittleEndian.Uint32(v3[pos+1 : pos+5]))
		end := pos + 9 + length
		if kind == secZones {
			pos = end
			continue
		}
		sec := append([]byte(nil), v3[pos:end]...)
		if kind == secMeta {
			payload := sec[9:]
			// flags is the meta section's final uvarint; every defined flag
			// fits one byte.
			if payload[len(payload)-1]&0x80 != 0 {
				t.Fatal("meta flags no longer fit one varint byte")
			}
			payload[len(payload)-1] &^= metaFlagZoneMaps
			binary.LittleEndian.PutUint32(sec[5:9], crc32.ChecksumIEEE(payload))
		}
		out = append(out, sec...)
		pos = end
	}
	return out
}

// fixtureBytes renders the fixture store in every supported format:
// the retired v1/v2 layouts, the flag-less early v3, the zone-mapped
// uncompressed v3, and the current compressed (encoded-block) v3.
func fixtureBytes(t testing.TB) map[string][]byte {
	t.Helper()
	s := fixtureStore(t)
	var v3 bytes.Buffer
	if _, err := s.WriteSnapshot(&v3, WriteOptions{Provenance: fixtureProvenance(), Workers: 1, Uncompressed: true}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	var v3c bytes.Buffer
	if _, err := s.WriteSnapshot(&v3c, WriteOptions{Provenance: fixtureProvenance(), Workers: 1}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return map[string][]byte{
		"snapshot_v1.crow":  writeSnapshotLegacy(s, snapshotVersionV1),
		"snapshot_v2.crow":  writeSnapshotLegacy(s, snapshotVersionV2),
		"snapshot_v3.crow":  stripZones(t, v3.Bytes()),
		"snapshot_v3z.crow": v3.Bytes(),
		"snapshot_v3c.crow": v3c.Bytes(),
	}
}

// TestSnapshotGoldenLayout pins the v3 byte layout to the committed
// fixture: any codec change that reorders sections, changes framing, or
// alters column encoding fails here instead of silently forking formats.
func TestSnapshotGoldenLayout(t *testing.T) {
	files := fixtureBytes(t)
	if *updateFixtures {
		writeFixtures(t, files)
	}
	for _, name := range []string{"snapshot_v3.crow", "snapshot_v3z.crow", "snapshot_v3c.crow"} {
		want, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("read golden (run `go test ./internal/store -run TestSnapshotGoldenLayout -update-fixtures` to create): %v", err)
		}
		if !bytes.Equal(files[name], want) {
			t.Fatalf("%s byte layout changed: got %d bytes, golden %d bytes; if intentional, bump the format version and regenerate fixtures",
				name, len(files[name]), len(want))
		}
	}
}

// TestSnapshotBackwardCompat loads the committed v1, v2 and v3 fixture
// files and checks them column-for-column against the fixture store.
func TestSnapshotBackwardCompat(t *testing.T) {
	want := fixtureStore(t)
	for _, tc := range []struct {
		file     string
		version  uint32
		segments int
		prov     bool
		zones    bool
		encoded  bool
	}{
		{"snapshot_v1.crow", 1, 0, false, false, false},
		{"snapshot_v2.crow", 2, 3, false, false, false},
		{"snapshot_v3.crow", 3, 3, true, false, false}, // early v3: no zone-map section
		{"snapshot_v3z.crow", 3, 3, true, true, false}, // pre-compression v3: varint blocks
		{"snapshot_v3c.crow", 3, 3, true, true, true},  // current v3: encoded column blocks
	} {
		t.Run(tc.file, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatalf("read fixture: %v", err)
			}
			var got Store
			rep, err := got.ReadSnapshot(bytes.NewReader(raw), LoadOptions{})
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if rep.Version != tc.version {
				t.Errorf("version = %d, want %d", rep.Version, tc.version)
			}
			if rep.Bytes != int64(len(raw)) {
				t.Errorf("consumed %d of %d bytes", rep.Bytes, len(raw))
			}
			if tc.prov {
				if rep.Provenance == nil || *rep.Provenance != *fixtureProvenance() {
					t.Errorf("provenance = %+v, want %+v", rep.Provenance, fixtureProvenance())
				}
			} else if rep.Provenance != nil {
				t.Errorf("unexpected provenance %+v", rep.Provenance)
			}
			if got.NumSegments() != tc.segments {
				t.Errorf("segments = %d, want %d", got.NumSegments(), tc.segments)
			}
			if loaded := len(got.zones) > 0; loaded != tc.zones {
				t.Errorf("zone maps loaded = %v, want %v", loaded, tc.zones)
			}
			if loaded := len(got.encs) > 0; loaded != tc.encoded {
				t.Errorf("segment encodings loaded = %v, want %v", loaded, tc.encoded)
			}
			compareStores(t, want, &got, tc.segments > 0)
			if err := got.Validate(); err != nil {
				t.Errorf("loaded store invalid: %v", err)
			}
		})
	}
}

// compareStores checks every column, the batch range table, and (when
// withSegs) the segment table for equality.
func compareStores(t *testing.T, want, got *Store, withSegs bool) {
	t.Helper()
	if got.Len() != want.Len() || got.NumBatches() != want.NumBatches() {
		t.Fatalf("shape: %d rows/%d batches, want %d/%d", got.Len(), got.NumBatches(), want.Len(), want.NumBatches())
	}
	for i := 0; i < want.Len(); i++ {
		if want.Row(i) != got.Row(i) {
			t.Fatalf("row %d differs: %+v vs %+v", i, want.Row(i), got.Row(i))
		}
	}
	for b := 0; b < want.NumBatches(); b++ {
		alo, ahi := want.BatchRange(uint32(b))
		blo, bhi := got.BatchRange(uint32(b))
		if alo != blo || ahi != bhi {
			t.Fatalf("batch %d range [%d,%d) vs [%d,%d)", b, alo, ahi, blo, bhi)
		}
	}
	if withSegs {
		if got.NumSegments() != want.NumSegments() {
			t.Fatalf("segments %d vs %d", got.NumSegments(), want.NumSegments())
		}
		for i, si := range want.Segments() {
			if got.Segments()[i] != si {
				t.Fatalf("segment %d differs: %+v vs %+v", i, got.Segments()[i], si)
			}
		}
	}
}

func writeFixtures(t *testing.T, files map[string][]byte) {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join("testdata", name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Committed fuzz corpus: full snapshots of each version plus
	// truncated and bit-flipped v3 variants.
	dir := filepath.Join("testdata", "fuzz", "FuzzReadFrom")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	v3 := files["snapshot_v3.crow"]
	v3z := files["snapshot_v3z.crow"]
	v3c := files["snapshot_v3c.crow"]
	corpus := map[string][]byte{
		"seed_v1":            files["snapshot_v1.crow"],
		"seed_v2":            files["snapshot_v2.crow"],
		"seed_v3":            v3,
		"seed_v3z":           v3z,
		"seed_v3c":           v3c,
		"seed_v3_truncated":  v3[:len(v3)/3],
		"seed_v3z_truncated": v3z[:2*len(v3z)/3],
		"seed_v3c_truncated": v3c[:2*len(v3c)/3],
		"seed_garbage":       []byte("not a snapshot at all"),
	}
	for i, off := range []int{4, 9, 14, len(v3) / 2, len(v3) - 5} {
		flip := append([]byte(nil), v3...)
		flip[off] ^= 0x40
		corpus[fmt.Sprintf("seed_v3_bitflip_%d", i)] = flip
	}
	for i, off := range []int{9, len(v3z) / 3, len(v3z) - 5} {
		flip := append([]byte(nil), v3z...)
		flip[off] ^= 0x40
		corpus[fmt.Sprintf("seed_v3z_bitflip_%d", i)] = flip
	}
	for i, off := range []int{9, len(v3c) / 3, len(v3c) / 2, len(v3c) - 5} {
		flip := append([]byte(nil), v3c...)
		flip[off] ^= 0x40
		corpus[fmt.Sprintf("seed_v3c_bitflip_%d", i)] = flip
	}
	for name, data := range corpus {
		entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(entry), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Committed corpus for the encoded-block reader: the valid payload of
	// each non-empty fixture segment plus truncated and bit-flipped forms.
	blockDir := filepath.Join("testdata", "fuzz", "FuzzDecodeColumnBlock")
	if err := os.MkdirAll(blockDir, 0o755); err != nil {
		t.Fatal(err)
	}
	s := fixtureStore(t)
	encs := s.Encodings()
	blockCorpus := map[string][]byte{"seed_garbage": []byte("not a block at all")}
	bi := 0
	for i, si := range s.Segments() {
		if si.Rows() == 0 {
			continue
		}
		var buf bytes.Buffer
		serializeEncBlock(&buf, &encs[i])
		raw := buf.Bytes()
		blockCorpus[fmt.Sprintf("seed_block_%d", bi)] = append([]byte(nil), raw...)
		blockCorpus[fmt.Sprintf("seed_block_%d_truncated", bi)] = append([]byte(nil), raw[:len(raw)/2]...)
		for j, off := range []int{0, 2, len(raw) / 3, len(raw) - 3} {
			flip := append([]byte(nil), raw...)
			flip[off] ^= 0x40
			blockCorpus[fmt.Sprintf("seed_block_%d_bitflip_%d", bi, j)] = flip
		}
		bi++
	}
	for name, data := range blockCorpus {
		entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(blockDir, name), []byte(entry), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
