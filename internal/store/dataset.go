package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// This file is the out-of-core side of the store: a Dataset is a
// manifest plus its shard snapshot files, accessed through io.ReaderAt
// instead of streaming loads. Opening a shard validates only its footer
// and metadata sections; column bytes are read lazily, per shard and per
// column, with exact byte ranges taken from the footer offset index. A
// query touching two of the eight columns reads only those columns'
// bytes, and shards pruned at the manifest level are never opened.

// OpenShard opens one shard file by its manifest name, returning a
// random-access reader and the file size. Readers that also implement
// io.Closer are closed by Dataset.Close.
type OpenShard func(name string) (io.ReaderAt, int64, error)

// Dataset is an open sharded dataset: the manifest plus lazily opened
// shards.
type Dataset struct {
	man   *Manifest
	open  OpenShard
	retry RetryPolicy

	shards []*Shard

	mu      sync.Mutex
	closers []io.Closer
}

// SetRetry installs a transient-read retry policy on every shard reader
// opened from now on (see RetryPolicy). Call it before the first read;
// already-open shards keep their readers.
func (d *Dataset) SetRetry(p RetryPolicy) { d.retry = p }

// openShard opens a shard reader with the dataset's retry policy applied.
func (d *Dataset) openShard(name string) (io.ReaderAt, int64, error) {
	ra, size, err := d.open(name)
	if err != nil {
		return nil, 0, err
	}
	return WithRetry(ra, d.retry), size, nil
}

// OpenDataset opens a dataset over a validated manifest. Shard files are
// not touched here; each opens on first use.
func OpenDataset(man *Manifest, open OpenShard) (*Dataset, error) {
	if err := man.validate(); err != nil {
		return nil, err
	}
	d := &Dataset{man: man, open: open, shards: make([]*Shard, len(man.Shards))}
	for i := range d.shards {
		d.shards[i] = &Shard{d: d, info: &man.Shards[i]}
	}
	return d, nil
}

// OpenDatasetPath reads the manifest at path and opens its dataset, with
// shard files resolved relative to the manifest's directory.
func OpenDatasetPath(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	man, _, err := ReadManifest(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	dir := filepath.Dir(path)
	d, err := OpenDataset(man, func(name string) (io.ReaderAt, int64, error) {
		sf, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, 0, err
		}
		st, err := sf.Stat()
		if err != nil {
			sf.Close()
			return nil, 0, err
		}
		return sf, st.Size(), nil
	})
	if err != nil {
		return nil, err
	}
	d.SetRetry(DefaultRetryPolicy)
	return d, nil
}

// Manifest returns the dataset's manifest.
func (d *Dataset) Manifest() *Manifest { return d.man }

// NumShards returns the shard count.
func (d *Dataset) NumShards() int { return len(d.shards) }

// Close closes every shard reader opened so far.
func (d *Dataset) Close() error {
	d.mu.Lock()
	closers := d.closers
	d.closers = nil
	d.mu.Unlock()
	var first error
	for _, c := range closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (d *Dataset) track(ra io.ReaderAt) {
	if c, ok := ra.(io.Closer); ok {
		d.mu.Lock()
		d.closers = append(d.closers, c)
		d.mu.Unlock()
	}
}

// Shard opens shard i if needed and returns it. The open validates the
// footer, metadata, segment table, batch ranges and zone maps — all via
// exact reads — and cross-checks them against the manifest entry; no
// column bytes are read.
func (d *Dataset) Shard(i int) (*Shard, error) {
	sh := d.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.st == nil {
		if err := sh.openLocked(); err != nil {
			return nil, fmt.Errorf("shard %s: %w", sh.info.Name, err)
		}
	}
	return sh, nil
}

// Shard is one lazily opened dataset shard: a partial Store whose
// columns load on demand through the shard's footer index.
type Shard struct {
	d    *Dataset
	info *ShardInfo

	mu       sync.Mutex
	ra       io.ReaderAt
	size     int64
	foot     *footerIndex
	blockSeg []int // footer block index -> segment index
	st       *Store
	loaded   colMask
	scratch  []byte
}

// buf returns the shard's reused read buffer, sized to n bytes.
func (sh *Shard) buf(n int) []byte {
	if cap(sh.scratch) < n {
		sh.scratch = make([]byte, n)
	}
	return sh.scratch[:n]
}

// readSecAt reads and verifies one framed section at an absolute offset.
func (sh *Shard) readSecAt(fs footerSec, name string) ([]byte, error) {
	if fs.off < 8 || fs.len < 0 || fs.off+9+fs.len > sh.size {
		return nil, sectionErr(name, fmt.Errorf("%w: extent [%d,+%d) outside file", ErrCorrupt, fs.off, fs.len))
	}
	buf := sh.buf(int(9 + fs.len))
	if _, err := sh.ra.ReadAt(buf, fs.off); err != nil {
		return nil, sectionErr(name, asTruncated(err))
	}
	if buf[0] != fs.kind {
		return nil, sectionErr(name, fmt.Errorf("%w: found section kind %#x, footer says %#x", ErrCorrupt, buf[0], fs.kind))
	}
	if got := binary.LittleEndian.Uint32(buf[1:5]); int64(got) != fs.len {
		return nil, sectionErr(name, fmt.Errorf("%w: section length %d, footer says %d", ErrCorrupt, got, fs.len))
	}
	payload := buf[9:]
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(buf[5:9]) {
		return nil, sectionErr(name, ErrChecksum)
	}
	return payload, nil
}

// openLocked opens the shard file and validates footer + metadata.
func (sh *Shard) openLocked() error {
	ra, size, err := sh.d.openShard(sh.info.Name)
	if err != nil {
		return err
	}
	sh.d.track(ra)
	sh.ra, sh.size = ra, size

	if size < 8+9+footerTrailerLen {
		return fmt.Errorf("%w: %d-byte file cannot hold a footer", ErrTruncated, size)
	}
	var tr [footerTrailerLen]byte
	if _, err := ra.ReadAt(tr[:], size-footerTrailerLen); err != nil {
		return asTruncated(err)
	}
	if magic := binary.LittleEndian.Uint32(tr[12:16]); magic != footerMagic {
		return fmt.Errorf("%w: no footer trailer (snapshot predates the footer index or is uncompressed)", ErrFormatNoFooter)
	}
	footOff := int64(binary.LittleEndian.Uint64(tr[0:8]))
	footLen := int64(binary.LittleEndian.Uint32(tr[8:12]))
	if footOff < 8 || footOff+9+footLen+footerTrailerLen != size {
		return sectionErr("footer trailer", fmt.Errorf("%w: footer extent [%d,+%d) does not end the %d-byte file", ErrCorrupt, footOff, footLen, size))
	}
	payload, err := sh.readSecAt(footerSec{kind: secFooter, off: footOff, len: footLen}, "footer index")
	if err != nil {
		return err
	}
	foot, err := decodeFooter(payload)
	if err != nil {
		return sectionErr("footer index", err)
	}

	var hdr [8]byte
	if _, err := ra.ReadAt(hdr[:], 0); err != nil {
		return asTruncated(err)
	}
	if magic := binary.LittleEndian.Uint32(hdr[0:4]); magic != snapshotMagic {
		return fmt.Errorf("%w: %#x", ErrBadMagic, magic)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != snapshotVersion {
		return fmt.Errorf("%w: shard snapshot version %d", ErrBadVersion, v)
	}

	metaSec, ok := foot.sec(secMeta)
	if !ok {
		return sectionErr("footer index", fmt.Errorf("%w: no meta section indexed", ErrCorrupt))
	}
	if payload, err = sh.readSecAt(metaSec, "meta"); err != nil {
		return err
	}
	sr := &sliceReader{buf: payload}
	var counts [5]uint64 // rows, batches, segments, blocks, flags
	for i := range counts {
		if counts[i], err = getUvarint(sr); err != nil {
			return sectionErr("meta", asTruncated(err))
		}
	}
	n, nb, ns, nblocks, flags := int(counts[0]), int(counts[1]), int(counts[2]), int(counts[3]), counts[4]
	if sr.remaining() != 0 {
		return sectionErr("meta", fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, sr.remaining()))
	}
	if flags&metaFlagEncoded == 0 || flags&metaFlagFooter == 0 {
		return sectionErr("meta", fmt.Errorf("%w: shard snapshot is not footer-indexed encoded", ErrCorrupt))
	}
	if len(foot.blocks) != nblocks {
		return sectionErr("footer index", fmt.Errorf("%w: %d blocks indexed, meta claims %d", ErrCorrupt, len(foot.blocks), nblocks))
	}

	// Cross-check the shard against its manifest entry before trusting
	// either: row count, batch table size, segment count, batch interval.
	if n != sh.info.Rows {
		return fmt.Errorf("%w: shard holds %d rows, manifest claims %d", ErrCorrupt, n, sh.info.Rows)
	}
	if nb != sh.d.man.NumBatches {
		return fmt.Errorf("%w: shard has %d batches, manifest has %d", ErrCorrupt, nb, sh.d.man.NumBatches)
	}
	if ns != sh.info.Segments {
		return fmt.Errorf("%w: shard holds %d segments, manifest claims %d", ErrCorrupt, ns, sh.info.Segments)
	}

	segSec, ok := foot.sec(secSegments)
	if !ok {
		return sectionErr("footer index", fmt.Errorf("%w: no segment table indexed", ErrCorrupt))
	}
	if payload, err = sh.readSecAt(segSec, "segment table"); err != nil {
		return err
	}
	segs, err := decodeSegments(payload, ns, n, nb)
	if err != nil {
		return sectionErr("segment table", err)
	}
	if len(segs) > 0 {
		if lo, hi := segs[0].BatchLo, segs[len(segs)-1].BatchHi; lo != sh.info.BatchLo || hi != sh.info.BatchHi {
			return fmt.Errorf("%w: shard covers batches [%d,%d), manifest claims [%d,%d)", ErrCorrupt, lo, hi, sh.info.BatchLo, sh.info.BatchHi)
		}
	}

	rngSec, ok := foot.sec(secRanges)
	if !ok {
		return sectionErr("footer index", fmt.Errorf("%w: no batch ranges indexed", ErrCorrupt))
	}
	if payload, err = sh.readSecAt(rngSec, "batch ranges"); err != nil {
		return err
	}
	ranges, err := decodeRanges(payload, nb, n)
	if err != nil {
		return sectionErr("batch ranges", err)
	}

	zoneSec, ok := foot.sec(secZones)
	if !ok || flags&metaFlagZoneMaps == 0 {
		return sectionErr("footer index", fmt.Errorf("%w: no zone maps indexed", ErrCorrupt))
	}
	if payload, err = sh.readSecAt(zoneSec, "zone maps"); err != nil {
		return err
	}
	zones, err := decodeZones(payload, segs)
	if err != nil {
		return sectionErr("zone maps", err)
	}

	// Block directory sanity: one block per non-empty segment, extents
	// inside the file before the footer.
	var blockSeg []int
	for i := range segs {
		if segs[i].Rows() > 0 {
			blockSeg = append(blockSeg, i)
		}
	}
	if len(blockSeg) != len(foot.blocks) {
		return sectionErr("footer index", fmt.Errorf("%w: %d blocks for %d non-empty segments", ErrCorrupt, len(foot.blocks), len(blockSeg)))
	}
	for i := range foot.blocks {
		fb := &foot.blocks[i]
		if fb.payloadOff < 8 || fb.end() > footOff {
			return sectionErr("footer index", fmt.Errorf("%w: block %d extent [%d,%d) outside file body", ErrCorrupt, i, fb.payloadOff, fb.end()))
		}
	}

	st := &Store{
		rows:    n,
		ranges:  ranges,
		segs:    segs,
		zones:   zones,
		encs:    make([]SegmentEnc, len(segs)),
		partial: true,
		fill:    &fillState{},
		gen:     NextGeneration(),
	}
	for i := range st.encs {
		st.encs[i].Rows = segs[i].Rows()
	}
	sh.foot, sh.blockSeg, sh.st = foot, blockSeg, st
	return nil
}

// ErrFormatNoFooter reports a shard snapshot without a footer index
// (written before the footer existed, or uncompressed); such files load
// through ReadSnapshot but cannot be opened for selective reads.
var ErrFormatNoFooter = errors.New("snapshot has no footer index")

// diskColOrder maps serializeEncBlock's on-disk column order to column
// masks.
var diskColOrder = [8]colMask{
	colMaskBatch, colMaskTaskType, colMaskItem, colMaskWorker,
	colMaskAnswer, colMaskStart, colMaskEnd, colMaskTrust,
}

// EnsureColumns reads and decodes the selected columns' bytes — and
// nothing else — for every segment of the shard. Requesting End also
// loads Start (End reconstructs as Start + EndOff). Loaded columns stay
// resident; repeated calls are no-ops; the decode scratch is reused
// across reads, so peak memory is one column of one segment plus the
// decoded encodings.
func (sh *Shard) EnsureColumns(cols ColumnSet) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.st == nil {
		if err := sh.openLocked(); err != nil {
			return fmt.Errorf("shard %s: %w", sh.info.Name, err)
		}
	}
	if cols&colMaskEnd != 0 {
		cols |= colMaskStart
	}
	missing := cols &^ sh.loaded
	if missing == 0 {
		return nil
	}
	for bi, segIdx := range sh.blockSeg {
		fb := &sh.foot.blocks[bi]
		rows := sh.st.segs[segIdx].Rows()
		e := &sh.st.encs[segIdx]
		for c := 0; c < 8; c++ {
			m := diskColOrder[c]
			if missing&m == 0 {
				continue
			}
			if err := sh.readColumn(fb, c, rows, e); err != nil {
				return fmt.Errorf("shard %s: segment %d: %w", sh.info.Name, segIdx, err)
			}
		}
	}
	sh.loaded |= cols
	// Publish to the partial store so its materialization guard accepts
	// the loaded columns.
	fs := sh.st.fillRef()
	fs.mu.Lock()
	sh.st.loadedCols |= cols
	fs.mu.Unlock()
	return nil
}

// colName labels disk columns in errors.
var colName = [8]string{"batch", "taskType", "item", "worker", "answer", "start", "endOff", "trust"}

// readColumn reads, checksums and decodes one column of one block.
func (sh *Shard) readColumn(fb *footerBlock, c, rows int, e *SegmentEnc) error {
	off, length := fb.colOff(c), fb.colLen[c]
	buf := sh.buf(int(length))
	if _, err := sh.ra.ReadAt(buf, off); err != nil {
		return fmt.Errorf("column %s: %w", colName[c], asTruncated(err))
	}
	if crc := crc32.ChecksumIEEE(buf); crc != fb.colCRC[c] {
		return fmt.Errorf("column %s: %w", colName[c], ErrChecksum)
	}
	sr := &sliceReader{buf: buf}
	var err error
	switch c {
	case 0:
		err = readEncU32(sr, rows, &e.Batch)
	case 1:
		err = readEncU32(sr, rows, &e.TaskType)
	case 2:
		err = readEncU32(sr, rows, &e.Item)
	case 3:
		err = readEncU32(sr, rows, &e.Worker)
	case 4:
		err = readEncU32(sr, rows, &e.Answer)
	case 5:
		err = readEncI64(sr, rows, &e.Start)
	case 6:
		err = readEncI64(sr, rows, &e.EndOff)
	case 7:
		err = readEncF32(sr, rows, &e.Trust)
	}
	if err != nil {
		return fmt.Errorf("column %s: %w", colName[c], err)
	}
	if sr.remaining() != 0 {
		return fmt.Errorf("column %s: %w: %d trailing bytes", colName[c], ErrCorrupt, sr.remaining())
	}
	return nil
}

// Store returns the shard's partial store. Only columns loaded through
// EnsureColumns may be scanned or materialized; the store panics on any
// other column access.
func (sh *Shard) Store() *Store { return sh.st }

// Info returns the shard's manifest entry.
func (sh *Shard) Info() *ShardInfo { return sh.info }

// --- full-dataset loading --------------------------------------------

// ShardLoadReport describes one shard of a dataset load.
type ShardLoadReport struct {
	Name    string
	Rows    int
	Damaged []string // per-shard damage, empty when the shard loaded clean
}

// DatasetReport summarizes a Dataset.LoadStore.
type DatasetReport struct {
	Bytes      int64
	Rows       int
	Provenance *Provenance // first shard's provenance, when present
	Shards     []ShardLoadReport
}

// LoadStore streams every shard through ReadSnapshot and assembles one
// resident store — the bridge from a sharded dataset to everything that
// wants a plain Store. In strict mode the first failing shard aborts the
// load with an error naming it; in repair mode damage stays isolated to
// the shard it hit — other shards recover fully, and a shard beyond
// repair is skipped with its rows absent and its batches left empty.
func (d *Dataset) LoadStore(opts LoadOptions) (*Store, *DatasetReport, error) {
	rep := &DatasetReport{}
	repair := opts.Mode == LoadRepair
	stores := make([]*Store, len(d.man.Shards))
	for i := range d.man.Shards {
		si := &d.man.Shards[i]
		ra, size, err := d.openShard(si.Name)
		if err != nil {
			if !repair {
				return nil, nil, fmt.Errorf("shard %s: %w", si.Name, err)
			}
			rep.Shards = append(rep.Shards, ShardLoadReport{Name: si.Name, Damaged: []string{fmt.Sprintf("unrecoverable: %v", err)}})
			continue
		}
		var st Store
		lrep, err := st.ReadSnapshot(io.NewSectionReader(ra, 0, size), opts)
		if c, ok := ra.(io.Closer); ok {
			c.Close()
		}
		rep.Bytes += lrep.Bytes
		if err == nil && st.Len() != si.Rows {
			err = fmt.Errorf("%w: shard holds %d rows, manifest claims %d", ErrCorrupt, st.Len(), si.Rows)
		}
		if err != nil {
			if !repair {
				return nil, nil, fmt.Errorf("shard %s: %w", si.Name, err)
			}
			rep.Shards = append(rep.Shards, ShardLoadReport{Name: si.Name, Damaged: append(lrep.Damaged, fmt.Sprintf("unrecoverable: %v", err))})
			continue
		}
		if rep.Provenance == nil {
			rep.Provenance = lrep.Provenance
		}
		rep.Shards = append(rep.Shards, ShardLoadReport{Name: si.Name, Rows: st.Len(), Damaged: lrep.Damaged})
		stores[i] = &st
	}
	merged := mergeShardStores(d.man, stores)
	rep.Rows = merged.Len()
	return merged, rep, nil
}

// mergeShardStores concatenates per-shard stores (nil entries were
// skipped as unrecoverable) into one global store, mirroring Assemble:
// row spans shift by the running offset, batch intervals are already
// global, and empty batches keep the zero range.
func mergeShardStores(man *Manifest, stores []*Store) *Store {
	out := New(man.NumBatches)
	total := 0
	allEnc, allZones := true, true
	for _, st := range stores {
		if st == nil {
			continue
		}
		total += st.rows
		if len(st.encs) != len(st.segs) {
			allEnc = false // repair materialized raw and dropped encodings
		}
		if len(st.zones) != len(st.segs) {
			allZones = false
		}
	}
	base := 0
	for _, st := range stores {
		if st == nil {
			continue
		}
		for _, sg := range st.segs {
			out.segs = append(out.segs, SegmentInfo{
				RowLo: sg.RowLo + base, RowHi: sg.RowHi + base,
				BatchLo: sg.BatchLo, BatchHi: sg.BatchHi,
			})
		}
		if allZones {
			out.zones = append(out.zones, st.zones...)
		}
		if allEnc {
			out.encs = append(out.encs, st.encs...)
		}
		for b, rr := range st.ranges {
			if rr.Hi > rr.Lo {
				out.ranges[b] = rowRange{Lo: rr.Lo + int32(base), Hi: rr.Hi + int32(base)}
			}
		}
		base += st.rows
	}
	out.rows = total
	if !allEnc {
		// At least one shard is raw-only: materialize everything and copy.
		growColumns(out, total)
		base = 0
		for _, st := range stores {
			if st == nil {
				continue
			}
			st.ensure(colMaskAll)
			copy(out.batch[base:], st.batch)
			copy(out.taskType[base:], st.taskType)
			copy(out.item[base:], st.item)
			copy(out.worker[base:], st.worker)
			copy(out.start[base:], st.start)
			copy(out.end[base:], st.end)
			copy(out.trust[base:], st.trust)
			copy(out.answer[base:], st.answer)
			base += st.rows
		}
		out.encs = nil
	}
	return out
}

// --- dataset writing -------------------------------------------------

// WriteDataset writes the store as a sharded dataset: nshards (at most
// one per segment) encoded shard snapshots named "<stem>.shardNN.crow",
// created through the create callback, plus the manifest on w. Segments
// partition into contiguous groups balanced by row count, so shards
// split by batch range exactly like the store's segments do. The
// returned manifest is the one written.
func (s *Store) WriteDataset(w io.Writer, nshards int, stem string, create func(name string) (io.WriteCloser, error), opts WriteOptions) (*Manifest, error) {
	if opts.Uncompressed {
		return nil, errors.New("store: sharded datasets require the encoded layout")
	}
	if len(s.segs) == 0 {
		return nil, errors.New("store: sharded datasets require an explicit segment layout (Assemble)")
	}
	for _, si := range s.segs {
		if si.Rows() > encBlockMaxRows {
			return nil, fmt.Errorf("store: segment of %d rows exceeds the encoded-block cap", si.Rows())
		}
	}
	if nshards < 1 {
		nshards = 1
	}
	encs := s.Encodings()
	zones := s.ZoneMaps()
	cuts := segmentCuts(s.segs, min(nshards, len(s.segs)))
	man := &Manifest{NumBatches: s.NumBatches()}
	for k := 0; k+1 < len(cuts); k++ {
		gLo, gHi := cuts[k], cuts[k+1]
		name := fmt.Sprintf("%s.shard%02d.crow", stem, k)
		view := s.shardView(gLo, gHi, encs, zones)
		out, err := create(name)
		if err != nil {
			return nil, fmt.Errorf("shard %s: %w", name, err)
		}
		nbytes, werr := view.WriteSnapshot(out, opts)
		cerr := out.Close()
		if werr == nil {
			werr = cerr
		}
		if werr != nil {
			return nil, fmt.Errorf("shard %s: %w", name, werr)
		}
		man.Shards = append(man.Shards, ShardInfo{
			Name:     name,
			Rows:     view.rows,
			BatchLo:  s.segs[gLo].BatchLo,
			BatchHi:  s.segs[gHi-1].BatchHi,
			Segments: gHi - gLo,
			FileSize: nbytes,
			Zone:     mergeShardZones(zones[gLo:gHi]),
		})
	}
	if _, err := WriteManifest(w, man); err != nil {
		return nil, err
	}
	return man, nil
}

// segmentCuts partitions segments into nsh contiguous groups of roughly
// equal row counts; returns nsh+1 ascending indexes with cuts[0]=0 and
// cuts[nsh]=len(segs).
func segmentCuts(segs []SegmentInfo, nsh int) []int {
	total := 0
	for _, si := range segs {
		total += si.Rows()
	}
	cuts := make([]int, 1, nsh+1)
	acc := 0
	for i, si := range segs {
		if len(cuts) == nsh {
			break
		}
		acc += si.Rows()
		if acc*nsh >= total*len(cuts) && i+1 < len(segs) {
			cuts = append(cuts, i+1)
		}
	}
	return append(cuts, len(segs))
}

// shardView builds a snapshot-writable store over segments [gLo, gHi):
// row spans rebased to zero, batch intervals kept global, the full-size
// batch table with only this shard's batches populated, and the parent's
// encodings and zones shared by reference. Raw columns are not carried —
// the encoded snapshot writer never touches them.
func (s *Store) shardView(gLo, gHi int, encs []SegmentEnc, zones []ZoneMap) *Store {
	segs := s.segs[gLo:gHi]
	rowBase := segs[0].RowLo
	v := &Store{
		rows:  segs[len(segs)-1].RowHi - rowBase,
		segs:  make([]SegmentInfo, len(segs)),
		zones: zones[gLo:gHi],
		encs:  encs[gLo:gHi],
		fill:  &fillState{},
		gen:   NextGeneration(),
	}
	for i, sg := range segs {
		v.segs[i] = SegmentInfo{
			RowLo: sg.RowLo - rowBase, RowHi: sg.RowHi - rowBase,
			BatchLo: sg.BatchLo, BatchHi: sg.BatchHi,
		}
	}
	v.ranges = make([]rowRange, len(s.ranges))
	for b := segs[0].BatchLo; b < segs[len(segs)-1].BatchHi; b++ {
		if rr := s.ranges[b]; rr.Hi > rr.Lo {
			v.ranges[b] = rowRange{Lo: rr.Lo - int32(rowBase), Hi: rr.Hi - int32(rowBase)}
		}
	}
	return v
}

// --- file-kind sniffing ----------------------------------------------

// FileKind identifies what a .crow file holds, from its magic bytes.
type FileKind int

const (
	KindUnknown FileKind = iota
	KindSnapshot
	KindManifest
)

// DetectKind classifies the first four bytes of a file.
func DetectKind(magic [4]byte) FileKind {
	switch binary.LittleEndian.Uint32(magic[:]) {
	case snapshotMagic:
		return KindSnapshot
	case manifestMagic:
		return KindManifest
	}
	return KindUnknown
}

// DetectPath classifies the file at path by its magic bytes.
func DetectPath(path string) (FileKind, error) {
	f, err := os.Open(path)
	if err != nil {
		return KindUnknown, err
	}
	defer f.Close()
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return KindUnknown, nil // too short to be either: unknown, not an I/O failure
	}
	return DetectKind(magic), nil
}
