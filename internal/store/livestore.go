package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"crowdscope/internal/model"
	"crowdscope/internal/vfs"
	"crowdscope/internal/wal"
)

// LiveStore is the durable ingest front of the store: appended instance
// rows are WAL-logged (and synced, under the default policy) before they
// are acknowledged, accumulated in a growable open builder, sealed into
// the ordinary immutable segments at a row threshold, and periodically
// checkpointed — a v3 snapshot of the sealed segments plus the WAL
// position the snapshot covers, written atomically via temp-file rename.
// OpenLive recovers a crashed directory by loading the checkpoint and
// replaying the WAL suffix through the same apply path the live process
// used, which makes the recovered state bit-identical to an uncrashed
// process that ingested the same records.
//
// Determinism is the load-bearing property. Recovery replays the record
// stream, so everything the in-memory state depends on must be a pure
// function of that stream (plus the configured thresholds): records are
// validated BEFORE they are logged, so apply can never fail; seal
// decisions happen only at record boundaries; and a batch never splits
// across segments because a seal additionally waits for the batch ID to
// advance. Reopen a directory with the thresholds it was written under.
//
// The directory layout is
//
//	dir/wal/wal-*.log    the record log (see internal/wal)
//	dir/ckpt-%08d.crow   checkpoint snapshots (ordinary v3 snapshots)
//	dir/CHECKPOINT       points at the live snapshot + its WAL position
type LiveStore struct {
	dir string
	cfg LiveConfig
	fs  vfs.FS

	mu        sync.Mutex
	log       *wal.Log
	sealed    []*Segment
	open      *Builder // nil when no unsealed rows
	openStart wal.LSN  // LSN of the first record in the open builder
	curBatch  uint32   // highest batch ID appended
	haveRows  bool
	ackRows   int // rows acknowledged (or recovered) so far
	sealRows  int // rows in sealed segments
	ckptSeq   uint64
	ckptRows  int // sealed rows covered by the live checkpoint
	closed    bool
	failed    bool

	// degraded marks the read-only state disk exhaustion puts the store
	// in: appends and checkpoints are refused with ErrDegraded while
	// queries keep serving, and RecoverWrites re-arms the writers once
	// space returns. Unlike failed, nothing acknowledged is in doubt —
	// the WAL never advances its acked offset past a failed write.
	degraded       bool
	degradedReason string

	// view is the MVCC read arena behind View (see liveview.go). It has
	// its own mutex; ls.mu is only ever taken for the O(small) capture.
	view viewState
}

// LiveConfig tunes a LiveStore. The thresholds are part of the recovery
// contract: reopen a directory with the values it was written under.
type LiveConfig struct {
	// SealRows is the open-builder row count at which the next batch
	// boundary seals it into an immutable segment. Zero means 1 << 16.
	SealRows int
	// CheckpointRows checkpoints automatically once that many sealed rows
	// are not yet covered by a checkpoint. Zero means 4 * SealRows;
	// negative disables auto-checkpointing (Checkpoint still works).
	CheckpointRows int
	// Sync is the WAL fsync policy; the zero value is SyncAlways, under
	// which an acknowledged append survives any crash.
	Sync wal.SyncPolicy
	// SegmentBytes is the WAL rotation threshold; zero means the WAL
	// default.
	SegmentBytes int64
	// FS is the filesystem everything lives on; nil means the real one.
	// The fault-injection tests swap in internal/faultfs here.
	FS vfs.FS
}

func (c *LiveConfig) fill() {
	if c.SealRows <= 0 {
		c.SealRows = 1 << 16
	}
	if c.CheckpointRows == 0 {
		c.CheckpointRows = 4 * c.SealRows
	}
	if c.FS == nil {
		c.FS = vfs.OS{}
	}
}

// ErrLiveFailed poisons a LiveStore after a write, sync or checkpoint
// failure: the on-disk tail is undefined, so further appends are refused.
// Reopen the directory to recover the durable prefix.
var ErrLiveFailed = errors.New("store: live store failed; reopen to recover")

// ErrDegraded marks the read-only degraded state a LiveStore enters when
// the disk fills up (ENOSPC on a WAL append or checkpoint): appends and
// checkpoints are refused, reads and queries keep working, and
// RecoverWrites restores write service once space returns — no reopen
// needed, because a full disk never leaves acknowledged data in doubt.
var ErrDegraded = errors.New("store: live store degraded (read-only): disk full")

// isDiskFull reports whether err is disk exhaustion — the one write
// failure that is expected to clear on its own and so degrades the store
// instead of poisoning it.
func isDiskFull(err error) bool { return errors.Is(err, syscall.ENOSPC) }

// Record payload layout (the WAL stores opaque payloads; this is the
// live store's record codec). A record is one acknowledged Append call:
//
//	byte   kind (1 = instance rows)
//	uvarint row count
//	per row: uvarint batch delta (from previous row; batches ascend),
//	         uvarint taskType, item, worker, answer,
//	         uvarint zigzag(start delta), uvarint zigzag(end - start),
//	         4-byte LE float32 trust bits
//
// Every field is input-bounded on decode; a record that fails validation
// is never written, so replay of a CRC-clean log cannot fail.
const (
	recKindRows = 1
	// MaxAppendRows bounds one Append call (and so one WAL record).
	MaxAppendRows = 1 << 20
)

// encodeRecord serializes rows, which must already be validated.
func encodeRecord(rows []model.Instance) []byte {
	var b bytes.Buffer
	b.WriteByte(recKindRows)
	putUvarint(&b, uint64(len(rows)))
	prevBatch := uint32(0)
	prevStart := int64(0)
	var f [4]byte
	for _, in := range rows {
		putUvarint(&b, uint64(in.Batch-prevBatch))
		prevBatch = in.Batch
		putUvarint(&b, uint64(in.TaskType))
		putUvarint(&b, uint64(in.Item))
		putUvarint(&b, uint64(in.Worker))
		putUvarint(&b, uint64(in.Answer))
		putUvarint(&b, zigzag(in.Start-prevStart))
		prevStart = in.Start
		putUvarint(&b, zigzag(in.End-in.Start))
		binary.LittleEndian.PutUint32(f[:], math.Float32bits(in.Trust))
		b.Write(f[:])
	}
	return b.Bytes()
}

// decodeRecord inverts encodeRecord, validating every bound. The rows of
// a valid record have non-decreasing batch IDs by construction.
func decodeRecord(p []byte) ([]model.Instance, error) {
	sr := &sliceReader{buf: p}
	kind, err := sr.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("record kind: %w", ErrTruncated)
	}
	if kind != recKindRows {
		return nil, fmt.Errorf("record kind %d: %w", kind, ErrCorrupt)
	}
	n, err := getUvarint(sr)
	if err != nil {
		return nil, fmt.Errorf("record row count: %w", asTruncated(err))
	}
	if n == 0 || n > MaxAppendRows {
		return nil, fmt.Errorf("record row count %d: %w", n, ErrCorrupt)
	}
	// Bound the allocation by the input: every row costs ≥ 11 bytes.
	if int(n) > sr.remaining()/11+1 {
		return nil, fmt.Errorf("record row count %d exceeds payload: %w", n, ErrCorrupt)
	}
	rows := make([]model.Instance, n)
	prevBatch := uint64(0)
	prevStart := int64(0)
	var f [4]byte
	for i := range rows {
		d, err := getUvarint(sr)
		if err != nil {
			return nil, fmt.Errorf("row %d batch: %w", i, asTruncated(err))
		}
		batch := prevBatch + d
		if batch > math.MaxUint32 {
			return nil, fmt.Errorf("row %d batch %d: %w", i, batch, ErrCorrupt)
		}
		prevBatch = batch
		rows[i].Batch = uint32(batch)
		for _, dst := range []*uint32{&rows[i].TaskType, &rows[i].Item, &rows[i].Worker, &rows[i].Answer} {
			v, err := getUvarint(sr)
			if err != nil || v > math.MaxUint32 {
				return nil, fmt.Errorf("row %d column: %w", i, ErrCorrupt)
			}
			*dst = uint32(v)
		}
		sd, err := getUvarint(sr)
		if err != nil {
			return nil, fmt.Errorf("row %d start: %w", i, asTruncated(err))
		}
		rows[i].Start = prevStart + unzigzag(sd)
		prevStart = rows[i].Start
		ed, err := getUvarint(sr)
		if err != nil {
			return nil, fmt.Errorf("row %d end: %w", i, asTruncated(err))
		}
		rows[i].End = rows[i].Start + unzigzag(ed)
		if _, err := io.ReadFull(sr, f[:]); err != nil {
			return nil, fmt.Errorf("row %d trust: %w", i, ErrTruncated)
		}
		rows[i].Trust = math.Float32frombits(binary.LittleEndian.Uint32(f[:]))
	}
	if sr.remaining() != 0 {
		return nil, fmt.Errorf("%d trailing record bytes: %w", sr.remaining(), ErrCorrupt)
	}
	return rows, nil
}

// Checkpoint meta file: a single fixed-size frame naming the live
// snapshot and the WAL position it covers. Written via temp-file rename,
// so it is either the old version or the new one, never a mix; the CRC
// catches bit rot, which (unlike a torn tail) is not recoverable here —
// the meta is the root of trust for what the WAL may have discarded.
const (
	ckptMagic = 0x504B4343 // "CCKP"
	ckptLen   = 4 + 4 + 8 + 8 + 8 + 8 + 4
)

type ckptMeta struct {
	seq  uint64  // snapshot sequence: the live snapshot is ckptName(seq)
	lsn  wal.LSN // replay resumes here; everything before is in the snapshot
	rows uint64  // rows in the snapshot, cross-checked after load
}

func ckptName(seq uint64) string { return fmt.Sprintf("ckpt-%08d.crow", seq) }

func encodeCkptMeta(m ckptMeta) []byte {
	b := make([]byte, ckptLen)
	binary.LittleEndian.PutUint32(b[0:4], ckptMagic)
	binary.LittleEndian.PutUint32(b[4:8], 1) // meta format version
	binary.LittleEndian.PutUint64(b[8:16], m.seq)
	binary.LittleEndian.PutUint64(b[16:24], m.lsn.Seg)
	binary.LittleEndian.PutUint64(b[24:32], uint64(m.lsn.Off))
	binary.LittleEndian.PutUint64(b[32:40], m.rows)
	binary.LittleEndian.PutUint32(b[40:44], crc32.ChecksumIEEE(b[:40]))
	return b
}

func decodeCkptMeta(b []byte) (ckptMeta, error) {
	var m ckptMeta
	if len(b) != ckptLen {
		return m, fmt.Errorf("checkpoint meta is %d bytes, want %d: %w", len(b), ckptLen, ErrTruncated)
	}
	if binary.LittleEndian.Uint32(b[0:4]) != ckptMagic {
		return m, fmt.Errorf("checkpoint meta: %w", ErrBadMagic)
	}
	if crc32.ChecksumIEEE(b[:40]) != binary.LittleEndian.Uint32(b[40:44]) {
		return m, fmt.Errorf("checkpoint meta: %w", ErrChecksum)
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != 1 {
		return m, fmt.Errorf("checkpoint meta version %d: %w", v, ErrBadVersion)
	}
	m.seq = binary.LittleEndian.Uint64(b[8:16])
	m.lsn = wal.LSN{Seg: binary.LittleEndian.Uint64(b[16:24]), Off: int64(binary.LittleEndian.Uint64(b[24:32]))}
	m.rows = binary.LittleEndian.Uint64(b[32:40])
	return m, nil
}

// OpenLive opens (creating if needed) the live store in dir and recovers
// it: the checkpoint snapshot is loaded strictly, the WAL is opened —
// which truncates any torn tail — and the surviving record suffix is
// replayed through the ordinary apply path. The recovered rows are
// exactly a prefix of the record stream past appends submitted, and
// include every acknowledged append (under the default sync policy).
func OpenLive(dir string, cfg LiveConfig) (*LiveStore, error) {
	cfg.fill()
	fs := cfg.FS
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	ls := &LiveStore{dir: dir, cfg: cfg, fs: fs}

	// Root of trust: the CHECKPOINT meta, absent on a fresh directory.
	var ckptLSN wal.LSN
	meta, ok, err := ls.readCkptMeta()
	if err != nil {
		return nil, err
	}
	if ok {
		if err := ls.loadCheckpoint(meta); err != nil {
			return nil, err
		}
		ckptLSN = meta.lsn
		ls.ckptSeq = meta.seq
	}
	ls.ckptRows = ls.sealRows
	ls.ackRows = ls.sealRows

	log, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{
		SegmentBytes: cfg.SegmentBytes, Sync: cfg.Sync, FS: fs,
	})
	if err != nil {
		return nil, err
	}
	ls.log = log
	err = log.Replay(ckptLSN, func(lsn wal.LSN, payload []byte) error {
		rows, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("wal record at %v: %w", lsn, err)
		}
		if ls.haveRows && rows[0].Batch < ls.curBatch {
			return fmt.Errorf("wal record at %v: batch %d regresses below %d: %w",
				lsn, rows[0].Batch, ls.curBatch, ErrCorrupt)
		}
		ls.applyLocked(lsn, rows)
		ls.ackRows += len(rows)
		return nil
	})
	if err != nil {
		log.Close()
		return nil, err
	}
	// If damage tore the WAL back behind the checkpoint position, appending
	// there would hide new records behind the replay start; skip forward.
	if err := log.AdvancePast(ckptLSN); err != nil {
		log.Close()
		return nil, err
	}
	if err := ls.removeStaleFiles(); err != nil {
		log.Close()
		return nil, err
	}
	return ls, nil
}

// readCkptMeta reads and validates dir/CHECKPOINT; ok is false when the
// file does not exist (a fresh or never-checkpointed directory).
func (ls *LiveStore) readCkptMeta() (ckptMeta, bool, error) {
	f, err := ls.fs.OpenRead(filepath.Join(ls.dir, "CHECKPOINT"))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return ckptMeta{}, false, nil
		}
		return ckptMeta{}, false, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return ckptMeta{}, false, err
	}
	if size > ckptLen {
		size = ckptLen + 1 // oversize fails decode with a length error
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return ckptMeta{}, false, err
	}
	m, err := decodeCkptMeta(buf)
	if err != nil {
		return ckptMeta{}, false, err
	}
	return m, true, nil
}

// loadCheckpoint strict-loads the snapshot meta points at and rebuilds
// the sealed segment list from it.
func (ls *LiveStore) loadCheckpoint(meta ckptMeta) error {
	path := filepath.Join(ls.dir, ckptName(meta.seq))
	f, err := ls.fs.OpenRead(path)
	if err != nil {
		return fmt.Errorf("checkpoint snapshot %s: %w", ckptName(meta.seq), err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return err
	}
	st := New(0)
	if _, err := st.ReadSnapshot(io.NewSectionReader(f, 0, size), LoadOptions{Mode: LoadStrict}); err != nil {
		return fmt.Errorf("checkpoint snapshot %s: %w", ckptName(meta.seq), err)
	}
	if st.Len() != int(meta.rows) {
		return fmt.Errorf("checkpoint snapshot %s holds %d rows, meta says %d: %w",
			ckptName(meta.seq), st.Len(), meta.rows, ErrCorrupt)
	}
	segs, err := segmentsFromStore(st)
	if err != nil {
		return fmt.Errorf("checkpoint snapshot %s: %w", ckptName(meta.seq), err)
	}
	ls.sealed = segs
	ls.sealRows = st.Len()
	if n := len(segs); n > 0 {
		ls.curBatch = segs[n-1].batchHi - 1
		ls.haveRows = true
	}
	return nil
}

// segmentsFromStore re-slices an assembled (or snapshot-loaded) store
// into its sealed segments. Zone maps and encodings are carried over,
// not recomputed — Seal computed them from the same bytes, so the round
// trip through a snapshot is bit-identical.
func segmentsFromStore(st *Store) ([]*Segment, error) {
	infos := st.segs
	if st.Len() == 0 {
		return nil, nil
	}
	if len(infos) == 0 || len(st.zones) != len(infos) || len(st.encs) != len(infos) {
		return nil, fmt.Errorf("store lacks a segment layout: %w", ErrCorrupt)
	}
	st.ensure(colMaskAll)
	segs := make([]*Segment, len(infos))
	for i, si := range infos {
		g := &Segment{
			batchLo:  si.BatchLo,
			batchHi:  si.BatchHi,
			batch:    st.batch[si.RowLo:si.RowHi:si.RowHi],
			taskType: st.taskType[si.RowLo:si.RowHi:si.RowHi],
			item:     st.item[si.RowLo:si.RowHi:si.RowHi],
			worker:   st.worker[si.RowLo:si.RowHi:si.RowHi],
			start:    st.start[si.RowLo:si.RowHi:si.RowHi],
			end:      st.end[si.RowLo:si.RowHi:si.RowHi],
			trust:    st.trust[si.RowLo:si.RowHi:si.RowHi],
			answer:   st.answer[si.RowLo:si.RowHi:si.RowHi],
			ranges:   make([]rowRange, si.BatchHi-si.BatchLo),
			zone:     st.zones[i],
			enc:      st.encs[i],
		}
		for b := si.BatchLo; b < si.BatchHi; b++ {
			rr := st.ranges[b]
			if rr.Hi > rr.Lo {
				g.ranges[b-si.BatchLo] = rowRange{Lo: rr.Lo - int32(si.RowLo), Hi: rr.Hi - int32(si.RowLo)}
			}
		}
		segs[i] = g
	}
	return segs, nil
}

// removeStaleFiles deletes temp files and snapshots other than the live
// one — leftovers of a crash mid-checkpoint.
func (ls *LiveStore) removeStaleFiles() error {
	names, err := ls.fs.ReadDir(ls.dir)
	if err != nil {
		return err
	}
	live := ckptName(ls.ckptSeq)
	for _, name := range names {
		var seq uint64
		stale := false
		if _, err := fmt.Sscanf(name, "ckpt-%08d.crow", &seq); err == nil && name == ckptName(seq) {
			stale = name != live
		}
		if filepath.Ext(name) == ".tmp" {
			stale = true
		}
		if stale {
			if err := ls.fs.Remove(filepath.Join(ls.dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Append validates rows, logs them as one WAL record, and — only after
// the log accepts (and, under SyncAlways, syncs) the record — applies
// them to the open builder and acknowledges. Rows must arrive in batch
// order: batch IDs non-decreasing within the call and no lower than the
// store's highest batch. A nil error means the rows are durable under
// the configured sync policy; after any error the store is poisoned and
// must be reopened.
func (ls *LiveStore) Append(rows []model.Instance) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	switch {
	case ls.closed:
		return fmt.Errorf("store: live store closed")
	case ls.failed:
		return ErrLiveFailed
	case ls.degraded:
		return fmt.Errorf("%w (%s)", ErrDegraded, ls.degradedReason)
	}
	if len(rows) == 0 {
		return nil
	}
	if len(rows) > MaxAppendRows {
		return fmt.Errorf("store: %d rows exceed the %d-row append cap", len(rows), MaxAppendRows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Batch < rows[i-1].Batch {
			return fmt.Errorf("store: append rows out of batch order (%d after %d)", rows[i].Batch, rows[i-1].Batch)
		}
	}
	if ls.haveRows && rows[0].Batch < ls.curBatch {
		return fmt.Errorf("store: append batch %d regresses below %d", rows[0].Batch, ls.curBatch)
	}
	// With no open builder, the highest batch is inside a sealed segment;
	// continuing it would split the batch across segments.
	if ls.haveRows && ls.open == nil && rows[0].Batch == ls.curBatch {
		return fmt.Errorf("store: append batch %d is already sealed", rows[0].Batch)
	}
	lsn, err := ls.log.Append(encodeRecord(rows))
	if err != nil {
		if isDiskFull(err) {
			// A full disk is survivable: the record was not acked, the WAL
			// self-poisoned at the last acked frame boundary, and
			// RecoverWrites can truncate the torn tail and resume once
			// space returns. Degrade to read-only instead of poisoning.
			ls.enterDegradedLocked(err)
			return fmt.Errorf("%w: wal append: %v", ErrDegraded, err)
		}
		ls.failed = true
		return fmt.Errorf("store: wal append: %w", err)
	}
	ls.applyLocked(lsn, rows)
	ls.ackRows += len(rows)
	if ls.cfg.CheckpointRows > 0 && ls.sealRows-ls.ckptRows >= ls.cfg.CheckpointRows {
		if err := ls.checkpointLocked(); err != nil {
			if isDiskFull(err) {
				// The rows themselves are already WAL-durable and applied —
				// this append succeeded; it is only the checkpoint that
				// could not fit. Acknowledge the rows and degrade, leaving
				// the WAL suffix a little longer until space returns.
				ls.enterDegradedLocked(err)
				return nil
			}
			ls.failed = true
			return fmt.Errorf("store: checkpoint: %w", err)
		}
	}
	return nil
}

// enterDegradedLocked flips the store into the read-only degraded state.
func (ls *LiveStore) enterDegradedLocked(cause error) {
	ls.degraded = true
	ls.degradedReason = cause.Error()
}

// applyLocked folds one validated record into the in-memory state. It is
// the single apply path — live appends and recovery replay both go
// through it — and it cannot fail: everything it depends on was
// validated before the record reached the WAL.
func (ls *LiveStore) applyLocked(lsn wal.LSN, rows []model.Instance) {
	// Seal only at a record boundary, and only once the batch ID advances:
	// a batch never splits across segments, so the decision is a pure
	// function of the record stream and the configured threshold.
	if ls.open != nil && ls.open.Len() >= ls.cfg.SealRows && rows[0].Batch > ls.curBatch {
		ls.sealed = append(ls.sealed, ls.open.Seal())
		ls.sealRows += ls.open.Len()
		ls.open = nil
	}
	if ls.open == nil {
		ls.open = NewLiveBuilder(rows[0].Batch)
		ls.openStart = lsn
	}
	for _, in := range rows {
		if !ls.haveRows || in.Batch != ls.curBatch {
			ls.open.BeginBatch(in.Batch)
			ls.curBatch = in.Batch
		}
		ls.open.Append(in)
		ls.haveRows = true
	}
}

// Checkpoint writes a checkpoint now: a v3 snapshot of the sealed
// segments, the CHECKPOINT meta naming it, and a WAL truncation
// releasing the log prefix the snapshot covers. Each step is atomic
// (temp-file rename) and ordered so that a crash at any point leaves a
// recoverable directory: at worst an orphaned snapshot or an
// un-truncated WAL, never a checkpoint that names missing data.
func (ls *LiveStore) Checkpoint() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	switch {
	case ls.closed:
		return fmt.Errorf("store: live store closed")
	case ls.failed:
		return ErrLiveFailed
	case ls.degraded:
		return fmt.Errorf("%w (%s)", ErrDegraded, ls.degradedReason)
	}
	if err := ls.checkpointLocked(); err != nil {
		if isDiskFull(err) {
			ls.enterDegradedLocked(err)
			return fmt.Errorf("%w: checkpoint: %v", ErrDegraded, err)
		}
		ls.failed = true
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	return nil
}

func (ls *LiveStore) checkpointLocked() error {
	numBatches := 0
	if n := len(ls.sealed); n > 0 {
		numBatches = int(ls.sealed[n-1].batchHi)
	}
	st, err := Assemble(numBatches, ls.sealed)
	if err != nil {
		return err
	}
	lsn := ls.log.End()
	if ls.open != nil {
		lsn = ls.openStart
	}
	seq := ls.ckptSeq + 1

	// Step 1: the snapshot, durable under its final name.
	path := filepath.Join(ls.dir, ckptName(seq))
	if err := ls.writeFileAtomic(path, func(w vfs.File) error {
		_, err := st.WriteSnapshot(w, WriteOptions{})
		return err
	}); err != nil {
		return err
	}
	// Step 2: the meta, flipping recovery over to the new snapshot.
	meta := encodeCkptMeta(ckptMeta{seq: seq, lsn: lsn, rows: uint64(st.Len())})
	if err := ls.writeFileAtomic(filepath.Join(ls.dir, "CHECKPOINT"), func(w vfs.File) error {
		_, err := w.Write(meta)
		return err
	}); err != nil {
		return err
	}
	// Step 3: release what the snapshot covers. Failures past this point
	// leave garbage, not damage; recovery ignores both leftovers.
	if err := ls.log.TruncateBefore(lsn); err != nil {
		return err
	}
	if ls.ckptSeq != 0 {
		if err := ls.fs.Remove(filepath.Join(ls.dir, ckptName(ls.ckptSeq))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	ls.ckptSeq = seq
	ls.ckptRows = ls.sealRows
	return nil
}

// writeFileAtomic writes path via a synced temp file and rename, then
// syncs the directory: the file is either absent (or its old version) or
// complete, never partial. Error paths remove the temp file —
// open-time recovery would clean it up anyway, but a long-running
// server that survives a checkpoint failure (the store is poisoned, not
// restarted) must not leak one temp per retry until the next reopen.
// The removal is best-effort: on a dying filesystem the Remove may fail
// too, and the original error is the one worth reporting.
func (ls *LiveStore) writeFileAtomic(path string, fill func(vfs.File) error) error {
	tmp := path + ".tmp"
	w, err := ls.fs.Create(tmp)
	if err != nil {
		return err
	}
	if err := fill(w); err != nil {
		w.Close()
		ls.fs.Remove(tmp)
		return err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		ls.fs.Remove(tmp)
		return err
	}
	if err := w.Close(); err != nil {
		ls.fs.Remove(tmp)
		return err
	}
	if err := ls.fs.Rename(tmp, path); err != nil {
		ls.fs.Remove(tmp)
		return err
	}
	return ls.fs.SyncDir(ls.dir)
}

// Store assembles the current contents — sealed segments plus a sealed
// copy of the open builder — into an immutable Store for querying. The
// live store remains usable; the returned store does not change as more
// rows arrive. Unlike View, the result owns its column arrays and
// carries full segment encodings; unlike the old implementation, all of
// that O(total rows) work happens off ls.mu — only an O(segments +
// open batches) capture runs under the mutex, so ingest never stalls
// behind an assembly. Prefer View on a query-serving path.
func (ls *LiveStore) Store() (*Store, error) {
	c := ls.captureView()
	segs := c.sealed
	numBatches := 0
	if n := len(segs); n > 0 {
		numBatches = int(segs[n-1].batchHi)
	}
	if c.tail.rows > 0 {
		copyB := NewLiveBuilder(c.tail.batchLo)
		var prev uint32
		for i := 0; i < c.tail.rows; i++ {
			if i == 0 || c.tail.batch[i] != prev {
				prev = c.tail.batch[i]
				copyB.BeginBatch(prev)
			}
			copyB.Append(model.Instance{
				Batch:    c.tail.batch[i],
				TaskType: c.tail.taskType[i],
				Item:     c.tail.item[i],
				Worker:   c.tail.worker[i],
				Start:    c.tail.start[i],
				End:      c.tail.end[i],
				Trust:    c.tail.trust[i],
				Answer:   c.tail.answer[i],
			})
		}
		segs = append(append([]*Segment(nil), segs...), copyB.Seal())
		numBatches = int(segs[len(segs)-1].batchHi)
	}
	return Assemble(numBatches, segs)
}

// Rows returns the number of acknowledged (or recovered) rows.
func (ls *LiveStore) Rows() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.ackRows
}

// NextBatch returns the lowest batch ID a future Append is always
// allowed to open: one past the highest batch ingested so far, or zero
// on an empty store. Ingest drivers use it to resume after recovery
// without tracking batch IDs themselves.
func (ls *LiveStore) NextBatch() uint32 {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if !ls.haveRows {
		return 0
	}
	return ls.curBatch + 1
}

// SealedSegments returns how many immutable segments have been sealed.
func (ls *LiveStore) SealedSegments() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return len(ls.sealed)
}

// Degraded reports whether the store is in the read-only degraded state
// (see ErrDegraded), and why.
func (ls *LiveStore) Degraded() (bool, string) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.degraded, ls.degradedReason
}

// RecoverWrites attempts to leave the degraded state: it probes the disk
// with a small synced write (so a still-full disk fails here, not on a
// caller's append), repairs the WAL writer — truncating any torn tail a
// failed append left past the last acknowledged frame — and re-arms
// writes. On success the store serves appends again with nothing lost;
// on failure the store stays degraded and the probe can simply be
// retried later. A no-op on a healthy store.
func (ls *LiveStore) RecoverWrites() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	switch {
	case ls.closed:
		return fmt.Errorf("store: live store closed")
	case ls.failed:
		return ErrLiveFailed
	case !ls.degraded:
		return nil
	}
	if err := ls.probeDiskLocked(); err != nil {
		return fmt.Errorf("%w (probe: %v)", ErrDegraded, err)
	}
	if err := ls.log.Repair(); err != nil {
		return fmt.Errorf("%w (wal repair: %v)", ErrDegraded, err)
	}
	ls.degraded = false
	ls.degradedReason = ""
	return nil
}

// probeDiskLocked verifies the directory can take a small durable write:
// create, fill, sync, close, remove. The .tmp suffix means a crash
// mid-probe leaves a file open-time recovery already cleans up.
func (ls *LiveStore) probeDiskLocked() error {
	path := filepath.Join(ls.dir, "probe.tmp")
	w, err := ls.fs.Create(path)
	if err != nil {
		return err
	}
	var block [4096]byte
	if _, err := w.Write(block[:]); err != nil {
		w.Close()
		ls.fs.Remove(path)
		return err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		ls.fs.Remove(path)
		return err
	}
	if err := w.Close(); err != nil {
		ls.fs.Remove(path)
		return err
	}
	return ls.fs.Remove(path)
}

// Close syncs and closes the WAL. The open builder's rows stay durable
// in the log and are rebuilt on the next OpenLive; Close does not
// checkpoint (call Checkpoint first to bound reopen replay).
func (ls *LiveStore) Close() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.closed {
		return nil
	}
	ls.closed = true
	return ls.log.Close()
}
