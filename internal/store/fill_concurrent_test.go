package store

import (
	"bytes"
	"sync"
	"testing"
)

// encodedTwin round-trips the store through an encoded snapshot so its
// raw columns start unmaterialized.
func encodedTwin(t testing.TB, s *Store) *Store {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteSnapshot(&buf, WriteOptions{Workers: 1}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	var twin Store
	if _, err := twin.ReadSnapshot(bytes.NewReader(buf.Bytes()), LoadOptions{Workers: 1}); err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	return &twin
}

// TestConcurrentColumnMaterialization exercises the per-column fill
// guards: eight goroutines lazily materialize eight different columns of
// one freshly loaded store at once (plus zone-map and encoding readers),
// and every column must come out exactly as written. Run with -race to
// check the guard structure, not just the values.
func TestConcurrentColumnMaterialization(t *testing.T) {
	src := bigFixtureStore(t, 4, 400)
	for round := 0; round < 8; round++ {
		st := encodedTwin(t, src)
		var wg sync.WaitGroup
		fetch := []func(){
			func() { st.Batches() },
			func() { st.TaskTypes() },
			func() { st.Items() },
			func() { st.Workers() },
			func() { st.Starts() },
			func() { st.Ends() },
			func() { st.Trusts() },
			func() { st.Answers() },
			func() { st.ZoneMaps() },
			func() { st.Encodings() },
		}
		wg.Add(len(fetch))
		for _, f := range fetch {
			go func(f func()) {
				defer wg.Done()
				f()
			}(f)
		}
		wg.Wait()
		for r := 0; r < src.Len(); r++ {
			if src.Row(r) != st.Row(r) {
				t.Fatalf("round %d row %d differs after concurrent fill", round, r)
			}
		}
	}
}

// BenchmarkColumnMaterializeContended measures the satellite case the
// per-column guards exist for: concurrent queries materializing
// different columns of the same freshly loaded store. Before the split a
// single fill mutex serialized all eight decodes.
func BenchmarkColumnMaterializeContended(b *testing.B) {
	src := bigFixtureStore(b, 8, 4000)
	twin := encodedTwin(b, src)
	encs, zones := twin.encs, twin.zones
	fresh := func() *Store {
		return &Store{
			rows: twin.rows, ranges: twin.ranges, segs: twin.segs,
			zones: zones, encs: encs, fill: &fillState{},
		}
	}
	fetch := []func(s *Store){
		func(s *Store) { s.Batches() },
		func(s *Store) { s.TaskTypes() },
		func(s *Store) { s.Items() },
		func(s *Store) { s.Workers() },
		func(s *Store) { s.Starts() },
		func(s *Store) { s.Ends() },
		func(s *Store) { s.Trusts() },
		func(s *Store) { s.Answers() },
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := fresh()
		var wg sync.WaitGroup
		wg.Add(len(fetch))
		for _, f := range fetch {
			go func(f func(*Store)) {
				defer wg.Done()
				f(st)
			}(f)
		}
		wg.Wait()
	}
}
