package store

import (
	"sync"
	"testing"

	"crowdscope/internal/model"
	"crowdscope/internal/wal"
)

// rowsOf materializes every row of a store for equality checks.
func rowsOf(t testing.TB, st *Store) []model.Instance {
	t.Helper()
	out := make([]model.Instance, st.Len())
	for i := range out {
		out[i] = st.Row(i)
	}
	return out
}

func sameRows(a, b []model.Instance) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLiveViewMatchesStore interleaves appends, seals and checkpoints
// with View calls and checks every view against the reference Store
// assembly: same rows, same order, structurally valid, and frozen — a
// view taken earlier never changes as more rows arrive.
func TestLiveViewMatchesStore(t *testing.T) {
	ls, err := OpenLive(t.TempDir(), liveTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()

	if v := ls.View(); v.Len() != 0 {
		t.Fatalf("empty store view has %d rows", v.Len())
	}

	recs := genStream(7, 120)
	type taken struct {
		view *Store
		rows []model.Instance
	}
	var snaps []taken
	for i, rec := range recs {
		if err := ls.Append(rec); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			v := ls.View()
			if err := v.Validate(); err != nil {
				t.Fatalf("after record %d: view invalid: %v", i, err)
			}
			ref, err := ls.Store()
			if err != nil {
				t.Fatal(err)
			}
			want := rowsOf(t, ref)
			got := rowsOf(t, v)
			if !sameRows(got, want) {
				t.Fatalf("after record %d: view rows diverge from Store() (%d vs %d rows)", i, len(got), len(want))
			}
			snaps = append(snaps, taken{view: v, rows: want})
		}
	}
	// Every earlier view must still read exactly what it read when taken.
	for k, s := range snaps {
		if got := rowsOf(t, s.view); !sameRows(got, s.rows) {
			t.Fatalf("snapshot %d changed after later appends", k)
		}
		if err := s.view.Validate(); err != nil {
			t.Fatalf("snapshot %d invalid after later appends: %v", k, err)
		}
	}
}

// TestLiveViewIncrementalCost pins the bug the MVCC arena fixes: taking
// a view must cost O(rows appended since the last view), not O(total
// rows) — the old Store()-per-query path copied the whole open builder
// and re-assembled every sealed segment under ls.mu on every call.
// CopiedRows counts the arena's actual copy work, so the assertion is
// deterministic where a latency measurement would flake.
func TestLiveViewIncrementalCost(t *testing.T) {
	cfg := LiveConfig{SealRows: 200, CheckpointRows: -1, Sync: wal.SyncNone}
	ls, err := OpenLive(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()

	// Build a large sealed prefix.
	row := func(batch uint32, i int) model.Instance {
		return model.Instance{Batch: batch, TaskType: uint32(i % 5), Item: uint32(i), Worker: uint32(i % 50),
			Start: 1_700_000_000 + int64(i), End: 1_700_000_000 + int64(i) + 60, Trust: 0.5, Answer: uint32(i % 3)}
	}
	batch := uint32(0)
	appendBatch := func(n int) {
		rows := make([]model.Instance, n)
		for i := range rows {
			rows[i] = row(batch, i)
		}
		if err := ls.Append(rows); err != nil {
			t.Fatal(err)
		}
		batch++
	}
	for b := 0; b < 40; b++ {
		appendBatch(250) // > SealRows, so every batch seals the previous one
	}
	total := ls.Rows()
	v0 := ls.View()
	base := ls.ViewStats()
	if base.CopiedRows != int64(total) {
		t.Fatalf("first view copied %d rows, store holds %d", base.CopiedRows, total)
	}

	// Steady state: each small append + view must copy exactly the delta
	// and keep the plan-cache generation while no seal intervenes. The
	// appends extend the open batch (a higher batch ID would seal it).
	for k := 0; k < 20; k++ {
		rows := []model.Instance{row(batch-1, k)}
		if err := ls.Append(rows); err != nil {
			t.Fatal(err)
		}
		v := ls.View()
		st := ls.ViewStats()
		wantCopied := base.CopiedRows + int64(k) + 1
		if st.CopiedRows != wantCopied {
			t.Fatalf("view %d: copied %d rows total, want %d — view cost is not O(delta)", k, st.CopiedRows, wantCopied)
		}
		if st.Rebuilds != base.Rebuilds {
			t.Fatalf("view %d: arena rebuilt (%d -> %d) during tail-only growth", k, base.Rebuilds, st.Rebuilds)
		}
		if v.Generation() != v0.Generation() {
			t.Fatalf("view %d: generation changed %d -> %d during tail-only growth", k, v0.Generation(), v.Generation())
		}
	}

	// Repeated views with no new data are free and identical.
	va, vb := ls.View(), ls.View()
	if va != vb {
		t.Fatal("unchanged store returned distinct view objects")
	}

	// A seal promotes the mirrored tail: only the unmirrored suffix
	// copies, and the generation advances.
	st1 := ls.ViewStats()
	appendBatch(250) // fills the open builder past SealRows
	appendBatch(1)   // next batch triggers the seal
	v2 := ls.View()
	st2 := ls.ViewStats()
	if v2.Generation() == v0.Generation() {
		t.Fatal("generation did not advance across a seal")
	}
	copied := st2.CopiedRows - st1.CopiedRows
	if copied != 251 {
		t.Fatalf("seal promotion copied %d rows, want 251 (the suffix + new tail only)", copied)
	}
	if st2.Rebuilds != st1.Rebuilds {
		t.Fatalf("seal forced a full rebuild (%d -> %d)", st1.Rebuilds, st2.Rebuilds)
	}
}

// TestLiveViewConcurrent hammers View from readers while a writer
// appends, under -race: every view must be a frozen, valid prefix of
// the append stream.
func TestLiveViewConcurrent(t *testing.T) {
	ls, err := OpenLive(t.TempDir(), liveTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	recs := genStream(11, 300)
	all := streamRows(recs)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, rec := range recs {
			if err := ls.Append(rec); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				v := ls.View()
				n := v.Len()
				if n > len(all) {
					t.Errorf("view has %d rows, stream only %d", n, len(all))
					return
				}
				// Spot-check the snapshot against the stream prefix; record
				// atomicity means every visible prefix is a record boundary,
				// and row order is append order.
				for _, i := range []int{0, n / 2, n - 1} {
					if i < 0 || i >= n {
						continue
					}
					if got := v.Row(i); got != all[i] {
						t.Errorf("view row %d = %+v, want %+v", i, got, all[i])
						return
					}
				}
			}
		}()
	}
	<-done
	wg.Wait()
	if t.Failed() {
		return
	}
	v := ls.View()
	if got := rowsOf(t, v); !sameRows(got, all) {
		t.Fatalf("final view has %d rows, want %d", len(got), len(all))
	}
}

// TestCompactMergesSegments checks row equivalence, zone/encoding
// recomputation, view rebuild + fresh generation, and checkpoint
// round-tripping of the merged layout.
func TestCompactMergesSegments(t *testing.T) {
	dir := t.TempDir()
	cfg := LiveConfig{SealRows: 50, CheckpointRows: -1, Sync: wal.SyncNone}
	ls, err := OpenLive(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := genStream(23, 200)
	for _, rec := range recs {
		if err := ls.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	before, err := ls.Store()
	if err != nil {
		t.Fatal(err)
	}
	wantRows := rowsOf(t, before)
	segsBefore := ls.SealedSegments()
	if segsBefore < 4 {
		t.Fatalf("test needs several sealed segments, got %d", segsBefore)
	}
	vPre := ls.View()

	merged := ls.Compact(100000)
	if merged == 0 {
		t.Fatal("Compact merged nothing")
	}
	if got := ls.SealedSegments(); got != segsBefore-merged {
		t.Fatalf("%d segments after compacting %d away from %d", got, merged, segsBefore)
	}

	after, err := ls.Store()
	if err != nil {
		t.Fatal(err)
	}
	if err := after.Validate(); err != nil {
		t.Fatalf("compacted store invalid: %v", err)
	}
	if got := rowsOf(t, after); !sameRows(got, wantRows) {
		t.Fatal("compaction changed row content or order")
	}

	// Views: the pre-compaction view is untouched; the next view rebuilds
	// onto the merged layout with a fresh generation.
	if got := rowsOf(t, vPre); !sameRows(got, wantRows) {
		t.Fatal("outstanding view changed under compaction")
	}
	rebuildsBefore := ls.ViewStats().Rebuilds
	vPost := ls.View()
	if err := vPost.Validate(); err != nil {
		t.Fatalf("post-compaction view invalid: %v", err)
	}
	if got := rowsOf(t, vPost); !sameRows(got, wantRows) {
		t.Fatal("post-compaction view rows diverge")
	}
	if vPost.Generation() == vPre.Generation() {
		t.Fatal("compaction did not advance the view generation")
	}
	if ls.ViewStats().Rebuilds != rebuildsBefore+1 {
		t.Fatal("compaction did not rebuild the view arena")
	}
	if vPost.NumSegments() >= vPre.NumSegments() {
		t.Fatalf("post-compaction view has %d segments, pre had %d", vPost.NumSegments(), vPre.NumSegments())
	}

	// The merged layout checkpoints and recovers cleanly.
	if err := ls.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	ls2, err := OpenLive(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ls2.Close()
	rec, err := ls2.Store()
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsOf(t, rec); !sameRows(got, wantRows) {
		t.Fatal("recovered store after compaction+checkpoint diverges")
	}
}

// TestCompactIdempotentAndBounded: a second Compact with the same bound
// finds nothing; an unmergeable bound is a no-op.
func TestCompactIdempotentAndBounded(t *testing.T) {
	ls, err := OpenLive(t.TempDir(), LiveConfig{SealRows: 50, CheckpointRows: -1, Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	for _, rec := range genStream(31, 150) {
		if err := ls.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if n := ls.Compact(1); n != 0 {
		t.Fatalf("Compact(1) merged %d segments", n)
	}
	if n := ls.Compact(0); n != 0 {
		t.Fatalf("Compact(0) merged %d segments", n)
	}
	first := ls.Compact(100000)
	if first == 0 {
		t.Fatal("first Compact merged nothing")
	}
	if again := ls.Compact(100000); again != 0 {
		t.Fatalf("second Compact merged %d more segments", again)
	}
}

func BenchmarkLiveView(b *testing.B) {
	ls, err := OpenLive(b.TempDir(), LiveConfig{SealRows: 1 << 14, CheckpointRows: -1, Sync: wal.SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	defer ls.Close()
	rows := make([]model.Instance, 64)
	batch := uint32(0)
	fill := func() {
		for i := range rows {
			rows[i] = model.Instance{Batch: batch, TaskType: uint32(i % 5), Item: uint32(i), Worker: uint32(i % 50),
				Start: 1_700_000_000 + int64(i), End: 1_700_000_000 + int64(i) + 60, Trust: 0.5, Answer: uint32(i % 3)}
		}
		batch++
	}
	for k := 0; k < 1000; k++ {
		fill()
		if err := ls.Append(rows); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate append and view: the refresh path with a small delta,
		// the shape a serving daemon sees.
		fill()
		if err := ls.Append(rows); err != nil {
			b.Fatal(err)
		}
		if v := ls.View(); v.Len() == 0 {
			b.Fatal("empty view")
		}
	}
}
