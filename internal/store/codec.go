package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Snapshot format: a small header, then each column length-prefixed.
// Integer columns are varint-encoded with delta coding where values are
// near-sorted (start/end times ascend with batch order), which compresses
// the dominant columns several-fold versus fixed-width.
//
// Version 2 appends the segment table (count, then per segment the row
// span and batch interval as uvarints) after the batch ranges, so a
// reloaded store keeps the shard layout its parallel scans align to.
// Version 1 snapshots (no table) still load, as a single implicit segment.
const (
	snapshotMagic      = 0x43524F57 // "CROW"
	snapshotVersion    = 2
	snapshotVersionPre = 1 // pre-segment format, still readable
)

// WriteTo serializes the store. It implements io.WriterTo.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<20)}

	writeU32 := func(v uint32) { binary.Write(cw, binary.LittleEndian, v) }
	writeU32(snapshotMagic)
	writeU32(snapshotVersion)
	writeU32(uint32(len(s.start)))
	writeU32(uint32(len(s.ranges)))

	putUvarints(cw, s.batch)
	putUvarints(cw, s.taskType)
	putUvarints(cw, s.item)
	putUvarints(cw, s.worker)
	putDeltaVarints(cw, s.start)
	// End times stored as offsets from start: always small.
	offs := make([]uint32, len(s.end))
	for i := range s.end {
		offs[i] = uint32(s.end[i] - s.start[i])
	}
	putUvarints(cw, offs)
	putFloats(cw, s.trust)
	putUvarints(cw, s.answer)
	for _, rr := range s.ranges {
		putUvarint(cw, uint64(rr.Lo))
		putUvarint(cw, uint64(rr.Hi))
	}
	putUvarint(cw, uint64(len(s.segs)))
	for _, si := range s.segs {
		putUvarint(cw, uint64(si.RowLo))
		putUvarint(cw, uint64(si.RowHi))
		putUvarint(cw, uint64(si.BatchLo))
		putUvarint(cw, uint64(si.BatchHi))
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, cw.err
}

// ReadFrom deserializes a snapshot into the (empty) store. It implements
// io.ReaderFrom.
func (s *Store) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReader{r: bufio.NewReaderSize(r, 1<<20)}
	var magic, version, n, nb uint32
	for _, p := range []*uint32{&magic, &version, &n, &nb} {
		if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
			return cr.n, err
		}
	}
	if magic != snapshotMagic {
		return cr.n, errors.New("store: bad snapshot magic")
	}
	if version != snapshotVersion && version != snapshotVersionPre {
		return cr.n, fmt.Errorf("store: unsupported snapshot version %d", version)
	}
	var err error
	if s.batch, err = getUvarints(cr, int(n)); err != nil {
		return cr.n, err
	}
	if s.taskType, err = getUvarints(cr, int(n)); err != nil {
		return cr.n, err
	}
	if s.item, err = getUvarints(cr, int(n)); err != nil {
		return cr.n, err
	}
	if s.worker, err = getUvarints(cr, int(n)); err != nil {
		return cr.n, err
	}
	if s.start, err = getDeltaVarints(cr, int(n)); err != nil {
		return cr.n, err
	}
	offs, err := getUvarints(cr, int(n))
	if err != nil {
		return cr.n, err
	}
	s.end = make([]int64, n)
	for i := range offs {
		s.end[i] = s.start[i] + int64(offs[i])
	}
	if s.trust, err = getFloats(cr, int(n)); err != nil {
		return cr.n, err
	}
	if s.answer, err = getUvarints(cr, int(n)); err != nil {
		return cr.n, err
	}
	s.ranges = make([]rowRange, nb)
	for i := range s.ranges {
		lo, err := getUvarint(cr)
		if err != nil {
			return cr.n, err
		}
		hi, err := getUvarint(cr)
		if err != nil {
			return cr.n, err
		}
		s.ranges[i] = rowRange{Lo: int32(lo), Hi: int32(hi)}
	}
	s.segs = nil
	if version >= snapshotVersion {
		ns, err := getUvarint(cr)
		if err != nil {
			return cr.n, err
		}
		// Segments cover disjoint batch intervals, so their count is
		// bounded by the batch count (empty segments are legal; rows are
		// not a valid bound).
		if ns > uint64(nb)+1 {
			return cr.n, fmt.Errorf("store: snapshot claims %d segments for %d batches", ns, nb)
		}
		if ns > 0 {
			s.segs = make([]SegmentInfo, ns)
			for i := range s.segs {
				var v [4]uint64
				for j := range v {
					if v[j], err = getUvarint(cr); err != nil {
						return cr.n, err
					}
				}
				s.segs[i] = SegmentInfo{
					RowLo: int(v[0]), RowHi: int(v[1]),
					BatchLo: uint32(v[2]), BatchHi: uint32(v[3]),
				}
			}
		}
	}
	s.workerIndex = nil
	return cr.n, nil
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(c, b[:])
	return b[0], err
}

func putUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func getUvarint(r io.ByteReader) (uint64, error) {
	return binary.ReadUvarint(r)
}

func putUvarints(w io.Writer, vs []uint32) {
	for _, v := range vs {
		putUvarint(w, uint64(v))
	}
}

func getUvarints(r io.ByteReader, n int) ([]uint32, error) {
	out := make([]uint32, n)
	for i := range out {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if v > math.MaxUint32 {
			return nil, errors.New("store: varint exceeds uint32")
		}
		out[i] = uint32(v)
	}
	return out, nil
}

// putDeltaVarints zig-zag encodes successive differences; near-sorted
// columns become streams of tiny varints.
func putDeltaVarints(w io.Writer, vs []int64) {
	prev := int64(0)
	for _, v := range vs {
		d := v - prev
		putUvarint(w, zigzag(d))
		prev = v
	}
}

func getDeltaVarints(r io.ByteReader, n int) ([]int64, error) {
	out := make([]int64, n)
	prev := int64(0)
	for i := range out {
		u, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		prev += unzigzag(u)
		out[i] = prev
	}
	return out, nil
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func putFloats(w io.Writer, vs []float32) {
	buf := make([]byte, 4*1024)
	for off := 0; off < len(vs); {
		chunk := len(vs) - off
		if chunk > 1024 {
			chunk = 1024
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(vs[off+i]))
		}
		w.Write(buf[:chunk*4])
		off += chunk
	}
}

func getFloats(r io.Reader, n int) ([]float32, error) {
	out := make([]float32, n)
	buf := make([]byte, 4*1024)
	for off := 0; off < n; {
		chunk := n - off
		if chunk > 1024 {
			chunk = 1024
		}
		if _, err := io.ReadFull(r, buf[:chunk*4]); err != nil {
			return nil, err
		}
		for i := 0; i < chunk; i++ {
			out[off+i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		off += chunk
	}
	return out, nil
}
