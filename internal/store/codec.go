package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Snapshot format, version 3: a fixed header (magic, version) followed by
// a sequence of framed sections. Every section carries a one-byte kind, a
// little-endian uint32 payload length, and a CRC32 (IEEE) of the payload,
// so a truncated or bit-flipped file is caught at the damaged section —
// with its name — instead of decoding into garbage.
//
// Section order: meta, optional provenance, segment table, batch ranges,
// then one column block per row span. Column blocks tile [0, rows) in
// order; each block is self-contained (delta coding restarts at the block
// boundary), which is what lets blocks be encoded and decoded in parallel
// with bounded scratch memory. Integer columns are varint-encoded with
// delta coding where values are near-sorted (start times ascend with
// batch order), which compresses the dominant columns several-fold versus
// fixed-width.
//
// Versions 1 (no segment table) and 2 (monolithic, unchecksummed) remain
// readable through the legacy decoder in codec_legacy.go.
const (
	snapshotMagic     = 0x43524F57 // "CROW"
	snapshotVersion   = 3
	snapshotVersionV2 = 2 // segment table, no sections/checksums
	snapshotVersionV1 = 1 // pre-segment format
)

// Sentinel errors for snapshot decoding. Codec errors wrap one of these
// plus the name of the section that failed, so callers can distinguish a
// truncated file from a corrupt column with errors.Is.
var (
	ErrBadMagic   = errors.New("bad magic")
	ErrBadVersion = errors.New("unsupported version")
	ErrTruncated  = errors.New("truncated")
	ErrChecksum   = errors.New("checksum mismatch")
	ErrCorrupt    = errors.New("corrupt data")
)

// sectionErr wraps a sentinel (or an already-wrapped error) with the
// snapshot section it occurred in.
func sectionErr(section string, err error) error {
	return fmt.Errorf("snapshot: %s: %w", section, err)
}

// asTruncated maps the raw EOF errors io readers return to the ErrTruncated
// sentinel, keeping the underlying error text.
func asTruncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return err
}

// Provenance records where a snapshot came from: the hash of the generator
// configuration that produced the rows, its seed, and the writing tool.
// It is stored in its own checksummed section so a reloaded store can be
// matched against the config a pipeline is about to analyze it under.
type Provenance struct {
	ConfigHash uint64
	Seed       uint64
	Tool       string
}

// WriteOptions tune WriteSnapshot.
type WriteOptions struct {
	// Provenance, when non-nil, is embedded in the snapshot.
	Provenance *Provenance
	// Workers bounds the goroutine fan-out of block encoding; zero or
	// negative means GOMAXPROCS. The output bytes are identical for every
	// value — block boundaries are fixed by the data, not the workers.
	Workers int
	// Uncompressed writes the pre-compression v3 layout (varint column
	// blocks) instead of the encoded column blocks a segmented store
	// defaults to. Mainly useful for fixtures and size comparisons; the
	// resulting snapshot loads everywhere a compressed one does.
	Uncompressed bool
}

// LoadMode selects how ReadSnapshot treats a damaged snapshot.
type LoadMode int

const (
	// LoadStrict fails on the first damaged section and leaves the store
	// untouched: a strict load never yields a half-populated store.
	LoadStrict LoadMode = iota
	// LoadRepair recovers what it can: a damaged or missing column block
	// is zero-filled (batch IDs rebuilt from the range table so the store
	// still validates) and recorded in the LoadReport. The structural
	// sections (meta, segment table, batch ranges) are required in both
	// modes, and a truncated tail is zero-filled only up to
	// repairMaxFillRows — missing rows are claimed, not input-backed, so
	// the fill is capped rather than trusting a possibly forged count.
	LoadRepair
)

// LoadOptions tune ReadSnapshot.
type LoadOptions struct {
	Mode LoadMode
	// Workers bounds the goroutine fan-out of block decoding; zero or
	// negative means GOMAXPROCS. The loaded store is identical for every
	// value.
	Workers int
}

// LoadReport describes what ReadSnapshot found.
type LoadReport struct {
	// Version is the snapshot format version (1, 2 or 3).
	Version uint32
	// Bytes is the number of input bytes consumed.
	Bytes int64
	// Rows is the number of instance rows loaded.
	Rows int
	// Provenance is the embedded provenance section, nil when absent
	// (always nil for v1/v2 snapshots).
	Provenance *Provenance
	// Damaged lists the sections repair mode zero-filled; empty after a
	// clean load, and always empty in strict mode (strict fails instead).
	Damaged []string
}

// WriteTo serializes the store in the current snapshot format with default
// options. It implements io.WriterTo.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	return s.WriteSnapshot(w, WriteOptions{})
}

// ReadFrom deserializes a snapshot into the (empty) store, strictly. It
// implements io.ReaderFrom.
func (s *Store) ReadFrom(r io.Reader) (int64, error) {
	rep, err := s.ReadSnapshot(r, LoadOptions{})
	return rep.Bytes, err
}

// ReadSnapshot deserializes a snapshot of any supported version into the
// (empty) store. On error in strict mode the store is left untouched.
func (s *Store) ReadSnapshot(r io.Reader, opts LoadOptions) (*LoadReport, error) {
	cr := &countingReader{r: bufio.NewReaderSize(r, 1<<20)}
	rep := &LoadReport{}
	loaded, err := readSnapshot(cr, opts, rep)
	rep.Bytes = cr.n
	if err != nil {
		return rep, err
	}
	rep.Rows = loaded.Len()
	*s = *loaded
	return rep, nil
}

// readSnapshot decodes the header, dispatches on version, and returns the
// fully decoded store; the caller installs it only on success.
func readSnapshot(cr *countingReader, opts LoadOptions, rep *LoadReport) (*Store, error) {
	var magic, version uint32
	for _, p := range []*uint32{&magic, &version} {
		if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
			return nil, sectionErr("header", asTruncated(err))
		}
	}
	if magic != snapshotMagic {
		return nil, sectionErr("header", ErrBadMagic)
	}
	rep.Version = version
	switch version {
	case snapshotVersionV1, snapshotVersionV2:
		return readLegacy(cr, version)
	case snapshotVersion:
		return readV3(cr, opts, rep)
	default:
		return nil, sectionErr("header", fmt.Errorf("%w %d", ErrBadVersion, version))
	}
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) ReadByte() (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(c, b[:])
	return b[0], err
}

// sliceReader decodes from an in-memory section payload; it implements
// io.Reader and io.ByteReader over the remaining bytes.
type sliceReader struct {
	buf []byte
	pos int
}

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.pos >= len(s.buf) {
		return 0, io.EOF
	}
	n := copy(p, s.buf[s.pos:])
	s.pos += n
	return n, nil
}

func (s *sliceReader) ReadByte() (byte, error) {
	if s.pos >= len(s.buf) {
		return 0, io.EOF
	}
	b := s.buf[s.pos]
	s.pos++
	return b, nil
}

func (s *sliceReader) remaining() int { return len(s.buf) - s.pos }

// putUvarint appends one varint to the section buffer. Taking the
// concrete *bytes.Buffer (not io.Writer) keeps the encode loop
// allocation-free: nothing escapes through an interface call.
func putUvarint(b *bytes.Buffer, v uint64) {
	for v >= 0x80 {
		b.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	b.WriteByte(byte(v))
}

func getUvarint(r io.ByteReader) (uint64, error) {
	return binary.ReadUvarint(r)
}

func putUvarints(b *bytes.Buffer, vs []uint32) {
	for _, v := range vs {
		putUvarint(b, uint64(v))
	}
}

// getUvarintsInto decodes len(dst) uvarints into dst.
func getUvarintsInto(r io.ByteReader, dst []uint32) error {
	for i := range dst {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return asTruncated(err)
		}
		if v > math.MaxUint32 {
			return fmt.Errorf("%w: varint exceeds uint32", ErrCorrupt)
		}
		dst[i] = uint32(v)
	}
	return nil
}

// getUvarints decodes n uvarints. The slice grows as input is consumed —
// each element costs at least one input byte — so a forged count cannot
// allocate more than a small multiple of the bytes actually present.
func getUvarints(r io.ByteReader, n int) ([]uint32, error) {
	out := make([]uint32, 0, min(n, allocChunk))
	for i := 0; i < n; i++ {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, asTruncated(err)
		}
		if v > math.MaxUint32 {
			return nil, fmt.Errorf("%w: varint exceeds uint32", ErrCorrupt)
		}
		out = append(out, uint32(v))
	}
	return out, nil
}

// allocChunk caps how far any decode allocates ahead of the input it has
// actually consumed, bounding memory on forged counts.
const allocChunk = 1 << 16

// putDeltaVarints zig-zag encodes successive differences; near-sorted
// columns become streams of tiny varints. Decoding restarts from zero, so
// independently encoded blocks stay independently decodable.
func putDeltaVarints(b *bytes.Buffer, vs []int64) {
	prev := int64(0)
	for _, v := range vs {
		d := v - prev
		putUvarint(b, zigzag(d))
		prev = v
	}
}

// getDeltaVarintsInto decodes len(dst) delta-coded values into dst.
func getDeltaVarintsInto(r io.ByteReader, dst []int64) error {
	prev := int64(0)
	for i := range dst {
		u, err := binary.ReadUvarint(r)
		if err != nil {
			return asTruncated(err)
		}
		prev += unzigzag(u)
		dst[i] = prev
	}
	return nil
}

// getDeltaVarints decodes n delta-coded values with input-bounded growth
// (see getUvarints).
func getDeltaVarints(r io.ByteReader, n int) ([]int64, error) {
	out := make([]int64, 0, min(n, allocChunk))
	prev := int64(0)
	for i := 0; i < n; i++ {
		u, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, asTruncated(err)
		}
		prev += unzigzag(u)
		out = append(out, prev)
	}
	return out, nil
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func putFloats(b *bytes.Buffer, vs []float32) {
	var scratch [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(v))
		b.Write(scratch[:])
	}
}

// getFloatsInto decodes len(dst) fixed-width floats into dst.
func getFloatsInto(r io.Reader, dst []float32) error {
	buf := make([]byte, 4*1024)
	for off := 0; off < len(dst); {
		chunk := len(dst) - off
		if chunk > 1024 {
			chunk = 1024
		}
		if _, err := io.ReadFull(r, buf[:chunk*4]); err != nil {
			return asTruncated(err)
		}
		for i := 0; i < chunk; i++ {
			dst[off+i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		off += chunk
	}
	return nil
}

// getFloats decodes n fixed-width floats with input-bounded growth.
func getFloats(r io.Reader, n int) ([]float32, error) {
	out := make([]float32, 0, min(n, allocChunk))
	buf := make([]byte, 4*1024)
	for len(out) < n {
		chunk := n - len(out)
		if chunk > 1024 {
			chunk = 1024
		}
		if _, err := io.ReadFull(r, buf[:chunk*4]); err != nil {
			return nil, asTruncated(err)
		}
		for i := 0; i < chunk; i++ {
			out = append(out, math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:])))
		}
	}
	return out, nil
}
