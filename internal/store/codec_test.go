package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"

	"crowdscope/internal/model"
)

// manySegmentStore assembles a store whose segment count exceeds its
// batch count via legal empty batch intervals — the shape the old
// `ns > numBatches+1` sanity bound wrongly rejected.
func manySegmentStore(t testing.TB) *Store {
	t.Helper()
	one := NewBuilder(0, 1)
	one.BeginBatch(0)
	one.Append(model.Instance{Batch: 0, Start: 100, End: 160, Trust: 0.5, Answer: 9})
	one.Append(model.Instance{Batch: 0, Worker: 3, Start: 130, End: 150, Trust: 0.25, Answer: 7})
	s, err := Assemble(1, []*Segment{
		NewBuilder(0, 0).Seal(),
		one.Seal(),
		NewBuilder(1, 1).Seal(),
		NewBuilder(1, 1).Seal(),
		NewBuilder(1, 1).Seal(),
	})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("store invalid: %v", err)
	}
	return s
}

// TestSnapshotMoreSegmentsThanBatches is the ROADMAP regression: a
// Validate()-clean store with more segments than batches must round-trip
// column-for-column through WriteTo/ReadFrom.
func TestSnapshotMoreSegmentsThanBatches(t *testing.T) {
	s := manySegmentStore(t)
	if s.NumSegments() <= s.NumBatches()+1 {
		t.Fatalf("fixture too tame: %d segments for %d batches", s.NumSegments(), s.NumBatches())
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	var back Store
	if _, err := back.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	compareStores(t, s, &back, true)
	if err := back.Validate(); err != nil {
		t.Fatalf("restored store invalid: %v", err)
	}
	// Byte-exact second trip: encode the loaded store again.
	var again bytes.Buffer
	if _, err := back.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("second round trip not byte-identical")
	}
}

// TestSnapshotV2MoreSegmentsThanBatches: the same store serialized in the
// old v2 layout — exactly what an affected deployment has on disk — now
// loads instead of failing the bogus segment-count bound.
func TestSnapshotV2MoreSegmentsThanBatches(t *testing.T) {
	s := manySegmentStore(t)
	raw := writeSnapshotLegacy(s, snapshotVersionV2)
	var back Store
	rep, err := back.ReadSnapshot(bytes.NewReader(raw), LoadOptions{})
	if err != nil {
		t.Fatalf("v2 snapshot with %d segments / %d batches rejected: %v", s.NumSegments(), s.NumBatches(), err)
	}
	if rep.Version != snapshotVersionV2 {
		t.Errorf("version = %d", rep.Version)
	}
	compareStores(t, s, &back, true)
	if err := back.Validate(); err != nil {
		t.Fatalf("restored store invalid: %v", err)
	}
}

// rawSection locates one framed section inside serialized v3 bytes.
type rawSection struct {
	kind       byte
	start      int // offset of the 9-byte section header
	payloadOff int
	payloadLen int
}

func parseSections(t *testing.T, raw []byte) []rawSection {
	t.Helper()
	var out []rawSection
	pos := 8
	for pos < len(raw) {
		if len(raw)-pos == footerTrailerLen &&
			binary.LittleEndian.Uint32(raw[len(raw)-4:]) == footerMagic {
			break // footer trailer, not a section
		}
		if pos+9 > len(raw) {
			t.Fatalf("dangling section header at %d", pos)
		}
		length := int(binary.LittleEndian.Uint32(raw[pos+1 : pos+5]))
		out = append(out, rawSection{kind: raw[pos], start: pos, payloadOff: pos + 9, payloadLen: length})
		pos += 9 + length
	}
	return out
}

func findSection(t *testing.T, secs []rawSection, kind byte, nth int) rawSection {
	t.Helper()
	for _, s := range secs {
		if s.kind == kind {
			if nth == 0 {
				return s
			}
			nth--
		}
	}
	t.Fatalf("section kind 0x%02x #%d not found", kind, nth)
	return rawSection{}
}

// refreshCRC recomputes a section's checksum after its payload was
// deliberately mutated, so the corruption reaches the decoder.
func refreshCRC(raw []byte, sec rawSection) {
	crc := crc32.ChecksumIEEE(raw[sec.payloadOff : sec.payloadOff+sec.payloadLen])
	binary.LittleEndian.PutUint32(raw[sec.start+5:sec.start+9], crc)
}

func snapshotV3(t testing.TB, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteSnapshot(&buf, WriteOptions{Provenance: fixtureProvenance(), Workers: 1}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

// TestSnapshotErrorSentinels: every failure class is distinguishable with
// errors.Is and names the section it occurred in.
func TestSnapshotErrorSentinels(t *testing.T) {
	s := fixtureStore(t)
	raw := snapshotV3(t, s)
	secs := parseSections(t, raw)

	load := func(data []byte) error {
		var back Store
		_, err := back.ReadFrom(bytes.NewReader(data))
		return err
	}

	t.Run("magic", func(t *testing.T) {
		err := load([]byte("XXXXXXXXXXXXXXXX"))
		if !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint32(bad[4:8], 99)
		err := load(bad)
		if !errors.Is(err, ErrBadVersion) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		err := load(raw[:len(raw)-10])
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v", err)
		}
		// An encoded snapshot now ends with the footer trailer, so a
		// 10-byte cut lands there.
		if !strings.Contains(err.Error(), "footer") {
			t.Errorf("error does not name the section: %v", err)
		}
		if err := load(nil); !errors.Is(err, ErrTruncated) {
			t.Errorf("empty input: %v", err)
		}
	})
	t.Run("checksum", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		seg := findSection(t, secs, secSegments, 0)
		bad[seg.payloadOff] ^= 0xFF
		err := load(bad)
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v", err)
		}
		if !strings.Contains(err.Error(), "segment table") {
			t.Errorf("error does not name the section: %v", err)
		}
		if errors.Is(err, ErrTruncated) || errors.Is(err, ErrCorrupt) {
			t.Errorf("checksum error matches the wrong sentinel: %v", err)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		// Inflate the row count in meta (CRC refreshed): the segment
		// table no longer covers all rows.
		bad := append([]byte(nil), raw...)
		meta := findSection(t, secs, secMeta, 0)
		if bad[meta.payloadOff] != byte(s.Len()) {
			t.Fatalf("fixture row count no longer a one-byte varint")
		}
		bad[meta.payloadOff]++
		refreshCRC(bad, meta)
		err := load(bad)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestSnapshotProvenanceRoundTrip(t *testing.T) {
	s := fixtureStore(t)
	var buf bytes.Buffer
	prov := &Provenance{ConfigHash: 42, Seed: 7, Tool: "unit-test/1"}
	if _, err := s.WriteSnapshot(&buf, WriteOptions{Provenance: prov}); err != nil {
		t.Fatal(err)
	}
	var back Store
	rep, err := back.ReadSnapshot(bytes.NewReader(buf.Bytes()), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Provenance == nil || *rep.Provenance != *prov {
		t.Errorf("provenance = %+v, want %+v", rep.Provenance, prov)
	}
	if rep.Rows != s.Len() {
		t.Errorf("report rows = %d, want %d", rep.Rows, s.Len())
	}

	// WriteTo embeds none, and the loader reports none.
	buf.Reset()
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var back2 Store
	rep, err = back2.ReadSnapshot(bytes.NewReader(buf.Bytes()), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Provenance != nil {
		t.Errorf("unexpected provenance %+v", rep.Provenance)
	}
}

// TestSnapshotRepairChecksumDamage: a bit-flipped column block fails
// strict load with a precise error, while repair mode recovers every
// undamaged row, zero-fills the damaged span, rebuilds its batch column
// from the range table, and reports exactly what it lost.
func TestSnapshotRepairChecksumDamage(t *testing.T) {
	s := fixtureStore(t)
	raw := snapshotV3(t, s)
	secs := parseSections(t, raw)
	// The fixture spans two encoded column blocks, one per non-empty
	// segment (rows 7 + 0 + 7).
	block1 := findSection(t, secs, secEncBlock, 1)
	bad := append([]byte(nil), raw...)
	bad[block1.payloadOff+5] ^= 0x10 // inside the columns, past the row header

	var strict Store
	_, err := strict.ReadFrom(bytes.NewReader(bad))
	if !errors.Is(err, ErrChecksum) || !strings.Contains(err.Error(), "column block 1") {
		t.Fatalf("strict err = %v", err)
	}
	if strict.Len() != 0 || strict.NumBatches() != 0 {
		t.Fatal("strict load populated the store despite failing")
	}

	var rep Store
	report, err := rep.ReadSnapshot(bytes.NewReader(bad), LoadOptions{Mode: LoadRepair})
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if len(report.Damaged) != 1 || report.Damaged[0] != "column block 1" {
		t.Fatalf("damaged = %v", report.Damaged)
	}
	if rep.Len() != s.Len() || rep.NumSegments() != s.NumSegments() {
		t.Fatalf("repair shape: %d rows, %d segments", rep.Len(), rep.NumSegments())
	}
	// Rows of block 0 survive; rows of block 1 are zeroed except the
	// rebuilt batch IDs.
	for i := 0; i < 7; i++ {
		if rep.Row(i) != s.Row(i) {
			t.Errorf("undamaged row %d differs: %+v", i, rep.Row(i))
		}
	}
	for i := 7; i < s.Len(); i++ {
		got := rep.Row(i)
		if got.Batch != s.Row(i).Batch {
			t.Errorf("row %d batch = %d, want %d", i, got.Batch, s.Row(i).Batch)
		}
		if got.Start != 0 || got.End != 0 || got.Trust != 0 || got.Answer != 0 || got.Worker != 0 {
			t.Errorf("row %d not zero-filled: %+v", i, got)
		}
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("repaired store invalid: %v", err)
	}
	if report.Provenance == nil {
		t.Error("repair lost the provenance section")
	}
}

// TestSnapshotRepairCompressedBlockZones: repairing a snapshot whose
// compressed column block is damaged must zero-fill the block's rows AND
// recompute zone maps from the repaired data — the persisted zone-map
// section still describes the original values, so trusting it would let
// pruning skip (or fail to skip) the zero-filled span. Mirrors PR 4's
// zone-map repair case for the encoded-block path.
func TestSnapshotRepairCompressedBlockZones(t *testing.T) {
	s := fixtureStore(t)
	raw := snapshotV3(t, s)
	secs := parseSections(t, raw)
	if findSection(t, secs, secZones, 0).payloadLen == 0 {
		t.Fatal("fixture snapshot carries no zone-map section")
	}
	block1 := findSection(t, secs, secEncBlock, 1)
	bad := append([]byte(nil), raw...)
	bad[block1.payloadOff+7] ^= 0x04

	var rep Store
	report, err := rep.ReadSnapshot(bytes.NewReader(bad), LoadOptions{Mode: LoadRepair})
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if len(report.Damaged) != 1 || report.Damaged[0] != "column block 1" {
		t.Fatalf("damaged = %v", report.Damaged)
	}
	// The repaired store must not have trusted the encoded block: no
	// segment encodings survive a repair load.
	if rep.SegmentEncodings() != nil {
		t.Error("repair mode kept segment encodings from a damaged snapshot")
	}
	// Zone maps are recomputed from the zero-filled data, not loaded: the
	// damaged segment's zone must describe zeros, while the persisted
	// zones (still intact in the file) describe the original values.
	zones := rep.ZoneMaps()
	segs := rep.Segments()
	origZones := s.ZoneMaps()
	for i, si := range segs {
		if si.Rows() == 0 {
			continue
		}
		z := zones[i]
		if si.RowLo >= 7 { // rows of the damaged block
			if z.StartMin != 0 || z.StartMax != 0 || z.WorkerMax != 0 || z.TrustMax != 0 {
				t.Errorf("segment %d zone not recomputed from zero-fill: %+v", i, z)
			}
			if origZones[i].StartMax == 0 {
				t.Errorf("fixture segment %d had no nonzero data to lose", i)
			}
		} else if z.StartMax == 0 {
			t.Errorf("undamaged segment %d zone lost its data: %+v", i, z)
		}
	}
	// Pruning on the recomputed zones must reflect repaired reality: a
	// query over the original time range of the damaged segment finds
	// nothing there.
	if err := rep.Validate(); err != nil {
		t.Fatalf("repaired store invalid: %v", err)
	}
}

// TestSnapshotRepairTruncated: a snapshot cut mid-block strict-fails but
// repairs into a structurally valid store with the tail zero-filled.
func TestSnapshotRepairTruncated(t *testing.T) {
	s := fixtureStore(t)
	raw := snapshotV3(t, s)
	secs := parseSections(t, raw)
	block1 := findSection(t, secs, secEncBlock, 1)
	cut := raw[:block1.payloadOff+4]

	var strict Store
	if _, err := strict.ReadFrom(bytes.NewReader(cut)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("strict err = %v", err)
	}

	var rep Store
	report, err := rep.ReadSnapshot(bytes.NewReader(cut), LoadOptions{Mode: LoadRepair})
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if len(report.Damaged) == 0 {
		t.Fatal("no damage reported for a truncated snapshot")
	}
	if rep.Len() != s.Len() {
		t.Fatalf("repair rows = %d, want %d", rep.Len(), s.Len())
	}
	for i := 0; i < 7; i++ {
		if rep.Row(i) != s.Row(i) {
			t.Errorf("undamaged row %d differs", i)
		}
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("repaired store invalid: %v", err)
	}
}

// TestSnapshotRepairProvenanceDamage: a corrupt provenance section is
// fatal in strict mode but merely dropped (and reported) in repair mode.
func TestSnapshotRepairProvenanceDamage(t *testing.T) {
	s := fixtureStore(t)
	raw := snapshotV3(t, s)
	secs := parseSections(t, raw)
	prov := findSection(t, secs, secProvenance, 0)
	bad := append([]byte(nil), raw...)
	bad[prov.payloadOff] ^= 0xFF

	var strict Store
	if _, err := strict.ReadFrom(bytes.NewReader(bad)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("strict err = %v", err)
	}
	var rep Store
	report, err := rep.ReadSnapshot(bytes.NewReader(bad), LoadOptions{Mode: LoadRepair})
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if report.Provenance != nil {
		t.Error("damaged provenance should be dropped")
	}
	if len(report.Damaged) != 1 || report.Damaged[0] != "provenance" {
		t.Errorf("damaged = %v", report.Damaged)
	}
	compareStores(t, s, &rep, true)
}

// TestSnapshotStrictLeavesStoreUntouched: a failed strict load must not
// modify the receiver, even one that already holds data.
func TestSnapshotStrictLeavesStoreUntouched(t *testing.T) {
	s := sampleStore()
	want := s.Len()
	if _, err := s.ReadFrom(bytes.NewReader([]byte("garbage everywhere"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if s.Len() != want {
		t.Fatalf("failed load changed the store: %d rows", s.Len())
	}
	if s.Row(0) != sampleStore().Row(0) {
		t.Error("failed load mutated rows")
	}
}

// TestSnapshotLoadWorkersInvariant: the loaded store is identical for
// every decode worker count, on both the varint and encoded block paths.
func TestSnapshotLoadWorkersInvariant(t *testing.T) {
	for _, s := range []*Store{randomStore(99, 30, 60), randomSegmentedStore(99)} {
		raw := snapshotV3(t, s)
		var ref Store
		if _, err := ref.ReadSnapshot(bytes.NewReader(raw), LoadOptions{Workers: 1}); err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 8, 0} {
			var got Store
			if _, err := got.ReadSnapshot(bytes.NewReader(raw), LoadOptions{Workers: w}); err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			compareStores(t, &ref, &got, false)
		}
	}
}

// benchStore builds a ~100k-row store shaped like generator output.
func benchStore(b *testing.B) *Store {
	b.Helper()
	nb := 2000
	builders := make([]*Segment, 0, 4)
	per := nb / 4
	for seg := 0; seg < 4; seg++ {
		lo, hi := uint32(seg*per), uint32((seg+1)*per)
		bl := NewBuilder(lo, hi)
		for bt := lo; bt < hi; bt++ {
			bl.BeginBatch(bt)
			base := int64(1_400_000_000) + int64(bt)*3600
			for i := 0; i < 50; i++ {
				bl.Append(model.Instance{
					Batch: bt, TaskType: bt % 40, Item: uint32(i), Worker: uint32(int(bt)*31+i) % 997,
					Start: base + int64(i*60), End: base + int64(i*60+45),
					Trust: float32(i%10) / 16, Answer: bt*100 + uint32(i),
				})
			}
		}
		builders = append(builders, bl.Seal())
	}
	s, err := Assemble(nb, builders)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSnapshotCodecRead compares the retired v2 serial decode with
// the sectioned v3 decode at one and many workers on identical data.
func BenchmarkSnapshotCodecRead(b *testing.B) {
	s := benchStore(b)
	v2 := writeSnapshotLegacy(s, snapshotVersionV2)
	var v3buf bytes.Buffer
	s.WriteTo(&v3buf)
	v3 := v3buf.Bytes()
	b.Logf("v2 %d bytes, v3 %d bytes", len(v2), len(v3))
	run := func(raw []byte, workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(raw)))
			for i := 0; i < b.N; i++ {
				var back Store
				if _, err := back.ReadSnapshot(bytes.NewReader(raw), LoadOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("v2", run(v2, 1))
	b.Run("v3serial", run(v3, 1))
	b.Run("v3parallel", run(v3, 0))
}

func BenchmarkSnapshotCodecWrite(b *testing.B) {
	s := benchStore(b)
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var buf bytes.Buffer
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if _, err := s.WriteSnapshot(&buf, WriteOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(buf.Len()))
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(0))
}

// TestSnapshotRepairForgedRowCount: a tiny file whose CRC-valid meta
// section claims an enormous row count must not repair-"recover" into a
// giant zeroed store; both modes refuse, and allocation stays bounded by
// the input (the fill cap), not the claim.
func TestSnapshotRepairForgedRowCount(t *testing.T) {
	var buf bytes.Buffer
	cw := &countingWriter{w: &buf}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], snapshotVersion)
	cw.Write(hdr[:])
	var meta bytes.Buffer
	putUvarint(&meta, 50_000_000) // claimed rows, nothing behind them
	putUvarint(&meta, 0)          // batches
	putUvarint(&meta, 0)          // segments
	putUvarint(&meta, 0)          // blocks
	putUvarint(&meta, 0)          // flags
	writeSection(cw, secMeta, meta.Bytes())
	writeSection(cw, secSegments, nil)
	writeSection(cw, secRanges, nil)

	var strict Store
	if _, err := strict.ReadFrom(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict err = %v", err)
	}
	var rep Store
	if _, err := rep.ReadSnapshot(bytes.NewReader(buf.Bytes()), LoadOptions{Mode: LoadRepair}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("repair accepted a forged row count: err = %v", err)
	}
	if rep.Len() != 0 {
		t.Fatalf("repair populated %d rows from a %d-byte file", rep.Len(), buf.Len())
	}
}
