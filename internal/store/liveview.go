package store

import (
	"sync"
)

// This file is the LiveStore's MVCC read path. View hands out immutable
// *Store snapshots of the live contents cheaply enough to call per HTTP
// query while ingest keeps running: readers never block writers and
// writers never block readers beyond an O(capture) critical section.
//
// The mechanism is a shared append-only arena. The arena's flat column
// arrays hold the sealed segments' rows (the prefix) followed by a
// mirror of the open builder's rows (the tail). Rows are only ever
// appended past every existing view's visible length — never rewritten
// in place — so a view taken earlier keeps reading exactly the bytes it
// saw, data-race-free, while later refreshes extend the arrays (or
// replace them wholesale; old views keep the old arrays alive). A
// refresh therefore costs O(rows appended since the last view), not
// O(total rows):
//
//   - Tail growth copies only the new open-builder rows and folds them
//     into an incrementally maintained tail zone map.
//   - A seal promotes the mirrored tail in place: the sealed segment IS
//     the old open builder's segment (Builder.Seal freezes, it does not
//     copy), so its first tailRows rows are already in the arena and
//     only the unmirrored suffix is copied.
//   - Only compaction (or an inconsistent basis, which cannot happen in
//     the current seal protocol) rebuilds the arena from scratch into
//     fresh arrays.
//
// Views carry a generation drawn per sealed-segment set: tail-only
// growth keeps the generation, a seal/compaction draws a fresh one. The
// query planner keys its plan cache on that generation, which is what
// lets a hot dashboard query keep hitting the cache across view
// refreshes while rows stream in (see query.Planner).
type viewState struct {
	// mu serializes refreshes and guards every field below. It is never
	// held together with LiveStore.mu: View captures under ls.mu first,
	// then refreshes under vs.mu, so queries refreshing a view never
	// stall ingest.
	mu sync.Mutex

	// The arena columns. [0:prefixRows) mirrors the sealed segments in
	// order; [prefixRows:prefixRows+tailRows) mirrors the open builder's
	// first tailRows rows.
	batch    []uint32
	taskType []uint32
	item     []uint32
	worker   []uint32
	answer   []uint32
	start    []int64
	end      []int64
	trust    []float32

	// The prefix basis: which sealed segments the arena holds. prefixIDs
	// is compared by pointer identity against the live sealed list to
	// detect compaction (segments are immutable, so identity is enough).
	prefixSegs int
	prefixRows int
	prefixIDs  []*Segment

	// Append-only view templates for the prefix: global batch ranges,
	// segment infos and zone maps. Refreshes append, never rewrite, so
	// building a view can copy them without re-deriving anything.
	ranges []rowRange
	segs   []SegmentInfo
	zones  []ZoneMap

	// The mirrored tail: the open builder's segment and how many of its
	// rows the arena holds, plus the incrementally folded tail zone.
	// tailZone is exact for the mirrored rows because rows and zone are
	// captured/advanced together.
	tailSeg         *Segment
	tailRows        int
	tailZone        ZoneMap
	tailTT, tailAns enumSet

	// gen is the generation stamped on views; fresh per segment-set
	// change, stable across tail growth.
	gen uint64

	// cached is the view built by the last refresh, returned verbatim
	// while nothing changed.
	cached *Store

	views, refreshes, rebuilds, copiedRows int64
}

// tailCapture snapshots the open builder under ls.mu: the column slice
// headers clipped to the captured row count (the builder only appends
// past that, so the clipped slices are immutable), a copy of the batch
// ranges (those ARE rewritten in place by Append), and the segment
// pointer for continuation identity.
type tailCapture struct {
	seg              *Segment
	rows             int
	batchLo, batchHi uint32
	ranges           []rowRange

	batch, taskType, item, worker, answer []uint32
	start, end                            []int64
	trust                                 []float32
}

// viewCapture is everything View needs from under ls.mu: O(sealed
// segment count + open batch count), independent of row counts.
type viewCapture struct {
	sealed []*Segment
	tail   tailCapture
}

// captureView snapshots the live state under ls.mu. The capture is
// record-atomic: Append applies whole records under the same mutex.
func (ls *LiveStore) captureView() viewCapture {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	c := viewCapture{sealed: ls.sealed}
	if ls.open != nil && ls.open.Len() > 0 {
		g := ls.open.seg
		t := g.Len()
		c.tail = tailCapture{
			seg: g, rows: t,
			batchLo: g.batchLo, batchHi: g.batchHi,
			ranges:   append([]rowRange(nil), g.ranges...),
			batch:    g.batch[:t:t],
			taskType: g.taskType[:t:t],
			item:     g.item[:t:t],
			worker:   g.worker[:t:t],
			answer:   g.answer[:t:t],
			start:    g.start[:t:t],
			end:      g.end[:t:t],
			trust:    g.trust[:t:t],
		}
	}
	return c
}

// View returns an immutable snapshot of the live contents as a raw-
// resident *Store: sealed segments plus the acknowledged open rows,
// each segment carrying its zone map, stamped with the current view
// generation. The snapshot never changes as more rows arrive, is safe
// for concurrent queries, and shares column storage with other views —
// taking one costs O(rows appended since the previous view).
func (ls *LiveStore) View() *Store {
	c := ls.captureView()
	vs := &ls.view
	vs.mu.Lock()
	defer vs.mu.Unlock()
	vs.views++
	if vs.cached != nil && vs.prefixMatches(c.sealed) &&
		c.tail.seg == vs.tailSeg && c.tail.rows == vs.tailRows {
		return vs.cached
	}
	vs.refreshes++
	vs.refresh(&c)
	vs.cached = vs.buildStore(&c)
	return vs.cached
}

// prefixMatches reports whether the live sealed list still begins with
// exactly the segments the arena prefix mirrors.
func (vs *viewState) prefixMatches(sealed []*Segment) bool {
	if len(sealed) != vs.prefixSegs {
		return false
	}
	for i, g := range vs.prefixIDs {
		if sealed[i] != g {
			return false
		}
	}
	return true
}

// refresh brings the arena up to the captured state.
func (vs *viewState) refresh(c *viewCapture) {
	// Validate the basis: the live sealed list must extend the arena's
	// prefix, and the mirrored tail must still be continuable — either
	// the same open segment with at least as many rows, or sealed as the
	// next prefix segment. Compaction (which replaces sealed segments)
	// fails the check and forces a rebuild from fresh arrays; the old
	// arrays stay alive under any outstanding views.
	ok := len(c.sealed) >= vs.prefixSegs
	if ok {
		for i, g := range vs.prefixIDs {
			if c.sealed[i] != g {
				ok = false
				break
			}
		}
	}
	if ok && vs.tailRows > 0 {
		if len(c.sealed) > vs.prefixSegs {
			ok = c.sealed[vs.prefixSegs] == vs.tailSeg
		} else if c.tail.seg != vs.tailSeg || c.tail.rows < vs.tailRows {
			ok = false
		}
	}
	if !ok {
		vs.reset()
		vs.rebuilds++
	}

	// Extend the prefix with newly sealed segments. The first one may be
	// the sealed form of the segment the tail was mirroring (Seal
	// freezes the builder's segment in place), in which case its first
	// tailRows rows are already in the arena and only the suffix copies.
	prefixGrew := len(c.sealed) > vs.prefixSegs
	for _, g := range c.sealed[vs.prefixSegs:] {
		skip := 0
		if g == vs.tailSeg {
			skip = vs.tailRows
		}
		vs.appendSeg(g, skip)
		vs.clearTail()
	}

	// Mirror the open tail: copy only the rows past what is mirrored,
	// folding them into the running tail zone.
	if c.tail.rows > 0 {
		if vs.tailSeg == nil {
			vs.tailSeg = c.tail.seg
			vs.tailZone = ZoneMap{}
			vs.tailTT = enumSet{cap: zoneEnumCap}
			vs.tailAns = enumSet{cap: zoneEnumCap}
		}
		lo := vs.tailRows
		vs.batch = append(vs.batch, c.tail.batch[lo:]...)
		vs.taskType = append(vs.taskType, c.tail.taskType[lo:]...)
		vs.item = append(vs.item, c.tail.item[lo:]...)
		vs.worker = append(vs.worker, c.tail.worker[lo:]...)
		vs.answer = append(vs.answer, c.tail.answer[lo:]...)
		vs.start = append(vs.start, c.tail.start[lo:]...)
		vs.end = append(vs.end, c.tail.end[lo:]...)
		vs.trust = append(vs.trust, c.tail.trust[lo:]...)
		foldZone(&vs.tailZone, &vs.tailTT, &vs.tailAns,
			c.tail.taskType, c.tail.item, c.tail.worker, c.tail.answer,
			c.tail.start, c.tail.end, c.tail.trust, lo, c.tail.rows)
		vs.copiedRows += int64(c.tail.rows - lo)
		vs.tailRows = c.tail.rows
	}

	if prefixGrew || vs.gen == 0 {
		vs.gen = NextGeneration()
	}
}

// reset drops the arena for a rebuild. The column slices are set nil —
// not truncated — so the rebuild allocates fresh arrays and outstanding
// views keep reading the old ones untouched.
func (vs *viewState) reset() {
	vs.batch, vs.taskType, vs.item, vs.worker, vs.answer = nil, nil, nil, nil, nil
	vs.start, vs.end, vs.trust = nil, nil, nil
	vs.prefixSegs, vs.prefixRows = 0, 0
	vs.prefixIDs = nil
	vs.ranges, vs.segs, vs.zones = nil, nil, nil
	vs.clearTail()
}

// clearTail forgets the mirrored tail (its rows were either promoted
// into the prefix or discarded by a reset).
func (vs *viewState) clearTail() {
	vs.tailSeg = nil
	vs.tailRows = 0
	vs.tailZone = ZoneMap{}
	vs.tailTT = enumSet{cap: zoneEnumCap}
	vs.tailAns = enumSet{cap: zoneEnumCap}
}

// appendSeg extends the arena prefix with sealed segment g, skipping its
// first skip rows (already mirrored as the tail). Template slices only
// ever append here, so concurrent views built from shorter headers stay
// valid.
func (vs *viewState) appendSeg(g *Segment, skip int) {
	base := len(vs.start) - skip
	vs.batch = append(vs.batch, g.batch[skip:]...)
	vs.taskType = append(vs.taskType, g.taskType[skip:]...)
	vs.item = append(vs.item, g.item[skip:]...)
	vs.worker = append(vs.worker, g.worker[skip:]...)
	vs.answer = append(vs.answer, g.answer[skip:]...)
	vs.start = append(vs.start, g.start[skip:]...)
	vs.end = append(vs.end, g.end[skip:]...)
	vs.trust = append(vs.trust, g.trust[skip:]...)
	vs.copiedRows += int64(g.Len() - skip)
	for len(vs.ranges) < int(g.batchHi) {
		vs.ranges = append(vs.ranges, rowRange{})
	}
	for j, rr := range g.ranges {
		if rr.Hi > rr.Lo {
			vs.ranges[g.batchLo+uint32(j)] = rowRange{Lo: rr.Lo + int32(base), Hi: rr.Hi + int32(base)}
		}
	}
	vs.segs = append(vs.segs, SegmentInfo{RowLo: base, RowHi: base + g.Len(), BatchLo: g.batchLo, BatchHi: g.batchHi})
	vs.zones = append(vs.zones, g.zone)
	vs.prefixIDs = append(vs.prefixIDs, g)
	vs.prefixSegs++
	vs.prefixRows = base + g.Len()
}

// buildStore materializes the current arena state as an immutable view
// store: shared column headers clipped to the visible length, plus
// per-view copies of the small metadata (ranges, segment infos, zones —
// the only parts a later refresh would touch).
func (vs *viewState) buildStore(c *viewCapture) *Store {
	n := vs.prefixRows + vs.tailRows
	numBatches := len(vs.ranges)
	if vs.tailRows > 0 && int(c.tail.batchHi) > numBatches {
		numBatches = int(c.tail.batchHi)
	}
	ranges := make([]rowRange, numBatches)
	copy(ranges, vs.ranges)
	nseg := vs.prefixSegs
	if vs.tailRows > 0 {
		nseg++
	}
	segs := make([]SegmentInfo, vs.prefixSegs, nseg)
	copy(segs, vs.segs)
	zones := make([]ZoneMap, vs.prefixSegs, nseg)
	copy(zones, vs.zones)
	if vs.tailRows > 0 {
		off := int32(vs.prefixRows)
		for j, rr := range c.tail.ranges {
			if rr.Hi > rr.Lo {
				ranges[int(c.tail.batchLo)+j] = rowRange{Lo: rr.Lo + off, Hi: rr.Hi + off}
			}
		}
		segs = append(segs, SegmentInfo{RowLo: vs.prefixRows, RowHi: n, BatchLo: c.tail.batchLo, BatchHi: c.tail.batchHi})
		// The running enum sets mutate in place on later folds; views get
		// clones.
		tz := vs.tailZone
		tz.TaskTypes = append([]uint32(nil), tz.TaskTypes...)
		tz.Answers = append([]uint32(nil), tz.Answers...)
		zones = append(zones, tz)
	}
	return &Store{
		batch:    vs.batch[:n:n],
		taskType: vs.taskType[:n:n],
		item:     vs.item[:n:n],
		worker:   vs.worker[:n:n],
		answer:   vs.answer[:n:n],
		start:    vs.start[:n:n],
		end:      vs.end[:n:n],
		trust:    vs.trust[:n:n],
		rows:     n,
		ranges:   ranges,
		segs:     segs,
		zones:    zones,
		fill:     &fillState{},
		gen:      vs.gen,
	}
}

// foldZone extends z (and its running enum sets) with rows [lo,hi) of
// the given column slices; it is computeZoneMap made incremental.
func foldZone(z *ZoneMap, tts, ans *enumSet, taskType, item, worker, answer []uint32, start, end []int64, trust []float32, lo, hi int) {
	if hi <= lo {
		return
	}
	if z.Rows == 0 {
		z.TaskTypeMin, z.TaskTypeMax = taskType[lo], taskType[lo]
		z.ItemMin, z.ItemMax = item[lo], item[lo]
		z.WorkerMin, z.WorkerMax = worker[lo], worker[lo]
		z.AnswerMin, z.AnswerMax = answer[lo], answer[lo]
		z.StartMin, z.StartMax = start[lo], start[lo]
		z.EndMin, z.EndMax = end[lo], end[lo]
		z.TrustMin, z.TrustMax = trust[lo], trust[lo]
	}
	for i := lo; i < hi; i++ {
		z.TaskTypeMin = min(z.TaskTypeMin, taskType[i])
		z.TaskTypeMax = max(z.TaskTypeMax, taskType[i])
		z.ItemMin = min(z.ItemMin, item[i])
		z.ItemMax = max(z.ItemMax, item[i])
		z.WorkerMin = min(z.WorkerMin, worker[i])
		z.WorkerMax = max(z.WorkerMax, worker[i])
		z.AnswerMin = min(z.AnswerMin, answer[i])
		z.AnswerMax = max(z.AnswerMax, answer[i])
		z.StartMin = min(z.StartMin, start[i])
		z.StartMax = max(z.StartMax, start[i])
		z.EndMin = min(z.EndMin, end[i])
		z.EndMax = max(z.EndMax, end[i])
		tts.add(taskType[i])
		ans.add(answer[i])
	}
	z.Rows += hi - lo
	z.TaskTypes, z.Answers = tts.vals, ans.vals
}

// ViewStats reports the view arena's counters, for /stats and tests.
type ViewStats struct {
	// Generation is the current view generation (0 before the first
	// view).
	Generation uint64
	// Views counts View calls; Refreshes the subset that found new data;
	// Rebuilds the subset that rebuilt the arena from scratch (first
	// view, compaction).
	Views, Refreshes, Rebuilds int64
	// CopiedRows is the total rows ever copied into the arena — the
	// measure of incremental work. Steady-state ingest of k rows costs
	// k copied rows regardless of store size.
	CopiedRows int64
	// Rows and Segments describe the latest view.
	Rows, Segments int
}

// ViewStats returns the current view-arena counters.
func (ls *LiveStore) ViewStats() ViewStats {
	vs := &ls.view
	vs.mu.Lock()
	defer vs.mu.Unlock()
	st := ViewStats{
		Generation: vs.gen,
		Views:      vs.views,
		Refreshes:  vs.refreshes,
		Rebuilds:   vs.rebuilds,
		CopiedRows: vs.copiedRows,
		Rows:       vs.prefixRows + vs.tailRows,
		Segments:   vs.prefixSegs,
	}
	if vs.tailRows > 0 {
		st.Segments++
	}
	return st
}
