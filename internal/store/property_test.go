package store

import (
	"bytes"
	"testing"
	"testing/quick"

	"crowdscope/internal/model"
	"crowdscope/internal/rng"
)

// randomStore builds a random but structurally valid store from a seed.
func randomStore(seed uint64, maxBatches, maxRows int) *Store {
	r := rng.New(seed)
	nb := 1 + r.Intn(maxBatches)
	s := New(nb)
	base := model.Epoch.Unix()
	for b := 0; b < nb; b++ {
		s.BeginBatch(uint32(b))
		rows := r.Intn(maxRows)
		for i := 0; i < rows; i++ {
			start := base + r.Int63n(1000000)
			s.Append(model.Instance{
				Batch:    uint32(b),
				TaskType: uint32(r.Intn(50)),
				Item:     uint32(r.Intn(200)),
				Worker:   uint32(r.Intn(500)),
				Start:    start,
				End:      start + r.Int63n(5000),
				Trust:    float32(r.Float64()),
				Answer:   uint32(r.Uint64n(1 << 30)),
			})
		}
	}
	return s
}

// TestPropertySnapshotRoundTrip: encode→decode is the identity for any
// structurally valid store.
func TestPropertySnapshotRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		s := randomStore(seed, 20, 40)
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			return false
		}
		var back Store
		if _, err := back.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
			return false
		}
		if back.Len() != s.Len() || back.NumBatches() != s.NumBatches() {
			return false
		}
		for i := 0; i < s.Len(); i++ {
			if s.Row(i) != back.Row(i) {
				return false
			}
		}
		return back.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyValidateAcceptsGenerated: every store built through the
// public Append protocol validates.
func TestPropertyValidateAcceptsGenerated(t *testing.T) {
	f := func(seed uint64) bool {
		return randomStore(seed, 15, 30).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWorkerIndexComplete: posting lists partition the rows.
func TestPropertyWorkerIndexComplete(t *testing.T) {
	f := func(seed uint64) bool {
		s := randomStore(seed, 10, 50)
		covered := 0
		seen := map[int32]bool{}
		ok := true
		s.EachWorker(func(id uint32, rows []int32) {
			covered += len(rows)
			for _, r := range rows {
				if seen[r] || s.worker[r] != id {
					ok = false
				}
				seen[r] = true
			}
		})
		return ok && covered == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBatchRangesPartition: batch ranges cover each row exactly
// once.
func TestPropertyBatchRangesPartition(t *testing.T) {
	f := func(seed uint64) bool {
		s := randomStore(seed, 25, 25)
		covered := make([]bool, s.Len())
		for b := 0; b < s.NumBatches(); b++ {
			lo, hi := s.BatchRange(uint32(b))
			for i := lo; i < hi; i++ {
				if covered[i] {
					return false
				}
				covered[i] = true
			}
		}
		for _, c := range covered {
			if !c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyZigzag: the codec's zigzag transform is a bijection.
func TestPropertyZigzag(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySnapshotDeterministic: serialization is a pure function of
// the store contents — byte-identical for repeated writes AND for every
// parallel section-writer count, with or without provenance, for both
// the direct-append (varint block) and segmented (encoded block) paths.
// The segmented case additionally checks that a store loaded back from
// its own snapshot re-serializes byte-identically: the encoded blocks
// are canonical.
func TestPropertySnapshotDeterministic(t *testing.T) {
	prov := &Provenance{ConfigHash: 0xABCD, Seed: 11, Tool: "prop/3"}
	f := func(seed uint64) bool {
		for _, s := range []*Store{randomStore(seed, 10, 20), randomSegmentedStore(seed)} {
			var ref bytes.Buffer
			s.WriteTo(&ref)
			var refProv bytes.Buffer
			s.WriteSnapshot(&refProv, WriteOptions{Provenance: prov, Workers: 1})
			for _, w := range []int{0, 1, 2, 3, 8} {
				var b bytes.Buffer
				s.WriteSnapshot(&b, WriteOptions{Workers: w})
				if !bytes.Equal(ref.Bytes(), b.Bytes()) {
					return false
				}
				b.Reset()
				s.WriteSnapshot(&b, WriteOptions{Provenance: prov, Workers: w})
				if !bytes.Equal(refProv.Bytes(), b.Bytes()) {
					return false
				}
			}
			var back Store
			if _, err := back.ReadFrom(bytes.NewReader(ref.Bytes())); err != nil {
				return false
			}
			var again bytes.Buffer
			back.WriteTo(&again)
			if !bytes.Equal(ref.Bytes(), again.Bytes()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLegacyRoundTrip: any structurally valid store serialized in
// the retired v1/v2 layouts still loads row-for-row through the legacy
// readers.
func TestPropertyLegacyRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		s := randomStore(seed, 15, 30)
		for _, version := range []uint32{snapshotVersionV1, snapshotVersionV2} {
			var back Store
			if _, err := back.ReadFrom(bytes.NewReader(writeSnapshotLegacy(s, version))); err != nil {
				return false
			}
			if back.Len() != s.Len() {
				return false
			}
			for i := 0; i < s.Len(); i++ {
				if s.Row(i) != back.Row(i) {
					return false
				}
			}
			if back.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
