package store

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"runtime"

	"crowdscope/internal/par"
)

// Section kinds of the v3 snapshot format, in their on-disk order.
const (
	secMeta       byte = 0x01
	secProvenance byte = 0x02
	secSegments   byte = 0x03
	secRanges     byte = 0x04
	secBlock      byte = 0x05
	secZones      byte = 0x06
	secEncBlock   byte = 0x07
	secFooter     byte = 0x08
)

// metaFlagProvenance marks a provenance section between meta and the
// segment table; metaFlagZoneMaps marks a zone-map section between the
// batch ranges and the column blocks. Both are optional: v3 snapshots
// written before a flag existed simply lack the bit, and stores loaded
// from them recompute zone maps lazily.
//
// metaFlagEncoded marks that the column blocks are encoded-column blocks
// (secEncBlock, one per non-empty segment, holding the segment's RLE/
// dictionary/FOR-packed columns verbatim — see colenc.go) instead of the
// original varint blocks. Flag-less v3 snapshots keep loading through the
// varint path; segmented stores write the encoded form by default, and
// WriteOptions.Uncompressed restores the old layout.
// metaFlagFooter marks that the snapshot ends with a footer offset index
// (secFooter) plus the fixed trailer — see footer.go. Encoded snapshots
// write it unconditionally; it is what makes a shard file usable through
// the random-access dataset reader.
const (
	metaFlagProvenance = 1 << 0
	metaFlagZoneMaps   = 1 << 1
	metaFlagEncoded    = 1 << 2
	metaFlagFooter     = 1 << 3
)

// blockTargetRows caps how many rows one column block holds. Blocks align
// to segment row spans and larger spans split, so encode/decode
// parallelism — and the per-block scratch bound — holds regardless of how
// the store was built.
const blockTargetRows = 1 << 18

// blockMinRowBytes is the least space one encoded row can occupy (one
// byte per varint column plus the fixed-width trust float): the
// remaining-payload bound on a block's claimed row count.
const blockMinRowBytes = 11

// maxToolLen bounds the provenance tool string.
const maxToolLen = 1 << 10

// maxBlockWave bounds how many column blocks are buffered per decode or
// encode wave; together with blockTargetRows it caps codec scratch memory.
const maxBlockWave = 32

// blockWaveBytes additionally bounds one encoded-block wave by payload
// bytes: encoded blocks are per-segment (they cannot split a packed
// array), so at full scale a count-only cap would buffer too much.
const blockWaveBytes = 64 << 20

// repairMaxFillRows caps how many missing tail rows repair mode will
// zero-fill (~170MB of columns): a real truncation within this bound
// still recovers, while a forged meta row count cannot make repair
// allocate memory unbacked by input bytes.
const repairMaxFillRows = 1 << 22

// blockSpans returns the row spans column blocks are built over: segment
// row spans, split so no block exceeds blockTargetRows. A store without a
// (consistent) segment layout is treated as one span. The result depends
// only on the store contents, never on worker counts.
func (s *Store) blockSpans() [][2]int {
	n := s.Len()
	if n == 0 {
		return nil
	}
	var spans [][2]int
	add := func(lo, hi int) {
		for lo < hi {
			end := lo + blockTargetRows
			if end > hi {
				end = hi
			}
			spans = append(spans, [2]int{lo, end})
			lo = end
		}
	}
	segOK := len(s.segs) > 0
	off := 0
	for _, si := range s.segs {
		if !segOK {
			break
		}
		if si.RowLo != off || si.RowHi < si.RowLo || si.RowHi > n {
			segOK = false
		}
		off = si.RowHi
	}
	if !segOK || off != n {
		add(0, n)
		return spans
	}
	for _, si := range s.segs {
		add(si.RowLo, si.RowHi)
	}
	return spans
}

// encodeBlock writes the column block payload for rows [lo, hi). Blocks
// are self-contained: the delta coding of start times restarts at lo.
func encodeBlock(buf *bytes.Buffer, s *Store, lo, hi int) {
	putUvarint(buf, uint64(lo))
	putUvarint(buf, uint64(hi-lo))
	putUvarints(buf, s.batch[lo:hi])
	putUvarints(buf, s.taskType[lo:hi])
	putUvarints(buf, s.item[lo:hi])
	putUvarints(buf, s.worker[lo:hi])
	putDeltaVarints(buf, s.start[lo:hi])
	for i := lo; i < hi; i++ {
		// End times as offsets from start: always small.
		putUvarint(buf, uint64(s.end[i]-s.start[i]))
	}
	putFloats(buf, s.trust[lo:hi])
	putUvarints(buf, s.answer[lo:hi])
}

// writeSection frames one section: kind, payload length, CRC32 (IEEE) of
// the payload, then the payload itself.
func writeSection(cw *countingWriter, kind byte, payload []byte) {
	var hdr [9]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	cw.Write(hdr[:])
	cw.Write(payload)
}

// WriteSnapshot serializes the store in the v3 sectioned format. The
// output bytes are identical for every WriteOptions.Workers value.
func (s *Store) WriteSnapshot(w io.Writer, opts WriteOptions) (int64, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &countingWriter{w: bw}

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], snapshotVersion)
	cw.Write(hdr[:])

	// Segmented stores default to encoded column blocks: the sealed-in
	// per-segment encodings (computed here once for stores loaded from
	// pre-compression snapshots) are persisted verbatim. Unsegmented
	// stores, Uncompressed writes, and stores with a segment too large
	// for the per-block row cap use the varint block layout instead.
	useEnc := !opts.Uncompressed && len(s.segs) > 0
	for _, si := range s.segs {
		if si.Rows() > encBlockMaxRows {
			useEnc = false
		}
	}
	var encs []SegmentEnc
	var encIdx []int
	var spans [][2]int
	if useEnc {
		encs = s.Encodings()
		for i := range s.segs {
			if s.segs[i].Rows() > 0 {
				encIdx = append(encIdx, i)
			}
		}
	} else {
		s.ensure(colMaskAll)
		spans = s.blockSpans()
	}
	nblocks := len(spans)
	if useEnc {
		nblocks = len(encIdx)
	}

	// Zone maps persist only for explicitly segmented stores (the layout
	// the maps are keyed by); sealed-in zones are reused, otherwise they
	// are computed here once.
	var zones []ZoneMap
	if len(s.segs) > 0 {
		zones = s.ZoneMaps()
	}

	// Encoded snapshots carry a footer offset index so random-access
	// readers can fetch sections and single columns without streaming;
	// writeIndexed records each section's extent as it goes out.
	var foot *footerIndex
	if useEnc {
		foot = &footerIndex{}
	}
	writeIndexed := func(kind byte, p []byte) {
		if foot != nil {
			foot.secs = append(foot.secs, footerSec{kind: kind, off: cw.n, len: int64(len(p))})
		}
		writeSection(cw, kind, p)
	}

	var payload bytes.Buffer
	putUvarint(&payload, uint64(s.Len()))
	putUvarint(&payload, uint64(len(s.ranges)))
	putUvarint(&payload, uint64(len(s.segs)))
	putUvarint(&payload, uint64(nblocks))
	flags := uint64(0)
	if opts.Provenance != nil {
		flags |= metaFlagProvenance
	}
	if len(zones) > 0 {
		flags |= metaFlagZoneMaps
	}
	if useEnc {
		flags |= metaFlagEncoded | metaFlagFooter
	}
	putUvarint(&payload, flags)
	writeIndexed(secMeta, payload.Bytes())

	if p := opts.Provenance; p != nil {
		payload.Reset()
		putUvarint(&payload, p.ConfigHash)
		putUvarint(&payload, p.Seed)
		tool := p.Tool
		if len(tool) > maxToolLen {
			tool = tool[:maxToolLen]
		}
		putUvarint(&payload, uint64(len(tool)))
		payload.WriteString(tool)
		writeIndexed(secProvenance, payload.Bytes())
	}

	payload.Reset()
	for _, si := range s.segs {
		putUvarint(&payload, uint64(si.RowLo))
		putUvarint(&payload, uint64(si.RowHi))
		putUvarint(&payload, uint64(si.BatchLo))
		putUvarint(&payload, uint64(si.BatchHi))
	}
	writeIndexed(secSegments, payload.Bytes())

	payload.Reset()
	for _, rr := range s.ranges {
		putUvarint(&payload, uint64(rr.Lo))
		putUvarint(&payload, uint64(rr.Hi))
	}
	writeIndexed(secRanges, payload.Bytes())

	if len(zones) > 0 {
		payload.Reset()
		encodeZones(&payload, zones)
		writeIndexed(secZones, payload.Bytes())
	}

	// Column blocks: encoded wave by wave into reused per-slot buffers
	// (the scratch bound) in parallel, then written sequentially in block
	// order — byte-identical output for any worker count, since block
	// boundaries and wave grouping are fixed by the data.
	if useEnc {
		bufs := make([]bytes.Buffer, min(maxBlockWave, len(encIdx)))
		splits := make([][9]int, len(bufs))
		for b := 0; b < len(encIdx); {
			k, waveBytes := 0, int64(0)
			for b+k < len(encIdx) && k < len(bufs) {
				sz := encs[encIdx[b+k]].encodedPayloadBytes()
				if k > 0 && waveBytes+sz > blockWaveBytes {
					break
				}
				waveBytes += sz
				k++
			}
			par.EachShard(k, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					bufs[i].Reset()
					splits[i] = serializeEncBlock(&bufs[i], &encs[encIdx[b+i]])
				}
			})
			for i := 0; i < k; i++ {
				p := bufs[i].Bytes()
				fb := footerBlock{payloadOff: cw.n + 9, rowsLen: int64(splits[i][0])}
				for c := 0; c < 8; c++ {
					lo, hi := splits[i][c], splits[i][c+1]
					fb.colLen[c] = int64(hi - lo)
					fb.colCRC[c] = crc32.ChecksumIEEE(p[lo:hi])
				}
				foot.blocks = append(foot.blocks, fb)
				writeSection(cw, secEncBlock, p)
			}
			b += k
		}
		payload.Reset()
		encodeFooter(&payload, foot)
		footOff := cw.n
		writeSection(cw, secFooter, payload.Bytes())
		var tr [footerTrailerLen]byte
		binary.LittleEndian.PutUint64(tr[0:8], uint64(footOff))
		binary.LittleEndian.PutUint32(tr[8:12], uint32(payload.Len()))
		binary.LittleEndian.PutUint32(tr[12:16], footerMagic)
		cw.Write(tr[:])
	} else {
		wave := min(min(workers, maxBlockWave), len(spans))
		bufs := make([]bytes.Buffer, wave)
		for b := 0; b < len(spans); b += wave {
			k := min(wave, len(spans)-b)
			par.EachShard(k, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					bufs[i].Reset()
					encodeBlock(&bufs[i], s, spans[b+i][0], spans[b+i][1])
				}
			})
			for i := 0; i < k; i++ {
				writeSection(cw, secBlock, bufs[i].Bytes())
			}
		}
	}
	if err := bw.Flush(); err != nil && cw.err == nil {
		return cw.n, err
	}
	return cw.n, cw.err
}

// zeroChunk backs input-bounded buffer growth in readN.
var zeroChunk [allocChunk]byte

// readN reads exactly n bytes, reusing *scratch across calls. The buffer
// grows only as input actually arrives, so a forged length header cannot
// force a large allocation.
func readN(cr *countingReader, n int, scratch *[]byte) ([]byte, error) {
	buf := (*scratch)[:0]
	for len(buf) < n {
		k := min(n-len(buf), allocChunk)
		off := len(buf)
		buf = append(buf, zeroChunk[:k]...)
		*scratch = buf[:0]
		if _, err := io.ReadFull(cr, buf[off:]); err != nil {
			return nil, asTruncated(err)
		}
	}
	*scratch = buf[:0]
	return buf, nil
}

// readSection reads one framed section, verifying kind and checksum. On a
// checksum mismatch the (fully read) payload is returned alongside the
// error, so repair mode can keep its framing position.
func readSection(cr *countingReader, wantKind byte, name string, scratch *[]byte) ([]byte, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		return nil, sectionErr(name, asTruncated(err))
	}
	if hdr[0] != wantKind {
		return nil, sectionErr(name, fmt.Errorf("%w: unexpected section kind 0x%02x", ErrCorrupt, hdr[0]))
	}
	length := binary.LittleEndian.Uint32(hdr[1:5])
	want := binary.LittleEndian.Uint32(hdr[5:9])
	payload, err := readN(cr, int(length), scratch)
	if err != nil {
		return nil, sectionErr(name, err)
	}
	if crc32.ChecksumIEEE(payload) != want {
		return payload, sectionErr(name, ErrChecksum)
	}
	return payload, nil
}

// grown extends s to length `to`, zeroing any region newly exposed from
// spare capacity.
func grown[T any](s []T, to int) []T {
	if to <= len(s) {
		return s
	}
	if to > cap(s) {
		c := 2 * cap(s)
		if c < to {
			c = to
		}
		ns := make([]T, to, c)
		copy(ns, s)
		return ns
	}
	var zero T
	s2 := s[:to]
	for i := len(s); i < to; i++ {
		s2[i] = zero
	}
	return s2
}

// peekBlockHeader parses a block payload's row span header, returning its
// encoded size so decodeBlock resumes at the exact byte that follows.
func peekBlockHeader(payload []byte) (lo, count, hdrLen int, err error) {
	sr := &sliceReader{buf: payload}
	l, err := getUvarint(sr)
	if err != nil {
		return 0, 0, 0, err
	}
	c, err := getUvarint(sr)
	if err != nil {
		return 0, 0, 0, err
	}
	if l > math.MaxInt32 || c > math.MaxInt32 {
		return 0, 0, 0, fmt.Errorf("%w: block span overflow", ErrCorrupt)
	}
	return int(l), int(c), sr.pos, nil
}

// decodeBlock decodes a column block payload into rows [expectLo,
// expectLo+count) of the column arrays.
func decodeBlock(payload []byte, expectLo int, st *Store) error {
	lo, count, hdrLen, err := peekBlockHeader(payload)
	if err != nil {
		return asTruncated(err)
	}
	sr := &sliceReader{buf: payload, pos: hdrLen}
	if lo != expectLo {
		return fmt.Errorf("%w: block starts at row %d, want %d", ErrCorrupt, lo, expectLo)
	}
	hi := lo + count
	if hi > len(st.batch) {
		return fmt.Errorf("%w: block rows [%d,%d) exceed %d", ErrCorrupt, lo, hi, len(st.batch))
	}
	if err := getUvarintsInto(sr, st.batch[lo:hi]); err != nil {
		return err
	}
	if err := getUvarintsInto(sr, st.taskType[lo:hi]); err != nil {
		return err
	}
	if err := getUvarintsInto(sr, st.item[lo:hi]); err != nil {
		return err
	}
	if err := getUvarintsInto(sr, st.worker[lo:hi]); err != nil {
		return err
	}
	if err := getDeltaVarintsInto(sr, st.start[lo:hi]); err != nil {
		return err
	}
	for i := lo; i < hi; i++ {
		v, err := getUvarint(sr)
		if err != nil {
			return asTruncated(err)
		}
		if v > math.MaxUint32 {
			return fmt.Errorf("%w: end offset exceeds uint32", ErrCorrupt)
		}
		st.end[i] = st.start[i] + int64(v)
	}
	if err := getFloatsInto(sr, st.trust[lo:hi]); err != nil {
		return err
	}
	if err := getUvarintsInto(sr, st.answer[lo:hi]); err != nil {
		return err
	}
	if sr.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, sr.remaining())
	}
	return nil
}

// readV3 decodes a v3 snapshot body (after the magic/version header) into
// a fresh store.
func readV3(cr *countingReader, opts LoadOptions, rep *LoadReport) (*Store, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	repair := opts.Mode == LoadRepair

	var scratch []byte
	payload, err := readSection(cr, secMeta, "meta", &scratch)
	if err != nil {
		return nil, err
	}
	sr := &sliceReader{buf: payload}
	var counts [5]uint64 // rows, batches, segments, blocks, flags
	for i := range counts {
		if counts[i], err = getUvarint(sr); err != nil {
			return nil, sectionErr("meta", asTruncated(err))
		}
	}
	n, nb, ns, nblocks, flags := counts[0], counts[1], counts[2], counts[3], counts[4]
	if n > math.MaxInt32 || nb > math.MaxInt32 || ns > math.MaxInt32 || nblocks > math.MaxInt32 {
		return nil, sectionErr("meta", fmt.Errorf("%w: counts overflow", ErrCorrupt))
	}
	if sr.remaining() != 0 {
		return nil, sectionErr("meta", fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, sr.remaining()))
	}

	if flags&metaFlagProvenance != 0 {
		payload, err = readSection(cr, secProvenance, "provenance", &scratch)
		if err == nil {
			rep.Provenance, err = decodeProvenance(payload)
		}
		if err != nil {
			// A damaged provenance section does not affect the data; in
			// repair mode record it and move on. Truncation still aborts:
			// the stream position is lost.
			if !repair || errors.Is(err, ErrTruncated) || payload == nil {
				return nil, err
			}
			rep.Provenance = nil
			rep.Damaged = append(rep.Damaged, "provenance")
		}
	}

	payload, err = readSection(cr, secSegments, "segment table", &scratch)
	if err != nil {
		return nil, err
	}
	segs, err := decodeSegments(payload, int(ns), int(n), int(nb))
	if err != nil {
		return nil, sectionErr("segment table", err)
	}

	payload, err = readSection(cr, secRanges, "batch ranges", &scratch)
	if err != nil {
		return nil, err
	}
	ranges, err := decodeRanges(payload, int(nb), int(n))
	if err != nil {
		return nil, sectionErr("batch ranges", err)
	}

	st := &Store{ranges: ranges, segs: segs, fill: &fillState{}, gen: NextGeneration()}

	if flags&metaFlagZoneMaps != 0 {
		payload, err = readSection(cr, secZones, "zone maps", &scratch)
		switch {
		case err != nil:
			// A damaged zone-map section loses no data — zones are derived
			// — so repair mode drops it and recomputes lazily. Truncation
			// still aborts: the stream position is lost.
			if !repair || errors.Is(err, ErrTruncated) || payload == nil {
				return nil, err
			}
			rep.Damaged = append(rep.Damaged, "zone maps")
		case repair:
			// Repair mode may zero-fill column blocks below, which would
			// falsify persisted zones; never trust them — recompute from
			// whatever data actually loads.
		default:
			zones, zerr := decodeZones(payload, segs)
			if zerr != nil {
				return nil, sectionErr("zone maps", zerr)
			}
			st.zones = zones
		}
	}

	var damagedSpans [][2]int

	if flags&metaFlagEncoded != 0 {
		// Encoded column blocks: one per non-empty segment, holding the
		// segment's column encodings verbatim.
		if len(segs) == 0 && n > 0 {
			return nil, sectionErr("meta", fmt.Errorf("%w: encoded blocks without a segment table", ErrCorrupt))
		}
		if err := readEncodedBlocks(cr, st, int(n), int(nblocks), workers, repair, rep, &damagedSpans); err != nil {
			return nil, err
		}
		if flags&metaFlagFooter != 0 {
			if err := consumeFooter(cr, int(nblocks), repair, rep, &scratch); err != nil {
				return nil, err
			}
		}
		st.rows = int(n)
		rebuildBatchSpans(st, damagedSpans)
		return st, nil
	}
	if flags&metaFlagFooter != 0 {
		return nil, sectionErr("meta", fmt.Errorf("%w: footer flag without encoded blocks", ErrCorrupt))
	}

	// Column blocks: read one wave of payloads sequentially (into reused
	// buffers — the scratch bound), then decode the wave in parallel; each
	// block writes a disjoint row span, so the result is identical for
	// every worker count.
	type waveBlock struct {
		lo, hi  int
		payload []byte
		skip    bool // checksum-damaged (repair): zero-fill instead
		failed  bool // decode error (repair): zero-fill after the fact
	}
	wave := min(min(max(workers, 1), maxBlockWave), int(nblocks))
	blockBufs := make([][]byte, wave)
	wbs := make([]waveBlock, 0, wave)
	rowsDone := 0
	stopped := false
	for idx := 0; idx < int(nblocks) && !stopped; idx += len(wbs) {
		wbs = wbs[:0]
		for i := 0; i < wave && idx+len(wbs) < int(nblocks); i++ {
			name := fmt.Sprintf("column block %d", idx+i)
			payload, err := readSection(cr, secBlock, name, &blockBufs[i])
			checksumBad := err != nil && errors.Is(err, ErrChecksum) && payload != nil
			if err != nil && !(repair && checksumBad) {
				if repair {
					// Truncated or unframeable: recover everything read so
					// far and zero-fill the rest.
					rep.Damaged = append(rep.Damaged, name)
					stopped = true
					break
				}
				return nil, err
			}
			lo, count, _, herr := peekBlockHeader(payload)
			if herr != nil || lo != rowsDone || count < 0 || rowsDone+count > int(n) ||
				count*blockMinRowBytes > len(payload) {
				if repair {
					// Row geometry untrustworthy: stop and zero-fill.
					rep.Damaged = append(rep.Damaged, name)
					stopped = true
					break
				}
				if herr != nil {
					return nil, sectionErr(name, fmt.Errorf("%w: bad block header: %v", ErrCorrupt, herr))
				}
				return nil, sectionErr(name, fmt.Errorf("%w: block claims rows [%d,%d) (have %d/%d rows, %d payload bytes)",
					ErrCorrupt, lo, lo+count, rowsDone, n, len(payload)))
			}
			if checksumBad {
				rep.Damaged = append(rep.Damaged, name)
				damagedSpans = append(damagedSpans, [2]int{rowsDone, rowsDone + count})
			}
			wbs = append(wbs, waveBlock{lo: rowsDone, hi: rowsDone + count, payload: payload, skip: checksumBad})
			rowsDone += count
		}
		growColumns(st, rowsDone)
		derr := par.EachShardErr(len(wbs), workers, func(_ context.Context, lo, hi int) error {
			for i := lo; i < hi; i++ {
				if wbs[i].skip {
					continue
				}
				if err := decodeBlock(wbs[i].payload, wbs[i].lo, st); err != nil {
					if repair {
						wbs[i].failed = true
						continue
					}
					return sectionErr(fmt.Sprintf("column block %d", idx+i), err)
				}
			}
			return nil
		})
		if derr != nil {
			return nil, derr
		}
		for i := range wbs {
			if wbs[i].failed {
				zeroColumns(st, wbs[i].lo, wbs[i].hi)
				rep.Damaged = append(rep.Damaged, fmt.Sprintf("column block %d", idx+i))
				damagedSpans = append(damagedSpans, [2]int{wbs[i].lo, wbs[i].hi})
			}
		}
	}
	if rowsDone != int(n) {
		if !repair {
			return nil, sectionErr("column blocks", fmt.Errorf("%w: blocks cover %d of %d rows", ErrCorrupt, rowsDone, n))
		}
		// The meta row count is a claim, not evidence: rows backed by
		// decoded blocks are input-bounded, but this tail fill is not, so
		// cap it — otherwise a forged count repair-"recovers" into an
		// arbitrarily large zeroed store.
		if int(n)-rowsDone > repairMaxFillRows {
			return nil, sectionErr("column blocks", fmt.Errorf("%w: %d of %d claimed rows missing, beyond repair", ErrCorrupt, int(n)-rowsDone, n))
		}
		growColumns(st, int(n))
		damagedSpans = append(damagedSpans, [2]int{rowsDone, int(n)})
		if len(rep.Damaged) == 0 || !stopped {
			rep.Damaged = append(rep.Damaged, "column blocks")
		}
	}

	st.rows = int(n)
	rebuildBatchSpans(st, damagedSpans)
	return st, nil
}

// rebuildBatchSpans repairs the batch column over zero-filled spans:
// zeroed rows carry batch ID zero, which would break the range-partition
// invariant, so their batch IDs are rebuilt from the range table.
func rebuildBatchSpans(st *Store, damagedSpans [][2]int) {
	for _, sp := range damagedSpans {
		for b, rr := range st.ranges {
			lo, hi := max(int(rr.Lo), sp[0]), min(int(rr.Hi), sp[1])
			for i := lo; i < hi; i++ {
				st.batch[i] = uint32(b)
			}
		}
	}
}

// growColumns extends every column array to n rows (zero-filled).
func growColumns(st *Store, n int) {
	st.batch = grown(st.batch, n)
	st.taskType = grown(st.taskType, n)
	st.item = grown(st.item, n)
	st.worker = grown(st.worker, n)
	st.start = grown(st.start, n)
	st.end = grown(st.end, n)
	st.trust = grown(st.trust, n)
	st.answer = grown(st.answer, n)
}

// zeroColumns clears rows [lo, hi) of every column.
func zeroColumns(st *Store, lo, hi int) {
	for i := lo; i < hi; i++ {
		st.batch[i] = 0
		st.taskType[i] = 0
		st.item[i] = 0
		st.worker[i] = 0
		st.start[i] = 0
		st.end[i] = 0
		st.trust[i] = 0
		st.answer[i] = 0
	}
}

func decodeProvenance(payload []byte) (*Provenance, error) {
	sr := &sliceReader{buf: payload}
	var p Provenance
	var err error
	if p.ConfigHash, err = getUvarint(sr); err != nil {
		return nil, sectionErr("provenance", asTruncated(err))
	}
	if p.Seed, err = getUvarint(sr); err != nil {
		return nil, sectionErr("provenance", asTruncated(err))
	}
	tl, err := getUvarint(sr)
	if err != nil {
		return nil, sectionErr("provenance", asTruncated(err))
	}
	if tl > maxToolLen || int(tl) != sr.remaining() {
		return nil, sectionErr("provenance", fmt.Errorf("%w: bad tool string length %d", ErrCorrupt, tl))
	}
	p.Tool = string(sr.buf[sr.pos:])
	return &p, nil
}

// decodeSegments decodes the segment table, bounding the claimed count
// against the payload bytes actually present (each entry needs at least
// four) — the remaining-input bound that replaced the old batch-count
// heuristic — and enforcing the same layout invariants Validate checks.
func decodeSegments(payload []byte, ns, n, nb int) ([]SegmentInfo, error) {
	if ns == 0 {
		if len(payload) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(payload))
		}
		return nil, nil
	}
	if ns*4 > len(payload) {
		return nil, fmt.Errorf("%w: %d segments cannot fit in %d bytes", ErrCorrupt, ns, len(payload))
	}
	sr := &sliceReader{buf: payload}
	segs := make([]SegmentInfo, ns)
	rowOff, batchOff := 0, uint32(0)
	for i := range segs {
		var v [4]uint64
		for j := range v {
			var err error
			if v[j], err = getUvarint(sr); err != nil {
				return nil, asTruncated(err)
			}
			if v[j] > math.MaxInt32 {
				return nil, fmt.Errorf("%w: segment %d field overflow", ErrCorrupt, i)
			}
		}
		si := SegmentInfo{
			RowLo: int(v[0]), RowHi: int(v[1]),
			BatchLo: uint32(v[2]), BatchHi: uint32(v[3]),
		}
		if si.RowLo != rowOff || si.RowHi < si.RowLo || si.RowHi > n {
			return nil, fmt.Errorf("%w: segment %d rows [%d,%d) not contiguous at %d", ErrCorrupt, i, si.RowLo, si.RowHi, rowOff)
		}
		if si.BatchLo < batchOff || si.BatchHi < si.BatchLo || int(si.BatchHi) > nb {
			return nil, fmt.Errorf("%w: segment %d batch interval [%d,%d) invalid", ErrCorrupt, i, si.BatchLo, si.BatchHi)
		}
		rowOff, batchOff = si.RowHi, si.BatchHi
		segs[i] = si
	}
	if rowOff != n {
		return nil, fmt.Errorf("%w: segments cover %d of %d rows", ErrCorrupt, rowOff, n)
	}
	if sr.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, sr.remaining())
	}
	return segs, nil
}

// encodeZone writes one zone map: the integer column bounds as uvarints,
// the time bounds zig-zag coded, trust as fixed-width floats, then the
// length-prefixed distinct sets. Shared by the snapshot zone section and
// the manifest's per-shard zones.
func encodeZone(b *bytes.Buffer, z *ZoneMap) {
	putUvarint(b, uint64(z.Rows))
	for _, v := range []uint32{z.TaskTypeMin, z.TaskTypeMax, z.ItemMin, z.ItemMax,
		z.WorkerMin, z.WorkerMax, z.AnswerMin, z.AnswerMax} {
		putUvarint(b, uint64(v))
	}
	for _, v := range []int64{z.StartMin, z.StartMax, z.EndMin, z.EndMax} {
		putUvarint(b, zigzag(v))
	}
	putFloats(b, []float32{z.TrustMin, z.TrustMax})
	for _, set := range [][]uint32{z.TaskTypes, z.Answers} {
		putUvarint(b, uint64(len(set)))
		putUvarints(b, set)
	}
}

// encodeZones writes one zone map per segment.
func encodeZones(b *bytes.Buffer, zones []ZoneMap) {
	for i := range zones {
		encodeZone(b, &zones[i])
	}
}

// decodeZones decodes one zone map per segment, enforcing the invariants
// pruning relies on: row counts match the segment table, bounds are
// ordered, and the distinct sets are small, strictly ascending, and inside
// the column bounds.
func decodeZones(payload []byte, segs []SegmentInfo) ([]ZoneMap, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("%w: zone maps without a segment table", ErrCorrupt)
	}
	sr := &sliceReader{buf: payload}
	zones := make([]ZoneMap, len(segs))
	for i := range zones {
		z, err := decodeZone(sr, segs[i].Rows(), i)
		if err != nil {
			return nil, err
		}
		zones[i] = z
	}
	if sr.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, sr.remaining())
	}
	return zones, nil
}

// decodeZone decodes one zone map, enforcing the invariants pruning
// relies on: the row count matches wantRows, bounds are ordered, and the
// distinct sets are small, strictly ascending, and inside the column
// bounds. The index i only labels errors.
func decodeZone(sr *sliceReader, wantRows, i int) (ZoneMap, error) {
	var z ZoneMap
	rows, err := getUvarint(sr)
	if err != nil {
		return z, asTruncated(err)
	}
	if int(rows) != wantRows {
		return z, fmt.Errorf("%w: zone map %d covers %d rows, expected %d", ErrCorrupt, i, rows, wantRows)
	}
	z.Rows = int(rows)
	u32s := [...]*uint32{&z.TaskTypeMin, &z.TaskTypeMax, &z.ItemMin, &z.ItemMax,
		&z.WorkerMin, &z.WorkerMax, &z.AnswerMin, &z.AnswerMax}
	for _, p := range u32s {
		v, err := getUvarint(sr)
		if err != nil {
			return z, asTruncated(err)
		}
		if v > math.MaxUint32 {
			return z, fmt.Errorf("%w: zone map %d field exceeds uint32", ErrCorrupt, i)
		}
		*p = uint32(v)
	}
	i64s := [...]*int64{&z.StartMin, &z.StartMax, &z.EndMin, &z.EndMax}
	for _, p := range i64s {
		v, err := getUvarint(sr)
		if err != nil {
			return z, asTruncated(err)
		}
		*p = unzigzag(v)
	}
	var tr [2]float32
	if err := getFloatsInto(sr, tr[:]); err != nil {
		return z, err
	}
	z.TrustMin, z.TrustMax = tr[0], tr[1]
	if z.Rows > 0 && (z.TaskTypeMin > z.TaskTypeMax || z.ItemMin > z.ItemMax ||
		z.WorkerMin > z.WorkerMax || z.AnswerMin > z.AnswerMax ||
		z.StartMin > z.StartMax || z.EndMin > z.EndMax || z.TrustMin > z.TrustMax) {
		return z, fmt.Errorf("%w: zone map %d bounds inverted", ErrCorrupt, i)
	}
	for si, bounds := range [][2]uint32{{z.TaskTypeMin, z.TaskTypeMax}, {z.AnswerMin, z.AnswerMax}} {
		cnt, err := getUvarint(sr)
		if err != nil {
			return z, asTruncated(err)
		}
		if cnt == 0 {
			continue
		}
		if cnt > zoneEnumCap {
			return z, fmt.Errorf("%w: zone map %d distinct set of %d exceeds cap %d", ErrCorrupt, i, cnt, zoneEnumCap)
		}
		set, err := getUvarints(sr, int(cnt))
		if err != nil {
			return z, err
		}
		for j, v := range set {
			if (j > 0 && v <= set[j-1]) || v < bounds[0] || v > bounds[1] {
				return z, fmt.Errorf("%w: zone map %d distinct set not ascending within bounds", ErrCorrupt, i)
			}
		}
		if si == 0 {
			z.TaskTypes = set
		} else {
			z.Answers = set
		}
	}
	return z, nil
}

// decodeRanges decodes the batch range table with the same
// remaining-input bound (each entry needs at least two bytes).
func decodeRanges(payload []byte, nb, n int) ([]rowRange, error) {
	if nb*2 > len(payload) {
		return nil, fmt.Errorf("%w: %d ranges cannot fit in %d bytes", ErrCorrupt, nb, len(payload))
	}
	sr := &sliceReader{buf: payload}
	ranges := make([]rowRange, nb)
	for i := range ranges {
		lo, err := getUvarint(sr)
		if err != nil {
			return nil, asTruncated(err)
		}
		hi, err := getUvarint(sr)
		if err != nil {
			return nil, asTruncated(err)
		}
		if lo > hi || hi > uint64(n) {
			return nil, fmt.Errorf("%w: batch %d range [%d,%d) invalid for %d rows", ErrCorrupt, i, lo, hi, n)
		}
		ranges[i] = rowRange{Lo: int32(lo), Hi: int32(hi)}
	}
	if sr.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, sr.remaining())
	}
	return ranges, nil
}
