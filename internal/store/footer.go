package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// The footer offset index: compressed (encoded-block) v3 snapshots end
// with a secFooter section indexing everything written before it, plus a
// fixed 16-byte trailer locating that section from the end of the file.
// A random-access reader (see dataset.go) reads the trailer, then the
// footer, and from there can fetch any section — or any single column of
// any column block — with one exact byte-range read, without streaming
// the file. The streaming reader verifies and skips it; the footer is
// derived data, so a damaged one costs repair mode nothing.
//
// Footer payload layout (all uvarints unless noted):
//
//	nsecs, then per section (write order):
//	    kind byte, absolute offset of the 9-byte section header, payload len
//	nblocks, then per encoded column block (block order):
//	    absolute offset of the block payload (past its section header)
//	    length of the rows uvarint prefix
//	    8 × { column byte length, uint32 LE CRC32 (IEEE) of those bytes }
//
// Block columns appear in disk order (batch, taskType, item, worker,
// answer, start, end-offset, trust — see serializeEncBlock); a column's
// offset is the payload offset plus the rows prefix plus the lengths of
// the columns before it.
//
// Trailer layout (16 bytes, not a framed section):
//
//	uint64 LE absolute offset of the secFooter section header
//	uint32 LE footer payload length
//	uint32 LE trailer magic ("FOOT")
const footerMagic = 0x544F4F46 // "FOOT" little-endian on disk

// footerTrailerLen is the fixed size of the end-of-file trailer.
const footerTrailerLen = 16

// maxFooterSecs bounds the section directory; v3 writes at most five
// indexed sections (meta, provenance, segments, ranges, zones).
const maxFooterSecs = 64

// footerBlockMinBytes is the least bytes one encoded block directory
// entry can occupy (two 1-byte uvarints plus eight 1-byte lengths with
// 4-byte CRCs) — the remaining-input bound on the claimed block count.
const footerBlockMinBytes = 2 + 8*5

// footerSec locates one framed section.
type footerSec struct {
	kind byte
	off  int64 // absolute offset of the section header
	len  int64 // payload length
}

// footerBlock locates one encoded column block's payload and its
// per-column extents, in disk column order.
type footerBlock struct {
	payloadOff int64 // absolute offset of the block payload
	rowsLen    int64 // bytes of the leading rows uvarint
	colLen     [8]int64
	colCRC     [8]uint32
}

// colOff returns the absolute offset of disk column c within the block.
func (fb *footerBlock) colOff(c int) int64 {
	off := fb.payloadOff + fb.rowsLen
	for i := 0; i < c; i++ {
		off += fb.colLen[i]
	}
	return off
}

// end returns the absolute offset just past the block payload.
func (fb *footerBlock) end() int64 { return fb.colOff(8) }

// footerIndex is the decoded footer section.
type footerIndex struct {
	secs   []footerSec
	blocks []footerBlock
}

// sec returns the directory entry for a section kind, if present.
func (fi *footerIndex) sec(kind byte) (footerSec, bool) {
	for _, s := range fi.secs {
		if s.kind == kind {
			return s, true
		}
	}
	return footerSec{}, false
}

// encodeFooter serializes the footer index as a section payload.
func encodeFooter(b *bytes.Buffer, fi *footerIndex) {
	putUvarint(b, uint64(len(fi.secs)))
	for _, s := range fi.secs {
		b.WriteByte(s.kind)
		putUvarint(b, uint64(s.off))
		putUvarint(b, uint64(s.len))
	}
	putUvarint(b, uint64(len(fi.blocks)))
	for i := range fi.blocks {
		fb := &fi.blocks[i]
		putUvarint(b, uint64(fb.payloadOff))
		putUvarint(b, uint64(fb.rowsLen))
		var crc [4]byte
		for c := 0; c < 8; c++ {
			putUvarint(b, uint64(fb.colLen[c]))
			binary.LittleEndian.PutUint32(crc[:], fb.colCRC[c])
			b.Write(crc[:])
		}
	}
}

// decodeFooter parses a footer section payload, bounding every claimed
// count against the bytes actually present.
func decodeFooter(payload []byte) (*footerIndex, error) {
	sr := &sliceReader{buf: payload}
	nsecs, err := getUvarint(sr)
	if err != nil {
		return nil, asTruncated(err)
	}
	if nsecs > maxFooterSecs || int(nsecs)*3 > sr.remaining() {
		return nil, fmt.Errorf("%w: footer claims %d sections", ErrCorrupt, nsecs)
	}
	fi := &footerIndex{secs: make([]footerSec, nsecs)}
	for i := range fi.secs {
		kind, err := sr.ReadByte()
		if err != nil {
			return nil, asTruncated(err)
		}
		off, err := getUvarint(sr)
		if err != nil {
			return nil, asTruncated(err)
		}
		length, err := getUvarint(sr)
		if err != nil {
			return nil, asTruncated(err)
		}
		if off > math.MaxInt64/2 || length > math.MaxUint32 {
			return nil, fmt.Errorf("%w: footer section %d extent overflow", ErrCorrupt, i)
		}
		fi.secs[i] = footerSec{kind: kind, off: int64(off), len: int64(length)}
	}
	nblocks, err := getUvarint(sr)
	if err != nil {
		return nil, asTruncated(err)
	}
	if int64(nblocks)*footerBlockMinBytes > int64(sr.remaining()) {
		return nil, fmt.Errorf("%w: footer claims %d blocks in %d bytes", ErrCorrupt, nblocks, sr.remaining())
	}
	fi.blocks = make([]footerBlock, nblocks)
	for i := range fi.blocks {
		fb := &fi.blocks[i]
		off, err := getUvarint(sr)
		if err != nil {
			return nil, asTruncated(err)
		}
		rowsLen, err := getUvarint(sr)
		if err != nil {
			return nil, asTruncated(err)
		}
		if off > math.MaxInt64/2 || rowsLen > 10 {
			return nil, fmt.Errorf("%w: footer block %d extent overflow", ErrCorrupt, i)
		}
		fb.payloadOff, fb.rowsLen = int64(off), int64(rowsLen)
		for c := 0; c < 8; c++ {
			cl, err := getUvarint(sr)
			if err != nil {
				return nil, asTruncated(err)
			}
			if cl > math.MaxUint32 {
				return nil, fmt.Errorf("%w: footer block %d column length overflow", ErrCorrupt, i)
			}
			fb.colLen[c] = int64(cl)
			crc, err := sr.take(4)
			if err != nil {
				return nil, err
			}
			fb.colCRC[c] = binary.LittleEndian.Uint32(crc)
		}
	}
	if sr.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, sr.remaining())
	}
	return fi, nil
}

// consumeFooter reads and verifies the footer section and trailer from
// the stream position where the footer must start. Strict loads require
// a consistent footer; in repair mode any damage is recorded and
// tolerated — the footer indexes data the caller already decoded.
func consumeFooter(cr *countingReader, nblocks int, repair bool, rep *LoadReport, scratch *[]byte) error {
	footOff := cr.n
	var tr [footerTrailerLen]byte
	damage := func(err error) error {
		if !repair {
			return err
		}
		rep.Damaged = append(rep.Damaged, "footer index")
		return nil
	}
	payload, err := readSection(cr, secFooter, "footer index", scratch)
	if err != nil {
		if errors.Is(err, ErrTruncated) || payload == nil {
			// Framing lost: nothing more to consume on this stream.
			return damage(err)
		}
		// Checksum damage: the payload was fully read, so the trailer can
		// still be consumed to keep the byte count honest.
		io.ReadFull(cr, tr[:])
		return damage(err)
	}
	fi, err := decodeFooter(payload)
	if err != nil {
		io.ReadFull(cr, tr[:])
		return damage(sectionErr("footer index", err))
	}
	if _, err := io.ReadFull(cr, tr[:]); err != nil {
		return damage(sectionErr("footer trailer", asTruncated(err)))
	}
	off := binary.LittleEndian.Uint64(tr[0:8])
	plen := binary.LittleEndian.Uint32(tr[8:12])
	magic := binary.LittleEndian.Uint32(tr[12:16])
	if magic != footerMagic || off != uint64(footOff) || int(plen) != len(payload) || len(fi.blocks) != nblocks {
		return damage(sectionErr("footer trailer", fmt.Errorf("%w: trailer does not match footer", ErrCorrupt)))
	}
	return nil
}
