package store

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"crowdscope/internal/model"
)

// TestZoneMapSealMatchesRecompute: the zone map sealed into a segment (and
// carried into the assembled store) equals a from-scratch recomputation
// over the assembled columns.
func TestZoneMapSealMatchesRecompute(t *testing.T) {
	s := fixtureStore(t)
	segs := s.Segments()
	if len(s.zones) != len(segs) {
		t.Fatalf("assembled store has %d zones for %d segments", len(s.zones), len(segs))
	}
	for i, si := range segs {
		want := computeZoneMap(s.taskType, s.item, s.worker, s.answer, s.start, s.end, s.trust, si.RowLo, si.RowHi)
		if !reflect.DeepEqual(s.zones[i], want) {
			t.Errorf("segment %d sealed zone %+v != recomputed %+v", i, s.zones[i], want)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestZoneMapLazyRecompute: a direct-append store (no sealed segments) and
// a legacy-loaded store compute zone maps on demand over the implicit
// segment layout.
func TestZoneMapLazyRecompute(t *testing.T) {
	fixture := fixtureStore(t)
	s := New(fixture.NumBatches())
	for b := 0; b < fixture.NumBatches(); b++ {
		lo, hi := fixture.BatchRange(uint32(b))
		if lo == hi {
			continue
		}
		s.BeginBatch(uint32(b))
		for i := lo; i < hi; i++ {
			s.Append(fixture.Row(i))
		}
	}
	zones := s.ZoneMaps()
	if len(zones) != 1 {
		t.Fatalf("monolithic store has %d zones, want 1", len(zones))
	}
	want := computeZoneMap(s.taskType, s.item, s.worker, s.answer, s.start, s.end, s.trust, 0, s.Len())
	if !reflect.DeepEqual(zones[0], want) {
		t.Errorf("lazy zone %+v != recomputed %+v", zones[0], want)
	}
	// Mutation invalidates the cached zones.
	s.BeginBatch(0)
	if len(s.zones) != 0 {
		t.Error("mutation did not drop cached zone maps")
	}
}

// TestZoneMapEnumSetOverflow: more than zoneEnumCap distinct values in an
// enum column degrades the set to nil while min/max stay exact.
func TestZoneMapEnumSetOverflow(t *testing.T) {
	b := NewBuilder(0, 1)
	b.BeginBatch(0)
	for i := 0; i < zoneEnumCap+5; i++ {
		b.Append(model.Instance{Batch: 0, TaskType: uint32(i % 3), Answer: uint32(1000 - i), Start: 10, End: 20})
	}
	z := b.Seal().Zone()
	if z.Answers != nil {
		t.Errorf("answer set survived overflow: %v", z.Answers)
	}
	if z.AnswerMin != uint32(1000-(zoneEnumCap+4)) || z.AnswerMax != 1000 {
		t.Errorf("answer bounds [%d,%d] wrong", z.AnswerMin, z.AnswerMax)
	}
	if want := []uint32{0, 1, 2}; !reflect.DeepEqual(z.TaskTypes, want) {
		t.Errorf("task-type set = %v, want %v", z.TaskTypes, want)
	}
}

// TestZoneMapSnapshotRoundTrip: zone maps written into a v3 snapshot
// survive a strict load bit-for-bit — the loaded store trusts the
// persisted section instead of rescanning.
func TestZoneMapSnapshotRoundTrip(t *testing.T) {
	s := fixtureStore(t)
	var buf bytes.Buffer
	if _, err := s.WriteSnapshot(&buf, WriteOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	var got Store
	if _, err := got.ReadSnapshot(bytes.NewReader(buf.Bytes()), LoadOptions{}); err != nil {
		t.Fatalf("strict load: %v", err)
	}
	if len(got.zones) != len(s.zones) {
		t.Fatalf("strict load installed %d zones, want %d", len(got.zones), len(s.zones))
	}
	if !reflect.DeepEqual(got.zones, s.zones) {
		t.Errorf("zones after round trip differ:\n got %+v\nwant %+v", got.zones, s.zones)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate after round trip: %v", err)
	}
}

// TestZoneMapRepairRecomputes: repair mode never trusts the persisted
// zone-map section — even on an undamaged snapshot the zones are dropped
// and recomputed from the loaded columns on demand.
func TestZoneMapRepairRecomputes(t *testing.T) {
	s := fixtureStore(t)
	var buf bytes.Buffer
	if _, err := s.WriteSnapshot(&buf, WriteOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	var got Store
	rep, err := got.ReadSnapshot(bytes.NewReader(buf.Bytes()), LoadOptions{Mode: LoadRepair})
	if err != nil {
		t.Fatalf("repair load: %v", err)
	}
	if len(rep.Damaged) != 0 {
		t.Fatalf("clean snapshot reported damage: %v", rep.Damaged)
	}
	if len(got.zones) != 0 {
		t.Fatal("repair mode trusted the persisted zone maps")
	}
	if zones := got.ZoneMaps(); !reflect.DeepEqual(zones, s.ZoneMaps()) {
		t.Errorf("recomputed zones differ:\n got %+v\nwant %+v", zones, s.ZoneMaps())
	}
}

// TestZoneMapDamagedSection: a bit-flipped zone-map section fails a strict
// load with a checksum error naming the section, while repair mode records
// the damage and recomputes correct zones from the (intact) column data.
func TestZoneMapDamagedSection(t *testing.T) {
	s := fixtureStore(t)
	var buf bytes.Buffer
	if _, err := s.WriteSnapshot(&buf, WriteOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	sec := findSection(t, parseSections(t, raw), secZones, 0)
	raw[sec.payloadOff] ^= 0x40

	var strict Store
	_, err := strict.ReadSnapshot(bytes.NewReader(raw), LoadOptions{})
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("strict load error = %v, want ErrChecksum", err)
	}
	if strict.Len() != 0 {
		t.Fatal("strict load populated the store despite the error")
	}

	var repaired Store
	rep, err := repaired.ReadSnapshot(bytes.NewReader(raw), LoadOptions{Mode: LoadRepair})
	if err != nil {
		t.Fatalf("repair load: %v", err)
	}
	if len(rep.Damaged) != 1 || rep.Damaged[0] != "zone maps" {
		t.Fatalf("damaged = %v, want [zone maps]", rep.Damaged)
	}
	compareStores(t, s, &repaired, true)
	if !reflect.DeepEqual(repaired.ZoneMaps(), s.ZoneMaps()) {
		t.Error("recomputed zones differ after zone-section damage")
	}
}

// TestZoneMapForgedRowsStrict: a zone map whose row count disagrees with
// the segment table is rejected by a strict load even when its checksum is
// valid — persisted pruning metadata must be structurally consistent.
func TestZoneMapForgedRowsStrict(t *testing.T) {
	s := fixtureStore(t)
	var buf bytes.Buffer
	if _, err := s.WriteSnapshot(&buf, WriteOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	sec := findSection(t, parseSections(t, raw), secZones, 0)
	raw[sec.payloadOff]++ // first zone's row-count varint (small, single byte)
	refreshCRC(raw, sec)

	var st Store
	_, err := st.ReadSnapshot(bytes.NewReader(raw), LoadOptions{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict load error = %v, want ErrCorrupt", err)
	}
}
