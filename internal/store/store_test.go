package store

import (
	"bytes"
	"testing"

	"crowdscope/internal/model"
)

func sampleStore() *Store {
	s := New(3)
	s.BeginBatch(0)
	s.Append(model.Instance{Batch: 0, TaskType: 10, Item: 0, Worker: 100, Start: 1000, End: 1100, Trust: 0.9, Answer: 7})
	s.Append(model.Instance{Batch: 0, TaskType: 10, Item: 0, Worker: 101, Start: 1050, End: 1200, Trust: 0.8, Answer: 7})
	s.Append(model.Instance{Batch: 0, TaskType: 10, Item: 1, Worker: 100, Start: 2000, End: 2050, Trust: 0.9, Answer: 9})
	s.BeginBatch(2)
	s.Append(model.Instance{Batch: 2, TaskType: 11, Item: 0, Worker: 102, Start: 5000, End: 5300, Trust: 0.7, Answer: 3})
	return s
}

func TestAppendAndRow(t *testing.T) {
	s := sampleStore()
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	row := s.Row(1)
	if row.Worker != 101 || row.Answer != 7 || row.Trust != 0.8 {
		t.Errorf("Row(1) = %+v", row)
	}
}

func TestBatchRanges(t *testing.T) {
	s := sampleStore()
	lo, hi := s.BatchRange(0)
	if lo != 0 || hi != 3 {
		t.Errorf("batch 0 range [%d,%d)", lo, hi)
	}
	lo, hi = s.BatchRange(1)
	if lo != hi {
		t.Errorf("batch 1 should be empty: [%d,%d)", lo, hi)
	}
	lo, hi = s.BatchRange(2)
	if lo != 3 || hi != 4 {
		t.Errorf("batch 2 range [%d,%d)", lo, hi)
	}
	// Out of range.
	lo, hi = s.BatchRange(99)
	if lo != 0 || hi != 0 {
		t.Error("out-of-range batch should be empty")
	}
}

func TestBatchRows(t *testing.T) {
	s := sampleStore()
	var rows []int
	s.BatchRows(0, func(r int) { rows = append(rows, r) })
	if len(rows) != 3 || rows[0] != 0 || rows[2] != 2 {
		t.Errorf("BatchRows = %v", rows)
	}
}

func TestWorkerIndex(t *testing.T) {
	s := sampleStore()
	rows := s.WorkerRows(100)
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 {
		t.Errorf("worker 100 rows = %v", rows)
	}
	if got := s.DistinctWorkers(); got != 3 {
		t.Errorf("DistinctWorkers = %d", got)
	}
	if rows := s.WorkerRows(999); rows != nil {
		t.Errorf("unknown worker rows = %v", rows)
	}
}

func TestEachWorkerOrdered(t *testing.T) {
	s := sampleStore()
	var order []uint32
	s.EachWorker(func(id uint32, rows []int32) { order = append(order, id) })
	if len(order) != 3 || order[0] != 100 || order[2] != 102 {
		t.Errorf("EachWorker order = %v", order)
	}
}

func TestIndexInvalidatedByAppend(t *testing.T) {
	s := sampleStore()
	_ = s.WorkerRows(100)
	s.BeginBatch(1)
	s.Append(model.Instance{Batch: 1, TaskType: 10, Item: 0, Worker: 100, Start: 1, End: 2})
	if got := len(s.WorkerRows(100)); got != 3 {
		t.Errorf("stale index: worker 100 rows = %d", got)
	}
}

func TestValidate(t *testing.T) {
	s := sampleStore()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid store flagged: %v", err)
	}
	// Corrupt: end before start.
	s.end[0] = s.start[0] - 1
	if err := s.Validate(); err == nil {
		t.Error("inverted interval not caught")
	}
	s.end[0] = s.start[0] + 100
	// Corrupt: range points at wrong batch.
	s.batch[0] = 2
	if err := s.Validate(); err == nil {
		t.Error("range/batch mismatch not caught")
	}
}

func TestBeginBatchGrowsRangeTable(t *testing.T) {
	s := New(1)
	s.BeginBatch(10)
	s.Append(model.Instance{Batch: 10, Start: 1, End: 2})
	if s.NumBatches() != 11 {
		t.Errorf("NumBatches = %d", s.NumBatches())
	}
	lo, hi := s.BatchRange(10)
	if hi-lo != 1 {
		t.Errorf("grown batch range [%d,%d)", lo, hi)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sampleStore()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	var back Store
	if _, err := back.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("round-trip length %d vs %d", back.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if s.Row(i) != back.Row(i) {
			t.Fatalf("row %d differs: %+v vs %+v", i, s.Row(i), back.Row(i))
		}
	}
	if back.NumBatches() != s.NumBatches() {
		t.Error("range table size differs")
	}
	for b := 0; b < s.NumBatches(); b++ {
		alo, ahi := s.BatchRange(uint32(b))
		blo, bhi := back.BatchRange(uint32(b))
		if alo != blo || ahi != bhi {
			t.Errorf("batch %d range differs", b)
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("restored store invalid: %v", err)
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	s := New(0)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo empty: %v", err)
	}
	var back Store
	if _, err := back.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadFrom empty: %v", err)
	}
	if back.Len() != 0 {
		t.Error("empty store round trip gained rows")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	var s Store
	if _, err := s.ReadFrom(bytes.NewReader([]byte("not a snapshot at all........"))); err == nil {
		t.Error("garbage accepted")
	}
	// Truncated valid prefix.
	good := sampleStore()
	var buf bytes.Buffer
	good.WriteTo(&buf)
	var s2 Store
	if _, err := s2.ReadFrom(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestSnapshotCompression(t *testing.T) {
	// Delta-varint coding should beat fixed-width for realistic rows.
	s := New(100)
	for b := uint32(0); b < 100; b++ {
		s.BeginBatch(b)
		base := int64(1_400_000_000) + int64(b)*86400
		for i := 0; i < 50; i++ {
			s.Append(model.Instance{
				Batch: b, TaskType: b % 7, Item: uint32(i), Worker: uint32(i % 13),
				Start: base + int64(i*60), End: base + int64(i*60+45),
				Trust: 0.9, Answer: 1,
			})
		}
	}
	var buf bytes.Buffer
	s.WriteTo(&buf)
	fixedWidth := s.Len() * (4 + 4 + 4 + 4 + 8 + 8 + 4 + 4)
	if buf.Len() >= fixedWidth {
		t.Errorf("snapshot %dB not smaller than fixed-width %dB", buf.Len(), fixedWidth)
	}
}

func BenchmarkAppend(b *testing.B) {
	s := New(1)
	s.BeginBatch(0)
	in := model.Instance{Batch: 0, TaskType: 1, Item: 2, Worker: 3, Start: 100, End: 200, Trust: 0.9, Answer: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(in)
	}
}

func BenchmarkColumnScan(b *testing.B) {
	s := New(1)
	s.BeginBatch(0)
	for i := 0; i < 1_000_000; i++ {
		s.Append(model.Instance{Batch: 0, Start: int64(i), End: int64(i + 50)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := int64(0)
		for _, v := range s.Starts() {
			total += v
		}
		_ = total
	}
}

func BenchmarkRowScan(b *testing.B) {
	s := New(1)
	s.BeginBatch(0)
	for i := 0; i < 1_000_000; i++ {
		s.Append(model.Instance{Batch: 0, Start: int64(i), End: int64(i + 50)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := int64(0)
		for r := 0; r < s.Len(); r++ {
			total += s.Row(r).Start
		}
		_ = total
	}
}
