package store

import (
	"crowdscope/internal/par"
)

// zoneEnumCap bounds the distinct-value sets a zone map keeps for the
// enum-like columns (task type, answer). A segment with more distinct
// values than this stores no set and pruning falls back to the min/max
// range; the cap keeps zone maps a few hundred bytes per segment.
const zoneEnumCap = 32

// MergeZoneMaps folds per-segment (or per-shard) zone maps into one
// summary zone: min/max bounds merge, and the enum sets union when every
// contributing zone kept one and the union stays within the cap.
// Zero-row zones are skipped. This is the selectivity-proxy source the
// query planner scores clauses against — a whole store or manifest
// summarized as a single segment-shaped zone.
func MergeZoneMaps(zs []ZoneMap) ZoneMap { return mergeShardZones(zs) }

// A ZoneMap summarizes one segment's column values for scan pruning: the
// per-column min/max, plus the full sorted distinct-value set for the
// enum-like columns when it is small. A query whose predicate cannot
// intersect a segment's zone skips the segment without touching a row —
// at full scale that turns a one-week scan over the 27M-row log into a
// scan of the two segments that cover the week.
//
// Zone maps are computed when a segment is sealed, carried through
// Assemble, persisted in v3 snapshots, and recomputed lazily for stores
// that predate them (direct-append stores, v1/v2 and early-v3 snapshots).
type ZoneMap struct {
	// Rows is the number of rows the zone summarizes; a zone with zero
	// rows matches nothing.
	Rows int

	TaskTypeMin, TaskTypeMax uint32
	ItemMin, ItemMax         uint32
	WorkerMin, WorkerMax     uint32
	AnswerMin, AnswerMax     uint32
	StartMin, StartMax       int64
	EndMin, EndMax           int64
	TrustMin, TrustMax       float32

	// TaskTypes and Answers are the sorted distinct values of their
	// columns when a segment holds at most zoneEnumCap of them; nil when
	// the set overflowed (range pruning still applies).
	TaskTypes []uint32
	Answers   []uint32
}

// enumSet accumulates a small sorted distinct-value set, degrading to nil
// once it exceeds its cap (zoneEnumCap for zone maps, dictMaxEntries for
// the dictionary encoder).
type enumSet struct {
	cap      int
	vals     []uint32
	overflow bool
}

func (e *enumSet) add(v uint32) {
	if e.overflow {
		return
	}
	// Sorted insert; sets this small are cheaper to keep sorted than to
	// hash and sort later.
	lo, hi := 0, len(e.vals)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.vals[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(e.vals) && e.vals[lo] == v {
		return
	}
	if len(e.vals) == e.cap {
		e.vals, e.overflow = nil, true
		return
	}
	e.vals = append(e.vals, 0)
	copy(e.vals[lo+1:], e.vals[lo:])
	e.vals[lo] = v
}

// computeZoneMap summarizes rows [lo, hi) of the given column slices.
func computeZoneMap(taskType, item, worker, answer []uint32, start, end []int64, trust []float32, lo, hi int) ZoneMap {
	z := ZoneMap{Rows: hi - lo}
	if z.Rows == 0 {
		return z
	}
	z.TaskTypeMin, z.TaskTypeMax = taskType[lo], taskType[lo]
	z.ItemMin, z.ItemMax = item[lo], item[lo]
	z.WorkerMin, z.WorkerMax = worker[lo], worker[lo]
	z.AnswerMin, z.AnswerMax = answer[lo], answer[lo]
	z.StartMin, z.StartMax = start[lo], start[lo]
	z.EndMin, z.EndMax = end[lo], end[lo]
	z.TrustMin, z.TrustMax = trust[lo], trust[lo]
	tts, ans := enumSet{cap: zoneEnumCap}, enumSet{cap: zoneEnumCap}
	for i := lo; i < hi; i++ {
		z.TaskTypeMin = min(z.TaskTypeMin, taskType[i])
		z.TaskTypeMax = max(z.TaskTypeMax, taskType[i])
		z.ItemMin = min(z.ItemMin, item[i])
		z.ItemMax = max(z.ItemMax, item[i])
		z.WorkerMin = min(z.WorkerMin, worker[i])
		z.WorkerMax = max(z.WorkerMax, worker[i])
		z.AnswerMin = min(z.AnswerMin, answer[i])
		z.AnswerMax = max(z.AnswerMax, answer[i])
		z.StartMin = min(z.StartMin, start[i])
		z.StartMax = max(z.StartMax, start[i])
		z.EndMin = min(z.EndMin, end[i])
		z.EndMax = max(z.EndMax, end[i])
		z.TrustMin = min(z.TrustMin, trust[i])
		z.TrustMax = max(z.TrustMax, trust[i])
		tts.add(taskType[i])
		ans.add(answer[i])
	}
	z.TaskTypes, z.Answers = tts.vals, ans.vals
	return z
}

// Zone returns the segment's zone map (computed at Seal).
func (g *Segment) Zone() ZoneMap { return g.zone }

// zoneSnapshot reads the current zones slice under the fill mutex, so
// read-only callers (Validate) stay safe alongside a concurrent lazy
// fill.
func (s *Store) zoneSnapshot() []ZoneMap {
	mu := s.fillMutex()
	mu.Lock()
	defer mu.Unlock()
	return s.zones
}

// ZoneMaps returns one zone map per Segments() entry, in segment order.
// Stores whose zones were not sealed in (direct-append stores, pre-zone
// snapshots, repair-mode loads) compute them on first use, in parallel
// over segments. Unlike the store's other lazy indexes, the fill is safe
// under concurrent readers (e.g. parallel query.Run calls on a shared
// store); any other mutation still requires exclusive access.
func (s *Store) ZoneMaps() []ZoneMap {
	segs := s.Segments()
	if len(segs) == 0 {
		return nil
	}
	fs := s.fillRef()
	fs.mu.Lock()
	if len(s.zones) == len(segs) {
		zones := s.zones
		fs.mu.Unlock()
		return zones
	}
	fs.mu.Unlock()
	// Compute outside the shared mutex: ensure takes the per-column
	// guards, which are never acquired while fs.mu is held.
	s.ensure(colMaskAll)
	zones := make([]ZoneMap, len(segs))
	par.EachShard(len(segs), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			zones[i] = computeZoneMap(s.taskType, s.item, s.worker, s.answer, s.start, s.end, s.trust, segs[i].RowLo, segs[i].RowHi)
		}
	})
	fs.mu.Lock()
	if len(s.zones) == len(segs) {
		zones = s.zones // a concurrent fill won; both results are identical
	} else {
		s.zones = zones
	}
	fs.mu.Unlock()
	return zones
}
