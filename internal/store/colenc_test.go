package store

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"crowdscope/internal/model"
	"crowdscope/internal/rng"
)

// randomSegmentedStore builds a random multi-segment store whose columns
// exercise every encoding: sorted batches (RLE), tiny task-type domains
// (dict), clustered starts (FOR), repeated answers (short-run RLE), and
// quantized or continuous trust values.
func randomSegmentedStore(seed uint64) *Store {
	r := rng.New(seed)
	numSegs := 1 + int(r.Uint64n(4))
	batchesPerSeg := 1 + int(r.Uint64n(4))
	nb := numSegs * batchesPerSeg
	quantTrust := r.Uint64n(2) == 0
	segs := make([]*Segment, 0, numSegs)
	for k := 0; k < numSegs; k++ {
		lo, hi := uint32(k*batchesPerSeg), uint32((k+1)*batchesPerSeg)
		b := NewBuilder(lo, hi)
		base := model.Epoch.Unix() + int64(k)*1000000
		for batch := lo; batch < hi; batch++ {
			b.BeginBatch(batch)
			rows := int(r.Uint64n(120))
			answer := uint32(r.Uint64n(1 << 30))
			for i := 0; i < rows; i++ {
				if r.Uint64n(3) == 0 {
					answer = uint32(r.Uint64n(1 << 30)) // runs of ~3
				}
				start := base + int64(r.Uint64n(500000))
				trust := float32(r.Float64())
				if quantTrust {
					trust = float32(r.Uint64n(16)) / 16
				}
				b.Append(model.Instance{
					Batch:    batch,
					TaskType: uint32(r.Uint64n(6)),
					Item:     uint32(r.Uint64n(200)),
					Worker:   uint32(r.Uint64n(5000)),
					Start:    start,
					End:      start + int64(r.Uint64n(4000)),
					Trust:    trust,
					Answer:   answer,
				})
			}
		}
		segs = append(segs, b.Seal())
	}
	s, err := Assemble(nb, segs)
	if err != nil {
		panic(err)
	}
	return s
}

// TestPropertyEncodedRoundTrip: for random stores, every sealed segment
// encoding decodes bit-identically back to the raw columns it was built
// from — per column, including the float32 trust patterns.
func TestPropertyEncodedRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		s := randomSegmentedStore(seed)
		encs := s.Encodings()
		for i, si := range s.Segments() {
			e := &encs[i]
			n := si.Rows()
			if e.Rows != n {
				return false
			}
			if n == 0 {
				continue
			}
			u32 := make([]uint32, n)
			for _, c := range []struct {
				enc *EncodedU32
				raw []uint32
			}{
				{&e.Batch, s.batch[si.RowLo:si.RowHi]},
				{&e.TaskType, s.taskType[si.RowLo:si.RowHi]},
				{&e.Item, s.item[si.RowLo:si.RowHi]},
				{&e.Worker, s.worker[si.RowLo:si.RowHi]},
				{&e.Answer, s.answer[si.RowLo:si.RowHi]},
			} {
				c.enc.DecodeInto(u32)
				for j := range c.raw {
					if u32[j] != c.raw[j] || c.enc.Value(j) != c.raw[j] {
						return false
					}
				}
			}
			i64 := make([]int64, n)
			e.Start.DecodeInto(i64)
			for j, want := range s.start[si.RowLo:si.RowHi] {
				if i64[j] != want {
					return false
				}
			}
			e.EndOff.DecodeInto(i64)
			for j := si.RowLo; j < si.RowHi; j++ {
				if s.start[j]+i64[j-si.RowLo] != s.end[j] {
					return false
				}
			}
			f32 := make([]float32, n)
			e.Trust.DecodeInto(f32)
			for j, want := range s.trust[si.RowLo:si.RowHi] {
				if math.Float32bits(f32[j]) != math.Float32bits(want) {
					return false
				}
			}
			if err := e.validate(n); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEncodedBlockSerializeRoundTrip: serializing a sealed
// segment encoding and decoding the payload reproduces the same column
// values, and the decoder accepts exactly what the writer emits.
func TestPropertyEncodedBlockSerializeRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		s := randomSegmentedStore(seed)
		encs := s.Encodings()
		for i, si := range s.Segments() {
			if si.Rows() == 0 {
				continue
			}
			var buf bytes.Buffer
			serializeEncBlock(&buf, &encs[i])
			back, err := decodeEncBlock(buf.Bytes(), si.Rows())
			if err != nil {
				t.Logf("decode: %v", err)
				return false
			}
			n := si.Rows()
			for j := 0; j < n; j++ {
				row := si.RowLo + j
				if back.Batch.Value(j) != s.batch[row] || back.TaskType.Value(j) != s.taskType[row] ||
					back.Item.Value(j) != s.item[row] || back.Worker.Value(j) != s.worker[row] ||
					back.Answer.Value(j) != s.answer[row] ||
					back.Start.Value(j) != s.start[row] ||
					back.Start.Value(j)+back.EndOff.Value(j) != s.end[row] ||
					math.Float32bits(back.Trust.Value(j)) != math.Float32bits(s.trust[row]) {
					return false
				}
			}
			// Re-serializing the decoded form is byte-identical: the
			// decoder only accepts the canonical encoding.
			var again bytes.Buffer
			serializeEncBlock(&again, &back)
			if !bytes.Equal(buf.Bytes(), again.Bytes()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendAfterEncodedLoad: direct mutation of a store loaded from a
// compressed snapshot must materialize first — an Append extends the
// loaded rows instead of silently orphaning them (regression: Append
// lacked BeginBatch's degrade-to-raw guard and reset a 450-row store to
// one row).
func TestAppendAfterEncodedLoad(t *testing.T) {
	s := randomSegmentedStore(5)
	if s.Len() == 0 {
		t.Fatal("fixture store empty")
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var loaded Store
	if _, err := loaded.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	n := loaded.Len()
	lastBatch := s.Batches()[n-1]
	in := s.Row(n - 1)
	in.Batch = lastBatch
	loaded.Append(in)
	if loaded.Len() != n+1 {
		t.Fatalf("Len after append = %d, want %d", loaded.Len(), n+1)
	}
	for i := 0; i < n; i++ {
		if loaded.Row(i) != s.Row(i) {
			t.Fatalf("row %d lost after append: %+v vs %+v", i, loaded.Row(i), s.Row(i))
		}
	}
	if loaded.Row(n) != in {
		t.Fatalf("appended row = %+v, want %+v", loaded.Row(n), in)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("store invalid after append: %v", err)
	}
}

// TestEncodeChooser pins the encoding each column shape should get.
func TestEncodeChooser(t *testing.T) {
	n := 4096
	sorted := make([]uint32, n)   // long runs -> RLE
	smallDom := make([]uint32, n) // 6 distinct values -> dict
	clustered := make([]uint32, n)
	random := make([]uint32, n)
	r := rng.New(7)
	for i := range sorted {
		sorted[i] = uint32(i / 128)
		smallDom[i] = uint32(r.Uint64n(6))
		clustered[i] = 1_000_000 + uint32(r.Uint64n(2000))
		random[i] = uint32(r.Uint64())
	}
	if e := encodeU32Column(sorted); e.Code != CodeRLE {
		t.Errorf("sorted column encoded as %d, want RLE", e.Code)
	}
	if e := encodeU32Column(smallDom); e.Code != CodeDict {
		t.Errorf("small-domain column encoded as %d, want dict", e.Code)
	} else if len(e.Dict) != 6 || e.Width != 3 {
		t.Errorf("dict shape: %d entries width %d", len(e.Dict), e.Width)
	}
	if e := encodeU32Column(clustered); e.Code != CodeFOR {
		t.Errorf("clustered column encoded as %d, want FOR", e.Code)
	} else if e.Ref != 1_000_000 || e.Width != 11 {
		t.Errorf("FOR shape: ref %d width %d", e.Ref, e.Width)
	}
	if e := encodeU32Column(random); e.Code != CodeFOR && e.Code != CodeRaw {
		t.Errorf("random column encoded as %d", e.Code)
	}

	constant := make([]uint32, n)
	for i := range constant {
		constant[i] = 42
	}
	e := encodeU32Column(constant)
	if e.Code == CodeFOR && (e.Width != 0 || e.Ref != 42) {
		t.Errorf("constant FOR shape: ref %d width %d", e.Ref, e.Width)
	}
	if e.Value(17) != 42 {
		t.Errorf("constant Value = %d", e.Value(17))
	}

	starts := make([]int64, n)
	base := model.Epoch.Unix()
	for i := range starts {
		starts[i] = base + int64(i)*37
	}
	if e := encodeI64Column(starts); e.Code != CodeFOR {
		t.Errorf("timestamps encoded as %d, want FOR", e.Code)
	}
}

// TestRunIndex checks the RLE run binary search on the boundaries.
func TestRunIndex(t *testing.T) {
	e := EncodedU32{Code: CodeRLE, N: 10,
		RunVals: []uint32{5, 9, 5}, RunEnds: []uint32{3, 7, 10}}
	wants := []uint32{5, 5, 5, 9, 9, 9, 9, 5, 5, 5}
	for i, want := range wants {
		if got := e.Value(i); got != want {
			t.Errorf("Value(%d) = %d, want %d", i, got, want)
		}
	}
}

// FuzzDecodeColumnBlock drives the encoded-block reader with arbitrary
// bytes. The committed corpus under testdata/fuzz/FuzzDecodeColumnBlock
// (regenerated with -update-fixtures) holds valid block payloads of every
// encoding plus truncated and bit-flipped variants. The invariants:
// decoding never panics, never allocates beyond a small multiple of the
// input (forged run counts, bit widths and dictionary sizes are bounded
// against the payload before allocation, and row counts are capped), and
// anything that decodes is in canonical form — re-serializing it
// reproduces the accepted payload byte-for-byte.
func FuzzDecodeColumnBlock(f *testing.F) {
	s := fixtureStore(f)
	for i, si := range s.Segments() {
		if si.Rows() == 0 {
			continue
		}
		var buf bytes.Buffer
		serializeEncBlock(&buf, &s.Encodings()[i])
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
		flip := append([]byte(nil), buf.Bytes()...)
		flip[buf.Len()/3] ^= 0x20
		f.Add(flip)
	}
	f.Add([]byte{})
	f.Add([]byte("not a block"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sr := &sliceReader{buf: data}
		claimed, err := getUvarint(sr)
		if err != nil {
			claimed = 0
		}
		rows := int(min(claimed, encBlockMaxRows))
		enc, err := decodeEncBlock(data, rows)
		if err != nil {
			return
		}
		if err := enc.validate(rows); err != nil {
			t.Fatalf("decoded block fails validate: %v", err)
		}
		// Decoded values must be safe to read everywhere.
		for _, i := range []int{0, rows / 2, rows - 1} {
			if i < 0 || i >= rows {
				continue
			}
			enc.Batch.Value(i)
			enc.Start.Value(i)
			enc.EndOff.Value(i)
			enc.Trust.Value(i)
		}
		var again bytes.Buffer
		serializeEncBlock(&again, &enc)
		if !bytes.Equal(data, again.Bytes()) {
			// The only tolerated difference is a non-minimal uvarint in
			// the original input; re-decoding must at least be idempotent.
			back, err := decodeEncBlock(again.Bytes(), rows)
			if err != nil {
				t.Fatalf("re-decode of re-serialized block failed: %v", err)
			}
			var third bytes.Buffer
			serializeEncBlock(&third, &back)
			if !bytes.Equal(again.Bytes(), third.Bytes()) {
				t.Fatal("re-serialization is not idempotent")
			}
		}
	})
}

// TestFuzzCorpusCommitted guards against the committed corpus being
// silently dropped: the fuzz smoke tier in CI is only as good as the
// seeds it starts from.
func TestFuzzCorpusCommitted(t *testing.T) {
	for _, dir := range []string{"FuzzReadFrom", "FuzzDecodeColumnBlock"} {
		entries, err := os.ReadDir(filepath.Join("testdata", "fuzz", dir))
		if err != nil || len(entries) == 0 {
			t.Errorf("committed fuzz corpus %s missing (regenerate with -update-fixtures): %v", dir, err)
		}
	}
}
