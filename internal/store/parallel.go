package store

import (
	"runtime"
	"sync"
)

// ParallelScan splits the row range into contiguous chunks, runs fn over
// each on its own goroutine, and returns the per-chunk results in chunk
// order. Analyses over the 27M-row full-scale log (weekly rollups,
// per-worker sums) are embarrassingly parallel over rows; this is the
// harness for them.
//
// fn receives the [lo, hi) row range of its chunk and must not mutate the
// store.
func ParallelScan[T any](s *Store, workers int, fn func(lo, hi int) T) []T {
	n := s.Len()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n == 0 {
			return nil
		}
		return []T{fn(0, n)}
	}
	out := make([]T, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			out = out[:w]
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			out[w] = fn(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	return out
}

// ParallelSumInt64 sums an int64 column in parallel.
func ParallelSumInt64(s *Store, col []int64, workers int) int64 {
	parts := ParallelScan(s, workers, func(lo, hi int) int64 {
		var t int64
		for _, v := range col[lo:hi] {
			t += v
		}
		return t
	})
	var total int64
	for _, p := range parts {
		total += p
	}
	return total
}

// ParallelCountBy builds a histogram over a uint32 column in parallel
// (e.g. instances per worker or per task type), merging per-chunk maps.
func ParallelCountBy(s *Store, col []uint32, workers int) map[uint32]int64 {
	parts := ParallelScan(s, workers, func(lo, hi int) map[uint32]int64 {
		m := make(map[uint32]int64)
		for _, v := range col[lo:hi] {
			m[v]++
		}
		return m
	})
	total := make(map[uint32]int64)
	for _, part := range parts {
		for k, v := range part {
			total[k] += v
		}
	}
	return total
}
