package store

import (
	"runtime"
	"sync"
)

// ParallelScan splits the row range into contiguous chunks, runs fn over
// each on its own goroutine, and returns the per-chunk results in chunk
// order. Analyses over the 27M-row full-scale log (weekly rollups,
// per-worker sums) are embarrassingly parallel over rows; this is the
// harness for them.
//
// Chunk boundaries are snapped to segment boundaries when one lies near
// the even split point, so scans over an assembled store tend to stay
// within the memory a single generation shard wrote.
//
// fn receives the [lo, hi) row range of its chunk and must not mutate the
// store.
func ParallelScan[T any](s *Store, workers int, fn func(lo, hi int) T) []T {
	n := s.Len()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n == 0 {
			return nil
		}
		return []T{fn(0, n)}
	}
	bounds := s.chunkBounds(workers)
	out := make([]T, len(bounds)-1)
	var wg sync.WaitGroup
	for i := 0; i+1 < len(bounds); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = fn(bounds[i], bounds[i+1])
		}(i)
	}
	wg.Wait()
	return out
}

// chunkBounds returns ascending row boundaries 0 = b0 < b1 < ... = Len()
// defining at most `workers` contiguous chunks. Callers guarantee
// workers >= 2 and Len() > 0. Even split points move to a nearby segment
// boundary when the detour costs less than a quarter chunk of imbalance.
func (s *Store) chunkBounds(workers int) []int {
	n := s.Len()
	chunk := (n + workers - 1) / workers
	bounds := make([]int, 1, workers+1)
	for w := 1; w < workers; w++ {
		b := w * n / workers
		if sb, ok := s.nearestSegmentBoundary(b, chunk/4); ok {
			b = sb
		}
		if b > bounds[len(bounds)-1] && b < n {
			bounds = append(bounds, b)
		}
	}
	return append(bounds, n)
}

// nearestSegmentBoundary returns the segment row boundary closest to
// target when it lies within tol rows, excluding the trivial 0 boundary.
func (s *Store) nearestSegmentBoundary(target, tol int) (int, bool) {
	if len(s.segs) < 2 || tol <= 0 {
		return 0, false
	}
	lo, hi := 0, len(s.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.segs[mid].RowLo < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	best, found := 0, false
	for _, i := range []int{lo - 1, lo} {
		if i <= 0 || i >= len(s.segs) {
			continue
		}
		b := s.segs[i].RowLo
		if d := b - target; d >= -tol && d <= tol {
			if !found || abs(b-target) < abs(best-target) {
				best, found = b, true
			}
		}
	}
	return best, found
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// ParallelScanBatches splits the batch-ID space into contiguous chunks of
// roughly equal row mass, runs fn over each on its own goroutine, and
// returns per-chunk results in chunk order. Per-batch computations
// (metrics, rollups) parallelize over batches rather than rows so one
// batch never straddles two goroutines. Chunk boundaries are snapped to
// segment batch intervals when one is close.
//
// fn receives the [batchLo, batchHi) batch-ID range of its chunk and must
// not mutate the store.
func ParallelScanBatches[T any](s *Store, workers int, fn func(batchLo, batchHi uint32) T) []T {
	nb := s.NumBatches()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nb {
		workers = nb
	}
	if workers <= 1 {
		if nb == 0 {
			return nil
		}
		return []T{fn(0, uint32(nb))}
	}
	// Cumulative row mass per batch prefix steers boundaries toward equal
	// work per chunk; batches are heavily skewed in size.
	cum := make([]int, nb+1)
	for b := 0; b < nb; b++ {
		lo, hi := s.BatchRange(uint32(b))
		cum[b+1] = cum[b] + (hi - lo)
	}
	total := cum[nb]
	bounds := make([]uint32, 1, workers+1)
	for w := 1; w < workers; w++ {
		targetRows := w * total / workers
		// First batch whose prefix mass reaches the target.
		lo, hi := 0, nb
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < targetRows {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		b := uint32(lo)
		if sb, ok := s.nearestSegmentBatchBoundary(b, uint32(nb/(4*workers)+1)); ok {
			b = sb
		}
		if b > bounds[len(bounds)-1] && int(b) < nb {
			bounds = append(bounds, b)
		}
	}
	bounds = append(bounds, uint32(nb))
	out := make([]T, len(bounds)-1)
	var wg sync.WaitGroup
	for i := 0; i+1 < len(bounds); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = fn(bounds[i], bounds[i+1])
		}(i)
	}
	wg.Wait()
	return out
}

// nearestSegmentBatchBoundary mirrors nearestSegmentBoundary in batch-ID
// space.
func (s *Store) nearestSegmentBatchBoundary(target, tol uint32) (uint32, bool) {
	if len(s.segs) < 2 {
		return 0, false
	}
	best, found := uint32(0), false
	for _, si := range s.segs[1:] {
		b := si.BatchLo
		var d uint32
		if b > target {
			d = b - target
		} else {
			d = target - b
		}
		if d <= tol {
			if !found || d < absU32(best, target) {
				best, found = b, true
			}
		}
	}
	return best, found
}

func absU32(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

// ParallelSumInt64 sums an int64 column in parallel.
func ParallelSumInt64(s *Store, col []int64, workers int) int64 {
	parts := ParallelScan(s, workers, func(lo, hi int) int64 {
		var t int64
		for _, v := range col[lo:hi] {
			t += v
		}
		return t
	})
	var total int64
	for _, p := range parts {
		total += p
	}
	return total
}

// ParallelCountBy builds a histogram over a uint32 column in parallel
// (e.g. instances per worker or per task type), merging per-chunk maps.
func ParallelCountBy(s *Store, col []uint32, workers int) map[uint32]int64 {
	parts := ParallelScan(s, workers, func(lo, hi int) map[uint32]int64 {
		m := make(map[uint32]int64)
		for _, v := range col[lo:hi] {
			m[v]++
		}
		return m
	})
	total := make(map[uint32]int64)
	for _, part := range parts {
		for k, v := range part {
			total[k] += v
		}
	}
	return total
}
