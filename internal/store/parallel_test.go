package store

import (
	"testing"

	"crowdscope/internal/model"
)

func bigStore(rows int) *Store {
	s := New(1)
	s.BeginBatch(0)
	for i := 0; i < rows; i++ {
		s.Append(model.Instance{
			Batch: 0, Worker: uint32(i % 97), Start: int64(i), End: int64(i + 10),
		})
	}
	return s
}

func TestParallelScanCoversAllRows(t *testing.T) {
	s := bigStore(10007)
	for _, workers := range []int{1, 2, 4, 16, 10007, 20000} {
		parts := ParallelScan(s, workers, func(lo, hi int) int { return hi - lo })
		total := 0
		for _, p := range parts {
			total += p
		}
		if total != s.Len() {
			t.Errorf("workers=%d covered %d of %d rows", workers, total, s.Len())
		}
	}
}

func TestParallelScanEmpty(t *testing.T) {
	s := New(0)
	parts := ParallelScan(s, 4, func(lo, hi int) int { return hi - lo })
	if len(parts) != 0 {
		t.Errorf("empty store produced %d parts", len(parts))
	}
}

func TestParallelSumMatchesSerial(t *testing.T) {
	s := bigStore(5000)
	serial := int64(0)
	for _, v := range s.Starts() {
		serial += v
	}
	for _, workers := range []int{0, 1, 3, 8} {
		if got := ParallelSumInt64(s, s.Starts(), workers); got != serial {
			t.Errorf("workers=%d sum=%d want %d", workers, got, serial)
		}
	}
}

func TestParallelCountByMatchesSerial(t *testing.T) {
	s := bigStore(5000)
	serial := map[uint32]int64{}
	for _, v := range s.Workers() {
		serial[v]++
	}
	got := ParallelCountBy(s, s.Workers(), 6)
	if len(got) != len(serial) {
		t.Fatalf("key counts differ: %d vs %d", len(got), len(serial))
	}
	for k, v := range serial {
		if got[k] != v {
			t.Errorf("key %d: %d vs %d", k, got[k], v)
		}
	}
}

func TestParallelScanChunkOrder(t *testing.T) {
	s := bigStore(1000)
	parts := ParallelScan(s, 4, func(lo, hi int) int { return lo })
	for i := 1; i < len(parts); i++ {
		if parts[i] <= parts[i-1] {
			t.Fatal("chunk results out of order")
		}
	}
}

func TestParallelScanNonPositiveWorkers(t *testing.T) {
	s := bigStore(1000)
	for _, workers := range []int{0, -1, -42} {
		parts := ParallelScan(s, workers, func(lo, hi int) int { return hi - lo })
		total := 0
		for _, p := range parts {
			total += p
		}
		if total != s.Len() {
			t.Errorf("workers=%d covered %d of %d rows", workers, total, s.Len())
		}
	}
}

func TestParallelScanEmptyAnyWorkers(t *testing.T) {
	s := New(0)
	for _, workers := range []int{-1, 0, 1, 8} {
		if parts := ParallelScan(s, workers, func(lo, hi int) int { return hi - lo }); len(parts) != 0 {
			t.Errorf("workers=%d: empty store produced %d parts", workers, len(parts))
		}
	}
}

func TestParallelScanSingleRow(t *testing.T) {
	s := bigStore(1)
	parts := ParallelScan(s, 8, func(lo, hi int) [2]int { return [2]int{lo, hi} })
	if len(parts) != 1 || parts[0] != [2]int{0, 1} {
		t.Errorf("single-row scan parts = %v", parts)
	}
}

// TestParallelScanSegmented: chunking over an assembled store still covers
// every row exactly once, in order, for worker counts below, at, and above
// the segment count.
func TestParallelScanSegmented(t *testing.T) {
	segs := []*Segment{
		buildSegment(t, 0, 10, 17),
		buildSegment(t, 10, 12, 400),
		buildSegment(t, 12, 30, 3),
		buildSegment(t, 30, 31, 250),
	}
	s, err := Assemble(31, segs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 9, 100} {
		parts := ParallelScan(s, workers, func(lo, hi int) [2]int { return [2]int{lo, hi} })
		next := 0
		for _, p := range parts {
			if p[0] != next || p[1] <= p[0] {
				t.Fatalf("workers=%d: chunk %v not contiguous at %d", workers, p, next)
			}
			next = p[1]
		}
		if next != s.Len() {
			t.Fatalf("workers=%d covered %d of %d rows", workers, next, s.Len())
		}
	}
}

// TestParallelScanBatchesCovers: batch chunks partition the batch space
// and never split one batch across two chunks.
func TestParallelScanBatchesCovers(t *testing.T) {
	segs := []*Segment{
		buildSegment(t, 0, 8, 5),
		buildSegment(t, 8, 20, 2),
	}
	s, err := Assemble(25, segs) // batches 20..24 empty
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 5, 50} {
		parts := ParallelScanBatches(s, workers, func(lo, hi uint32) [2]uint32 { return [2]uint32{lo, hi} })
		next := uint32(0)
		for _, p := range parts {
			if p[0] != next || p[1] <= p[0] {
				t.Fatalf("workers=%d: batch chunk %v not contiguous at %d", workers, p, next)
			}
			next = p[1]
		}
		if next != uint32(s.NumBatches()) {
			t.Fatalf("workers=%d covered %d of %d batches", workers, next, s.NumBatches())
		}
	}
	if parts := ParallelScanBatches(New(0), 4, func(lo, hi uint32) int { return 0 }); len(parts) != 0 {
		t.Errorf("empty store produced %d batch chunks", len(parts))
	}
}

func BenchmarkParallelSum(b *testing.B) {
	s := bigStore(2_000_000)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ParallelSumInt64(s, s.Starts(), 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ParallelSumInt64(s, s.Starts(), 0)
		}
	})
}
