package store

import (
	"testing"

	"crowdscope/internal/model"
)

func bigStore(rows int) *Store {
	s := New(1)
	s.BeginBatch(0)
	for i := 0; i < rows; i++ {
		s.Append(model.Instance{
			Batch: 0, Worker: uint32(i % 97), Start: int64(i), End: int64(i + 10),
		})
	}
	return s
}

func TestParallelScanCoversAllRows(t *testing.T) {
	s := bigStore(10007)
	for _, workers := range []int{1, 2, 4, 16, 10007, 20000} {
		parts := ParallelScan(s, workers, func(lo, hi int) int { return hi - lo })
		total := 0
		for _, p := range parts {
			total += p
		}
		if total != s.Len() {
			t.Errorf("workers=%d covered %d of %d rows", workers, total, s.Len())
		}
	}
}

func TestParallelScanEmpty(t *testing.T) {
	s := New(0)
	parts := ParallelScan(s, 4, func(lo, hi int) int { return hi - lo })
	if len(parts) != 0 {
		t.Errorf("empty store produced %d parts", len(parts))
	}
}

func TestParallelSumMatchesSerial(t *testing.T) {
	s := bigStore(5000)
	serial := int64(0)
	for _, v := range s.Starts() {
		serial += v
	}
	for _, workers := range []int{0, 1, 3, 8} {
		if got := ParallelSumInt64(s, s.Starts(), workers); got != serial {
			t.Errorf("workers=%d sum=%d want %d", workers, got, serial)
		}
	}
}

func TestParallelCountByMatchesSerial(t *testing.T) {
	s := bigStore(5000)
	serial := map[uint32]int64{}
	for _, v := range s.Workers() {
		serial[v]++
	}
	got := ParallelCountBy(s, s.Workers(), 6)
	if len(got) != len(serial) {
		t.Fatalf("key counts differ: %d vs %d", len(got), len(serial))
	}
	for k, v := range serial {
		if got[k] != v {
			t.Errorf("key %d: %d vs %d", k, got[k], v)
		}
	}
}

func TestParallelScanChunkOrder(t *testing.T) {
	s := bigStore(1000)
	parts := ParallelScan(s, 4, func(lo, hi int) int { return lo })
	for i := 1; i < len(parts); i++ {
		if parts[i] <= parts[i-1] {
			t.Fatal("chunk results out of order")
		}
	}
}

func BenchmarkParallelSum(b *testing.B) {
	s := bigStore(2_000_000)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ParallelSumInt64(s, s.Starts(), 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ParallelSumInt64(s, s.Starts(), 0)
		}
	})
}
