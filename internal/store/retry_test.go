package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crowdscope/internal/faultfs"
	"crowdscope/internal/vfs"
)

func TestRetryReaderAtRidesOutTransients(t *testing.T) {
	ffs := faultfs.New(vfs.OS{})
	data := []byte("hello, shard")
	ra := WithRetry(ffs.WrapReaderAt(bytes.NewReader(data)),
		RetryPolicy{Attempts: 3, Backoff: time.Microsecond})

	ffs.FailReads(2) // two transients, the third try lands
	buf := make([]byte, len(data))
	if _, err := ra.ReadAt(buf, 0); err != nil || !bytes.Equal(buf, data) {
		t.Fatalf("read with 2 transients: %q, %v", buf, err)
	}

	ffs.FailReads(3) // one more failure than the budget allows
	if _, err := ra.ReadAt(buf, 0); !errors.Is(err, faultfs.ErrTransient) {
		t.Fatalf("read with 3 transients: %v, want the surfaced transient", err)
	}
}

type errReaderAt struct {
	err   error
	calls int
}

func (e *errReaderAt) ReadAt([]byte, int64) (int, error) {
	e.calls++
	return 0, e.err
}

func TestRetryReaderAtPermanentErrorsFailFast(t *testing.T) {
	for _, perm := range []error{io.EOF, io.ErrUnexpectedEOF, os.ErrNotExist, os.ErrPermission} {
		e := &errReaderAt{err: perm}
		ra := WithRetry(e, RetryPolicy{Attempts: 5, Backoff: time.Microsecond})
		if _, err := ra.ReadAt(make([]byte, 1), 0); !errors.Is(err, perm) {
			t.Fatalf("error %v not surfaced", perm)
		}
		if e.calls != 1 {
			t.Fatalf("permanent error %v retried %d times", perm, e.calls-1)
		}
	}
}

func TestRetryBackoffGrowsAndJitters(t *testing.T) {
	e := &errReaderAt{err: errors.New("flaky")}
	var slept []time.Duration
	ra := WithRetry(e, RetryPolicy{
		Attempts: 4,
		Backoff:  8 * time.Millisecond,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
	})
	ra.ReadAt(make([]byte, 1), 0)
	if e.calls != 4 {
		t.Fatalf("%d tries, want 4", e.calls)
	}
	if len(slept) != 3 {
		t.Fatalf("%d sleeps, want 3", len(slept))
	}
	for i, base := 0, 8*time.Millisecond; i < 3; i, base = i+1, base*2 {
		if slept[i] < base/2 || slept[i] > base {
			t.Fatalf("sleep %d = %v outside jittered [%v, %v]", i, slept[i], base/2, base)
		}
	}
}

// TestDatasetReadsRideOutTransients drives the real shard read path —
// open, metadata, selective column reads — through injected transient
// failures and expects the dataset to come back clean.
func TestDatasetReadsRideOutTransients(t *testing.T) {
	want := bigFixtureStore(t, 4, 200)
	mfs := newMemFS()
	man := writeFixtureDataset(t, want, mfs, 2)

	ffs := faultfs.New(vfs.OS{})
	d, err := OpenDataset(man, func(name string) (io.ReaderAt, int64, error) {
		ra, size, err := mfs.open(name)
		if err != nil {
			return nil, 0, err
		}
		return ffs.WrapReaderAt(ra), size, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SetRetry(RetryPolicy{Attempts: 3, Backoff: time.Microsecond})

	ffs.FailReads(2) // a burst the 3-attempt budget can absorb
	st, rep, err := d.LoadStore(LoadOptions{Mode: LoadStrict})
	if err != nil {
		t.Fatalf("load through transients: %v", err)
	}
	if st.Len() != want.Len() || len(rep.Shards) != 2 {
		t.Fatalf("loaded %d rows over %d shards", st.Len(), len(rep.Shards))
	}

	// Per-column shard reads retry too.
	ffs.FailReads(2)
	sh, err := d.Shard(0)
	if err != nil {
		t.Fatalf("open shard through transients: %v", err)
	}
	if err := sh.EnsureColumns(colMaskWorker | colMaskTrust); err != nil {
		t.Fatalf("column read through transients: %v", err)
	}

	// Without a retry budget the same faults surface.
	ffs.FailReads(2)
	d2, err := OpenDataset(man, func(name string) (io.ReaderAt, int64, error) {
		ra, size, err := mfs.open(name)
		if err != nil {
			return nil, 0, err
		}
		return ffs.WrapReaderAt(ra), size, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d2.LoadStore(LoadOptions{Mode: LoadStrict}); !errors.Is(err, faultfs.ErrTransient) {
		t.Fatalf("unretried load: %v, want the transient error", err)
	}
}

// alwaysFailRA fails every read; safe for concurrent use.
type alwaysFailRA struct {
	err   error
	calls atomic.Int64
}

func (f *alwaysFailRA) ReadAt([]byte, int64) (int, error) {
	f.calls.Add(1)
	return 0, f.err
}

// TestRetryReaderAtConcurrent hits one retrying reader from many
// goroutines under -race. io.ReaderAt permits fully parallel ReadAt
// calls and RunDataset fans shards out, so the jittered-backoff path —
// which used to funnel through a shared rand.Rand — must be
// concurrency-safe, and every jittered delay must still land in
// [base/2, base].
func TestRetryReaderAtConcurrent(t *testing.T) {
	const (
		goroutines = 16
		reads      = 50
		attempts   = 4
	)
	f := &alwaysFailRA{err: errors.New("flaky")}
	var mu sync.Mutex
	var slept []time.Duration
	ra := WithRetry(f, RetryPolicy{
		Attempts: attempts,
		Backoff:  8 * time.Microsecond,
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
	})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 8)
			for i := 0; i < reads; i++ {
				if _, err := ra.ReadAt(buf, int64(i)); err == nil {
					t.Error("read unexpectedly succeeded")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, want := f.calls.Load(), int64(goroutines*reads*attempts); got != want {
		t.Fatalf("%d underlying reads, want %d", got, want)
	}
	if got, want := len(slept), goroutines*reads*(attempts-1); got != want {
		t.Fatalf("%d sleeps, want %d", got, want)
	}
	// Backoff doubles per retry, so every delay must lie within the
	// jitter window of one of the three bases.
	for _, d := range slept {
		ok := false
		for base := 8 * time.Microsecond; base <= 32*time.Microsecond; base *= 2 {
			if d >= base/2 && d <= base {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("sleep %v outside every jittered backoff window", d)
		}
	}

	// The success path stays correct under the same concurrency.
	data := []byte("parallel shard bytes")
	okRA := WithRetry(bytes.NewReader(data), RetryPolicy{Attempts: 3, Backoff: time.Microsecond})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, len(data))
			for i := 0; i < reads; i++ {
				if _, err := okRA.ReadAt(buf, 0); err != nil || !bytes.Equal(buf, data) {
					t.Errorf("concurrent read: %q, %v", buf, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
