package store

// Compact merges runs of adjacent small sealed segments into single
// segments of at most maxRows rows, re-running the zone-map and
// column-encoding passes on each merged segment (Builder.Seal). Live
// ingest — especially with small seal thresholds — accumulates many
// tiny segments, and per-segment costs (zone checks, plan binding,
// snapshot framing) grow with their count; compaction bounds it.
//
// The merge runs outside ls.mu (segments are immutable, so reading them
// unlocked is safe) and splices the result in under the mutex only
// after re-verifying, by pointer identity, that the sealed list still
// begins with the snapshot it merged — a concurrent Compact loses the
// race and discards its work. Segments sealed while the merge ran are
// preserved after the splice point. The spliced list is a freshly
// allocated slice, never an in-place edit, because view captures hold
// headers into the old one.
//
// Compaction changes segment boundaries but never row content or order,
// so query results are unchanged; a checkpoint taken after compaction
// persists the merged layout. Rows: content only — a recovery that
// replays the WAL re-seals at the original boundaries, which is why
// compaction is opt-in (the serve daemon runs it on a ticker) rather
// than automatic inside the deterministic apply path.
//
// It returns the number of segments merged away (0 when nothing
// qualified or a concurrent compaction won).
func (ls *LiveStore) Compact(maxRows int) int {
	if maxRows <= 0 {
		return 0
	}
	ls.mu.Lock()
	sealed := ls.sealed
	ls.mu.Unlock()

	// Plan greedy runs of ≥2 adjacent segments fitting within maxRows.
	type mergeRun struct {
		lo, hi int
		merged *Segment
	}
	var runs []mergeRun
	for i := 0; i < len(sealed); {
		j, rows := i, 0
		for j < len(sealed) && rows+sealed[j].Len() <= maxRows {
			rows += sealed[j].Len()
			j++
		}
		if j-i >= 2 {
			runs = append(runs, mergeRun{lo: i, hi: j})
			i = j
		} else {
			i++
		}
	}
	if len(runs) == 0 {
		return 0
	}
	for k := range runs {
		runs[k].merged = mergeSegments(sealed[runs[k].lo:runs[k].hi])
	}

	ls.mu.Lock()
	defer ls.mu.Unlock()
	if len(ls.sealed) < len(sealed) {
		return 0
	}
	for i, g := range sealed {
		if ls.sealed[i] != g {
			return 0
		}
	}
	removed := 0
	newSealed := make([]*Segment, 0, len(ls.sealed))
	prev := 0
	for _, r := range runs {
		newSealed = append(newSealed, sealed[prev:r.lo]...)
		newSealed = append(newSealed, r.merged)
		prev = r.hi
		removed += r.hi - r.lo - 1
	}
	newSealed = append(newSealed, ls.sealed[prev:]...)
	ls.sealed = newSealed
	return removed
}

// mergeSegments concatenates adjacent sealed segments into one, sealing
// it to recompute the zone map and encodings over the merged rows. Row
// order is preserved exactly: live segments hold rows batch-contiguous
// in ascending batch order, so replaying them row by row through a
// builder reproduces the canonical order byte for byte.
func mergeSegments(segs []*Segment) *Segment {
	b := NewBuilder(segs[0].batchLo, segs[len(segs)-1].batchHi)
	for _, g := range segs {
		var prev uint32
		for i := 0; i < g.Len(); i++ {
			if i == 0 || g.batch[i] != prev {
				prev = g.batch[i]
				b.BeginBatch(prev)
			}
			b.Append(g.Row(i))
		}
	}
	return b.Seal()
}
