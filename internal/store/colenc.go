package store

import (
	"fmt"
	"math"
	"math/bits"
)

// Lightweight per-segment column encodings. Each sealed segment carries,
// alongside (or instead of) its raw arrays, a compressed form chosen per
// column by measured serialized cost:
//
//   - CodeRLE:  (value, cumulative-end) runs. Batch rows are contiguous
//     per batch and answers repeat per assignment, so the run count —
//     not the row count — is what those columns pay for. On disk the
//     runs themselves are bit-packed (frame-of-reference values plus
//     run lengths).
//   - CodeDict: a sorted dictionary of at most dictMaxEntries distinct
//     values plus bit-packed indexes. Enum-like columns pack to a few
//     bits per row, and predicates resolve to a code-set mask tested
//     once per segment.
//   - CodeFOR:  frame-of-reference delta bit-packing: values store as
//     offsets from the column minimum at a fixed bit width. In memory
//     the width is uniform (random access stays O(1) and the scan
//     kernels stay simple); on disk the column is cut into 64-row
//     frames, each with its own reference and width, which captures the
//     locality of clustered columns (timestamps, items) that one global
//     width cannot.
//   - CodeRaw:  the fixed-width fallback when no encoding pays.
//
// Trust is a float32 column; its IEEE-754 bit patterns are encoded with
// the same machinery (EncodedF32): generated trust scores cluster in a
// narrow value band, so the patterns span far fewer than 32 bits even
// though almost every value is distinct.
//
// The query engine scans these forms directly (see internal/query); the
// snapshot codec persists them (see codec_enc.go); and the store
// materializes raw arrays lazily, per column, for consumers that need
// flat slices. Encoders are lossless and deterministic — a pure function
// of the column values — so snapshot bytes stay a pure function of the
// store contents.

// ColumnCode identifies how one encoded column is represented.
type ColumnCode uint8

const (
	// CodeRaw holds the values as a plain fixed-width array.
	CodeRaw ColumnCode = iota
	// CodeRLE holds (value, cumulative end) runs.
	CodeRLE
	// CodeDict holds bit-packed indexes into a small sorted dictionary.
	CodeDict
	// CodeFOR holds bit-packed offsets from a reference (the column min).
	CodeFOR
)

// dictMaxEntries bounds dictionary size so a predicate's matching-code set
// always fits one uint64 mask.
const dictMaxEntries = 64

// maxFORWidthI64 bounds the packed width of int64 FOR columns so that
// Ref + delta arithmetic stays in int64 territory and is overflow-checked
// at decode time.
const maxFORWidthI64 = 63

// frameRows is the disk frame size of FOR columns: every 64 rows carry
// their own reference offset and bit width.
const frameRows = 64

// EncodedU32 is one uint32 column of one segment in encoded form. Fields
// are exported for the scan kernels in internal/query; they must be
// treated as immutable.
type EncodedU32 struct {
	Code ColumnCode
	N    int

	// Raw is the fixed-width fallback (CodeRaw).
	Raw []uint32

	// RunVals/RunEnds are the CodeRLE runs: run i holds RunVals[i] for
	// rows [RunEnds[i-1], RunEnds[i]). RunEnds ascends strictly and ends
	// at N; runs are maximal (adjacent run values differ) but otherwise
	// arbitrary — batch rows are contiguous per batch, yet batches may
	// appear in any ID order.
	RunVals []uint32
	RunEnds []uint32

	// Dict is the CodeDict sorted distinct-value table; packed values are
	// indexes into it.
	Dict []uint32

	// Ref is the CodeFOR frame of reference (the column min).
	Ref uint32

	// Width is the packed bit width (CodeDict, CodeFOR); zero means every
	// row decodes to the same value and Packed is empty.
	Width uint8

	// Packed holds the bit-packed little-endian values: value i occupies
	// bits [i*Width, (i+1)*Width) of the concatenated words.
	Packed []uint64
}

// EncodedI64 is one int64 column of one segment in encoded form
// (CodeRaw or CodeFOR only).
type EncodedI64 struct {
	Code   ColumnCode
	N      int
	Raw    []int64
	Ref    int64
	Width  uint8
	Packed []uint64
}

// EncodedF32 is one float32 column of one segment, encoded over the
// IEEE-754 bit patterns (CodeRaw, CodeDict or CodeFOR).
type EncodedF32 struct {
	Code   ColumnCode
	N      int
	Raw    []float32
	Dict   []uint32 // sorted distinct bit patterns
	Ref    uint32   // pattern frame of reference
	Width  uint8
	Packed []uint64
}

// SegmentEnc holds every encoded column of one segment. The End column is
// stored as EndOff — the per-row end-start offset — because task
// durations span far fewer bits than absolute timestamps; End values
// reconstruct as Start.Value(i) + EndOff.Value(i).
type SegmentEnc struct {
	Rows int

	Batch    EncodedU32
	TaskType EncodedU32
	Item     EncodedU32
	Worker   EncodedU32
	Answer   EncodedU32

	Start  EncodedI64
	EndOff EncodedI64

	Trust EncodedF32
}

// packedWords returns how many uint64 words n values of the given width
// occupy.
func packedWords(n int, width uint8) int {
	return (n*int(width) + 63) / 64
}

// bitsForU64 returns the bit width needed to represent v.
func bitsForU64(v uint64) uint8 { return uint8(bits.Len64(v)) }

// unpackAt extracts value i from a packed array. Callers guarantee
// 0 < width and i < N.
func unpackAt(words []uint64, width uint8, i int) uint64 {
	bit := i * int(width)
	w, b := bit>>6, uint(bit&63)
	v := words[w] >> b
	if b+uint(width) > 64 {
		v |= words[w+1] << (64 - b)
	}
	return v & (uint64(1)<<width - 1)
}

// packAll bit-packs n values produced by get.
func packAll(n int, width uint8, get func(i int) uint64) []uint64 {
	if n == 0 || width == 0 {
		return nil
	}
	words := make([]uint64, packedWords(n, width))
	bit := 0
	for i := 0; i < n; i++ {
		v := get(i)
		w, b := bit>>6, uint(bit&63)
		words[w] |= v << b
		if b+uint(width) > 64 {
			words[w+1] = v >> (64 - b)
		}
		bit += int(width)
	}
	return words
}

// maxPackedValue scans a packed array for its maximum value; validation
// uses it to bound dictionary codes and FOR deltas before any kernel
// trusts them.
func maxPackedValue(words []uint64, width uint8, n int) uint64 {
	var m uint64
	for i := 0; i < n; i++ {
		if v := unpackAt(words, width, i); v > m {
			m = v
		}
	}
	return m
}

// u32Shape is the single-pass scan the uint32 encoder chooses from:
// column bounds, maximal-run statistics, the small distinct set, and the
// per-disk-frame spans.
type u32Shape struct {
	minV, maxV uint32
	runs       int
	maxRunLen  int
	set        enumSet
	frameBits  int64 // sum over frames of frameWidth*frameRows
	frames     int
}

func scanU32(vals []uint32) u32Shape {
	sh := u32Shape{minV: vals[0], maxV: vals[0], runs: 1, maxRunLen: 1, set: enumSet{cap: dictMaxEntries}}
	sh.set.add(vals[0])
	runLen := 1
	for lo := 0; lo < len(vals); lo += frameRows {
		hi := min(lo+frameRows, len(vals))
		fmin, fmax := vals[lo], vals[lo]
		for i := lo; i < hi; i++ {
			v := vals[i]
			fmin, fmax = min(fmin, v), max(fmax, v)
			if i > 0 {
				if v != vals[i-1] {
					sh.runs++
					sh.maxRunLen = max(sh.maxRunLen, runLen)
					runLen = 1
				} else {
					runLen++
				}
			}
			sh.set.add(v)
		}
		sh.minV, sh.maxV = min(sh.minV, fmin), max(sh.maxV, fmax)
		sh.frameBits += int64(bitsForU64(uint64(fmax-fmin))) * int64(hi-lo)
		sh.frames++
	}
	sh.maxRunLen = max(sh.maxRunLen, runLen)
	return sh
}

// encodeU32Column picks the cheapest encoding for one uint32 column,
// costing each candidate at its serialized (disk) size. The choice is a
// pure function of the values, which keeps snapshot bytes deterministic.
func encodeU32Column(vals []uint32) EncodedU32 {
	n := len(vals)
	if n == 0 {
		return EncodedU32{Code: CodeRaw}
	}
	sh := scanU32(vals)
	uw := bitsForU64(uint64(sh.maxV - sh.minV))

	rawBits := int64(n) * 32
	// Packed RLE: run values FOR-packed at the column width plus run
	// lengths (stored as length-1) at the max-length width. Columns
	// without real run structure (runs approaching one per row) degrade
	// to FOR — same bytes, but the run-level scan kernel would lose.
	wl := bitsForU64(uint64(sh.maxRunLen - 1))
	rleBits := int64(math.MaxInt64)
	if 2*sh.runs <= n {
		rleBits = int64(sh.runs)*int64(uw+wl) + 96
	}
	// Frame FOR: per-frame payload plus per-frame reference and width.
	forBits := sh.frameBits + int64(sh.frames)*int64(uint8(8)+uw) + 48
	dictBits := int64(math.MaxInt64)
	var dictWidth uint8
	if !sh.set.overflow {
		dictWidth = bitsForU64(uint64(len(sh.set.vals) - 1))
		dictBits = int64(n)*int64(dictWidth) + int64(len(sh.set.vals))*32 + 24
	}

	best := rawBits
	for _, c := range []int64{rleBits, dictBits, forBits} {
		if c < best {
			best = c
		}
	}
	switch best {
	case rleBits:
		e := EncodedU32{Code: CodeRLE, N: n,
			RunVals: make([]uint32, 0, sh.runs), RunEnds: make([]uint32, 0, sh.runs)}
		for i := 0; i < n; i++ {
			if i == 0 || vals[i] != vals[i-1] {
				if i > 0 {
					e.RunEnds = append(e.RunEnds, uint32(i))
				}
				e.RunVals = append(e.RunVals, vals[i])
			}
		}
		e.RunEnds = append(e.RunEnds, uint32(n))
		return e
	case dictBits:
		dict := append([]uint32(nil), sh.set.vals...)
		e := EncodedU32{Code: CodeDict, N: n, Dict: dict, Width: dictWidth}
		e.Packed = packAll(n, dictWidth, func(i int) uint64 {
			lo, hi := 0, len(dict)
			for lo < hi {
				mid := (lo + hi) / 2
				if dict[mid] < vals[i] {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			return uint64(lo)
		})
		return e
	case forBits:
		e := EncodedU32{Code: CodeFOR, N: n, Ref: sh.minV, Width: uw}
		e.Packed = packAll(n, uw, func(i int) uint64 { return uint64(vals[i] - sh.minV) })
		return e
	}
	return EncodedU32{Code: CodeRaw, N: n, Raw: append([]uint32(nil), vals...)}
}

// encodeI64Column picks frame FOR or raw for one int64 column.
func encodeI64Column(vals []int64) EncodedI64 {
	n := len(vals)
	if n == 0 {
		return EncodedI64{Code: CodeRaw}
	}
	minV, maxV := vals[0], vals[0]
	var frameBits int64
	frames := 0
	for lo := 0; lo < n; lo += frameRows {
		hi := min(lo+frameRows, n)
		fmin, fmax := vals[lo], vals[lo]
		for _, v := range vals[lo:hi] {
			fmin, fmax = min(fmin, v), max(fmax, v)
		}
		minV, maxV = min(minV, fmin), max(maxV, fmax)
		frameBits += int64(bitsForU64(uint64(fmax)-uint64(fmin))) * int64(hi-lo)
		frames++
	}
	span := uint64(maxV) - uint64(minV)
	uw := bitsForU64(span)
	forBits := frameBits + int64(frames)*int64(8+uw) + 80
	if uw <= maxFORWidthI64 && forBits < int64(n)*64 {
		e := EncodedI64{Code: CodeFOR, N: n, Ref: minV, Width: uw}
		e.Packed = packAll(n, uw, func(i int) uint64 { return uint64(vals[i]) - uint64(minV) })
		return e
	}
	return EncodedI64{Code: CodeRaw, N: n, Raw: append([]int64(nil), vals...)}
}

// encodeF32Column encodes a float32 column over its bit patterns:
// dictionary when few values are distinct, frame-of-reference packing
// when the patterns span a narrow band (clustered positive values do),
// raw otherwise.
func encodeF32Column(vals []float32) EncodedF32 {
	n := len(vals)
	if n == 0 {
		return EncodedF32{Code: CodeRaw}
	}
	pat := func(i int) uint32 { return math.Float32bits(vals[i]) }
	minP, maxP := pat(0), pat(0)
	set := enumSet{cap: dictMaxEntries}
	var frameBits int64
	frames := 0
	for lo := 0; lo < n; lo += frameRows {
		hi := min(lo+frameRows, n)
		fmin, fmax := pat(lo), pat(lo)
		for i := lo; i < hi; i++ {
			p := pat(i)
			fmin, fmax = min(fmin, p), max(fmax, p)
			set.add(p)
		}
		minP, maxP = min(minP, fmin), max(maxP, fmax)
		frameBits += int64(bitsForU64(uint64(fmax-fmin))) * int64(hi-lo)
		frames++
	}
	uw := bitsForU64(uint64(maxP - minP))
	rawBits := int64(n) * 32
	forBits := frameBits + int64(frames)*int64(8+uw) + 48
	dictBits := int64(math.MaxInt64)
	var dictWidth uint8
	if !set.overflow {
		dictWidth = bitsForU64(uint64(len(set.vals) - 1))
		dictBits = int64(n)*int64(dictWidth) + int64(len(set.vals))*32 + 24
	}
	switch {
	case dictBits < forBits && dictBits < rawBits:
		dict := append([]uint32(nil), set.vals...)
		e := EncodedF32{Code: CodeDict, N: n, Dict: dict, Width: dictWidth}
		e.Packed = packAll(n, dictWidth, func(i int) uint64 {
			p := pat(i)
			lo, hi := 0, len(dict)
			for lo < hi {
				mid := (lo + hi) / 2
				if dict[mid] < p {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			return uint64(lo)
		})
		return e
	case forBits < rawBits:
		e := EncodedF32{Code: CodeFOR, N: n, Ref: minP, Width: uw}
		e.Packed = packAll(n, uw, func(i int) uint64 { return uint64(pat(i) - minP) })
		return e
	}
	return EncodedF32{Code: CodeRaw, N: n, Raw: append([]float32(nil), vals...)}
}

// Value decodes row i.
func (e *EncodedU32) Value(i int) uint32 {
	switch e.Code {
	case CodeRaw:
		return e.Raw[i]
	case CodeRLE:
		return e.RunVals[e.RunIndex(i)]
	case CodeDict:
		if e.Width == 0 {
			return e.Dict[0]
		}
		return e.Dict[unpackAt(e.Packed, e.Width, i)]
	default: // CodeFOR
		if e.Width == 0 {
			return e.Ref
		}
		return e.Ref + uint32(unpackAt(e.Packed, e.Width, i))
	}
}

// RunIndex returns the index of the CodeRLE run containing row i.
func (e *EncodedU32) RunIndex(i int) int {
	lo, hi := 0, len(e.RunEnds)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(e.RunEnds[mid]) <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// DecodeInto materializes the column into dst (len N).
func (e *EncodedU32) DecodeInto(dst []uint32) {
	switch e.Code {
	case CodeRaw:
		copy(dst, e.Raw)
	case CodeRLE:
		pos := 0
		for r, end := range e.RunEnds {
			v := e.RunVals[r]
			for ; pos < int(end); pos++ {
				dst[pos] = v
			}
		}
	case CodeDict:
		if e.Width == 0 {
			for i := range dst[:e.N] {
				dst[i] = e.Dict[0]
			}
			return
		}
		for i := 0; i < e.N; i++ {
			dst[i] = e.Dict[unpackAt(e.Packed, e.Width, i)]
		}
	default: // CodeFOR
		if e.Width == 0 {
			for i := range dst[:e.N] {
				dst[i] = e.Ref
			}
			return
		}
		for i := 0; i < e.N; i++ {
			dst[i] = e.Ref + uint32(unpackAt(e.Packed, e.Width, i))
		}
	}
}

// Value decodes row i.
func (e *EncodedI64) Value(i int) int64 {
	if e.Code == CodeRaw {
		return e.Raw[i]
	}
	if e.Width == 0 {
		return e.Ref
	}
	return e.Ref + int64(unpackAt(e.Packed, e.Width, i))
}

// DecodeInto materializes the column into dst (len N).
func (e *EncodedI64) DecodeInto(dst []int64) {
	if e.Code == CodeRaw {
		copy(dst, e.Raw)
		return
	}
	if e.Width == 0 {
		for i := range dst[:e.N] {
			dst[i] = e.Ref
		}
		return
	}
	for i := 0; i < e.N; i++ {
		dst[i] = e.Ref + int64(unpackAt(e.Packed, e.Width, i))
	}
}

// Value decodes row i.
func (e *EncodedF32) Value(i int) float32 {
	switch e.Code {
	case CodeRaw:
		return e.Raw[i]
	case CodeDict:
		if e.Width == 0 {
			return math.Float32frombits(e.Dict[0])
		}
		return math.Float32frombits(e.Dict[unpackAt(e.Packed, e.Width, i)])
	default: // CodeFOR
		if e.Width == 0 {
			return math.Float32frombits(e.Ref)
		}
		return math.Float32frombits(e.Ref + uint32(unpackAt(e.Packed, e.Width, i)))
	}
}

// DecodeInto materializes the column into dst (len N).
func (e *EncodedF32) DecodeInto(dst []float32) {
	if e.Code == CodeRaw {
		copy(dst, e.Raw)
		return
	}
	for i := 0; i < e.N; i++ {
		dst[i] = e.Value(i)
	}
}

// encodeSegmentColumns builds the encoded form of one segment's columns.
func encodeSegmentColumns(batch, taskType, item, worker, answer []uint32, start, end []int64, trust []float32) SegmentEnc {
	n := len(batch)
	e := SegmentEnc{Rows: n}
	if n == 0 {
		return e
	}
	e.Batch = encodeU32Column(batch)
	e.TaskType = encodeU32Column(taskType)
	e.Item = encodeU32Column(item)
	e.Worker = encodeU32Column(worker)
	e.Answer = encodeU32Column(answer)
	e.Start = encodeI64Column(start)
	offs := make([]int64, n)
	for i := range offs {
		offs[i] = end[i] - start[i]
	}
	e.EndOff = encodeI64Column(offs)
	e.Trust = encodeF32Column(trust)
	return e
}

// validate checks the structural invariants the scan kernels and
// materializers rely on; the snapshot decoder additionally enforces them
// (plus canonical-form rules) before trusting any loaded encoding. The
// full-column scans (maxPackedValue) bound dictionary codes and FOR
// deltas so Value can never index or overflow.
func (e *EncodedU32) validate(rows int) error {
	if e.N != rows {
		return fmt.Errorf("%w: encoded column covers %d of %d rows", ErrCorrupt, e.N, rows)
	}
	switch e.Code {
	case CodeRaw:
		if len(e.Raw) != rows {
			return fmt.Errorf("%w: raw column length %d != %d rows", ErrCorrupt, len(e.Raw), rows)
		}
	case CodeRLE:
		if len(e.RunVals) == 0 || len(e.RunVals) != len(e.RunEnds) {
			return fmt.Errorf("%w: %d run values for %d run ends", ErrCorrupt, len(e.RunVals), len(e.RunEnds))
		}
		prev := uint32(0)
		for _, end := range e.RunEnds {
			if end <= prev {
				return fmt.Errorf("%w: run ends not strictly ascending", ErrCorrupt)
			}
			prev = end
		}
		if int(prev) != rows {
			return fmt.Errorf("%w: runs cover %d of %d rows", ErrCorrupt, prev, rows)
		}
	case CodeDict:
		if err := validateDict(e.Dict, e.Width, e.Packed, rows); err != nil {
			return err
		}
	case CodeFOR:
		if e.Width > 32 {
			return fmt.Errorf("%w: FOR width %d exceeds 32", ErrCorrupt, e.Width)
		}
		if len(e.Packed) != packedWords(rows, e.Width) {
			return fmt.Errorf("%w: %d packed words, want %d", ErrCorrupt, len(e.Packed), packedWords(rows, e.Width))
		}
		if e.Width > 0 && maxPackedValue(e.Packed, e.Width, rows) > uint64(math.MaxUint32-e.Ref) {
			return fmt.Errorf("%w: FOR delta overflows uint32", ErrCorrupt)
		}
	default:
		return fmt.Errorf("%w: unknown column code %d", ErrCorrupt, e.Code)
	}
	return nil
}

func validateDict(dict []uint32, width uint8, packed []uint64, rows int) error {
	nd := len(dict)
	if nd == 0 || nd > dictMaxEntries {
		return fmt.Errorf("%w: dictionary of %d entries", ErrCorrupt, nd)
	}
	for i := 1; i < nd; i++ {
		if dict[i] <= dict[i-1] {
			return fmt.Errorf("%w: dictionary not strictly ascending", ErrCorrupt)
		}
	}
	if width != bitsForU64(uint64(nd-1)) {
		return fmt.Errorf("%w: dict width %d for %d entries", ErrCorrupt, width, nd)
	}
	if len(packed) != packedWords(rows, width) {
		return fmt.Errorf("%w: %d packed words, want %d", ErrCorrupt, len(packed), packedWords(rows, width))
	}
	if width > 0 && maxPackedValue(packed, width, rows) >= uint64(nd) {
		return fmt.Errorf("%w: dictionary code out of range", ErrCorrupt)
	}
	return nil
}

func (e *EncodedI64) validate(rows int) error {
	if e.N != rows {
		return fmt.Errorf("%w: encoded column covers %d of %d rows", ErrCorrupt, e.N, rows)
	}
	switch e.Code {
	case CodeRaw:
		if len(e.Raw) != rows {
			return fmt.Errorf("%w: raw column length %d != %d rows", ErrCorrupt, len(e.Raw), rows)
		}
	case CodeFOR:
		if e.Width > maxFORWidthI64 {
			return fmt.Errorf("%w: FOR width %d exceeds %d", ErrCorrupt, e.Width, maxFORWidthI64)
		}
		if len(e.Packed) != packedWords(rows, e.Width) {
			return fmt.Errorf("%w: %d packed words, want %d", ErrCorrupt, len(e.Packed), packedWords(rows, e.Width))
		}
		if e.Width > 0 && e.Ref >= 0 {
			if maxPackedValue(e.Packed, e.Width, rows) > uint64(math.MaxInt64)-uint64(e.Ref) {
				return fmt.Errorf("%w: FOR delta overflows int64", ErrCorrupt)
			}
		}
	default:
		return fmt.Errorf("%w: column code %d invalid for int64", ErrCorrupt, e.Code)
	}
	return nil
}

func (e *EncodedF32) validate(rows int) error {
	if e.N != rows {
		return fmt.Errorf("%w: encoded column covers %d of %d rows", ErrCorrupt, e.N, rows)
	}
	switch e.Code {
	case CodeRaw:
		if len(e.Raw) != rows {
			return fmt.Errorf("%w: raw column length %d != %d rows", ErrCorrupt, len(e.Raw), rows)
		}
	case CodeDict:
		if err := validateDict(e.Dict, e.Width, e.Packed, rows); err != nil {
			return err
		}
	case CodeFOR:
		if e.Width > 32 {
			return fmt.Errorf("%w: FOR width %d exceeds 32", ErrCorrupt, e.Width)
		}
		if len(e.Packed) != packedWords(rows, e.Width) {
			return fmt.Errorf("%w: %d packed words, want %d", ErrCorrupt, len(e.Packed), packedWords(rows, e.Width))
		}
		if e.Width > 0 && maxPackedValue(e.Packed, e.Width, rows) > uint64(math.MaxUint32-e.Ref) {
			return fmt.Errorf("%w: FOR delta overflows uint32", ErrCorrupt)
		}
	default:
		return fmt.Errorf("%w: column code %d invalid for float32", ErrCorrupt, e.Code)
	}
	return nil
}

func (e *SegmentEnc) validate(rows int) error {
	if e.Rows != rows {
		return fmt.Errorf("%w: encoded block covers %d of %d rows", ErrCorrupt, e.Rows, rows)
	}
	for _, c := range []struct {
		name string
		col  *EncodedU32
	}{
		{"batch", &e.Batch}, {"task-type", &e.TaskType}, {"item", &e.Item},
		{"worker", &e.Worker}, {"answer", &e.Answer},
	} {
		if err := c.col.validate(rows); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
	}
	if err := e.Start.validate(rows); err != nil {
		return fmt.Errorf("start: %w", err)
	}
	if err := e.EndOff.validate(rows); err != nil {
		return fmt.Errorf("end-offset: %w", err)
	}
	if err := e.Trust.validate(rows); err != nil {
		return fmt.Errorf("trust: %w", err)
	}
	return nil
}

// uvarintLen returns the encoded size of one uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// ColumnCompression summarizes one column's footprint across all
// segments: the fixed-width raw bytes versus the encoded bytes the
// snapshot column blocks occupy.
type ColumnCompression struct {
	Name         string
	RawBytes     int64
	EncodedBytes int64
}

// Ratio returns RawBytes/EncodedBytes (1.0 for an empty column).
func (c ColumnCompression) Ratio() float64 {
	if c.EncodedBytes == 0 {
		return 1
	}
	return float64(c.RawBytes) / float64(c.EncodedBytes)
}

// CompressionStats reports the per-column compression of the store's
// segment encodings, in fixed column order. It returns nil for stores
// without an explicit segment layout (direct-append stores), which
// snapshot through the raw block path.
func (s *Store) CompressionStats() []ColumnCompression {
	if len(s.segs) == 0 {
		return nil
	}
	encs := s.Encodings()
	n := int64(s.Len())
	out := []ColumnCompression{
		{Name: "batch", RawBytes: 4 * n}, {Name: "tasktype", RawBytes: 4 * n},
		{Name: "item", RawBytes: 4 * n}, {Name: "worker", RawBytes: 4 * n},
		{Name: "start", RawBytes: 8 * n}, {Name: "end", RawBytes: 8 * n},
		{Name: "trust", RawBytes: 4 * n}, {Name: "answer", RawBytes: 4 * n},
	}
	for i := range encs {
		e := &encs[i]
		if e.Rows == 0 {
			continue
		}
		out[0].EncodedBytes += e.Batch.encodedBytes()
		out[1].EncodedBytes += e.TaskType.encodedBytes()
		out[2].EncodedBytes += e.Item.encodedBytes()
		out[3].EncodedBytes += e.Worker.encodedBytes()
		out[4].EncodedBytes += e.Start.encodedBytes()
		out[5].EncodedBytes += e.EndOff.encodedBytes()
		out[6].EncodedBytes += e.Trust.encodedBytes()
		out[7].EncodedBytes += e.Answer.encodedBytes()
	}
	return out
}
