package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fixtureManifest writes the big fixture store as a 3-shard dataset and
// returns the manifest plus its serialized bytes.
func fixtureManifest(t testing.TB) (*Manifest, []byte) {
	t.Helper()
	s := bigFixtureStore(t, 3, 120)
	fs := newMemFS()
	man := writeFixtureDataset(t, s, fs, 3)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return man, append([]byte(nil), fs.files["fix.crow"].Bytes()...)
}

func TestManifestRoundTrip(t *testing.T) {
	man, raw := fixtureManifest(t)
	got, n, err := ReadManifest(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if n != int64(len(raw)) {
		t.Fatalf("consumed %d of %d bytes", n, len(raw))
	}
	if got.NumBatches != man.NumBatches || len(got.Shards) != len(man.Shards) {
		t.Fatalf("shape: %d batches/%d shards, want %d/%d", got.NumBatches, len(got.Shards), man.NumBatches, len(man.Shards))
	}
	for i := range man.Shards {
		w, g := &man.Shards[i], &got.Shards[i]
		if w.Name != g.Name || w.Rows != g.Rows || w.BatchLo != g.BatchLo || w.BatchHi != g.BatchHi ||
			w.Segments != g.Segments || w.FileSize != g.FileSize {
			t.Fatalf("shard %d: %+v vs %+v", i, g, w)
		}
		if w.Zone.Rows != g.Zone.Rows || w.Zone.StartMin != g.Zone.StartMin || w.Zone.StartMax != g.Zone.StartMax ||
			w.Zone.WorkerMin != g.Zone.WorkerMin || w.Zone.WorkerMax != g.Zone.WorkerMax ||
			w.Zone.TrustMin != g.Zone.TrustMin || w.Zone.TrustMax != g.Zone.TrustMax {
			t.Fatalf("shard %d zone: %+v vs %+v", i, g.Zone, w.Zone)
		}
	}
}

func TestWriteManifestRejects(t *testing.T) {
	base, _ := fixtureManifest(t)
	mutate := func(fn func(*Manifest)) *Manifest {
		m := &Manifest{NumBatches: base.NumBatches, Shards: append([]ShardInfo(nil), base.Shards...)}
		fn(m)
		return m
	}
	cases := map[string]*Manifest{
		"slash in name":       mutate(func(m *Manifest) { m.Shards[0].Name = "../escape.crow" }),
		"empty name":          mutate(func(m *Manifest) { m.Shards[1].Name = "" }),
		"overlapping batches": mutate(func(m *Manifest) { m.Shards[1].BatchLo = m.Shards[0].BatchLo }),
		"batch out of range":  mutate(func(m *Manifest) { m.Shards[2].BatchHi = uint32(m.NumBatches) + 1 }),
		"zone rows mismatch":  mutate(func(m *Manifest) { m.Shards[0].Zone.Rows++ }),
		"negative rows":       mutate(func(m *Manifest) { m.Shards[0].Rows = -1 }),
		"rows without segs":   mutate(func(m *Manifest) { m.Shards[0].Segments = 0 }),
	}
	for name, m := range cases {
		if _, err := WriteManifest(&bytes.Buffer{}, m); err == nil {
			t.Errorf("%s: WriteManifest accepted it", name)
		}
	}
	if _, err := WriteManifest(&bytes.Buffer{}, base); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
}

func TestReadManifestRejects(t *testing.T) {
	_, raw := fixtureManifest(t)
	load := func(data []byte) error {
		_, _, err := ReadManifest(bytes.NewReader(data))
		return err
	}
	t.Run("magic", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[0] ^= 0xFF
		if err := load(bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[4] = 99
		if err := load(bad); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, 8, len(raw) / 2, len(raw) - 1} {
			if err := load(raw[:cut]); err == nil {
				t.Fatalf("accepted %d-byte prefix", cut)
			}
		}
	})
	t.Run("payload bitflip", func(t *testing.T) {
		for _, off := range []int{20, len(raw) / 2, len(raw) - 3} {
			bad := append([]byte(nil), raw...)
			bad[off] ^= 0x40
			if err := load(bad); err == nil {
				t.Fatalf("accepted bit flip at %d", off)
			}
		}
	})
	t.Run("valid", func(t *testing.T) {
		if err := load(raw); err != nil {
			t.Fatalf("valid manifest rejected: %v", err)
		}
	})
}

func TestMergeShardZones(t *testing.T) {
	z1 := ZoneMap{
		Rows: 10, TaskTypeMin: 1, TaskTypeMax: 3, ItemMin: 0, ItemMax: 5,
		WorkerMin: 2, WorkerMax: 9, AnswerMin: 100, AnswerMax: 200,
		StartMin: 1000, StartMax: 2000, EndMin: 1100, EndMax: 2100,
		TrustMin: 0.25, TrustMax: 0.75,
		TaskTypes: []uint32{1, 3}, Answers: []uint32{100, 200},
	}
	z2 := ZoneMap{
		Rows: 5, TaskTypeMin: 2, TaskTypeMax: 4, ItemMin: 3, ItemMax: 8,
		WorkerMin: 1, WorkerMax: 4, AnswerMin: 50, AnswerMax: 150,
		StartMin: 500, StartMax: 1500, EndMin: 600, EndMax: 1600,
		TrustMin: 0.5, TrustMax: 1.0,
		TaskTypes: []uint32{2, 4}, Answers: []uint32{50, 150},
	}
	got := mergeShardZones([]ZoneMap{z1, z2})
	if got.Rows != 15 {
		t.Fatalf("rows %d", got.Rows)
	}
	if got.TaskTypeMin != 1 || got.TaskTypeMax != 4 || got.StartMin != 500 || got.StartMax != 2000 ||
		got.TrustMin != 0.25 || got.TrustMax != 1.0 || got.WorkerMin != 1 || got.WorkerMax != 9 {
		t.Fatalf("bounds: %+v", got)
	}
	wantTT := []uint32{1, 2, 3, 4}
	if len(got.TaskTypes) != len(wantTT) {
		t.Fatalf("tasktypes %v", got.TaskTypes)
	}
	for i, v := range wantTT {
		if got.TaskTypes[i] != v {
			t.Fatalf("tasktypes %v", got.TaskTypes)
		}
	}

	// A contributor without a set poisons the union but not the bounds.
	z2.TaskTypes = nil
	got = mergeShardZones([]ZoneMap{z1, z2})
	if got.TaskTypes != nil {
		t.Fatalf("union survived a nil contributor: %v", got.TaskTypes)
	}
	if got.TaskTypeMin != 1 || got.TaskTypeMax != 4 {
		t.Fatalf("bounds after nil set: %+v", got)
	}

	// Zero-row zones contribute nothing.
	got = mergeShardZones([]ZoneMap{{}, z1})
	if got.Rows != 10 || got.StartMin != 1000 {
		t.Fatalf("zero-row merge: %+v", got)
	}
}

// FuzzReadManifest drives the manifest decoder with arbitrary bytes; the
// committed corpus (regenerated with -update-fixtures) holds a valid
// manifest plus truncated and bit-flipped variants. The decoder must
// never panic, and whatever it accepts must pass validation and
// re-serialize.
func FuzzReadManifest(f *testing.F) {
	s := bigFixtureStore(f, 3, 120)
	fs := newMemFS()
	var manBuf bytes.Buffer
	if _, err := s.WriteDataset(&manBuf, 3, "fix", fs.create, WriteOptions{Workers: 1}); err != nil {
		f.Fatal(err)
	}
	raw := manBuf.Bytes()
	for _, seed := range manifestCorpus(raw) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		man, _, err := ReadManifest(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted manifests are structurally valid and writable.
		if err := man.validate(); err != nil {
			t.Fatalf("accepted manifest fails validation: %v", err)
		}
		if _, err := WriteManifest(&bytes.Buffer{}, man); err != nil {
			t.Fatalf("accepted manifest does not re-serialize: %v", err)
		}
	})
}

// manifestCorpus derives the committed fuzz seeds from a valid manifest.
func manifestCorpus(raw []byte) [][]byte {
	seeds := [][]byte{
		append([]byte(nil), raw...),
		append([]byte(nil), raw[:len(raw)/3]...),
		append([]byte(nil), raw[:len(raw)-2]...),
		[]byte("not a manifest at all"),
		{},
	}
	for _, off := range []int{0, 5, 12, len(raw) / 2, len(raw) - 4} {
		flip := append([]byte(nil), raw...)
		flip[off] ^= 0x40
		seeds = append(seeds, flip)
	}
	return seeds
}

// TestManifestFuzzCorpus rewrites the committed FuzzReadManifest corpus
// when -update-fixtures is set.
func TestManifestFuzzCorpus(t *testing.T) {
	if !*updateFixtures {
		t.Skip("corpus committed; run with -update-fixtures to regenerate")
	}
	_, raw := fixtureManifest(t)
	dir := filepath.Join("testdata", "fuzz", "FuzzReadManifest")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range manifestCorpus(raw) {
		entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed_manifest_%d", i)), []byte(entry), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
