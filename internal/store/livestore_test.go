package store

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"crowdscope/internal/faultfs"
	"crowdscope/internal/model"
	"crowdscope/internal/vfs"
	"crowdscope/internal/wal"
)

// genStream produces a deterministic append stream: records of varied
// sizes whose batch IDs advance non-decreasingly, the shape live ingest
// promises. Row values exercise every column's coding (deltas, zigzag,
// float bits).
func genStream(seed int64, nRecs int) [][]model.Instance {
	rng := rand.New(rand.NewSource(seed))
	batch := uint32(0)
	start := int64(1_700_000_000_000)
	recs := make([][]model.Instance, nRecs)
	for r := range recs {
		rows := make([]model.Instance, 1+rng.Intn(40))
		for i := range rows {
			if rng.Intn(3) == 0 {
				batch += uint32(rng.Intn(3))
			}
			start += int64(rng.Intn(5000))
			rows[i] = model.Instance{
				Batch:    batch,
				TaskType: uint32(rng.Intn(8)),
				Item:     uint32(rng.Intn(10000)),
				Worker:   uint32(rng.Intn(500)),
				Start:    start,
				End:      start + int64(rng.Intn(120000)),
				Trust:    rng.Float32(),
				Answer:   uint32(rng.Intn(4)),
			}
		}
		recs[r] = rows
	}
	return recs
}

func streamRows(recs [][]model.Instance) []model.Instance {
	var all []model.Instance
	for _, r := range recs {
		all = append(all, r...)
	}
	return all
}

var liveTestCfg = LiveConfig{SealRows: 100, CheckpointRows: 300, Sync: wal.SyncNone, SegmentBytes: 4096}

// snapshotBytes serializes a live store's current contents; bit-equality
// of these bytes is the equivalence the recovery contract promises.
func snapshotBytes(t testing.TB, ls *LiveStore) []byte {
	t.Helper()
	st, err := ls.Store()
	if err != nil {
		t.Fatalf("assemble live store: %v", err)
	}
	if err := st.Validate(); err != nil {
		t.Fatalf("live store contents invalid: %v", err)
	}
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLiveStoreAppendAndReopen(t *testing.T) {
	dir := t.TempDir()
	recs := genStream(1, 50)
	want := streamRows(recs)

	ls, err := OpenLive(dir, liveTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if err := ls.Append(rec); err != nil {
			t.Fatalf("append record %d: %v", i, err)
		}
	}
	if ls.Rows() != len(want) {
		t.Fatalf("acked %d rows, want %d", ls.Rows(), len(want))
	}
	if ls.SealedSegments() == 0 {
		t.Fatal("no segments sealed at this volume")
	}
	st, err := ls.Store()
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != len(want) {
		t.Fatalf("store holds %d rows, want %d", st.Len(), len(want))
	}
	// Row order is the canonical batch-contiguous order, which for a
	// batch-ordered append stream is exactly submission order.
	for i, in := range want {
		if st.Row(i) != in {
			t.Fatalf("row %d = %+v, want %+v", i, st.Row(i), in)
		}
	}
	before := snapshotBytes(t, ls)
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}

	// A clean reopen rebuilds the identical state and accepts appends.
	ls, err = OpenLive(dir, liveTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	if ls.Rows() != len(want) {
		t.Fatalf("recovered %d rows, want %d", ls.Rows(), len(want))
	}
	if !bytes.Equal(snapshotBytes(t, ls), before) {
		t.Fatal("reopened store differs from the one that was closed")
	}
	extra := genStream(2, 1)[0]
	for i := range extra {
		extra[i].Batch += 1 << 20 // far past everything ingested
	}
	if err := ls.Append(extra); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if ls.Rows() != len(want)+len(extra) {
		t.Fatalf("rows %d after post-reopen append", ls.Rows())
	}
}

func TestLiveStoreRejectsBadAppends(t *testing.T) {
	dir := t.TempDir()
	ls, err := OpenLive(dir, liveTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	if err := ls.Append([]model.Instance{{Batch: 5}, {Batch: 3}}); err == nil {
		t.Fatal("out-of-order batches accepted")
	}
	if err := ls.Append([]model.Instance{{Batch: 7}}); err != nil {
		t.Fatalf("store poisoned by a rejected append: %v", err)
	}
	if err := ls.Append([]model.Instance{{Batch: 3}}); err == nil {
		t.Fatal("regressing batch accepted")
	}
	if got := ls.Rows(); got != 1 {
		t.Fatalf("rows %d after rejected appends, want 1", got)
	}
}

func TestLiveStoreCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	recs := genStream(3, 80)
	ls, err := OpenLive(dir, liveTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := ls.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := ls.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := snapshotBytes(t, ls)
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint must exist and the WAL prefix it covers be released.
	if _, err := os.Stat(filepath.Join(dir, "CHECKPOINT")); err != nil {
		t.Fatalf("no CHECKPOINT meta: %v", err)
	}
	ls, err = OpenLive(dir, liveTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	if !bytes.Equal(snapshotBytes(t, ls), before) {
		t.Fatal("recovered store differs after manual checkpoint")
	}
}

// TestCrashRecoveryProperty is the fault-injection property test: across
// randomized injected crash points — torn writes at byte granularity,
// failed fsyncs, and kills between arbitrary mutating operations
// (including every step of the checkpoint protocol) — recovery must
// yield a record-aligned prefix of the submitted stream containing every
// acknowledged append, bit-identical to an uncrashed process fed the
// same prefix.
func TestCrashRecoveryProperty(t *testing.T) {
	recs := genStream(4, 60)
	cfg := liveTestCfg
	cfg.Sync = wal.SyncAlways

	// Dry run: measure the workload's fault surface.
	dry := faultfs.New(vfs.OS{})
	{
		cfgDry := cfg
		cfgDry.FS = dry
		ls, err := OpenLive(t.TempDir(), cfgDry)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := ls.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		ls.Close()
	}
	totalBytes, totalOps, totalSyncs := dry.Stats()
	if totalBytes == 0 || totalOps == 0 || totalSyncs == 0 {
		t.Fatalf("dry run measured nothing: %d bytes, %d ops, %d syncs", totalBytes, totalOps, totalSyncs)
	}

	// Reference states: refBytes[k] is the canonical serialized contents
	// after ingesting records [0, k).
	refBytes := make([][]byte, len(recs)+1)
	prefixRows := make([]int, len(recs)+1)
	{
		ls, err := OpenLive(t.TempDir(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		refBytes[0] = snapshotBytes(t, ls)
		for k, rec := range recs {
			if err := ls.Append(rec); err != nil {
				t.Fatal(err)
			}
			refBytes[k+1] = snapshotBytes(t, ls)
			prefixRows[k+1] = prefixRows[k] + len(rec)
		}
		ls.Close()
	}

	const trials = 120
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < trials; trial++ {
		dir := t.TempDir()
		ffs := faultfs.New(vfs.OS{})
		kind := trial % 3
		switch kind {
		case 0:
			ffs.CrashAfterBytes(rng.Int63n(totalBytes + 1))
		case 1:
			ffs.CrashAfterOps(1 + rng.Intn(totalOps))
		case 2:
			ffs.FailSyncAt(1 + rng.Intn(totalSyncs))
		}

		// Run the workload until the injected crash stops it.
		acked, submitted := 0, 0
		cfgF := cfg
		cfgF.FS = ffs
		if ls, err := OpenLive(dir, cfgF); err == nil {
			for _, rec := range recs {
				submitted++
				if err := ls.Append(rec); err != nil {
					break
				}
				acked++
			}
			ls.Close()
		}

		// Recover on a clean filesystem; recovery must always succeed.
		rec, err := OpenLive(dir, cfg)
		if err != nil {
			t.Fatalf("trial %d (kind %d): recovery failed: %v", trial, kind, err)
		}
		got := rec.Rows()
		// Prefix property: a record-aligned prefix, no shorter than what
		// was acknowledged, no longer than what was submitted.
		if got < prefixRows[acked] || got > prefixRows[submitted] {
			t.Fatalf("trial %d (kind %d): recovered %d rows, acked %d..%d submitted",
				trial, kind, got, prefixRows[acked], prefixRows[submitted])
		}
		k := acked
		for ; k <= submitted; k++ {
			if prefixRows[k] == got {
				break
			}
		}
		if k > submitted {
			t.Fatalf("trial %d (kind %d): recovered %d rows is not a record boundary", trial, kind, got)
		}
		// Bit-identical to an uncrashed process fed the same k records.
		if !bytes.Equal(snapshotBytes(t, rec), refBytes[k]) {
			t.Fatalf("trial %d (kind %d): recovered store differs from reference after %d records", trial, kind, k)
		}
		rec.Close()
	}
}

// TestRecoverAfterWALTornBehindCheckpoint covers the nasty corner where
// damage truncates the WAL to before the checkpointed position: new
// appends must not land at LSNs the next recovery would skip.
func TestRecoverAfterWALTornBehindCheckpoint(t *testing.T) {
	dir := t.TempDir()
	recs := genStream(6, 40)
	ls, err := OpenLive(dir, liveTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := ls.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := ls.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ls.Close()
	// Destroy the whole WAL directory contents: everything sealed is in
	// the checkpoint, the open tail is lost.
	names, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range names {
		if err := os.Remove(filepath.Join(dir, "wal", e.Name())); err != nil {
			t.Fatal(err)
		}
	}
	ls, err = OpenLive(dir, liveTestCfg)
	if err != nil {
		t.Fatalf("recovery with destroyed WAL: %v", err)
	}
	recovered := ls.Rows()
	// Appends after this recovery must survive the next recovery.
	extra := []model.Instance{{Batch: 1 << 20, Start: 1, End: 2}}
	if err := ls.Append(extra); err != nil {
		t.Fatal(err)
	}
	ls.Close()
	ls, err = OpenLive(dir, liveTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	if ls.Rows() != recovered+1 {
		t.Fatalf("post-recovery append lost: %d rows, want %d", ls.Rows(), recovered+1)
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	for _, rec := range genStream(7, 20) {
		got, err := decodeRecord(encodeRecord(rec))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(rec) {
			t.Fatalf("decoded %d rows, want %d", len(got), len(rec))
		}
		for i := range rec {
			if got[i] != rec[i] {
				t.Fatalf("row %d = %+v, want %+v", i, got[i], rec[i])
			}
		}
	}
	// Damage must surface as an error, never as wrong rows.
	enc := encodeRecord(genStream(8, 1)[0])
	for _, bad := range [][]byte{
		{},
		{99},
		enc[:len(enc)-1],
		append(append([]byte(nil), enc...), 0),
	} {
		if _, err := decodeRecord(bad); err == nil {
			t.Fatalf("damaged record %x decoded", bad)
		}
	}
}

func TestLiveStorePoisonedAfterInjectedFailure(t *testing.T) {
	ffs := faultfs.New(vfs.OS{})
	cfg := liveTestCfg
	cfg.FS = ffs
	ls, err := OpenLive(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	if err := ls.Append([]model.Instance{{Batch: 1}}); err != nil {
		t.Fatal(err)
	}
	ffs.CrashAfterOps(1)
	if err := ls.Append([]model.Instance{{Batch: 2}}); err == nil {
		t.Fatal("append succeeded through a crashed filesystem")
	}
	if err := ls.Append([]model.Instance{{Batch: 3}}); !errors.Is(err, ErrLiveFailed) {
		t.Fatalf("append on poisoned store: %v, want ErrLiveFailed", err)
	}
}

func BenchmarkRecover(b *testing.B) {
	dir := b.TempDir()
	cfg := LiveConfig{SealRows: 4096, CheckpointRows: -1, Sync: wal.SyncNone}
	ls, err := OpenLive(dir, cfg)
	if err != nil {
		b.Fatal(err)
	}
	recs := genStream(9, 200) // ~4k rows
	var rows int
	for _, rec := range recs {
		if err := ls.Append(rec); err != nil {
			b.Fatal(err)
		}
		rows += len(rec)
	}
	// Half the rows behind a checkpoint, half replayed from the WAL, so
	// the benchmark weighs both recovery paths.
	if err := ls.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	for _, rec := range genStream(10, 200) {
		for i := range rec {
			rec[i].Batch += 1 << 20
		}
		if err := ls.Append(rec); err != nil {
			b.Fatal(err)
		}
		rows += len(rec)
	}
	if err := ls.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rows), "rows")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls, err := OpenLive(dir, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if ls.Rows() != rows {
			b.Fatalf("recovered %d rows, want %d", ls.Rows(), rows)
		}
		ls.Close()
	}
}

// collectTmpFiles returns every *.tmp path under dir, recursively.
func collectTmpFiles(t *testing.T, dir string) []string {
	t.Helper()
	var tmps []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".tmp" {
			tmps = append(tmps, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return tmps
}

// TestCheckpointSyncFailureLeavesNoTemp injects a non-crashing fsync
// failure into each of the checkpoint's two atomic file writes (the
// snapshot and the CHECKPOINT meta) and asserts the failed checkpoint
// removes its temp file. A leaked temp is harmless across a restart —
// open-time cleanup removes it — but a long-running server survives a
// failed checkpoint in the poisoned state without reopening, and must
// not shed one orphan per failure.
func TestCheckpointSyncFailureLeavesNoTemp(t *testing.T) {
	cfg := LiveConfig{SealRows: 40, CheckpointRows: -1, Sync: wal.SyncNone, SegmentBytes: 4096}
	recs := genStream(55, 60)
	for k := 1; k <= 2; k++ {
		dir := t.TempDir()
		ffs := faultfs.New(vfs.OS{})
		cfgF := cfg
		cfgF.FS = ffs
		ls, err := OpenLive(dir, cfgF)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := ls.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		_, _, syncs := ffs.Stats()
		ffs.FailSyncSoftAt(syncs + k)
		if err := ls.Checkpoint(); err == nil {
			t.Fatalf("sync failure %d: checkpoint succeeded", k)
		}
		if tmps := collectTmpFiles(t, dir); len(tmps) != 0 {
			t.Fatalf("sync failure %d: temp files leaked: %v", k, tmps)
		}
		if err := ls.Append(recs[0]); !errors.Is(err, ErrLiveFailed) {
			t.Fatalf("sync failure %d: store not poisoned after failed checkpoint: %v", k, err)
		}
		ls.Close()

		// The durable prefix recovers in full on a healthy filesystem.
		ls2, err := OpenLive(dir, cfg)
		if err != nil {
			t.Fatalf("sync failure %d: reopen: %v", k, err)
		}
		if got, want := ls2.Rows(), len(streamRows(recs)); got != want {
			t.Fatalf("sync failure %d: recovered %d rows, want %d", k, got, want)
		}
		ls2.Close()
	}
}

// TestLiveStoreDegradedOnDiskFull: ENOSPC on a WAL append moves the live
// store to the read-only degraded state — not the poisoned failed state.
// Reads keep serving the acked prefix, further appends and checkpoints
// are refused with ErrDegraded, and RecoverWrites restores service in
// place once the disk has space again, losing nothing that was acked.
func TestLiveStoreDegradedOnDiskFull(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(vfs.OS{})
	cfg := liveTestCfg
	cfg.FS = ffs
	ls, err := OpenLive(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := genStream(7, 15) // one stream: batch IDs stay non-decreasing across the fault window
	recs, extra := all[:12], all[12:]
	for i, rec := range recs {
		if err := ls.Append(rec); err != nil {
			t.Fatalf("append record %d: %v", i, err)
		}
	}
	acked := ls.Rows()
	before := snapshotBytes(t, ls)

	ffs.FailWritesWithErr(syscall.ENOSPC)
	err = ls.Append(extra[0])
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("append on full disk: %v, want ErrDegraded", err)
	}
	if errors.Is(err, ErrLiveFailed) {
		t.Fatalf("full disk poisoned the store: %v", err)
	}
	if deg, reason := ls.Degraded(); !deg || reason == "" {
		t.Fatalf("Degraded() = %v, %q", deg, reason)
	}
	// Degraded is sticky for writes: the next append is refused up front.
	if err := ls.Append(extra[1]); !errors.Is(err, ErrDegraded) {
		t.Fatalf("second append while degraded: %v", err)
	}
	if err := ls.Checkpoint(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("checkpoint while degraded: %v", err)
	}
	// ...but reads still serve the acked prefix, bit-identically.
	if ls.Rows() != acked {
		t.Fatalf("degraded store acks %d rows, had %d", ls.Rows(), acked)
	}
	if got := snapshotBytes(t, ls); !bytes.Equal(got, before) {
		t.Fatal("degraded store contents changed")
	}
	// Recovery while the disk is still full stays degraded.
	if err := ls.RecoverWrites(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("RecoverWrites on a still-full disk: %v", err)
	}

	ffs.FailWritesWithErr(nil) // space returns
	if err := ls.RecoverWrites(); err != nil {
		t.Fatalf("RecoverWrites: %v", err)
	}
	if deg, _ := ls.Degraded(); deg {
		t.Fatal("still degraded after RecoverWrites")
	}
	for i, rec := range extra {
		if err := ls.Append(rec); err != nil {
			t.Fatalf("append %d after recovery: %v", i, err)
		}
	}
	want := snapshotBytes(t, ls)
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	// The reopened directory replays to exactly what the recovered store
	// served: nothing acked before, during, or after the window is lost.
	ls2, err := OpenLive(dir, liveTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ls2.Close()
	if got := snapshotBytes(t, ls2); !bytes.Equal(got, want) {
		t.Fatal("reopen after degraded window diverges from live contents")
	}
}

// TestLiveStoreDegradedOnCheckpointDiskFull: ENOSPC during an explicit
// checkpoint degrades instead of poisoning — the WAL still holds every
// acked row, so nothing is lost and reads keep working.
func TestLiveStoreDegradedOnCheckpointDiskFull(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(vfs.OS{})
	cfg := liveTestCfg
	cfg.FS = ffs
	ls, err := OpenLive(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := genStream(9, 10)
	for _, rec := range recs {
		if err := ls.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	before := snapshotBytes(t, ls)

	ffs.FailWritesWithErr(syscall.ENOSPC)
	if err := ls.Checkpoint(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("checkpoint on full disk: %v, want ErrDegraded", err)
	}
	if deg, _ := ls.Degraded(); !deg {
		t.Fatal("store not degraded after checkpoint ENOSPC")
	}
	if got := snapshotBytes(t, ls); !bytes.Equal(got, before) {
		t.Fatal("degraded store contents changed")
	}

	ffs.FailWritesWithErr(nil)
	if err := ls.RecoverWrites(); err != nil {
		t.Fatalf("RecoverWrites: %v", err)
	}
	if err := ls.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}
	want := snapshotBytes(t, ls)
	ls.Close()
	ls2, err := OpenLive(dir, liveTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ls2.Close()
	if got := snapshotBytes(t, ls2); !bytes.Equal(got, want) {
		t.Fatal("reopen after checkpoint-degraded window diverges")
	}
}
