package store

import (
	"bytes"
	"testing"

	"crowdscope/internal/model"
)

// buildSegment fills a builder with `rows` rows per batch over the given
// interval and seals it.
func buildSegment(t *testing.T, batchLo, batchHi uint32, rowsPerBatch int) *Segment {
	t.Helper()
	b := NewBuilder(batchLo, batchHi)
	for id := batchLo; id < batchHi; id++ {
		b.BeginBatch(id)
		for i := 0; i < rowsPerBatch; i++ {
			b.Append(model.Instance{
				Batch: id, TaskType: id % 5, Item: uint32(i), Worker: uint32(i % 7),
				Start: int64(id)*1000 + int64(i), End: int64(id)*1000 + int64(i) + 30,
				Trust: 0.9, Answer: uint32(i),
			})
		}
	}
	return b.Seal()
}

func TestBuilderSealAssemble(t *testing.T) {
	segs := []*Segment{
		buildSegment(t, 0, 3, 2),
		buildSegment(t, 3, 5, 4),
		buildSegment(t, 5, 8, 1),
	}
	s, err := Assemble(8, segs)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if s.Len() != 3*2+2*4+3*1 {
		t.Fatalf("assembled %d rows", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("assembled store invalid: %v", err)
	}
	if got := s.NumSegments(); got != 3 {
		t.Fatalf("NumSegments = %d", got)
	}
	// Row order is canonical batch order and column values survive intact.
	prevBatch := uint32(0)
	for i := 0; i < s.Len(); i++ {
		row := s.Row(i)
		if row.Batch < prevBatch {
			t.Fatalf("row %d batch %d breaks canonical order", i, row.Batch)
		}
		prevBatch = row.Batch
		if row.End != row.Start+30 {
			t.Fatalf("row %d columns scrambled: %+v", i, row)
		}
	}
}

// TestAssembleBatchRangesContiguous: the merged ranges must partition the
// row space contiguously, including across segment boundaries.
func TestAssembleBatchRangesContiguous(t *testing.T) {
	segs := []*Segment{
		buildSegment(t, 0, 4, 3),
		buildSegment(t, 4, 6, 5),
		buildSegment(t, 6, 9, 2),
	}
	s, err := Assemble(9, segs)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	next := 0
	for b := 0; b < s.NumBatches(); b++ {
		lo, hi := s.BatchRange(uint32(b))
		if lo != next {
			t.Fatalf("batch %d starts at row %d, want %d (gap or overlap at a segment boundary)", b, lo, next)
		}
		next = hi
	}
	if next != s.Len() {
		t.Fatalf("ranges cover %d of %d rows", next, s.Len())
	}
	// Segment row spans line up with the covered batch ranges.
	for _, si := range s.Segments() {
		lo, _ := s.BatchRange(si.BatchLo)
		if lo != si.RowLo {
			t.Errorf("segment [%d,%d) first batch starts at %d, want %d", si.BatchLo, si.BatchHi, lo, si.RowLo)
		}
	}
}

func TestAssembleSkipsEmptyBatches(t *testing.T) {
	// Batches 1 and 3 covered but never begun; batch 5..7 not covered at all.
	b := NewBuilder(0, 5)
	for _, id := range []uint32{0, 2, 4} {
		b.BeginBatch(id)
		b.Append(model.Instance{Batch: id, Start: int64(id), End: int64(id) + 1})
	}
	s, err := Assemble(8, []*Segment{b.Seal()})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	for _, id := range []uint32{1, 3, 5, 6, 7} {
		if lo, hi := s.BatchRange(id); lo != hi {
			t.Errorf("batch %d should be empty, got [%d,%d)", id, lo, hi)
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("store invalid: %v", err)
	}
}

func TestAssembleRejectsBadLayouts(t *testing.T) {
	a := buildSegment(t, 0, 4, 1)
	overlapping := buildSegment(t, 2, 6, 1)
	if _, err := Assemble(8, []*Segment{a, overlapping}); err == nil {
		t.Error("overlapping batch intervals accepted")
	}
	tooBig := buildSegment(t, 4, 9, 1)
	if _, err := Assemble(8, []*Segment{a, tooBig}); err == nil {
		t.Error("segment exceeding numBatches accepted")
	}
	if _, err := Assemble(8, []*Segment{a, nil}); err == nil {
		t.Error("nil segment accepted")
	}
	outOfOrder := buildSegment(t, 4, 6, 1)
	if _, err := Assemble(8, []*Segment{outOfOrder, a}); err == nil {
		t.Error("out-of-order segments accepted")
	}
}

func TestBuilderMisusePanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("inverted interval", func() { NewBuilder(5, 3) })
	expectPanic("append without BeginBatch", func() {
		NewBuilder(0, 2).Append(model.Instance{})
	})
	expectPanic("batch outside interval", func() {
		NewBuilder(0, 2).BeginBatch(2)
	})
	expectPanic("append after seal", func() {
		b := NewBuilder(0, 2)
		b.BeginBatch(0)
		b.Seal()
		b.Append(model.Instance{})
	})
	expectPanic("double seal", func() {
		b := NewBuilder(0, 2)
		b.Seal()
		b.Seal()
	})
}

func TestSegmentsImplicitForDirectStores(t *testing.T) {
	s := sampleStore()
	if s.NumSegments() != 0 {
		t.Fatalf("direct store reports %d explicit segments", s.NumSegments())
	}
	segs := s.Segments()
	if len(segs) != 1 || segs[0].RowLo != 0 || segs[0].RowHi != s.Len() {
		t.Fatalf("implicit segment = %+v", segs)
	}
	if New(0).Segments() != nil {
		t.Error("empty store should have no segments")
	}
}

func TestDirectMutationDropsSegments(t *testing.T) {
	s, err := Assemble(4, []*Segment{buildSegment(t, 0, 4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSegments() != 1 {
		t.Fatal("expected one explicit segment")
	}
	s.BeginBatch(3)
	s.Append(model.Instance{Batch: 3, Start: 1, End: 2})
	if s.NumSegments() != 0 {
		t.Error("appending should degrade the store to the monolithic view")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("store invalid after degrade: %v", err)
	}
}

func TestSnapshotPreservesSegments(t *testing.T) {
	s, err := Assemble(6, []*Segment{
		buildSegment(t, 0, 3, 2),
		buildSegment(t, 3, 6, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	var back Store
	if _, err := back.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if back.NumSegments() != 2 {
		t.Fatalf("restored %d segments, want 2", back.NumSegments())
	}
	for i, si := range back.Segments() {
		if si != s.Segments()[i] {
			t.Errorf("segment %d differs: %+v vs %+v", i, si, s.Segments()[i])
		}
	}
	for i := 0; i < s.Len(); i++ {
		if s.Row(i) != back.Row(i) {
			t.Fatalf("row %d differs", i)
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("restored store invalid: %v", err)
	}
}

// TestSnapshotRoundTripEmptySegments: a store whose segments outnumber
// its rows (sealed-but-empty shards are legal) must survive the snapshot
// round trip.
func TestSnapshotRoundTripEmptySegments(t *testing.T) {
	one := NewBuilder(2, 4)
	one.BeginBatch(2)
	one.Append(model.Instance{Batch: 2, Start: 5, End: 9})
	s, err := Assemble(6, []*Segment{
		NewBuilder(0, 2).Seal(),
		one.Seal(),
		NewBuilder(4, 6).Seal(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	var back Store
	if _, err := back.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if back.Len() != 1 || back.NumSegments() != 3 {
		t.Fatalf("round trip: %d rows, %d segments", back.Len(), back.NumSegments())
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("restored store invalid: %v", err)
	}
}

// TestSnapshotReadsPreSegmentFormat: a version-1 snapshot (no segment
// table) still loads and reports a single implicit segment.
func TestSnapshotReadsPreSegmentFormat(t *testing.T) {
	s := sampleStore()
	raw := writeSnapshotLegacy(s, snapshotVersionV1)
	var back Store
	if _, err := back.ReadFrom(bytes.NewReader(raw)); err != nil {
		t.Fatalf("ReadFrom v1: %v", err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("v1 round trip length %d vs %d", back.Len(), s.Len())
	}
	if back.NumSegments() != 0 {
		t.Error("v1 snapshot should have no explicit segments")
	}
	if got := back.Segments(); len(got) != 1 || got[0].RowHi != s.Len() {
		t.Errorf("implicit segment = %+v", got)
	}
}
