package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"
)

// A manifest describes a sharded dataset: an ordered list of shard
// snapshot files partitioned by batch range, each carrying enough
// metadata — row count, batch interval, merged zone map, file size —
// that a query can decide whether to open the shard at all without
// touching its bytes. The layout follows the partition-plus-metadata
// design of multi-petabyte scientific stores: the manifest is tiny, the
// shards are plain v3 encoded snapshots (independently loadable), and
// all pruning state lives at the manifest level.
//
// On-disk layout, reusing the v3 section framing (kind, u32 LE payload
// length, u32 LE CRC32, payload):
//
//	8-byte header: u32 LE manifestMagic, u32 LE manifestVersion
//	secManifestMeta: uvarints { numBatches, shard count, total rows, flags }
//	secManifestShards, per shard:
//	    uvarint name length, name bytes (relative file name, no separators)
//	    uvarints { rows, batchLo, batchHi, segments, fileSize }
//	    the shard's merged zone map (encodeZone)
const (
	manifestMagic   = 0x4D575243 // "CRWM" little-endian on disk
	manifestVersion = 1

	secManifestMeta   byte = 0x11
	secManifestShards byte = 0x12

	// maxShardName bounds a shard file name; maxManifestShards bounds the
	// claimed shard count before the per-shard remaining-input checks.
	maxShardName      = 256
	maxManifestShards = 1 << 16
)

// ShardInfo is one manifest entry: a shard snapshot file plus the
// metadata manifest-level pruning runs on.
type ShardInfo struct {
	// Name is the shard file name, relative to the manifest's directory.
	Name string
	// Rows is the shard's row count.
	Rows int
	// BatchLo and BatchHi bound the shard's batch IDs: [BatchLo, BatchHi).
	// Shards ascend by batch interval without overlap.
	BatchLo, BatchHi uint32
	// Segments is the shard snapshot's segment count.
	Segments int
	// FileSize is the shard file's size in bytes.
	FileSize int64
	// Zone summarizes every row of the shard (the merge of its segments'
	// zone maps); a query whose predicates cannot intersect it skips the
	// shard without opening the file.
	Zone ZoneMap
}

// Manifest lists the shards of a dataset in batch order.
type Manifest struct {
	// NumBatches is the global batch-range table size shared by every
	// shard.
	NumBatches int
	Shards     []ShardInfo
}

// TotalRows returns the dataset's row count across all shards.
func (m *Manifest) TotalRows() int {
	total := 0
	for i := range m.Shards {
		total += m.Shards[i].Rows
	}
	return total
}

// TotalBytes returns the summed size of all shard files.
func (m *Manifest) TotalBytes() int64 {
	var total int64
	for i := range m.Shards {
		total += m.Shards[i].FileSize
	}
	return total
}

// validShardName reports whether a shard name is usable as a relative
// file name: non-empty, bounded, and free of path separators (shard
// files always live next to their manifest).
func validShardName(name string) bool {
	if name == "" || len(name) > maxShardName || name == "." || name == ".." {
		return false
	}
	return !strings.ContainsAny(name, "/\\\x00")
}

// validate checks the structural invariants shared by the writer and
// reader: valid names, non-negative counts, ascending non-overlapping
// batch intervals inside the batch table, and zone row counts matching
// the shards they summarize.
func (m *Manifest) validate() error {
	if m.NumBatches < 0 || m.NumBatches > math.MaxInt32 {
		return fmt.Errorf("%w: manifest batch count %d", ErrCorrupt, m.NumBatches)
	}
	batchOff := uint32(0)
	for i := range m.Shards {
		si := &m.Shards[i]
		if !validShardName(si.Name) {
			return fmt.Errorf("%w: shard %d name %q invalid", ErrCorrupt, i, si.Name)
		}
		if si.Rows < 0 || si.Segments < 0 || si.FileSize < 0 {
			return fmt.Errorf("%w: shard %q counts negative", ErrCorrupt, si.Name)
		}
		if si.Rows > 0 && si.Segments == 0 {
			return fmt.Errorf("%w: shard %q has %d rows but no segments", ErrCorrupt, si.Name, si.Rows)
		}
		if si.BatchLo < batchOff || si.BatchHi < si.BatchLo || int(si.BatchHi) > m.NumBatches {
			return fmt.Errorf("%w: shard %q batch interval [%d,%d) invalid at offset %d", ErrCorrupt, si.Name, si.BatchLo, si.BatchHi, batchOff)
		}
		if si.Zone.Rows != si.Rows {
			return fmt.Errorf("%w: shard %q zone covers %d rows, shard has %d", ErrCorrupt, si.Name, si.Zone.Rows, si.Rows)
		}
		batchOff = si.BatchHi
	}
	return nil
}

// WriteManifest serializes the manifest, returning the bytes written.
func WriteManifest(w io.Writer, m *Manifest) (int64, error) {
	if err := m.validate(); err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], manifestMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], manifestVersion)
	cw.Write(hdr[:])

	var payload bytes.Buffer
	putUvarint(&payload, uint64(m.NumBatches))
	putUvarint(&payload, uint64(len(m.Shards)))
	putUvarint(&payload, uint64(m.TotalRows()))
	putUvarint(&payload, 0) // flags, reserved
	writeSection(cw, secManifestMeta, payload.Bytes())

	payload.Reset()
	for i := range m.Shards {
		si := &m.Shards[i]
		putUvarint(&payload, uint64(len(si.Name)))
		payload.WriteString(si.Name)
		putUvarint(&payload, uint64(si.Rows))
		putUvarint(&payload, uint64(si.BatchLo))
		putUvarint(&payload, uint64(si.BatchHi))
		putUvarint(&payload, uint64(si.Segments))
		putUvarint(&payload, uint64(si.FileSize))
		encodeZone(&payload, &si.Zone)
	}
	writeSection(cw, secManifestShards, payload.Bytes())

	if err := bw.Flush(); err != nil && cw.err == nil {
		return cw.n, err
	}
	return cw.n, cw.err
}

// ReadManifest parses and validates a manifest, returning it with the
// bytes consumed. Every claimed count is bounded by input actually
// present before it allocates.
func ReadManifest(r io.Reader) (*Manifest, int64, error) {
	cr := &countingReader{r: bufio.NewReader(r)}
	var scratch []byte
	hdr, err := readN(cr, 8, &scratch)
	if err != nil {
		return nil, cr.n, asTruncated(err)
	}
	if magic := binary.LittleEndian.Uint32(hdr[0:4]); magic != manifestMagic {
		return nil, cr.n, fmt.Errorf("%w: %#x is not a manifest", ErrBadMagic, magic)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != manifestVersion {
		return nil, cr.n, fmt.Errorf("%w: manifest version %d", ErrBadVersion, v)
	}

	payload, err := readSection(cr, secManifestMeta, "manifest meta", &scratch)
	if err != nil {
		return nil, cr.n, err
	}
	sr := &sliceReader{buf: payload}
	var counts [4]uint64 // numBatches, shards, total rows, flags
	for i := range counts {
		if counts[i], err = getUvarint(sr); err != nil {
			return nil, cr.n, sectionErr("manifest meta", asTruncated(err))
		}
	}
	nb, nshards, totalRows := counts[0], counts[1], counts[2]
	if nb > math.MaxInt32 || nshards > maxManifestShards || totalRows > math.MaxInt32 {
		return nil, cr.n, sectionErr("manifest meta", fmt.Errorf("%w: counts overflow", ErrCorrupt))
	}
	if sr.remaining() != 0 {
		return nil, cr.n, sectionErr("manifest meta", fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, sr.remaining()))
	}

	payload, err = readSection(cr, secManifestShards, "manifest shards", &scratch)
	if err != nil {
		return nil, cr.n, err
	}
	sr = &sliceReader{buf: payload}
	// Each shard entry needs at least a name byte, five count uvarints,
	// and a minimal zone map (~30 bytes); two bytes per claimed shard is a
	// cheap, safe pre-allocation bound.
	if int(nshards)*2 > len(payload) {
		return nil, cr.n, sectionErr("manifest shards", fmt.Errorf("%w: %d shards cannot fit in %d bytes", ErrCorrupt, nshards, len(payload)))
	}
	man := &Manifest{NumBatches: int(nb), Shards: make([]ShardInfo, nshards)}
	for i := range man.Shards {
		si := &man.Shards[i]
		nameLen, err := getUvarint(sr)
		if err != nil {
			return nil, cr.n, sectionErr("manifest shards", asTruncated(err))
		}
		if nameLen > maxShardName {
			return nil, cr.n, sectionErr("manifest shards", fmt.Errorf("%w: shard %d name of %d bytes", ErrCorrupt, i, nameLen))
		}
		name, err := sr.take(int(nameLen))
		if err != nil {
			return nil, cr.n, sectionErr("manifest shards", err)
		}
		si.Name = string(name)
		var vals [5]uint64 // rows, batchLo, batchHi, segments, fileSize
		for j := range vals {
			if vals[j], err = getUvarint(sr); err != nil {
				return nil, cr.n, sectionErr("manifest shards", asTruncated(err))
			}
		}
		if vals[0] > math.MaxInt32 || vals[1] > math.MaxUint32 || vals[2] > math.MaxUint32 ||
			vals[3] > math.MaxInt32 || vals[4] > math.MaxInt64/2 {
			return nil, cr.n, sectionErr("manifest shards", fmt.Errorf("%w: shard %d counts overflow", ErrCorrupt, i))
		}
		si.Rows = int(vals[0])
		si.BatchLo, si.BatchHi = uint32(vals[1]), uint32(vals[2])
		si.Segments = int(vals[3])
		si.FileSize = int64(vals[4])
		zone, err := decodeZone(sr, si.Rows, i)
		if err != nil {
			return nil, cr.n, sectionErr("manifest shards", err)
		}
		si.Zone = zone
	}
	if sr.remaining() != 0 {
		return nil, cr.n, sectionErr("manifest shards", fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, sr.remaining()))
	}
	if err := man.validate(); err != nil {
		return nil, cr.n, err
	}
	if man.TotalRows() != int(totalRows) {
		return nil, cr.n, fmt.Errorf("%w: manifest claims %d rows, shards hold %d", ErrCorrupt, totalRows, man.TotalRows())
	}
	return man, cr.n, nil
}

// mergeShardZones folds per-segment zone maps into one per-shard zone:
// min/max bounds merge, and the enum sets union when every contributing
// segment kept one and the union stays within the cap.
func mergeShardZones(zs []ZoneMap) ZoneMap {
	var out ZoneMap
	rows := 0
	tts, ans := enumSet{cap: zoneEnumCap}, enumSet{cap: zoneEnumCap}
	ttOK, anOK := true, true
	for i := range zs {
		z := &zs[i]
		if z.Rows == 0 {
			continue
		}
		if rows == 0 {
			out = *z
		} else {
			out.TaskTypeMin = min(out.TaskTypeMin, z.TaskTypeMin)
			out.TaskTypeMax = max(out.TaskTypeMax, z.TaskTypeMax)
			out.ItemMin = min(out.ItemMin, z.ItemMin)
			out.ItemMax = max(out.ItemMax, z.ItemMax)
			out.WorkerMin = min(out.WorkerMin, z.WorkerMin)
			out.WorkerMax = max(out.WorkerMax, z.WorkerMax)
			out.AnswerMin = min(out.AnswerMin, z.AnswerMin)
			out.AnswerMax = max(out.AnswerMax, z.AnswerMax)
			out.StartMin = min(out.StartMin, z.StartMin)
			out.StartMax = max(out.StartMax, z.StartMax)
			out.EndMin = min(out.EndMin, z.EndMin)
			out.EndMax = max(out.EndMax, z.EndMax)
			out.TrustMin = min(out.TrustMin, z.TrustMin)
			out.TrustMax = max(out.TrustMax, z.TrustMax)
		}
		rows += z.Rows
		if z.TaskTypes == nil {
			ttOK = false
		} else {
			for _, v := range z.TaskTypes {
				tts.add(v)
			}
		}
		if z.Answers == nil {
			anOK = false
		} else {
			for _, v := range z.Answers {
				ans.add(v)
			}
		}
	}
	out.Rows = rows
	out.TaskTypes, out.Answers = nil, nil
	if ttOK && !tts.overflow {
		out.TaskTypes = tts.vals
	}
	if anOK && !ans.overflow {
		out.Answers = ans.vals
	}
	return out
}
