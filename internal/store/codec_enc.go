package store

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"crowdscope/internal/par"
)

// Encoded column blocks (secEncBlock): the on-disk form of one segment's
// SegmentEnc, written when meta carries metaFlagEncoded. Layout:
//
//	uvarint rows
//	5 × uint32 column   (batch, taskType, item, worker, answer):
//	    byte code
//	    CodeRaw:  rows × uint32 LE
//	    CodeRLE:  uvarint nruns, uint32 valRef LE, byte wv, byte wl,
//	              run values bitstream (nruns × wv, offsets from valRef),
//	              run lengths bitstream (nruns × wl, length-1 each)
//	    CodeDict: byte width, uvarint dictLen, dictLen × uint32 LE,
//	              packedWords(rows,width) × uint64 LE
//	    CodeFOR:  byte uw, uint32 ref LE, then (uw > 0) the frame
//	              streams: one width byte per 64-row frame, frame
//	              reference offsets bitstream (uw bits each), frame
//	              payload bitstream (rows × per-frame width)
//	2 × int64 column    (start, end-offset): as CodeRaw (int64 LE) or
//	    CodeFOR with an int64 reference
//	1 × float32 column  (trust): CodeRaw (float32 LE), CodeDict or
//	    uniform CodeFOR over the IEEE-754 bit patterns
//
// FOR columns are frame-packed on disk only: the decoder transcodes the
// 64-row frames back to the uniform-width in-memory form the scan
// kernels index in O(1). Every length is derived from rows/width/counts
// and checked against the remaining payload *before* it is allocated,
// and the decoder enforces the canonical form the encoder produces
// (references are true minima, widths are exact, runs are maximal,
// every dictionary code is used), so forged run counts, bit widths or
// dictionary sizes error out without over-allocating. Block row counts
// are additionally capped at encBlockMaxRows — segments too large for
// that cap snapshot through the uncompressed varint path instead.

// encBlockMaxRows bounds the rows one encoded block may claim. A fully
// constant segment legally encodes to a few dozen bytes, so rows are not
// input-backed the way varint blocks were; the cap bounds what any block
// can make the loader (or a later materialization) allocate.
const encBlockMaxRows = 1 << 22

// --- bit streams ----------------------------------------------------

// bitWriter packs values LSB-first into a byte stream, emitting whole
// little-endian words so the hot path costs no per-byte calls.
type bitWriter struct {
	buf   *bytes.Buffer
	acc   uint64
	nbits uint
}

func (w *bitWriter) write(v uint64, width uint8) {
	if width == 0 {
		return
	}
	v &= uint64(1)<<width - 1
	w.acc |= v << w.nbits
	if w.nbits+uint(width) >= 64 {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], w.acc)
		w.buf.Write(b[:])
		// Go defines x>>64 as 0, so a word-aligned boundary resets acc.
		w.acc = v >> (64 - w.nbits)
		w.nbits = w.nbits + uint(width) - 64
	} else {
		w.nbits += uint(width)
	}
}

func (w *bitWriter) flush() {
	for w.nbits > 0 {
		w.buf.WriteByte(byte(w.acc))
		w.acc >>= 8
		if w.nbits >= 8 {
			w.nbits -= 8
		} else {
			w.nbits = 0
		}
	}
}

// bitReader reads values LSB-first from a byte stream. Reading past the
// end yields zero bits; callers size the stream exactly, and the
// canonical-form checks reject any mismatch that zero padding could hide.
type bitReader struct {
	b     []byte
	pos   int
	acc   uint64
	nbits uint
}

func (r *bitReader) read(width uint8) uint64 {
	if width == 0 {
		return 0
	}
	if width > 32 {
		lo := r.read(32)
		return lo | r.read(width-32)<<32
	}
	for r.nbits < uint(width) && r.pos < len(r.b) {
		r.acc |= uint64(r.b[r.pos]) << r.nbits
		r.pos++
		r.nbits += 8
	}
	v := r.acc & (1<<width - 1)
	r.acc >>= width
	if r.nbits >= uint(width) {
		r.nbits -= uint(width)
	} else {
		r.nbits = 0
	}
	return v
}

// wordPacker writes sequential fixed-width values into a word array (the
// in-memory packed form).
type wordPacker struct {
	words []uint64
	bit   int
}

func (p *wordPacker) put(v uint64, width uint8) {
	w, b := p.bit>>6, uint(p.bit&63)
	p.words[w] |= v << b
	if b+uint(width) > 64 {
		p.words[w+1] |= v >> (64 - b)
	}
	p.bit += int(width)
}

func bitStreamBytes(count int, width uint8) int {
	return (count*int(width) + 7) / 8
}

// --- fixed-width array helpers --------------------------------------

func putU32sLE(b *bytes.Buffer, vs []uint32) {
	var scratch [4 * 1024]byte
	for len(vs) > 0 {
		n := min(len(vs), 1024)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(scratch[i*4:], vs[i])
		}
		b.Write(scratch[:n*4])
		vs = vs[n:]
	}
}

func putU64sLE(b *bytes.Buffer, vs []uint64) {
	var scratch [8 * 1024]byte
	for len(vs) > 0 {
		n := min(len(vs), 1024)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(scratch[i*8:], vs[i])
		}
		b.Write(scratch[:n*8])
		vs = vs[n:]
	}
}

func putI64sLE(b *bytes.Buffer, vs []int64) {
	var scratch [8 * 1024]byte
	for len(vs) > 0 {
		n := min(len(vs), 1024)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(scratch[i*8:], uint64(vs[i]))
		}
		b.Write(scratch[:n*8])
		vs = vs[n:]
	}
}

func putF32sLE(b *bytes.Buffer, vs []float32) {
	var scratch [4 * 1024]byte
	for len(vs) > 0 {
		n := min(len(vs), 1024)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(scratch[i*4:], math.Float32bits(vs[i]))
		}
		b.Write(scratch[:n*4])
		vs = vs[n:]
	}
}

// take returns the next n payload bytes without copying, or ErrCorrupt
// when fewer remain — the pre-allocation bound every decoded array goes
// through.
func (s *sliceReader) take(n int) ([]byte, error) {
	if n < 0 || s.remaining() < n {
		return nil, fmt.Errorf("%w: %d bytes needed, %d remain", ErrCorrupt, n, s.remaining())
	}
	b := s.buf[s.pos : s.pos+n]
	s.pos += n
	return b, nil
}

func getU32sLE(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

func getU64sLE(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

func getI64sLE(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func getF32sLE(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// --- FOR frame stream ------------------------------------------------

// frameShape describes one FOR column's disk frames, derived from the
// uniform-width packed deltas.
type frameShape struct {
	refOffs []uint64 // per-frame minimum delta
	widths  []uint8  // per-frame local width
	bits    int      // total payload bits
}

func forFrameShape(packed []uint64, uw uint8, n int) frameShape {
	nf := (n + frameRows - 1) / frameRows
	sh := frameShape{refOffs: make([]uint64, nf), widths: make([]uint8, nf)}
	for f := 0; f < nf; f++ {
		lo, hi := f*frameRows, min((f+1)*frameRows, n)
		mn, mx := unpackAt(packed, uw, lo), unpackAt(packed, uw, lo)
		for i := lo + 1; i < hi; i++ {
			d := unpackAt(packed, uw, i)
			mn, mx = min(mn, d), max(mx, d)
		}
		sh.refOffs[f] = mn
		sh.widths[f] = bitsForU64(mx - mn)
		sh.bits += int(sh.widths[f]) * (hi - lo)
	}
	return sh
}

// forDiskBytes returns the serialized size of the frame streams.
func (sh *frameShape) diskBytes(uw uint8) int {
	return len(sh.widths) + bitStreamBytes(len(sh.refOffs), uw) + (sh.bits+7)/8
}

// writeFORFrames serializes the frame streams of one FOR column.
func writeFORFrames(b *bytes.Buffer, packed []uint64, uw uint8, n int) {
	sh := forFrameShape(packed, uw, n)
	b.Write(sh.widths[:])
	bw := bitWriter{buf: b}
	for _, off := range sh.refOffs {
		bw.write(off, uw)
	}
	bw.flush()
	for f := range sh.widths {
		lo, hi := f*frameRows, min((f+1)*frameRows, n)
		fw := sh.widths[f]
		for i := lo; i < hi; i++ {
			bw.write(unpackAt(packed, uw, i)-sh.refOffs[f], fw)
		}
	}
	bw.flush()
}

// readFORFrames decodes the frame streams back into uniform-width packed
// deltas, enforcing the canonical form: every frame width is exact and
// locally anchored at zero, the global minimum delta is zero, and the
// global maximum needs exactly uw bits. Returns the packed words and the
// maximum delta (for the caller's overflow check against its reference).
func readFORFrames(sr *sliceReader, rows int, uw uint8) ([]uint64, uint64, error) {
	nf := (rows + frameRows - 1) / frameRows
	widths, err := sr.take(nf)
	if err != nil {
		return nil, 0, err
	}
	payloadBits := 0
	for f, fw := range widths {
		if fw > uw {
			return nil, 0, fmt.Errorf("%w: frame width %d exceeds column width %d", ErrCorrupt, fw, uw)
		}
		lo, hi := f*frameRows, min((f+1)*frameRows, rows)
		payloadBits += int(fw) * (hi - lo)
	}
	refBytes, err := sr.take(bitStreamBytes(nf, uw))
	if err != nil {
		return nil, 0, err
	}
	payload, err := sr.take((payloadBits + 7) / 8)
	if err != nil {
		return nil, 0, err
	}
	packed := make([]uint64, packedWords(rows, uw))
	wp := wordPacker{words: packed}
	refs := bitReader{b: refBytes}
	vals := bitReader{b: payload}
	maxUW := uint64(1)<<uw - 1
	globalMin, globalMax := ^uint64(0), uint64(0)
	for f := 0; f < nf; f++ {
		refOff := refs.read(uw)
		fw := widths[f]
		lo, hi := f*frameRows, min((f+1)*frameRows, rows)
		localMin, localMax := ^uint64(0), uint64(0)
		for i := lo; i < hi; i++ {
			d := vals.read(fw)
			localMin, localMax = min(localMin, d), max(localMax, d)
			v := refOff + d
			if v > maxUW {
				return nil, 0, fmt.Errorf("%w: FOR delta exceeds column width", ErrCorrupt)
			}
			wp.put(v, uw)
			globalMin, globalMax = min(globalMin, v), max(globalMax, v)
		}
		if localMin != 0 || bitsForU64(localMax) != fw {
			return nil, 0, fmt.Errorf("%w: non-canonical FOR frame", ErrCorrupt)
		}
	}
	if globalMin != 0 || bitsForU64(globalMax) != uw {
		return nil, 0, fmt.Errorf("%w: non-canonical FOR column", ErrCorrupt)
	}
	return packed, globalMax, nil
}

// --- column serializers ----------------------------------------------

func rleShape(e *EncodedU32) (ref uint32, wv, wl uint8) {
	mn, mx := e.RunVals[0], e.RunVals[0]
	maxLen := uint32(0)
	prev := uint32(0)
	for i, v := range e.RunVals {
		mn, mx = min(mn, v), max(mx, v)
		l := e.RunEnds[i] - prev
		maxLen = max(maxLen, l)
		prev = e.RunEnds[i]
	}
	return mn, bitsForU64(uint64(mx - mn)), bitsForU64(uint64(maxLen - 1))
}

func writeEncU32(b *bytes.Buffer, e *EncodedU32) {
	b.WriteByte(byte(e.Code))
	switch e.Code {
	case CodeRaw:
		putU32sLE(b, e.Raw)
	case CodeRLE:
		ref, wv, wl := rleShape(e)
		putUvarint(b, uint64(len(e.RunVals)))
		var r [4]byte
		binary.LittleEndian.PutUint32(r[:], ref)
		b.Write(r[:])
		b.WriteByte(wv)
		b.WriteByte(wl)
		bw := bitWriter{buf: b}
		for _, v := range e.RunVals {
			bw.write(uint64(v-ref), wv)
		}
		bw.flush()
		prev := uint32(0)
		for _, end := range e.RunEnds {
			bw.write(uint64(end-prev-1), wl)
			prev = end
		}
		bw.flush()
	case CodeDict:
		b.WriteByte(e.Width)
		putUvarint(b, uint64(len(e.Dict)))
		putU32sLE(b, e.Dict)
		putU64sLE(b, e.Packed)
	case CodeFOR:
		b.WriteByte(e.Width)
		var r [4]byte
		binary.LittleEndian.PutUint32(r[:], e.Ref)
		b.Write(r[:])
		if e.Width > 0 {
			writeFORFrames(b, e.Packed, e.Width, e.N)
		}
	}
}

func writeEncI64(b *bytes.Buffer, e *EncodedI64) {
	b.WriteByte(byte(e.Code))
	if e.Code == CodeRaw {
		putI64sLE(b, e.Raw)
		return
	}
	b.WriteByte(e.Width)
	var r [8]byte
	binary.LittleEndian.PutUint64(r[:], uint64(e.Ref))
	b.Write(r[:])
	if e.Width > 0 {
		writeFORFrames(b, e.Packed, e.Width, e.N)
	}
}

func writeEncF32(b *bytes.Buffer, e *EncodedF32) {
	b.WriteByte(byte(e.Code))
	switch e.Code {
	case CodeRaw:
		putF32sLE(b, e.Raw)
	case CodeDict:
		b.WriteByte(e.Width)
		putUvarint(b, uint64(len(e.Dict)))
		putU32sLE(b, e.Dict)
		putU64sLE(b, e.Packed)
	case CodeFOR:
		b.WriteByte(e.Width)
		var r [4]byte
		binary.LittleEndian.PutUint32(r[:], e.Ref)
		b.Write(r[:])
		if e.Width > 0 {
			writeFORFrames(b, e.Packed, e.Width, e.N)
		}
	}
}

// serializeEncBlock writes one segment's encoded columns as a block
// payload. It returns the base-relative split offsets the footer index
// records: offs[0] is the end of the leading rows uvarint and disk
// column c spans [offs[c], offs[c+1]), so offs[8] is the payload length.
func serializeEncBlock(b *bytes.Buffer, e *SegmentEnc) [9]int {
	var offs [9]int
	base := b.Len()
	putUvarint(b, uint64(e.Rows))
	offs[0] = b.Len() - base
	writeEncU32(b, &e.Batch)
	offs[1] = b.Len() - base
	writeEncU32(b, &e.TaskType)
	offs[2] = b.Len() - base
	writeEncU32(b, &e.Item)
	offs[3] = b.Len() - base
	writeEncU32(b, &e.Worker)
	offs[4] = b.Len() - base
	writeEncU32(b, &e.Answer)
	offs[5] = b.Len() - base
	writeEncI64(b, &e.Start)
	offs[6] = b.Len() - base
	writeEncI64(b, &e.EndOff)
	offs[7] = b.Len() - base
	writeEncF32(b, &e.Trust)
	offs[8] = b.Len() - base
	return offs
}

// --- serialized-size accounting --------------------------------------

func (e *EncodedU32) encodedBytes() int64 {
	switch e.Code {
	case CodeRLE:
		_, wv, wl := rleShape(e)
		nr := len(e.RunVals)
		return int64(1 + uvarintLen(uint64(nr)) + 4 + 2 + bitStreamBytes(nr, wv) + bitStreamBytes(nr, wl))
	case CodeDict:
		return int64(2 + uvarintLen(uint64(len(e.Dict))) + 4*len(e.Dict) + 8*len(e.Packed))
	case CodeFOR:
		if e.Width == 0 {
			return 6
		}
		sh := forFrameShape(e.Packed, e.Width, e.N)
		return int64(6 + sh.diskBytes(e.Width))
	default:
		return int64(1 + 4*len(e.Raw))
	}
}

func (e *EncodedI64) encodedBytes() int64 {
	if e.Code == CodeFOR {
		if e.Width == 0 {
			return 10
		}
		sh := forFrameShape(e.Packed, e.Width, e.N)
		return int64(10 + sh.diskBytes(e.Width))
	}
	return int64(1 + 8*len(e.Raw))
}

func (e *EncodedF32) encodedBytes() int64 {
	switch e.Code {
	case CodeDict:
		return int64(2 + uvarintLen(uint64(len(e.Dict))) + 4*len(e.Dict) + 8*len(e.Packed))
	case CodeFOR:
		if e.Width == 0 {
			return 6
		}
		sh := forFrameShape(e.Packed, e.Width, e.N)
		return int64(6 + sh.diskBytes(e.Width))
	default:
		return int64(1 + 4*len(e.Raw))
	}
}

// encodedPayloadBytes returns a fast upper bound on the serialized size
// of one encoded block; the writer uses it only to group blocks into
// bounded waves, so it avoids the per-value frame scan the exact
// accounting (encodedBytes) performs.
func (e *SegmentEnc) encodedPayloadBytes() int64 {
	frames := int64((e.Rows + frameRows - 1) / frameRows)
	boundU32 := func(c *EncodedU32) int64 {
		return int64(16+4*len(c.Raw)+8*len(c.RunVals)+4*len(c.Dict)+8*len(c.Packed)) + 9*frames
	}
	boundI64 := func(c *EncodedI64) int64 {
		return int64(16+8*len(c.Raw)+8*len(c.Packed)) + 9*frames
	}
	return boundU32(&e.Batch) + boundU32(&e.TaskType) + boundU32(&e.Item) +
		boundU32(&e.Worker) + boundU32(&e.Answer) +
		boundI64(&e.Start) + boundI64(&e.EndOff) +
		int64(16+4*len(e.Trust.Raw)+4*len(e.Trust.Dict)+8*len(e.Trust.Packed)) + 9*frames
}

// --- column deserializers --------------------------------------------

// readDict decodes and fully validates one dictionary (shared by the
// uint32 and float32 columns): sorted strictly ascending, canonical
// width, every code in range and used.
func readDict(sr *sliceReader, rows int) (dict []uint32, width uint8, packed []uint64, err error) {
	if width, err = sr.ReadByte(); err != nil {
		return nil, 0, nil, asTruncated(err)
	}
	nd, err := getUvarint(sr)
	if err != nil {
		return nil, 0, nil, asTruncated(err)
	}
	if nd == 0 || nd > dictMaxEntries || width != bitsForU64(nd-1) {
		return nil, 0, nil, fmt.Errorf("%w: dictionary of %d entries at width %d", ErrCorrupt, nd, width)
	}
	db, err := sr.take(int(nd) * 4)
	if err != nil {
		return nil, 0, nil, err
	}
	dict = getU32sLE(db)
	for i := 1; i < len(dict); i++ {
		if dict[i] <= dict[i-1] {
			return nil, 0, nil, fmt.Errorf("%w: dictionary not strictly ascending", ErrCorrupt)
		}
	}
	pb, err := sr.take(packedWords(rows, width) * 8)
	if err != nil {
		return nil, 0, nil, err
	}
	packed = getU64sLE(pb)
	var seen uint64
	if width == 0 {
		seen = 1
	} else {
		for i := 0; i < rows; i++ {
			code := unpackAt(packed, width, i)
			if code >= nd {
				return nil, 0, nil, fmt.Errorf("%w: dictionary code out of range", ErrCorrupt)
			}
			seen |= 1 << code
		}
	}
	if seen != uint64(1)<<nd-1 {
		return nil, 0, nil, fmt.Errorf("%w: unused dictionary entries", ErrCorrupt)
	}
	return dict, width, packed, nil
}

func readEncU32(sr *sliceReader, rows int, e *EncodedU32) error {
	code, err := sr.ReadByte()
	if err != nil {
		return asTruncated(err)
	}
	e.Code, e.N = ColumnCode(code), rows
	switch e.Code {
	case CodeRaw:
		b, err := sr.take(4 * rows)
		if err != nil {
			return err
		}
		e.Raw = getU32sLE(b)
	case CodeRLE:
		nruns, err := getUvarint(sr)
		if err != nil {
			return asTruncated(err)
		}
		if nruns == 0 || nruns > uint64(rows) {
			return fmt.Errorf("%w: %d runs for %d rows", ErrCorrupt, nruns, rows)
		}
		hdr, err := sr.take(6)
		if err != nil {
			return err
		}
		ref := binary.LittleEndian.Uint32(hdr)
		wv, wl := hdr[4], hdr[5]
		if wv > 32 || wl > 31 {
			return fmt.Errorf("%w: run widths %d/%d", ErrCorrupt, wv, wl)
		}
		nr := int(nruns)
		valBytes, err := sr.take(bitStreamBytes(nr, wv))
		if err != nil {
			return err
		}
		lenBytes, err := sr.take(bitStreamBytes(nr, wl))
		if err != nil {
			return err
		}
		e.RunVals = make([]uint32, nr)
		e.RunEnds = make([]uint32, nr)
		br := bitReader{b: valBytes}
		maxD := uint64(0)
		minD := ^uint64(0)
		for i := 0; i < nr; i++ {
			d := br.read(wv)
			minD, maxD = min(minD, d), max(maxD, d)
			if d > uint64(math.MaxUint32)-uint64(ref) {
				return fmt.Errorf("%w: run value overflows uint32", ErrCorrupt)
			}
			v := ref + uint32(d)
			if i > 0 && v == e.RunVals[i-1] {
				return fmt.Errorf("%w: non-maximal runs", ErrCorrupt)
			}
			e.RunVals[i] = v
		}
		if minD != 0 || bitsForU64(maxD) != wv {
			return fmt.Errorf("%w: non-canonical run values", ErrCorrupt)
		}
		br = bitReader{b: lenBytes}
		total := uint64(0)
		maxL := uint64(0)
		for i := 0; i < nr; i++ {
			l := br.read(wl) + 1
			maxL = max(maxL, l)
			total += l
			if total > uint64(rows) {
				return fmt.Errorf("%w: runs cover more than %d rows", ErrCorrupt, rows)
			}
			e.RunEnds[i] = uint32(total)
		}
		if total != uint64(rows) {
			return fmt.Errorf("%w: runs cover %d of %d rows", ErrCorrupt, total, rows)
		}
		if bitsForU64(maxL-1) != wl {
			return fmt.Errorf("%w: non-canonical run lengths", ErrCorrupt)
		}
	case CodeDict:
		if e.Dict, e.Width, e.Packed, err = readDict(sr, rows); err != nil {
			return err
		}
	case CodeFOR:
		if e.Width, err = sr.ReadByte(); err != nil {
			return asTruncated(err)
		}
		if e.Width > 32 {
			return fmt.Errorf("%w: FOR width %d exceeds 32", ErrCorrupt, e.Width)
		}
		rb, err := sr.take(4)
		if err != nil {
			return err
		}
		e.Ref = binary.LittleEndian.Uint32(rb)
		if e.Width > 0 {
			packed, maxD, err := readFORFrames(sr, rows, e.Width)
			if err != nil {
				return err
			}
			if maxD > uint64(math.MaxUint32)-uint64(e.Ref) {
				return fmt.Errorf("%w: FOR delta overflows uint32", ErrCorrupt)
			}
			e.Packed = packed
		}
	default:
		return fmt.Errorf("%w: unknown column code %d", ErrCorrupt, code)
	}
	return nil
}

func readEncI64(sr *sliceReader, rows int, e *EncodedI64) error {
	code, err := sr.ReadByte()
	if err != nil {
		return asTruncated(err)
	}
	e.Code, e.N = ColumnCode(code), rows
	switch e.Code {
	case CodeRaw:
		b, err := sr.take(8 * rows)
		if err != nil {
			return err
		}
		e.Raw = getI64sLE(b)
	case CodeFOR:
		if e.Width, err = sr.ReadByte(); err != nil {
			return asTruncated(err)
		}
		if e.Width > maxFORWidthI64 {
			return fmt.Errorf("%w: FOR width %d exceeds %d", ErrCorrupt, e.Width, maxFORWidthI64)
		}
		rb, err := sr.take(8)
		if err != nil {
			return err
		}
		e.Ref = int64(binary.LittleEndian.Uint64(rb))
		if e.Width > 0 {
			packed, maxD, err := readFORFrames(sr, rows, e.Width)
			if err != nil {
				return err
			}
			if e.Ref >= 0 && maxD > uint64(math.MaxInt64)-uint64(e.Ref) {
				return fmt.Errorf("%w: FOR delta overflows int64", ErrCorrupt)
			}
			e.Packed = packed
		}
	default:
		return fmt.Errorf("%w: column code %d invalid for int64", ErrCorrupt, code)
	}
	return nil
}

func readEncF32(sr *sliceReader, rows int, e *EncodedF32) error {
	code, err := sr.ReadByte()
	if err != nil {
		return asTruncated(err)
	}
	e.Code, e.N = ColumnCode(code), rows
	switch e.Code {
	case CodeRaw:
		b, err := sr.take(4 * rows)
		if err != nil {
			return err
		}
		e.Raw = getF32sLE(b)
	case CodeDict:
		if e.Dict, e.Width, e.Packed, err = readDict(sr, rows); err != nil {
			return err
		}
	case CodeFOR:
		if e.Width, err = sr.ReadByte(); err != nil {
			return asTruncated(err)
		}
		if e.Width > 32 {
			return fmt.Errorf("%w: FOR width %d exceeds 32", ErrCorrupt, e.Width)
		}
		rb, err := sr.take(4)
		if err != nil {
			return err
		}
		e.Ref = binary.LittleEndian.Uint32(rb)
		if e.Width > 0 {
			packed, maxD, err := readFORFrames(sr, rows, e.Width)
			if err != nil {
				return err
			}
			if maxD > uint64(math.MaxUint32)-uint64(e.Ref) {
				return fmt.Errorf("%w: FOR delta overflows uint32", ErrCorrupt)
			}
			e.Packed = packed
		}
	default:
		return fmt.Errorf("%w: column code %d invalid for float32", ErrCorrupt, code)
	}
	return nil
}

// decodeEncBlock decodes and validates one encoded block payload into a
// self-contained SegmentEnc (all arrays copied out of the payload).
func decodeEncBlock(payload []byte, rows int) (SegmentEnc, error) {
	var e SegmentEnc
	sr := &sliceReader{buf: payload}
	claimed, err := getUvarint(sr)
	if err != nil {
		return e, asTruncated(err)
	}
	if claimed > encBlockMaxRows || int(claimed) != rows {
		return e, fmt.Errorf("%w: block claims %d rows, segment has %d", ErrCorrupt, claimed, rows)
	}
	e.Rows = rows
	for _, col := range []*EncodedU32{&e.Batch, &e.TaskType, &e.Item, &e.Worker, &e.Answer} {
		if err := readEncU32(sr, rows, col); err != nil {
			return e, err
		}
	}
	if err := readEncI64(sr, rows, &e.Start); err != nil {
		return e, err
	}
	if err := readEncI64(sr, rows, &e.EndOff); err != nil {
		return e, err
	}
	if err := readEncF32(sr, rows, &e.Trust); err != nil {
		return e, err
	}
	if sr.remaining() != 0 {
		return e, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, sr.remaining())
	}
	return e, nil
}

// materializeInto decodes the block's columns into rows [lo, lo+Rows) of
// the store's raw arrays (which must already be grown past lo+Rows).
func (e *SegmentEnc) materializeInto(st *Store, lo int) {
	hi := lo + e.Rows
	e.Batch.DecodeInto(st.batch[lo:hi])
	e.TaskType.DecodeInto(st.taskType[lo:hi])
	e.Item.DecodeInto(st.item[lo:hi])
	e.Worker.DecodeInto(st.worker[lo:hi])
	e.Answer.DecodeInto(st.answer[lo:hi])
	e.Start.DecodeInto(st.start[lo:hi])
	e.EndOff.DecodeInto(st.end[lo:hi])
	for i := lo; i < hi; i++ {
		st.end[i] += st.start[i]
	}
	e.Trust.DecodeInto(st.trust[lo:hi])
}

// readEncodedBlocks decodes the encoded column blocks of a v3 snapshot.
// In strict mode the store ends up encoded-resident (raw columns
// materialize lazily later); in repair mode blocks decode straight into
// raw columns, damaged blocks zero-fill (appended to damagedSpans for the
// batch-column rebuild), and claimed-but-unbacked rows are capped so a
// forged segment table cannot out-allocate the input.
func readEncodedBlocks(cr *countingReader, st *Store, n, nblocks, workers int, repair bool, rep *LoadReport, damagedSpans *[][2]int) error {
	var nonEmpty []int
	for i := range st.segs {
		if st.segs[i].Rows() > 0 {
			nonEmpty = append(nonEmpty, i)
		}
	}
	if nblocks != len(nonEmpty) {
		return sectionErr("meta", fmt.Errorf("%w: %d encoded blocks for %d non-empty segments", ErrCorrupt, nblocks, len(nonEmpty)))
	}

	if !repair {
		st.encs = make([]SegmentEnc, len(st.segs))
		bufs := make([][]byte, max(min(maxBlockWave, len(nonEmpty)), 1))
		type wb struct {
			blockIdx, segIdx int
			payload          []byte
		}
		wave := make([]wb, 0, len(bufs))
		for b := 0; b < len(nonEmpty); b += len(wave) {
			wave = wave[:0]
			waveBytes := 0
			for b+len(wave) < len(nonEmpty) && len(wave) < len(bufs) &&
				(len(wave) == 0 || waveBytes < blockWaveBytes) {
				i := b + len(wave)
				payload, err := readSection(cr, secEncBlock, fmt.Sprintf("column block %d", i), &bufs[len(wave)])
				if err != nil {
					return err
				}
				wave = append(wave, wb{blockIdx: i, segIdx: nonEmpty[i], payload: payload})
				waveBytes += len(payload)
			}
			if err := par.EachShardErr(len(wave), workers, func(_ context.Context, lo, hi int) error {
				for k := lo; k < hi; k++ {
					enc, err := decodeEncBlock(wave[k].payload, st.segs[wave[k].segIdx].Rows())
					if err != nil {
						return sectionErr(fmt.Sprintf("column block %d", wave[k].blockIdx), err)
					}
					st.encs[wave[k].segIdx] = enc
				}
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	}

	// Repair: sequential, materializing. unbacked tracks zero-filled rows
	// beyond what the damaged payload bytes plausibly back (legitimate
	// blocks carry several bytes per row; one per row is a generous
	// floor), so a forged segment table cannot repair-"recover" into an
	// arbitrarily large zeroed store.
	var buf []byte
	unbacked := 0
	for bi, segIdx := range nonEmpty {
		si := st.segs[segIdx]
		name := fmt.Sprintf("column block %d", bi)
		payload, err := readSection(cr, secEncBlock, name, &buf)
		checksumBad := err != nil && errors.Is(err, ErrChecksum) && payload != nil
		if err != nil && !checksumBad {
			// Truncated or unframeable: recover everything before this
			// block and zero-fill the rest, capped — the remaining rows are
			// claimed by the segment table, not backed by input.
			rep.Damaged = append(rep.Damaged, name)
			if n-si.RowLo > repairMaxFillRows {
				return sectionErr(name, fmt.Errorf("%w: %d of %d claimed rows missing, beyond repair", ErrCorrupt, n-si.RowLo, n))
			}
			growColumns(st, n)
			*damagedSpans = append(*damagedSpans, [2]int{si.RowLo, n})
			return nil
		}
		damaged := checksumBad
		var enc SegmentEnc
		if !damaged {
			if enc, err = decodeEncBlock(payload, si.Rows()); err != nil {
				damaged = true
			}
		}
		if damaged {
			unbacked += max(0, si.Rows()-len(payload))
			if unbacked > repairMaxFillRows {
				return sectionErr(name, fmt.Errorf("%w: %d claimed rows unbacked by input, beyond repair", ErrCorrupt, unbacked))
			}
			growColumns(st, si.RowHi)
			rep.Damaged = append(rep.Damaged, name)
			*damagedSpans = append(*damagedSpans, [2]int{si.RowLo, si.RowHi})
			continue
		}
		growColumns(st, si.RowHi)
		enc.materializeInto(st, si.RowLo)
	}
	growColumns(st, n)
	return nil
}
