// Package store holds the task-instance log in columnar form: one typed
// array per attribute, grouped contiguously by batch. At full scale the
// dataset is 27M rows, so the layout matters — analyses scan one or two
// columns at a time (e.g. weekly arrival counts read only Start), and the
// columnar form keeps those scans cache-friendly and cheap to snapshot.
package store

import (
	"errors"
	"fmt"
	"sort"

	"crowdscope/internal/model"
)

// Store is the columnar instance log. Rows are ordered by batch: all
// instances of a batch are contiguous, recorded in Ranges.
type Store struct {
	batch    []uint32
	taskType []uint32
	item     []uint32
	worker   []uint32
	start    []int64
	end      []int64
	trust    []float32
	answer   []uint32

	// ranges[batchID] is the [lo,hi) row range of a batch; batches with
	// no materialized instances have lo == hi.
	ranges []rowRange

	// segs records the segment layout when the store was produced by
	// Assemble (or restored from a segmented snapshot). Direct mutation
	// through BeginBatch/Append drops it: the store degrades gracefully to
	// the monolithic view.
	segs []SegmentInfo

	// zones holds one zone map per segment when known (sealed in by
	// Assemble, loaded from a v3 snapshot, or computed lazily by
	// ZoneMaps); nil until then.
	zones []ZoneMap

	workerIndex map[uint32][]int32 // lazy posting lists, built on demand
}

type rowRange struct{ Lo, Hi int32 }

// New returns an empty store sized for the given number of batches.
func New(numBatches int) *Store {
	return &Store{ranges: make([]rowRange, numBatches)}
}

// Len returns the number of instance rows.
func (s *Store) Len() int { return len(s.start) }

// NumBatches returns the size of the batch range table.
func (s *Store) NumBatches() int { return len(s.ranges) }

// BeginBatch marks the start of batchID's rows; all Append calls until the
// next BeginBatch belong to it. Batches must be appended in ascending
// row order (any batch ID order is fine).
func (s *Store) BeginBatch(batchID uint32) {
	if int(batchID) >= len(s.ranges) {
		// Grow the range table; batch IDs are dense in practice.
		grown := make([]rowRange, batchID+1)
		copy(grown, s.ranges)
		s.ranges = grown
	}
	n := int32(len(s.start))
	s.ranges[batchID] = rowRange{Lo: n, Hi: n}
	s.segs = nil
	s.zones = nil
}

// Append adds one instance row to the currently open batch.
func (s *Store) Append(in model.Instance) {
	s.batch = append(s.batch, in.Batch)
	s.taskType = append(s.taskType, in.TaskType)
	s.item = append(s.item, in.Item)
	s.worker = append(s.worker, in.Worker)
	s.start = append(s.start, in.Start)
	s.end = append(s.end, in.End)
	s.trust = append(s.trust, in.Trust)
	s.answer = append(s.answer, in.Answer)
	s.ranges[in.Batch].Hi = int32(len(s.start))
	s.workerIndex = nil
	s.segs = nil
	s.zones = nil
}

// Row materializes row i as an Instance.
func (s *Store) Row(i int) model.Instance {
	return model.Instance{
		Batch:    s.batch[i],
		TaskType: s.taskType[i],
		Item:     s.item[i],
		Worker:   s.worker[i],
		Start:    s.start[i],
		End:      s.end[i],
		Trust:    s.trust[i],
		Answer:   s.answer[i],
	}
}

// Column accessors return the backing arrays; callers must not modify
// them. They exist because scans over one column are the hot path of every
// experiment.

// Batches returns the batch-ID column.
func (s *Store) Batches() []uint32 { return s.batch }

// TaskTypes returns the task-type column.
func (s *Store) TaskTypes() []uint32 { return s.taskType }

// Items returns the item-ID column.
func (s *Store) Items() []uint32 { return s.item }

// Workers returns the worker-ID column.
func (s *Store) Workers() []uint32 { return s.worker }

// Starts returns the start-time column (unix seconds).
func (s *Store) Starts() []int64 { return s.start }

// Ends returns the end-time column (unix seconds).
func (s *Store) Ends() []int64 { return s.end }

// Trusts returns the trust-score column.
func (s *Store) Trusts() []float32 { return s.trust }

// Answers returns the answer-token column.
func (s *Store) Answers() []uint32 { return s.answer }

// BatchRange returns the [lo,hi) row range of a batch.
func (s *Store) BatchRange(batchID uint32) (lo, hi int) {
	if int(batchID) >= len(s.ranges) {
		return 0, 0
	}
	rr := s.ranges[batchID]
	return int(rr.Lo), int(rr.Hi)
}

// BatchRows calls fn for each row of a batch.
func (s *Store) BatchRows(batchID uint32, fn func(row int)) {
	lo, hi := s.BatchRange(batchID)
	for i := lo; i < hi; i++ {
		fn(i)
	}
}

// WorkerRows returns the rows of one worker, building the posting-list
// index on first use.
func (s *Store) WorkerRows(workerID uint32) []int32 {
	if s.workerIndex == nil {
		s.buildWorkerIndex()
	}
	return s.workerIndex[workerID]
}

// DistinctWorkers returns the number of workers with at least one row.
func (s *Store) DistinctWorkers() int {
	if s.workerIndex == nil {
		s.buildWorkerIndex()
	}
	return len(s.workerIndex)
}

// EachWorker iterates (workerID, rows) pairs in ascending worker order.
func (s *Store) EachWorker(fn func(workerID uint32, rows []int32)) {
	if s.workerIndex == nil {
		s.buildWorkerIndex()
	}
	ids := make([]uint32, 0, len(s.workerIndex))
	for id := range s.workerIndex {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		fn(id, s.workerIndex[id])
	}
}

// workerIndexParallelMin is the row count above which the posting-list
// build fans out across segments; below it a single pass is faster than
// spawning goroutines and merging maps.
const workerIndexParallelMin = 1 << 16

func (s *Store) buildWorkerIndex() {
	if s.Len() < workerIndexParallelMin {
		idx := make(map[uint32][]int32)
		for i, w := range s.worker {
			idx[w] = append(idx[w], int32(i))
		}
		s.workerIndex = idx
		return
	}
	// Segment-aware build: each chunk (aligned to segment boundaries where
	// possible) builds its own postings; chunk-order merging preserves the
	// ascending row order the analyses rely on.
	parts := ParallelScan(s, 0, func(lo, hi int) map[uint32][]int32 {
		m := make(map[uint32][]int32)
		for i := lo; i < hi; i++ {
			m[s.worker[i]] = append(m[s.worker[i]], int32(i))
		}
		return m
	})
	idx := make(map[uint32][]int32)
	for _, part := range parts {
		for w, rows := range part {
			idx[w] = append(idx[w], rows...)
		}
	}
	s.workerIndex = idx
}

// Validate checks the structural invariants: ranges partition the rows
// they cover, per-row batch IDs match their range, and end >= start.
func (s *Store) Validate() error {
	n := len(s.start)
	for _, col := range []int{len(s.batch), len(s.taskType), len(s.item), len(s.worker), len(s.end), len(s.trust), len(s.answer)} {
		if col != n {
			return errors.New("store: column length mismatch")
		}
	}
	for b, rr := range s.ranges {
		if rr.Lo > rr.Hi || int(rr.Hi) > n {
			return fmt.Errorf("store: bad range for batch %d: [%d,%d)", b, rr.Lo, rr.Hi)
		}
		for i := rr.Lo; i < rr.Hi; i++ {
			if s.batch[i] != uint32(b) {
				return fmt.Errorf("store: row %d in range of batch %d has batch %d", i, b, s.batch[i])
			}
		}
	}
	for i := 0; i < n; i++ {
		if s.end[i] < s.start[i] {
			return fmt.Errorf("store: row %d ends before it starts", i)
		}
	}
	// Segment layout invariants: row spans partition [0,n) contiguously,
	// batch intervals ascend without overlap, and every batch range lies
	// inside the row span of the segment covering its batch ID.
	if len(s.segs) > 0 {
		rowOff, batchOff := 0, uint32(0)
		for i, si := range s.segs {
			if si.RowLo != rowOff || si.RowHi < si.RowLo {
				return fmt.Errorf("store: segment %d rows [%d,%d) not contiguous at offset %d", i, si.RowLo, si.RowHi, rowOff)
			}
			if si.BatchLo < batchOff || si.BatchHi < si.BatchLo || int(si.BatchHi) > len(s.ranges) {
				return fmt.Errorf("store: segment %d batch interval [%d,%d) invalid", i, si.BatchLo, si.BatchHi)
			}
			for b := si.BatchLo; b < si.BatchHi; b++ {
				rr := s.ranges[b]
				if rr.Lo == rr.Hi {
					continue
				}
				if int(rr.Lo) < si.RowLo || int(rr.Hi) > si.RowHi {
					return fmt.Errorf("store: batch %d range [%d,%d) escapes segment %d rows [%d,%d)", b, rr.Lo, rr.Hi, i, si.RowLo, si.RowHi)
				}
			}
			rowOff, batchOff = si.RowHi, si.BatchHi
		}
		if rowOff != n {
			return fmt.Errorf("store: segments cover %d of %d rows", rowOff, n)
		}
	}
	// Zone maps, when present, must pair one-to-one with the segment
	// layout they summarize. Read under the fill mutex: Validate may run
	// alongside queries whose first ZoneMaps call fills the cache.
	if zones := s.zoneSnapshot(); len(zones) > 0 {
		segs := s.Segments()
		if len(zones) != len(segs) {
			return fmt.Errorf("store: %d zone maps for %d segments", len(zones), len(segs))
		}
		for i, z := range zones {
			if z.Rows != segs[i].Rows() {
				return fmt.Errorf("store: zone map %d covers %d rows, segment has %d", i, z.Rows, segs[i].Rows())
			}
		}
	}
	return nil
}
