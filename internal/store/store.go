// Package store holds the task-instance log in columnar form: one typed
// array per attribute, grouped contiguously by batch. At full scale the
// dataset is 27M rows, so the layout matters — analyses scan one or two
// columns at a time (e.g. weekly arrival counts read only Start), and the
// columnar form keeps those scans cache-friendly and cheap to snapshot.
package store

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"crowdscope/internal/model"
	"crowdscope/internal/par"
)

// Store is the columnar instance log. Rows are ordered by batch: all
// instances of a batch are contiguous, recorded in Ranges.
//
// A store carries its rows in up to two forms: the flat raw column
// arrays below, and per-segment lightweight encodings (see colenc.go).
// Stores built by Assemble hold both; stores loaded from a compressed v3
// snapshot arrive encoded-only and materialize raw columns lazily, one
// column at a time, on first accessor use. The query engine scans the
// encoded form directly, so count-style queries over a loaded snapshot
// never pay for materialization.
type Store struct {
	batch    []uint32
	taskType []uint32
	item     []uint32
	worker   []uint32
	start    []int64
	end      []int64
	trust    []float32
	answer   []uint32

	// rows is the authoritative row count; with lazy materialization the
	// raw arrays above may be shorter (nil) than the store is long.
	rows int

	// ranges[batchID] is the [lo,hi) row range of a batch; batches with
	// no materialized instances have lo == hi.
	ranges []rowRange

	// segs records the segment layout when the store was produced by
	// Assemble (or restored from a segmented snapshot). Direct mutation
	// through BeginBatch/Append drops it: the store degrades gracefully to
	// the monolithic view.
	segs []SegmentInfo

	// zones holds one zone map per segment when known (sealed in by
	// Assemble, loaded from a v3 snapshot, or computed lazily by
	// ZoneMaps); nil until then.
	zones []ZoneMap

	// encs holds one column encoding per segment when known (sealed in at
	// Builder.Seal and carried through Assemble, or loaded from a
	// compressed v3 snapshot); nil when the store is raw-only.
	encs []SegmentEnc

	workerIndex map[uint32][]int32 // lazy posting lists, built on demand

	// partial marks a store backed by a dataset shard whose encodings are
	// loaded selectively (see dataset.go): only columns recorded in
	// loadedCols hold real data, and materializing any other column is a
	// programming error the fill path turns into a panic.
	partial    bool
	loadedCols colMask // guarded by fill.mu

	// gen is the store's generation: a process-monotonic identity drawn
	// from a global counter at construction, never reused within a
	// process. The query planner keys its plan cache on it — unlike the
	// store's address, a generation can never alias a freed store whose
	// memory was recycled. Live-store views share one generation per
	// sealed-segment set (see LiveStore.View), which is what lets hot
	// plans survive open-tail refreshes. Zero means "unversioned" (a
	// zero-value store that never passed through a constructor); the
	// planner refuses to cache those.
	gen uint64

	// fill guards the store's lazy fills: raw-column materialization,
	// zone maps, segment encodings. It sits behind a pointer because the
	// Store itself is installed by value in ReadSnapshot (a contained
	// mutex would outlaw that); every constructor allocates one, and
	// copies share it. Zero-value stores (no constructor) fall back to a
	// package-level state — they can carry no encodings, so the fallback
	// only ever guards a lazy zone-map fill.
	fill *fillState
}

// fillState carries the lazy-fill guards: mu for the shared slices
// (zones, encs, loadedCols) and one mutex per raw column, so concurrent
// queries materializing different columns never serialize on each other.
// Lock ordering: a column mutex is never acquired while holding mu.
type fillState struct {
	mu   sync.Mutex
	cols [8]sync.Mutex // indexed by colIndex, i.e. colMask bit order
}

// zeroStoreFill serves stores built without a constructor.
var zeroStoreFill fillState

// fillRef returns the state guarding this store's lazy fills.
func (s *Store) fillRef() *fillState {
	if s.fill != nil {
		return s.fill
	}
	return &zeroStoreFill
}

// fillMutex returns the mutex guarding this store's shared lazy fills.
func (s *Store) fillMutex() *sync.Mutex { return &s.fillRef().mu }

// colIndex maps a single-column mask to its fillState.cols slot.
func colIndex(m colMask) int { return bits.TrailingZeros16(uint16(m)) }

type rowRange struct{ Lo, Hi int32 }

// colMask names the raw columns a caller needs materialized.
type colMask uint16

const (
	colMaskBatch colMask = 1 << iota
	colMaskTaskType
	colMaskItem
	colMaskWorker
	colMaskStart
	colMaskEnd
	colMaskTrust
	colMaskAnswer

	colMaskAll colMask = colMaskBatch | colMaskTaskType | colMaskItem |
		colMaskWorker | colMaskStart | colMaskEnd | colMaskTrust | colMaskAnswer
)

// ColumnSet selects raw columns for selective loading and
// materialization; dataset shards (see dataset.go) read only the
// selected columns' bytes.
type ColumnSet = colMask

// Exported column selectors, one per store column.
const (
	ColSetBatch    ColumnSet = colMaskBatch
	ColSetTaskType ColumnSet = colMaskTaskType
	ColSetItem     ColumnSet = colMaskItem
	ColSetWorker   ColumnSet = colMaskWorker
	ColSetStart    ColumnSet = colMaskStart
	ColSetEnd      ColumnSet = colMaskEnd
	ColSetTrust    ColumnSet = colMaskTrust
	ColSetAnswer   ColumnSet = colMaskAnswer
	ColSetAll      ColumnSet = colMaskAll
)

// ensure materializes the requested raw columns from the segment
// encodings if they are not yet resident. It is safe under concurrent
// readers — each column fills under its own guard, so queries
// materializing different columns proceed in parallel — and a no-op for
// raw-backed stores.
func (s *Store) ensure(mask colMask) {
	if s.rows == 0 {
		return
	}
	if mask&colMaskEnd != 0 {
		// End reconstructs as Start + EndOff.
		mask |= colMaskStart
	}
	fs := s.fillRef()
	fs.mu.Lock()
	encs := s.encs
	var notLoaded colMask
	if s.partial {
		notLoaded = mask &^ s.loadedCols
	}
	fs.mu.Unlock()
	if notLoaded != 0 {
		panic(fmt.Sprintf("store: columns %#x not loaded in partial dataset shard; call Shard.EnsureColumns first", uint16(notLoaded)))
	}
	if len(encs) == 0 {
		return
	}
	// Fixed fill order with Start strictly before End: the End fill reads
	// the materialized Start column.
	for _, m := range [...]colMask{colMaskBatch, colMaskTaskType, colMaskItem,
		colMaskWorker, colMaskStart, colMaskTrust, colMaskAnswer, colMaskEnd} {
		if mask&m != 0 {
			s.ensureCol(fs, m, encs)
		}
	}
}

// ensureCol fills one raw column under its per-column guard.
func (s *Store) ensureCol(fs *fillState, m colMask, encs []SegmentEnc) {
	fs.cols[colIndex(m)].Lock()
	defer fs.cols[colIndex(m)].Unlock()
	n := s.rows
	if s.colLen(m) == n {
		return
	}
	switch m {
	case colMaskBatch:
		s.batch = s.decodeU32(encs, func(e *SegmentEnc) *EncodedU32 { return &e.Batch })
	case colMaskTaskType:
		s.taskType = s.decodeU32(encs, func(e *SegmentEnc) *EncodedU32 { return &e.TaskType })
	case colMaskItem:
		s.item = s.decodeU32(encs, func(e *SegmentEnc) *EncodedU32 { return &e.Item })
	case colMaskWorker:
		s.worker = s.decodeU32(encs, func(e *SegmentEnc) *EncodedU32 { return &e.Worker })
	case colMaskAnswer:
		s.answer = s.decodeU32(encs, func(e *SegmentEnc) *EncodedU32 { return &e.Answer })
	case colMaskStart:
		dst := make([]int64, n)
		par.EachShard(len(s.segs), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				si := s.segs[i]
				if si.Rows() > 0 {
					encs[i].Start.DecodeInto(dst[si.RowLo:si.RowHi])
				}
			}
		})
		s.start = dst
	case colMaskTrust:
		dst := make([]float32, n)
		par.EachShard(len(s.segs), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				si := s.segs[i]
				if si.Rows() > 0 {
					encs[i].Trust.DecodeInto(dst[si.RowLo:si.RowHi])
				}
			}
		})
		s.trust = dst
	case colMaskEnd:
		dst := make([]int64, n)
		// Safe unsynchronized read: this goroutine held the Start guard in
		// ensure's fixed fill order before reaching End, and a filled
		// column is never written again.
		starts := s.start
		par.EachShard(len(s.segs), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				si := s.segs[i]
				if si.Rows() == 0 {
					continue
				}
				encs[i].EndOff.DecodeInto(dst[si.RowLo:si.RowHi])
				for r := si.RowLo; r < si.RowHi; r++ {
					dst[r] += starts[r]
				}
			}
		})
		s.end = dst
	}
}

// colLen returns the current length of one raw column array.
func (s *Store) colLen(m colMask) int {
	switch m {
	case colMaskBatch:
		return len(s.batch)
	case colMaskTaskType:
		return len(s.taskType)
	case colMaskItem:
		return len(s.item)
	case colMaskWorker:
		return len(s.worker)
	case colMaskStart:
		return len(s.start)
	case colMaskEnd:
		return len(s.end)
	case colMaskTrust:
		return len(s.trust)
	case colMaskAnswer:
		return len(s.answer)
	}
	return 0
}

// decodeU32 materializes one uint32 column across all segments.
func (s *Store) decodeU32(encs []SegmentEnc, pick func(*SegmentEnc) *EncodedU32) []uint32 {
	dst := make([]uint32, s.rows)
	par.EachShard(len(s.segs), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			si := s.segs[i]
			if si.Rows() > 0 {
				pick(&encs[i]).DecodeInto(dst[si.RowLo:si.RowHi])
			}
		}
	})
	return dst
}

// SegmentEncodings returns the per-segment column encodings, or nil when
// the store carries none (direct-append stores, pre-compression
// snapshots). It never computes encodings; use Encodings for that.
func (s *Store) SegmentEncodings() []SegmentEnc {
	mu := s.fillMutex()
	mu.Lock()
	defer mu.Unlock()
	return s.encs
}

// Encodings returns one SegmentEnc per explicit segment, encoding the raw
// columns on first use for stores that predate encodings (old snapshots).
// It returns nil for stores without an explicit segment layout.
func (s *Store) Encodings() []SegmentEnc {
	fs := s.fillRef()
	fs.mu.Lock()
	if len(s.segs) == 0 {
		fs.mu.Unlock()
		return nil
	}
	if len(s.encs) == len(s.segs) {
		encs := s.encs
		fs.mu.Unlock()
		return encs
	}
	fs.mu.Unlock()
	// Encode outside the shared mutex: ensure takes the per-column
	// guards, which are never acquired while fs.mu is held.
	s.ensure(colMaskAll)
	encs := make([]SegmentEnc, len(s.segs))
	par.EachShard(len(s.segs), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			si := s.segs[i]
			encs[i] = encodeSegmentColumns(
				s.batch[si.RowLo:si.RowHi], s.taskType[si.RowLo:si.RowHi],
				s.item[si.RowLo:si.RowHi], s.worker[si.RowLo:si.RowHi],
				s.answer[si.RowLo:si.RowHi],
				s.start[si.RowLo:si.RowHi], s.end[si.RowLo:si.RowHi],
				s.trust[si.RowLo:si.RowHi])
		}
	})
	fs.mu.Lock()
	if len(s.encs) == len(s.segs) {
		encs = s.encs // a concurrent fill won; both results are identical
	} else {
		s.encs = encs
	}
	fs.mu.Unlock()
	return encs
}

// Residency reports which raw columns are currently materialized, without
// triggering materialization. The query planner uses it to choose between
// raw and encoded scan kernels; a stale answer only costs performance,
// never correctness.
type Residency struct {
	Batch, TaskType, Item, Worker, Start, End, Trust, Answer bool
}

// Residency returns the store's current raw-column residency. Each
// column's length is read under that column's fill guard, so the answer
// is consistent per column alongside concurrent materialization.
func (s *Store) Residency() Residency {
	if s.rows == 0 {
		return Residency{true, true, true, true, true, true, true, true}
	}
	fs := s.fillRef()
	n := s.rows
	var r Residency
	read := func(m colMask, dst *bool) {
		fs.cols[colIndex(m)].Lock()
		*dst = s.colLen(m) == n
		fs.cols[colIndex(m)].Unlock()
	}
	read(colMaskBatch, &r.Batch)
	read(colMaskTaskType, &r.TaskType)
	read(colMaskItem, &r.Item)
	read(colMaskWorker, &r.Worker)
	read(colMaskStart, &r.Start)
	read(colMaskEnd, &r.End)
	read(colMaskTrust, &r.Trust)
	read(colMaskAnswer, &r.Answer)
	return r
}

// storeGen is the process-wide generation counter; 0 is reserved for
// unversioned zero-value stores.
var storeGen atomic.Uint64

// NextGeneration draws a fresh, never-reused store generation. It is
// exported for callers that version store-shaped snapshots of their own
// (LiveStore draws one per sealed-segment set).
func NextGeneration() uint64 { return storeGen.Add(1) }

// Generation returns the store's construction generation: non-zero and
// process-unique for stores built by a constructor (New, Assemble, a
// snapshot load), zero for zero-value stores. Two different generations
// mean two different stores; live-store views deliberately share one
// generation while only their open tail differs.
func (s *Store) Generation() uint64 { return s.gen }

// New returns an empty store sized for the given number of batches.
func New(numBatches int) *Store {
	return &Store{ranges: make([]rowRange, numBatches), fill: &fillState{}, gen: NextGeneration()}
}

// Len returns the number of instance rows.
func (s *Store) Len() int { return s.rows }

// NumBatches returns the size of the batch range table.
func (s *Store) NumBatches() int { return len(s.ranges) }

// degradeToRaw prepares an encoded store for direct mutation: every raw
// column is materialized and the encodings dropped, so appends cannot
// silently orphan encoded rows. Mutators require exclusive access (like
// every other Store mutation), which makes the unlocked check safe and
// keeps the hot append path lock-free for raw-backed stores.
func (s *Store) degradeToRaw() {
	if len(s.encs) > 0 {
		s.ensure(colMaskAll)
		s.encs = nil
	}
}

// BeginBatch marks the start of batchID's rows; all Append calls until the
// next BeginBatch belong to it. Batches must be appended in ascending
// row order (any batch ID order is fine). Direct mutation degrades an
// encoded store to the raw monolithic view: columns are materialized and
// the segment layout, zones and encodings are dropped.
func (s *Store) BeginBatch(batchID uint32) {
	s.degradeToRaw()
	if int(batchID) >= len(s.ranges) {
		// Grow the range table; batch IDs are dense in practice.
		grown := make([]rowRange, batchID+1)
		copy(grown, s.ranges)
		s.ranges = grown
	}
	n := int32(len(s.start))
	s.ranges[batchID] = rowRange{Lo: n, Hi: n}
	s.segs = nil
	s.zones = nil
	s.encs = nil
}

// Append adds one instance row to the currently open batch.
func (s *Store) Append(in model.Instance) {
	s.degradeToRaw()
	s.batch = append(s.batch, in.Batch)
	s.taskType = append(s.taskType, in.TaskType)
	s.item = append(s.item, in.Item)
	s.worker = append(s.worker, in.Worker)
	s.start = append(s.start, in.Start)
	s.end = append(s.end, in.End)
	s.trust = append(s.trust, in.Trust)
	s.answer = append(s.answer, in.Answer)
	s.rows = len(s.start)
	s.ranges[in.Batch].Hi = int32(len(s.start))
	s.workerIndex = nil
	s.segs = nil
	s.zones = nil
	s.encs = nil
}

// Row materializes row i as an Instance.
func (s *Store) Row(i int) model.Instance {
	s.ensure(colMaskAll)
	return model.Instance{
		Batch:    s.batch[i],
		TaskType: s.taskType[i],
		Item:     s.item[i],
		Worker:   s.worker[i],
		Start:    s.start[i],
		End:      s.end[i],
		Trust:    s.trust[i],
		Answer:   s.answer[i],
	}
}

// Column accessors return the backing arrays; callers must not modify
// them. They exist because scans over one column are the hot path of every
// experiment. On an encoded-only store (loaded from a compressed
// snapshot) the first access to a column materializes it — that column
// alone — from the segment encodings.

// Batches returns the batch-ID column.
func (s *Store) Batches() []uint32 { s.ensure(colMaskBatch); return s.batch }

// TaskTypes returns the task-type column.
func (s *Store) TaskTypes() []uint32 { s.ensure(colMaskTaskType); return s.taskType }

// Items returns the item-ID column.
func (s *Store) Items() []uint32 { s.ensure(colMaskItem); return s.item }

// Workers returns the worker-ID column.
func (s *Store) Workers() []uint32 { s.ensure(colMaskWorker); return s.worker }

// Starts returns the start-time column (unix seconds).
func (s *Store) Starts() []int64 { s.ensure(colMaskStart); return s.start }

// Ends returns the end-time column (unix seconds).
func (s *Store) Ends() []int64 { s.ensure(colMaskEnd); return s.end }

// Trusts returns the trust-score column.
func (s *Store) Trusts() []float32 { s.ensure(colMaskTrust); return s.trust }

// Answers returns the answer-token column.
func (s *Store) Answers() []uint32 { s.ensure(colMaskAnswer); return s.answer }

// BatchRange returns the [lo,hi) row range of a batch.
func (s *Store) BatchRange(batchID uint32) (lo, hi int) {
	if int(batchID) >= len(s.ranges) {
		return 0, 0
	}
	rr := s.ranges[batchID]
	return int(rr.Lo), int(rr.Hi)
}

// BatchRows calls fn for each row of a batch.
func (s *Store) BatchRows(batchID uint32, fn func(row int)) {
	lo, hi := s.BatchRange(batchID)
	for i := lo; i < hi; i++ {
		fn(i)
	}
}

// WorkerRows returns the rows of one worker, building the posting-list
// index on first use.
func (s *Store) WorkerRows(workerID uint32) []int32 {
	if s.workerIndex == nil {
		s.buildWorkerIndex()
	}
	return s.workerIndex[workerID]
}

// DistinctWorkers returns the number of workers with at least one row.
func (s *Store) DistinctWorkers() int {
	if s.workerIndex == nil {
		s.buildWorkerIndex()
	}
	return len(s.workerIndex)
}

// EachWorker iterates (workerID, rows) pairs in ascending worker order.
func (s *Store) EachWorker(fn func(workerID uint32, rows []int32)) {
	if s.workerIndex == nil {
		s.buildWorkerIndex()
	}
	ids := make([]uint32, 0, len(s.workerIndex))
	for id := range s.workerIndex {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		fn(id, s.workerIndex[id])
	}
}

// workerIndexParallelMin is the row count above which the posting-list
// build fans out across segments; below it a single pass is faster than
// spawning goroutines and merging maps.
const workerIndexParallelMin = 1 << 16

func (s *Store) buildWorkerIndex() {
	s.ensure(colMaskWorker)
	if s.Len() < workerIndexParallelMin {
		idx := make(map[uint32][]int32)
		for i, w := range s.worker {
			idx[w] = append(idx[w], int32(i))
		}
		s.workerIndex = idx
		return
	}
	// Segment-aware build: each chunk (aligned to segment boundaries where
	// possible) builds its own postings; chunk-order merging preserves the
	// ascending row order the analyses rely on.
	parts := ParallelScan(s, 0, func(lo, hi int) map[uint32][]int32 {
		m := make(map[uint32][]int32)
		for i := lo; i < hi; i++ {
			m[s.worker[i]] = append(m[s.worker[i]], int32(i))
		}
		return m
	})
	idx := make(map[uint32][]int32)
	for _, part := range parts {
		for w, rows := range part {
			idx[w] = append(idx[w], rows...)
		}
	}
	s.workerIndex = idx
}

// Validate checks the structural invariants: ranges partition the rows
// they cover, per-row batch IDs match their range, and end >= start. It
// inspects every column, so an encoded-only store materializes first.
func (s *Store) Validate() error {
	s.ensure(colMaskAll)
	n := s.rows
	for _, col := range []int{len(s.batch), len(s.taskType), len(s.item), len(s.worker), len(s.start), len(s.end), len(s.trust), len(s.answer)} {
		if col != n {
			return errors.New("store: column length mismatch")
		}
	}
	for b, rr := range s.ranges {
		if rr.Lo > rr.Hi || int(rr.Hi) > n {
			return fmt.Errorf("store: bad range for batch %d: [%d,%d)", b, rr.Lo, rr.Hi)
		}
		for i := rr.Lo; i < rr.Hi; i++ {
			if s.batch[i] != uint32(b) {
				return fmt.Errorf("store: row %d in range of batch %d has batch %d", i, b, s.batch[i])
			}
		}
	}
	for i := 0; i < n; i++ {
		if s.end[i] < s.start[i] {
			return fmt.Errorf("store: row %d ends before it starts", i)
		}
	}
	// Segment layout invariants: row spans partition [0,n) contiguously,
	// batch intervals ascend without overlap, and every batch range lies
	// inside the row span of the segment covering its batch ID.
	if len(s.segs) > 0 {
		rowOff, batchOff := 0, uint32(0)
		for i, si := range s.segs {
			if si.RowLo != rowOff || si.RowHi < si.RowLo {
				return fmt.Errorf("store: segment %d rows [%d,%d) not contiguous at offset %d", i, si.RowLo, si.RowHi, rowOff)
			}
			if si.BatchLo < batchOff || si.BatchHi < si.BatchLo || int(si.BatchHi) > len(s.ranges) {
				return fmt.Errorf("store: segment %d batch interval [%d,%d) invalid", i, si.BatchLo, si.BatchHi)
			}
			for b := si.BatchLo; b < si.BatchHi; b++ {
				rr := s.ranges[b]
				if rr.Lo == rr.Hi {
					continue
				}
				if int(rr.Lo) < si.RowLo || int(rr.Hi) > si.RowHi {
					return fmt.Errorf("store: batch %d range [%d,%d) escapes segment %d rows [%d,%d)", b, rr.Lo, rr.Hi, i, si.RowLo, si.RowHi)
				}
			}
			rowOff, batchOff = si.RowHi, si.BatchHi
		}
		if rowOff != n {
			return fmt.Errorf("store: segments cover %d of %d rows", rowOff, n)
		}
	}
	// Zone maps, when present, must pair one-to-one with the segment
	// layout they summarize. Read under the fill mutex: Validate may run
	// alongside queries whose first ZoneMaps call fills the cache.
	if zones := s.zoneSnapshot(); len(zones) > 0 {
		segs := s.Segments()
		if len(zones) != len(segs) {
			return fmt.Errorf("store: %d zone maps for %d segments", len(zones), len(segs))
		}
		for i, z := range zones {
			if z.Rows != segs[i].Rows() {
				return fmt.Errorf("store: zone map %d covers %d rows, segment has %d", i, z.Rows, segs[i].Rows())
			}
		}
	}
	// Segment encodings, when present, must pair one-to-one with the
	// segment layout and satisfy their own structural invariants.
	if encs := s.SegmentEncodings(); len(encs) > 0 {
		segs := s.Segments()
		if len(encs) != len(segs) {
			return fmt.Errorf("store: %d segment encodings for %d segments", len(encs), len(segs))
		}
		for i := range encs {
			if err := encs[i].validate(segs[i].Rows()); err != nil {
				return fmt.Errorf("store: segment %d encoding: %v", i, err)
			}
		}
	}
	return nil
}
