// Package model defines the domain types shared by every crowdscope
// subsystem: task goals, operators and data types, batches, task instances,
// workers and labor sources. The vocabulary follows Section 2 of Jain et
// al. (VLDB 2017): a *task* is the unit of work done by a single worker, a
// *batch* is a set of parallel tasks issued together, and identical units of
// work issued across batches form a *distinct task* (recovered by
// clustering).
package model

import "strings"

// Goal is the end goal of a task (Section 3.4, "Task Goal").
type Goal uint8

// The seven task goals observed in the paper, plus catch-alls.
const (
	GoalER Goal = iota // Entity Resolution
	GoalHB             // Human Behavior (surveys, psychology, demographics)
	GoalSR             // Search Relevance Estimation
	GoalQA             // Quality Assurance (spam, moderation, cleaning)
	GoalSA             // Sentiment Analysis
	GoalLU             // Language Understanding (parsing, NLP)
	GoalT              // Transcription (captions, structured extraction)
	GoalOther
	NumGoals = int(GoalOther) + 1
)

var goalNames = [NumGoals]string{"ER", "HB", "SR", "QA", "SA", "LU", "T", "Other"}

var goalLongNames = [NumGoals]string{
	"Entity Resolution", "Human Behavior", "Search Relevance",
	"Quality Assurance", "Sentiment Analysis", "Language Understanding",
	"Transcription", "Other",
}

// String returns the paper's abbreviation for the goal.
func (g Goal) String() string {
	if int(g) < NumGoals {
		return goalNames[g]
	}
	return "Goal(?)"
}

// LongName returns the spelled-out goal name.
func (g Goal) LongName() string {
	if int(g) < NumGoals {
		return goalLongNames[g]
	}
	return "Unknown"
}

// Simple reports whether the goal is in the paper's "simple" class for the
// Section 3.5 trend analysis: {entity resolution, sentiment analysis,
// quality assurance}.
func (g Goal) Simple() bool {
	return g == GoalER || g == GoalSA || g == GoalQA
}

// ParseGoal resolves an abbreviation or long name; ok is false when no goal
// matches.
func ParseGoal(s string) (Goal, bool) {
	for i := 0; i < NumGoals; i++ {
		if strings.EqualFold(s, goalNames[i]) || strings.EqualFold(s, goalLongNames[i]) {
			return Goal(i), true
		}
	}
	return GoalOther, false
}

// Operator is the human data-processing building block a task uses
// (Section 3.4, "Task Operator").
type Operator uint8

// The ten operators observed in the paper, plus a catch-all.
const (
	OpFilter   Operator = iota // separate items into classes / boolean questions
	OpRate                     // rate on an ordinal scale
	OpSort                     // order items
	OpCount                    // count occurrences
	OpTag                      // label or tag
	OpGather                   // provide information not present in the data
	OpExtract                  // convert implicit information into another form
	OpGenerate                 // produce new content using worker judgement
	OpLocalize                 // mark or bound segments of the data
	OpExternal                 // visit an external page and act there
	OpOther
	NumOperators = int(OpOther) + 1
)

var operatorNames = [NumOperators]string{
	"Filt", "Rate", "Sort", "Count", "Tag", "Gat", "Ext", "Gen", "Loc", "Exter", "Other",
}

var operatorLongNames = [NumOperators]string{
	"Filter", "Rate", "Sort", "Count", "Label/Tag", "Gather", "Extract",
	"Generate", "Localize", "External Link", "Other",
}

// String returns the paper's abbreviation for the operator.
func (o Operator) String() string {
	if int(o) < NumOperators {
		return operatorNames[o]
	}
	return "Op(?)"
}

// LongName returns the spelled-out operator name.
func (o Operator) LongName() string {
	if int(o) < NumOperators {
		return operatorLongNames[o]
	}
	return "Unknown"
}

// Simple reports whether the operator is in the paper's "simple" class:
// {filter, rate}.
func (o Operator) Simple() bool { return o == OpFilter || o == OpRate }

// ParseOperator resolves an abbreviation or long name.
func ParseOperator(s string) (Operator, bool) {
	for i := 0; i < NumOperators; i++ {
		if strings.EqualFold(s, operatorNames[i]) || strings.EqualFold(s, operatorLongNames[i]) {
			return Operator(i), true
		}
	}
	return OpOther, false
}

// DataType is the kind of data a task's interface presents
// (Section 3.4, "Data Type").
type DataType uint8

// The seven data types observed in the paper.
const (
	DataText DataType = iota
	DataImage
	DataAudio
	DataVideo
	DataMaps
	DataSocial
	DataWeb
	DataOther
	NumDataTypes = int(DataOther) + 1
)

var dataTypeNames = [NumDataTypes]string{
	"Text", "Image", "Audio", "Video", "Map", "Social", "Web", "Other",
}

// String returns the data type name as used in the paper's figures.
func (d DataType) String() string {
	if int(d) < NumDataTypes {
		return dataTypeNames[d]
	}
	return "Data(?)"
}

// Simple reports whether the data type is in the paper's "simple" class:
// only text.
func (d DataType) Simple() bool { return d == DataText }

// ParseDataType resolves a data type name.
func ParseDataType(s string) (DataType, bool) {
	for i := 0; i < NumDataTypes; i++ {
		if strings.EqualFold(s, dataTypeNames[i]) {
			return DataType(i), true
		}
	}
	return DataOther, false
}

// GoalSet, OpSet and DataSet are small bitmask sets: tasks may carry one or
// more labels under each category (Section 3.4).
type (
	GoalSet uint16
	OpSet   uint16
	DataSet uint16
)

// Has reports membership.
func (s GoalSet) Has(g Goal) bool { return s&(1<<g) != 0 }

// With returns the set with g added.
func (s GoalSet) With(g Goal) GoalSet { return s | 1<<g }

// Len returns the number of goals in the set.
func (s GoalSet) Len() int { return popcount16(uint16(s)) }

// Each calls fn for every goal in the set, in declaration order.
func (s GoalSet) Each(fn func(Goal)) {
	for i := 0; i < NumGoals; i++ {
		if s.Has(Goal(i)) {
			fn(Goal(i))
		}
	}
}

// Slice returns the goals in the set in declaration order.
func (s GoalSet) Slice() []Goal {
	out := make([]Goal, 0, s.Len())
	s.Each(func(g Goal) { out = append(out, g) })
	return out
}

// String renders the set as "ER|SA".
func (s GoalSet) String() string {
	return joinSet(s.Len(), func(b *strings.Builder) { s.Each(func(g Goal) { sep(b); b.WriteString(g.String()) }) })
}

// Has reports membership.
func (s OpSet) Has(o Operator) bool { return s&(1<<o) != 0 }

// With returns the set with o added.
func (s OpSet) With(o Operator) OpSet { return s | 1<<o }

// Len returns the number of operators in the set.
func (s OpSet) Len() int { return popcount16(uint16(s)) }

// Each calls fn for every operator in the set, in declaration order.
func (s OpSet) Each(fn func(Operator)) {
	for i := 0; i < NumOperators; i++ {
		if s.Has(Operator(i)) {
			fn(Operator(i))
		}
	}
}

// Slice returns the operators in the set in declaration order.
func (s OpSet) Slice() []Operator {
	out := make([]Operator, 0, s.Len())
	s.Each(func(o Operator) { out = append(out, o) })
	return out
}

// String renders the set as "Filt|Ext".
func (s OpSet) String() string {
	return joinSet(s.Len(), func(b *strings.Builder) { s.Each(func(o Operator) { sep(b); b.WriteString(o.String()) }) })
}

// Has reports membership.
func (s DataSet) Has(d DataType) bool { return s&(1<<d) != 0 }

// With returns the set with d added.
func (s DataSet) With(d DataType) DataSet { return s | 1<<d }

// Len returns the number of data types in the set.
func (s DataSet) Len() int { return popcount16(uint16(s)) }

// Each calls fn for every data type in the set, in declaration order.
func (s DataSet) Each(fn func(DataType)) {
	for i := 0; i < NumDataTypes; i++ {
		if s.Has(DataType(i)) {
			fn(DataType(i))
		}
	}
}

// Slice returns the data types in the set in declaration order.
func (s DataSet) Slice() []DataType {
	out := make([]DataType, 0, s.Len())
	s.Each(func(d DataType) { out = append(out, d) })
	return out
}

// String renders the set as "Text|Image".
func (s DataSet) String() string {
	return joinSet(s.Len(), func(b *strings.Builder) { s.Each(func(d DataType) { sep(b); b.WriteString(d.String()) }) })
}

// Labels bundles the three label categories assigned to a distinct task.
type Labels struct {
	Goals     GoalSet
	Operators OpSet
	Data      DataSet
}

// SimpleGoal reports whether the goal labels are exclusively from the
// paper's simple class {ER, SA, QA} (Section 3.5). A cluster with any
// complex goal counts as complex.
func (l Labels) SimpleGoal() bool {
	if l.Goals.Len() == 0 {
		return false
	}
	simple := true
	l.Goals.Each(func(g Goal) {
		if !g.Simple() {
			simple = false
		}
	})
	return simple
}

// SimpleOperator reports whether the operator labels are exclusively from
// the simple class {filter, rate}.
func (l Labels) SimpleOperator() bool {
	if l.Operators.Len() == 0 {
		return false
	}
	simple := true
	l.Operators.Each(func(o Operator) {
		if !o.Simple() {
			simple = false
		}
	})
	return simple
}

// SimpleData reports whether the data labels are exclusively text.
func (l Labels) SimpleData() bool {
	if l.Data.Len() == 0 {
		return false
	}
	simple := true
	l.Data.Each(func(d DataType) {
		if !d.Simple() {
			simple = false
		}
	})
	return simple
}

func popcount16(v uint16) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

func joinSet(n int, fill func(*strings.Builder)) string {
	if n == 0 {
		return "∅"
	}
	var b strings.Builder
	fill(&b)
	return b.String()
}

func sep(b *strings.Builder) {
	if b.Len() > 0 {
		b.WriteByte('|')
	}
}
