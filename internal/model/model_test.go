package model

import (
	"testing"
	"time"
)

func TestGoalRoundTrip(t *testing.T) {
	for i := 0; i < NumGoals; i++ {
		g := Goal(i)
		got, ok := ParseGoal(g.String())
		if !ok || got != g {
			t.Errorf("ParseGoal(%q) = %v, %v", g.String(), got, ok)
		}
		got, ok = ParseGoal(g.LongName())
		if !ok || got != g {
			t.Errorf("ParseGoal(%q) = %v, %v", g.LongName(), got, ok)
		}
	}
	if _, ok := ParseGoal("nonsense"); ok {
		t.Error("ParseGoal accepted garbage")
	}
}

func TestOperatorRoundTrip(t *testing.T) {
	for i := 0; i < NumOperators; i++ {
		o := Operator(i)
		got, ok := ParseOperator(o.String())
		if !ok || got != o {
			t.Errorf("ParseOperator(%q) = %v, %v", o.String(), got, ok)
		}
	}
}

func TestDataTypeRoundTrip(t *testing.T) {
	for i := 0; i < NumDataTypes; i++ {
		d := DataType(i)
		got, ok := ParseDataType(d.String())
		if !ok || got != d {
			t.Errorf("ParseDataType(%q) = %v, %v", d.String(), got, ok)
		}
	}
}

func TestSimpleClasses(t *testing.T) {
	// Paper Section 3.5: simple goals = {ER, SA, QA}; simple ops =
	// {filter, rate}; simple data = {text}.
	simpleGoals := map[Goal]bool{GoalER: true, GoalSA: true, GoalQA: true}
	for i := 0; i < NumGoals; i++ {
		g := Goal(i)
		if g.Simple() != simpleGoals[g] {
			t.Errorf("Goal %v Simple() = %v", g, g.Simple())
		}
	}
	simpleOps := map[Operator]bool{OpFilter: true, OpRate: true}
	for i := 0; i < NumOperators; i++ {
		o := Operator(i)
		if o.Simple() != simpleOps[o] {
			t.Errorf("Operator %v Simple() = %v", o, o.Simple())
		}
	}
	for i := 0; i < NumDataTypes; i++ {
		d := DataType(i)
		if d.Simple() != (d == DataText) {
			t.Errorf("DataType %v Simple() = %v", d, d.Simple())
		}
	}
}

func TestGoalSetOperations(t *testing.T) {
	var s GoalSet
	s = s.With(GoalER).With(GoalLU)
	if !s.Has(GoalER) || !s.Has(GoalLU) || s.Has(GoalSA) {
		t.Errorf("set membership wrong: %v", s)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.String(); got != "ER|LU" {
		t.Errorf("String = %q", got)
	}
	slice := s.Slice()
	if len(slice) != 2 || slice[0] != GoalER || slice[1] != GoalLU {
		t.Errorf("Slice = %v", slice)
	}
	var empty GoalSet
	if empty.String() != "∅" || empty.Len() != 0 {
		t.Error("empty set rendering wrong")
	}
}

func TestOpSetAndDataSet(t *testing.T) {
	var ops OpSet
	ops = ops.With(OpFilter).With(OpExtract)
	if ops.Len() != 2 || !ops.Has(OpExtract) {
		t.Errorf("OpSet wrong: %v", ops)
	}
	var data DataSet
	data = data.With(DataText).With(DataImage).With(DataWeb)
	if data.Len() != 3 || !data.Has(DataWeb) || data.Has(DataAudio) {
		t.Errorf("DataSet wrong: %v", data)
	}
	if got := data.String(); got != "Text|Image|Web" {
		t.Errorf("DataSet string = %q", got)
	}
}

func TestLabelsSimpleClassification(t *testing.T) {
	l := Labels{
		Goals:     GoalSet(0).With(GoalER),
		Operators: OpSet(0).With(OpFilter).With(OpRate),
		Data:      DataSet(0).With(DataText),
	}
	if !l.SimpleGoal() || !l.SimpleOperator() || !l.SimpleData() {
		t.Error("all-simple labels misclassified")
	}
	l2 := Labels{
		Goals:     GoalSet(0).With(GoalER).With(GoalT),
		Operators: OpSet(0).With(OpFilter).With(OpGather),
		Data:      DataSet(0).With(DataText).With(DataImage),
	}
	if l2.SimpleGoal() || l2.SimpleOperator() || l2.SimpleData() {
		t.Error("mixed labels should classify complex")
	}
	var empty Labels
	if empty.SimpleGoal() || empty.SimpleOperator() || empty.SimpleData() {
		t.Error("empty labels should not be simple")
	}
}

func TestTimeIndexing(t *testing.T) {
	if DayIndex(Epoch) != 0 {
		t.Errorf("DayIndex(Epoch) = %d", DayIndex(Epoch))
	}
	if WeekIndex(Epoch.AddDate(0, 0, 13)) != 1 {
		t.Errorf("week of day 13 = %d", WeekIndex(Epoch.AddDate(0, 0, 13)))
	}
	if DayTime(10) != Epoch.AddDate(0, 0, 10) {
		t.Error("DayTime round trip failed")
	}
	if WeekTime(2) != Epoch.AddDate(0, 0, 14) {
		t.Error("WeekTime round trip failed")
	}
}

func TestUnixConversions(t *testing.T) {
	day := int32(100)
	sec := DayUnix(day)
	if DayOfUnix(sec) != day {
		t.Errorf("DayOfUnix(DayUnix(%d)) = %d", day, DayOfUnix(sec))
	}
	if DayOfUnix(sec+86399) != day {
		t.Error("end of day maps to wrong day")
	}
	if DayOfUnix(sec+86400) != day+1 {
		t.Error("start of next day maps to wrong day")
	}
	if WeekOfUnix(DayUnix(14)) != 2 {
		t.Errorf("WeekOfUnix = %d", WeekOfUnix(DayUnix(14)))
	}
}

func TestWeekday(t *testing.T) {
	// The epoch (2012-07-02) is a Monday.
	if Epoch.Weekday() != time.Monday {
		t.Fatalf("epoch is %v, expected Monday", Epoch.Weekday())
	}
	if Weekday(0) != time.Monday {
		t.Errorf("Weekday(0) = %v", Weekday(0))
	}
	if Weekday(5) != time.Saturday {
		t.Errorf("Weekday(5) = %v", Weekday(5))
	}
	if Weekday(6) != time.Sunday {
		t.Errorf("Weekday(6) = %v", Weekday(6))
	}
	if Weekday(7) != time.Monday {
		t.Errorf("Weekday(7) = %v", Weekday(7))
	}
	// Cross-check against time package over a long span.
	for day := int32(0); day < 1400; day += 13 {
		if Weekday(day) != DayTime(day).Weekday() {
			t.Fatalf("Weekday(%d) = %v, time says %v", day, Weekday(day), DayTime(day).Weekday())
		}
	}
}

func TestSpanConstants(t *testing.T) {
	if NumDays < 1400 || NumDays > 1600 {
		t.Errorf("NumDays = %d, expected ~1490 for Jul 2012-Jul 2016", NumDays)
	}
	if NumWeeks != (NumDays+6)/7 {
		t.Errorf("NumWeeks inconsistent: %d", NumWeeks)
	}
	if PostBoomWeek <= 0 || PostBoomWeek >= int32(NumWeeks) {
		t.Errorf("PostBoomWeek = %d out of range", PostBoomWeek)
	}
}

func TestBatchInstances(t *testing.T) {
	b := Batch{Items: 100, Redundancy: 3}
	if b.Instances() != 300 {
		t.Errorf("Instances = %d", b.Instances())
	}
}

func TestWorkerLifetime(t *testing.T) {
	w := Worker{FirstDay: 10, LastDay: 10}
	if w.Lifetime() != 1 {
		t.Errorf("one-day lifetime = %d", w.Lifetime())
	}
	w = Worker{FirstDay: 10, LastDay: 109}
	if w.Lifetime() != 100 {
		t.Errorf("lifetime = %d", w.Lifetime())
	}
}

func TestInstanceTaskSecs(t *testing.T) {
	in := Instance{Start: 1000, End: 1140}
	if in.TaskSecs() != 140 {
		t.Errorf("TaskSecs = %v", in.TaskSecs())
	}
}

func TestFormatWeek(t *testing.T) {
	got := FormatWeek(0)
	if got != "Jul'12" {
		t.Errorf("FormatWeek(0) = %q", got)
	}
}

func TestEngagementClassNames(t *testing.T) {
	names := map[EngagementClass]string{
		ClassOneDay: "one-day", ClassCasual: "casual",
		ClassActive: "active", ClassSuper: "super",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}
