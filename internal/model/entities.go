package model

import (
	"fmt"
	"time"
)

// EngagementClass partitions workers by their marketplace engagement
// pattern; the mix of classes drives the lifetime and workload shapes of
// Section 5 (one-day workers, casual workers, the active core, and the
// near-full-time "super" workers who absorb load spikes).
type EngagementClass uint8

// The engagement classes used by the synthetic worker population.
const (
	ClassOneDay          EngagementClass = iota // active a single day (52.7% of workers)
	ClassCasual                                 // a handful of working days
	ClassActive                                 // >10 working days; the core workforce
	ClassSuper                                  // near-daily; the top of the top-10%
	NumEngagementClasses = int(ClassSuper) + 1
)

var engagementNames = [NumEngagementClasses]string{"one-day", "casual", "active", "super"}

// String names the class.
func (c EngagementClass) String() string {
	if int(c) < NumEngagementClasses {
		return engagementNames[c]
	}
	return "class(?)"
}

// Source is a labor source the marketplace aggregates workers from
// (Table 4 lists 139 of them).
type Source struct {
	ID   uint16
	Name string

	// Dedicated sources host a workforce doing many tasks per worker;
	// on-demand sources supply one-off participation (Section 5.1).
	Dedicated bool

	// TrustMean is the mean trust of tasks done by this source's workers;
	// most sources are above 0.8, a tail is well below (Figure 27c).
	TrustMean float64

	// RelTaskTime is the source's mean task time relative to the per-task
	// median; most sources sit near 1, a 5% tail is >=3 (Figure 27f).
	RelTaskTime float64

	// CountryBias optionally concentrates the source's workers in one
	// country (e.g. imerit_india, yute_jamaica). -1 means no bias.
	CountryBias int16
}

// Worker is a crowd worker recruited through one of the sources.
type Worker struct {
	ID      uint32
	Source  uint16
	Country uint16
	Class   EngagementClass

	// TrustMean is the worker's latent accuracy on test questions; the
	// marketplace surfaces it as a per-instance trust score.
	TrustMean float64

	// Speed scales the worker's task completion time relative to the task
	// median (>1 means slower).
	Speed float64

	// ErrRate is the latent probability the worker answers a question
	// differently from the plurality answer, before task-design modifiers.
	ErrRate float64

	// FirstDay and LastDay bound the worker's lifetime, in days since the
	// dataset epoch.
	FirstDay, LastDay int32
}

// Lifetime returns the worker's lifetime in days (Section 5.3): the number
// of days between first and last activity, with a single-day worker having
// lifetime 1.
func (w Worker) Lifetime() int32 { return w.LastDay - w.FirstDay + 1 }

// TaskType is a distinct task: the identical unit of work issued across
// time and batches (Section 2). Its design parameters are shared by every
// batch carrying it.
type TaskType struct {
	ID uint32
	Labels

	// Design captures the requester-controlled parameters studied in
	// Section 4.
	Design DesignParams

	// Ambiguity is the latent probability that two workers disagree on an
	// item of this task before design modifiers; it drives the
	// disagreement metric.
	Ambiguity float64

	// BaseTaskSecs is the latent median seconds a worker needs per task
	// instance before design and worker modifiers.
	BaseTaskSecs float64

	// BasePickupSecs is the latent median pickup delay for the task's
	// batches before design modifiers.
	BasePickupSecs float64

	// HeavyHitter marks the handful of task types issued across >=100
	// batches (Section 3.3).
	HeavyHitter bool

	// Labeled marks task types included in the manually labeled subset
	// (~83% of batches, Section 3.4).
	Labeled bool

	// FirstWeek and LastWeek bound the weeks in which batches of this task
	// may be issued, expressing the "rapid ramp then shutdown" arrival
	// pattern of heavy hitters (Figure 8).
	FirstWeek, LastWeek int32
}

// DesignParams are the task interface features extracted from batch HTML in
// Section 4: requesters control them, and they correlate with the three
// effectiveness metrics.
type DesignParams struct {
	Words     int // #words in the HTML page
	TextBoxes int // #text-box input fields
	Items     int // #items operated on per batch (median)
	Examples  int // #prominently tagged examples
	Images    int // #image tags
	Fields    int // total input fields (a null-effect feature)
}

// Batch is one parallel issue of tasks of a single task type.
type Batch struct {
	ID       uint32
	TaskType uint32

	// CreatedAt is the batch creation time.
	CreatedAt time.Time

	// Items is the number of distinct items in the batch.
	Items int32

	// Redundancy is the number of worker answers solicited per item.
	Redundancy int16

	// Sampled marks batches in the fully visible 12k-batch sample; the
	// rest expose only title and creation date (Section 2.2).
	Sampled bool

	// Title is the short textual description provided with the metadata.
	Title string
}

// Instances returns the number of task instances the batch generates.
func (b Batch) Instances() int { return int(b.Items) * int(b.Redundancy) }

// Instance is a single task instance: one worker's unit of work on one item.
// It mirrors the per-instance metadata the marketplace provided
// (Section 2.3): worker attributes, item attributes, timing and trust.
type Instance struct {
	Batch    uint32
	TaskType uint32
	Item     uint32
	Worker   uint32

	// Start and End are unix seconds for the instance's work interval.
	Start, End int64

	// Trust is the marketplace trust score attributed to this instance.
	Trust float32

	// Answer is a dictionary-encoded worker response token; equal tokens
	// mean exactly matching answers (the paper's disagreement definition
	// uses exact matching).
	Answer uint32
}

// TaskSecs returns the instance's completion time in seconds.
func (in Instance) TaskSecs() float64 { return float64(in.End - in.Start) }

// Epoch is the dataset's reference time: all day/week indexes count from
// this instant. The paper's data spans July 2012 to July 2016.
var Epoch = time.Date(2012, time.July, 2, 0, 0, 0, 0, time.UTC) // a Monday

// Horizon is the end of the observed span.
var Horizon = time.Date(2016, time.July, 31, 0, 0, 0, 0, time.UTC)

// NumDays is the number of days in the observed span.
var NumDays = int(Horizon.Sub(Epoch).Hours() / 24)

// NumWeeks is the number of whole weeks in the observed span.
var NumWeeks = (NumDays + 6) / 7

// DayIndex converts a time to days since the epoch.
func DayIndex(t time.Time) int32 { return int32(t.Sub(Epoch) / (24 * time.Hour)) }

// WeekIndex converts a time to weeks since the epoch.
func WeekIndex(t time.Time) int32 { return DayIndex(t) / 7 }

// DayUnix converts a day index to the unix second at which the day starts.
func DayUnix(day int32) int64 { return Epoch.Unix() + int64(day)*86400 }

// DayTime converts a day index back to a time.
func DayTime(day int32) time.Time { return Epoch.AddDate(0, 0, int(day)) }

// WeekTime converts a week index back to the Monday starting that week.
func WeekTime(week int32) time.Time { return Epoch.AddDate(0, 0, int(week)*7) }

// WeekOfUnix converts unix seconds to a week index; pre-epoch times map to
// -1 (floor semantics, not Go's truncation toward zero).
func WeekOfUnix(sec int64) int32 {
	delta := sec - Epoch.Unix()
	if delta < 0 {
		return -1
	}
	return int32(delta / (7 * 86400))
}

// DayOfUnix converts unix seconds to a day index; pre-epoch times map to -1.
func DayOfUnix(sec int64) int32 {
	delta := sec - Epoch.Unix()
	if delta < 0 {
		return -1
	}
	return int32(delta / 86400)
}

// Weekday returns the weekday of a day index (the epoch is a Monday).
func Weekday(day int32) time.Weekday {
	// time.Monday == 1; day 0 is a Monday.
	return time.Weekday((int(day)+1)%7 + 0)
}

// PostBoomWeek is the week index of January 2015, when marketplace load
// took off; several of the paper's figures restrict to this period.
var PostBoomWeek = WeekIndex(time.Date(2015, time.January, 1, 0, 0, 0, 0, time.UTC))

// FormatWeek renders a week index like the paper's axis labels ("Jan'15").
func FormatWeek(week int32) string {
	t := WeekTime(week)
	return fmt.Sprintf("%s'%02d", t.Format("Jan"), t.Year()%100)
}
