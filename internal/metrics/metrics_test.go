package metrics

import (
	"math"
	"testing"

	"crowdscope/internal/model"
	"crowdscope/internal/rng"
	"crowdscope/internal/stats"
	"crowdscope/internal/store"
)

// buildBatch stores rows for a single batch: answers[item][rep], all
// starting at base + rep seconds with duration dur.
func buildBatch(answers [][]uint32, base int64, durs []int64) *store.Store {
	s := store.New(1)
	s.BeginBatch(0)
	k := 0
	for item, reps := range answers {
		for rep, ans := range reps {
			d := int64(60)
			if k < len(durs) {
				d = durs[k]
			}
			s.Append(model.Instance{
				Batch: 0, Item: uint32(item), Worker: uint32(100 + rep + item*10),
				Start: base + int64(rep)*100, End: base + int64(rep)*100 + d,
				Answer: ans,
			})
			k++
		}
	}
	return s
}

func TestDisagreementAllAgree(t *testing.T) {
	s := buildBatch([][]uint32{{1, 1, 1}, {2, 2, 2}}, 1000, nil)
	m := ComputeBatch(s, 0)
	if m.Disagreement != 0 {
		t.Errorf("Disagreement = %v, want 0", m.Disagreement)
	}
	if m.Pairs != 6 {
		t.Errorf("Pairs = %d, want 6", m.Pairs)
	}
}

func TestDisagreementAllDiffer(t *testing.T) {
	s := buildBatch([][]uint32{{1, 2, 3}}, 1000, nil)
	m := ComputeBatch(s, 0)
	if m.Disagreement != 1 {
		t.Errorf("Disagreement = %v, want 1", m.Disagreement)
	}
}

func TestDisagreementMixed(t *testing.T) {
	// Item with answers {a,a,b}: pairs aa agree, ab, ab disagree → 2/3.
	s := buildBatch([][]uint32{{7, 7, 9}}, 1000, nil)
	m := ComputeBatch(s, 0)
	if math.Abs(m.Disagreement-2.0/3.0) > 1e-12 {
		t.Errorf("Disagreement = %v, want 2/3", m.Disagreement)
	}
}

func TestDisagreementAveragesAcrossItems(t *testing.T) {
	// Item1: all agree (3 pairs, 0 disagreements); item2: all differ
	// (3 pairs, 3 disagreements) → 3/6 = 0.5 overall.
	s := buildBatch([][]uint32{{1, 1, 1}, {5, 6, 7}}, 1000, nil)
	m := ComputeBatch(s, 0)
	if math.Abs(m.Disagreement-0.5) > 1e-12 {
		t.Errorf("Disagreement = %v, want 0.5", m.Disagreement)
	}
}

func TestDisagreementSingleAnswerItem(t *testing.T) {
	// Items with one answer contribute no pairs.
	s := buildBatch([][]uint32{{4}}, 1000, nil)
	m := ComputeBatch(s, 0)
	if m.Pairs != 0 {
		t.Errorf("Pairs = %d, want 0", m.Pairs)
	}
	if !math.IsNaN(m.Disagreement) {
		t.Errorf("Disagreement = %v, want NaN", m.Disagreement)
	}
	if !m.Pruned() {
		t.Error("pair-less batch should prune from error analyses")
	}
}

func TestPruneThreshold(t *testing.T) {
	low := Batch{Disagreement: 0.3, Pairs: 10, Instances: 10}
	if low.Pruned() {
		t.Error("0.3 disagreement should survive pruning")
	}
	high := Batch{Disagreement: 0.8, Pairs: 10, Instances: 10}
	if !high.Pruned() {
		t.Error("0.8 disagreement must be pruned (subjective text)")
	}
}

func TestTaskTimeMedian(t *testing.T) {
	s := buildBatch([][]uint32{{1, 1, 1}}, 1000, []int64{10, 50, 90})
	m := ComputeBatch(s, 0)
	if m.TaskTime != 50 {
		t.Errorf("TaskTime = %v, want 50", m.TaskTime)
	}
}

func TestPickupTimeUsesEarliestStartProxy(t *testing.T) {
	// Starts at base+0, base+100, base+200 → pickups 0,100,200; median 100.
	s := buildBatch([][]uint32{{1, 1, 1}}, 5000, nil)
	m := ComputeBatch(s, 0)
	if m.PickupTime != 100 {
		t.Errorf("PickupTime = %v, want 100", m.PickupTime)
	}
}

func TestComputeBatchEmpty(t *testing.T) {
	s := store.New(2)
	m := ComputeBatch(s, 1)
	if m.Valid() {
		t.Error("empty batch should be invalid")
	}
}

func TestComputeAll(t *testing.T) {
	s := store.New(3)
	s.BeginBatch(0)
	s.Append(model.Instance{Batch: 0, Item: 0, Worker: 1, Start: 10, End: 20, Answer: 1})
	s.Append(model.Instance{Batch: 0, Item: 0, Worker: 2, Start: 15, End: 40, Answer: 1})
	s.BeginBatch(2)
	s.Append(model.Instance{Batch: 2, Item: 0, Worker: 3, Start: 100, End: 160, Answer: 5})
	all := ComputeAll(s)
	if len(all) != 3 {
		t.Fatalf("ComputeAll length %d", len(all))
	}
	if !all[0].Valid() || all[1].Valid() || !all[2].Valid() {
		t.Errorf("validity flags wrong: %+v", all)
	}
	if all[0].Disagreement != 0 {
		t.Errorf("batch 0 disagreement = %v", all[0].Disagreement)
	}
}

// computeBatchReference is the historical allocation-heavy kernel:
// per-batch slices plus the map-based disagreement grouping. The fused
// scratch kernel must be bit-equal to it.
func computeBatchReference(st *store.Store, batchID uint32) Batch {
	lo, hi := st.BatchRange(batchID)
	n := hi - lo
	if n == 0 {
		return Batch{}
	}
	starts := st.Starts()[lo:hi]
	ends := st.Ends()[lo:hi]

	durs := make([]float64, n)
	minStart := starts[0]
	for i := 0; i < n; i++ {
		durs[i] = float64(ends[i] - starts[i])
		if starts[i] < minStart {
			minStart = starts[i]
		}
	}
	pickups := make([]float64, n)
	for i := 0; i < n; i++ {
		pickups[i] = float64(starts[i] - minStart)
	}
	agree, total := disagreementCountsByMap(st.Items()[lo:hi], st.Answers()[lo:hi])
	out := Batch{
		Pairs:      total,
		TaskTime:   stats.MedianInPlace(durs),
		PickupTime: stats.MedianInPlace(pickups),
		Instances:  n,
	}
	if total > 0 {
		out.Disagreement = 1 - float64(agree)/float64(total)
	} else {
		out.Disagreement = math.NaN()
	}
	return out
}

func batchesBitEqual(a, b Batch) bool {
	return math.Float64bits(a.Disagreement) == math.Float64bits(b.Disagreement) &&
		a.Pairs == b.Pairs &&
		math.Float64bits(a.TaskTime) == math.Float64bits(b.TaskTime) &&
		math.Float64bits(a.PickupTime) == math.Float64bits(b.PickupTime) &&
		a.Instances == b.Instances
}

// randomStore builds a multi-batch store with randomized redundancy,
// durations, and answer agreement — contiguous item grouping, as the
// generator produces.
func randomStore(seed uint64, batches int) *store.Store {
	r := rng.New(seed)
	s := store.New(batches)
	for b := 0; b < batches; b++ {
		if r.Intn(5) == 0 {
			continue // leave some batches empty
		}
		s.BeginBatch(uint32(b))
		items := 1 + r.Intn(8)
		base := int64(1000 + r.Intn(100000))
		for it := 0; it < items; it++ {
			reps := 1 + r.Intn(20)
			for rep := 0; rep < reps; rep++ {
				s.Append(model.Instance{
					Batch: uint32(b), Item: uint32(it),
					Worker: uint32(r.Intn(50)),
					Start:  base + int64(r.Intn(5000)),
					End:    base + int64(5000+r.Intn(5000)),
					Answer: uint32(r.Intn(3)),
				})
			}
		}
	}
	return s
}

// TestComputeBatchMatchesReference: the scratch kernel is bit-equal to
// the historical map kernel across randomized batches, including when one
// scratch is reused across every batch.
func TestComputeBatchMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		s := randomStore(seed, 40)
		var sc Scratch
		for b := 0; b < 40; b++ {
			want := computeBatchReference(s, uint32(b))
			got := sc.ComputeBatch(s, uint32(b))
			if !batchesBitEqual(got, want) {
				t.Fatalf("seed %d batch %d: %+v != reference %+v", seed, b, got, want)
			}
		}
	}
}

// TestDisagreementNonContiguousFallback: rows whose items interleave must
// take the map fallback and still count every pair.
func TestDisagreementNonContiguousFallback(t *testing.T) {
	s := store.New(1)
	s.BeginBatch(0)
	// Items 0,1,0,1: each item has answers {1,1} and {1,2} respectively.
	rows := []struct{ item, ans uint32 }{{0, 1}, {1, 1}, {0, 1}, {1, 2}}
	for i, rw := range rows {
		s.Append(model.Instance{Batch: 0, Item: rw.item, Worker: uint32(i), Start: 100, End: 160, Answer: rw.ans})
	}
	m := ComputeBatch(s, 0)
	if m.Pairs != 2 {
		t.Fatalf("Pairs = %d, want 2", m.Pairs)
	}
	if m.Disagreement != 0.5 {
		t.Fatalf("Disagreement = %v, want 0.5", m.Disagreement)
	}
	if !batchesBitEqual(m, computeBatchReference(s, 0)) {
		t.Fatal("fallback result differs from reference")
	}
}

// TestComputeBatchAllocs: with a warm scratch the per-batch kernel is
// allocation-free on contiguous (generator-shaped) batches.
func TestComputeBatchAllocs(t *testing.T) {
	s := buildBatch([][]uint32{{1, 1, 2}, {3, 3, 3}, {4, 5, 4}, {6, 6, 6, 6, 6}}, 1000, nil)
	var sc Scratch
	sc.ComputeBatch(s, 0) // warm the buffers
	allocs := testing.AllocsPerRun(20, func() {
		sc.ComputeBatch(s, 0)
	})
	if allocs != 0 {
		t.Errorf("ComputeBatch allocs = %v, want 0 with warm scratch", allocs)
	}
}

// TestComputeAllWorkersInvariant: chunked parallel metrics are bit-equal
// to the serial reference for any worker count.
func TestComputeAllWorkersInvariant(t *testing.T) {
	s := randomStore(42, 60)
	want := ComputeAllWorkers(s, 1)
	for _, w := range []int{0, 2, 3, 7} {
		got := ComputeAllWorkers(s, w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d length %d != %d", w, len(got), len(want))
		}
		for b := range got {
			if !batchesBitEqual(got[b], want[b]) {
				t.Fatalf("workers=%d batch %d differs from serial reference", w, b)
			}
		}
	}
}

func TestReduce(t *testing.T) {
	bms := []Batch{
		{Disagreement: 0.1, Pairs: 5, TaskTime: 100, PickupTime: 1000, Instances: 10},
		{Disagreement: 0.3, Pairs: 5, TaskTime: 300, PickupTime: 3000, Instances: 10},
		{Disagreement: 0.2, Pairs: 5, TaskTime: 200, PickupTime: 2000, Instances: 10},
		{}, // invalid, skipped
		{Disagreement: math.NaN(), Pairs: 0, TaskTime: 999, PickupTime: 99, Instances: 4}, // no pairs
	}
	cm := Reduce(bms, []uint32{0, 1, 2, 3, 4})
	if cm.Batches != 4 {
		t.Errorf("Batches = %d, want 4", cm.Batches)
	}
	if cm.Disagreement != 0.2 {
		t.Errorf("Disagreement = %v, want 0.2", cm.Disagreement)
	}
	// Task time median over {100,300,200,999}.
	if cm.TaskTime != 250 {
		t.Errorf("TaskTime = %v, want 250", cm.TaskTime)
	}
}

func TestReduceAllInvalid(t *testing.T) {
	cm := Reduce([]Batch{{}, {}}, []uint32{0, 1})
	if cm.Batches != 0 {
		t.Errorf("Batches = %d", cm.Batches)
	}
	if !math.IsNaN(cm.Disagreement) || !math.IsNaN(cm.TaskTime) {
		t.Error("empty reduction should be NaN")
	}
	// Out-of-range IDs are ignored.
	cm = Reduce([]Batch{{}}, []uint32{99})
	if cm.Batches != 0 {
		t.Error("out-of-range batch counted")
	}
}
