package metrics

import (
	"math"
	"testing"

	"crowdscope/internal/model"
	"crowdscope/internal/store"
)

// buildBatch stores rows for a single batch: answers[item][rep], all
// starting at base + rep seconds with duration dur.
func buildBatch(answers [][]uint32, base int64, durs []int64) *store.Store {
	s := store.New(1)
	s.BeginBatch(0)
	k := 0
	for item, reps := range answers {
		for rep, ans := range reps {
			d := int64(60)
			if k < len(durs) {
				d = durs[k]
			}
			s.Append(model.Instance{
				Batch: 0, Item: uint32(item), Worker: uint32(100 + rep + item*10),
				Start: base + int64(rep)*100, End: base + int64(rep)*100 + d,
				Answer: ans,
			})
			k++
		}
	}
	return s
}

func TestDisagreementAllAgree(t *testing.T) {
	s := buildBatch([][]uint32{{1, 1, 1}, {2, 2, 2}}, 1000, nil)
	m := ComputeBatch(s, 0)
	if m.Disagreement != 0 {
		t.Errorf("Disagreement = %v, want 0", m.Disagreement)
	}
	if m.Pairs != 6 {
		t.Errorf("Pairs = %d, want 6", m.Pairs)
	}
}

func TestDisagreementAllDiffer(t *testing.T) {
	s := buildBatch([][]uint32{{1, 2, 3}}, 1000, nil)
	m := ComputeBatch(s, 0)
	if m.Disagreement != 1 {
		t.Errorf("Disagreement = %v, want 1", m.Disagreement)
	}
}

func TestDisagreementMixed(t *testing.T) {
	// Item with answers {a,a,b}: pairs aa agree, ab, ab disagree → 2/3.
	s := buildBatch([][]uint32{{7, 7, 9}}, 1000, nil)
	m := ComputeBatch(s, 0)
	if math.Abs(m.Disagreement-2.0/3.0) > 1e-12 {
		t.Errorf("Disagreement = %v, want 2/3", m.Disagreement)
	}
}

func TestDisagreementAveragesAcrossItems(t *testing.T) {
	// Item1: all agree (3 pairs, 0 disagreements); item2: all differ
	// (3 pairs, 3 disagreements) → 3/6 = 0.5 overall.
	s := buildBatch([][]uint32{{1, 1, 1}, {5, 6, 7}}, 1000, nil)
	m := ComputeBatch(s, 0)
	if math.Abs(m.Disagreement-0.5) > 1e-12 {
		t.Errorf("Disagreement = %v, want 0.5", m.Disagreement)
	}
}

func TestDisagreementSingleAnswerItem(t *testing.T) {
	// Items with one answer contribute no pairs.
	s := buildBatch([][]uint32{{4}}, 1000, nil)
	m := ComputeBatch(s, 0)
	if m.Pairs != 0 {
		t.Errorf("Pairs = %d, want 0", m.Pairs)
	}
	if !math.IsNaN(m.Disagreement) {
		t.Errorf("Disagreement = %v, want NaN", m.Disagreement)
	}
	if !m.Pruned() {
		t.Error("pair-less batch should prune from error analyses")
	}
}

func TestPruneThreshold(t *testing.T) {
	low := Batch{Disagreement: 0.3, Pairs: 10, Instances: 10}
	if low.Pruned() {
		t.Error("0.3 disagreement should survive pruning")
	}
	high := Batch{Disagreement: 0.8, Pairs: 10, Instances: 10}
	if !high.Pruned() {
		t.Error("0.8 disagreement must be pruned (subjective text)")
	}
}

func TestTaskTimeMedian(t *testing.T) {
	s := buildBatch([][]uint32{{1, 1, 1}}, 1000, []int64{10, 50, 90})
	m := ComputeBatch(s, 0)
	if m.TaskTime != 50 {
		t.Errorf("TaskTime = %v, want 50", m.TaskTime)
	}
}

func TestPickupTimeUsesEarliestStartProxy(t *testing.T) {
	// Starts at base+0, base+100, base+200 → pickups 0,100,200; median 100.
	s := buildBatch([][]uint32{{1, 1, 1}}, 5000, nil)
	m := ComputeBatch(s, 0)
	if m.PickupTime != 100 {
		t.Errorf("PickupTime = %v, want 100", m.PickupTime)
	}
}

func TestComputeBatchEmpty(t *testing.T) {
	s := store.New(2)
	m := ComputeBatch(s, 1)
	if m.Valid() {
		t.Error("empty batch should be invalid")
	}
}

func TestComputeAll(t *testing.T) {
	s := store.New(3)
	s.BeginBatch(0)
	s.Append(model.Instance{Batch: 0, Item: 0, Worker: 1, Start: 10, End: 20, Answer: 1})
	s.Append(model.Instance{Batch: 0, Item: 0, Worker: 2, Start: 15, End: 40, Answer: 1})
	s.BeginBatch(2)
	s.Append(model.Instance{Batch: 2, Item: 0, Worker: 3, Start: 100, End: 160, Answer: 5})
	all := ComputeAll(s)
	if len(all) != 3 {
		t.Fatalf("ComputeAll length %d", len(all))
	}
	if !all[0].Valid() || all[1].Valid() || !all[2].Valid() {
		t.Errorf("validity flags wrong: %+v", all)
	}
	if all[0].Disagreement != 0 {
		t.Errorf("batch 0 disagreement = %v", all[0].Disagreement)
	}
}

func TestReduce(t *testing.T) {
	bms := []Batch{
		{Disagreement: 0.1, Pairs: 5, TaskTime: 100, PickupTime: 1000, Instances: 10},
		{Disagreement: 0.3, Pairs: 5, TaskTime: 300, PickupTime: 3000, Instances: 10},
		{Disagreement: 0.2, Pairs: 5, TaskTime: 200, PickupTime: 2000, Instances: 10},
		{}, // invalid, skipped
		{Disagreement: math.NaN(), Pairs: 0, TaskTime: 999, PickupTime: 99, Instances: 4}, // no pairs
	}
	cm := Reduce(bms, []uint32{0, 1, 2, 3, 4})
	if cm.Batches != 4 {
		t.Errorf("Batches = %d, want 4", cm.Batches)
	}
	if cm.Disagreement != 0.2 {
		t.Errorf("Disagreement = %v, want 0.2", cm.Disagreement)
	}
	// Task time median over {100,300,200,999}.
	if cm.TaskTime != 250 {
		t.Errorf("TaskTime = %v, want 250", cm.TaskTime)
	}
}

func TestReduceAllInvalid(t *testing.T) {
	cm := Reduce([]Batch{{}, {}}, []uint32{0, 1})
	if cm.Batches != 0 {
		t.Errorf("Batches = %d", cm.Batches)
	}
	if !math.IsNaN(cm.Disagreement) || !math.IsNaN(cm.TaskTime) {
		t.Error("empty reduction should be NaN")
	}
	// Out-of-range IDs are ignored.
	cm = Reduce([]Batch{{}}, []uint32{99})
	if cm.Batches != 0 {
		t.Error("out-of-range batch counted")
	}
}
