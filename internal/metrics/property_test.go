package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"crowdscope/internal/model"
	"crowdscope/internal/rng"
	"crowdscope/internal/store"
)

// randomBatchStore builds one batch with random items/answers/timings.
func randomBatchStore(seed uint64) *store.Store {
	r := rng.New(seed)
	s := store.New(1)
	s.BeginBatch(0)
	items := 1 + r.Intn(12)
	base := model.Epoch.Unix() + r.Int63n(100000)
	for it := 0; it < items; it++ {
		reps := 1 + r.Intn(6)
		for rep := 0; rep < reps; rep++ {
			start := base + r.Int63n(50000)
			s.Append(model.Instance{
				Batch: 0, Item: uint32(it), Worker: uint32(it*10 + rep),
				Start: start, End: start + 1 + r.Int63n(500),
				Answer: uint32(r.Intn(4)),
			})
		}
	}
	return s
}

// TestPropertyDisagreementBounds: disagreement stays in [0,1] whenever
// pairs exist, and pickup/task times are non-negative.
func TestPropertyDisagreementBounds(t *testing.T) {
	f := func(seed uint64) bool {
		m := ComputeBatch(randomBatchStore(seed), 0)
		if !m.Valid() {
			return false
		}
		if m.Pairs > 0 && (m.Disagreement < 0 || m.Disagreement > 1) {
			return false
		}
		if m.Pairs == 0 && !math.IsNaN(m.Disagreement) {
			return false
		}
		return m.TaskTime >= 0 && m.PickupTime >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDisagreementPermutationInvariant: row order within a batch
// must not change any metric (the definition is per-item set based).
func TestPropertyDisagreementPermutationInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		base := randomBatchStore(seed)
		m1 := ComputeBatch(base, 0)

		// Rebuild with rows reversed.
		s2 := store.New(1)
		s2.BeginBatch(0)
		for i := base.Len() - 1; i >= 0; i-- {
			s2.Append(base.Row(i))
		}
		m2 := ComputeBatch(s2, 0)

		close := func(a, b float64) bool {
			if math.IsNaN(a) && math.IsNaN(b) {
				return true
			}
			return math.Abs(a-b) < 1e-9
		}
		return close(m1.Disagreement, m2.Disagreement) &&
			close(m1.TaskTime, m2.TaskTime) &&
			close(m1.PickupTime, m2.PickupTime) &&
			m1.Pairs == m2.Pairs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUnanimityZero: if every answer in the batch is identical,
// disagreement is exactly zero.
func TestPropertyUnanimityZero(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		s := store.New(1)
		s.BeginBatch(0)
		items := 1 + r.Intn(8)
		for it := 0; it < items; it++ {
			for rep := 0; rep < 2+r.Intn(4); rep++ {
				s.Append(model.Instance{
					Batch: 0, Item: uint32(it), Worker: uint32(it*10 + rep),
					Start: model.Epoch.Unix(), End: model.Epoch.Unix() + 60,
					Answer: 42,
				})
			}
		}
		m := ComputeBatch(s, 0)
		return m.Disagreement == 0 && m.Pairs > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAllDistinctOne: if every answer on an item differs,
// disagreement is exactly one.
func TestPropertyAllDistinctOne(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		s := store.New(1)
		s.BeginBatch(0)
		items := 1 + r.Intn(5)
		ans := uint32(0)
		for it := 0; it < items; it++ {
			for rep := 0; rep < 2+r.Intn(4); rep++ {
				ans++
				s.Append(model.Instance{
					Batch: 0, Item: uint32(it), Worker: uint32(it*10 + rep),
					Start: model.Epoch.Unix(), End: model.Epoch.Unix() + 60,
					Answer: ans, // globally unique → all pairs disagree
				})
			}
		}
		m := ComputeBatch(s, 0)
		return m.Disagreement == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyReduceWithinRange: cluster medians lie within the min/max
// of their member batches.
func TestPropertyReduceWithinRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(10)
		bms := make([]Batch, n)
		ids := make([]uint32, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range bms {
			tt := 1 + r.Float64()*500
			bms[i] = Batch{Disagreement: r.Float64() * 0.4, Pairs: 5, TaskTime: tt, PickupTime: tt * 10, Instances: 3}
			ids[i] = uint32(i)
			if tt < lo {
				lo = tt
			}
			if tt > hi {
				hi = tt
			}
		}
		cm := Reduce(bms, ids)
		return cm.TaskTime >= lo-1e-9 && cm.TaskTime <= hi+1e-9 && cm.Batches == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
