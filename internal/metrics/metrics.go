// Package metrics computes the paper's three task-effectiveness metrics
// (Section 4.1) from the instance log:
//
//   - disagreement — the average pairwise mismatch of worker answers per
//     item, the error proxy (no ground truth exists);
//   - task-time — the median seconds workers spend per instance, the cost
//     proxy (no payment data exists);
//   - pickup-time — the median delay from batch start to instance start,
//     the latency proxy (pickup dominates end-to-end turnaround).
package metrics

import (
	"math"
	"slices"

	"crowdscope/internal/stats"
	"crowdscope/internal/store"
)

// DisagreementPruneThreshold drops batches whose disagreement exceeds it
// (Section 4.1): very high-variance batches are dominated by subjective
// free-text answers and would swamp the objective signal.
const DisagreementPruneThreshold = 0.5

// Batch carries the metric values of one batch.
type Batch struct {
	// Disagreement in [0,1]; valid only when Pairs > 0.
	Disagreement float64
	// Pairs is the number of same-item answer pairs compared.
	Pairs int
	// TaskTime is the median instance duration in seconds.
	TaskTime float64
	// PickupTime is the median delay from the earliest instance start
	// (the paper's proxy for batch start) to each instance start.
	PickupTime float64
	// Instances is the number of rows the batch contributed.
	Instances int
}

// Valid reports whether the batch produced usable metrics.
func (b Batch) Valid() bool { return b.Instances > 0 }

// Pruned reports whether the disagreement pruning rule removes this batch
// from error analyses.
func (b Batch) Pruned() bool {
	return b.Pairs == 0 || b.Disagreement > DisagreementPruneThreshold
}

// Scratch carries the reusable buffers of the per-batch metrics kernel:
// duration and pickup arrays for the median selects and the run counters
// of the disagreement pass. A zero value is ready to use; reusing one
// across the batches of a scan chunk amortizes its allocations to zero.
type Scratch struct {
	durs, pickups []float64
	runItems      []uint32 // first item value of each run, in run order
	runCheck      []uint32 // sort buffer for the contiguity check
	runAns        []uint32 // sort buffer for long single-item runs
}

// ComputeBatch computes metrics for one batch from its store rows.
func ComputeBatch(st *store.Store, batchID uint32) Batch {
	var sc Scratch
	return sc.ComputeBatch(st, batchID)
}

// ComputeBatch computes metrics for one batch, reusing the scratch's
// buffers instead of allocating per batch.
func (sc *Scratch) ComputeBatch(st *store.Store, batchID uint32) Batch {
	lo, hi := st.BatchRange(batchID)
	n := hi - lo
	if n == 0 {
		return Batch{}
	}
	starts := st.Starts()[lo:hi]
	ends := st.Ends()[lo:hi]
	items := st.Items()[lo:hi]
	answers := st.Answers()[lo:hi]

	// Fused first pass: durations and the earliest start in one scan.
	durs := grow(sc.durs, n)
	minStart := starts[0]
	for i := 0; i < n; i++ {
		durs[i] = float64(ends[i] - starts[i])
		if starts[i] < minStart {
			minStart = starts[i]
		}
	}
	pickups := grow(sc.pickups, n)
	for i := 0; i < n; i++ {
		pickups[i] = float64(starts[i] - minStart)
	}
	sc.durs, sc.pickups = durs, pickups

	agree, total := sc.disagreementCounts(items, answers)

	out := Batch{
		Pairs:      total,
		TaskTime:   stats.MedianInPlace(durs),
		PickupTime: stats.MedianInPlace(pickups),
		Instances:  n,
	}
	if total > 0 {
		out.Disagreement = 1 - float64(agree)/float64(total)
	} else {
		out.Disagreement = math.NaN()
	}
	return out
}

func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n, n+n/2)
	}
	return buf[:n]
}

// disagreementCounts returns (#agreeing pairs, #pairs) across all items
// of a batch. Generated data stores each item's rows contiguously, so the
// hot path counts pairs run by run without any map; if the run scan finds
// an item split across runs it falls back to the map-based grouping,
// which computes the same counts for arbitrary row orders.
func (sc *Scratch) disagreementCounts(items []uint32, answers []uint32) (agree, total int) {
	runItems := sc.runItems[:0]
	for i := 0; i < len(items); {
		j := i + 1
		for j < len(items) && items[j] == items[i] {
			j++
		}
		runItems = append(runItems, items[i])
		if k := j - i; k >= 2 {
			agree += sc.equalPairs(answers[i:j])
			total += k * (k - 1) / 2
		}
		i = j
	}
	sc.runItems = runItems
	if sc.itemRepeatsAcrossRuns() {
		return disagreementCountsByMap(items, answers)
	}
	return agree, total
}

// equalPairs counts the pairs of equal answers in one item's run. Runs
// are redundancy-sized (a handful of answers), where the quadratic scan
// beats any bookkeeping; long runs sort a scratch copy and sum
// multiplicities c*(c-1)/2 instead.
func (sc *Scratch) equalPairs(ans []uint32) int {
	eq := 0
	if len(ans) <= 16 {
		for i := 1; i < len(ans); i++ {
			for j := 0; j < i; j++ {
				if ans[j] == ans[i] {
					eq++
				}
			}
		}
		return eq
	}
	buf := append(sc.runAns[:0], ans...)
	sc.runAns = buf
	slices.Sort(buf)
	for i := 0; i < len(buf); {
		j := i + 1
		for j < len(buf) && buf[j] == buf[i] {
			j++
		}
		c := j - i
		eq += c * (c - 1) / 2
		i = j
	}
	return eq
}

// itemRepeatsAcrossRuns reports whether any item value started more than
// one run, i.e. the batch's rows are not grouped by item.
func (sc *Scratch) itemRepeatsAcrossRuns() bool {
	if len(sc.runItems) < 2 {
		return false
	}
	buf := append(sc.runCheck[:0], sc.runItems...)
	sc.runCheck = buf
	slices.Sort(buf)
	for i := 1; i < len(buf); i++ {
		if buf[i] == buf[i-1] {
			return true
		}
	}
	return false
}

// disagreementCountsByMap is the order-insensitive fallback (and the
// reference the run-based counter is tested against): group answers by
// item, then count equal pairs via answer multiplicities.
func disagreementCountsByMap(items []uint32, answers []uint32) (agree, total int) {
	byItem := make(map[uint32][]uint32, len(items)/3+1)
	for i, it := range items {
		byItem[it] = append(byItem[it], answers[i])
	}
	for _, ans := range byItem {
		k := len(ans)
		if k < 2 {
			continue
		}
		counts := make(map[uint32]int, k)
		for _, a := range ans {
			counts[a]++
		}
		for _, c := range counts {
			agree += c * (c - 1) / 2
		}
		total += k * (k - 1) / 2
	}
	return agree, total
}

// ComputeAll computes metrics for every batch with rows in the store.
// The result is indexed by batch ID. Batches are processed in parallel
// chunks aligned to the store's segment layout; each chunk writes a
// disjoint slice of the result through one reusable scratch.
func ComputeAll(st *store.Store) []Batch { return ComputeAllWorkers(st, 0) }

// ComputeAllWorkers is ComputeAll with an explicit goroutine bound:
// 0 means GOMAXPROCS, 1 the serial reference. The result is identical
// for every value.
func ComputeAllWorkers(st *store.Store, workers int) []Batch {
	out := make([]Batch, st.NumBatches())
	store.ParallelScanBatches(st, workers, func(batchLo, batchHi uint32) struct{} {
		var sc Scratch
		for b := batchLo; b < batchHi; b++ {
			lo, hi := st.BatchRange(b)
			if lo < hi {
				out[b] = sc.ComputeBatch(st, b)
			}
		}
		return struct{}{}
	})
	return out
}

// ClusterMetrics reduces batch metrics to the cluster level by taking
// medians across the cluster's batches (Section 4.2's first step). Batches
// without valid values are skipped per metric.
type ClusterMetrics struct {
	Disagreement float64 // NaN when no batch has answer pairs
	TaskTime     float64
	PickupTime   float64
	Batches      int
}

// Reduce computes cluster-level metrics over the given batch IDs.
func Reduce(batchMetrics []Batch, ids []uint32) ClusterMetrics {
	var dis, tt, pt []float64
	n := 0
	for _, id := range ids {
		if int(id) >= len(batchMetrics) {
			continue
		}
		bm := batchMetrics[id]
		if !bm.Valid() {
			continue
		}
		n++
		if bm.Pairs > 0 && !math.IsNaN(bm.Disagreement) {
			dis = append(dis, bm.Disagreement)
		}
		tt = append(tt, bm.TaskTime)
		pt = append(pt, bm.PickupTime)
	}
	out := ClusterMetrics{Batches: n}
	if len(dis) > 0 {
		out.Disagreement = stats.Median(dis)
	} else {
		out.Disagreement = math.NaN()
	}
	out.TaskTime = stats.Median(tt)
	out.PickupTime = stats.Median(pt)
	return out
}
