// Package metrics computes the paper's three task-effectiveness metrics
// (Section 4.1) from the instance log:
//
//   - disagreement — the average pairwise mismatch of worker answers per
//     item, the error proxy (no ground truth exists);
//   - task-time — the median seconds workers spend per instance, the cost
//     proxy (no payment data exists);
//   - pickup-time — the median delay from batch start to instance start,
//     the latency proxy (pickup dominates end-to-end turnaround).
package metrics

import (
	"math"

	"crowdscope/internal/stats"
	"crowdscope/internal/store"
)

// DisagreementPruneThreshold drops batches whose disagreement exceeds it
// (Section 4.1): very high-variance batches are dominated by subjective
// free-text answers and would swamp the objective signal.
const DisagreementPruneThreshold = 0.5

// Batch carries the metric values of one batch.
type Batch struct {
	// Disagreement in [0,1]; valid only when Pairs > 0.
	Disagreement float64
	// Pairs is the number of same-item answer pairs compared.
	Pairs int
	// TaskTime is the median instance duration in seconds.
	TaskTime float64
	// PickupTime is the median delay from the earliest instance start
	// (the paper's proxy for batch start) to each instance start.
	PickupTime float64
	// Instances is the number of rows the batch contributed.
	Instances int
}

// Valid reports whether the batch produced usable metrics.
func (b Batch) Valid() bool { return b.Instances > 0 }

// Pruned reports whether the disagreement pruning rule removes this batch
// from error analyses.
func (b Batch) Pruned() bool {
	return b.Pairs == 0 || b.Disagreement > DisagreementPruneThreshold
}

// ComputeBatch computes metrics for one batch from its store rows.
func ComputeBatch(st *store.Store, batchID uint32) Batch {
	lo, hi := st.BatchRange(batchID)
	n := hi - lo
	if n == 0 {
		return Batch{}
	}
	starts := st.Starts()[lo:hi]
	ends := st.Ends()[lo:hi]
	items := st.Items()[lo:hi]
	answers := st.Answers()[lo:hi]

	// Durations and the earliest start.
	durs := make([]float64, n)
	minStart := starts[0]
	for i := 0; i < n; i++ {
		durs[i] = float64(ends[i] - starts[i])
		if starts[i] < minStart {
			minStart = starts[i]
		}
	}
	pickups := make([]float64, n)
	for i := 0; i < n; i++ {
		pickups[i] = float64(starts[i] - minStart)
	}

	agree, total := disagreementCounts(items, answers)

	out := Batch{
		Pairs:      total,
		TaskTime:   stats.MedianInPlace(durs),
		PickupTime: stats.MedianInPlace(pickups),
		Instances:  n,
	}
	if total > 0 {
		out.Disagreement = 1 - float64(agree)/float64(total)
	} else {
		out.Disagreement = math.NaN()
	}
	return out
}

// disagreementCounts returns (#agreeing pairs, #pairs) across all items of
// a batch. Rows of one item are contiguous in generated data but the
// grouping does not assume it.
func disagreementCounts(items []uint32, answers []uint32) (agree, total int) {
	// Group rows by item.
	byItem := make(map[uint32][]uint32, len(items)/3+1)
	for i, it := range items {
		byItem[it] = append(byItem[it], answers[i])
	}
	for _, ans := range byItem {
		k := len(ans)
		if k < 2 {
			continue
		}
		// Count equal pairs via answer multiplicities: sum c*(c-1)/2.
		counts := make(map[uint32]int, k)
		for _, a := range ans {
			counts[a]++
		}
		for _, c := range counts {
			agree += c * (c - 1) / 2
		}
		total += k * (k - 1) / 2
	}
	return agree, total
}

// ComputeAll computes metrics for every batch with rows in the store.
// The result is indexed by batch ID. Batches are processed in parallel
// chunks aligned to the store's segment layout; each chunk writes a
// disjoint slice of the result.
func ComputeAll(st *store.Store) []Batch {
	out := make([]Batch, st.NumBatches())
	store.ParallelScanBatches(st, 0, func(batchLo, batchHi uint32) struct{} {
		for b := batchLo; b < batchHi; b++ {
			lo, hi := st.BatchRange(b)
			if lo < hi {
				out[b] = ComputeBatch(st, b)
			}
		}
		return struct{}{}
	})
	return out
}

// ClusterMetrics reduces batch metrics to the cluster level by taking
// medians across the cluster's batches (Section 4.2's first step). Batches
// without valid values are skipped per metric.
type ClusterMetrics struct {
	Disagreement float64 // NaN when no batch has answer pairs
	TaskTime     float64
	PickupTime   float64
	Batches      int
}

// Reduce computes cluster-level metrics over the given batch IDs.
func Reduce(batchMetrics []Batch, ids []uint32) ClusterMetrics {
	var dis, tt, pt []float64
	n := 0
	for _, id := range ids {
		if int(id) >= len(batchMetrics) {
			continue
		}
		bm := batchMetrics[id]
		if !bm.Valid() {
			continue
		}
		n++
		if bm.Pairs > 0 && !math.IsNaN(bm.Disagreement) {
			dis = append(dis, bm.Disagreement)
		}
		tt = append(tt, bm.TaskTime)
		pt = append(pt, bm.PickupTime)
	}
	out := ClusterMetrics{Batches: n}
	if len(dis) > 0 {
		out.Disagreement = stats.Median(dis)
	} else {
		out.Disagreement = math.NaN()
	}
	out.TaskTime = stats.Median(tt)
	out.PickupTime = stats.Median(pt)
	return out
}
