package cluster

import (
	"math"
	"testing"
)

// mkClustering builds a Clustering directly from assignment vectors.
func mkClustering(assign []int) *Clustering {
	c := &Clustering{ClusterOf: assign}
	members := map[int][]int{}
	maxC := -1
	for i, a := range assign {
		members[a] = append(members[a], i)
		if a > maxC {
			maxC = a
		}
		c.IDs = append(c.IDs, uint32(i))
	}
	c.Members = make([][]int, maxC+1)
	for a, m := range members {
		c.Members[a] = m
	}
	return c
}

func TestEvaluatePerfect(t *testing.T) {
	assign := []int{0, 0, 1, 1, 2, 2}
	q := Evaluate(mkClustering(assign), assign)
	if q.Purity != 1 {
		t.Errorf("purity = %v", q.Purity)
	}
	if math.Abs(q.ARI-1) > 1e-12 {
		t.Errorf("ARI = %v", q.ARI)
	}
	if q.Clusters != 3 || q.TrueClasses != 3 {
		t.Errorf("counts = %d/%d", q.Clusters, q.TrueClasses)
	}
}

func TestEvaluateLabelPermutationInvariant(t *testing.T) {
	// The same partition under renamed cluster IDs scores identically.
	truth := []int{0, 0, 1, 1, 2, 2}
	q1 := Evaluate(mkClustering([]int{0, 0, 1, 1, 2, 2}), truth)
	q2 := Evaluate(mkClustering([]int{2, 2, 0, 0, 1, 1}), truth)
	if q1.Purity != q2.Purity || math.Abs(q1.ARI-q2.ARI) > 1e-12 {
		t.Errorf("renaming changed quality: %+v vs %+v", q1, q2)
	}
}

func TestEvaluateMerged(t *testing.T) {
	// Two true classes merged into one cluster: purity 50% on the merged
	// part, ARI well below 1.
	truth := []int{0, 0, 1, 1}
	q := Evaluate(mkClustering([]int{0, 0, 0, 0}), truth)
	if q.Purity != 0.5 {
		t.Errorf("purity = %v, want 0.5", q.Purity)
	}
	if q.ARI > 0.01 {
		t.Errorf("ARI = %v, want ~0", q.ARI)
	}
}

func TestEvaluateOversplit(t *testing.T) {
	// Each batch its own cluster: purity 1 (vacuously) but ARI 0.
	truth := []int{0, 0, 0, 1, 1, 1}
	q := Evaluate(mkClustering([]int{0, 1, 2, 3, 4, 5}), truth)
	if q.Purity != 1 {
		t.Errorf("purity = %v", q.Purity)
	}
	if q.ARI > 0.05 {
		t.Errorf("oversplit ARI = %v, want ~0", q.ARI)
	}
}

func TestEvaluateRandomNearZeroARI(t *testing.T) {
	// A fixed pseudo-random assignment against alternating truth.
	truth := make([]int, 200)
	assign := make([]int, 200)
	for i := range truth {
		truth[i] = i % 4
		assign[i] = (i * 7) % 5
	}
	q := Evaluate(mkClustering(assign), truth)
	if math.Abs(q.ARI) > 0.1 {
		t.Errorf("random ARI = %v, want ~0", q.ARI)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	q := Evaluate(&Clustering{}, nil)
	if q.Purity != 0 || q.ARI != 0 {
		t.Errorf("empty quality = %+v", q)
	}
	// Length mismatch.
	q = Evaluate(mkClustering([]int{0, 0}), []int{0})
	if q.Purity != 0 {
		t.Error("mismatched truth should give zero quality")
	}
}

func TestEvaluateOnRealClustering(t *testing.T) {
	ids, html, truthMap := fakeCorpus(10, 6)
	c := Batches(ids, lookup(html), DefaultOptions())
	truth := make([]int, len(ids))
	for i, id := range ids {
		truth[i] = truthMap[id]
	}
	q := Evaluate(c, truth)
	if q.Purity < 0.99 {
		t.Errorf("purity on separable corpus = %v", q.Purity)
	}
	if q.ARI < 0.99 {
		t.Errorf("ARI on separable corpus = %v", q.ARI)
	}
}

func TestSweepThreshold(t *testing.T) {
	ids, html, truthMap := fakeCorpus(8, 5)
	truth := make([]int, len(ids))
	for i, id := range ids {
		truth[i] = truthMap[id]
	}
	qs := SweepThreshold(ids, lookup(html), truth, []float64{0.05, 0.7, 1.01}, DefaultOptions())
	if len(qs) != 3 {
		t.Fatalf("sweep returned %d results", len(qs))
	}
	// A near-zero threshold can only merge pairs that LSH banding
	// surfaces as candidates; with well-separated tasks it stays correct
	// (never better than the tuned default).
	if qs[0].ARI > qs[1].ARI {
		t.Errorf("threshold 0.05 beat the tuned default: %v vs %v", qs[0].ARI, qs[1].ARI)
	}
	// The tuned default (0.7) recovers the corpus perfectly.
	if qs[1].ARI < 0.99 {
		t.Errorf("threshold 0.7 ARI = %v", qs[1].ARI)
	}
	// An unreachable threshold oversplits everything into singletons.
	if qs[2].ARI > 0.05 {
		t.Errorf("threshold 1.01 should oversplit: ARI %v", qs[2].ARI)
	}
	if qs[2].Clusters != len(ids) {
		t.Errorf("threshold 1.01 clusters = %d, want %d singletons", qs[2].Clusters, len(ids))
	}
}
