// Package cluster groups batches into distinct tasks by interface
// similarity, mirroring the paper's Section 3.3 methodology: batches whose
// sample HTML looks the same (same markup structure and near-identical
// wording) almost surely carry the same unit of work. Similarity is
// Jaccard over HTML shingles, computed scalably with MinHash signatures
// and locality-sensitive banding, then merged with union-find.
//
// The expensive phases — shingling the pages and building MinHash
// signatures — are embarrassingly parallel per batch and run on sharded
// goroutines writing disjoint slots, so the result is identical for any
// worker count. The LSH banding and union-find merge are the cheap
// sequential tail.
package cluster

import (
	"slices"
	"sort"

	"crowdscope/internal/htmlfeat"
	"crowdscope/internal/par"
	"crowdscope/internal/rng"
)

// Options tune the clustering.
type Options struct {
	// ShingleK is the shingle width over the combined tag/word stream.
	ShingleK int
	// Hashes is the MinHash signature length.
	Hashes int
	// Bands is the number of LSH bands (must divide Hashes).
	Bands int
	// Threshold is the signature-estimated Jaccard above which two
	// batches merge. The paper tuned its threshold until eyeballed
	// matches clustered together; 0.7 plays that role here.
	Threshold float64
	// Exact switches to exact Jaccard verification of candidate pairs
	// (slower, used by the ablation benchmarks).
	Exact bool
	// Seed randomizes the hash family.
	Seed uint64
	// Workers bounds the goroutine fan-out of the shingling and
	// signature phases. Zero or negative means GOMAXPROCS; 1 is the
	// serial reference. The clustering is identical for every value.
	Workers int
}

// DefaultOptions returns the tuned clustering configuration.
func DefaultOptions() Options {
	return Options{ShingleK: 4, Hashes: 64, Bands: 16, Threshold: 0.7, Seed: 0x5EED}
}

// Normalized replaces an invalid hash/band configuration with the
// defaults, preserving the worker knob. Callers that shingle pages
// themselves (core's page cache) must normalize before picking the
// shingle width, or they would shingle with a width FromShingles is
// about to discard.
func (o Options) Normalized() Options {
	if o.Hashes <= 0 || o.Bands <= 0 || o.Hashes%o.Bands != 0 {
		w := o.Workers
		o = DefaultOptions()
		o.Workers = w
	}
	return o
}

// Clustering is the result: a cluster index per input batch and the
// members of each cluster.
type Clustering struct {
	// IDs holds the input batch IDs in input order.
	IDs []uint32
	// ClusterOf[i] is the cluster index of IDs[i].
	ClusterOf []int
	// Members[c] lists input positions belonging to cluster c.
	Members [][]int
}

// NumClusters returns the number of clusters found.
func (c *Clustering) NumClusters() int { return len(c.Members) }

// Sizes returns the member count per cluster.
func (c *Clustering) Sizes() []int {
	out := make([]int, len(c.Members))
	for i, m := range c.Members {
		out[i] = len(m)
	}
	return out
}

// Batches clusters the given batch IDs using html(id) to obtain each
// batch's sample page. Batches whose page is unavailable become singleton
// clusters.
func Batches(ids []uint32, html func(uint32) (string, bool), opts Options) *Clustering {
	opts = opts.Normalized()
	return FromShingles(ids, ShingleSets(ids, html, opts), opts)
}

// PageShingles computes the capped, sorted, deduped shingle set of one
// tokenized page — the per-batch input FromShingles expects. The result
// is never nil (FromShingles reserves nil for "no page"): a shingle-less
// page yields an empty set, which carries the sentinel signature and so
// still clusters with other empty pages. The scratch may be nil; passing
// one reused across pages avoids per-page table allocations.
func PageShingles(toks []htmlfeat.Token, shingleK int, sc *htmlfeat.ShingleScratch) []uint64 {
	if sc == nil {
		sc = &htmlfeat.ShingleScratch{}
	}
	out := bottomK(sc.AppendShingles(nil, toks, shingleK), maxShingles)
	if out == nil {
		out = []uint64{}
	}
	return out
}

// ShingleSets renders and shingles every batch page in parallel shards.
// sets[i] is nil when html(ids[i]) reports no page.
func ShingleSets(ids []uint32, html func(uint32) (string, bool), opts Options) [][]uint64 {
	opts = opts.Normalized()
	n := len(ids)
	sets := make([][]uint64, n)
	par.EachShard(n, opts.Workers, func(lo, hi int) {
		var sc htmlfeat.ShingleScratch
		for i := lo; i < hi; i++ {
			page, ok := html(ids[i])
			if !ok {
				continue
			}
			sets[i] = PageShingles(htmlfeat.Tokenize(page), opts.ShingleK, &sc)
		}
	})
	return sets
}

// FromShingles clusters batches given their shingle sets (as produced by
// PageShingles/ShingleSets; a nil set marks a batch without a page, which
// becomes a singleton). MinHash signatures are computed in parallel into
// one flat buffer; the LSH banding and union-find merge run sequentially,
// so the result is deterministic and identical for any Workers value.
func FromShingles(ids []uint32, sets [][]uint64, opts Options) *Clustering {
	opts = opts.Normalized()
	return mergeSignatures(ids, sets, buildSignatures(sets, opts), opts)
}

// buildSignatures computes the MinHash signature of every non-nil set in
// parallel shards into one flat buffer; sigs[i] stays nil for nil sets.
// Signatures depend only on Hashes/Seed, never on Threshold, so threshold
// sweeps reuse one build.
func buildSignatures(sets [][]uint64, opts Options) [][]uint64 {
	n := len(sets)
	hasher := newMinHasher(opts.Hashes, opts.Seed)
	sigs := make([][]uint64, n)
	sigBuf := make([]uint64, n*opts.Hashes)
	par.EachShard(n, opts.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if sets[i] == nil {
				continue
			}
			sig := sigBuf[i*opts.Hashes : (i+1)*opts.Hashes]
			hasher.signatureInto(sig, sets[i])
			sigs[i] = sig
		}
	})
	return sigs
}

// mergeSignatures is the sequential clustering tail: LSH banding over the
// signatures, threshold-verified union-find merge, cluster assembly.
func mergeSignatures(ids []uint32, sets, sigs [][]uint64, opts Options) *Clustering {
	n := len(ids)
	uf := newUnionFind(n)
	rowsPerBand := opts.Hashes / opts.Bands

	// LSH: batches agreeing on all rows of any band become candidates.
	buckets := make(map[uint64][]int)
	for band := 0; band < opts.Bands; band++ {
		for k := range buckets {
			delete(buckets, k)
		}
		for i := 0; i < n; i++ {
			if sigs[i] == nil {
				continue
			}
			key := hashBand(sigs[i][band*rowsPerBand:(band+1)*rowsPerBand], uint64(band))
			buckets[key] = append(buckets[key], i)
		}
		for _, cand := range buckets {
			if len(cand) < 2 {
				continue
			}
			anchor := cand[0]
			for _, other := range cand[1:] {
				if uf.find(anchor) == uf.find(other) {
					continue
				}
				var sim float64
				if opts.Exact {
					sim = htmlfeat.Jaccard(sets[anchor], sets[other])
				} else {
					sim = estimateJaccard(sigs[anchor], sigs[other])
				}
				if sim >= opts.Threshold {
					uf.union(anchor, other)
				}
			}
		}
	}

	return assemble(ids, uf)
}

func assemble(ids []uint32, uf *unionFind) *Clustering {
	n := len(ids)
	c := &Clustering{IDs: ids, ClusterOf: make([]int, n)}
	rootToCluster := map[int]int{}
	for i := 0; i < n; i++ {
		root := uf.find(i)
		ci, ok := rootToCluster[root]
		if !ok {
			ci = len(c.Members)
			rootToCluster[root] = ci
			c.Members = append(c.Members, nil)
		}
		c.ClusterOf[i] = ci
		c.Members[ci] = append(c.Members[ci], i)
	}
	return c
}

// estimateJaccard is the fraction of matching signature positions.
func estimateJaccard(a, b []uint64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	match := 0
	for i := range a {
		if a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(len(a))
}

func hashBand(rows []uint64, band uint64) uint64 {
	h := uint64(14695981039346656037) ^ band*1099511628211
	for _, v := range rows {
		h ^= v
		h *= 1099511628211
	}
	return h
}

// maxShingles caps the shingle set per page with a bottom-k sketch (the k
// numerically smallest shingle hashes). Bottom-k sketches of two sets
// approximate their true Jaccard similarity, and the cap bounds signature
// cost for the rare 40k-word task pages.
const maxShingles = 512

// bottomK keeps the k numerically smallest of the deduped vals, returned
// sorted ascending. Quickselect partitions the k smallest to the front so
// only those k ever get sorted; vals is reordered in place.
func bottomK(vals []uint64, k int) []uint64 {
	if len(vals) > k {
		selectSmallest(vals, k)
		vals = vals[:k]
	}
	slices.Sort(vals)
	return vals
}

// selectSmallest partially sorts vals so its first k elements are the k
// smallest, via iterative median-of-three quickselect (deterministic, no
// allocation).
func selectSmallest(vals []uint64, k int) {
	lo, hi := 0, len(vals)-1
	for lo < hi {
		// Median-of-three pivot to dodge sorted-input worst cases.
		mid := int(uint(lo+hi) >> 1)
		if vals[mid] < vals[lo] {
			vals[mid], vals[lo] = vals[lo], vals[mid]
		}
		if vals[hi] < vals[lo] {
			vals[hi], vals[lo] = vals[lo], vals[hi]
		}
		if vals[hi] < vals[mid] {
			vals[hi], vals[mid] = vals[mid], vals[hi]
		}
		pivot := vals[mid]
		i, j := lo, hi
		for i <= j {
			for vals[i] < pivot {
				i++
			}
			for vals[j] > pivot {
				j--
			}
			if i <= j {
				vals[i], vals[j] = vals[j], vals[i]
				i++
				j--
			}
		}
		// [lo..j] <= pivot <= [i..hi]; recurse into the side holding k.
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

// minHasher holds a family of pairwise-independent hash functions of the
// form (a*x + b) over the 64-bit ring.
type minHasher struct {
	a, b []uint64
}

func newMinHasher(k int, seed uint64) *minHasher {
	r := rng.New(seed)
	m := &minHasher{a: make([]uint64, k), b: make([]uint64, k)}
	for i := 0; i < k; i++ {
		m.a[i] = r.Uint64() | 1 // odd multiplier
		m.b[i] = r.Uint64()
	}
	return m
}

// signatureInto computes the MinHash signature of a shingle slice into
// sig (len(sig) hash functions are used); empty sets map to a sentinel
// all-max signature that never matches anything real. The shingle scan is
// the innermost hot loop of clustering, so it walks the slice linearly.
func (m *minHasher) signatureInto(sig []uint64, set []uint64) {
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, s := range set {
		for i := range sig {
			h := m.a[i]*s + m.b[i]
			if h < sig[i] {
				sig[i] = h
			}
		}
	}
}

// unionFind is a weighted quick-union with path halving.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

// SizeHistogram returns (size, count) pairs sorted ascending by size — the
// log-log cluster-size distribution of Figure 6.
func (c *Clustering) SizeHistogram() (sizes []int, counts []int) {
	bySize := map[int]int{}
	for _, m := range c.Members {
		bySize[len(m)]++
	}
	for s := range bySize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	counts = make([]int, len(sizes))
	for i, s := range sizes {
		counts[i] = bySize[s]
	}
	return sizes, counts
}
