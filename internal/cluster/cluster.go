// Package cluster groups batches into distinct tasks by interface
// similarity, mirroring the paper's Section 3.3 methodology: batches whose
// sample HTML looks the same (same markup structure and near-identical
// wording) almost surely carry the same unit of work. Similarity is
// Jaccard over HTML shingles, computed scalably with MinHash signatures
// and locality-sensitive banding, then merged with union-find.
package cluster

import (
	"sort"

	"crowdscope/internal/htmlfeat"
	"crowdscope/internal/rng"
)

// Options tune the clustering.
type Options struct {
	// ShingleK is the shingle width over the combined tag/word stream.
	ShingleK int
	// Hashes is the MinHash signature length.
	Hashes int
	// Bands is the number of LSH bands (must divide Hashes).
	Bands int
	// Threshold is the signature-estimated Jaccard above which two
	// batches merge. The paper tuned its threshold until eyeballed
	// matches clustered together; 0.7 plays that role here.
	Threshold float64
	// Exact switches to exact Jaccard verification of candidate pairs
	// (slower, used by the ablation benchmarks).
	Exact bool
	// Seed randomizes the hash family.
	Seed uint64
}

// DefaultOptions returns the tuned clustering configuration.
func DefaultOptions() Options {
	return Options{ShingleK: 4, Hashes: 64, Bands: 16, Threshold: 0.7, Seed: 0x5EED}
}

// Clustering is the result: a cluster index per input batch and the
// members of each cluster.
type Clustering struct {
	// IDs holds the input batch IDs in input order.
	IDs []uint32
	// ClusterOf[i] is the cluster index of IDs[i].
	ClusterOf []int
	// Members[c] lists input positions belonging to cluster c.
	Members [][]int
}

// NumClusters returns the number of clusters found.
func (c *Clustering) NumClusters() int { return len(c.Members) }

// Sizes returns the member count per cluster.
func (c *Clustering) Sizes() []int {
	out := make([]int, len(c.Members))
	for i, m := range c.Members {
		out[i] = len(m)
	}
	return out
}

// Batches clusters the given batch IDs using html(id) to obtain each
// batch's sample page. Batches whose page is unavailable become singleton
// clusters.
func Batches(ids []uint32, html func(uint32) (string, bool), opts Options) *Clustering {
	if opts.Hashes <= 0 || opts.Bands <= 0 || opts.Hashes%opts.Bands != 0 {
		opts = DefaultOptions()
	}
	n := len(ids)
	hasher := newMinHasher(opts.Hashes, opts.Seed)

	sigs := make([][]uint64, n)
	var shingleSets []map[uint64]struct{}
	if opts.Exact {
		shingleSets = make([]map[uint64]struct{}, n)
	}
	for i, id := range ids {
		page, ok := html(id)
		if !ok {
			continue
		}
		set := bottomK(htmlfeat.Shingles(page, opts.ShingleK), maxShingles)
		sigs[i] = hasher.signature(set)
		if opts.Exact {
			shingleSets[i] = set
		}
	}

	uf := newUnionFind(n)
	rowsPerBand := opts.Hashes / opts.Bands

	// LSH: batches agreeing on all rows of any band become candidates.
	buckets := make(map[uint64][]int)
	for band := 0; band < opts.Bands; band++ {
		for k := range buckets {
			delete(buckets, k)
		}
		for i := 0; i < n; i++ {
			if sigs[i] == nil {
				continue
			}
			key := hashBand(sigs[i][band*rowsPerBand:(band+1)*rowsPerBand], uint64(band))
			buckets[key] = append(buckets[key], i)
		}
		for _, cand := range buckets {
			if len(cand) < 2 {
				continue
			}
			anchor := cand[0]
			for _, other := range cand[1:] {
				if uf.find(anchor) == uf.find(other) {
					continue
				}
				var sim float64
				if opts.Exact {
					sim = htmlfeat.Jaccard(shingleSets[anchor], shingleSets[other])
				} else {
					sim = estimateJaccard(sigs[anchor], sigs[other])
				}
				if sim >= opts.Threshold {
					uf.union(anchor, other)
				}
			}
		}
	}

	return assemble(ids, uf)
}

func assemble(ids []uint32, uf *unionFind) *Clustering {
	n := len(ids)
	c := &Clustering{IDs: ids, ClusterOf: make([]int, n)}
	rootToCluster := map[int]int{}
	for i := 0; i < n; i++ {
		root := uf.find(i)
		ci, ok := rootToCluster[root]
		if !ok {
			ci = len(c.Members)
			rootToCluster[root] = ci
			c.Members = append(c.Members, nil)
		}
		c.ClusterOf[i] = ci
		c.Members[ci] = append(c.Members[ci], i)
	}
	return c
}

// estimateJaccard is the fraction of matching signature positions.
func estimateJaccard(a, b []uint64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	match := 0
	for i := range a {
		if a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(len(a))
}

func hashBand(rows []uint64, band uint64) uint64 {
	h := uint64(14695981039346656037) ^ band*1099511628211
	for _, v := range rows {
		h ^= v
		h *= 1099511628211
	}
	return h
}

// maxShingles caps the shingle set per page with a bottom-k sketch (the k
// numerically smallest shingle hashes). Bottom-k sketches of two sets
// approximate their true Jaccard similarity, and the cap bounds signature
// cost for the rare 40k-word task pages.
const maxShingles = 512

func bottomK(set map[uint64]struct{}, k int) map[uint64]struct{} {
	if len(set) <= k {
		return set
	}
	vals := make([]uint64, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	out := make(map[uint64]struct{}, k)
	for _, v := range vals[:k] {
		out[v] = struct{}{}
	}
	return out
}

// minHasher holds a family of pairwise-independent hash functions of the
// form (a*x + b) over the 64-bit ring.
type minHasher struct {
	a, b []uint64
}

func newMinHasher(k int, seed uint64) *minHasher {
	r := rng.New(seed)
	m := &minHasher{a: make([]uint64, k), b: make([]uint64, k)}
	for i := 0; i < k; i++ {
		m.a[i] = r.Uint64() | 1 // odd multiplier
		m.b[i] = r.Uint64()
	}
	return m
}

// signature computes the MinHash signature of a shingle set; empty sets
// map to a sentinel all-max signature that never matches anything real.
func (m *minHasher) signature(set map[uint64]struct{}) []uint64 {
	k := len(m.a)
	sig := make([]uint64, k)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for s := range set {
		for i := 0; i < k; i++ {
			h := m.a[i]*s + m.b[i]
			if h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

// unionFind is a weighted quick-union with path halving.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

// SizeHistogram returns (size, count) pairs sorted ascending by size — the
// log-log cluster-size distribution of Figure 6.
func (c *Clustering) SizeHistogram() (sizes []int, counts []int) {
	bySize := map[int]int{}
	for _, m := range c.Members {
		bySize[len(m)]++
	}
	for s := range bySize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	counts = make([]int, len(sizes))
	for i, s := range sizes {
		counts[i] = bySize[s]
	}
	return sizes, counts
}
