package cluster

// Quality evaluation of a clustering against ground-truth labels. The
// paper "tuned the threshold of a match to ensure that tasks that on
// inspection look very similar ... are actually clustered together" —
// eyeball tuning. With the simulator the true distinct-task identity of
// every batch is known, so threshold tuning becomes measurable: purity
// and the adjusted Rand index quantify how faithfully Section 3.3's
// clustering recovers distinct tasks.

// Quality summarizes agreement between a clustering and ground truth.
type Quality struct {
	// Purity is the fraction of batches whose cluster's majority truth
	// label matches their own.
	Purity float64
	// ARI is the adjusted Rand index: 1 for perfect recovery, ~0 for
	// random assignment.
	ARI float64
	// Clusters and TrueClasses are the respective group counts.
	Clusters    int
	TrueClasses int
}

// Evaluate compares the clustering against truth, where truth[i] labels
// the i-th input batch (parallel to c.IDs).
func Evaluate(c *Clustering, truth []int) Quality {
	n := len(c.ClusterOf)
	if n == 0 || len(truth) != n {
		return Quality{}
	}
	// Contingency table.
	type cell struct{ cluster, class int }
	contingency := map[cell]int{}
	clusterSize := map[int]int{}
	classSize := map[int]int{}
	for i := 0; i < n; i++ {
		contingency[cell{c.ClusterOf[i], truth[i]}]++
		clusterSize[c.ClusterOf[i]]++
		classSize[truth[i]]++
	}

	// Purity: sum of per-cluster majority counts.
	majority := map[int]int{}
	for cc, cnt := range contingency {
		if cnt > majority[cc.cluster] {
			majority[cc.cluster] = cnt
		}
	}
	pure := 0
	for _, m := range majority {
		pure += m
	}

	// Adjusted Rand index.
	var sumComb, sumA, sumB float64
	for _, cnt := range contingency {
		sumComb += comb2(cnt)
	}
	for _, s := range clusterSize {
		sumA += comb2(s)
	}
	for _, s := range classSize {
		sumB += comb2(s)
	}
	total := comb2(n)
	expected := sumA * sumB / total
	maxIndex := (sumA + sumB) / 2
	ari := 0.0
	if denom := maxIndex - expected; denom != 0 {
		ari = (sumComb - expected) / denom
	} else if sumComb == maxIndex {
		ari = 1
	}

	return Quality{
		Purity:      float64(pure) / float64(n),
		ARI:         ari,
		Clusters:    len(clusterSize),
		TrueClasses: len(classSize),
	}
}

func comb2(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n) * float64(n-1) / 2
}

// SweepThreshold evaluates the clustering quality across candidate
// Jaccard thresholds, returning the per-threshold quality. The best
// threshold is the data-driven replacement for the paper's manual tuning.
func SweepThreshold(ids []uint32, html func(uint32) (string, bool), truth []int, thresholds []float64, base Options) []Quality {
	base = base.Normalized()
	// The threshold only affects the merge step; shingle the pages and
	// build the MinHash signatures once, then re-run only the cheap
	// LSH + union-find tail per candidate.
	sets := ShingleSets(ids, html, base)
	sigs := buildSignatures(sets, base)
	out := make([]Quality, len(thresholds))
	for i, th := range thresholds {
		opts := base
		opts.Threshold = th
		out[i] = Evaluate(mergeSignatures(ids, sets, sigs, opts), truth)
	}
	return out
}
